// Ablation: the write-around assumption.  The paper's analysis assumes a
// write-around (no-write-allocate) L1 "so A does not interfere" with B's
// reuse in JACOBI.  What if the L1 allocated on writes (as most modern L1s
// do)?  The written array's stream then competes for cache with the read
// array's tile, and the planner's capacity budget is effectively halved.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 100, 50);

  std::vector<std::string> header{
      "N",      "policy",       "Orig L1%", "Tile L1%",
      "GcdPad L1%", "Pad L1%"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    for (const bool wa : {false, true}) {
      rt::bench::RunOptions ro;
      ro.time_steps = bo.steps;
      ro.l1.write_allocate = wa;
      ro.l1.write_back = wa;  // write-allocate L1s are typically write-back
      std::vector<std::string> row{
          std::to_string(n), wa ? "write-allocate" : "write-around"};
      for (Transform t : {Transform::kOrig, Transform::kTile,
                          Transform::kGcdPad, Transform::kPad}) {
        const auto r = rt::bench::run_kernel(KernelId::kJacobi, t, n, ro);
        row.push_back(rt::bench::fmt(r.l1_miss_pct, 1));
      }
      rows.push_back(std::move(row));
    }
  }
  std::cout << "Ablation: L1 write policy, JACOBI (paper assumes "
               "write-around, as on the UltraSparc2)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nWith write-allocate the store stream of A fights B's tile "
               "for L1 capacity and\nthe conflict-free guarantee no longer "
               "covers it; miss rates rise across the board.\n";
  return 0;
}
