// Ablation: planner-backend comparison (model vs lattice vs oblivious).
// Runs JACOBI / RESID / PSINV (the MGRID smoother) across problem sizes —
// including the power-of-two N=256, where a 256-element leading dimension
// aliases set-mapped caches maximally — under two simulated L1 geometries:
// the paper's direct-mapped 16KB and a 2-way 16KB of the same capacity.
//
// What each backend claims, and what this bench checks:
//   model      the paper's searches: capacity tiles sized for the
//              direct-mapped cache (conflict-blind under associativity)
//   lattice    associativity-aware tiles whose per-set line occupancy
//              never exceeds the way count — on at least one
//              set-associative cell it must beat the model backend's
//              simulated L1 miss rate (that is the point of the backend)
//   oblivious  cache-parameter-free recursive schedule — with cache
//              probing disabled (--backend=auto on an unprobed host
//              resolves to it) it must still emit a tiled recursive plan,
//              not degrade to the untiled loop
//
// Before any measurement, every backend's plan is executed serially and
// its interior checksummed (FNV-1a over the raw double bits) against the
// untiled serial reference: a planner backend may only change *when* a
// point is updated within a sweep, never the arithmetic, so all checksums
// must match bit-for-bit.  Any violation of the three checks above exits 1.
//
// --json=FILE writes one record per (kernel, N, backend, geometry) cell
// plus a summary record (results/BENCH_10.json via scripts/reproduce.sh).

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/backend.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/oblivious.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/operators.hpp"

namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::Backend;
using rt::core::LoopSchedule;
using rt::core::TilingPlan;
using rt::core::Transform;
using rt::kernels::KernelId;

Array3D<double> make_grid(const Dims3& d, double seed) {
  Array3D<double> a(d);
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        a(i, j, k) = seed + 0.001 * static_cast<double>(i) +
                     0.002 * static_cast<double>(j) +
                     0.003 * static_cast<double>(k);
      }
    }
  }
  return a;
}

/// FNV-1a over the raw bit patterns of the logical interior, in canonical
/// (k, j, i) order — padding never participates, so differently padded
/// plans of the same computation hash identically iff bit-identical.
std::uint64_t interior_fnv(const Array3D<double>& a) {
  std::uint64_t h = 1469598103934665603ULL;
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        const double v = a(i, j, k);
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        for (int b = 0; b < 64; b += 8) {
          h ^= (bits >> b) & 0xffULL;
          h *= 1099511628211ULL;
        }
      }
    }
  }
  return h;
}

/// One serial sweep of @p kid under @p plan, honouring the plan's loop
/// schedule (flat / tiled / recursive), returning the interior checksum.
std::uint64_t checksum_under_plan(KernelId kid, long n, long kd,
                                  const TilingPlan& plan) {
  const Dims3 d = Dims3::padded(n, n, kd, plan.dip, plan.djp);
  const rt::core::IterTile tile = plan.tile;
  const bool rec = plan.schedule == LoopSchedule::kRecursive;
  switch (kid) {
    case KernelId::kJacobi: {
      Array3D<double> b = make_grid(d, 0.5), a(d);
      const double w = 1.0 / 6.0;
      if (rec) {
        rt::kernels::jacobi3d_oblivious(a, b, w, tile);
      } else if (plan.tiled) {
        rt::kernels::jacobi3d_tiled(a, b, w, tile);
      } else {
        rt::kernels::jacobi3d(a, b, w);
      }
      return interior_fnv(a);
    }
    case KernelId::kResid: {
      Array3D<double> v = make_grid(d, 0.7), u = make_grid(d, 0.1), r(d);
      const auto a = rt::kernels::nas_mg_a();
      if (rec) {
        rt::kernels::resid_oblivious(r, v, u, a, tile);
      } else if (plan.tiled) {
        rt::kernels::resid_tiled(r, v, u, a, tile);
      } else {
        rt::kernels::resid(r, v, u, a);
      }
      return interior_fnv(r);
    }
    case KernelId::kPsinv: {
      Array3D<double> r = make_grid(d, 0.7), u = make_grid(d, 0.1);
      const auto c = rt::multigrid::nas_mg_c();
      if (rec) {
        rt::multigrid::psinv_oblivious(u, r, c, tile);
      } else if (plan.tiled) {
        rt::multigrid::psinv_tiled(u, r, c, tile);
      } else {
        rt::multigrid::psinv(u, r, c);
      }
      return interior_fnv(u);
    }
    default:
      return 0;
  }
}

std::string backend_str(Backend b) {
  return std::string(rt::core::backend_name(b));
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  // N=256 is the deliberate worst case: a power-of-two leading dimension
  // walks the set index in lockstep, so capacity-only tiles conflict.
  std::vector<long> sizes = {200, 256, 330};
  if (bo.nmin > 0 || bo.nmax > 0 || bo.nstep > 0 || bo.full) {
    sizes = bo.sweep(200, 330, 56, 25);
  }
  const struct {
    KernelId id;
    const char* name;
  } kernels[] = {{KernelId::kJacobi, "JACOBI"},
                 {KernelId::kResid, "RESID"},
                 {KernelId::kPsinv, "PSINV"}};
  const Backend backends[] = {Backend::kModel, Backend::kLattice,
                              Backend::kOblivious};
  const struct {
    const char* name;
    std::uint32_t assoc;
  } geoms[] = {{"dm-16K", 1}, {"2way-16K", 2}};
  const Transform tr = Transform::kTile;

  bool failed = false;
  bool checksums_ok = true;

  // ---- Check 1: every backend's plan is bit-identical to serial. -------
  {
    const long vn = 96, vk = 30;
    std::cout << "bit-identity: each backend plan vs the untiled serial "
                 "reference (N=" << vn << ", FNV-1a over interior bits)\n";
    for (const auto& kn : kernels) {
      const rt::core::StencilSpec& spec = rt::kernels::kernel_info(kn.id).spec;
      TilingPlan ref;  // untiled, unpadded, flat
      ref.dip = vn;
      ref.djp = vn;
      const std::uint64_t want = checksum_under_plan(kn.id, vn, vk, ref);
      for (Backend b : backends) {
        rt::core::CacheGeom geom;  // paper L1: 2048 doubles, 4/line, DM
        geom.line_elems = 4;
        const rt::core::PlanReport rep =
            rt::core::plan_with_backend(b, tr, geom, vn, vn, spec, vk);
        const std::uint64_t got = checksum_under_plan(kn.id, vn, vk, rep.plan);
        std::cout << "  " << kn.name << " " << backend_str(b) << ": "
                  << std::hex << got << std::dec
                  << (got == want ? " ok" : " MISMATCH") << "\n";
        if (got != want) {
          std::cerr << "ERROR: " << kn.name << " under the " << backend_str(b)
                    << " backend is not bit-identical to serial\n";
          checksums_ok = false;
          failed = true;
        }
      }
    }
    std::cout << "\n";
  }

  // ---- Check 2: simulated sweep, model vs lattice vs oblivious. --------
  rt::obs::MetricsWriter writer;
  // miss[geom][backend] -> per-(kernel,N) L1 miss rates, cell-aligned.
  std::map<std::string, std::map<Backend, std::vector<double>>> miss;
  std::vector<std::string> cell_names;
  std::vector<std::vector<std::string>> rows;
  for (const auto& g : geoms) {
    for (const auto& kn : kernels) {
      for (long n : sizes) {
        std::vector<std::string> row{g.name, kn.name, std::to_string(n)};
        for (Backend b : backends) {
          rt::bench::RunOptions ro;
          ro.time_steps = bo.steps;
          ro.l1.assoc = g.assoc;
          ro.backend = b;
          const auto r = rt::bench::run_kernel(kn.id, tr, n, ro);
          miss[g.name][b].push_back(r.l1_miss_pct);
          row.push_back(rt::bench::fmt(r.l1_miss_pct, 2));
          row.push_back(r.plan.tiled
                            ? std::to_string(r.plan.tile.ti) + "x" +
                                  std::to_string(r.plan.tile.tj)
                            : "-");
          if (!bo.json.empty()) {
            rt::obs::JsonValue& rec =
                rt::bench::append_json_record(writer, kn.name, n, r);
            rec.set("bench", "backend_ablation");
            rec.set("geometry", g.name);
            rec.set("l1_assoc", static_cast<long>(g.assoc));
            rec.set("schedule", std::string(rt::core::schedule_name(
                                    r.plan.schedule)));
          }
        }
        if (g.name == geoms[0].name) {
          cell_names.push_back(std::string(kn.name) + "/" +
                               std::to_string(n));
        }
        rows.push_back(std::move(row));
      }
    }
  }
  rt::bench::print_table({"geom", "kernel", "N", "model L1%", "tile",
                          "lattice L1%", "tile", "oblivious L1%", "tile"},
                         rows);

  // The lattice backend exists to respect associativity: on the 2-way
  // geometry it must strictly beat the conflict-blind model tile on at
  // least one cell (it typically wins the power-of-two ones).
  int lattice_wins = 0;
  std::string win_cells;
  {
    const auto& m = miss["2way-16K"];
    const auto& model = m.at(Backend::kModel);
    const auto& lattice = m.at(Backend::kLattice);
    for (std::size_t i = 0; i < model.size() && i < lattice.size(); ++i) {
      if (lattice[i] < model[i]) {
        ++lattice_wins;
        if (!win_cells.empty()) win_cells += ", ";
        win_cells += cell_names[i];
      }
    }
  }
  std::cout << "\nlattice < model (simulated L1 misses, 2-way 16K): "
            << lattice_wins << " of " << cell_names.size() << " cells";
  if (lattice_wins > 0) std::cout << " (" << win_cells << ")";
  std::cout << "\n";
  if (lattice_wins == 0) {
    std::cerr << "ERROR: the lattice backend never beat the model backend "
                 "on the set-associative geometry\n";
    failed = true;
  }

  // ---- Check 3: oblivious holds up with cache probing disabled. --------
  bool oblivious_ok = true;
  {
    rt::bench::RunOptions ro;
    ro.time_steps = 1;
    ro.cache_probed = false;  // unprobed host: auto must pick oblivious
    const Backend auto_b = rt::core::auto_backend(ro.geom());
    ro.backend = auto_b;
    const auto r = rt::bench::run_kernel(KernelId::kJacobi, tr, 200, ro);
    oblivious_ok = auto_b == Backend::kOblivious && r.plan.tiled &&
                   r.plan.schedule == LoopSchedule::kRecursive &&
                   r.status == rt::guard::Status::kOk;
    std::cout << "unprobed auto backend: " << backend_str(auto_b)
              << ", plan " << (r.plan.tiled ? "tiled" : "UNTILED") << " "
              << rt::core::schedule_name(r.plan.schedule)
              << (oblivious_ok ? " (ok)" : " (ERROR)") << "\n";
    if (!oblivious_ok) {
      std::cerr << "ERROR: --backend=auto on an unprobed host must run the "
                   "oblivious backend's tiled recursive plan, not degrade "
                   "to the untiled loop\n";
      failed = true;
    }
  }

  if (!bo.json.empty()) {
    rt::obs::JsonValue& sum = writer.add_record();
    sum.set("bench", "backend_ablation").set("scenario", "summary");
    sum.set("checksums_bit_identical", checksums_ok);
    sum.set("lattice_beats_model_cells", lattice_wins);
    sum.set("lattice_beats_model_on_set_associative", lattice_wins > 0);
    sum.set("oblivious_unprobed_recursive", oblivious_ok);
    std::string why;
    if (writer.write_file_checked(bo.json, &why) !=
        rt::guard::Status::kOk) {
      std::cerr << "error: cannot write " << bo.json << ": " << why << "\n";
      failed = true;
    } else {
      std::cout << "wrote " << writer.num_records() << " records to "
                << bo.json << "\n";
    }
  }
  return failed ? 1 : 0;
}
