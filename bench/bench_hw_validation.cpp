// Real-hardware cross-check of the cache simulator (rt::obs): runs JACOBI
// and RESID under Orig / Tile / Pad / GcdPad at several N, with hardware
// performance counters (perf_event_open) wrapped around the measured host
// loop, and prints the *measured* L1D / LLC load-miss-per-reference next to
// the cachesim prediction.  The two machines differ (the model is a
// direct-mapped UltraSparc2 L1, the host is associative — see
// bench_ablation_assoc for why conflict effects largely vanish), so the
// interesting signal is the trend across transforms, not equality: tiling
// should never *raise* the measured miss ratios, and padding's conflict
// repair shows up only where the host cache geometry resembles the model.
//
// The per-reference denominator is the simulator's reference count for one
// time step (both executions run the same loop nest, so the model's count
// is the ground truth for "references"); the misses-per-load column uses
// the host's own L1D load counter when the PMU exposes it.
//
// Degrades gracefully: on hosts without perf-event access (containers, CI,
// most VMs) the hw columns print "-" and the run still succeeds — that
// path is part of the acceptance criteria for this bench.
//
// Flags (see rt/bench/options.hpp): --counters=off|auto|on (default auto),
// --json=FILE (machine-readable records through rt::obs::MetricsWriter),
// --nmin/--nmax/--nstep, --steps, --no-sim, --threads, --simd.

#include <iostream>
#include <string>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/obs/perf_counters.hpp"

using rt::bench::RunResult;
using rt::core::Transform;
using rt::kernels::KernelId;
using rt::obs::CounterKind;

namespace {

/// "-" when the counter did not open; otherwise 100 * value / denom.
std::string pct_or_dash(const rt::bench::RunResult& r, CounterKind k,
                        double denom, int prec = 3) {
  const auto& c = r.hw.readings[k];
  if (!c.valid || denom <= 0) return "-";
  return rt::bench::fmt(100.0 * static_cast<double>(c.value) / denom, prec);
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(100, 300, 100, 50);

  rt::bench::RunOptions ro;
  ro.simulate = bo.simulate;
  ro.time_host = true;
  ro.time_steps = bo.steps;
  ro.counters = bo.counters;
  if (bo.threads > 0) ro.threads = bo.threads;
  ro.simd = bo.simd;
  ro.verify = bo.verify;
  ro.timeout_seconds = bo.timeout_seconds;
  ro.backend = bo.resolved_backend(ro.geom());

  std::cout << rt::obs::describe_counter_support() << "\n";
  if (ro.counters == rt::obs::CounterMode::kOff) {
    std::cout << "(--counters=off: hw columns will be '-')\n";
  }
  std::cout << "\n";

  const struct {
    KernelId id;
    const char* name;
  } kernels[] = {{KernelId::kJacobi, "JACOBI"}, {KernelId::kResid, "RESID"}};
  const std::vector<Transform> transforms = {Transform::kOrig,
                                             Transform::kTile, Transform::kPad,
                                             Transform::kGcdPad};

  rt::obs::MetricsWriter writer;
  std::vector<std::vector<std::string>> rows;
  bool any_degraded = false;
  for (const auto& kn : kernels) {
    for (long n : sizes) {
      for (Transform tr : transforms) {
        const RunResult r = rt::bench::run_kernel(kn.id, tr, n, ro);
        if (!bo.json.empty()) {
          rt::bench::append_json_record(writer, kn.name, n, r);
        }
        // One model time step's references: the denominator shared by the
        // simulated and measured miss-per-reference columns.
        const double refs_per_step =
            ro.simulate && ro.time_steps > 0
                ? static_cast<double>(r.sim_accesses) / ro.time_steps
                : 0.0;
        const double hw_refs = refs_per_step * r.hw.iters;
        const auto& loads = r.hw.readings[CounterKind::kL1dLoads];
        const auto& l1m = r.hw.readings[CounterKind::kL1dLoadMisses];
        const auto& cyc = r.hw.readings[CounterKind::kCycles];
        const auto& ins = r.hw.readings[CounterKind::kInstructions];
        std::string note;
        if (r.status != rt::guard::Status::kOk) {
          note = rt::guard::status_name(r.status);
          any_degraded = true;
        } else if (r.plan_status != rt::guard::Status::kOk) {
          note = std::string("plan: ") + rt::guard::status_name(r.plan_status);
          any_degraded = true;
        } else if (r.degraded()) {
          note = "serial fallback";
          any_degraded = true;
        } else if (r.hw.requested && !r.hw.available) {
          note = "hw n/a";
        }
        rows.push_back(
            {kn.name, std::to_string(n),
             std::string(rt::core::transform_name(tr)),
             r.plan.tiled ? std::to_string(r.plan.tile.ti) + "x" +
                                std::to_string(r.plan.tile.tj)
                          : "-",
             rt::bench::fmt(r.host_mflops, 0),
             ro.simulate ? rt::bench::fmt(r.l1_miss_pct, 2) : "-",
             pct_or_dash(r, CounterKind::kL1dLoadMisses, hw_refs),
             loads.valid && l1m.valid && loads.value > 0
                 ? rt::bench::fmt(100.0 * static_cast<double>(l1m.value) /
                                      static_cast<double>(loads.value),
                                  2)
                 : "-",
             ro.simulate ? rt::bench::fmt(r.l2_miss_pct, 3) : "-",
             pct_or_dash(r, CounterKind::kLlcLoadMisses, hw_refs),
             pct_or_dash(r, CounterKind::kDtlbLoadMisses, hw_refs),
             cyc.valid && ins.valid && cyc.value > 0
                 ? rt::bench::fmt(static_cast<double>(ins.value) /
                                      static_cast<double>(cyc.value),
                                  2)
                 : "-",
             note});
      }
    }
  }

  std::cout << "Hardware-counter validation (K=" << ro.k_dim
            << "; miss columns are percent):\n"
            << "  simL1 / simL2 : cachesim prediction, misses per reference\n"
            << "  hwL1r / hwLLCr / hwTLBr : measured load misses per *model*"
               " reference\n"
            << "  hwL1ld : measured L1D load misses per measured L1D load\n";
  rt::bench::print_table({"kernel", "N", "transform", "tile", "MFlops",
                          "simL1", "hwL1r", "hwL1ld", "simL2", "hwLLCr",
                          "hwTLBr", "IPC", "note"},
                         rows);
  if (any_degraded) {
    std::cout << "\nnote: rows marked 'serial fallback' requested --threads/"
                 "--simd axes this kernel\ncannot run; they timed serially "
                 "(see RunResult::degraded).\n";
  }

  if (!bo.json.empty()) {
    if (!writer.write_file(bo.json)) {
      std::cerr << "error: cannot write " << bo.json << "\n";
      return 1;
    }
    std::cout << "\nwrote " << writer.num_records() << " records to "
              << bo.json << "\n";
  }
  return 0;
}
