// Ablation: does the paper's cost function (Section 2.3) predict measured
// behaviour?  For a fixed padded problem (so every candidate tile is
// conflict-free), sweep tile shapes of roughly equal volume and compare
// Cost(TI,TJ) against simulated L1 miss rates: the model says square-ish
// tiles minimise misses, elongated tiles waste the halo.

#include <iostream>
#include <algorithm>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/core/conflict.hpp"
#include "rt/core/cost.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/kernels/jacobi3d.hpp"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using rt::array::Array3D;
  using rt::array::Dims3;
  const auto spec = rt::core::StencilSpec::jacobi3d();

  // GcdPad-padded 300x300x30 problem: dip=352, djp=304.  Candidate shapes
  // are sub-shapes of the Euc3D Pareto records at depth ATD, so every one
  // is conflict-free: differences in miss rate are then *pure* cost-model
  // effects (halo overhead per tile), not conflicts.
  const long n = 300, kd = 30, dip = 352, djp = 304;
  std::vector<rt::core::IterTile> shapes;
  for (const auto& rec : rt::core::euc3d_enumerate(2048, dip, djp, spec.atd)) {
    const rt::core::IterTile full{rec.ti - spec.trim_i, rec.tj - spec.trim_j};
    if (full.ti <= 0 || full.tj <= 0) continue;
    shapes.push_back(full);
    if (full.ti > 3) shapes.push_back({full.ti / 2, full.tj});
    if (full.tj > 3) shapes.push_back({full.ti, full.tj / 2});
    if (full.ti > 3 && full.tj > 3) {
      shapes.push_back({full.ti / 4 + 1, full.tj});
    }
  }
  std::sort(shapes.begin(), shapes.end(),
            [&](const rt::core::IterTile& a, const rt::core::IterTile& b) {
              return rt::core::cost(a, spec) < rt::core::cost(b, spec);
            });

  std::vector<std::string> header{"tile (TI,TJ)", "cost", "conflict-free",
                                  "L1 miss %", "L2 miss %"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& t : shapes) {
    const Dims3 dims = Dims3::padded(n, n, kd, dip, djp);
    Array3D<double> a(dims), b(dims);
    for (long k = 0; k < kd; ++k)
      for (long j = 0; j < n; ++j)
        for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);
    rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
    rt::cachesim::TracedArray3D<double> ta(a, 0, h),
        tb(b, static_cast<std::uint64_t>(dims.alloc_elems()) * 8, h);
    rt::kernels::jacobi3d_tiled(ta, tb, 1.0 / 6.0, t);
    const auto st = h.stats();
    const bool cf = rt::core::is_conflict_free(
        2048, dip, djp, t.ti + spec.trim_i, t.tj + spec.trim_j, spec.atd);
    rows.push_back({"(" + std::to_string(t.ti) + "," + std::to_string(t.tj) +
                        ")",
                    rt::bench::fmt(rt::core::cost(t, spec), 3),
                    cf ? "yes" : "no",
                    rt::bench::fmt(100.0 * st.l1.miss_rate(), 2),
                    rt::bench::fmt(100.0 * st.l2_global_miss_rate(), 2)});
  }
  std::cout << "Ablation: cost model vs measured miss rate "
               "(JACOBI, padded 300x300x30 -> 352x304x30)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nExpectation: miss rate tracks the cost column — squarer "
               "tiles of the same volume\nfetch fewer halo elements per "
               "block (Section 2.3).\n";
  return 0;
}
