// Ablation: the 2D tile-size-selection family the paper's Section 3.3
// builds on (cf. Rivera & Tseng, CC'99): Lam/Rothberg/Wolf square tiles,
// Esseghir whole-column tiles, and Euclidean non-conflicting rectangles —
// what tile would each pick for a 2D array of leading dimension N in a
// 2048-element direct-mapped cache, and at what cost?

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/conflict.hpp"
#include "rt/core/tiling2d.hpp"

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 20, 5);
  const long cs = 2048;

  std::vector<std::string> header{"N",        "LRW",  "cost", "Esseghir",
                                  "cost",     "Euc2D", "cost", "Euc conflict-free"};
  std::vector<std::vector<std::string>> rows;
  const auto tile_str = [](const rt::core::IterTile& t) {
    return "(" + std::to_string(t.ti) + "," + std::to_string(t.tj) + ")";
  };
  for (long n : sizes) {
    const auto lrw = rt::core::lrw_tile(cs, n);
    const auto ess = rt::core::esseghir_tile(cs, n);
    const auto euc = rt::core::euc2d(cs, n);
    const bool cf = rt::core::is_conflict_free(cs, n, /*dj=*/n, euc.tile.ti,
                                               euc.tile.tj, 1);
    rows.push_back({std::to_string(n), tile_str(lrw),
                    rt::bench::fmt(rt::core::cost2d(lrw), 4), tile_str(ess),
                    rt::bench::fmt(rt::core::cost2d(ess), 4),
                    tile_str(euc.tile),
                    rt::bench::fmt(euc.tile_cost, 4), cf ? "yes" : "NO"});
  }
  std::cout << "Ablation: 2D tile-size selection algorithms (CC'99 family), "
               "2048-element cache\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nLRW squares shrink badly on unfriendly N; Esseghir's tall "
               "tiles have high cost\nfor small N; Euc2D picks the cheapest "
               "conflict-free rectangle — the approach\nEuc3D generalises "
               "to three dimensions.\n";
  return 0;
}
