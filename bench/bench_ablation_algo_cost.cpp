// Ablation: compile-time cost of the tile-selection algorithms themselves
// (paper Section 3.3 argues Euc3D is O(log Cs) and cheap enough to run at
// runtime for multigrid codes with dynamically sized grids; GcdPad is
// cheaper still; Pad is the most expensive but "still very small in
// practice").  Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "rt/core/euc3d.hpp"
#include "rt/core/euclid.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/square_tile.hpp"

namespace {

const rt::core::StencilSpec kSpec = rt::core::StencilSpec::jacobi3d();

void BM_Euc3d(benchmark::State& state) {
  const long cs = state.range(0);
  const long di = 341;  // pathological size: worst case for enumeration
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::core::euc3d(cs, di, di, kSpec));
  }
}
BENCHMARK(BM_Euc3d)->Arg(512)->Arg(2048)->Arg(8192)->Arg(32768)->Arg(131072);

void BM_GcdPad(benchmark::State& state) {
  const long cs = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::core::gcd_pad(cs, 341, 341, kSpec));
  }
}
BENCHMARK(BM_GcdPad)->Arg(512)->Arg(2048)->Arg(8192)->Arg(32768)->Arg(131072);

void BM_Pad(benchmark::State& state) {
  const long cs = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::core::pad(cs, 341, 341, kSpec));
  }
}
BENCHMARK(BM_Pad)->Arg(512)->Arg(2048)->Arg(8192);

void BM_SquareTile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::core::square_tile(2048, kSpec));
  }
}
BENCHMARK(BM_SquareTile);

void BM_EucPareto(benchmark::State& state) {
  const long cs = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::core::euc_pareto(cs, 341));
  }
}
BENCHMARK(BM_EucPareto)->Arg(2048)->Arg(32768)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
