// Reproduces paper Figures 14, 16 and 18: L1 and L2 cache miss rates vs
// problem size (N x N x 30) for JACOBI, REDBLACK and RESID, in the paper's
// three panel groups:
//   top:    Orig vs Tile vs Euc3D        (tiling without padding: spiky)
//   middle: Orig vs GcdPad vs Pad        (tiling + padding: low and stable)
//   bottom: Orig vs GcdPadNT vs GcdPad   (padding alone vs both)
//
// 16K/2M direct-mapped simulated caches (UltraSparc2).

#include <iostream>
#include <map>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 20, 4);

  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;
  ro.backend = bo.resolved_backend(ro.geom());

  const std::vector<Transform> all = {
      Transform::kOrig,   Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad,  Transform::kGcdPadNT};

  struct Fig {
    KernelId kid;
    const char* title;
  };
  const Fig figs[] = {{KernelId::kJacobi, "Figure 14: JACOBI miss rates"},
                      {KernelId::kRedBlack, "Figure 16: REDBLACK miss rates"},
                      {KernelId::kResid, "Figure 18: RESID miss rates"}};

  for (const Fig& f : figs) {
    std::map<Transform, std::vector<double>> l1, l2;
    for (long n : sizes) {
      for (Transform t : all) {
        const auto r = rt::bench::run_kernel(f.kid, t, n, ro);
        l1[t].push_back(r.l1_miss_pct);
        l2[t].push_back(r.l2_miss_pct);
      }
    }
    const auto group = [&](const char* which,
                           std::map<Transform, std::vector<double>>& m,
                           std::vector<Transform> ts) {
      std::vector<std::string> names;
      std::vector<std::vector<double>> ys;
      for (Transform t : ts) {
        names.push_back(std::string(rt::core::transform_name(t)));
        ys.push_back(m[t]);
      }
      rt::bench::print_series(std::string(f.title) + " — " + which, "N",
                              sizes, names, ys);
    };
    group("L1 %, tiling only", l1,
          {Transform::kOrig, Transform::kTile, Transform::kEuc3d});
    group("L1 %, tiling + padding", l1,
          {Transform::kOrig, Transform::kGcdPad, Transform::kPad});
    group("L1 %, padding alone", l1,
          {Transform::kOrig, Transform::kGcdPadNT, Transform::kGcdPad});
    group("L2 %, all", l2,
          {Transform::kOrig, Transform::kTile, Transform::kEuc3d,
           Transform::kGcdPad, Transform::kPad, Transform::kGcdPadNT});
  }
  return 0;
}
