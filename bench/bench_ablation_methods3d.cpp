// Ablation: the four conflict-avoidance methods of Section 3 head to head
// on 3D Jacobi, including the "effective cache size" method (Section 3.2)
// that the paper describes but excludes from its evaluation:
//   Tile    — capacity-only square tile (conflicts tolerated)
//   ECS 10% — square tile targeting 10% of the cache (mostly unused cache)
//   Euc3D   — non-conflicting tile for the given dims (no padding)
//   GcdPad  — fixed tile + padding
//   Pad     — searched tile + padding

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/tiling2d.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 40, 20);
  const auto spec = rt::core::StencilSpec::jacobi3d();

  std::vector<std::string> header{"N",     "Orig",   "Tile", "ECS10%",
                                  "Euc3D", "GcdPad", "Pad"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    rt::bench::RunOptions ro;
    ro.time_steps = bo.steps;
    std::vector<std::string> row{std::to_string(n)};
    for (Transform t : {Transform::kOrig, Transform::kTile}) {
      row.push_back(rt::bench::fmt(
          rt::bench::run_kernel(KernelId::kJacobi, t, n, ro).l1_miss_pct, 1));
    }
    // ECS: square tile for 10% of the cache, no padding.
    rt::core::TilingPlan ecs;
    ecs.tiled = true;
    ecs.tile = rt::core::ecs_tile(2048, 0.10, spec);
    ecs.dip = ecs.djp = n;
    row.push_back(rt::bench::fmt(
        rt::bench::run_kernel_with_plan(KernelId::kJacobi, ecs, n, ro)
            .l1_miss_pct,
        1));
    for (Transform t :
         {Transform::kEuc3d, Transform::kGcdPad, Transform::kPad}) {
      row.push_back(rt::bench::fmt(
          rt::bench::run_kernel(KernelId::kJacobi, t, n, ro).l1_miss_pct, 1));
    }
    rows.push_back(std::move(row));
  }
  std::cout << "Ablation (Sections 3.1-3.4): conflict-avoidance methods, "
               "JACOBI L1 miss rate %\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nECS avoids the worst conflicts but wastes 90% of the "
               "cache (small tiles, large\nhalo overhead) and still spikes "
               "on pathological dims; GcdPad/Pad dominate.\n";
  return 0;
}
