// Reproduces paper Figures 15, 17 and 19: performance in MFlops vs problem
// size for JACOBI, REDBLACK and RESID.  The primary series use the
// simulated-cycle model of the 360MHz UltraSparc2 (see DESIGN.md for why
// host timing cannot show direct-mapped conflict behaviour); pass --host to
// append wall-clock MFlops series measured on this machine.

#include <iostream>
#include <map>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 20, 4);

  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;
  ro.time_host = bo.host;
  if (bo.threads > 0) ro.threads = bo.threads;
  ro.backend = bo.resolved_backend(ro.geom());

  const std::vector<Transform> all = {
      Transform::kOrig,   Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad,  Transform::kGcdPadNT};

  struct Fig {
    KernelId kid;
    const char* title;
  };
  const Fig figs[] = {
      {KernelId::kJacobi, "Figure 15: JACOBI MFlops (sim UltraSparc2 360MHz)"},
      {KernelId::kRedBlack, "Figure 17: REDBLACK MFlops (sim)"},
      {KernelId::kResid, "Figure 19: RESID MFlops (sim)"}};

  for (const Fig& f : figs) {
    std::map<Transform, std::vector<double>> mf, host;
    for (long n : sizes) {
      for (Transform t : all) {
        const auto r = rt::bench::run_kernel(f.kid, t, n, ro);
        mf[t].push_back(r.sim_mflops);
        host[t].push_back(r.host_mflops);
      }
    }
    const auto group = [&](const char* which,
                           std::map<Transform, std::vector<double>>& m,
                           std::vector<Transform> ts) {
      std::vector<std::string> names;
      std::vector<std::vector<double>> ys;
      for (Transform t : ts) {
        names.push_back(std::string(rt::core::transform_name(t)));
        ys.push_back(m[t]);
      }
      rt::bench::print_series(std::string(f.title) + " — " + which, "N",
                              sizes, names, ys, 1);
    };
    group("tiling only", mf,
          {Transform::kOrig, Transform::kTile, Transform::kEuc3d});
    group("tiling + padding", mf,
          {Transform::kOrig, Transform::kGcdPad, Transform::kPad});
    group("padding alone", mf,
          {Transform::kOrig, Transform::kGcdPadNT, Transform::kGcdPad});
    if (bo.host) {
      group(("host wall-clock MFlops (this machine, " +
             std::to_string(ro.threads) + " thread" +
             (ro.threads == 1 ? "" : "s") + ")")
                .c_str(),
            host, all);
    }
  }
  return 0;
}
