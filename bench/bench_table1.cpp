// Reproduces paper Table 1: Euc3D non-conflicting array tiles for a
// 200x200xM array and a 16K (2048-element) direct-mapped cache, plus the
// Section 3.3 cost-based selection.

#include <iostream>

#include "rt/bench/table.hpp"
#include "rt/core/conflict.hpp"
#include "rt/core/euc3d.hpp"

int main() {
  using namespace rt::core;
  const long cs = 2048, di = 200, dj = 200;

  std::cout << "Table 1: Euc3D non-conflicting array tiles "
               "(200x200xM array, 16K cache = 2048 doubles)\n\n";
  std::vector<std::string> tk_row{"TK"}, tj_row{"TJ"}, ti_row{"TI"},
      ok_row{"conflict-free"};
  for (int tk = 1; tk <= 4; ++tk) {
    for (const ArrayTile& t : euc3d_enumerate(cs, di, dj, tk)) {
      tk_row.push_back(std::to_string(t.tk));
      tj_row.push_back(std::to_string(t.tj));
      ti_row.push_back(std::to_string(t.ti));
      ok_row.push_back(is_conflict_free(cs, di, dj, t.ti, t.tj, t.tk) ? "yes"
                                                                      : "NO");
    }
  }
  rt::bench::print_table(tk_row, {tj_row, ti_row, ok_row});

  const StencilSpec spec = StencilSpec::jacobi3d();
  const Euc3dResult sel = euc3d(cs, di, dj, spec);
  std::cout << "\nSection 3.3 selection for Jacobi (trim 2, ATD 3):\n"
            << "  selected iteration tile (TI,TJ) = (" << sel.tile.ti << ","
            << sel.tile.tj << ")  from array tile (TI,TJ,TK) = ("
            << sel.array_tile.ti << "," << sel.array_tile.tj << ","
            << sel.array_tile.tk << ")  cost = "
            << rt::bench::fmt(sel.tile_cost, 4) << "\n"
            << "  paper: (22,13) from (24,15,3), cost 1.2587\n";
  return 0;
}
