// Extension experiment (paper Section 4.6: "we expect additional
// improvements to arise from tiling the remaining subroutines in the
// application"): apply the paper's transformations to PSINV, the MGRID
// smoother — structurally RESID's twin (27-point stencil, two arrays).

#include <iostream>
#include <map>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 50, 10);

  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;

  const std::vector<Transform> all = {
      Transform::kOrig,   Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad,  Transform::kGcdPadNT};

  std::map<Transform, std::vector<double>> l1, mf;
  for (long n : sizes) {
    for (Transform t : all) {
      const auto r = rt::bench::run_kernel(KernelId::kPsinv, t, n, ro);
      l1[t].push_back(r.l1_miss_pct);
      mf[t].push_back(r.sim_mflops);
    }
  }
  std::vector<std::string> names;
  std::vector<std::vector<double>> y1, y2;
  for (Transform t : all) {
    names.push_back(std::string(rt::core::transform_name(t)));
    y1.push_back(l1[t]);
    y2.push_back(mf[t]);
  }
  rt::bench::print_series("PSINV (MGRID smoother): L1 miss rate %", "N",
                          sizes, names, y1);
  rt::bench::print_series("PSINV: MFlops (sim UltraSparc2 360MHz)", "N",
                          sizes, names, y2, 1);
  std::cout << "\nPSINV behaves like RESID (27-pt stencil): tiling+padding "
               "yields the same class\nof improvement, supporting the "
               "paper's expectation for the rest of MGRID.\n";
  return 0;
}
