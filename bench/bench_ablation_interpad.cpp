// Ablation for paper Section 3.5: cross-interference between arrays.
// Strategy 1 (what the paper's evaluation does): tolerate it — RESID's
// single V reference cannot destroy much of U's group reuse.
// Strategy 2: partition the cache between the arrays with inter-variable
// padding and a tile sized for one partition.
//
// This bench measures both against plain GcdPad for RESID and JACOBI.

#include <iostream>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/core/interpad.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/resid.hpp"

using rt::array::Array3D;
using rt::array::Dims3;

namespace {

struct SimOut {
  double l1 = 0, mflops = 0;
};

/// Run RESID once with an explicit inter-pad plan.
SimOut run_resid_interpad(long n, long kd, const rt::core::InterPadPlan& ip) {
  const Dims3 dims = Dims3::padded(n, n, kd, ip.intra.dip, ip.intra.djp);
  Array3D<double> r(dims), v(dims), u(dims);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) {
        v(i, j, k) = 0.001 * (i + j);
        u(i, j, k) = 0.002 * (j + k);
      }
  rt::array::AddressSpace space(0, 64);
  const std::uint64_t cache_bytes = 2048 * 8;
  const std::uint64_t elems = static_cast<std::uint64_t>(dims.alloc_elems());
  // U carries the group reuse -> partition 0; V and R elsewhere.
  const auto bu = space.place_mod("u", elems, 8, cache_bytes,
                                  static_cast<std::uint64_t>(ip.base_offsets[0]) * 8);
  const auto bv = space.place_mod("v", elems, 8, cache_bytes,
                                  static_cast<std::uint64_t>(ip.base_offsets[1]) * 8);
  const auto br = space.place_mod("r", elems, 8, cache_bytes,
                                  static_cast<std::uint64_t>(ip.base_offsets[2]) * 8);
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::TracedArray3D<double> tr(r, br, h), tv(v, bv, h), tu(u, bu, h);
  rt::kernels::resid_tiled(tr, tv, tu, rt::kernels::nas_mg_a(), ip.intra.tile);
  auto st = h.stats();
  st.flops = 31 * static_cast<std::uint64_t>(n - 2) * (n - 2) * (kd - 2);
  return SimOut{100.0 * st.l1.miss_rate(),
                rt::cachesim::PerfModel().mflops(st)};
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 100, 50);
  const auto spec = rt::core::StencilSpec::resid27();

  std::vector<std::string> header{"N", "version", "tile", "L1 miss %",
                                  "sim MFlops"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    rt::bench::RunOptions ro;
    ro.time_steps = 1;
    const auto orig = rt::bench::run_kernel(rt::kernels::KernelId::kResid,
                                            rt::core::Transform::kOrig, n, ro);
    const auto tol = rt::bench::run_kernel(rt::kernels::KernelId::kResid,
                                           rt::core::Transform::kGcdPad, n,
                                           ro);
    const auto ip = rt::core::inter_pad(2048, n, n, spec, 3);
    const SimOut part = run_resid_interpad(n, 30, ip);

    const auto tile_str = [](const rt::core::IterTile& t) {
      return "(" + std::to_string(t.ti) + "," + std::to_string(t.tj) + ")";
    };
    rows.push_back({std::to_string(n), "Orig", "-",
                    rt::bench::fmt(orig.l1_miss_pct, 1),
                    rt::bench::fmt(orig.sim_mflops, 1)});
    rows.push_back({std::to_string(n), "GcdPad (tolerate V)",
                    tile_str(tol.plan.tile), rt::bench::fmt(tol.l1_miss_pct, 1),
                    rt::bench::fmt(tol.sim_mflops, 1)});
    rows.push_back({std::to_string(n), "GcdPad + inter-pad (partition)",
                    tile_str(ip.intra.tile), rt::bench::fmt(part.l1, 1),
                    rt::bench::fmt(part.mflops, 1)});
  }
  std::cout << "Ablation (Section 3.5): cross-interference strategies for "
               "RESID (U:27 refs, V:1, R:1 write)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nTolerating the lone V reference keeps the full-cache tile "
               "and usually wins —\nexactly the paper's choice; partitioning "
               "trades tile size for isolation.\n";
  return 0;
}
