// Reproduces paper Figure 22 and Section 4.5: memory increase from padding
// for JACOBI under GcdPad and Pad, as a percentage of the original array
// size, over N = 200..400 (N x N x 30 as measured) and also for cubic
// N x N x N arrays (the paper's "actual codes" estimate: ~1.4% GcdPad,
// ~0.5% Pad).

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 5, 1);
  const auto spec = rt::core::StencilSpec::jacobi3d();
  const long cs = 2048;

  const auto overhead_pct = [](long dip, long djp, long n, long kd) {
    const double orig = static_cast<double>(n) * n * kd;
    const double padded = static_cast<double>(dip) * djp * kd;
    return 100.0 * (padded - orig) / orig;
  };

  std::vector<double> gcd30, pad30, gcdN, padN;
  double s_g30 = 0, s_p30 = 0, s_gN = 0, s_pN = 0;
  for (long n : sizes) {
    const auto g = rt::core::gcd_pad(cs, n, n, spec);
    const auto p = rt::core::pad(cs, n, n, spec);
    gcd30.push_back(overhead_pct(g.dip, g.djp, n, 30));
    pad30.push_back(overhead_pct(p.dip, p.djp, n, 30));
    // Section 4.5's cubic estimate: relative pad overhead is K-invariant,
    // so the paper's "much less, about 1.4%/0.5%" numbers correspond to the
    // measured pad bytes (30 planes' worth) amortised over a cubic N^3
    // array — i.e. the NxNx30 percentage scaled by 30/N.  We reproduce
    // that arithmetic explicitly.
    gcdN.push_back(gcd30.back() * 30.0 / static_cast<double>(n));
    padN.push_back(pad30.back() * 30.0 / static_cast<double>(n));
    s_g30 += gcd30.back();
    s_p30 += pad30.back();
    s_gN += gcdN.back();
    s_pN += padN.back();
  }
  rt::bench::print_series(
      "Figure 22: JACOBI memory increase from padding (NxNx30), %", "N",
      sizes, {"GcdPad", "Pad"}, {gcd30, pad30});
  rt::bench::print_series(
      "Figure 22 (Section 4.5 cubic-amortised estimate), %", "N", sizes,
      {"GcdPad", "Pad"}, {gcdN, padN});

  const double c = static_cast<double>(sizes.size());
  std::cout << "\nAverages (NxNx30): GcdPad " << rt::bench::fmt(s_g30 / c, 1)
            << "%  Pad " << rt::bench::fmt(s_p30 / c, 1)
            << "%   (paper: 14.7% and 4.7%)\n";
  std::cout << "Averages (cubic):  GcdPad " << rt::bench::fmt(s_gN / c, 1)
            << "%  Pad " << rt::bench::fmt(s_pN / c, 1)
            << "%   (paper: ~1.4% and ~0.5%)\n";
  return 0;
}
