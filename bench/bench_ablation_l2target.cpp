// Ablation: which cache level should tiling target?  The paper targets the
// 16K L1 and observes indirect L2 improvements (Section 4.3, citing the
// authors' SC'99 multi-level result).  Here we compare planner targets:
//   L1 target — Cs = 2048 doubles  (the paper's choice)
//   L2 target — Cs = 262144 doubles (2MB): huge tiles that protect L2
//               group reuse but overflow L1.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/gcdpad.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(300, 500, 100, 50);
  const auto spec = rt::core::StencilSpec::jacobi3d();

  std::vector<std::string> header{"N",        "target", "tile",
                                  "L1 miss %", "L2 miss % (global)",
                                  "sim MFlops"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    rt::bench::RunOptions ro;
    ro.time_steps = bo.steps;
    const auto orig =
        rt::bench::run_kernel(KernelId::kJacobi, Transform::kOrig, n, ro);
    rows.push_back({std::to_string(n), "untiled", "-",
                    rt::bench::fmt(orig.l1_miss_pct, 1),
                    rt::bench::fmt(orig.l2_miss_pct, 2),
                    rt::bench::fmt(orig.sim_mflops, 1)});
    for (const long cs : {2048L, 262144L}) {
      const auto g = rt::core::gcd_pad(cs, n, n, spec);
      rt::core::TilingPlan plan;
      plan.transform = Transform::kGcdPad;
      plan.tiled = g.tile.ti > 0 && g.tile.tj > 0;
      plan.tile = g.tile;
      plan.dip = g.dip;
      plan.djp = g.djp;
      const auto r =
          rt::bench::run_kernel_with_plan(KernelId::kJacobi, plan, n, ro);
      rows.push_back({std::to_string(n), cs == 2048 ? "L1 (16K)" : "L2 (2M)",
                      "(" + std::to_string(plan.tile.ti) + "," +
                          std::to_string(plan.tile.tj) + ")",
                      rt::bench::fmt(r.l1_miss_pct, 1),
                      rt::bench::fmt(r.l2_miss_pct, 2),
                      rt::bench::fmt(r.sim_mflops, 1)});
    }
  }
  std::cout << "Ablation: tiling target level, JACOBI (GcdPad plans)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nL1-targeted tiles repair the L2 loss as a side effect "
               "(avoided L1 misses never\nreach L2) — the paper's reason "
               "for targeting only the L1.  Note the L2-sized\nGcdPad tile "
               "is actively *harmful* at L1: its power-of-two pads make the "
               "plane\nstride a multiple of the 2048-element L1, so all "
               "planes alias.\n";
  return 0;
}
