// Reproduces paper Section 4.6: the MGRID application experiment — tile
// RESID (with GcdPad padding) at the finest grid only, and measure the
// whole-application effect.  The paper reports 6% total execution time
// improvement at the SPEC reference size 130x130x130, noting that this
// size "initially encounters a modest L1 miss rate of only 6.8%", and
// expects "additional improvements ... from tiling the remaining
// subroutines" — so we also report the RESID+PSINV-tiled variant.
//
// Inter-variable padding (Section 3.5) staggers the solver's array bases:
// without it a back-to-back layout of the padded 160x144x130 arrays puts
// V(i,j,k) exactly on top of U(i,j,k) in the 16K L1 and *destroys* the
// benefit (see docs/THEORY.md Section 5 and EXPERIMENTS.md).
//
// Host fast path: the same application re-runs natively with the V-cycle
// operators on rt::par threads and/or the rt::simd row kernels
// (--threads=N --simd=auto), bit-identical to the serial accessor path —
// the residual-norm cross-check enforces it.  Per-operator phase timings
// and plan-cache hit/miss counters land in the --json=FILE records.
//
// Plan searches go through rt::core::PlanCache: the GcdPad search runs
// once and every repeat query (per variant, per level, per rerun) is a
// recorded cache hit; the bench asserts the cached plan is identical to a
// direct plan_for_checked search.
//
// Setup/initialisation is excluded from the measured statistics, and the
// solver runs 4 V-cycles (the MGRID reference iteration count).
// Correctness: all variants must produce bitwise-identical residual norms.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/multigrid/mg_solver.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool same_plan(const rt::core::TilingPlan& a, const rt::core::TilingPlan& b) {
  return a.transform == b.transform && a.tiled == b.tiled &&
         a.tile.ti == b.tile.ti && a.tile.tj == b.tile.tj && a.dip == b.dip &&
         a.djp == b.djp;
}

/// One native full-application run: setup + `iters` V-cycles, timed.
struct HostRun {
  double rn = 0;       ///< final residual norm (bit-identity check)
  double seconds = 0;  ///< wall-clock of the measured V-cycles
  double mflops = 0;   ///< analytic flops of the V-cycles / seconds
  int threads = 1;
  rt::simd::SimdLevel lvl = rt::simd::SimdLevel::kScalar;
  rt::multigrid::MgSolver::Phases phases;
};

HostRun run_host(const rt::multigrid::MgOptions& o, int iters) {
  rt::multigrid::MgSolver s(o);
  s.setup();
  const std::uint64_t f0 = s.flops();
  const double t0 = now_seconds();
  HostRun h;
  for (int i = 0; i < iters; ++i) h.rn = s.iterate();
  h.seconds = now_seconds() - t0;
  h.mflops = static_cast<double>(s.flops() - f0) / h.seconds / 1e6;
  h.threads = s.threads();
  h.lvl = s.simd_level();
  h.phases = s.phases();
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const int lt = bo.nmax > 0 ? static_cast<int>(bo.nmax) : 7;
  const int iters = bo.steps > 2 ? bo.steps : 4;
  const long n = (1L << lt) + 2;

  const auto resid_spec = rt::core::StencilSpec::resid27();
  rt::core::PlanCache& cache = rt::core::PlanCache::instance();
  // The GcdPad search runs once; the second query — and every per-variant
  // re-query below — is a cache hit returning the memoized report.
  const rt::core::PlanReport direct = rt::core::plan_for_checked(
      rt::core::Transform::kGcdPad, 2048, n, n, resid_spec);
  const rt::core::PlanReport rep =
      cache.plan(rt::core::Transform::kGcdPad, 2048, n, n, resid_spec);
  const rt::core::PlanReport rep2 =
      cache.plan(rt::core::Transform::kGcdPad, 2048, n, n, resid_spec);
  if (!same_plan(rep.plan, direct.plan) || !same_plan(rep2.plan, rep.plan)) {
    std::cerr << "ERROR: PlanCache returned a plan differing from the "
                 "direct search\n";
    return 1;
  }
  // Tuned winners pin *after* the model-consistency check above (a pinned
  // plan intentionally differs from the direct search); the re-query below
  // serves the pinned plan when the store has one for this key.
  std::cout << rt::bench::apply_tune_options(bo, cache) << "\n";
  const rt::core::TilingPlan gcd_plan =
      cache.plan(rt::core::Transform::kGcdPad, 2048, n, n, resid_spec).plan;

  std::cout << "MGRID experiment (paper Section 4.6): " << n << "^3 finest "
            << "grid, " << iters << " V-cycle iterations\n"
            << "  GcdPad plan: tile (" << gcd_plan.tile.ti << ","
            << gcd_plan.tile.tj << "), finest arrays padded to "
            << gcd_plan.dip << "x" << gcd_plan.djp
            << ", bases staggered (Section 3.5)\n\n";

  struct Cfg {
    const char* name;
    bool tiled;
    bool psinv;
  } cfgs[] = {{"Orig", false, false},
              {"GcdPad RESID", true, false},
              {"GcdPad RESID+PSINV", true, true}};

  double base_rn = -1;
  if (bo.simulate) {
    std::vector<std::vector<std::string>> rows;
    double base_cycles = 0, base_cycles_rd = 0, base_host = 0;
    for (const Cfg& c : cfgs) {
      rt::multigrid::MgOptions o;
      o.lt = lt;
      if (c.tiled) {
        o.resid_plan = cache
                           .plan(rt::core::Transform::kGcdPad, 2048, n, n,
                                 resid_spec)
                           .plan;
      }
      o.tile_psinv = c.psinv;

      rt::cachesim::CacheHierarchy hier =
          rt::cachesim::CacheHierarchy::ultrasparc2();
      rt::multigrid::MgSolver sim(o, &hier);
      sim.setup();
      hier.reset_stats();
      double rn = 0;
      for (int i = 0; i < iters; ++i) rn = sim.iterate();
      auto st = hier.stats();
      st.flops = sim.flops();
      rt::cachesim::PerfModelParams rd;
      rd.read_stalls_only = true;
      const double cyc = rt::cachesim::PerfModel().cycles(st);
      const double cyc_rd = rt::cachesim::PerfModel(rd).cycles(st);

      rt::multigrid::MgSolver nat(o);
      nat.setup();
      const double t0 = now_seconds();
      double rn_host = 0;
      for (int i = 0; i < iters; ++i) rn_host = nat.iterate();
      const double host = now_seconds() - t0;
      if (rn_host != rn) {
        std::cerr << "ERROR: traced and native runs disagree\n";
        return 1;
      }
      if (base_rn < 0) {
        base_rn = rn;
        base_cycles = cyc;
        base_cycles_rd = cyc_rd;
        base_host = host;
      } else if (rn != base_rn) {
        std::cerr << "ERROR: tiled solver changed the numerics\n";
        return 1;
      }

      const auto impr = [](double base, double v) {
        return rt::bench::fmt(100.0 * (base - v) / base, 1) + "%";
      };
      rows.push_back(
          {c.name,
           rt::bench::fmt(100.0 * st.l1.miss_rate(), 2),
           rt::bench::fmt(100.0 * st.l1.read_misses /
                              static_cast<double>(st.l1.read_accesses),
                          2),
           rt::bench::fmt(100.0 * st.l2_global_miss_rate(), 2),
           rt::bench::fmt(cyc / 1e6, 0), impr(base_cycles, cyc),
           rt::bench::fmt(cyc_rd / 1e6, 0), impr(base_cycles_rd, cyc_rd),
           rt::bench::fmt(host, 2), impr(base_host, host)});
    }

    rt::bench::print_table({"version", "L1 miss %", "L1 read miss %",
                            "L2 miss % (global)", "Mcycles", "impr",
                            "Mcycles (read-stall)", "impr", "host sec",
                            "impr"},
                           rows);
  }

  // --- Host fast path: the full application on threads + SIMD rows ---
  const int want_threads = bo.threads;  // 0 = all hardware threads
  const rt::simd::SimdMode want_simd =
      bo.simd_given ? bo.simd : rt::simd::SimdMode::kAuto;
  struct HostCfg {
    const char* name;
    int threads;
    rt::simd::SimdMode simd;
  } hostcfgs[] = {
      {"serial tiled (accessor)", 1, rt::simd::SimdMode::kOff},
      {"simd rows", 1, want_simd},
      {"par (accessor)", want_threads, rt::simd::SimdMode::kOff},
      {"par + simd", want_threads, want_simd},
  };

  std::vector<std::vector<std::string>> hrows;
  std::vector<HostRun> hruns;
  double serial_mflops = 0;
  for (const HostCfg& hc : hostcfgs) {
    rt::multigrid::MgOptions o;
    o.lt = lt;
    o.resid_plan =
        cache.plan(rt::core::Transform::kGcdPad, 2048, n, n, resid_spec).plan;
    o.tile_psinv = true;
    o.threads = hc.threads;
    o.simd = hc.simd;
    o.counters = bo.counters;
    const HostRun h = run_host(o, iters);
    if (base_rn < 0) base_rn = h.rn;
    if (h.rn != base_rn) {
      std::cerr << "ERROR: host fast path (" << hc.name
                << ") changed the numerics\n";
      return 1;
    }
    if (serial_mflops == 0) serial_mflops = h.mflops;
    hruns.push_back(h);
    hrows.push_back({hc.name, std::to_string(h.threads),
                     rt::simd::simd_level_name(h.lvl),
                     rt::bench::fmt(h.seconds, 2),
                     rt::bench::fmt(h.mflops, 1),
                     rt::bench::fmt(h.mflops / serial_mflops, 2) + "x"});
  }
  std::cout << "\nHost fast path (full application, " << iters
            << " V-cycles, GcdPad RESID+PSINV):\n\n";
  rt::bench::print_table(
      {"version", "threads", "simd", "host sec", "MFlops", "speedup"}, hrows);
  const auto cs = cache.stats();
  std::cout << "\nplan cache: " << cs.hits << " hits / " << cs.misses
            << " misses (hit rate "
            << rt::bench::fmt(100.0 * cs.hit_rate(), 1)
            << "%); cached plan identical to direct search: yes\n";

  // Per-operator phase breakdown of the fastest variant.
  const rt::multigrid::MgSolver::Phases& ph = hruns.back().phases;
  std::vector<std::vector<std::string>> prow;
  const auto add_phase = [&](const char* name,
                             const rt::obs::PhaseStats& p) {
    prow.push_back({name, std::to_string(p.count),
                    rt::bench::fmt(p.total_s, 3),
                    rt::bench::fmt(p.mean_s() * 1e3, 3)});
  };
  add_phase("resid", ph.resid);
  add_phase("psinv", ph.psinv);
  add_phase("rprj3", ph.rprj3);
  add_phase("interp", ph.interp);
  add_phase("comm3", ph.comm3);
  add_phase("zero3", ph.zero3);
  add_phase("norm2u3", ph.norm);
  std::cout << "\nPer-operator phases (par + simd variant):\n\n";
  rt::bench::print_table({"operator", "calls", "total s", "mean ms"}, prow);

  if (!bo.json.empty()) {
    rt::obs::MetricsWriter w;
    for (std::size_t i = 0; i < hruns.size(); ++i) {
      const HostRun& h = hruns[i];
      rt::obs::JsonValue& rec = w.add_record();
      rec.set("kernel", "MGRID")
          .set("n", n)
          .set("transform", "GcdPad")
          .set("tile", std::to_string(gcd_plan.tile.ti) + "x" +
                           std::to_string(gcd_plan.tile.tj))
          .set("simd", rt::simd::simd_mode_name(hostcfgs[i].simd))
          .set("simd_level", rt::simd::simd_level_name(h.lvl))
          .set("threads", h.threads)
          .set("iters", iters)
          .set("host_seconds", h.seconds)
          .set("mflops", h.mflops)
          .set("speedup_vs_serial", h.mflops / serial_mflops)
          .set("plan_cache", rt::bench::plan_cache_json(cache.stats()))
          .set("phases",
               rt::bench::phases_json({{"resid", h.phases.resid},
                                       {"psinv", h.phases.psinv},
                                       {"rprj3", h.phases.rprj3},
                                       {"interp", h.phases.interp},
                                       {"comm3", h.phases.comm3},
                                       {"zero3", h.phases.zero3},
                                       {"norm2u3", h.phases.norm}}));
    }
    if (!w.write_file(bo.json)) {
      std::cerr << "ERROR: cannot write " << bo.json << "\n";
      return 1;
    }
    std::cout << "\nwrote " << w.num_records() << " records to " << bo.json
              << "\n";
  }

  if (bo.simulate) {
    // Kernel-level context: RESID alone at the reference size, so the
    // app-level number can be related to the paper's Table 3 row.
    rt::bench::RunOptions ro;
    ro.k_dim = n;
    ro.time_steps = 1;
    ro.backend = bo.resolved_backend(ro.geom());
    const auto r_orig = rt::bench::run_kernel(
        rt::kernels::KernelId::kResid, rt::core::Transform::kOrig, n, ro);
    const auto r_gcd = rt::bench::run_kernel(
        rt::kernels::KernelId::kResid, rt::core::Transform::kGcdPad, n, ro);
    std::cout << "\nRESID kernel alone at " << n << "^3: L1 "
              << rt::bench::fmt(r_orig.l1_miss_pct, 2) << "% -> "
              << rt::bench::fmt(r_gcd.l1_miss_pct, 2) << "%, sim MFlops "
              << rt::bench::fmt(r_orig.sim_mflops, 1) << " -> "
              << rt::bench::fmt(r_gcd.sim_mflops, 1) << "\n";

    std::cout << "\nPaper: 6% total-time improvement at 130^3 (hardware).  "
                 "Simulated cycles land\nwithin a few percent of neutral at "
                 "this size — the L1 gain is real (see the\nread-miss "
                 "column) but partially offset in-model by tiled RESID's "
                 "deeper K-sweeps\ncosting some L2 plane reuse at K=130; "
                 "EXPERIMENTS.md discusses the deviation.\n";
  }
  std::cout << "Residual norms bitwise identical across variants: yes\n";
  return 0;
}
