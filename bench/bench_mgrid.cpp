// Reproduces paper Section 4.6: the MGRID application experiment — tile
// RESID (with GcdPad padding) at the finest grid only, and measure the
// whole-application effect.  The paper reports 6% total execution time
// improvement at the SPEC reference size 130x130x130, noting that this
// size "initially encounters a modest L1 miss rate of only 6.8%", and
// expects "additional improvements ... from tiling the remaining
// subroutines" — so we also report the RESID+PSINV-tiled variant.
//
// Inter-variable padding (Section 3.5) staggers the solver's array bases:
// without it a back-to-back layout of the padded 160x144x130 arrays puts
// V(i,j,k) exactly on top of U(i,j,k) in the 16K L1 and *destroys* the
// benefit (see docs/THEORY.md Section 5 and EXPERIMENTS.md).
//
// Setup/initialisation is excluded from the measured statistics, and the
// solver runs 4 V-cycles (the MGRID reference iteration count).
// Correctness: all variants must produce bitwise-identical residual norms.

#include <chrono>
#include <iostream>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/core/plan.hpp"
#include "rt/multigrid/mg_solver.hpp"

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const int lt = bo.nmax > 0 ? static_cast<int>(bo.nmax) : 7;
  const int iters = bo.steps > 2 ? bo.steps : 4;
  const long n = (1L << lt) + 2;

  const auto resid_spec = rt::core::StencilSpec::resid27();
  const auto gcd_plan =
      rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n, resid_spec);

  std::cout << "MGRID experiment (paper Section 4.6): " << n << "^3 finest "
            << "grid, " << iters << " V-cycle iterations\n"
            << "  GcdPad plan: tile (" << gcd_plan.tile.ti << ","
            << gcd_plan.tile.tj << "), finest arrays padded to "
            << gcd_plan.dip << "x" << gcd_plan.djp
            << ", bases staggered (Section 3.5)\n\n";

  struct Cfg {
    const char* name;
    bool tiled;
    bool psinv;
  } cfgs[] = {{"Orig", false, false},
              {"GcdPad RESID", true, false},
              {"GcdPad RESID+PSINV", true, true}};

  std::vector<std::vector<std::string>> rows;
  double base_cycles = 0, base_cycles_rd = 0, base_host = 0, base_rn = -1;
  for (const Cfg& c : cfgs) {
    rt::multigrid::MgOptions o;
    o.lt = lt;
    if (c.tiled) o.resid_plan = gcd_plan;
    o.tile_psinv = c.psinv;

    rt::cachesim::CacheHierarchy hier =
        rt::cachesim::CacheHierarchy::ultrasparc2();
    rt::multigrid::MgSolver sim(o, &hier);
    sim.setup();
    hier.reset_stats();
    double rn = 0;
    for (int i = 0; i < iters; ++i) rn = sim.iterate();
    auto st = hier.stats();
    st.flops = sim.flops();
    rt::cachesim::PerfModelParams rd;
    rd.read_stalls_only = true;
    const double cyc = rt::cachesim::PerfModel().cycles(st);
    const double cyc_rd = rt::cachesim::PerfModel(rd).cycles(st);

    rt::multigrid::MgSolver nat(o);
    nat.setup();
    const double t0 = now_seconds();
    double rn_host = 0;
    for (int i = 0; i < iters; ++i) rn_host = nat.iterate();
    const double host = now_seconds() - t0;
    if (rn_host != rn) {
      std::cerr << "ERROR: traced and native runs disagree\n";
      return 1;
    }
    if (base_rn < 0) {
      base_rn = rn;
      base_cycles = cyc;
      base_cycles_rd = cyc_rd;
      base_host = host;
    } else if (rn != base_rn) {
      std::cerr << "ERROR: tiled solver changed the numerics\n";
      return 1;
    }

    const auto impr = [](double base, double v) {
      return rt::bench::fmt(100.0 * (base - v) / base, 1) + "%";
    };
    rows.push_back(
        {c.name,
         rt::bench::fmt(100.0 * st.l1.miss_rate(), 2),
         rt::bench::fmt(100.0 * st.l1.read_misses /
                            static_cast<double>(st.l1.read_accesses),
                        2),
         rt::bench::fmt(100.0 * st.l2_global_miss_rate(), 2),
         rt::bench::fmt(cyc / 1e6, 0), impr(base_cycles, cyc),
         rt::bench::fmt(cyc_rd / 1e6, 0), impr(base_cycles_rd, cyc_rd),
         rt::bench::fmt(host, 2), impr(base_host, host)});
  }

  rt::bench::print_table({"version", "L1 miss %", "L1 read miss %",
                          "L2 miss % (global)", "Mcycles", "impr",
                          "Mcycles (read-stall)", "impr", "host sec",
                          "impr"},
                         rows);

  // Kernel-level context: RESID alone at the reference size, so the
  // app-level number can be related to the paper's Table 3 row.
  rt::bench::RunOptions ro;
  ro.k_dim = n;
  ro.time_steps = 1;
  const auto r_orig = rt::bench::run_kernel(rt::kernels::KernelId::kResid,
                                            rt::core::Transform::kOrig, n, ro);
  const auto r_gcd = rt::bench::run_kernel(rt::kernels::KernelId::kResid,
                                           rt::core::Transform::kGcdPad, n,
                                           ro);
  std::cout << "\nRESID kernel alone at " << n << "^3: L1 "
            << rt::bench::fmt(r_orig.l1_miss_pct, 2) << "% -> "
            << rt::bench::fmt(r_gcd.l1_miss_pct, 2) << "%, sim MFlops "
            << rt::bench::fmt(r_orig.sim_mflops, 1) << " -> "
            << rt::bench::fmt(r_gcd.sim_mflops, 1) << "\n";

  std::cout << "\nPaper: 6% total-time improvement at 130^3 (hardware).  "
               "Simulated cycles land\nwithin a few percent of neutral at "
               "this size — the L1 gain is real (see the\nread-miss "
               "column) but partially offset in-model by tiled RESID's "
               "deeper K-sweeps\ncosting some L2 plane reuse at K=130; "
               "EXPERIMENTS.md discusses the deviation.\n"
            << "Residual norms bitwise identical across variants: yes\n";
  return 0;
}
