// Load benchmark for rt::serve: drive an in-process Server over real
// loopback sockets with concurrent clients and measure end-to-end request
// latency (p50/p99) and throughput (req/s), with request batching on vs
// off over the same same-shape JACOBI mix.
//
// Two client disciplines per batching mode:
//
//   closed-loop  each client issues its next request only after receiving
//                the previous response — measures server latency under a
//                fixed concurrency level (batching can only coalesce
//                requests from *different* clients).
//   open-loop    each client pipelines requests at a fixed arrival rate
//                and a reader thread drains responses — measures behaviour
//                under queueing pressure, where batching earns its keep by
//                collapsing the backlog into shared plan/alloc/solve work.
//
// Every response's checksum is verified against the same solve computed
// directly (the batch-binary path: plan_for_checked + runner init + serial
// kernels).  Any mismatch, protocol error, or failed request exits 1 —
// this bench doubles as the end-to-end proof that batching and concurrency
// change scheduling, never results.
//
// Flags: --clients=N --requests=N (per client) --n=SIZE --tsteps=N
//        --rate=REQ_S (open-loop per-client arrival rate)
//        --executors=N --solver-threads=N --full --json=FILE
//        (results/BENCH_8.json schema)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/serve/client.hpp"
#include "rt/serve/protocol.hpp"
#include "rt/serve/server.hpp"
#include "rt/serve/solve.hpp"

using rt::guard::Status;
using rt::obs::JsonValue;
using rt::serve::Client;
using rt::serve::Server;
using rt::serve::ServerOptions;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Config {
  int clients = 4;
  int requests = 40;  ///< per client
  long n = 64;
  int tsteps = 2;
  double rate = 400;  ///< open-loop arrivals per second per client
  int executors = 2;
  int solver_threads = 1;
  std::string json;
};

JsonValue solve_req(long long id, long n, int tsteps) {
  JsonValue r = JsonValue::object();
  r.set("id", id);
  r.set("op", "solve");
  r.set("kernel", "JACOBI");
  r.set("n", n);
  r.set("tsteps", tsteps);
  r.set("transform", "gcdpad");
  return r;
}

/// Direct (no server, serial) JACOBI reference checksum — the batch-binary
/// computation the served result must match bit for bit.
std::string reference_checksum(long n, int tsteps) {
  const rt::core::StencilSpec& spec =
      rt::kernels::kernel_info(rt::kernels::KernelId::kJacobi).spec;
  const long cs = rt::serve::serve_cs_elems();
  const rt::core::PlanReport rep =
      rt::core::plan_for_checked(rt::core::Transform::kGcdPad, cs, n, n,
                                 spec, n);
  const rt::array::Dims3 dims =
      rt::array::Dims3::padded(n, n, n, rep.plan.dip, rep.plan.djp);
  rt::array::Array3D<double> a(dims), b(dims);
  for (int idx = 0; idx < 2; ++idx) {
    rt::array::Array3D<double>& g = idx == 0 ? a : b;
    const double scale = 1.0 / (1.0 + idx);
    for (long k = 0; k < g.n3(); ++k) {
      for (long j = 0; j < g.n2(); ++j) {
        for (long i = 0; i < g.n1(); ++i) {
          g(i, j, k) = scale * (0.001 * static_cast<double>(i) +
                                0.002 * static_cast<double>(j) +
                                0.003 * static_cast<double>(k));
        }
      }
    }
  }
  for (int t = 0; t < tsteps; ++t) {
    if (rep.plan.tiled) {
      rt::kernels::jacobi3d_tiled(a, b, 1.0 / 6.0, rep.plan.tile);
    } else {
      rt::kernels::jacobi3d(a, b, 1.0 / 6.0);
    }
    rt::kernels::copy_interior(b, a);
  }
  return rt::serve::checksum_hex(rt::serve::checksum_region(a));
}

struct ScenarioResult {
  std::string scenario;  ///< "closed" / "open"
  bool batching = false;
  double wall_s = 0;
  long completed = 0;
  long overloaded = 0;
  long errors = 0;       ///< wrong checksum / unexpected status / IO
  std::vector<double> latencies_s;
  JsonValue server_stats;

  double req_per_s() const {
    return wall_s > 0 ? static_cast<double>(completed) / wall_s : 0;
  }
  double percentile(double q) const {
    if (latencies_s.empty()) return 0;
    std::vector<double> v = latencies_s;
    const std::size_t idx = std::min(
        v.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(v.size() - 1) + 0.5));
    std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
    return v[idx];
  }
  double mean() const {
    if (latencies_s.empty()) return 0;
    double s = 0;
    for (double x : latencies_s) s += x;
    return s / static_cast<double>(latencies_s.size());
  }
};

/// The mix: same BatchKey throughout (one shape, one transform), two
/// dedup groups (tsteps and tsteps+1 alternating per request).
int tsteps_for(const Config& cfg, int i) {
  return cfg.tsteps + (i % 2);
}

ScenarioResult run_closed(const Config& cfg, bool batching,
                          const std::map<int, std::string>& refs) {
  ScenarioResult res;
  res.scenario = "closed";
  res.batching = batching;

  ServerOptions so;
  so.executors = cfg.executors;
  so.batching = batching;
  so.solver_threads = cfg.solver_threads;
  so.queue_depth = 1024;
  Server server(so);
  std::string why;
  if (server.start(&why) != Status::kOk) {
    std::cerr << "server start failed: " << why << "\n";
    res.errors = 1;
    return res;
  }

  std::mutex m;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      rt::guard::Expected<Client> cl = Client::connect(server.port());
      if (!cl.ok()) {
        std::lock_guard<std::mutex> lk(m);
        ++res.errors;
        return;
      }
      std::vector<double> lats;
      long done = 0, bad = 0;
      for (int i = 0; i < cfg.requests; ++i) {
        const long long id = 1'000'000LL * c + i;
        const int ts = tsteps_for(cfg, i);
        const Clock::time_point sent = Clock::now();
        rt::guard::Expected<JsonValue> resp =
            cl.value().call(solve_req(id, cfg.n, ts));
        const double lat = seconds_since(sent);
        if (!resp.ok()) {
          ++bad;
          continue;
        }
        const JsonValue* st = resp.value().find("status");
        const JsonValue* sum = resp.value().find("checksum");
        if (st == nullptr || st->as_string() != "ok" || sum == nullptr ||
            sum->as_string() != refs.at(ts)) {
          ++bad;
          continue;
        }
        lats.push_back(lat);
        ++done;
      }
      std::lock_guard<std::mutex> lk(m);
      res.latencies_s.insert(res.latencies_s.end(), lats.begin(), lats.end());
      res.completed += done;
      res.errors += bad;
    });
  }
  for (std::thread& t : threads) t.join();
  res.wall_s = seconds_since(t0);
  res.server_stats = server.stats_json();
  server.stop();
  return res;
}

ScenarioResult run_open(const Config& cfg, bool batching,
                        const std::map<int, std::string>& refs) {
  ScenarioResult res;
  res.scenario = "open";
  res.batching = batching;

  ServerOptions so;
  so.executors = cfg.executors;
  so.batching = batching;
  so.solver_threads = cfg.solver_threads;
  so.queue_depth = 1024;
  Server server(so);
  std::string why;
  if (server.start(&why) != Status::kOk) {
    std::cerr << "server start failed: " << why << "\n";
    res.errors = 1;
    return res;
  }

  std::mutex m;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      rt::guard::Expected<Client> cl = Client::connect(server.port());
      if (!cl.ok()) {
        std::lock_guard<std::mutex> lk(m);
        ++res.errors;
        return;
      }
      Client& client = cl.value();

      // Sender paces arrivals; the reader drains responses concurrently so
      // pipelining depth is bounded by the server, not the socket buffer.
      std::mutex sent_m;
      std::map<long long, Clock::time_point> sent_at;
      std::vector<double> lats;
      long done = 0, over = 0, bad = 0;
      std::thread reader([&] {
        for (int got = 0; got < cfg.requests; ++got) {
          JsonValue resp;
          if (client.recv(&resp) != Status::kOk) {
            ++bad;
            return;
          }
          const JsonValue* idv = resp.find("id");
          const JsonValue* st = resp.find("status");
          if (idv == nullptr || st == nullptr) {
            ++bad;
            continue;
          }
          Clock::time_point t_sent;
          {
            std::lock_guard<std::mutex> lk(sent_m);
            t_sent = sent_at[idv->as_int()];
          }
          const std::string status = st->as_string();
          if (status == "overloaded") {
            ++over;
            continue;
          }
          const JsonValue* sum = resp.find("checksum");
          const int ts = cfg.tsteps + static_cast<int>(idv->as_int() % 2);
          if (status != "ok" || sum == nullptr ||
              sum->as_string() != refs.at(ts)) {
            ++bad;
            continue;
          }
          lats.push_back(
              std::chrono::duration<double>(Clock::now() - t_sent).count());
          ++done;
        }
      });

      const double interval_s = cfg.rate > 0 ? 1.0 / cfg.rate : 0;
      const Clock::time_point start = Clock::now();
      for (int i = 0; i < cfg.requests; ++i) {
        const long long id = 1'000'000LL * c + i;
        {
          std::lock_guard<std::mutex> lk(sent_m);
          sent_at[id] = Clock::now();
        }
        if (client.send(solve_req(id, cfg.n, tsteps_for(cfg, i))) !=
            Status::kOk) {
          ++bad;
          break;
        }
        if (interval_s > 0) {
          const double next = static_cast<double>(i + 1) * interval_s;
          const double elapsed =
              std::chrono::duration<double>(Clock::now() - start).count();
          if (next > elapsed) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(next - elapsed));
          }
        }
      }
      reader.join();

      std::lock_guard<std::mutex> lk(m);
      res.latencies_s.insert(res.latencies_s.end(), lats.begin(), lats.end());
      res.completed += done;
      res.overloaded += over;
      res.errors += bad;
    });
  }
  for (std::thread& t : threads) t.join();
  res.wall_s = seconds_since(t0);
  res.server_stats = server.stats_json();
  server.stop();
  return res;
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&a](const char* key) -> const char* {
      const std::string k = std::string(key) + "=";
      return a.rfind(k, 0) == 0 ? a.c_str() + k.size() : nullptr;
    };
    if (a == "--full") {
      cfg.clients = 8;
      cfg.requests = 150;
      cfg.n = 96;
    } else if (const char* v = val("--clients")) {
      cfg.clients = std::atoi(v);
    } else if (const char* v = val("--requests")) {
      cfg.requests = std::atoi(v);
    } else if (const char* v = val("--n")) {
      cfg.n = std::atol(v);
    } else if (const char* v = val("--tsteps")) {
      cfg.tsteps = std::atoi(v);
    } else if (const char* v = val("--rate")) {
      cfg.rate = std::atof(v);
    } else if (const char* v = val("--executors")) {
      cfg.executors = std::atoi(v);
    } else if (const char* v = val("--solver-threads")) {
      cfg.solver_threads = std::atoi(v);
    } else if (const char* v = val("--json")) {
      cfg.json = v;
    } else {
      std::cerr << "unknown flag: " << a << "\n"
                << "usage: bench_serve_load [--clients=N] [--requests=N] "
                   "[--n=SIZE] [--tsteps=N] [--rate=REQ_S] [--executors=N] "
                   "[--solver-threads=N] [--full] [--json=FILE]\n";
      return 2;
    }
  }

  std::cout << "serve load: clients=" << cfg.clients
            << " requests/client=" << cfg.requests << " JACOBI n=" << cfg.n
            << " tsteps=" << cfg.tsteps << "/" << cfg.tsteps + 1
            << " executors=" << cfg.executors
            << " solver_threads=" << cfg.solver_threads
            << " open-loop rate=" << cfg.rate << "/s/client\n\n";

  // Reference checksums for both dedup groups, computed once, directly.
  std::map<int, std::string> refs;
  refs[cfg.tsteps] = reference_checksum(cfg.n, cfg.tsteps);
  refs[cfg.tsteps + 1] = reference_checksum(cfg.n, cfg.tsteps + 1);

  std::vector<ScenarioResult> results;
  for (const bool batching : {false, true}) {
    results.push_back(run_closed(cfg, batching, refs));
    results.push_back(run_open(cfg, batching, refs));
  }

  std::vector<std::vector<std::string>> rows;
  bool failed = false;
  long total_errors = 0;
  for (const ScenarioResult& r : results) {
    total_errors += r.errors;
    const JsonValue* b = r.server_stats.find("batching");
    rows.push_back(
        {r.scenario, r.batching ? "on" : "off",
         std::to_string(r.completed), fmt(r.req_per_s(), 0),
         fmt(r.mean() * 1e3, 2), fmt(r.percentile(0.50) * 1e3, 2),
         fmt(r.percentile(0.99) * 1e3, 2),
         b != nullptr ? std::to_string(b->find("max_batch")->as_int()) : "-",
         b != nullptr ? std::to_string(b->find("dedup_shared")->as_int())
                      : "-",
         std::to_string(r.overloaded),
         r.errors > 0 ? std::to_string(r.errors) + " ERR" : "-"});
    if (r.errors > 0) failed = true;
  }
  rt::bench::print_table({"loop", "batching", "done", "req/s", "mean ms",
                          "p50 ms", "p99 ms", "max_batch", "dedup", "overl",
                          "errors"},
                         rows);

  // Throughput comparison on the same mix (the served-results acceptance
  // check: batching must not lose throughput on a same-shape mix).
  const auto by = [&](const std::string& s, bool b) -> const ScenarioResult* {
    for (const ScenarioResult& r : results) {
      if (r.scenario == s && r.batching == b) return &r;
    }
    return nullptr;
  };
  const ScenarioResult* closed_on = by("closed", true);
  const ScenarioResult* closed_off = by("closed", false);
  const ScenarioResult* open_on = by("open", true);
  const ScenarioResult* open_off = by("open", false);
  const double closed_speedup =
      closed_off != nullptr && closed_on != nullptr &&
              closed_off->req_per_s() > 0
          ? closed_on->req_per_s() / closed_off->req_per_s()
          : 0;
  const double open_speedup =
      open_off != nullptr && open_on != nullptr && open_off->req_per_s() > 0
          ? open_on->req_per_s() / open_off->req_per_s()
          : 0;
  std::cout << "\nbatching speedup (req/s on / off): closed-loop "
            << fmt(closed_speedup, 2) << "x, open-loop "
            << fmt(open_speedup, 2) << "x\n"
            << (total_errors == 0
                    ? "all served checksums match the direct computation\n"
                    : "ERROR: " + std::to_string(total_errors) +
                          " bad responses (checksum/status/protocol)\n");

  if (!cfg.json.empty()) {
    rt::obs::MetricsWriter writer;
    for (const ScenarioResult& r : results) {
      JsonValue& rec = writer.add_record();
      rec.set("bench", "serve_load").set("scenario", r.scenario);
      rec.set("batching", r.batching);
      rec.set("clients", cfg.clients).set("requests_per_client", cfg.requests);
      rec.set("kernel", "JACOBI").set("n", cfg.n);
      rec.set("tsteps_mix",
              std::to_string(cfg.tsteps) + "," + std::to_string(cfg.tsteps + 1));
      rec.set("executors", cfg.executors)
          .set("solver_threads", cfg.solver_threads);
      if (r.scenario == "open") rec.set("rate_per_client", cfg.rate);
      rec.set("completed", r.completed).set("overloaded", r.overloaded);
      rec.set("errors", r.errors);
      // Resilience outcomes are their own columns, not folded into
      // "errors": a breaker trip or a degraded-mode rejection is the
      // server protecting itself, and drowning those in the error count
      // hides exactly the signal a load run exists to surface.
      {
        const JsonValue* resil = r.server_stats.find("resilience");
        const auto counter = [&](const char* key) -> long long {
          if (resil == nullptr) return 0;
          const JsonValue* v = resil->find(key);
          return v != nullptr ? v->as_int() : 0;
        };
        rec.set("breaker_trips", counter("breaker_trips"));
        rec.set("degraded_rejections", counter("degraded_rejections"));
      }
      rec.set("wall_s", r.wall_s).set("req_per_s", r.req_per_s());
      rec.set("lat_mean_ms", r.mean() * 1e3);
      rec.set("lat_p50_ms", r.percentile(0.50) * 1e3);
      rec.set("lat_p99_ms", r.percentile(0.99) * 1e3);
      rec.set("server", r.server_stats);
      rec.set("checksums_verified", r.errors == 0);
    }
    JsonValue& sum = writer.add_record();
    sum.set("bench", "serve_load").set("scenario", "summary");
    sum.set("closed_loop_batching_speedup", closed_speedup);
    sum.set("open_loop_batching_speedup", open_speedup);
    sum.set("all_checksums_verified", total_errors == 0);
    std::string why;
    if (writer.write_file_checked(cfg.json, &why) != Status::kOk) {
      std::cerr << "error: cannot write " << cfg.json << ": " << why << "\n";
      failed = true;
    } else {
      std::cout << "wrote " << writer.num_records() << " records to "
                << cfg.json << "\n";
    }
  }
  return failed ? 1 : 0;
}
