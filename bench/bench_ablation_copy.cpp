// Ablation for paper Section 3.1: copy optimization.  "Copying tiles is
// not possible without copy operations comprising a large, constant
// fraction of the data accesses.  Copying is therefore not profitable for
// stencil codes."  We measure it: tiled Jacobi with copy-in of each array
// tile vs plain tiled Jacobi (GcdPad) vs original, counting accesses and
// simulated cycles.

#include <iostream>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/copyopt.hpp"
#include "rt/kernels/jacobi3d.hpp"

using rt::array::Array3D;
using rt::array::Dims3;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 100, 50);
  const long kd = 30;

  std::vector<std::string> header{"N",          "version", "accesses/pt",
                                  "L1 miss %",  "sim MFlops"};
  std::vector<std::vector<std::string>> rows;

  for (long n : sizes) {
    rt::bench::RunOptions ro;
    ro.time_steps = 1;
    const auto orig = rt::bench::run_kernel(rt::kernels::KernelId::kJacobi,
                                            rt::core::Transform::kOrig, n, ro);
    const auto gcd = rt::bench::run_kernel(rt::kernels::KernelId::kJacobi,
                                           rt::core::Transform::kGcdPad, n,
                                           ro);
    const double pts = static_cast<double>(n - 2) * (n - 2) * (kd - 2);

    // Copy-optimised tiled run with the same GcdPad tile and padding.
    const auto& plan = gcd.plan;
    const Dims3 dims = Dims3::padded(n, n, kd, plan.dip, plan.djp);
    Array3D<double> a(dims), b(dims);
    Array3D<double> buf(plan.tile.ti + 2, plan.tile.tj + 2, 3);
    for (long k = 0; k < kd; ++k)
      for (long j = 0; j < n; ++j)
        for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);
    rt::array::AddressSpace space(0, 64);
    const auto ba =
        space.place("a", static_cast<std::uint64_t>(dims.alloc_elems()));
    const auto bb =
        space.place("b", static_cast<std::uint64_t>(dims.alloc_elems()));
    const auto bbuf = space.place("buf", buf.size());
    rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
    rt::cachesim::TracedArray3D<double> ta(a, ba, h), tb(b, bb, h),
        tbuf(buf, bbuf, h);
    rt::kernels::jacobi3d_tiled_copy(ta, tb, tbuf, 1.0 / 6.0, plan.tile);
    rt::kernels::copy_interior(tb, ta);
    auto st = h.stats();
    st.flops = 6 * static_cast<std::uint64_t>(pts);
    const double copy_mflops = rt::cachesim::PerfModel().mflops(st);

    rows.push_back({std::to_string(n), "Orig",
                    rt::bench::fmt(orig.sim_accesses / pts, 1),
                    rt::bench::fmt(orig.l1_miss_pct, 1),
                    rt::bench::fmt(orig.sim_mflops, 1)});
    rows.push_back({std::to_string(n), "GcdPad",
                    rt::bench::fmt(gcd.sim_accesses / pts, 1),
                    rt::bench::fmt(gcd.l1_miss_pct, 1),
                    rt::bench::fmt(gcd.sim_mflops, 1)});
    rows.push_back({std::to_string(n), "GcdPad+copy",
                    rt::bench::fmt(st.l1.accesses / pts, 1),
                    rt::bench::fmt(100.0 * st.l1.miss_rate(), 1),
                    rt::bench::fmt(copy_mflops, 1)});
  }
  std::cout << "Ablation (Section 3.1): copy optimization for stencils — "
               "JACOBI, 1 time step\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nCopying inflates accesses/point by a constant fraction "
               "that stencil reuse cannot\namortise, confirming the paper's "
               "decision to reject copying for stencil codes.\n";
  return 0;
}
