// Reproduces paper Figures 20 and 21: RESID at larger problem sizes
// (400-700), demonstrating the transformations stay effective as problem
// sizes grow (paper Section 4.6 used a 450MHz UltraSparc2 for these).

#include <iostream>
#include <map>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(400, 700, 50, 10);

  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;
  ro.perf = rt::cachesim::PerfModelParams::ultrasparc2_450();
  ro.backend = bo.resolved_backend(ro.geom());

  const std::vector<Transform> all = {
      Transform::kOrig,   Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad,  Transform::kGcdPadNT};

  std::map<Transform, std::vector<double>> l1, l2, mf;
  for (long n : sizes) {
    for (Transform t : all) {
      const auto r = rt::bench::run_kernel(KernelId::kResid, t, n, ro);
      l1[t].push_back(r.l1_miss_pct);
      l2[t].push_back(r.l2_miss_pct);
      mf[t].push_back(r.sim_mflops);
    }
  }
  std::vector<std::string> names;
  std::vector<std::vector<double>> y_l1, y_l2, y_mf;
  for (Transform t : all) {
    names.push_back(std::string(rt::core::transform_name(t)));
    y_l1.push_back(l1[t]);
    y_l2.push_back(l2[t]);
    y_mf.push_back(mf[t]);
  }
  rt::bench::print_series("Figure 20: larger RESID sizes, L1 miss rate %",
                          "N", sizes, names, y_l1);
  rt::bench::print_series("Figure 20: larger RESID sizes, L2 miss rate %",
                          "N", sizes, names, y_l2);
  rt::bench::print_series(
      "Figure 21: larger RESID sizes, MFlops (sim UltraSparc2 450MHz)", "N",
      sizes, names, y_mf, 1);
  return 0;
}
