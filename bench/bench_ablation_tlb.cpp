// Ablation: TLB behaviour (cf. Mitchell et al., cited in Section 5: tiling
// decisions interact with the TLB level too).  We model an UltraSparc-style
// data TLB (64 entries, 8KB pages, fully associative) by instantiating the
// cache simulator at page granularity and replaying the same kernels.
//
// Question answered: does JI-tiling (which walks a narrow column band
// through all K planes) blow up the TLB, and does padding make it worse?

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 100, 50);

  // "L1" = 64-entry fully associative TLB with 8KB pages; "L2" = a huge
  // backing level so its stats are irrelevant.
  rt::bench::RunOptions tlb_opts;
  tlb_opts.time_steps = 1;
  tlb_opts.l1 = rt::cachesim::CacheConfig{64 * 8192, 8192, 0, true, false};
  tlb_opts.l2 =
      rt::cachesim::CacheConfig{1ULL << 30, 8192, 1, true, false};

  std::vector<std::string> header{"N", "Orig", "Tile", "GcdPad", "Pad"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (Transform t : {Transform::kOrig, Transform::kTile,
                        Transform::kGcdPad, Transform::kPad}) {
      const auto r = rt::bench::run_kernel(KernelId::kJacobi, t, n, tlb_opts);
      row.push_back(rt::bench::fmt(r.l1_miss_pct, 3));
    }
    rows.push_back(std::move(row));
  }
  std::cout << "Ablation: JACOBI TLB miss rate % (64-entry fully-assoc, 8KB "
               "pages)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nJI-tiles visit every K plane per tile, so each tile pass "
               "touches ~3 pages per\n(plane, column-band) — TLB miss rates "
               "stay tiny and padding does not hurt:\nthe cache win is not "
               "paid back at the TLB (cf. multi-level tiling, Section 5).\n";
  return 0;
}
