// Reproduces the paper's Section 1 motivation: 2D stencils keep their
// group reuse in even a small L1 for any practical column size (two columns
// of up to 1024 doubles fit in 16K), while 3D stencils lose plane reuse as
// soon as two N x N planes exceed the cache — N > 32 for 16K L1, N > 362
// for 2M L2.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/pad2d.hpp"

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;

  // 2D: miss rate vs N (flat until ~1024).
  {
    std::vector<long> ns = {64,  128, 256, 384,  512,  640,
                            768, 896, 1024, 1152, 1280, 1536};
    std::vector<double> l1, l2;
    for (long n : ns) {
      const auto m = rt::bench::run_jacobi2d_missrates(n, ro);
      l1.push_back(m.l1_pct);
      l2.push_back(m.l2_pct);
    }
    rt::bench::print_series(
        "2D Jacobi miss rates: flat until 2 columns exceed 16K L1 (N>1024)",
        "N", ns, {"L1 %", "L2 %"}, {l1, l2});
  }

  // 3D: miss rate vs N (rises once 2 planes exceed L1 at N=32; L2 reuse
  // lost at N=362).
  {
    std::vector<long> ns = {16, 24, 32, 48, 64, 96, 128, 200, 256, 300, 362,
                            400};
    std::vector<double> l1, l2;
    for (long n : ns) {
      const auto m = rt::bench::run_jacobi3d_missrates(n, 30, ro);
      l1.push_back(m.l1_pct);
      l2.push_back(m.l2_pct);
    }
    rt::bench::print_series(
        "3D Jacobi miss rates: reuse lost at N>32 (L1) and N>362 (L2)", "N",
        ns, {"L1 %", "L2 %"}, {l1, l2});
  }
  // 2D pathological leading dimensions (Section 2.1: 2D codes may still
  // need *padding* to preserve group reuse): when N divides the cache,
  // the stencil's adjacent columns alias and reuse collapses; a few
  // elements of intra-array padding (pad2d) restore it without tiling.
  {
    // Guard = one 32B cache line (4 doubles): pad only when active column
    // windows actually share lines.  A larger guard would pad dims like
    // 1020 that are within the 2-column capacity budget (2N <= 2048) and
    // push them over it — worse than the disease.
    std::vector<long> ns = {510, 512, 516, 1020, 1024, 1030};
    std::vector<double> plain, padded;
    std::vector<long> pads;
    for (long n : ns) {
      plain.push_back(rt::bench::run_jacobi2d_missrates(n, ro).l1_pct);
      const long p1 = rt::core::pad2d(2048, n, /*window_cols=*/3,
                                      /*guard=*/4);
      pads.push_back(p1 - n);
      padded.push_back(rt::bench::run_jacobi2d_missrates(n, ro, p1).l1_pct);
    }
    rt::bench::print_series(
        "2D Jacobi at pathological N: padding alone restores group reuse "
        "(Section 2.1)",
        "N", ns, {"L1 % plain", "L1 % padded"}, {plain, padded});
    std::cout << "pads applied (elements):";
    for (long p : pads) std::cout << " " << p;
    std::cout << "\n";
  }

  std::cout << "\nThis is why the paper's tiling targets 3D codes: the 2D "
               "curve stays flat across\nall practical sizes (padding fixes "
               "the rare pathological N), the 3D curve does\nnot (Section "
               "1).\n";
  return 0;
}
