// Application-level benchmark for the paper's strongest kernel: a complete
// red-black SOR Poisson solve, original vs fused+tiled+padded (GcdPad),
// through the simulated UltraSparc2.  Unlike MGRID (where RESID is one of
// many subroutines), the red-black sweep *is* this application, so the
// Table-3-sized kernel gains should carry straight through to the
// application — and they do.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/core/plan.hpp"
#include "rt/multigrid/sor_solver.hpp"

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes =
      (bo.nmin > 0 || bo.nmax > 0) ? bo.sweep(100, 300, 100, 50)
                                   : std::vector<long>{130, 200, 260};
  const int sweeps = bo.steps > 2 ? bo.steps : 6;

  std::vector<std::string> header{"n^3",     "version", "tile",
                                  "L1 miss %", "L2 miss %", "sim Mcycles",
                                  "impr",    "residual"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    double base_cycles = 0;
    double base_resid = -1;
    for (const bool tiled : {false, true}) {
      rt::multigrid::SorOptions o;
      o.n = n;
      if (tiled) {
        o.plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n,
                                    rt::core::StencilSpec::redblack3d());
      }
      rt::cachesim::CacheHierarchy h =
          rt::cachesim::CacheHierarchy::ultrasparc2();
      rt::multigrid::SorSolver s(o, &h);
      s.setup();
      for (int i = 0; i < sweeps; ++i) s.sweep();
      const double resid = s.residual_linf();
      auto st = h.stats();
      st.flops = s.flops();
      const double cyc = rt::cachesim::PerfModel().cycles(st);
      if (!tiled) {
        base_cycles = cyc;
        base_resid = resid;
      } else if (resid != base_resid) {
        std::cerr << "ERROR: tiled SOR changed the numerics\n";
        return 1;
      }
      rows.push_back(
          {std::to_string(n), tiled ? "GcdPad fused+tiled" : "naive",
           tiled ? "(" + std::to_string(o.plan.tile.ti) + "," +
                       std::to_string(o.plan.tile.tj) + ")"
                 : "-",
           rt::bench::fmt(100.0 * st.l1.miss_rate(), 1),
           rt::bench::fmt(100.0 * st.l2_global_miss_rate(), 2),
           rt::bench::fmt(cyc / 1e6, 0),
           rt::bench::fmt(100.0 * (base_cycles - cyc) / base_cycles, 1) + "%",
           rt::bench::fmt(resid, 6)});
    }
  }
  std::cout << "Red-black SOR Poisson application, " << sweeps
            << " sweeps (simulated UltraSparc2)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nThe sweep is the whole application here, so the paper's "
               "REDBLACK kernel gains\n(Table 3's largest) carry through "
               "at application level, with identical numerics.\n";
  return 0;
}
