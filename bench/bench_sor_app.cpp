// Application-level benchmark for the paper's strongest kernel: a complete
// red-black SOR Poisson solve, original vs fused+tiled+padded (GcdPad),
// through the simulated UltraSparc2.  Unlike MGRID (where RESID is one of
// many subroutines), the red-black sweep *is* this application, so the
// Table-3-sized kernel gains should carry straight through to the
// application — and they do.
//
// Host fast path: the tiled application re-runs natively with the sweeps
// on rt::par threads and/or the rt::simd row kernels (--threads=N
// --simd=auto), bit-identical to the serial path (residual cross-check).
// Plan searches go through rt::core::PlanCache, so the per-size GcdPad
// search runs once however many variants reuse it; --json=FILE records
// carry the hit/miss counters and per-phase timings.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/guard/status.hpp"
#include "rt/multigrid/sor_solver.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes =
      (bo.nmin > 0 || bo.nmax > 0) ? bo.sweep(100, 300, 100, 50)
                                   : std::vector<long>{130, 200, 260};
  const int sweeps = bo.steps > 2 ? bo.steps : 6;
  rt::core::PlanCache& cache = rt::core::PlanCache::instance();
  const auto rb_spec = rt::core::StencilSpec::redblack3d();
  // --tune: pin stored winners so the per-size plan queries below serve
  // the measured plan ahead of the model search.
  std::cout << rt::bench::apply_tune_options(bo, cache) << "\n";

  if (bo.simulate) {
    std::vector<std::string> header{"n^3",       "version",   "tile",
                                    "L1 miss %", "L2 miss %", "sim Mcycles",
                                    "impr",      "residual"};
    std::vector<std::vector<std::string>> rows;
    for (long n : sizes) {
      double base_cycles = 0;
      double base_resid = -1;
      for (const bool tiled : {false, true}) {
        rt::multigrid::SorOptions o;
        o.n = n;
        if (tiled) {
          o.plan = cache
                       .plan(rt::core::Transform::kGcdPad, 2048, n, n,
                             rb_spec)
                       .plan;
        }
        rt::cachesim::CacheHierarchy h =
            rt::cachesim::CacheHierarchy::ultrasparc2();
        rt::multigrid::SorSolver s(o, &h);
        s.setup();
        for (int i = 0; i < sweeps; ++i) s.sweep();
        const double resid = s.residual_linf();
        auto st = h.stats();
        st.flops = s.flops();
        const double cyc = rt::cachesim::PerfModel().cycles(st);
        if (!tiled) {
          base_cycles = cyc;
          base_resid = resid;
        } else if (resid != base_resid) {
          std::cerr << "ERROR: tiled SOR changed the numerics\n";
          return 1;
        }
        rows.push_back(
            {std::to_string(n), tiled ? "GcdPad fused+tiled" : "naive",
             tiled ? "(" + std::to_string(o.plan.tile.ti) + "," +
                         std::to_string(o.plan.tile.tj) + ")"
                   : "-",
             rt::bench::fmt(100.0 * st.l1.miss_rate(), 1),
             rt::bench::fmt(100.0 * st.l2_global_miss_rate(), 2),
             rt::bench::fmt(cyc / 1e6, 0),
             rt::bench::fmt(100.0 * (base_cycles - cyc) / base_cycles, 1) +
                 "%",
             rt::bench::fmt(resid, 6)});
      }
    }
    std::cout << "Red-black SOR Poisson application, " << sweeps
              << " sweeps (simulated UltraSparc2)\n\n";
    rt::bench::print_table(header, rows);
    std::cout << "\nThe sweep is the whole application here, so the paper's "
                 "REDBLACK kernel gains\n(Table 3's largest) carry through "
                 "at application level, with identical numerics.\n";
  }

  // --- Host fast path: the full application on threads + SIMD rows ---
  const long n = sizes.size() == 3 && sizes[1] == 200 ? 200 : sizes.back();
  const int want_threads = bo.threads;  // 0 = all hardware threads
  const rt::simd::SimdMode want_simd =
      bo.simd_given ? bo.simd : rt::simd::SimdMode::kAuto;
  struct HostCfg {
    const char* name;
    int threads;
    rt::simd::SimdMode simd;
  } hostcfgs[] = {
      {"serial tiled (accessor)", 1, rt::simd::SimdMode::kOff},
      {"simd rows", 1, want_simd},
      {"par (accessor)", want_threads, rt::simd::SimdMode::kOff},
      {"par + simd", want_threads, want_simd},
  };

  rt::obs::MetricsWriter w;
  std::vector<std::vector<std::string>> hrows;
  double base_resid = -1;
  double serial_mflops = 0;
  for (const auto& hc : hostcfgs) {
    rt::multigrid::SorOptions o;
    o.n = n;
    o.plan =
        cache.plan(rt::core::Transform::kGcdPad, 2048, n, n, rb_spec).plan;
    o.threads = hc.threads;
    o.simd = hc.simd;
    rt::multigrid::SorSolver s(o);
    if (s.status() != rt::guard::Status::kOk) {
      std::cerr << "ERROR: SOR plan rejected: " << s.status_detail() << "\n";
      return 1;
    }
    s.setup();
    const std::uint64_t f0 = s.flops();
    const double t0 = now_seconds();
    for (int i = 0; i < sweeps; ++i) s.sweep();
    const double sec = now_seconds() - t0;
    const double mflops =
        static_cast<double>(s.flops() - f0) / sec / 1e6;
    const double resid = s.residual_linf();
    if (base_resid < 0) base_resid = resid;
    if (resid != base_resid) {
      std::cerr << "ERROR: host fast path (" << hc.name
                << ") changed the numerics\n";
      return 1;
    }
    if (serial_mflops == 0) serial_mflops = mflops;
    hrows.push_back({hc.name, std::to_string(s.threads()),
                     rt::simd::simd_level_name(s.simd_level()),
                     rt::bench::fmt(sec, 2), rt::bench::fmt(mflops, 1),
                     rt::bench::fmt(mflops / serial_mflops, 2) + "x"});
    if (!bo.json.empty()) {
      rt::obs::JsonValue& rec = w.add_record();
      rec.set("kernel", "SOR")
          .set("n", n)
          .set("transform", "GcdPad")
          .set("tile", std::to_string(o.plan.tile.ti) + "x" +
                           std::to_string(o.plan.tile.tj))
          .set("simd", rt::simd::simd_mode_name(hc.simd))
          .set("simd_level", rt::simd::simd_level_name(s.simd_level()))
          .set("threads", s.threads())
          .set("sweeps", sweeps)
          .set("host_seconds", sec)
          .set("mflops", mflops)
          .set("speedup_vs_serial", mflops / serial_mflops)
          .set("status", rt::guard::status_name(s.status()))
          .set("plan_cache", rt::bench::plan_cache_json(cache.stats()))
          .set("phases",
               rt::bench::phases_json({{"sweep", s.phases().sweep},
                                       {"residual", s.phases().residual}}));
    }
  }
  std::cout << "\nHost fast path (full application, n = " << n << ", "
            << sweeps << " sweeps, GcdPad fused+tiled):\n\n";
  rt::bench::print_table(
      {"version", "threads", "simd", "host sec", "MFlops", "speedup"}, hrows);
  const auto cs = cache.stats();
  std::cout << "\nplan cache: " << cs.hits << " hits / " << cs.misses
            << " misses (hit rate "
            << rt::bench::fmt(100.0 * cs.hit_rate(), 1) << "%)\n"
            << "Residuals bitwise identical across variants: yes\n";

  if (!bo.json.empty()) {
    if (!w.write_file(bo.json)) {
      std::cerr << "ERROR: cannot write " << bo.json << "\n";
      return 1;
    }
    std::cout << "wrote " << w.num_records() << " records to " << bo.json
              << "\n";
  }
  return 0;
}
