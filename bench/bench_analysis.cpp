// Model validation: the closed-form miss-rate predictions (Section 1
// arithmetic + Section 2.3 cost function, rt/core/analysis.hpp) against
// the cache simulator, across problem sizes and transformations.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/analysis.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 20, 10);
  const auto spec = rt::core::StencilSpec::jacobi3d();

  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;
  ro.backend = bo.resolved_backend(ro.geom());

  std::vector<std::string> header{"N",
                                  "Orig sim",
                                  "Orig model",
                                  "GcdPad sim",
                                  "GcdPad model",
                                  "model err (pts)"};
  std::vector<std::vector<std::string>> rows;
  double max_err = 0;
  for (long n : sizes) {
    const auto so = rt::bench::run_kernel(KernelId::kJacobi, Transform::kOrig,
                                          n, ro);
    const auto sg = rt::bench::run_kernel(KernelId::kJacobi,
                                          Transform::kGcdPad, n, ro);
    const auto po = rt::core::predict_jacobi3d_orig(2048, 4, n);
    const auto pg = rt::core::predict_jacobi3d_tiled(4, sg.plan.tile, spec);
    const double err = std::max(std::abs(po.l1_miss_pct - so.l1_miss_pct),
                                std::abs(pg.l1_miss_pct - sg.l1_miss_pct));
    max_err = std::max(max_err, err);
    rows.push_back({std::to_string(n), rt::bench::fmt(so.l1_miss_pct, 1),
                    rt::bench::fmt(po.l1_miss_pct, 1),
                    rt::bench::fmt(sg.l1_miss_pct, 1),
                    rt::bench::fmt(pg.l1_miss_pct, 1),
                    rt::bench::fmt(err, 1)});
  }
  std::cout << "Model validation: closed-form L1 miss-rate predictions vs "
               "simulation (JACOBI)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nLarge Orig errors flag the conflict spikes — the one "
               "thing the capacity-only\nSection-1 arithmetic cannot see, "
               "and exactly what Section 3's algorithms fix.\n"
            << "max error: " << rt::bench::fmt(max_err, 1) << " points\n";
  return 0;
}
