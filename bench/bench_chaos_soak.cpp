// Chaos soak for the rt::serve + rt::resil stack: drive a live server
// through deterministic fault storms — torn sockets, short writes,
// injected solver hangs with and without deadlines, and a failed fsync
// under the plan store — twice: once with the resilience layer on
// (RetryingClient + server self-healing active) and once with it off
// (single-attempt calls), under IDENTICAL fault schedules
// (rt::guard::FaultInjector is trigger-count based, never clock based).
//
// Invariants asserted after every storm (violations exit 1):
//   1. every issued request gets exactly one final outcome — answered ok,
//      typed rejection, or typed transport failure; never silence, never
//      a second answer (response ids are matched per call);
//   2. every "ok" response's checksum is bit-identical to the same solve
//      computed directly (plan + serial kernels, no server);
//   3. the server's counters are monotone across storm snapshots — a
//      respawned executor or tripped breaker never resets accounting;
//   4. the server returns to healthy+ready within a bounded poll after
//      the faults are disarmed (self-healing actually healed).
// Plus one storm over the plan store: an injected fsync failure must
// leave both the primary and the .bak generation loadable.
//
// Output: a table per (storm, mode) and --json=FILE records
// (results/BENCH_9.json schema) with goodput, availability, p50/p99 and
// the retry-layer's own accounting, ending in a summary record comparing
// resil on vs off.  The acceptance claim is that retry + self-heal
// strictly improves total goodput under the fault storms.
//
// Flags (rt::bench::parse_options): --retries=N --retry-budget-ms=N
// --backoff-ms=N --json=FILE --full

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/plan.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/resil/retry.hpp"
#include "rt/serve/client.hpp"
#include "rt/serve/protocol.hpp"
#include "rt/serve/server.hpp"
#include "rt/serve/solve.hpp"
#include "rt/tune/plan_store.hpp"

using rt::guard::FaultInjector;
using rt::guard::FaultKind;
using rt::guard::Status;
using rt::obs::JsonValue;
using rt::resil::RetryingClient;
using rt::resil::RetryPolicy;
using rt::serve::Client;
using rt::serve::Server;
using rt::serve::ServerOptions;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One deterministic fault schedule: arm(kind, after, count) applied just
/// before the storm's requests are issued.
struct Storm {
  std::string name;
  FaultKind kind = FaultKind::kHang;
  int after = 0;
  int count = 0;        ///< 0 = no fault (baseline)
  int deadline_ms = 0;  ///< attached to every solve request when > 0
};

JsonValue solve_req(long long id, long n, int tsteps, int deadline_ms) {
  JsonValue r = JsonValue::object();
  r.set("id", id);
  r.set("op", "solve");
  r.set("kernel", "JACOBI");
  r.set("n", n);
  r.set("tsteps", tsteps);
  r.set("transform", "gcdpad");
  if (deadline_ms > 0) r.set("deadline_ms", deadline_ms);
  return r;
}

/// Direct (no server, serial) JACOBI reference checksum — what every "ok"
/// response must match bit for bit, faults or no faults.
std::string reference_checksum(long n, int tsteps) {
  const rt::core::StencilSpec& spec =
      rt::kernels::kernel_info(rt::kernels::KernelId::kJacobi).spec;
  const long cs = rt::serve::serve_cs_elems();
  const rt::core::PlanReport rep = rt::core::plan_for_checked(
      rt::core::Transform::kGcdPad, cs, n, n, spec, n);
  const rt::array::Dims3 dims =
      rt::array::Dims3::padded(n, n, n, rep.plan.dip, rep.plan.djp);
  rt::array::Array3D<double> a(dims), b(dims);
  for (int idx = 0; idx < 2; ++idx) {
    rt::array::Array3D<double>& g = idx == 0 ? a : b;
    const double scale = 1.0 / (1.0 + idx);
    for (long k = 0; k < g.n3(); ++k) {
      for (long j = 0; j < g.n2(); ++j) {
        for (long i = 0; i < g.n1(); ++i) {
          g(i, j, k) = scale * (0.001 * static_cast<double>(i) +
                                0.002 * static_cast<double>(j) +
                                0.003 * static_cast<double>(k));
        }
      }
    }
  }
  for (int t = 0; t < tsteps; ++t) {
    if (rep.plan.tiled) {
      rt::kernels::jacobi3d_tiled(a, b, 1.0 / 6.0, rep.plan.tile);
    } else {
      rt::kernels::jacobi3d(a, b, 1.0 / 6.0);
    }
    rt::kernels::copy_interior(b, a);
  }
  return rt::serve::checksum_hex(rt::serve::checksum_region(a));
}

struct StormResult {
  std::string storm;
  bool resil = false;
  int requests = 0;
  int good = 0;      ///< ok + checksum verified
  int dropped = 0;   ///< typed failure or rejection (a lost request)
  int violations = 0;
  double wall_s = 0;
  double heal_s = -1;  ///< time to healthy+ready after disarm (-1 = never)
  std::vector<double> lat_s;
  rt::resil::RetryStats retry;

  double availability() const {
    return requests > 0 ? static_cast<double>(good) / requests : 0;
  }
  double goodput() const {
    return wall_s > 0 ? static_cast<double>(good) / wall_s : 0;
  }
  double percentile(double q) const {
    if (lat_s.empty()) return 0;
    std::vector<double> v = lat_s;
    const std::size_t idx = std::min(
        v.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(v.size() - 1) + 0.5));
    std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
    return v[idx];
  }
};

/// The monotone subset of the server's counters: values that must never
/// decrease across storm snapshots within one server lifetime.
std::map<std::string, long long> monotone_counters(const JsonValue& stats) {
  std::map<std::string, long long> m;
  for (const char* key :
       {"connections", "requests", "admitted", "rejected_overloaded",
        "protocol_errors", "io_errors", "responses_ok", "responses_error",
        "timeouts"}) {
    if (const JsonValue* v = stats.find(key)) m[key] = v->as_int();
  }
  if (const JsonValue* rz = stats.find("resilience")) {
    for (const char* key :
         {"retry_hints", "degraded_rejections", "executors_wedged",
          "executors_respawned", "breaker_trips", "breaker_resets"}) {
      if (const JsonValue* v = rz->find(key)) m[std::string("rz.") + key] = v->as_int();
    }
  }
  if (const JsonValue* ab = stats.find("abandonment")) {
    if (const JsonValue* v = ab->find("abandoned_batches")) {
      m["ab.abandoned_batches"] = v->as_int();
    }
  }
  return m;
}

/// Poll the health op until the server says healthy + ready.
double await_healthy(int port, double timeout_s) {
  const Clock::time_point t0 = Clock::now();
  while (seconds_since(t0) < timeout_s) {
    rt::guard::Expected<Client> c = Client::connect(port, 500);
    if (c.ok()) {
      JsonValue req = JsonValue::object();
      req.set("op", "health");
      rt::guard::Expected<JsonValue> resp = c.value().call(req);
      if (resp.ok()) {
        const JsonValue* h = resp.value().find("health");
        if (h != nullptr && h->find("state")->as_string() == "healthy" &&
            h->find("ready")->as_bool()) {
          return seconds_since(t0);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

/// The plan-store leg: an injected fsync failure mid-save must leave both
/// the primary and the demoted .bak generation loadable.
bool store_storm_holds() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rt_chaos_soak_store";
  std::error_code ec;
  fs::remove_all(dir, ec);
  const std::string path = (dir / "plans.json").string();

  rt::tune::PlanStore gen;
  gen.fingerprint = "chaos-soak";
  bool ok = true;
  gen.entries = {};
  if (rt::tune::save_store(gen, path) != Status::kOk) ok = false;
  if (rt::tune::save_store(gen, path) != Status::kOk) ok = false;

  FaultInjector::instance().arm(FaultKind::kFsyncFail, 0, 1);
  std::string why;
  if (rt::tune::save_store(gen, path, &why) != Status::kIoError) ok = false;
  FaultInjector::instance().disarm_all();

  if (!rt::tune::load_store(path, "chaos-soak").ok()) ok = false;
  if (!rt::tune::load_store(rt::tune::store_bak_path(path), "chaos-soak")
           .ok()) {
    ok = false;
  }
  fs::remove_all(dir, ec);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions opt = rt::bench::parse_options(argc, argv);

  const long n = opt.full ? 48 : 32;
  const int base_tsteps = 1;
  const int requests_per_storm = opt.full ? 30 : 10;

  // Deterministic storm schedule, identical for both modes.  Triggers are
  // write_frame calls (client sends and server responses interleave
  // strictly in a closed loop) for the socket faults, and solver hang
  // points for kHang.
  const std::vector<Storm> storms = {
      {"baseline", FaultKind::kHang, 0, 0, 0},
      {"sockdrop", FaultKind::kSockDrop, 3, 2, 0},
      {"partialwrite", FaultKind::kPartialWrite, 2, 2, 0},
      {"hang_deadline", FaultKind::kHang, 0, 2, 150},
      {"wedge_respawn", FaultKind::kHang, 0, 1, 0},
  };

  std::cout << "chaos soak: JACOBI n=" << n << " tsteps=" << base_tsteps
            << "/" << base_tsteps + 1 << ", " << requests_per_storm
            << " requests/storm, retries=" << opt.retries
            << " budget=" << opt.retry_budget_ms << "ms backoff="
            << opt.backoff_ms << "ms\n\n";

  std::map<int, std::string> refs;
  refs[base_tsteps] = reference_checksum(n, base_tsteps);
  refs[base_tsteps + 1] = reference_checksum(n, base_tsteps + 1);

  std::vector<StormResult> results;
  bool failed = false;

  for (const bool resil_on : {false, true}) {
    ServerOptions so;
    so.executors = 2;
    so.batching = false;  // one response per request: exact accounting
    so.queue_depth = 64;
    so.retry_after_ms = 25;
    so.supervise_interval_ms = 10;
    so.executor_wedge_ms = 120;
    so.max_respawns = 8;
    so.breaker_threshold = 4;  // single-wedge storms must not trip it
    so.breaker_window_ms = 300;
    Server server(so);
    std::string why;
    if (server.start(&why) != Status::kOk) {
      std::cerr << "server start failed: " << why << "\n";
      return 1;
    }

    RetryPolicy policy;
    policy.max_attempts = resil_on ? opt.retries + 1 : 1;
    policy.base_backoff_ms = opt.backoff_ms;
    policy.max_backoff_ms = 200;
    policy.budget_ms = opt.retry_budget_ms;
    policy.connect_timeout_ms = 1000;
    policy.send_timeout_ms = 1000;
    policy.recv_timeout_ms = 1000;
    RetryingClient client(server.port(), policy);
    if (client.policy_status() != Status::kOk) {
      std::cerr << "bad retry policy: " << client.policy_detail() << "\n";
      return 2;
    }

    std::map<std::string, long long> prev_counters;
    long long next_id = 1;
    for (const Storm& storm : storms) {
      StormResult r;
      r.storm = storm.name;
      r.resil = resil_on;
      r.requests = requests_per_storm;
      const rt::resil::RetryStats before = client.stats();

      FaultInjector::instance().disarm_all();
      if (storm.count > 0) {
        FaultInjector::instance().arm(storm.kind, storm.after, storm.count);
      }

      const Clock::time_point t0 = Clock::now();
      int outcomes = 0;
      for (int i = 0; i < requests_per_storm; ++i) {
        const int ts = base_tsteps + (i % 2);
        const long long id = next_id++;
        const Clock::time_point sent = Clock::now();
        rt::guard::Expected<JsonValue> resp =
            client.call(solve_req(id, n, ts, storm.deadline_ms));
        ++outcomes;  // invariant 1: exactly one outcome per request
        if (!resp.ok()) {
          ++r.dropped;  // typed transport/retry-exhaustion failure
          continue;
        }
        const JsonValue* st = resp.value().find("status");
        const std::string status =
            st != nullptr ? st->as_string() : std::string("?");
        if (status != "ok") {
          ++r.dropped;  // typed rejection (overloaded / timeout / ...)
          continue;
        }
        const JsonValue* sum = resp.value().find("checksum");
        if (sum == nullptr || sum->as_string() != refs.at(ts)) {
          std::cerr << "VIOLATION [" << storm.name
                    << "]: ok response with wrong checksum (id " << id
                    << ")\n";
          ++r.violations;
          continue;
        }
        r.lat_s.push_back(seconds_since(sent));
        ++r.good;
      }
      r.wall_s = seconds_since(t0);
      if (outcomes != requests_per_storm) {
        std::cerr << "VIOLATION [" << storm.name << "]: " << outcomes
                  << " outcomes for " << requests_per_storm << " requests\n";
        ++r.violations;
      }

      // Let the storm's wedged/abandoned workers run to completion, then
      // require the server to report itself healthy again.
      FaultInjector::instance().disarm_all();
      FaultInjector::instance().cancel_hangs();
      r.heal_s = await_healthy(server.port(), 10.0);
      if (r.heal_s < 0) {
        std::cerr << "VIOLATION [" << storm.name
                  << "]: server never returned to healthy+ready\n";
        ++r.violations;
      }

      // Counters must be monotone snapshot to snapshot.
      const std::map<std::string, long long> now_counters =
          monotone_counters(server.stats_json());
      for (const auto& [key, value] : prev_counters) {
        const auto it = now_counters.find(key);
        if (it != now_counters.end() && it->second < value) {
          std::cerr << "VIOLATION [" << storm.name << "]: counter " << key
                    << " went backwards (" << value << " -> " << it->second
                    << ")\n";
          ++r.violations;
        }
      }
      prev_counters = now_counters;

      // This storm's share of the retry layer's accounting.
      const rt::resil::RetryStats after = client.stats();
      r.retry.attempts = after.attempts - before.attempts;
      r.retry.retries = after.retries - before.retries;
      r.retry.reconnects = after.reconnects - before.reconnects;
      r.retry.transport_retries =
          after.transport_retries - before.transport_retries;
      r.retry.overloaded_retries =
          after.overloaded_retries - before.overloaded_retries;
      r.retry.timeout_retries = after.timeout_retries - before.timeout_retries;

      if (r.violations > 0) failed = true;
      results.push_back(std::move(r));
    }
    server.stop();
  }

  const bool store_ok = store_storm_holds();
  if (!store_ok) {
    std::cerr << "VIOLATION [store_fsync]: plan store lost a generation\n";
    failed = true;
  }

  std::vector<std::vector<std::string>> rows;
  for (const StormResult& r : results) {
    rows.push_back({r.storm, r.resil ? "on" : "off",
                    std::to_string(r.good) + "/" + std::to_string(r.requests),
                    fmt(r.availability() * 100, 1), fmt(r.goodput(), 1),
                    fmt(r.percentile(0.50) * 1e3, 1),
                    fmt(r.percentile(0.99) * 1e3, 1),
                    std::to_string(r.retry.retries),
                    std::to_string(r.retry.reconnects), fmt(r.heal_s, 2),
                    r.violations > 0 ? std::to_string(r.violations) + " VIOL"
                                     : "-"});
  }
  rt::bench::print_table({"storm", "resil", "good", "avail %", "good/s",
                          "p50 ms", "p99 ms", "retries", "reconn", "heal s",
                          "invariants"},
                         rows);

  // The acceptance comparison: under the fault storms, retry + self-heal
  // must strictly improve total goodput (and never lose availability on
  // any individual storm).
  long total_good_on = 0, total_good_off = 0;
  bool on_never_worse = true;
  for (const StormResult& r : results) {
    (r.resil ? total_good_on : total_good_off) += r.good;
    if (r.resil) {
      for (const StormResult& off : results) {
        if (!off.resil && off.storm == r.storm &&
            r.availability() < off.availability()) {
          on_never_worse = false;
        }
      }
    }
  }
  const bool strictly_better = total_good_on > total_good_off;
  std::cout << "\ntotal good responses: resil on " << total_good_on
            << " vs off " << total_good_off
            << (strictly_better ? " (retry+self-heal strictly better)\n"
                                : " (NO strict improvement)\n")
            << "plan store fsync storm: "
            << (store_ok ? "both generations intact\n" : "LOST DATA\n");
  if (!strictly_better || !on_never_worse) failed = true;

  if (!opt.json.empty()) {
    rt::obs::MetricsWriter writer;
    for (const StormResult& r : results) {
      JsonValue& rec = writer.add_record();
      rec.set("bench", "chaos_soak").set("storm", r.storm);
      rec.set("resil", r.resil ? "on" : "off");
      rec.set("kernel", "JACOBI").set("n", n);
      rec.set("requests", r.requests).set("good", r.good);
      rec.set("dropped", r.dropped).set("violations", r.violations);
      rec.set("availability", r.availability());
      rec.set("goodput_rps", r.goodput());
      rec.set("lat_p50_ms", r.percentile(0.50) * 1e3);
      rec.set("lat_p99_ms", r.percentile(0.99) * 1e3);
      rec.set("wall_s", r.wall_s).set("heal_s", r.heal_s);
      rec.set("retry_attempts", static_cast<long long>(r.retry.attempts));
      rec.set("retries", static_cast<long long>(r.retry.retries));
      rec.set("reconnects", static_cast<long long>(r.retry.reconnects));
      rec.set("transport_retries",
              static_cast<long long>(r.retry.transport_retries));
      rec.set("overloaded_retries",
              static_cast<long long>(r.retry.overloaded_retries));
      rec.set("timeout_retries",
              static_cast<long long>(r.retry.timeout_retries));
    }
    JsonValue& sum = writer.add_record();
    sum.set("bench", "chaos_soak").set("storm", "summary");
    sum.set("total_good_resil_on", total_good_on);
    sum.set("total_good_resil_off", total_good_off);
    sum.set("resil_strictly_better", strictly_better);
    sum.set("resil_never_worse_per_storm", on_never_worse);
    sum.set("store_crash_safe", store_ok);
    sum.set("all_invariants_hold", !failed);
    std::string werr;
    if (writer.write_file_checked(opt.json, &werr) != Status::kOk) {
      std::cerr << "error: cannot write " << opt.json << ": " << werr << "\n";
      failed = true;
    } else {
      std::cout << "wrote " << writer.num_records() << " records to "
                << opt.json << "\n";
    }
  }
  return failed ? 1 : 0;
}
