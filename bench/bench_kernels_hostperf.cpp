// Host-machine kernel throughput (google-benchmark): the secondary,
// wall-clock signal.  On a modern associative-cache host the paper's
// conflict effects are absent (see bench_ablation_assoc), but tiling can
// still help or at least must not hurt; this microbenchmark tracks that,
// and — since PR 2 — how much the rt::simd row kernels recover over the
// scalar accessor path (the memory-starved-stencil gap).
//
// Benchmarks are registered dynamically as
//   KERNEL/<n>/<transform>/<simd>/<threads>/<temporal>
// so downstream tooling (scripts/bench_to_json.sh) can split the name on
// '/' (the sixth component is "off" for the plain per-sweep rows, "skew"
// or "diamond" for the rt::temporal wavefront rows).  Extra flags,
// stripped before google-benchmark sees the rest:
//   --simd=off|auto|avx2   run only that SIMD mode (default: off AND auto)
//   --threads=T            additionally run at T threads (default: 1 only)
//   --temporal=off|skew|diamond  restrict the temporal JACOBI rows
//                          (default: register skew AND diamond)

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/bench/runner.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/temporal.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"
#include "rt/simd/simd.hpp"
#include "rt/temporal/wavefront.hpp"

namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::Transform;
using rt::kernels::KernelId;
using rt::simd::SimdLevel;
using rt::simd::SimdMode;

constexpr long kDim = 30;  // paper's fixed third dimension

struct Cfg {
  KernelId id;
  long n;
  Transform tr;
  SimdMode simd;
  int threads;
};

void init(Array3D<double>& a) {
  for (long k = 0; k < a.n3(); ++k)
    for (long j = 0; j < a.n2(); ++j)
      for (long i = 0; i < a.n1(); ++i)
        a(i, j, k) = 0.001 * static_cast<double>(i + 2 * j + 3 * k);
}

void BM_Kernel(benchmark::State& state, Cfg cfg) {
  const rt::kernels::KernelInfo& info = rt::kernels::kernel_info(cfg.id);
  const rt::core::TilingPlan plan =
      rt::core::plan_for(cfg.tr, 2048, cfg.n, cfg.n, info.spec);
  const Dims3 d = Dims3::padded(cfg.n, cfg.n, kDim, plan.dip, plan.djp);
  const SimdLevel lvl = rt::simd::resolve(cfg.simd);
  std::unique_ptr<rt::par::ThreadPool> pool;
  if (cfg.threads > 1) pool = std::make_unique<rt::par::ThreadPool>(cfg.threads);

  std::vector<Array3D<double>> arr;
  for (int i = 0; i < info.num_arrays; ++i) {
    arr.emplace_back(d);
    init(arr.back());
  }
  const auto rc = rt::kernels::nas_mg_a();

  auto step = [&] {
    switch (cfg.id) {
      case KernelId::kJacobi: {
        const double c = 1.0 / 6.0;
        if (lvl != SimdLevel::kScalar && pool) {
          if (plan.tiled) {
            rt::simd::jacobi3d_tiled_rows_par(*pool, arr[0], arr[1], c,
                                              plan.tile, lvl);
          } else {
            rt::simd::jacobi3d_rows_par(*pool, arr[0], arr[1], c, lvl);
          }
          rt::simd::copy_interior_rows_par(*pool, arr[1], arr[0], lvl);
        } else if (lvl != SimdLevel::kScalar) {
          if (plan.tiled) {
            rt::simd::jacobi3d_tiled_rows(arr[0], arr[1], c, plan.tile, lvl);
          } else {
            rt::simd::jacobi3d_rows(arr[0], arr[1], c, lvl);
          }
          rt::simd::copy_interior_rows(arr[1], arr[0], lvl);
        } else if (pool) {
          if (plan.tiled) {
            rt::par::jacobi3d_tiled_par(*pool, arr[0], arr[1], c, plan.tile);
          } else {
            rt::par::jacobi3d_par(*pool, arr[0], arr[1], c);
          }
          rt::par::copy_interior_par(*pool, arr[1], arr[0]);
        } else {
          if (plan.tiled) {
            rt::kernels::jacobi3d_tiled(arr[0], arr[1], c, plan.tile);
          } else {
            rt::kernels::jacobi3d(arr[0], arr[1], c);
          }
          rt::kernels::copy_interior(arr[1], arr[0]);
        }
        break;
      }
      case KernelId::kRedBlack: {
        const double c1 = 0.4, c2 = 0.1;
        if (lvl != SimdLevel::kScalar && pool) {
          if (plan.tiled) {
            rt::simd::redblack_tiled_rows_par(*pool, arr[0], c1, c2,
                                              plan.tile, lvl);
          } else {
            rt::simd::redblack_rows_par(*pool, arr[0], c1, c2, lvl);
          }
        } else if (lvl != SimdLevel::kScalar) {
          if (plan.tiled) {
            rt::simd::redblack_tiled_rows(arr[0], c1, c2, plan.tile, lvl);
          } else {
            rt::simd::redblack_rows(arr[0], c1, c2, lvl);
          }
        } else if (pool) {
          if (plan.tiled) {
            rt::par::redblack_tiled_par(*pool, arr[0], c1, c2, plan.tile);
          } else {
            rt::par::redblack_par(*pool, arr[0], c1, c2);
          }
        } else {
          if (plan.tiled) {
            rt::kernels::redblack_tiled(arr[0], c1, c2, plan.tile);
          } else {
            rt::kernels::redblack_naive(arr[0], c1, c2);
          }
        }
        break;
      }
      case KernelId::kResid: {
        if (lvl != SimdLevel::kScalar && pool) {
          if (plan.tiled) {
            rt::simd::resid_tiled_rows_par(*pool, arr[0], arr[1], arr[2], rc,
                                           plan.tile, lvl);
          } else {
            rt::simd::resid_rows_par(*pool, arr[0], arr[1], arr[2], rc, lvl);
          }
        } else if (lvl != SimdLevel::kScalar) {
          if (plan.tiled) {
            rt::simd::resid_tiled_rows(arr[0], arr[1], arr[2], rc, plan.tile,
                                       lvl);
          } else {
            rt::simd::resid_rows(arr[0], arr[1], arr[2], rc, lvl);
          }
        } else if (pool) {
          if (plan.tiled) {
            rt::par::resid_tiled_par(*pool, arr[0], arr[1], arr[2], rc,
                                     plan.tile);
          } else {
            rt::par::resid_par(*pool, arr[0], arr[1], arr[2], rc);
          }
        } else {
          if (plan.tiled) {
            rt::kernels::resid_tiled(arr[0], arr[1], arr[2], rc, plan.tile);
          } else {
            rt::kernels::resid(arr[0], arr[1], arr[2], rc);
          }
        }
        break;
      }
      default:
        break;
    }
  };

  for (auto _ : state) {
    step();
    benchmark::ClobberMemory();
  }
  const double flops_per_iter =
      static_cast<double>(info.flops_per_point) *
      static_cast<double>((cfg.n - 2) * (cfg.n - 2) * (kDim - 2));
  state.counters["MFlops"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(rt::simd::simd_level_name(lvl));
}

struct TemporalCfg {
  long n;
  rt::core::TemporalMode mode;
  SimdMode simd;
  int threads;
};

constexpr int kTemporalSteps = 4;

/// Temporal-blocking JACOBI rows: one iteration = kTemporalSteps ping-pong
/// sweeps through the rt::temporal wavefront schedules (plan via the
/// process-wide PlanCache).  Degraded plans or thread-spawn fallbacks skip
/// the benchmark with an error instead of reporting a misleading number.
void BM_TemporalJacobi(benchmark::State& state, TemporalCfg cfg) {
  const SimdLevel lvl = rt::simd::resolve(cfg.simd);
  const auto rep = rt::core::PlanCache::instance().temporal(
      cfg.mode, rt::bench::outer_cache_elems(), cfg.n, cfg.n, kDim,
      kTemporalSteps, 0, cfg.threads);
  if (!rep.ok()) {
    state.SkipWithError(("degraded plan: " + rep.detail).c_str());
    return;
  }
  std::unique_ptr<rt::par::ThreadPool> pool;
  if (cfg.threads > 1) {
    pool = std::make_unique<rt::par::ThreadPool>(cfg.threads);
  }
  const Dims3 d = Dims3::unpadded(cfg.n, cfg.n, kDim);
  Array3D<double> a(d), b(d);
  init(b);
  for (auto _ : state) {
    rt::temporal::TemporalRun run;
    if (cfg.mode == rt::core::TemporalMode::kSkew) {
      run = rt::temporal::jacobi3d_skew_rows(pool.get(), a, b, 1.0 / 6.0,
                                             rep.plan, lvl);
    } else {
      run = rt::temporal::jacobi3d_diamond_rows(a, b, 1.0 / 6.0, rep.plan,
                                                lvl);
    }
    if (run.threads < rep.plan.threads) {
      state.SkipWithError("thread spawn degraded");
      return;
    }
    benchmark::ClobberMemory();
  }
  const double flops_per_iter =
      6.0 * static_cast<double>((cfg.n - 2) * (cfg.n - 2) * (kDim - 2)) *
      kTemporalSteps;
  state.counters["MFlops"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(rt::simd::simd_level_name(lvl));
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags; everything else goes to google-benchmark.
  std::vector<SimdMode> simd_modes = {SimdMode::kOff, SimdMode::kAuto};
  std::vector<int> threads = {1};
  std::vector<rt::core::TemporalMode> temporal_modes = {
      rt::core::TemporalMode::kSkew, rt::core::TemporalMode::kDiamond};
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--simd=", 0) == 0) {
      SimdMode m;
      if (!rt::simd::parse_simd_mode(a.substr(7), &m)) {
        fprintf(stderr, "bad --simd value (want off|auto|avx2): %s\n",
                a.c_str());
        return 2;
      }
      simd_modes = {m};
    } else if (a.rfind("--threads=", 0) == 0) {
      const int t = std::atoi(a.c_str() + 10);
      if (t > 1) threads = {1, t};
    } else if (a.rfind("--temporal=", 0) == 0) {
      rt::core::TemporalMode m;
      if (!rt::core::parse_temporal_mode(a.substr(11), &m)) {
        fprintf(stderr, "bad --temporal value (want off|skew|diamond): %s\n",
                a.c_str());
        return 2;
      }
      if (m == rt::core::TemporalMode::kOff) {
        temporal_modes.clear();
      } else {
        temporal_modes = {m};
      }
    } else {
      rest.push_back(argv[i]);
    }
  }

  const struct {
    KernelId id;
    const char* name;
  } kernels[] = {{KernelId::kJacobi, "JACOBI"},
                 {KernelId::kRedBlack, "REDBLACK"},
                 {KernelId::kResid, "RESID"}};
  const long sizes[] = {200, 300, 400};
  const Transform transforms[] = {Transform::kOrig, Transform::kGcdPad};

  for (const auto& kn : kernels) {
    for (long n : sizes) {
      for (Transform tr : transforms) {
        for (SimdMode m : simd_modes) {
          for (int t : threads) {
            const std::string name =
                std::string(kn.name) + "/" + std::to_string(n) + "/" +
                std::string(rt::core::transform_name(tr)) + "/" +
                rt::simd::simd_mode_name(m) + "/" + std::to_string(t) + "/off";
            benchmark::RegisterBenchmark(name.c_str(), BM_Kernel,
                                         Cfg{kn.id, n, tr, m, t})
                ->Unit(benchmark::kMillisecond);
          }
        }
      }
    }
  }

  // Temporal-blocking JACOBI rows (orig layout only: the wavefront schedules
  // trade the padding search for cross-step plane reuse).
  for (long n : sizes) {
    for (rt::core::TemporalMode tm : temporal_modes) {
      for (SimdMode m : simd_modes) {
        for (int t : threads) {
          const std::string name =
              std::string("JACOBI/") + std::to_string(n) + "/" +
              std::string(rt::core::transform_name(Transform::kOrig)) + "/" +
              rt::simd::simd_mode_name(m) + "/" + std::to_string(t) + "/" +
              rt::core::temporal_mode_name(tm);
          benchmark::RegisterBenchmark(name.c_str(), BM_TemporalJacobi,
                                       TemporalCfg{n, tm, m, t})
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
