// Host-machine kernel throughput (google-benchmark): the secondary,
// wall-clock signal.  On a modern associative-cache host the paper's
// conflict effects are absent (see bench_ablation_assoc), but tiling can
// still help or at least must not hurt; this microbenchmark tracks that.

#include <benchmark/benchmark.h>

#include "rt/array/array3d.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"

namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::Transform;

Dims3 dims_for(Transform tr, long n, long kd,
               const rt::core::StencilSpec& spec, rt::core::TilingPlan* plan) {
  *plan = rt::core::plan_for(tr, 2048, n, n, spec);
  return Dims3::padded(n, n, kd, plan->dip, plan->djp);
}

void init(Array3D<double>& a) {
  for (long k = 0; k < a.n3(); ++k)
    for (long j = 0; j < a.n2(); ++j)
      for (long i = 0; i < a.n1(); ++i)
        a(i, j, k) = 0.001 * static_cast<double>(i + 2 * j + 3 * k);
}

void BM_Jacobi(benchmark::State& state) {
  const long n = state.range(0);
  const auto tr = static_cast<Transform>(state.range(1));
  rt::core::TilingPlan plan;
  const Dims3 d = dims_for(tr, n, 30, rt::core::StencilSpec::jacobi3d(), &plan);
  Array3D<double> a(d), b(d);
  init(b);
  for (auto _ : state) {
    if (plan.tiled) {
      rt::kernels::jacobi3d_tiled(a, b, 1.0 / 6.0, plan.tile);
    } else {
      rt::kernels::jacobi3d(a, b, 1.0 / 6.0);
    }
    rt::kernels::copy_interior(b, a);
    benchmark::ClobberMemory();
  }
  state.counters["MFlops"] = benchmark::Counter(
      6.0 * static_cast<double>((n - 2) * (n - 2) * 28) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Jacobi)
    ->ArgsProduct({{200, 300, 400},
                   {static_cast<long>(Transform::kOrig),
                    static_cast<long>(Transform::kGcdPad)}})
    ->Unit(benchmark::kMillisecond);

void BM_RedBlack(benchmark::State& state) {
  const long n = state.range(0);
  const auto tr = static_cast<Transform>(state.range(1));
  rt::core::TilingPlan plan;
  const Dims3 d =
      dims_for(tr, n, 30, rt::core::StencilSpec::redblack3d(), &plan);
  Array3D<double> a(d);
  init(a);
  for (auto _ : state) {
    if (plan.tiled) {
      rt::kernels::redblack_tiled(a, 0.4, 0.1, plan.tile);
    } else {
      rt::kernels::redblack_naive(a, 0.4, 0.1);
    }
    benchmark::ClobberMemory();
  }
  state.counters["MFlops"] = benchmark::Counter(
      8.0 * static_cast<double>((n - 2) * (n - 2) * 28) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RedBlack)
    ->ArgsProduct({{200, 300, 400},
                   {static_cast<long>(Transform::kOrig),
                    static_cast<long>(Transform::kGcdPad)}})
    ->Unit(benchmark::kMillisecond);

void BM_Resid(benchmark::State& state) {
  const long n = state.range(0);
  const auto tr = static_cast<Transform>(state.range(1));
  rt::core::TilingPlan plan;
  const Dims3 d = dims_for(tr, n, 30, rt::core::StencilSpec::resid27(), &plan);
  Array3D<double> r(d), v(d), u(d);
  init(v);
  init(u);
  const auto a = rt::kernels::nas_mg_a();
  for (auto _ : state) {
    if (plan.tiled) {
      rt::kernels::resid_tiled(r, v, u, a, plan.tile);
    } else {
      rt::kernels::resid(r, v, u, a);
    }
    benchmark::ClobberMemory();
  }
  state.counters["MFlops"] = benchmark::Counter(
      31.0 * static_cast<double>((n - 2) * (n - 2) * 28) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Resid)
    ->ArgsProduct({{200, 300, 400},
                   {static_cast<long>(Transform::kOrig),
                    static_cast<long>(Transform::kGcdPad)}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
