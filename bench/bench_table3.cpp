// Reproduces paper Table 3: average performance and cache miss-rate
// improvements over problem sizes 200-400 (N x N x 30 arrays) for JACOBI,
// REDBLACK and RESID under the Tile / Euc3D / GcdPad / Pad / GcdPadNT
// transformations, targeting the simulated UltraSparc2 hierarchy
// (16K direct-mapped L1, 2M direct-mapped L2).
//
// Performance improvements use the simulated-cycle model by default
// (see DESIGN.md); pass --host to add wall-clock MFlops on this machine.
//
// Paper values for reference (Table 3):
//              orig L1/L2    Tile  Euc3D GcdPad  Pad  GcdPadNT
//   JACOBI %perf              13     10    16     17     -1
//          L1 32.7, L2 6.3   1.9    3.7   4.8    5.1    1.6   (miss-rate pts)
//   REDBLACK %perf            89     74   120    121     10
//          L1 22.3, L2 4.5   6.3    9.3  12.5   12.6    2.8
//   RESID  %perf              16     17    27     24      4
//          L1 10.1, L2 1.3   1.9    2.5   4.7    4.7    2.2

#include <iostream>
#include <map>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 25, 4);

  rt::bench::RunOptions ro;
  ro.time_steps = bo.steps;
  ro.time_host = bo.host;
  ro.simulate = bo.simulate;
  if (bo.threads > 0) ro.threads = bo.threads;
  ro.backend = bo.resolved_backend(ro.geom());

  std::cout << "Table 3: average improvements over problem sizes " <<
      sizes.front() << "-" << sizes.back() << " (NxNx30, "
      << sizes.size() << " sizes, " << ro.time_steps << " time steps)\n";

  const std::vector<Transform> opt_transforms = {
      Transform::kTile, Transform::kEuc3d, Transform::kGcdPad,
      Transform::kPad, Transform::kGcdPadNT};

  std::vector<std::string> header{"kernel", "orig L1%", "orig L2%", "metric"};
  for (Transform t : opt_transforms) {
    header.push_back(std::string(rt::core::transform_name(t)));
  }
  std::vector<std::vector<std::string>> rows;

  for (KernelId kid : rt::kernels::all_kernels()) {
    const auto& info = rt::kernels::kernel_info(kid);
    // metric -> transform -> running sum over sizes
    std::map<Transform, double> sum_l1, sum_l2, sum_mf, sum_host;
    std::vector<Transform> all = {Transform::kOrig};
    all.insert(all.end(), opt_transforms.begin(), opt_transforms.end());
    for (long n : sizes) {
      for (Transform t : all) {
        const auto r = rt::bench::run_kernel(kid, t, n, ro);
        sum_l1[t] += r.l1_miss_pct;
        sum_l2[t] += r.l2_miss_pct;
        sum_mf[t] += r.sim_mflops;
        sum_host[t] += r.host_mflops;
      }
    }
    const double cnt = static_cast<double>(sizes.size());
    const double o_l1 = sum_l1[Transform::kOrig] / cnt;
    const double o_l2 = sum_l2[Transform::kOrig] / cnt;
    const double o_mf = sum_mf[Transform::kOrig] / cnt;
    const double o_host = sum_host[Transform::kOrig] / cnt;

    const auto add_row = [&](const std::string& metric, auto value) {
      std::vector<std::string> row{std::string(info.name),
                                   rt::bench::fmt(o_l1, 1),
                                   rt::bench::fmt(o_l2, 1), metric};
      for (Transform t : opt_transforms) row.push_back(value(t));
      rows.push_back(std::move(row));
    };
    add_row("% perf (sim)", [&](Transform t) {
      return rt::bench::fmt(100.0 * (sum_mf[t] / cnt - o_mf) / o_mf, 0);
    });
    if (bo.host) {
      add_row("% perf (host, " + std::to_string(ro.threads) + "t)",
              [&](Transform t) {
        return rt::bench::fmt(100.0 * (sum_host[t] / cnt - o_host) / o_host,
                              0);
      });
    }
    add_row("L1 miss rate", [&](Transform t) {
      return rt::bench::fmt(o_l1 - sum_l1[t] / cnt, 1);
    });
    add_row("L2 miss rate", [&](Transform t) {
      return rt::bench::fmt(o_l2 - sum_l2[t] / cnt, 1);
    });
  }
  rt::bench::print_table(header, rows);
  std::cout << "\n(miss-rate rows are percentage-point reductions vs Orig, "
               "as in the paper)\n";
  return 0;
}
