// Future-work bench (paper Section 2.1): time skewing vs JI-tiling on the
// *simplified* stencil code of Fig. 5 (top) — a time loop around a single
// Jacobi sweep with ping-pong arrays.
//
// JI-tiling preserves group reuse *within* one sweep; time skewing keeps a
// K-block of planes live across all T sweeps, cutting memory traffic by up
// to T.  The paper's point stands the other way around too: time skewing
// does not apply to the realistic/multigrid codes of Fig. 5 (middle and
// bottom), which is why the paper develops JI-tiling.

#include <chrono>
#include <iostream>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/temporal.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/timeskew.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"
#include "rt/temporal/wavefront.hpp"

using rt::array::Array3D;
using rt::array::Dims3;

namespace {

struct Out {
  double l1 = 0, l2 = 0, mflops = 0;
};

template <class Fn>
Out traced_run(long n, long kd, long p1, long p2, int tsteps, Fn&& fn) {
  const Dims3 dims = Dims3::padded(n, n, kd, p1, p2);
  Array3D<double> a(dims), b(dims);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);
  rt::array::AddressSpace space(0, 64);
  const auto ba = space.place("a", static_cast<std::uint64_t>(dims.alloc_elems()));
  const auto bb = space.place("b", static_cast<std::uint64_t>(dims.alloc_elems()));
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::TracedArray3D<double> ta(a, ba, h), tb(b, bb, h);
  fn(ta, tb);
  auto st = h.stats();
  st.flops = 6ULL * static_cast<std::uint64_t>(n - 2) * (n - 2) * (kd - 2) *
             static_cast<std::uint64_t>(tsteps);
  return Out{100.0 * st.l1.miss_rate(), 100.0 * st.l2_global_miss_rate(),
             rt::cachesim::PerfModel().mflops(st)};
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  // Sizes straddle the L2 feasibility boundary of time skewing: the skew
  // window keeps ~(BK + T) planes of BOTH arrays live, so it only pays off
  // while that window fits the 2MB L2 — N up to ~180 for T=4.  Beyond
  // that, only the paper's JI-tiling keeps helping (and that is the point:
  // time skewing needs "necessarily large tiles", Section 5).
  const std::vector<long> sizes = bo.sweep(96, 320, 64, 32);
  const long kd = 60;
  // --tsteps sets the fused time-step count directly; otherwise it derives
  // from --steps as before (parse_options rejects --tsteps=0 + --temporal).
  const int tsteps = bo.tsteps > 0 ? bo.tsteps : (bo.steps > 2 ? bo.steps : 4);
  const auto spec = rt::core::StencilSpec::jacobi3d();

  std::vector<std::string> header{"N", "version", "L1 miss %", "L2 miss %",
                                  "sim MFlops"};
  std::vector<std::vector<std::string>> rows;
  for (long n : bo.simulate ? sizes : std::vector<long>{}) {
    const auto gcd = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048,
                                        n, n, spec);
    // K-block sized so the whole skew window — (BK + T + 2) planes of two
    // arrays — fits the 2MB L2 (time skewing targets the level that can
    // hold whole planes).
    const long l2_elems = 2 * 1024 * 1024 / 8;
    const long bk = std::max(1L, l2_elems / (2 * n * n) - tsteps - 2);

    const Out orig = traced_run(n, kd, n, n, tsteps, [&](auto& a, auto& b) {
      rt::kernels::jacobi3d_pingpong(a, b, 1.0 / 6.0, tsteps);
    });
    const Out ji = traced_run(
        n, kd, gcd.dip, gcd.djp, tsteps, [&](auto& a, auto& b) {
          for (int t = 0; t < tsteps; ++t) {
            if (t % 2 == 0) {
              rt::kernels::jacobi3d_tiled(a, b, 1.0 / 6.0, gcd.tile);
            } else {
              rt::kernels::jacobi3d_tiled(b, a, 1.0 / 6.0, gcd.tile);
            }
          }
        });
    const Out ts = traced_run(n, kd, n, n, tsteps, [&](auto& a, auto& b) {
      rt::kernels::jacobi3d_timeskew(a, b, 1.0 / 6.0, tsteps, bk);
    });
    const Out both = traced_run(
        n, kd, gcd.dip, gcd.djp, tsteps, [&](auto& a, auto& b) {
          rt::kernels::jacobi3d_timeskew(a, b, 1.0 / 6.0, tsteps, bk);
        });

    const auto add = [&](const char* name, const Out& o) {
      rows.push_back({std::to_string(n), name, rt::bench::fmt(o.l1, 1),
                      rt::bench::fmt(o.l2, 2), rt::bench::fmt(o.mflops, 1)});
    };
    add("Orig (T sweeps)", orig);
    add("JI-tiled GcdPad", ji);
    add("Time-skewed (K blocks)", ts);
    add("Time-skewed + GcdPad padding", both);
  }
  if (bo.simulate) {
    std::cout << "Future work (Section 2.1): simplified stencil code, "
              << tsteps << " time steps\n\n";
    rt::bench::print_table(header, rows);
    std::cout << "\nTime skewing reuses planes across sweeps (big L2 win on "
                 "the simplified kernel);\nJI-tiling wins within a sweep on "
                 "the L1 — combining both is the paper's stated\nfuture "
                 "work, previewed in the last row.\n";
  }

  // --- Host axis: temporal blocking as a first-class path ---
  // At the largest size the ping-pong pair no longer fits any cache level,
  // so the spatial paths stream both arrays from memory once per sweep.
  // The rt::temporal schedules keep a plane window resident across all
  // tsteps sweeps instead; every variant is planned through PlanCache
  // (degraded plans recorded, never silently clamped), verified bitwise
  // against the serial ping-pong reference, and emitted as a standard
  // JSON record plus a "temporal" block.
  {
    const long n = sizes.back();
    const int threads = bo.threads > 0 ? bo.threads : 1;
    const auto lvl = rt::simd::resolve(
        bo.simd_given ? bo.simd : rt::simd::SimdMode::kAuto);
    const long cs = rt::bench::outer_cache_elems();
    const Dims3 dims = Dims3::unpadded(n, n, kd);
    rt::par::ThreadPool pool(threads);
    rt::obs::MetricsWriter writer;
    auto& cache = rt::core::PlanCache::instance();
    // --tune: pin stored temporal winners so the cache.temporal() queries
    // below serve measured block depths ahead of the analytic window.
    std::cout << rt::bench::apply_tune_options(bo, cache) << "\n";

    const auto init = [&](Array3D<double>& b) {
      for (long k = 0; k < kd; ++k)
        for (long j = 0; j < n; ++j)
          for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);
    };
    const auto secs = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    const double flops =
        6.0 * static_cast<double>(n - 2) * (n - 2) * (kd - 2) * tsteps;

    // Serial ping-pong reference: the values every schedule must hit.
    Array3D<double> ra(dims), rb(dims);
    init(rb);
    const double t0 = secs();
    rt::kernels::jacobi3d_pingpong(ra, rb, 1.0 / 6.0, tsteps);
    const double ref_s = secs() - t0;

    std::vector<std::vector<std::string>> hrows;
    int skipped = 0;
    // One variant: time fn over tsteps steps, verify bitwise against the
    // reference, and emit the table row + JSON record.  A degraded plan
    // (or a diamond that could not spawn its threads) becomes a recorded
    // skipped row — metrics zero, status carrying the reason — exactly
    // like bench_threads_scaling, instead of a misleading serial number.
    const auto run_variant = [&](const std::string& name,
                                 const rt::core::TemporalReport* trep,
                                 auto&& fn) -> bool {
      rt::bench::RunResult r;
      r.plan.transform = rt::core::Transform::kOrig;
      r.plan.dip = n;
      r.plan.djp = n;
      r.threads_requested = threads;
      r.simd_requested = bo.simd_given ? bo.simd : rt::simd::SimdMode::kAuto;
      r.simd = lvl;
      if (trep != nullptr) {
        r.plan_status = trep->status;
        r.plan_detail = trep->detail;
      }
      bool identical = true;
      if (trep == nullptr || trep->ok()) {
        Array3D<double> a(dims), b(dims);
        rt::temporal::first_touch_zero(threads > 1 ? &pool : nullptr, a);
        rt::temporal::first_touch_zero(threads > 1 ? &pool : nullptr, b);
        init(b);
        const double t1 = secs();
        const rt::temporal::TemporalRun run = fn(a, b);
        const double dt = secs() - t1;
        r.threads = run.threads;
        if (trep != nullptr && run.threads < trep->plan.threads) {
          r.status = rt::guard::Status::kFellBackUntiled;
          r.status_detail = "thread spawn degraded to " +
                            std::to_string(run.threads) + " of " +
                            std::to_string(trep->plan.threads);
        } else {
          r.host_mflops = flops / dt / 1e6;
        }
        for (long k = 0; k < kd && identical; ++k)
          for (long j = 0; j < n && identical; ++j)
            for (long i = 0; i < n; ++i)
              if (a(i, j, k) != ra(i, j, k) || b(i, j, k) != rb(i, j, k)) {
                identical = false;
                std::cerr << "ERROR: " << name << " diverged at (" << i
                          << "," << j << "," << k << ")\n";
                break;
              }
      }
      auto& rec = rt::bench::append_json_record(writer, "JACOBI", n, r);
      rec.set("temporal", trep != nullptr
                              ? rt::bench::temporal_json(trep->plan)
                              : rt::obs::JsonValue());
      if (r.degraded()) {
        ++skipped;
        hrows.push_back({name, "-", "skipped: " +
                                        std::string(rt::guard::status_name(
                                            r.plan_status !=
                                                    rt::guard::Status::kOk
                                                ? r.plan_status
                                                : r.status))});
        return true;  // recorded, not a correctness failure
      }
      hrows.push_back({name, rt::bench::fmt(r.host_mflops, 1),
                       identical ? "bitwise identical" : "DIVERGED"});
      return identical;
    };

    bool all_ok = true;
    // Spatial baselines (temporal off): accessor reference and the best
    // spatial par+simd path (rows + thread pool), one full sweep per step.
    {
      rt::bench::RunResult r;
      r.plan.transform = rt::core::Transform::kOrig;
      r.plan.dip = n;
      r.plan.djp = n;
      r.threads = 1;
      r.threads_requested = 1;
      r.host_mflops = flops / ref_s / 1e6;
      auto& rec = rt::bench::append_json_record(writer, "JACOBI", n, r);
      rec.set("temporal", rt::obs::JsonValue());
      hrows.push_back({"pingpong serial (reference)",
                       rt::bench::fmt(r.host_mflops, 1), "reference"});
    }
    all_ok &= run_variant(
        "pingpong rows+par (best spatial)", nullptr,
        [&](Array3D<double>& a, Array3D<double>& b) {
          for (int t = 0; t < tsteps; ++t) {
            Array3D<double>& dst = (t % 2 == 0) ? a : b;
            const Array3D<double>& src = (t % 2 == 0) ? b : a;
            if (threads > 1) {
              rt::simd::jacobi3d_rows_par(pool, dst, src, 1.0 / 6.0, lvl);
            } else {
              rt::simd::jacobi3d_rows(dst, src, 1.0 / 6.0, lvl);
            }
          }
          return rt::temporal::TemporalRun{threads, 1};
        });

    const bool want_skew =
        !bo.temporal_given || bo.temporal == rt::core::TemporalMode::kSkew;
    const bool want_diamond =
        !bo.temporal_given || bo.temporal == rt::core::TemporalMode::kDiamond;
    if (want_skew) {
      const auto rep = cache.temporal(rt::core::TemporalMode::kSkew, cs, n,
                                      n, kd, tsteps, bo.bk, threads);
      all_ok &= run_variant(
          "temporal skew (bk=" + std::to_string(rep.plan.bk) + ")", &rep,
          [&](Array3D<double>& a, Array3D<double>& b) {
            return rt::temporal::jacobi3d_skew_rows(
                threads > 1 ? &pool : nullptr, a, b, 1.0 / 6.0, rep.plan,
                lvl);
          });
    }
    if (want_diamond) {
      const auto rep = cache.temporal(rt::core::TemporalMode::kDiamond, cs,
                                      n, n, kd, tsteps, bo.bk, threads);
      all_ok &= run_variant(
          "temporal diamond (W=" + std::to_string(rep.plan.bk) +
              ",tb=" + std::to_string(rep.plan.tb) + ")",
          &rep, [&](Array3D<double>& a, Array3D<double>& b) {
            return rt::temporal::jacobi3d_diamond_rows(a, b, 1.0 / 6.0,
                                                       rep.plan, lvl);
          });
    }

    std::cout << "\nHost temporal blocking at N=" << n << ", " << tsteps
              << " steps, " << threads << " threads, simd "
              << rt::simd::simd_level_name(lvl) << ", cache target "
              << cs / (1024 * 128) << " MB:\n\n";
    rt::bench::print_table({"version", "MFlops", "verify"}, hrows);
    if (skipped > 0) {
      std::cout << "\n" << skipped
                << " degraded configuration(s) recorded as skipped rows "
                   "(see status/plan_status in the JSON).\n";
    }
    if (!bo.json.empty() && !writer.write_file(bo.json)) {
      std::cerr << "cannot write " << bo.json << "\n";
      return 1;
    }
    if (!all_ok) return 1;
  }
  return 0;
}
