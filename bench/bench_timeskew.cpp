// Future-work bench (paper Section 2.1): time skewing vs JI-tiling on the
// *simplified* stencil code of Fig. 5 (top) — a time loop around a single
// Jacobi sweep with ping-pong arrays.
//
// JI-tiling preserves group reuse *within* one sweep; time skewing keeps a
// K-block of planes live across all T sweeps, cutting memory traffic by up
// to T.  The paper's point stands the other way around too: time skewing
// does not apply to the realistic/multigrid codes of Fig. 5 (middle and
// bottom), which is why the paper develops JI-tiling.

#include <chrono>
#include <iostream>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/timeskew.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"

using rt::array::Array3D;
using rt::array::Dims3;

namespace {

struct Out {
  double l1 = 0, l2 = 0, mflops = 0;
};

template <class Fn>
Out traced_run(long n, long kd, long p1, long p2, int tsteps, Fn&& fn) {
  const Dims3 dims = Dims3::padded(n, n, kd, p1, p2);
  Array3D<double> a(dims), b(dims);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);
  rt::array::AddressSpace space(0, 64);
  const auto ba = space.place("a", static_cast<std::uint64_t>(dims.alloc_elems()));
  const auto bb = space.place("b", static_cast<std::uint64_t>(dims.alloc_elems()));
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::TracedArray3D<double> ta(a, ba, h), tb(b, bb, h);
  fn(ta, tb);
  auto st = h.stats();
  st.flops = 6ULL * static_cast<std::uint64_t>(n - 2) * (n - 2) * (kd - 2) *
             static_cast<std::uint64_t>(tsteps);
  return Out{100.0 * st.l1.miss_rate(), 100.0 * st.l2_global_miss_rate(),
             rt::cachesim::PerfModel().mflops(st)};
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  // Sizes straddle the L2 feasibility boundary of time skewing: the skew
  // window keeps ~(BK + T) planes of BOTH arrays live, so it only pays off
  // while that window fits the 2MB L2 — N up to ~180 for T=4.  Beyond
  // that, only the paper's JI-tiling keeps helping (and that is the point:
  // time skewing needs "necessarily large tiles", Section 5).
  const std::vector<long> sizes = bo.sweep(96, 320, 64, 32);
  const long kd = 60;
  const int tsteps = bo.steps > 2 ? bo.steps : 4;
  const auto spec = rt::core::StencilSpec::jacobi3d();

  std::vector<std::string> header{"N", "version", "L1 miss %", "L2 miss %",
                                  "sim MFlops"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    const auto gcd = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048,
                                        n, n, spec);
    // K-block sized so the whole skew window — (BK + T + 2) planes of two
    // arrays — fits the 2MB L2 (time skewing targets the level that can
    // hold whole planes).
    const long l2_elems = 2 * 1024 * 1024 / 8;
    const long bk = std::max(1L, l2_elems / (2 * n * n) - tsteps - 2);

    const Out orig = traced_run(n, kd, n, n, tsteps, [&](auto& a, auto& b) {
      rt::kernels::jacobi3d_pingpong(a, b, 1.0 / 6.0, tsteps);
    });
    const Out ji = traced_run(
        n, kd, gcd.dip, gcd.djp, tsteps, [&](auto& a, auto& b) {
          for (int t = 0; t < tsteps; ++t) {
            if (t % 2 == 0) {
              rt::kernels::jacobi3d_tiled(a, b, 1.0 / 6.0, gcd.tile);
            } else {
              rt::kernels::jacobi3d_tiled(b, a, 1.0 / 6.0, gcd.tile);
            }
          }
        });
    const Out ts = traced_run(n, kd, n, n, tsteps, [&](auto& a, auto& b) {
      rt::kernels::jacobi3d_timeskew(a, b, 1.0 / 6.0, tsteps, bk);
    });
    const Out both = traced_run(
        n, kd, gcd.dip, gcd.djp, tsteps, [&](auto& a, auto& b) {
          rt::kernels::jacobi3d_timeskew(a, b, 1.0 / 6.0, tsteps, bk);
        });

    const auto add = [&](const char* name, const Out& o) {
      rows.push_back({std::to_string(n), name, rt::bench::fmt(o.l1, 1),
                      rt::bench::fmt(o.l2, 2), rt::bench::fmt(o.mflops, 1)});
    };
    add("Orig (T sweeps)", orig);
    add("JI-tiled GcdPad", ji);
    add("Time-skewed (K blocks)", ts);
    add("Time-skewed + GcdPad padding", both);
  }
  std::cout << "Future work (Section 2.1): simplified stencil code, "
            << tsteps << " time steps\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nTime skewing reuses planes across sweeps (big L2 win on "
               "the simplified kernel);\nJI-tiling wins within a sweep on "
               "the L1 — combining both is the paper's stated\nfuture "
               "work, previewed in the last row.\n";

  // --- Host axis (--threads=N): wavefront-parallel time skewing ---
  // Within one (K-block, t) wavefront step the source and destination
  // arrays differ, so the planes are independent and rt::par can sweep
  // them concurrently — bit-identical to the serial schedule (checked).
  {
    const long n = sizes.back();
    const long l2_elems = 2 * 1024 * 1024 / 8;
    const long bk = std::max(1L, l2_elems / (2 * n * n) - tsteps - 2);
    const Dims3 dims = Dims3::unpadded(n, n, kd);
    const auto init = [&](Array3D<double>& b) {
      for (long k = 0; k < kd; ++k)
        for (long j = 0; j < n; ++j)
          for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);
    };
    const auto secs = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    const double flops = 6.0 * static_cast<double>(n - 2) * (n - 2) *
                         (kd - 2) * tsteps;

    Array3D<double> a(dims), b(dims);
    init(b);
    const double t0 = secs();
    rt::kernels::jacobi3d_timeskew(a, b, 1.0 / 6.0, tsteps, bk);
    const double serial_s = secs() - t0;

    rt::par::ThreadPool pool(bo.threads);
    Array3D<double> ap(dims), bp(dims);
    init(bp);
    const double t1 = secs();
    rt::par::jacobi3d_timeskew_par(pool, ap, bp, 1.0 / 6.0, tsteps, bk);
    const double par_s = secs() - t1;

    for (long k = 0; k < kd; ++k)
      for (long j = 0; j < n; ++j)
        for (long i = 0; i < n; ++i)
          if (a(i, j, k) != ap(i, j, k) || b(i, j, k) != bp(i, j, k)) {
            std::cerr << "ERROR: parallel time skewing diverged at (" << i
                      << "," << j << "," << k << ")\n";
            return 1;
          }
    std::cout << "\nHost wavefront schedule at N=" << n << " (bk=" << bk
              << "): serial " << rt::bench::fmt(flops / serial_s / 1e6, 1)
              << " MFlops, " << pool.num_threads() << " threads "
              << rt::bench::fmt(flops / par_s / 1e6, 1) << " MFlops ("
              << rt::bench::fmt(serial_s / par_s, 2)
              << "x), results bitwise identical.\n";
  }
  return 0;
}
