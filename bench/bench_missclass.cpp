// Conflict-miss decomposition (the paper's Section 3 narrative made
// quantitative): split each transformation's L1 misses into compulsory /
// capacity / conflict components using a fully-associative shadow cache.
//
// Expected shape:
//   Orig   — large capacity component (plane reuse lost) + conflicts;
//   Tile   — capacity component gone, but conflicts remain (spiky in N);
//   Euc3D/GcdPad/Pad — conflicts gone too;
//   GcdPadNT — conflicts reduced, capacity loss remains.

#include <iostream>
#include <vector>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/cachesim/classify.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::Transform;

namespace {

/// Minimal accessor feeding a ClassifyingCache.
class ClassAcc {
 public:
  ClassAcc(Array3D<double>& a, std::uint64_t base,
           rt::cachesim::ClassifyingCache& c)
      : a_(&a), base_(base), c_(&c) {}
  long n1() const { return a_->n1(); }
  long n2() const { return a_->n2(); }
  long n3() const { return a_->n3(); }
  double load(long i, long j, long k) const {
    c_->access(base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * 8,
               false);
    return (*a_)(i, j, k);
  }
  void store(long i, long j, long k, double v) {
    c_->access(base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * 8,
               true);
    (*a_)(i, j, k) = v;
  }

 private:
  Array3D<double>* a_;
  std::uint64_t base_;
  rt::cachesim::ClassifyingCache* c_;
};

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const std::vector<long> sizes = bo.sweep(200, 400, 100, 50);
  const long kd = 30;
  const auto spec = rt::core::StencilSpec::jacobi3d();

  std::vector<std::string> header{"N",          "version",   "miss %",
                                  "compulsory %", "capacity %", "conflict %"};
  std::vector<std::vector<std::string>> rows;
  for (long n : sizes) {
    for (Transform tr :
         {Transform::kOrig, Transform::kTile, Transform::kEuc3d,
          Transform::kGcdPad, Transform::kPad, Transform::kGcdPadNT}) {
      const auto plan = rt::core::plan_for(tr, 2048, n, n, spec);
      const Dims3 dims = Dims3::padded(n, n, kd, plan.dip, plan.djp);
      Array3D<double> a(dims), b(dims);
      for (long k = 0; k < kd; ++k)
        for (long j = 0; j < n; ++j)
          for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);

      rt::cachesim::ClassifyingCache cc(
          rt::cachesim::CacheConfig::ultrasparc2_l1());
      rt::array::AddressSpace space(0, 64);
      const auto ba =
          space.place("a", static_cast<std::uint64_t>(dims.alloc_elems()));
      const auto bb =
          space.place("b", static_cast<std::uint64_t>(dims.alloc_elems()));
      ClassAcc ca(a, ba, cc), cb(b, bb, cc);
      for (int t = 0; t < bo.steps; ++t) {
        if (plan.tiled) {
          rt::kernels::jacobi3d_tiled(ca, cb, 1.0 / 6.0, plan.tile);
        } else {
          rt::kernels::jacobi3d(ca, cb, 1.0 / 6.0);
        }
        rt::kernels::copy_interior(cb, ca);
      }
      const auto& m = cc.classes();
      rows.push_back({std::to_string(n),
                      std::string(rt::core::transform_name(tr)),
                      rt::bench::fmt(m.pct(m.total_misses()), 1),
                      rt::bench::fmt(m.pct(m.compulsory), 1),
                      rt::bench::fmt(m.pct(m.capacity), 1),
                      rt::bench::fmt(m.pct(m.conflict), 1)});
    }
  }
  std::cout << "Miss classification (3C model, shadow fully-associative "
               "16K): JACOBI L1\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nTile eliminates the capacity component but leaves "
               "conflicts; the paper's\nnon-conflicting tiles (Euc3D) and "
               "padded tiles (GcdPad/Pad) eliminate both.\n";
  return 0;
}
