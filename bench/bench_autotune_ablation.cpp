// Autotuning ablation (rt::tune): for JACOBI and RESID under GcdPad at a
// memory-bound and a cache-friendly N, run the measured calibration sweep —
// the model plan plus its tile/pad/untiled neighbourhood, every candidate
// timed under the identical host protocol — and emit three rows per key:
//
//   autotuned  the sweep's winner (time primary, counter tie-break)
//   model      the analytic plan (paper's direct-mapped search), same sweep
//   worst      the slowest completed candidate (how bad a wrong tile is)
//
// Because the model plan is always in the candidate set, autotuned >= model
// holds by construction; the interesting output is *how much* measurement
// buys over the model on an associative, prefetching host, and how far the
// worst plausible tile falls behind.
//
// Winners persist to the plan store (--plan-store=FILE, default
// $RT_TUNE_STORE / ~/.cache/rt-tune/plans.json), keyed by the host's
// cache-topology fingerprint.  A second run with --tune=load serves the
// stored winners with no calibration sweep (two measured rows per key:
// the served winner and the model plan).  A corrupt, stale or
// wrong-version store degrades to the model plan with the typed reason in
// the "store" column — never a crash.
//
// Flags: --tune=off|load|on (default on: this bench exists to calibrate),
// --plan-store=FILE, --nmin/--nmax/--nstep, --steps, --threads, --simd,
// --counters, --timeout, --json=FILE (results/BENCH_7.json schema).

#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/cache_topology.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/obs/perf_counters.hpp"
#include "rt/tune/autotuner.hpp"

using rt::bench::RunOptions;
using rt::bench::RunResult;
using rt::core::Transform;
using rt::guard::Status;
using rt::kernels::KernelId;
using rt::obs::CounterKind;
using rt::tune::Measurement;
using rt::tune::TuneMode;

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool same_plan(const rt::core::TilingPlan& a, const rt::core::TilingPlan& b) {
  return a.tiled == b.tiled && a.tile == b.tile && a.dip == b.dip &&
         a.djp == b.djp;
}

/// Measurement for the tuner from a full bench run: median-able time,
/// throughput, and the counter-derived tie-breakers when the PMU is open.
Measurement to_measurement(const RunResult& r) {
  Measurement m;
  if (r.status != Status::kOk) {
    m.status = r.status;
    m.detail = r.status_detail;
    return m;
  }
  m.seconds = r.measure.count > 0 ? r.measure.total_s / r.measure.count : 0;
  m.mflops = r.host_mflops;
  if (r.hw.available && r.hw.iters > 0) {
    const auto& llc = r.hw.readings[CounterKind::kLlcLoadMisses];
    const auto& tlb = r.hw.readings[CounterKind::kDtlbLoadMisses];
    const auto& cyc = r.hw.readings[CounterKind::kCycles];
    const auto& ins = r.hw.readings[CounterKind::kInstructions];
    if (llc.valid) {
      m.llc_misses = static_cast<double>(llc.value) / r.hw.iters;
    }
    if (tlb.valid) {
      m.dtlb_misses = static_cast<double>(tlb.value) / r.hw.iters;
    }
    if (cyc.valid && ins.valid && cyc.value > 0) {
      m.ipc = static_cast<double>(ins.value) / static_cast<double>(cyc.value);
    }
  }
  return m;
}

std::string tile_str(const rt::core::TilingPlan& p) {
  if (!p.tiled) return "-";
  return std::to_string(p.tile.ti) + "x" + std::to_string(p.tile.tj);
}

}  // namespace

int main(int argc, char** argv) {
  rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  // This bench exists to calibrate: default to tuning unless the user
  // explicitly turned it off (in which case only model rows are emitted).
  bool tune_defaulted = false;
  if (bo.tune == TuneMode::kOff) {
    bool flag_given = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]).rfind("--tune=", 0) == 0) flag_given = true;
    }
    if (!flag_given) {
      bo.tune = TuneMode::kOn;
      tune_defaulted = true;
    }
  }

  const std::vector<long> sizes = bo.sweep(200, 400, 200, 100);
  const std::string store_path = bo.resolved_plan_store();
  const std::string fingerprint =
      rt::core::host_cache_topology().fingerprint();

  RunOptions ro;
  ro.simulate = false;
  ro.time_host = true;
  ro.time_steps = bo.steps;
  ro.counters = bo.counters;
  if (bo.threads > 0) ro.threads = bo.threads;
  ro.simd = bo.simd;
  ro.simd_align = bo.simd_align;
  ro.timeout_seconds = bo.timeout_seconds;
  ro.backend = bo.resolved_backend(ro.geom());

  // Load (or start) the store.  Corrupt / stale stores degrade to the
  // model plan with the typed reason recorded; --tune=on starts fresh.
  rt::tune::PlanStore store;
  store.fingerprint = fingerprint;
  std::string store_status = "fresh";
  if (bo.tune != TuneMode::kOff) {
    rt::guard::Expected<rt::tune::PlanStore> loaded =
        rt::tune::load_store(store_path, fingerprint);
    if (loaded.ok()) {
      store = loaded.value();
      store_status = "loaded(" + std::to_string(store.entries.size()) + ")";
    } else if (loaded.status() == Status::kInvalidArgument) {
      store_status = "fresh";  // nothing persisted yet (--tune=load exits 2
                               // earlier, so this is the --tune=on path)
    } else {
      store_status = rt::guard::status_name(loaded.status());
      std::cout << "plan store " << store_path << ": "
                << rt::guard::status_name(loaded.status()) << " — "
                << loaded.detail() << " (serving model plans)\n";
    }
  }

  std::cout << "autotune ablation: tune=" << rt::tune::tune_mode_name(bo.tune)
            << (tune_defaulted ? " (default)" : "") << "  store="
            << store_path << " [" << store_status << "]\n"
            << "host topology: " << fingerprint << "\n"
            << rt::obs::describe_counter_support() << "\n\n";

  rt::tune::TuneConfig cfg;
  cfg.repeats = 3;
  rt::tune::Autotuner tuner(cfg);

  const struct {
    KernelId id;
    const char* name;
  } kernels[] = {{KernelId::kJacobi, "JACOBI"}, {KernelId::kResid, "RESID"}};
  const Transform tr = Transform::kGcdPad;

  rt::obs::MetricsWriter writer;
  std::vector<std::vector<std::string>> rows;
  bool failed = false;

  for (const auto& kn : kernels) {
    for (long n : sizes) {
      const rt::core::StencilSpec& spec =
          rt::kernels::kernel_info(kn.id).spec;
      rt::tune::TuneKey key;
      key.kernel = kn.name;
      key.n = n;
      key.n3 = ro.k_dim;
      key.transform = tr;
      key.backend = ro.backend;
      key.threads = ro.threads;
      key.simd = rt::simd::simd_mode_name(ro.simd);
      const rt::core::PlanKey pkey = rt::core::PlanCache::make_backend_key(
          ro.backend, tr, ro.geom(), n, n, spec, ro.k_dim);

      const rt::core::PlanReport model_rep = rt::core::plan_with_backend(
          ro.backend, tr, ro.geom(), n, n, spec, ro.k_dim);

      const auto emit_row = [&](const char* variant, const std::string& origin,
                                const RunResult& r,
                                const rt::tune::TuneResult* tres) {
        if (!bo.json.empty()) {
          rt::obs::JsonValue& rec =
              rt::bench::append_json_record(writer, kn.name, n, r);
          rec.set("variant", variant).set("origin", origin);
          rec.set("store_status", store_status);
          if (tres != nullptr) {
            rec.set("tune", rt::bench::tune_json(bo.tune, *tres));
          } else {
            rec.set("tune", rt::obs::JsonValue());
          }
        }
        std::string note;
        if (r.status != Status::kOk) note = rt::guard::status_name(r.status);
        rows.push_back({kn.name, std::to_string(n), variant, origin,
                        tile_str(r.plan), std::to_string(r.plan.dip),
                        rt::bench::fmt(r.host_mflops, 0), note});
      };

      const rt::tune::StoreEntry* entry =
          bo.tune != TuneMode::kOff ? store.find(key) : nullptr;
      if (entry != nullptr && tuner.is_stale(*entry, now_ms())) {
        // Age-stale winner: drop back to calibration (--tune=on) or the
        // model plan (--tune=load) instead of serving outdated numbers.
        std::cout << key.str() << ": stored winner is stale (tuned_at="
                  << entry->tuned_at_ms << "ms), re-tuning\n";
        entry = nullptr;
      }

      if (bo.tune != TuneMode::kOff && entry != nullptr) {
        // Served from the store: no calibration sweep — measure the served
        // winner and the model plan once each for this run's records.
        RunResult wr = rt::bench::run_kernel_with_plan(kn.id, entry->plan, n, ro);
        emit_row("autotuned", entry->origin + " (stored)", wr, nullptr);
        RunResult mr =
            rt::bench::run_kernel_with_plan(kn.id, model_rep.plan, n, ro);
        emit_row("model", "model", mr, nullptr);
        continue;
      }

      if (bo.tune != TuneMode::kOn) {
        // --tune=off: model rows only.
        RunResult mr =
            rt::bench::run_kernel_with_plan(kn.id, model_rep.plan, n, ro);
        emit_row("model", "model", mr, nullptr);
        continue;
      }

      // Calibration sweep.  The runner keeps every full RunResult so the
      // winner/model/worst rows reuse the sweep's own measurements.
      const std::vector<rt::tune::Candidate> cands =
          rt::tune::spatial_candidates(model_rep.plan, n, n, spec.halo,
                                       ro.geom(), spec, cfg.max_candidates);
      struct Trace {
        std::mutex m;
        std::vector<std::pair<rt::core::TilingPlan, RunResult>> runs;
      };
      auto trace = std::make_shared<Trace>();
      const KernelId id = kn.id;
      const RunOptions ro_copy = ro;
      const long n_copy = n;
      rt::tune::CandidateRunner runner =
          [trace, id, ro_copy, n_copy](const rt::core::TilingPlan& plan) {
            RunResult r =
                rt::bench::run_kernel_with_plan(id, plan, n_copy, ro_copy);
            Measurement m = to_measurement(r);
            std::lock_guard<std::mutex> lk(trace->m);
            trace->runs.emplace_back(plan, std::move(r));
            return m;
          };
      rt::tune::TuneResult tres = tuner.tune_spatial(key, cands, runner);

      const auto run_for = [&](int idx) -> const RunResult* {
        if (idx < 0) return nullptr;
        const auto& plan = tres.candidates[static_cast<std::size_t>(idx)].plan;
        for (const auto& [p, r] : trace->runs) {
          if (same_plan(p, plan)) return &r;
        }
        return nullptr;
      };

      if (!tres.ok()) {
        // Every candidate skipped: fall back to the model plan, recorded.
        std::cout << key.str() << ": " << rt::guard::status_name(tres.status)
                  << " — " << tres.detail << " (model plan)\n";
        RunResult mr =
            rt::bench::run_kernel_with_plan(kn.id, model_rep.plan, n, ro);
        emit_row("model", "model", mr, &tres);
        continue;
      }

      const auto emit_variant = [&](const char* variant, int idx) {
        if (idx < 0) return;
        const RunResult* r = run_for(idx);
        if (r == nullptr) return;
        RunResult row = *r;
        // The row reports the sweep's median measurement, not whichever
        // repeat happened to be traced first.
        const auto& c = tres.candidates[static_cast<std::size_t>(idx)];
        if (c.m.ok()) row.host_mflops = c.m.mflops;
        emit_row(variant, c.origin, row, &tres);
      };
      emit_variant("autotuned", tres.winner);
      emit_variant("model", tres.model);
      if (tres.worst != tres.winner && tres.worst != tres.model) {
        emit_variant("worst", tres.worst);
      }

      // Persist the winner.
      rt::tune::StoreEntry e;
      e.key = key;
      e.temporal = false;
      e.plan_key = pkey;
      e.plan = tres.candidates[static_cast<std::size_t>(tres.winner)].plan;
      e.origin = tres.candidates[static_cast<std::size_t>(tres.winner)].origin;
      e.mflops = tres.mflops_at(tres.winner);
      e.model_mflops = tres.mflops_at(tres.model);
      e.tuned_at_ms = now_ms();
      store.put(std::move(e));
    }
  }

  if (bo.tune == TuneMode::kOn && !store.entries.empty()) {
    const Status st = rt::tune::save_store(store, store_path);
    if (st != Status::kOk) {
      std::cerr << "error: cannot write plan store " << store_path << "\n";
      failed = true;
    } else {
      std::cout << "persisted " << store.entries.size() << " winners to "
                << store_path << "\n";
    }
  }

  std::cout << "\nAutotuned vs model vs worst (GcdPad, K=" << ro.k_dim
            << ", threads=" << ro.threads << "):\n";
  rt::bench::print_table(
      {"kernel", "N", "variant", "origin", "tile", "dip", "MFlops", "note"},
      rows);

  if (!bo.json.empty()) {
    if (!writer.write_file(bo.json)) {
      std::cerr << "error: cannot write " << bo.json << "\n";
      failed = true;
    } else {
      std::cout << "\nwrote " << writer.num_records() << " records to "
                << bo.json << "\n";
    }
  }
  return failed ? 1 : 0;
}
