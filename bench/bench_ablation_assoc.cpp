// Ablation: cache associativity sensitivity.  The paper's entire conflict
// problem is a direct-mapped artifact: with 2/4/8-way L1s of the same
// capacity, the capacity-only "Tile" transformation approaches the
// conflict-free GcdPad, and the difference between them collapses.  This
// also documents why wall-clock timing on a modern (8-way L1) host cannot
// reproduce Figures 14-19, justifying the simulated-machine methodology.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  // Default sizes are the conflict-pathological dims of the default sweep
  // (Orig spikes at N=260/300/400; catastrophic column aliasing at 320):
  // that is where associativity has something to absorb.
  std::vector<long> sizes = {260, 300, 320, 400};
  if (bo.nmin > 0 || bo.nmax > 0 || bo.nstep > 0 || bo.full) {
    sizes = bo.sweep(200, 400, 50, 25);
  }
  const std::vector<std::uint32_t> assocs = {1, 2, 4, 8};

  for (long n : sizes) {
    std::vector<std::string> names;
    std::vector<std::vector<double>> cols;
    std::vector<long> ways;
    for (std::uint32_t a : assocs) ways.push_back(a);

    for (Transform t :
         {Transform::kOrig, Transform::kTile, Transform::kGcdPad}) {
      std::vector<double> l1;
      for (std::uint32_t a : assocs) {
        rt::bench::RunOptions ro;
        ro.time_steps = bo.steps;
        ro.l1.assoc = a;
        const auto r = rt::bench::run_kernel(KernelId::kJacobi, t, n, ro);
        l1.push_back(r.l1_miss_pct);
      }
      names.push_back(std::string(rt::core::transform_name(t)));
      cols.push_back(l1);
    }
    rt::bench::print_series(
        "Ablation: JACOBI L1 miss % vs L1 associativity, N=" +
            std::to_string(n),
        "ways", ways, names, cols);
  }
  std::cout << "\nOrig's spikes are pure conflict misses: 2-4 ways absorb "
               "them entirely (N=320's\n61% collapses to 33%).  GcdPad needs "
               "no associativity at all — it is already at\nits floor on the "
               "direct-mapped cache.  This is why a modern 8-way host cannot\n"
               "exhibit the paper's effects and the evaluation runs on the "
               "simulator.\n";
  return 0;
}
