// Ablation: the Array Tile Depth (ATD) parameter.  The paper fixes ATD per
// stencil (3 for +/-1 stencils, 4 for fused red-black) and GcdPad uses
// TK = 4.  What happens if the planner is configured with a too-small or
// too-large depth?  Too small -> the sliding window of live planes
// self-conflicts and tiling loses its benefit; too large -> tiles shrink
// needlessly and the halo overhead grows.

#include <iostream>
#include <vector>

#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/euc3d.hpp"

using rt::core::Transform;
using rt::kernels::KernelId;

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const long n = bo.nmax > 0 ? bo.nmax : 300;

  std::vector<std::string> header{"ATD", "Euc3D tile", "cost",
                                  "L1 miss %", "sim MFlops"};
  std::vector<std::vector<std::string>> rows;
  for (int atd = 1; atd <= 6; ++atd) {
    rt::core::StencilSpec spec = rt::core::StencilSpec::jacobi3d();
    spec.atd = atd;
    const auto sel = rt::core::euc3d(2048, n, n, spec);

    // Run JACOBI with this tile (unpadded, Euc3D-style).
    rt::bench::RunOptions ro;
    ro.time_steps = bo.steps;
    // Emulate by constructing a custom plan through run_kernel's Euc3D
    // path: patch the spec via a direct traced run would duplicate the
    // runner, so instead reuse the Tile transform result shape by running
    // manually sized Euc3D.  Simplest faithful route: run with the tile by
    // temporarily treating it as the Euc3D plan at this size.
    rt::core::TilingPlan plan;
    plan.transform = Transform::kEuc3d;
    plan.tiled = sel.tile.ti > 0 && sel.tile.tj > 0;
    plan.tile = sel.tile;
    plan.dip = n;
    plan.djp = n;

    // Use the runner's internals indirectly: run Orig then report the tile
    // effect via a dedicated traced run.
    const auto r = rt::bench::run_kernel_with_plan(KernelId::kJacobi, plan, n,
                                                   ro);
    rows.push_back({std::to_string(atd),
                    "(" + std::to_string(sel.tile.ti) + "," +
                        std::to_string(sel.tile.tj) + ")",
                    rt::bench::fmt(sel.tile_cost, 3),
                    rt::bench::fmt(r.l1_miss_pct, 2),
                    rt::bench::fmt(r.sim_mflops, 1)});
  }
  std::cout << "Ablation: array-tile depth (ATD) for JACOBI at N=" << n
            << " (correct value: 3)\n\n";
  rt::bench::print_table(header, rows);
  std::cout << "\nATD < 3 under-provisions the live planes (conflicts creep "
               "back in);\nATD > 3 shrinks tiles and raises the cost for no "
               "benefit.\n";
  return 0;
}
