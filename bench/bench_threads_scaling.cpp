// Threads x tile-shape scaling of the parallel tiled kernels (rt::par):
// host wall-clock MFlops for JACOBI / REDBLACK / RESID under every paper
// transform, at 1..T threads.  The point being tested: the JI tile grid is
// an embarrassingly parallel work unit (K stays untiled), so Euc3D/GcdPad/
// Pad-chosen tiles keep their per-core cache benefit while the grid is
// spread over cores — tiled configurations should scale at least as well
// as Orig and stay ahead of it at every thread count.
//
// Before timing, each kernel's parallel variant is checked bit-for-bit
// against its serial counterpart at the benched size (red-black against
// the naive two-pass schedule, which the serial tiled kernel is itself
// bit-identical to — see tests/kernels_test.cpp).
//
// Flags: --threads=T sets the top of the thread sweep ({1, 2, 4, ..., T});
// default sweep is {1, 2, 4}.  --nmax=N overrides the problem size
// (default 400, the acceptance size); --host is implied.  --simd=MODE
// restricts the SIMD axis (default sweeps off AND auto, so the table shows
// the scalar-vs-row-kernel gap at every thread count).

#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/bench/options.hpp"
#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/temporal.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/kernels/timeskew.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"
#include "rt/temporal/wavefront.hpp"

namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::Transform;
using rt::kernels::KernelId;

std::vector<int> thread_sweep(int requested) {
  if (requested <= 1 && requested != 0) return {1};
  if (requested <= 1) return {1, 2, 4};
  std::vector<int> ts{1};
  for (int t = 2; t < requested; t *= 2) ts.push_back(t);
  ts.push_back(requested);
  return ts;
}

Array3D<double> make_grid(const Dims3& d, double seed) {
  Array3D<double> a(d);
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        a(i, j, k) = seed + 0.001 * static_cast<double>(i) +
                     0.002 * static_cast<double>(j) +
                     0.003 * static_cast<double>(k);
      }
    }
  }
  return a;
}

bool interiors_equal(const Array3D<double>& a, const Array3D<double>& b) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (a(i, j, k) != b(i, j, k)) return false;  // bitwise
      }
    }
  }
  return true;
}

/// One serial-vs-parallel step of each kernel at the benched size; returns
/// false (and reports) on any bitwise difference.
bool verify_bit_identical(long n, long kd, int threads) {
  const auto plan = rt::core::plan_for(Transform::kGcdPad, 2048, n, n,
                                       rt::core::StencilSpec::jacobi3d());
  const Dims3 d = Dims3::padded(n, n, kd, plan.dip, plan.djp);
  rt::par::ThreadPool pool(threads);
  bool ok = true;

  {  // JACOBI (+ copy-back)
    Array3D<double> b1 = make_grid(d, 0.5), b2 = b1;
    Array3D<double> a1(d), a2(d);
    rt::kernels::jacobi3d_tiled(a1, b1, 1.0 / 6.0, plan.tile);
    rt::kernels::copy_interior(b1, a1);
    rt::par::jacobi3d_tiled_par(pool, a2, b2, 1.0 / 6.0, plan.tile);
    rt::par::copy_interior_par(pool, b2, a2);
    if (!interiors_equal(a1, a2) || !interiors_equal(b1, b2)) {
      std::cerr << "VERIFY FAILED: parallel JACOBI differs from serial\n";
      ok = false;
    }
  }
  {  // REDBLACK (parallel two-pass vs serial naive == serial tiled)
    Array3D<double> a1 = make_grid(d, 0.3), a2 = a1;
    rt::kernels::redblack_naive(a1, 0.4, 0.1);
    rt::par::redblack_tiled_par(pool, a2, 0.4, 0.1, plan.tile);
    if (!interiors_equal(a1, a2)) {
      std::cerr << "VERIFY FAILED: parallel REDBLACK differs from serial\n";
      ok = false;
    }
  }
  {  // RESID
    Array3D<double> v = make_grid(d, 0.7), u = make_grid(d, 0.1);
    Array3D<double> r1(d), r2(d);
    const auto a = rt::kernels::nas_mg_a();
    rt::kernels::resid_tiled(r1, v, u, a, plan.tile);
    rt::par::resid_tiled_par(pool, r2, v, u, a, plan.tile);
    if (!interiors_equal(r1, r2)) {
      std::cerr << "VERIFY FAILED: parallel RESID differs from serial\n";
      ok = false;
    }
  }
  {  // Row kernels (serial and parallel) at the host's resolved auto level.
    const auto lvl = rt::simd::resolve(rt::simd::SimdMode::kAuto);
    Array3D<double> b1 = make_grid(d, 0.5), b2 = b1, b3 = b1;
    Array3D<double> a1(d), a2(d), a3(d);
    rt::kernels::jacobi3d_tiled(a1, b1, 1.0 / 6.0, plan.tile);
    rt::kernels::copy_interior(b1, a1);
    rt::simd::jacobi3d_tiled_rows(a2, b2, 1.0 / 6.0, plan.tile, lvl);
    rt::simd::copy_interior_rows(b2, a2, lvl);
    rt::simd::jacobi3d_tiled_rows_par(pool, a3, b3, 1.0 / 6.0, plan.tile,
                                      lvl);
    rt::simd::copy_interior_rows_par(pool, b3, a3, lvl);
    if (!interiors_equal(a1, a2) || !interiors_equal(b1, b2) ||
        !interiors_equal(a1, a3) || !interiors_equal(b1, b3)) {
      std::cerr << "VERIFY FAILED: simd row JACOBI differs from accessor\n";
      ok = false;
    }
    Array3D<double> v = make_grid(d, 0.7), u = make_grid(d, 0.1);
    Array3D<double> r1(d), r2(d);
    const auto a = rt::kernels::nas_mg_a();
    rt::kernels::resid_tiled(r1, v, u, a, plan.tile);
    rt::simd::resid_tiled_rows_par(pool, r2, v, u, a, plan.tile, lvl);
    if (!interiors_equal(r1, r2)) {
      std::cerr << "VERIFY FAILED: simd row RESID differs from accessor\n";
      ok = false;
    }
    Array3D<double> c1 = make_grid(d, 0.3), c2 = c1;
    rt::kernels::redblack_naive(c1, 0.4, 0.1);
    rt::simd::redblack_tiled_rows_par(pool, c2, 0.4, 0.1, plan.tile, lvl);
    if (!interiors_equal(c1, c2)) {
      std::cerr << "VERIFY FAILED: simd row REDBLACK differs from accessor\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const rt::bench::BenchOptions bo = rt::bench::parse_options(argc, argv);
  const long n = bo.nmax > 0 ? bo.nmax : 400;
  const std::vector<int> threads = thread_sweep(bo.threads);

  rt::bench::RunOptions ro;
  ro.simulate = false;
  ro.time_host = true;
  ro.verify = bo.verify;
  ro.timeout_seconds = bo.timeout_seconds;
  ro.backend = bo.resolved_backend(ro.geom());

  const int vthreads = std::max(threads.back(), 4);
  if (!verify_bit_identical(n, ro.k_dim, vthreads)) return 1;
  std::cout << "verified: parallel + simd-row kernels bit-identical to "
               "serial at N=" << n << " with " << vthreads << " threads\n\n";

  const std::vector<rt::simd::SimdMode> simd_modes =
      bo.simd_given ? std::vector<rt::simd::SimdMode>{bo.simd}
                    : std::vector<rt::simd::SimdMode>{
                          rt::simd::SimdMode::kOff, rt::simd::SimdMode::kAuto};

  const std::vector<Transform> transforms = {
      Transform::kOrig, Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad};
  const struct {
    KernelId kid;
    const char* name;
  } kernels[] = {{KernelId::kJacobi, "JACOBI"},
                 {KernelId::kRedBlack, "REDBLACK"},
                 {KernelId::kResid, "RESID"},
                 {KernelId::kPsinv, "PSINV"}};

  std::vector<std::vector<std::string>> rows;
  long skipped_fallback = 0;
  for (const auto& kn : kernels) {
    for (Transform tr : transforms) {
      for (rt::simd::SimdMode sm : simd_modes) {
        ro.simd = sm;
        double base_mflops = 0;
        for (int t : threads) {
          ro.threads = t;
          const auto r = rt::bench::run_kernel(kn.kid, tr, n, ro);
          // A kernel with no parallel/simd variant (PSINV) times serially
          // whatever was requested; every such configuration beyond the
          // serial-scalar one would print an identical row masquerading as
          // a real data point — skip it and say so below.
          if (r.degraded()) {
            ++skipped_fallback;
            continue;
          }
          if (t == 1) base_mflops = r.host_mflops;
          const std::string tile =
              r.plan.tiled ? std::to_string(r.plan.tile.ti) + "x" +
                                 std::to_string(r.plan.tile.tj)
                           : "-";
          rows.push_back({kn.name, std::string(rt::core::transform_name(tr)),
                          tile, rt::simd::simd_level_name(r.simd),
                          std::to_string(t),
                          rt::bench::fmt(r.host_mflops, 1),
                          rt::bench::fmt(base_mflops > 0
                                             ? r.host_mflops / base_mflops
                                             : 0.0,
                                         2)});
        }
      }
    }
  }
  std::cout << "Thread scaling, N=" << n << " (K=" << ro.k_dim
            << "), host wall-clock:\n";
  rt::bench::print_table(
      {"kernel", "transform", "tile", "simd", "threads", "MFlops", "speedup"},
      rows);
  std::cout << "\nspeedup is vs. the 1-thread run of the same (kernel, "
               "transform); hardware_concurrency on this host = "
            << rt::par::ThreadPool::default_threads() << "\n";
  if (skipped_fallback > 0) {
    std::cout << "skipped " << skipped_fallback
              << " serial-fallback duplicates (PSINV has no parallel or "
                 "simd variant;\nonly its serial scalar row is real data)\n";
  }

  // --- Temporal-blocking thread scaling (rt::temporal wavefronts) ---
  // Same thread sweep over the skew and diamond schedules, each verified
  // bitwise against the serial ping-pong reference at every width.
  // Degraded configurations (infeasible plan, failed thread spawn) are
  // routed into the skipped count like the serial-fallback rows above.
  if (!bo.temporal_given || bo.temporal != rt::core::TemporalMode::kOff) {
    const long kd = ro.k_dim;
    const int tsteps = bo.steps > 2 ? bo.steps : 4;
    const auto lvl = rt::simd::resolve(
        bo.simd_given ? bo.simd : rt::simd::SimdMode::kAuto);
    const long cs = rt::bench::outer_cache_elems();
    const Dims3 d = Dims3::unpadded(n, n, kd);
    auto& cache = rt::core::PlanCache::instance();
    const auto secs = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    const double flops =
        6.0 * static_cast<double>(n - 2) * (n - 2) * (kd - 2) * tsteps;

    Array3D<double> ra(d), rb = make_grid(d, 0.5);
    const double t0 = secs();
    rt::kernels::jacobi3d_pingpong(ra, rb, 1.0 / 6.0, tsteps);
    const double ref_mflops = flops / (secs() - t0) / 1e6;

    std::vector<std::vector<std::string>> trows;
    trows.push_back({"pingpong", "serial", "1", "1",
                     rt::bench::fmt(ref_mflops, 1), "reference"});
    long tskipped = 0;
    bool tdiverged = false;
    for (const auto mode :
         {rt::core::TemporalMode::kSkew, rt::core::TemporalMode::kDiamond}) {
      if (bo.temporal_given && bo.temporal != mode) continue;
      for (int t : threads) {
        const auto rep =
            cache.temporal(mode, cs, n, n, kd, tsteps, bo.bk, t);
        if (!rep.ok()) {
          ++tskipped;
          continue;
        }
        Array3D<double> a(d), b = make_grid(d, 0.5);
        rt::temporal::TemporalRun run;
        const double t1 = secs();
        if (mode == rt::core::TemporalMode::kSkew) {
          rt::par::ThreadPool pool(t);
          run = rt::temporal::jacobi3d_skew_rows(t > 1 ? &pool : nullptr, a,
                                                 b, 1.0 / 6.0, rep.plan, lvl);
        } else {
          run = rt::temporal::jacobi3d_diamond_rows(a, b, 1.0 / 6.0,
                                                    rep.plan, lvl);
        }
        const double dt = secs() - t1;
        if (run.threads < rep.plan.threads) {
          ++tskipped;  // thread spawn degraded: recorded, not reported
          continue;
        }
        if (!interiors_equal(a, ra) || !interiors_equal(b, rb)) {
          std::cerr << "VERIFY FAILED: temporal "
                    << rt::core::temporal_mode_name(mode)
                    << " differs from serial ping-pong at " << t
                    << " threads\n";
          tdiverged = true;
          continue;
        }
        trows.push_back({rt::core::temporal_mode_name(mode),
                         std::to_string(rep.plan.bk) + "/" +
                             std::to_string(rep.plan.tb),
                         std::to_string(run.threads),
                         std::to_string(run.team),
                         rt::bench::fmt(flops / dt / 1e6, 1),
                         "bitwise identical"});
      }
    }
    std::cout << "\nTemporal blocking (tsteps=" << tsteps << ", N=" << n
              << ", K=" << kd << "), host wall-clock:\n";
    rt::bench::print_table(
        {"schedule", "bk/tb", "threads", "team", "MFlops", "verify"}, trows);
    if (tskipped > 0) {
      std::cout << "skipped " << tskipped
                << " degraded temporal configuration(s) (infeasible plan "
                   "or thread-spawn fallback)\n";
    }
    if (tdiverged) return 1;
  }
  return 0;
}
