// Shared power-of-two helpers (rt/core/pow2.hpp): values, the x <= 1
// floor, and the overflow guard that replaced the old per-TU copies (which
// looped forever for inputs above LONG_MAX/2).

#include <gtest/gtest.h>

#include <climits>

#include "rt/core/pow2.hpp"

namespace rt::core {
namespace {

TEST(Pow2, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_TRUE(is_pow2(1L << 62));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1022));
}

TEST(Pow2, NextPow2Values) {
  EXPECT_EQ(next_pow2(-7), 1);
  EXPECT_EQ(next_pow2(0), 1);
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(4), 4);
  EXPECT_EQ(next_pow2(5), 8);
  EXPECT_EQ(next_pow2(1000), 1024);
  EXPECT_EQ(next_pow2(1025), 2048);
}

TEST(Pow2, NextPow2IsIdempotentOnPowersOfTwo) {
  for (long p = 1; p > 0 && p <= (1L << 40); p <<= 1) {
    EXPECT_EQ(next_pow2(p), p);
  }
}

TEST(Pow2, LargestRepresentableInput) {
  // LONG_MAX/2 + 1 is itself a power of two (2^62 on 64-bit long): the
  // largest input with a representable result.
  const long top = LONG_MAX / 2 + 1;
  EXPECT_TRUE(is_pow2(top));
  EXPECT_EQ(next_pow2(top), top);
  EXPECT_EQ(next_pow2(top - 1), top);
}

TEST(Pow2, OverflowingInputThrowsInsteadOfLooping) {
  EXPECT_THROW(next_pow2(LONG_MAX / 2 + 2), std::overflow_error);
  EXPECT_THROW(next_pow2(LONG_MAX), std::overflow_error);
}

}  // namespace
}  // namespace rt::core
