// Tests for the pluggable tiling-backend framework (rt/core/backend.hpp):
// registry wiring, the three-step driver's fallback semantics, equivalence
// of the model backend with the historical plan_for_checked, the
// associativity-lattice occupancy bound and planner, the cache-oblivious
// recursive planner, and the auto selection policy.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rt/core/backend.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/stencil_spec.hpp"

namespace rt::core {
namespace {

using rt::guard::Status;

const StencilSpec kJac = StencilSpec::jacobi3d();

CacheGeom paper_l1() {
  CacheGeom g;
  g.cs_elems = 2048;  // 16KB of doubles
  g.line_elems = 4;   // 32B lines
  g.assoc = 1;        // direct-mapped
  g.probed = true;
  return g;
}

bool same_plan(const TilingPlan& a, const TilingPlan& b) {
  return a.transform == b.transform && a.tiled == b.tiled &&
         a.tile == b.tile && a.dip == b.dip && a.djp == b.djp;
}

// ---------------------------------------------------------------- enums --

TEST(BackendEnum, NamesRoundTrip) {
  for (Backend b : all_backends()) {
    Backend parsed{};
    EXPECT_TRUE(parse_backend(std::string(backend_name(b)), &parsed))
        << backend_name(b);
    EXPECT_EQ(parsed, b);
  }
  Backend b{};
  EXPECT_FALSE(parse_backend("euclidean", &b));
  EXPECT_FALSE(parse_backend("", &b));
}

TEST(BackendEnum, ScheduleNamesRoundTrip) {
  for (LoopSchedule s :
       {LoopSchedule::kFlat, LoopSchedule::kTiled, LoopSchedule::kRecursive}) {
    LoopSchedule parsed{};
    EXPECT_TRUE(parse_schedule(std::string(schedule_name(s)), &parsed));
    EXPECT_EQ(parsed, s);
  }
  LoopSchedule s{};
  EXPECT_FALSE(parse_schedule("spiral", &s));
}

// ------------------------------------------------------------- registry --

TEST(BackendRegistry, BuiltinsPreRegistered) {
  BackendRegistry& reg = BackendRegistry::instance();
  for (Backend b :
       {Backend::kModel, Backend::kLattice, Backend::kOblivious}) {
    const TilingBackend* tb = reg.find(b);
    ASSERT_NE(tb, nullptr) << backend_name(b);
    EXPECT_EQ(tb->id(), b);
    EXPECT_EQ(reg.find(backend_name(b)), tb);
  }
  EXPECT_EQ(reg.find("no-such-backend"), nullptr);
  const std::vector<Backend> ids = reg.ids();
  EXPECT_EQ(ids.size(), 3u);
}

// --------------------------------------------------------------- driver --

TEST(BackendDriver, PlansStampTheirBackendAndSchedule) {
  const CacheGeom g = paper_l1();
  const PlanReport model =
      plan_with_backend(Backend::kModel, Transform::kTile, g, 200, 200, kJac);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.plan.backend, Backend::kModel);
  EXPECT_TRUE(model.plan.tiled);
  EXPECT_EQ(model.plan.schedule, LoopSchedule::kTiled);

  const PlanReport obl = plan_with_backend(Backend::kOblivious,
                                           Transform::kTile, g, 200, 200, kJac);
  ASSERT_TRUE(obl.ok());
  EXPECT_EQ(obl.plan.backend, Backend::kOblivious);
  EXPECT_EQ(obl.plan.schedule, LoopSchedule::kRecursive);
}

TEST(BackendDriver, FailureRestoresUntiledFallback) {
  // Dimensions at the halo: every backend rejects, and the returned plan is
  // the executable untiled fallback with the backend stamped.
  const CacheGeom g = paper_l1();
  for (Backend b :
       {Backend::kModel, Backend::kLattice, Backend::kOblivious}) {
    const PlanReport rep =
        plan_with_backend(b, Transform::kTile, g, 2, 2, kJac);
    EXPECT_EQ(rep.status, Status::kInvalidArgument) << backend_name(b);
    EXPECT_FALSE(rep.plan.tiled);
    EXPECT_EQ(rep.plan.dip, 2);
    EXPECT_EQ(rep.plan.djp, 2);
    EXPECT_EQ(rep.plan.backend, b);
    EXPECT_EQ(rep.plan.schedule, LoopSchedule::kFlat);
    EXPECT_FALSE(rep.detail.empty());
  }
}

TEST(BackendDriver, OverflowGateSharedByAllBackends) {
  const CacheGeom g = paper_l1();
  const long huge = 4'000'000'000L;  // dip * djp overflows long
  for (Backend b :
       {Backend::kModel, Backend::kLattice, Backend::kOblivious}) {
    const PlanReport rep =
        plan_with_backend(b, Transform::kOrig, g, huge, huge, kJac);
    EXPECT_EQ(rep.status, Status::kOverflow) << backend_name(b);
  }
}

TEST(BackendDriver, UnknownBackendIsInvalidArgument) {
  const PlanReport rep = plan_with_backend(
      static_cast<Backend>(99), Transform::kTile, paper_l1(), 200, 200, kJac);
  EXPECT_EQ(rep.status, Status::kInvalidArgument);
  EXPECT_FALSE(rep.plan.tiled);
}

// ------------------------------------------------- model backend parity --

TEST(ModelBackend, MatchesPlanForCheckedOnEveryTransform) {
  // plan_for_checked is now a wrapper over the model backend; pin the
  // equivalence the other way too: plan_with_backend(kModel) must
  // reproduce the historical reports for every transform and size.
  CacheGeom g = paper_l1();
  for (Transform tr : {Transform::kOrig, Transform::kTile, Transform::kEuc3d,
                       Transform::kGcdPad, Transform::kPad,
                       Transform::kGcdPadNT}) {
    for (long n : {100L, 200L, 256L, 330L, 400L}) {
      const PlanReport a = plan_for_checked(tr, g.cs_elems, n, n, kJac, 30);
      const PlanReport via =
          plan_with_backend(Backend::kModel, tr, g, n, n, kJac, 30);
      EXPECT_EQ(a.status, via.status) << transform_name(tr) << " n=" << n;
      EXPECT_TRUE(same_plan(a.plan, via.plan))
          << transform_name(tr) << " n=" << n;
      EXPECT_EQ(a.detail, via.detail);
    }
  }
}

// ------------------------------------------------------ lattice backend --

TEST(LatticeOccupancy, DirectMappedPow2IsPathological) {
  // dip = 256 on a 2048-element DM cache: rows alias every 8 rows and the
  // three K planes land on identical sets, so any multi-plane tile exceeds
  // one way.
  CacheGeom g = paper_l1();
  EXPECT_GT(lattice_worst_occupancy(g, 256, 256, 1, 1, 3), 1);
  // A single plane, single row segment fits.
  EXPECT_EQ(lattice_worst_occupancy(g, 256, 256, 4, 1, 1), 1);
}

TEST(LatticeOccupancy, MoreWaysAdmitMoreRows) {
  // Worst occupancy counts lines per set: it does not depend on ways, but
  // feasibility (<= ways) does.  At dip=260 rows spread across sets.
  CacheGeom g = paper_l1();
  const long occ1 = lattice_worst_occupancy(g, 260, 260, 8, 4, 3);
  const long occ2 = lattice_worst_occupancy(g, 260, 260, 8, 8, 3);
  EXPECT_GE(occ2, occ1);  // more rows can only add set pressure
}

TEST(LatticeOccupancy, FullyAssociativeIsCapacityOnly) {
  CacheGeom g = paper_l1();
  g.assoc = 0;  // fully associative: one set, occupancy = total lines
  const long occ = lattice_worst_occupancy(g, 260, 260, 8, 4, 3);
  // 8-elem row segments can straddle a line boundary: 2-3 lines per row.
  EXPECT_GE(occ, 4 * 3 * 2);
  EXPECT_LE(occ, 4 * 3 * 3);
}

TEST(LatticeBackend, PlansFeasibleTileOnAssociativeCache) {
  CacheGeom g = paper_l1();
  g.assoc = 2;
  const PlanReport rep =
      plan_with_backend(Backend::kLattice, Transform::kTile, g, 330, 330, kJac);
  ASSERT_EQ(rep.status, Status::kOk);
  ASSERT_TRUE(rep.plan.tiled);
  EXPECT_EQ(rep.plan.schedule, LoopSchedule::kTiled);
  // The accepted tile's array footprint respects the way bound — the
  // backend's defining invariant, checked via the exposed predicate.
  const long ati = rep.plan.tile.ti + kJac.trim_i;
  const long atj = rep.plan.tile.tj + kJac.trim_j;
  EXPECT_LE(lattice_worst_occupancy(g, rep.plan.dip, rep.plan.djp, ati, atj,
                                    kJac.atd),
            g.assoc);
}

TEST(LatticeBackend, Pow2DirectMappedFallsBackUntiled) {
  // N=256, DM: the K planes alias exactly — no tile of depth 3 can keep
  // per-set occupancy <= 1, so the backend degrades to untiled (typed).
  const PlanReport rep = plan_with_backend(Backend::kLattice, Transform::kTile,
                                           paper_l1(), 256, 256, kJac);
  EXPECT_EQ(rep.status, Status::kFellBackUntiled);
  EXPECT_FALSE(rep.plan.tiled);
  EXPECT_EQ(rep.plan.backend, Backend::kLattice);
}

TEST(LatticeBackend, RejectsGcdPadNT) {
  const PlanReport rep = plan_with_backend(
      Backend::kLattice, Transform::kGcdPadNT, paper_l1(), 200, 200, kJac);
  EXPECT_EQ(rep.status, Status::kInvalidArgument);
}

TEST(LatticeBackend, OrigPassesThroughUntiled) {
  const PlanReport rep = plan_with_backend(Backend::kLattice, Transform::kOrig,
                                           paper_l1(), 200, 200, kJac);
  EXPECT_EQ(rep.status, Status::kOk);
  EXPECT_FALSE(rep.plan.tiled);
  EXPECT_EQ(rep.plan.dip, 200);
}

TEST(LatticeBackend, NeverPads) {
  // The lattice backend picks tiles, never leading dimensions: dip/djp stay
  // at the array's own extents for every tiling transform.
  CacheGeom g = paper_l1();
  g.assoc = 4;
  for (Transform tr :
       {Transform::kTile, Transform::kEuc3d, Transform::kGcdPad,
        Transform::kPad}) {
    const PlanReport rep =
        plan_with_backend(Backend::kLattice, tr, g, 300, 300, kJac);
    EXPECT_EQ(rep.plan.dip, 300) << transform_name(tr);
    EXPECT_EQ(rep.plan.djp, 300) << transform_name(tr);
  }
}

// ---------------------------------------------------- oblivious backend --

TEST(ObliviousBackend, IgnoresCacheGeometry) {
  // Identical plans for wildly different geometries, including unprobed:
  // the backend must not read the cache parameters at all.
  CacheGeom small;
  small.cs_elems = 64;
  small.line_elems = 1;
  small.assoc = 1;
  CacheGeom huge;
  huge.cs_elems = 1 << 22;
  huge.line_elems = 16;
  huge.assoc = 16;
  huge.probed = false;
  const PlanReport a = plan_with_backend(Backend::kOblivious, Transform::kTile,
                                         small, 300, 300, kJac);
  const PlanReport b = plan_with_backend(Backend::kOblivious, Transform::kTile,
                                         huge, 300, 300, kJac);
  ASSERT_EQ(a.status, Status::kOk);
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_TRUE(same_plan(a.plan, b.plan));
  EXPECT_TRUE(a.plan.tiled);
  EXPECT_EQ(a.plan.schedule, LoopSchedule::kRecursive);
}

TEST(ObliviousBackend, BaseCaseClampsToInterior) {
  const PlanReport rep = plan_with_backend(Backend::kOblivious,
                                           Transform::kTile, paper_l1(), 10,
                                           10, kJac);
  ASSERT_EQ(rep.status, Status::kOk);
  ASSERT_TRUE(rep.plan.tiled);
  EXPECT_LE(rep.plan.tile.ti, 10 - kJac.trim_i);
  EXPECT_LE(rep.plan.tile.tj, 10 - kJac.trim_j);
  EXPECT_GE(rep.plan.tile.ti, 1);
  EXPECT_GE(rep.plan.tile.tj, 1);
}

TEST(ObliviousBackend, RejectsGcdPadNT) {
  const PlanReport rep = plan_with_backend(
      Backend::kOblivious, Transform::kGcdPadNT, paper_l1(), 200, 200, kJac);
  EXPECT_EQ(rep.status, Status::kInvalidArgument);
}

// -------------------------------------------------------- auto policy --

TEST(AutoBackend, ProbedGoesLatticeUnprobedGoesOblivious) {
  CacheGeom g = paper_l1();
  EXPECT_EQ(auto_backend(g), Backend::kLattice);
  g.probed = false;
  EXPECT_EQ(auto_backend(g), Backend::kOblivious);
}

}  // namespace
}  // namespace rt::core
