// Tests for the transformation planner (Table 2 dispatch) and cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/core/conflict.hpp"
#include "rt/core/cost.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {
namespace {

const StencilSpec kJac = StencilSpec::jacobi3d();

TEST(Cost, FavorsSquareTiles) {
  // Among tiles of equal area the cost is minimal when TI == TJ.
  EXPECT_LT(cost(16, 16, kJac), cost(32, 8, kJac));
  EXPECT_LT(cost(16, 16, kJac), cost(64, 4, kJac));
  EXPECT_LT(cost(16, 16, kJac), cost(8, 32, kJac));
}

TEST(Cost, MonotoneDecreasingInEachDim) {
  for (long ti = 1; ti < 64; ++ti) {
    EXPECT_GT(cost(ti, 10, kJac), cost(ti + 1, 10, kJac));
    EXPECT_GT(cost(10, ti, kJac), cost(10, ti + 1, kJac));
  }
}

TEST(Cost, NonPositiveTileIsInfinite) {
  EXPECT_TRUE(std::isinf(cost(0, 5, kJac)));
  EXPECT_TRUE(std::isinf(cost(5, -1, kJac)));
}

TEST(Cost, PaperValues) {
  // Section 3.3 worked example: (22,13) from array tile (24,15).
  EXPECT_NEAR(cost(22, 13, kJac), 360.0 / 286.0, 1e-12);
  // GcdPad tile (30,14) from (32,16).
  EXPECT_NEAR(cost(30, 14, kJac), 512.0 / 420.0, 1e-12);
}

TEST(SquareTile, VolumeRespectsCache) {
  for (long cs : {512L, 1024L, 2048L, 4096L}) {
    const auto r = square_tile(cs, kJac);
    EXPECT_EQ(r.array_tile.ti, r.array_tile.tj);
    EXPECT_LE(r.array_tile.ti * r.array_tile.tj * r.array_tile.tk, cs);
    // Next square up would exceed the cache.
    const long s = r.array_tile.ti + 1;
    EXPECT_GT(s * s * kJac.atd, cs);
  }
}

TEST(SquareTile, Paper2048Value) {
  // floor(sqrt(2048/3)) = 26.
  const auto r = square_tile(2048, kJac);
  EXPECT_EQ(r.array_tile.ti, 26);
  EXPECT_EQ(r.tile, (IterTile{24, 24}));
}

TEST(Plan, OrigHasNoTilingNoPadding) {
  const TilingPlan p = plan_for(Transform::kOrig, 2048, 300, 300, kJac);
  EXPECT_FALSE(p.tiled);
  EXPECT_EQ(p.dip, 300);
  EXPECT_EQ(p.djp, 300);
}

TEST(Plan, TileIsSquareUnpadded) {
  const TilingPlan p = plan_for(Transform::kTile, 2048, 300, 300, kJac);
  EXPECT_TRUE(p.tiled);
  EXPECT_EQ(p.tile.ti, p.tile.tj);
  EXPECT_EQ(p.dip, 300);
}

TEST(Plan, Euc3dUnpadded) {
  const TilingPlan p = plan_for(Transform::kEuc3d, 2048, 200, 200, kJac);
  EXPECT_TRUE(p.tiled);
  EXPECT_EQ(p.tile, (IterTile{22, 13}));
  EXPECT_EQ(p.dip, 200);
}

TEST(Plan, GcdPadPadsAndTiles) {
  const TilingPlan p = plan_for(Transform::kGcdPad, 2048, 300, 300, kJac);
  EXPECT_TRUE(p.tiled);
  EXPECT_EQ(p.tile, (IterTile{30, 14}));
  EXPECT_EQ(p.dip, 352);  // odd multiple of 32 >= 300
  EXPECT_EQ(p.djp, 304);  // odd multiple of 16 >= 300
}

TEST(Plan, GcdPadNTPadsOnly) {
  const TilingPlan p = plan_for(Transform::kGcdPadNT, 2048, 300, 300, kJac);
  EXPECT_FALSE(p.tiled);
  EXPECT_EQ(p.dip, 352);
  EXPECT_EQ(p.djp, 304);
}

TEST(Plan, PadPlansAreConflictFree) {
  for (long n : {200L, 300L, 341L, 400L}) {
    const TilingPlan p = plan_for(Transform::kPad, 2048, n, n, kJac);
    ASSERT_TRUE(p.tiled);
    EXPECT_TRUE(is_conflict_free(2048, p.dip, p.djp, p.tile.ti + kJac.trim_i,
                                 p.tile.tj + kJac.trim_j, kJac.atd))
        << "n=" << n;
  }
}

TEST(Plan, AllTransformsProduceValidDims) {
  for (Transform tr : all_transforms()) {
    for (long n : {200L, 257L, 341L, 400L}) {
      const TilingPlan p = plan_for(tr, 2048, n, n, kJac);
      EXPECT_GE(p.dip, n) << transform_name(tr);
      EXPECT_GE(p.djp, n) << transform_name(tr);
      if (p.tiled) {
        EXPECT_GT(p.tile.ti, 0) << transform_name(tr);
        EXPECT_GT(p.tile.tj, 0) << transform_name(tr);
      }
    }
  }
}

TEST(Plan, TransformNames) {
  EXPECT_EQ(transform_name(Transform::kOrig), "Orig");
  EXPECT_EQ(transform_name(Transform::kGcdPadNT), "GcdPadNT");
  EXPECT_EQ(all_transforms().size(), 6u);
}

}  // namespace
}  // namespace rt::core
