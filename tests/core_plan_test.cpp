// Tests for the transformation planner (Table 2 dispatch) and cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/core/conflict.hpp"
#include "rt/core/cost.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {
namespace {

const StencilSpec kJac = StencilSpec::jacobi3d();

TEST(Cost, FavorsSquareTiles) {
  // Among tiles of equal area the cost is minimal when TI == TJ.
  EXPECT_LT(cost(16, 16, kJac), cost(32, 8, kJac));
  EXPECT_LT(cost(16, 16, kJac), cost(64, 4, kJac));
  EXPECT_LT(cost(16, 16, kJac), cost(8, 32, kJac));
}

TEST(Cost, MonotoneDecreasingInEachDim) {
  for (long ti = 1; ti < 64; ++ti) {
    EXPECT_GT(cost(ti, 10, kJac), cost(ti + 1, 10, kJac));
    EXPECT_GT(cost(10, ti, kJac), cost(10, ti + 1, kJac));
  }
}

TEST(Cost, NonPositiveTileIsInfinite) {
  EXPECT_TRUE(std::isinf(cost(0, 5, kJac)));
  EXPECT_TRUE(std::isinf(cost(5, -1, kJac)));
}

TEST(Cost, PaperValues) {
  // Section 3.3 worked example: (22,13) from array tile (24,15).
  EXPECT_NEAR(cost(22, 13, kJac), 360.0 / 286.0, 1e-12);
  // GcdPad tile (30,14) from (32,16).
  EXPECT_NEAR(cost(30, 14, kJac), 512.0 / 420.0, 1e-12);
}

TEST(SquareTile, VolumeRespectsCache) {
  for (long cs : {512L, 1024L, 2048L, 4096L}) {
    const auto r = square_tile(cs, kJac);
    EXPECT_EQ(r.array_tile.ti, r.array_tile.tj);
    EXPECT_LE(r.array_tile.ti * r.array_tile.tj * r.array_tile.tk, cs);
    // Next square up would exceed the cache.
    const long s = r.array_tile.ti + 1;
    EXPECT_GT(s * s * kJac.atd, cs);
  }
}

TEST(SquareTile, Paper2048Value) {
  // floor(sqrt(2048/3)) = 26.
  const auto r = square_tile(2048, kJac);
  EXPECT_EQ(r.array_tile.ti, 26);
  EXPECT_EQ(r.tile, (IterTile{24, 24}));
}

TEST(Plan, OrigHasNoTilingNoPadding) {
  const TilingPlan p = plan_for(Transform::kOrig, 2048, 300, 300, kJac);
  EXPECT_FALSE(p.tiled);
  EXPECT_EQ(p.dip, 300);
  EXPECT_EQ(p.djp, 300);
}

TEST(Plan, TileIsSquareUnpadded) {
  const TilingPlan p = plan_for(Transform::kTile, 2048, 300, 300, kJac);
  EXPECT_TRUE(p.tiled);
  EXPECT_EQ(p.tile.ti, p.tile.tj);
  EXPECT_EQ(p.dip, 300);
}

TEST(Plan, Euc3dUnpadded) {
  const TilingPlan p = plan_for(Transform::kEuc3d, 2048, 200, 200, kJac);
  EXPECT_TRUE(p.tiled);
  EXPECT_EQ(p.tile, (IterTile{22, 13}));
  EXPECT_EQ(p.dip, 200);
}

TEST(Plan, GcdPadPadsAndTiles) {
  const TilingPlan p = plan_for(Transform::kGcdPad, 2048, 300, 300, kJac);
  EXPECT_TRUE(p.tiled);
  EXPECT_EQ(p.tile, (IterTile{30, 14}));
  EXPECT_EQ(p.dip, 352);  // odd multiple of 32 >= 300
  EXPECT_EQ(p.djp, 304);  // odd multiple of 16 >= 300
}

TEST(Plan, GcdPadNTPadsOnly) {
  const TilingPlan p = plan_for(Transform::kGcdPadNT, 2048, 300, 300, kJac);
  EXPECT_FALSE(p.tiled);
  EXPECT_EQ(p.dip, 352);
  EXPECT_EQ(p.djp, 304);
}

TEST(Plan, PadPlansAreConflictFree) {
  for (long n : {200L, 300L, 341L, 400L}) {
    const TilingPlan p = plan_for(Transform::kPad, 2048, n, n, kJac);
    ASSERT_TRUE(p.tiled);
    EXPECT_TRUE(is_conflict_free(2048, p.dip, p.djp, p.tile.ti + kJac.trim_i,
                                 p.tile.tj + kJac.trim_j, kJac.atd))
        << "n=" << n;
  }
}

TEST(Plan, AllTransformsProduceValidDims) {
  for (Transform tr : all_transforms()) {
    for (long n : {200L, 257L, 341L, 400L}) {
      const TilingPlan p = plan_for(tr, 2048, n, n, kJac);
      EXPECT_GE(p.dip, n) << transform_name(tr);
      EXPECT_GE(p.djp, n) << transform_name(tr);
      if (p.tiled) {
        EXPECT_GT(p.tile.ti, 0) << transform_name(tr);
        EXPECT_GT(p.tile.tj, 0) << transform_name(tr);
      }
    }
  }
}

TEST(Plan, TransformNames) {
  EXPECT_EQ(transform_name(Transform::kOrig), "Orig");
  EXPECT_EQ(transform_name(Transform::kGcdPadNT), "GcdPadNT");
  EXPECT_EQ(all_transforms().size(), 6u);
}

using rt::guard::Status;

TEST(PlanChecked, MatchesUncheckedOnValidInputs) {
  for (Transform tr : all_transforms()) {
    for (long n : {200L, 300L, 341L}) {
      const PlanReport rep = plan_for_checked(tr, 2048, n, n, kJac, 30);
      EXPECT_EQ(rep.status, Status::kOk) << transform_name(tr) << " n=" << n
                                         << ": " << rep.detail;
      const TilingPlan p = plan_for(tr, 2048, n, n, kJac);
      EXPECT_EQ(rep.plan.tiled, p.tiled) << transform_name(tr);
      EXPECT_EQ(rep.plan.dip, p.dip) << transform_name(tr);
      EXPECT_EQ(rep.plan.djp, p.djp) << transform_name(tr);
      if (p.tiled) EXPECT_EQ(rep.plan.tile, p.tile) << transform_name(tr);
    }
  }
}

TEST(PlanChecked, RejectsNonPositiveCacheSize) {
  for (Transform tr : {Transform::kTile, Transform::kEuc3d,
                       Transform::kGcdPad, Transform::kPad}) {
    const PlanReport rep = plan_for_checked(tr, 0, 300, 300, kJac);
    EXPECT_EQ(rep.status, Status::kInvalidArgument) << transform_name(tr);
    EXPECT_FALSE(rep.plan.tiled);  // fallback plan is usable
    EXPECT_EQ(rep.plan.dip, 300);
    EXPECT_FALSE(rep.detail.empty());
  }
}

TEST(PlanChecked, CacheSmallerThanStencilDepthIsInfeasible) {
  // cs = 1 is a valid (positive) cache, but cannot hold the stencil's
  // ATD = 3 planes of even one element each.
  const PlanReport rep = plan_for_checked(Transform::kTile, 1, 300, 300, kJac);
  EXPECT_EQ(rep.status, Status::kInfeasible);
  EXPECT_FALSE(rep.plan.tiled);
}

TEST(PlanChecked, RejectsDimensionsAtOrBelowHalo) {
  // trim_i = trim_j = 2 for Jacobi: a 2-wide dimension has no interior.
  for (Transform tr : all_transforms()) {
    const PlanReport rep = plan_for_checked(tr, 2048, 2, 300, kJac);
    EXPECT_EQ(rep.status, Status::kInvalidArgument) << transform_name(tr);
  }
}

TEST(PlanChecked, GcdFamilyRejectsNonPow2Cache) {
  // The unchecked gcd_pad throws on a non-power-of-two cache; the checked
  // planner reports it as a typed reason with the untiled fallback plan.
  for (Transform tr :
       {Transform::kGcdPad, Transform::kPad, Transform::kGcdPadNT}) {
    const PlanReport rep = plan_for_checked(tr, 1000, 300, 300, kJac);
    EXPECT_EQ(rep.status, Status::kInvalidArgument) << transform_name(tr);
    EXPECT_FALSE(rep.plan.tiled) << transform_name(tr);
    EXPECT_EQ(rep.plan.dip, 300) << transform_name(tr);  // unpadded fallback
  }
}

TEST(PlanChecked, Euc3dFallsBackWhenPlaneOffsetsCoincide) {
  // DI * DJ = 64 is 0 mod cs = 16: every plane maps to the same offsets, so
  // no depth-3 tile exists and Euc3D runs untiled — recorded, not silent.
  const PlanReport rep = plan_for_checked(Transform::kEuc3d, 16, 8, 8, kJac);
  EXPECT_EQ(rep.status, Status::kFellBackUntiled);
  EXPECT_FALSE(rep.plan.tiled);
  EXPECT_EQ(rep.plan.dip, 8);
}

TEST(PlanChecked, TileFallsBackWhenSquareTileTrimsAway) {
  // cs = 3 holds exactly one element per plane: the 1x1 array tile trims to
  // nothing against the 2-point halo.
  const PlanReport rep = plan_for_checked(Transform::kTile, 3, 300, 300, kJac);
  EXPECT_EQ(rep.status, Status::kFellBackUntiled);
  EXPECT_FALSE(rep.plan.tiled);
}

TEST(PlanChecked, OverflowingAllocationIsReported) {
  // 3e9 * 3e9 fits a long, but * 30 planes does not.
  const long big = 3'000'000'000L;
  const PlanReport rep =
      plan_for_checked(Transform::kOrig, 2048, big, big, kJac, 30);
  EXPECT_EQ(rep.status, Status::kOverflow);
  // And a plane stride that overflows on its own, without n3.
  const long huge = 4'000'000'000L;
  EXPECT_EQ(plan_for_checked(Transform::kOrig, 2048, huge, huge, kJac).status,
            Status::kOverflow);
}

TEST(PlanChecked, CheckedSearchPrimitivesReportTypedReasons) {
  EXPECT_EQ(euc3d_checked(0, 300, 300, kJac).status(),
            Status::kInvalidArgument);
  EXPECT_EQ(euc3d_checked(16, 8, 8, kJac).status(), Status::kInfeasible);
  const auto e = euc3d_checked(2048, 200, 200, kJac);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().tile, (IterTile{22, 13}));

  EXPECT_EQ(gcd_pad_checked(1000, 300, 300, kJac).status(),
            Status::kInvalidArgument);
  const auto g = gcd_pad_checked(2048, 300, 300, kJac);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().dip, 352);

  EXPECT_EQ(pad_checked(1000, 300, 300, kJac).status(),
            Status::kInvalidArgument);
  EXPECT_TRUE(pad_checked(2048, 300, 300, kJac).ok());
}

}  // namespace
}  // namespace rt::core
