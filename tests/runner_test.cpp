// Integration tests for the bench runner: plans are applied, simulation
// statistics are plausible, and the paper's qualitative results hold at
// a few spot sizes (tiling+padding reduces L1 misses at sizes where plane
// reuse is lost).

#include <gtest/gtest.h>

#include "rt/bench/runner.hpp"

namespace rt::bench {
namespace {

using rt::core::Transform;
using rt::kernels::KernelId;

RunOptions fast_opts() {
  RunOptions o;
  o.time_steps = 1;
  o.k_dim = 12;
  return o;
}

TEST(Runner, OrigJacobiProducesStats) {
  const RunResult r = run_kernel(KernelId::kJacobi, Transform::kOrig, 64,
                                 fast_opts());
  EXPECT_FALSE(r.plan.tiled);
  EXPECT_GT(r.sim_accesses, 0u);
  EXPECT_GT(r.sim_mflops, 0.0);
  EXPECT_GE(r.l1_miss_pct, 0.0);
  EXPECT_LE(r.l1_miss_pct, 100.0);
  // 9 accesses per interior point per step (7 stencil + 2 copy).
  EXPECT_EQ(r.sim_accesses, 9u * 62 * 62 * 10);
}

TEST(Runner, PlansAreAppliedPerTransform) {
  for (Transform tr : rt::core::all_transforms()) {
    const RunResult r =
        run_kernel(KernelId::kJacobi, tr, 200, fast_opts());
    const bool should_tile = tr != Transform::kOrig &&
                             tr != Transform::kGcdPadNT;
    EXPECT_EQ(r.plan.tiled, should_tile) << rt::core::transform_name(tr);
    const bool should_pad =
        tr == Transform::kGcdPad || tr == Transform::kPad ||
        tr == Transform::kGcdPadNT;
    EXPECT_EQ(r.plan.dip > 200, should_pad) << rt::core::transform_name(tr);
  }
}

TEST(Runner, MemElemsReflectPadding) {
  const RunResult orig =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 200, fast_opts());
  const RunResult gcd =
      run_kernel(KernelId::kJacobi, Transform::kGcdPad, 200, fast_opts());
  EXPECT_GT(gcd.mem_elems, orig.mem_elems);
}

TEST(Runner, GcdPadReducesJacobiL1MissesAtLargeN) {
  RunOptions o = fast_opts();
  o.k_dim = 30;
  const RunResult orig =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 300, o);
  const RunResult gcd =
      run_kernel(KernelId::kJacobi, Transform::kGcdPad, 300, o);
  EXPECT_LT(gcd.l1_miss_pct, orig.l1_miss_pct);
  EXPECT_GT(gcd.sim_mflops, orig.sim_mflops);
}

TEST(Runner, HostTimingWorks) {
  RunOptions o = fast_opts();
  o.simulate = false;
  o.time_host = true;
  o.min_host_seconds = 0.01;
  const RunResult r = run_kernel(KernelId::kResid, Transform::kPad, 64, o);
  EXPECT_GT(r.host_mflops, 0.0);
  EXPECT_EQ(r.sim_accesses, 0u);
}

TEST(Runner, Jacobi2dMissRatesFlatInN) {
  // The 2D motivation: miss rate should be essentially identical at 200
  // and 600 (both << 1024-column L1 capacity for two columns).
  RunOptions o = fast_opts();
  const MissRates a = run_jacobi2d_missrates(200, o);
  const MissRates b = run_jacobi2d_missrates(600, o);
  EXPECT_NEAR(a.l1_pct, b.l1_pct, 3.0);
}

TEST(Runner, Jacobi3dLosesReuseAtLargeN) {
  // 3D motivation: at N=300 two planes no longer fit in L1, so the miss
  // rate is clearly higher than at N=40 (where 2 planes ~ 3200 elems still
  // exceed L1 but conflicts are mild)... compare against small N=24
  // (2 planes = 1152 elems fit in the 2048-element L1).
  RunOptions o = fast_opts();
  const MissRates small = run_jacobi3d_missrates(24, 12, o);
  const MissRates large = run_jacobi3d_missrates(300, 12, o);
  EXPECT_GT(large.l1_pct, small.l1_pct + 5.0);
}

TEST(Runner, RejectsTinyN) {
  EXPECT_THROW(run_kernel(KernelId::kJacobi, Transform::kOrig, 2, fast_opts()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rt::bench
