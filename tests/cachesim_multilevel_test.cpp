// MultiLevelCache tests: N-level propagation, equivalence with the 2-level
// CacheHierarchy on identical configs, and a TLB+L1+L2 combined stack.

#include <gtest/gtest.h>

#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/multilevel.hpp"
#include "rt/kernels/jacobi3d.hpp"

namespace rt::cachesim {
namespace {

TEST(MultiLevel, SingleLevelBehavesLikeCache) {
  MultiLevelCache m({CacheConfig{1024, 32, 1, true, true}});
  Cache c(CacheConfig{1024, 32, 1, true, true});
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t addr = static_cast<std::uint64_t>(i * 37 % 90) * 32;
    m.access(addr, i % 4 == 0);
    c.access(addr, i % 4 == 0);
  }
  EXPECT_EQ(m.level(0).stats().misses, c.stats().misses);
  EXPECT_EQ(m.mem_lines_fetched(), c.stats().misses);
}

TEST(MultiLevel, MatchesTwoLevelHierarchyOnReads) {
  // For read-only traces the 2-level CacheHierarchy and MultiLevelCache
  // must agree exactly.
  MultiLevelCache m({CacheConfig::ultrasparc2_l1(),
                     CacheConfig::ultrasparc2_l2()});
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = static_cast<std::uint64_t>((i * 7919) % 100000) * 8;
    m.read(addr);
    h.read(addr);
  }
  EXPECT_EQ(m.level(0).stats().misses, h.stats().l1.misses);
  EXPECT_EQ(m.level(1).stats().misses, h.stats().l2.misses);
  EXPECT_EQ(m.level(1).stats().accesses, h.stats().l2.accesses);
}

TEST(MultiLevel, ThreeLevelStack) {
  // TLB-as-L0 (page granularity) + L1 + L2: every access probes the TLB;
  // only L1 misses reach L2.  (The TLB is modelled as level 0 here purely
  // to exercise depth-3 propagation — a real TLB is parallel, which the
  // dedicated TLB bench models by running it as its own hierarchy.)
  MultiLevelCache m({CacheConfig{64 * 8192, 8192, 0, true, false},
                     CacheConfig::ultrasparc2_l1(),
                     CacheConfig::ultrasparc2_l2()});
  EXPECT_EQ(m.depth(), 3u);
  m.read(0);  // cold: misses all three levels
  EXPECT_EQ(m.level(0).stats().misses, 1u);
  EXPECT_EQ(m.level(1).stats().accesses, 1u);
  EXPECT_EQ(m.level(2).stats().accesses, 1u);
  EXPECT_EQ(m.mem_lines_fetched(), 1u);
  // Second touch of the same page: level-0 (TLB) hit stops the descent.
  m.read(8);
  EXPECT_EQ(m.level(0).stats().accesses, 2u);
  EXPECT_EQ(m.level(1).stats().accesses, 1u)
      << "TLB hit path stops at level 0 in this serial model";
}

TEST(MultiLevel, TracedAccessorDrivesStack) {
  rt::array::Array3D<double> a(8, 8, 8);
  MultiLevelCache m({CacheConfig::ultrasparc2_l1(),
                     CacheConfig::ultrasparc2_l2()});
  TracedArrayML<double, MultiLevelCache> t(a, 0, m);
  t.store(1, 1, 1, 2.0);
  EXPECT_EQ(t.load(1, 1, 1), 2.0);
  EXPECT_EQ(m.level(0).stats().accesses, 2u);
}

TEST(MultiLevel, RejectsEmpty) {
  EXPECT_THROW(MultiLevelCache m({}), std::invalid_argument);
}

TEST(MultiLevel, FlushAndReset) {
  MultiLevelCache m({CacheConfig{1024, 32, 1, true, true}});
  m.read(0);
  m.flush();
  m.read(0);
  EXPECT_EQ(m.level(0).stats().misses, 2u);
  m.reset_stats();
  EXPECT_EQ(m.level(0).stats().accesses, 0u);
  EXPECT_EQ(m.mem_lines_fetched(), 0u);
}

}  // namespace
}  // namespace rt::cachesim
