// Trace record/replay: replaying a recorded reference stream must produce
// exactly the statistics of direct traced execution, for any cache config.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rt/cachesim/trace.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/resid.hpp"

namespace rt::cachesim {
namespace {

using rt::array::Array3D;

Array3D<double> grid(long n, long kd, double s) {
  Array3D<double> a(n, n, kd);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) a(i, j, k) = std::sin(s + i + j + k);
  return a;
}

TEST(Trace, PackRoundTrip) {
  TraceBuffer t;
  t.append(0xABCDE0, true);
  t.append(8, false);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.addr(0), 0xABCDE0u);
  EXPECT_TRUE(t.is_write(0));
  EXPECT_EQ(t.addr(1), 8u);
  EXPECT_FALSE(t.is_write(1));
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(Trace, ReplayMatchesDirectSimulation) {
  const long n = 40, kd = 12;
  // Direct traced run.
  Array3D<double> a1(n, n, kd), b1 = grid(n, kd, 0.2);
  CacheHierarchy h1 = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> ta(a1, 0, h1), tb(b1, 1 << 22, h1);
  rt::kernels::jacobi3d(ta, tb, 1.0 / 6.0);

  // Recorded run + replay.
  Array3D<double> a2(n, n, kd), b2 = grid(n, kd, 0.2);
  TraceBuffer buf;
  RecordingArray3D<double> ra(a2, 0, buf), rb(b2, 1 << 22, buf);
  rt::kernels::jacobi3d(ra, rb, 1.0 / 6.0);
  CacheHierarchy h2 = CacheHierarchy::ultrasparc2();
  buf.replay_into(h2);

  EXPECT_EQ(h1.stats().l1.accesses, h2.stats().l1.accesses);
  EXPECT_EQ(h1.stats().l1.misses, h2.stats().l1.misses);
  EXPECT_EQ(h1.stats().l1.write_misses, h2.stats().l1.write_misses);
  EXPECT_EQ(h1.stats().l2.misses, h2.stats().l2.misses);
  // The recording run computed the same values too.
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i) ASSERT_EQ(a1(i, j, k), a2(i, j, k));
}

TEST(Trace, OneRecordingManyConfigs) {
  const long n = 32, kd = 10;
  Array3D<double> r(n, n, kd), v = grid(n, kd, 0.1), u = grid(n, kd, 0.4);
  TraceBuffer buf;
  RecordingArray3D<double> rr(r, 0, buf), rv(v, 1 << 22, buf),
      ru(u, 2 << 22, buf);
  rt::kernels::resid(rr, rv, ru, rt::kernels::nas_mg_a());
  ASSERT_EQ(buf.size(), 29u * (n - 2) * (n - 2) * (kd - 2));

  // Compulsory lower bound: distinct 32B lines among *read* references
  // (writes never allocate in this config).
  std::set<std::uint64_t> lines;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (!buf.is_write(i)) lines.insert(buf.addr(i) / 32);
  }
  for (std::uint32_t ways : {1u, 2u, 4u, 8u}) {
    Cache c(CacheConfig{16 * 1024, 32, ways, false, false});
    buf.replay_into(c);
    // (No monotonicity in ways: fixed-capacity set partitioning is not
    // LRU-stack inclusive.  But hard bounds must hold, and replays must
    // be deterministic.)
    EXPECT_GE(c.stats().read_misses, lines.size()) << ways;
    EXPECT_LE(c.stats().misses, c.stats().accesses) << ways;
    Cache c2(CacheConfig{16 * 1024, 32, ways, false, false});
    buf.replay_into(c2);
    EXPECT_EQ(c.stats().misses, c2.stats().misses) << ways;
  }
}

TEST(Trace, ReplayIntoSingleCacheMatchesHierarchyL1) {
  TraceBuffer buf;
  for (int i = 0; i < 1000; ++i) {
    buf.append(static_cast<std::uint64_t>(i * 104729 % 40000) * 8, i % 5 == 0);
  }
  Cache c(CacheConfig::ultrasparc2_l1());
  buf.replay_into(c);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  buf.replay_into(h);
  EXPECT_EQ(c.stats().misses, h.stats().l1.misses);
  EXPECT_EQ(c.stats().accesses, h.stats().l1.accesses);
}

}  // namespace
}  // namespace rt::cachesim
