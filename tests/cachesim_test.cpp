// Cache simulator tests: mapping, replacement, write policies, hierarchy
// propagation, and the perf model.

#include <gtest/gtest.h>

#include "rt/cachesim/cache.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/cachesim/traced_array.hpp"

namespace rt::cachesim {
namespace {

CacheConfig small_direct() {
  return CacheConfig{1024, 32, 1, true, true};  // 32 lines
}

TEST(CacheConfig, Validation) {
  EXPECT_TRUE(CacheConfig::ultrasparc2_l1().valid());
  EXPECT_TRUE(CacheConfig::ultrasparc2_l2().valid());
  EXPECT_FALSE((CacheConfig{1000, 32, 1, false, false}).valid());  // not pow2
  EXPECT_FALSE((CacheConfig{1024, 48, 1, false, false}).valid());
  EXPECT_FALSE((CacheConfig{32, 64, 1, false, false}).valid());
  EXPECT_TRUE((CacheConfig{1024, 32, 0, false, false}).valid());  // fully assoc
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_direct());
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(31, false).hit);   // same line
  EXPECT_FALSE(c.access(32, false).hit);  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict) {
  Cache c(small_direct());
  // Addresses 0 and 1024 map to the same set in a 1024-byte cache.
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(1024, false).hit);
  EXPECT_FALSE(c.access(0, false).hit);  // evicted by 1024
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(Cache, TwoWayAvoidsPingPong) {
  CacheConfig cfg{1024, 32, 2, true, true};
  Cache c(cfg);
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(1024, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);  // both fit in the 2-way set
  EXPECT_TRUE(c.access(1024, false).hit);
}

TEST(Cache, LruEvictsLeastRecent) {
  CacheConfig cfg{1024, 32, 2, true, true};
  Cache c(cfg);
  c.access(0, false);     // A
  c.access(1024, false);  // B
  c.access(0, false);     // touch A -> B is LRU
  c.access(2048, false);  // C evicts B
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(1024, false).hit);
}

TEST(Cache, FullyAssociativeUsesWholeCapacity) {
  CacheConfig cfg{1024, 32, 0, true, true};  // 32 lines, fully assoc
  Cache c(cfg);
  for (int i = 0; i < 32; ++i) c.access(static_cast<std::uint64_t>(i) * 32, false);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(c.access(static_cast<std::uint64_t>(i) * 32, false).hit) << i;
  }
  c.access(32 * 32, false);             // evicts line 0 (LRU)
  EXPECT_FALSE(c.access(0, false).hit);  // gone
}

TEST(Cache, WriteAroundDoesNotAllocate) {
  CacheConfig cfg = CacheConfig::ultrasparc2_l1();  // no write-allocate
  Cache c(cfg);
  EXPECT_FALSE(c.access(0, true).hit);   // write miss, not installed
  EXPECT_FALSE(c.access(0, false).hit);  // still a read miss
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_EQ(c.stats().write_misses, 1u);
}

TEST(Cache, WriteAllocateInstalls) {
  Cache c(small_direct());
  EXPECT_FALSE(c.access(0, true).hit);
  EXPECT_TRUE(c.access(0, false).hit);
}

TEST(Cache, WriteBackMarksDirtyAndWritesBack) {
  Cache c(small_direct());
  c.access(0, true);                      // dirty line
  const auto r = c.access(1024, false);   // evicts dirty line
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughNeverDirty) {
  CacheConfig cfg{1024, 32, 1, true, false};  // allocate, write-through
  Cache c(cfg);
  c.access(0, true);
  const auto r = c.access(1024, false);
  EXPECT_FALSE(r.evicted_dirty);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, FlushInvalidatesKeepsStats) {
  Cache c(small_direct());
  c.access(0, false);
  c.flush();
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, ContainsIsSideEffectFree) {
  Cache c(small_direct());
  EXPECT_FALSE(c.contains(0));
  c.access(0, false);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(31));
  EXPECT_FALSE(c.contains(32));
  EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Hierarchy, L1MissGoesToL2) {
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  h.read(0);
  EXPECT_EQ(h.stats().l1.accesses, 1u);
  EXPECT_EQ(h.stats().l2.accesses, 1u);
  h.read(0);  // L1 hit: L2 untouched
  EXPECT_EQ(h.stats().l2.accesses, 1u);
}

TEST(Hierarchy, L2CatchesL1Conflicts) {
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  // Two addresses conflicting in 16K L1 but not in 2M L2.
  h.read(0);
  h.read(16 * 1024);
  h.read(0);  // L1 conflict miss, L2 hit
  EXPECT_EQ(h.stats().l1.misses, 3u);
  EXPECT_EQ(h.stats().l2.misses, 2u);
  EXPECT_EQ(h.mem_lines_fetched(), 2u);
}

TEST(Hierarchy, WriteAroundL1StillReachesL2) {
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  h.write(0);  // L1 write miss (no allocate) -> L2 write miss (allocates)
  EXPECT_EQ(h.stats().l1.write_misses, 1u);
  EXPECT_EQ(h.stats().l2.write_misses, 1u);
  h.read(0);  // L1 read miss, L2 hit
  EXPECT_EQ(h.stats().l2.misses, 1u);
}

TEST(PerfModel, CyclesComposition) {
  HierarchyStats s;
  s.l1.accesses = 100;
  s.l1.misses = 10;
  s.l2.accesses = 10;
  s.l2.misses = 2;
  s.flops = 600;
  PerfModel m(PerfModelParams{1.0, 8.0, 60.0, 100.0});
  EXPECT_DOUBLE_EQ(m.cycles(s), 100.0 + 80.0 + 120.0);
  EXPECT_DOUBLE_EQ(m.seconds(s), 300.0 / 100e6);
  EXPECT_DOUBLE_EQ(m.mflops(s), 600.0 / (300.0 / 100e6) / 1e6);
}

TEST(PerfModel, FewerMissesFaster) {
  HierarchyStats a, b;
  a.l1.accesses = b.l1.accesses = 1000;
  a.flops = b.flops = 1000;
  a.l1.misses = 300;
  b.l1.misses = 30;
  PerfModel m;
  EXPECT_GT(m.mflops(b), m.mflops(a));
}

TEST(TracedArray, FeedsHierarchyAndComputes) {
  rt::array::Array3D<double> a(4, 4, 4);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> t(a, 0, h);
  t.store(1, 1, 1, 5.0);
  EXPECT_EQ(t.load(1, 1, 1), 5.0);
  EXPECT_EQ(a(1, 1, 1), 5.0);
  EXPECT_EQ(h.stats().l1.accesses, 2u);
  EXPECT_EQ(h.stats().l1.write_accesses, 1u);
}

TEST(TracedArray, AddressesUseBaseAndLayout) {
  rt::array::Array3D<double> a(rt::array::Dims3::padded(4, 4, 4, 8, 8));
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> t(a, 1024, h);
  EXPECT_EQ(t.addr(0, 0, 0), 1024u);
  EXPECT_EQ(t.addr(1, 0, 0), 1032u);
  EXPECT_EQ(t.addr(0, 1, 0), 1024u + 64u);
  EXPECT_EQ(t.addr(0, 0, 1), 1024u + 512u);
}

}  // namespace
}  // namespace rt::cachesim
