// Tests for rt::obs: hardware-counter open/read/fallback paths (including
// the forced-unavailable mode CI relies on), the JSON metrics emitter
// (escaping + golden-file byte stability + file round-trip), and phase
// timers driven through ThreadPool::parallel_for edge cases — the same
// counter-in-worker pattern the TSan gate exercises.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unistd.h>
#include <sstream>
#include <string>
#include <vector>

#include "rt/bench/runner.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/obs/perf_counters.hpp"
#include "rt/obs/phase_timer.hpp"
#include "rt/par/thread_pool.hpp"

namespace rt::obs {
namespace {

// --- PerfCounters ---

TEST(PerfCounters, ForcedUnavailableIsInert) {
  PerfCounters::force_unavailable(true);
  EXPECT_FALSE(PerfCounters::probe());
  PerfCounters pc;
  EXPECT_FALSE(pc.available());
  pc.start();  // all no-ops; must not crash
  pc.stop();
  const CounterReadings r = pc.read();
  EXPECT_FALSE(r.any_valid());
  for (int i = 0; i < kNumCounters; ++i) {
    EXPECT_FALSE(r.counts[static_cast<std::size_t>(i)].valid);
    EXPECT_EQ(r.counts[static_cast<std::size_t>(i)].value, 0u);
  }
  EXPECT_NE(describe_counter_support().find("disabled"), std::string::npos);
  PerfCounters::force_unavailable(false);
}

TEST(PerfCounters, ForcedUnavailableAffectsModeResolution) {
  PerfCounters::force_unavailable(true);
  EXPECT_FALSE(counters_enabled(CounterMode::kAuto));
  EXPECT_FALSE(counters_enabled(CounterMode::kOff));
  // kOn still *tries* (and then reports unavailable) — policy is "always
  // attempt", capability is per-group.
  EXPECT_TRUE(counters_enabled(CounterMode::kOn));
  PerfCounters pc;
  EXPECT_FALSE(pc.available());
  PerfCounters::force_unavailable(false);
}

TEST(PerfCounters, OpenReadWhenHostAllows) {
  PerfCounters pc;
  if (!pc.available()) {
    GTEST_SKIP() << describe_counter_support();
  }
  pc.start();
  // Some measurable work.
  volatile double acc = 0;
  for (int i = 0; i < 200000; ++i) acc = acc + 1.0 / (1 + i);
  pc.stop();
  const CounterReadings r = pc.read();
  EXPECT_TRUE(r.any_valid());
  const CounterValue& cycles = r[CounterKind::kCycles];
  if (cycles.valid) {
    EXPECT_GT(cycles.value, 0u);
  }
  EXPECT_GE(r.time_enabled_ns, r.time_running_ns);
}

TEST(PerfCounters, ReadWithoutStartIsZeroOrInvalid) {
  PerfCounters pc;
  const CounterReadings r = pc.read();
  // Never started: a valid slot must read ~0 (opened disabled), an
  // unavailable group reads all-invalid.
  for (int i = 0; i < kNumCounters; ++i) {
    const CounterValue& c = r.counts[static_cast<std::size_t>(i)];
    if (c.valid) {
      EXPECT_EQ(c.value, 0u);
    }
  }
}

TEST(PerfCounters, MoveTransfersOwnership) {
  PerfCounters a;
  const bool was = a.available();
  PerfCounters b(std::move(a));
  EXPECT_EQ(b.available(), was);
  EXPECT_FALSE(a.available());  // moved-from is inert
  a = std::move(b);
  EXPECT_EQ(a.available(), was);
  a.start();
  a.stop();
}

TEST(PerfCounters, ProbeMatchesConstruction) {
  // probe() and a constructed group must agree on this host (the group
  // opens at least the cycles event whenever the probe's open succeeds).
  PerfCounters pc;
  EXPECT_EQ(pc.available(), PerfCounters::probe());
}

TEST(PerfCounters, NamesAndModes) {
  EXPECT_STREQ(counter_name(CounterKind::kCycles), "cycles");
  EXPECT_STREQ(counter_name(CounterKind::kL1dLoadMisses), "l1d_load_misses");
  EXPECT_STREQ(counter_name(CounterKind::kDtlbLoadMisses),
               "dtlb_load_misses");
  EXPECT_STREQ(counter_mode_name(CounterMode::kAuto), "auto");
  CounterMode m = CounterMode::kOff;
  EXPECT_TRUE(parse_counter_mode("on", &m));
  EXPECT_EQ(m, CounterMode::kOn);
  EXPECT_TRUE(parse_counter_mode("off", &m));
  EXPECT_EQ(m, CounterMode::kOff);
  EXPECT_TRUE(parse_counter_mode("auto", &m));
  EXPECT_EQ(m, CounterMode::kAuto);
  EXPECT_FALSE(parse_counter_mode("yes", &m));
  EXPECT_FALSE(parse_counter_mode("", &m));
  EXPECT_FALSE(counters_enabled(CounterMode::kOff));
}

// --- JSON emitter ---

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("nl\ntab\tcr\r"), "nl\\ntab\\tcr\\r");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("utf8 \xc3\xa9 ok"), "utf8 \xc3\xa9 ok");
}

TEST(Json, ScalarDumps) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-7L).dump(), "-7");
  EXPECT_EQ(JsonValue("hi \"there\"").dump(), "\"hi \\\"there\\\"\"");
}

TEST(Json, DoubleFormattingRoundTripsAndMarksType) {
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
  EXPECT_EQ(JsonValue(1.0).dump(), "1.0");          // distinct from int 1
  EXPECT_EQ(JsonValue(3873.326).dump(), "3873.326");
  EXPECT_EQ(JsonValue(0.0).dump(), "0.0");
  const double nan = std::nan("");
  EXPECT_EQ(JsonValue(nan).dump(), "null");  // JSON has no NaN
  // Shortest round-trip: parse back and compare.
  const double v = 0.1 + 0.2;
  const std::string s = JsonValue::format_double(v);
  EXPECT_EQ(std::stod(s), v);
}

TEST(Json, ObjectKeepsInsertionOrderAndReplaces) {
  JsonValue o = JsonValue::object();
  o.set("z", 1).set("a", 2).set("z", 3);
  EXPECT_EQ(o.dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(o.find("a"), nullptr);
  EXPECT_EQ(o.find("a")->dump(), "2");
  EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(Json, NestedPrettyPrint) {
  JsonValue o = JsonValue::object();
  JsonValue arr = JsonValue::array();
  arr.push_back(1).push_back("x");
  o.set("list", std::move(arr)).set("empty", JsonValue::array());
  EXPECT_EQ(o.dump(2),
            "{\n  \"list\": [\n    1,\n    \"x\"\n  ],\n  \"empty\": []\n}");
  EXPECT_EQ(o.dump(), "{\"list\":[1,\"x\"],\"empty\":[]}");
}

// --- JSON parser (the plan store's read path) ---

TEST(JsonParse, RoundTripsEveryKindThroughDump) {
  const std::string text =
      "{\"s\":\"a\\\"b\",\"i\":-42,\"d\":0.5,\"t\":true,\"f\":false,"
      "\"nul\":null,\"arr\":[1,2.5,\"x\"],\"obj\":{\"k\":1}}";
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(text, &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "a\"b");
  EXPECT_TRUE(v.find("i")->is_number());
  EXPECT_EQ(v.find("i")->as_int(), -42);
  EXPECT_DOUBLE_EQ(v.find("d")->as_double(), 0.5);
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_TRUE(v.find("f")->is_bool());
  EXPECT_FALSE(v.find("f")->as_bool(true));
  EXPECT_TRUE(v.find("nul")->is_null());
  ASSERT_TRUE(v.find("arr")->is_array());
  EXPECT_EQ(v.find("arr")->size(), 3u);
  EXPECT_EQ(v.find("arr")->at(0)->as_int(), 1);
  EXPECT_EQ(v.find("arr")->at(3), nullptr);
  EXPECT_EQ(v.key_at(0), "s");
  // dump() -> json_parse -> dump() is a fixed point (both orderings kept).
  JsonValue again;
  ASSERT_TRUE(json_parse(v.dump(), &again, &err)) << err;
  EXPECT_EQ(again.dump(), v.dump());
  // Pretty-printed input parses to the same document.
  JsonValue pretty;
  ASSERT_TRUE(json_parse(v.dump(2), &pretty, &err)) << err;
  EXPECT_EQ(pretty.dump(), v.dump());
}

TEST(JsonParse, IntegerDoubleBoundaryAndEscapes) {
  JsonValue v;
  ASSERT_TRUE(json_parse("9007199254740993", &v));  // > 2^53: must stay int
  EXPECT_EQ(v.as_int(), 9007199254740993LL);
  ASSERT_TRUE(json_parse("1e3", &v));
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_double(), 1000.0);
  ASSERT_TRUE(json_parse("\"tab\\tnl\\n\\u0041\\u00e9\"", &v));
  EXPECT_EQ(v.as_string(), "tab\tnl\nA\xc3\xa9");
}

TEST(JsonParse, RejectsCorruptInputWithAByteOffset) {
  JsonValue v;
  std::string err;
  const char* bad[] = {
      "",                      // empty
      "{\"a\":1",              // truncated object
      "[1,2",                  // truncated array
      "\"unterminated",        // truncated string
      "{\"a\":1} trailing",    // trailing garbage
      "{'a':1}",               // wrong quotes
      "[1,]",                  // trailing comma
      "nul",                   // truncated keyword
      "\"bad\\q escape\"",     // unknown escape
      "\"ctrl \x01 char\"",    // raw control character in string
      "{\"a\" 1}",             // missing colon
  };
  for (const char* text : bad) {
    v = JsonValue(123);  // sentinel: *out must stay untouched on failure
    err.clear();
    EXPECT_FALSE(json_parse(text, &v, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
    EXPECT_EQ(v.as_int(), 123) << text;
  }
  EXPECT_FALSE(json_parse("{\"a\":1} x", &v, &err));
  EXPECT_NE(err.find("byte"), std::string::npos) << err;
}

TEST(JsonParse, RejectsNestingDeeperThan64Levels) {
  // The limit is on the depth counter (0 at top level, fails above 64),
  // so 65 nested arrays are the deepest accepted document.
  JsonValue v;
  std::string err;
  std::string ok(65, '[');
  ok += std::string(65, ']');
  EXPECT_TRUE(json_parse(ok, &v, &err)) << err;
  std::string deep(66, '[');
  deep += std::string(66, ']');
  EXPECT_FALSE(json_parse(deep, &v, &err));
  EXPECT_NE(err.find("deep"), std::string::npos) << err;
}

/// A fixed document covering every record shape the benches emit: a
/// serial-scalar record with hw available, a degraded PSINV-style record
/// with counters unavailable, an app-level record (plan cache + phases), a
/// temporal-blocking record, and an autotuned record.  Byte-compared
/// against the golden file so the schema cannot drift silently.
std::string golden_document() {
  MetricsWriter w;
  {
    JsonValue& r = w.add_record();
    r.set("kernel", "JACOBI")
        .set("n", 200)
        .set("transform", "GcdPad")
        .set("backend", "model")
        .set("tile", "34x34")
        .set("simd", "off")
        .set("simd_level", "scalar")
        .set("threads", 1)
        .set("threads_requested", 1)
        .set("degraded", false)
        .set("status", "ok")
        .set("plan_status", "ok")
        .set("mflops", 3873.326)
        .set("verify", JsonValue());  // --verify=off
    JsonValue sim = JsonValue::object();
    sim.set("l1_miss_pct", 6.25)
        .set("l2_miss_pct", 1.5)
        .set("mflops", 51.25)
        .set("accesses", 847728);
    r.set("sim", std::move(sim));
    JsonValue hw = JsonValue::object();
    hw.set("available", true)
        .set("iters", 12)
        .set("cycles", 123456789)
        .set("instructions", 98765432)
        .set("l1d_loads", 4000000)
        .set("l1d_load_misses", 250000)
        .set("llc_load_misses", 9000)
        .set("dtlb_load_misses", JsonValue());  // slot failed to open
    r.set("hw", std::move(hw));
  }
  {
    JsonValue& r = w.add_record();
    r.set("kernel", "PSINV")
        .set("n", 200)
        .set("transform", "Orig")
        .set("backend", "model")
        .set("tile", JsonValue())
        .set("simd", "auto")
        .set("simd_level", "scalar")
        .set("threads", 1)
        .set("threads_requested", 4)
        .set("degraded", true)
        .set("status", "nonfinite")
        .set("plan_status", "fell_back_untiled")
        .set("mflops", 1612.5);
    JsonValue verify = JsonValue::object();
    verify.set("mode", "post").set("nonfinite", 3);
    r.set("verify", std::move(verify));
    r.set("sim", JsonValue());
    JsonValue hw = JsonValue::object();
    hw.set("available", false).set("iters", 7);
    r.set("hw", std::move(hw));
  }
  {
    // App-level record (bench_mgrid / bench_sor_app shape): plan-cache
    // hit/miss counters and per-operator phase timings, built through the
    // same rt::bench helpers the benches use so the blocks cannot drift.
    JsonValue& r = w.add_record();
    r.set("kernel", "MGRID")
        .set("n", 130)
        .set("transform", "GcdPad")
        .set("threads", 4)
        .set("simd", "auto")
        .set("mflops", 2048.125);
    rt::core::PlanCacheStats pcs;
    pcs.hits = 5;
    pcs.misses = 1;
    pcs.pinned_hits = 2;
    pcs.evictions = 1;
    r.set("plan_cache", rt::bench::plan_cache_json(pcs));
    PhaseStats resid, psinv;
    resid.add(0.25);
    resid.add(0.75);
    psinv.add(0.5);
    r.set("phases",
          rt::bench::phases_json({{"resid", resid}, {"psinv", psinv}}));
  }
  {
    // Temporal-blocking record (bench_timeskew shape): the standard flat
    // fields plus the "temporal" block, built through rt::bench::
    // temporal_json so the executed-TemporalPlan schema cannot drift.
    JsonValue& r = w.add_record();
    r.set("kernel", "JACOBI")
        .set("n", 448)
        .set("transform", "Orig")
        .set("backend", "model")
        .set("tile", JsonValue())
        .set("simd", "auto")
        .set("simd_level", "avx2")
        .set("threads", 4)
        .set("threads_requested", 4)
        .set("degraded", false)
        .set("status", "ok")
        .set("plan_status", "ok")
        .set("mflops", 5120.5)
        .set("verify", JsonValue())
        .set("sim", JsonValue())
        .set("hw", JsonValue());
    rt::core::TemporalPlan tp;
    tp.mode = rt::core::TemporalMode::kDiamond;
    tp.tsteps = 4;
    tp.bk = 64;
    tp.tb = 4;
    tp.threads = 4;
    tp.team = 2;
    tp.stages = 56;
    tp.occupancy = 0.8754321;
    r.set("temporal", rt::bench::temporal_json(tp));
  }
  {
    // Autotuner record (bench_autotune_ablation shape): the "tune" block
    // is built through rt::bench::tune_json from a hand-assembled sweep
    // result, so the calibration-evidence schema cannot drift.
    JsonValue& r = w.add_record();
    r.set("kernel", "JACOBI")
        .set("n", 400)
        .set("transform", "GcdPad")
        .set("variant", "autotuned")
        .set("origin", "untiled")
        .set("store_status", "fresh")
        .set("mflops", 3010.75);
    rt::tune::TuneResult tr;
    tr.key.kernel = "JACOBI";
    tr.key.n = 400;
    tr.key.n3 = 30;
    tr.key.transform = rt::core::Transform::kGcdPad;
    tr.key.threads = 1;
    tr.candidates.resize(3);
    tr.candidates[0].origin = "model";
    tr.candidates[0].m.mflops = 1411.5;
    tr.candidates[1].origin = "untiled";
    tr.candidates[1].m.mflops = 3010.75;
    tr.candidates[2].origin = "pad+8";
    tr.candidates[2].m.status = rt::guard::Status::kTimeout;
    tr.winner = 1;
    tr.model = 0;
    tr.worst = 0;
    r.set("tune", rt::bench::tune_json(rt::tune::TuneMode::kOn, tr));
  }
  return w.dump();
}

TEST(MetricsWriter, GoldenFileByteExact) {
  const std::string path =
      std::string(OBS_TEST_GOLDEN_DIR) + "/metrics_schema.json";
  if (std::getenv("RT_OBS_WRITE_GOLDEN") != nullptr) {
    // Deliberate schema change: RT_OBS_WRITE_GOLDEN=1 ctest -R obs_test
    // regenerates the golden in the source tree.
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << path;
    out << golden_document();
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file: " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(golden_document(), ss.str())
      << "MetricsWriter output drifted from tests/golden/metrics_schema.json"
         " — update the golden only on a deliberate schema change";
}

TEST(MetricsWriter, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "rt_obs_metrics_test.json";
  std::remove(path.c_str());
  MetricsWriter w;
  w.add_record().set("k", "v\n\"quoted\"").set("x", 1.25);
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), w.dump());
  EXPECT_NE(ss.str().find("\\\"quoted\\\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsWriter, WriteFileFailsOnBadPath) {
  MetricsWriter w;
  w.add_record().set("a", 1);
  EXPECT_FALSE(w.write_file("/nonexistent-dir/nope/metrics.json"));
}

TEST(MetricsWriter, CheckedWriteReportsTypedOutcomes) {
  MetricsWriter w;
  w.add_record().set("a", 1);

  // Success: kOk, file content identical to dump().
  const std::string path = ::testing::TempDir() + "rt_obs_checked_test.json";
  std::remove(path.c_str());
  std::string why;
  EXPECT_EQ(w.write_file_checked(path, &why), rt::guard::Status::kOk) << why;
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), w.dump());
  std::remove(path.c_str());

  // Unopenable path: kInvalidArgument with a reason, not a silent false.
  EXPECT_EQ(w.write_file_checked("/nonexistent-dir/nope/m.json", &why),
            rt::guard::Status::kInvalidArgument);
  EXPECT_FALSE(why.empty());
}

TEST(MetricsWriter, CheckedWriteSurfacesShortWriteAsIoError) {
  // /dev/full accepts the open but fails every write with ENOSPC — the
  // canonical silent-short-write device.  Skip where it doesn't exist.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  MetricsWriter w;
  w.add_record().set("a", 1);
  std::string why;
  EXPECT_EQ(w.write_file_checked("/dev/full", &why),
            rt::guard::Status::kIoError);
  EXPECT_NE(why.find("No space"), std::string::npos) << why;
}

TEST(MetricsWriter, WriteAllFdReportsClosedPipeAsIoError) {
  // A reader that went away must surface as a typed kIoError (EPIPE), not
  // kill the process — the exact failure a serving socket write hits.
  ::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // no reader
  std::string why;
  EXPECT_EQ(write_all_fd(fds[1], "hello", &why), rt::guard::Status::kIoError);
  EXPECT_FALSE(why.empty());
  ::close(fds[1]);

  // And a healthy fd takes the full text, retrying partial writes.
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_EQ(write_all_fd(fds[1], "roundtrip", &why), rt::guard::Status::kOk);
  char buf[16] = {};
  EXPECT_EQ(::read(fds[0], buf, sizeof(buf)), 9);
  EXPECT_STREQ(buf, "roundtrip");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(MetricsWriter, RecordReferencesStayValidAcrossAppends) {
  MetricsWriter w;
  JsonValue& first = w.add_record();
  first.set("id", 1);
  for (int i = 2; i <= 40; ++i) w.add_record().set("id", i);
  first.set("late", true);  // must not have been invalidated
  EXPECT_EQ(w.num_records(), 40u);
  EXPECT_NE(w.dump().find("\"late\": true"), std::string::npos);
}

// --- Phase timers (incl. parallel_for edge cases) ---

TEST(PhaseTimer, AccumulatesMinMeanMax) {
  PhaseStats s;
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean_s(), 0.0);
  s.add(0.2);
  s.add(0.1);
  s.add(0.6);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.min_s, 0.1);
  EXPECT_DOUBLE_EQ(s.max_s, 0.6);
  EXPECT_NEAR(s.mean_s(), 0.3, 1e-12);
}

TEST(PhaseTimer, ScopedTimerRecordsOncePerScope) {
  PhaseStats s;
  {
    ScopedTimer t(s);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.total_s, 0.0);
  PhaseStats s2;
  {
    ScopedTimer t(s2);
    t.stop();
    t.stop();  // idempotent: second stop must not add a phase
  }
  EXPECT_EQ(s2.count, 1);
}

TEST(PhaseTimer, ParallelForCountZeroNeverRuns) {
  rt::par::ThreadPool pool(4);
  ConcurrentPhaseStats stats;
  std::atomic<long> calls{0};
  pool.parallel_for(0, [&](long) {
    ScopedTimer t(stats);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(stats.snapshot().count, 0);
}

TEST(PhaseTimer, ParallelForCountBelowThreadsTimesEachIndexOnce) {
  rt::par::ThreadPool pool(8);
  ConcurrentPhaseStats stats;
  const long count = 3;  // fewer work items than workers
  std::vector<std::atomic<int>> seen(count);
  pool.parallel_for(count, [&](long i) {
    ScopedTimer t(stats);
    seen[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (long i = 0; i < count; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
  const PhaseStats s = stats.snapshot();
  EXPECT_EQ(s.count, count);
  EXPECT_LE(s.min_s, s.max_s);
}

TEST(PhaseTimer, ConcurrentAddFromWorkersIsConsistent) {
  // The pattern the TSan gate checks: per-sweep ScopedTimers inside
  // pool workers all funnelling into one ConcurrentPhaseStats.
  rt::par::ThreadPool pool(4);
  ConcurrentPhaseStats stats;
  const long count = 500;
  pool.parallel_for(count, [&](long) {
    ScopedTimer t(stats);
    volatile double x = 1.0;
    for (int i = 0; i < 50; ++i) x = x * 1.0000001;
  });
  const PhaseStats s = stats.snapshot();
  EXPECT_EQ(s.count, count);
  EXPECT_GE(s.total_s, s.count * s.min_s - 1e-9);
  EXPECT_GE(s.max_s * s.count, s.total_s - 1e-9);
}

TEST(PhaseTimer, CountersInsideWorkersDegradeGracefully) {
  // PerfCounters constructed/read inside pool workers must be safe whether
  // or not the host exposes a PMU (each worker gets its own group).
  rt::par::ThreadPool pool(4);
  std::atomic<int> opened{0};
  pool.parallel_for(8, [&](long) {
    PerfCounters pc;
    pc.start();
    volatile int x = 0;
    for (int i = 0; i < 10000; ++i) x = x + i;
    pc.stop();
    const CounterReadings r = pc.read();
    if (pc.available()) {
      opened.fetch_add(1);
      EXPECT_TRUE(r.any_valid());
    } else {
      EXPECT_FALSE(r.any_valid());
    }
  });
  // No assertion on `opened`: availability is a host property; the test is
  // that every path is race- and crash-free (the TSan gate runs this too).
}

}  // namespace
}  // namespace rt::obs
