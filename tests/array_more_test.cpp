// Additional array-substrate tests: modular placement (inter-variable
// padding primitive), placement bookkeeping, and stats arithmetic.

#include <gtest/gtest.h>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"
#include "rt/cachesim/stats.hpp"

namespace rt::array {
namespace {

TEST(AddressSpaceMod, LandsOnRequestedResidue) {
  AddressSpace s(0, 8);
  const std::uint64_t mod = 16384;  // 2048 doubles
  const auto b0 = s.place_mod("u", 1000, 8, mod, 0);
  const auto b1 = s.place_mod("v", 1000, 8, mod, 4096);
  const auto b2 = s.place_mod("r", 1000, 8, mod, 8192);
  EXPECT_EQ(b0 % mod, 0u);
  EXPECT_EQ(b1 % mod, 4096u);
  EXPECT_EQ(b2 % mod, 8192u);
  EXPECT_LT(b0, b1);
  EXPECT_LT(b1, b2);
}

TEST(AddressSpaceMod, NoGapWhenAlreadyAligned) {
  AddressSpace s(0, 8);
  const auto b0 = s.place_mod("a", 2048, 8, 16384, 0);  // exactly one mod
  const auto b1 = s.place_mod("b", 10, 8, 16384, 0);
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(b1, 16384u);
}

TEST(AddressSpaceMod, WrapsForwardOnly) {
  AddressSpace s(100, 4);
  const auto b = s.place_mod("x", 4, 8, 64, 0);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, 100u);  // never moves backwards
}

TEST(AddressSpaceMod, MixedWithPlainPlace) {
  AddressSpace s(0, 64);
  s.place("a", 100, 8);
  const auto b = s.place_mod("b", 10, 8, 1024, 512);
  EXPECT_EQ(b % 1024, 512u);
  EXPECT_EQ(s.placements().size(), 2u);
  EXPECT_EQ(s.placements()[1].base_bytes, b);
}

TEST(LevelStats, AdditionAccumulates) {
  rt::cachesim::LevelStats a, b;
  a.accesses = 10;
  a.misses = 3;
  a.writebacks = 1;
  b.accesses = 5;
  b.misses = 2;
  b.read_misses = 2;
  a += b;
  EXPECT_EQ(a.accesses, 15u);
  EXPECT_EQ(a.misses, 5u);
  EXPECT_EQ(a.read_misses, 2u);
  EXPECT_EQ(a.writebacks, 1u);
}

TEST(LevelStats, MissRateEdgeCases) {
  rt::cachesim::LevelStats s;
  EXPECT_EQ(s.miss_rate(), 0.0);
  s.accesses = 4;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.25);
  s.reset();
  EXPECT_EQ(s.accesses, 0u);
}

TEST(HierarchyStats, GlobalL2Rate) {
  rt::cachesim::HierarchyStats h;
  EXPECT_EQ(h.l2_global_miss_rate(), 0.0);
  h.l1.accesses = 1000;
  h.l2.misses = 15;
  EXPECT_DOUBLE_EQ(h.l2_global_miss_rate(), 0.015);
}

TEST(Dims3, EqualityAndCopies) {
  const Dims3 a = Dims3::padded(3, 4, 5, 6, 7);
  Dims3 b = a;
  EXPECT_EQ(a, b);
  b.p1 = 8;
  EXPECT_NE(a, b);
}

TEST(Array3D, MoveSemantics) {
  Array3D<double> a(8, 8, 8, 1.5);
  const double* p = a.data();
  Array3D<double> b = std::move(a);
  EXPECT_EQ(b.data(), p);  // buffer moved, not copied
  EXPECT_EQ(b(7, 7, 7), 1.5);
}

}  // namespace
}  // namespace rt::array
