// Euc3D tests: the paper's Table 1 enumeration, the (22, 13) selection
// anchor (Section 3.3), and non-conflict properties validated with the
// brute-force checker across many array shapes.

#include <gtest/gtest.h>

#include "rt/core/conflict.hpp"
#include "rt/core/euc3d.hpp"

namespace rt::core {
namespace {

// The paper prints a subset of the frontier ("we omit some details"); our
// enumeration must contain every printed row, in order.
void expect_contains_in_order(const std::vector<ArrayTile>& got,
                              const std::vector<ArrayTile>& want) {
  std::size_t gi = 0;
  for (const ArrayTile& w : want) {
    while (gi < got.size() && !(got[gi] == w)) ++gi;
    EXPECT_LT(gi, got.size()) << "missing tile (" << w.ti << "," << w.tj << ","
                              << w.tk << ")";
    ++gi;
  }
}

// All rows of paper Table 1 (200x200xM array, 2048-element cache).
TEST(Euc3dEnumerate, PaperTable1Depth1) {
  const auto t = euc3d_enumerate(2048, 200, 200, 1);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], (ArrayTile{2048, 1, 1}));
  EXPECT_EQ(t[1], (ArrayTile{200, 10, 1}));
  EXPECT_EQ(t[2], (ArrayTile{48, 41, 1}));
  EXPECT_EQ(t[3], (ArrayTile{8, 256, 1}));
}

TEST(Euc3dEnumerate, PaperTable1Depth2) {
  expect_contains_in_order(euc3d_enumerate(2048, 200, 200, 2),
                           {{960, 1, 2},
                            {200, 4, 2},
                            {160, 5, 2},
                            {40, 15, 2}});
}

TEST(Euc3dEnumerate, PaperTable1Depth3) {
  expect_contains_in_order(euc3d_enumerate(2048, 200, 200, 3),
                           {{72, 5, 3}, {40, 11, 3}, {24, 15, 3}});
}

TEST(Euc3dEnumerate, PaperTable1Depth4) {
  expect_contains_in_order(euc3d_enumerate(2048, 200, 200, 4),
                           {{72, 4, 4}, {16, 15, 4}, {8, 56, 4}});
}

// Paper Section 3.3: the minimum-cost tile for Jacobi (trim 2, ATD 3) is
// (TI, TJ) = (22, 13), from the array tile TK=3, TJ=15, TI=24.
TEST(Euc3dSelect, PaperSelectionAnchor) {
  const auto r = euc3d(2048, 200, 200, StencilSpec::jacobi3d());
  EXPECT_EQ(r.tile, (IterTile{22, 13}));
  EXPECT_EQ(r.array_tile, (ArrayTile{24, 15, 3}));
  EXPECT_NEAR(r.tile_cost, (24.0 * 15.0) / (22.0 * 13.0), 1e-12);
}

// Paper Section 3.4: a 341x341xM array yields a pathologically thin best
// tile, around (110, 4) — the motivation for padding.
TEST(Euc3dSelect, PathologicalCase341) {
  const auto r = euc3d(2048, 341, 341, StencilSpec::jacobi3d());
  EXPECT_LE(r.tile.tj, 6) << "expected a very thin tile for 341";
  EXPECT_GE(r.tile.ti, 60);
  EXPECT_GT(r.tile_cost, 1.5);  // much worse than the 200x200 case (~1.26)
}

TEST(Euc3dEnumerate, RejectsBadArgs) {
  EXPECT_THROW(euc3d_enumerate(0, 10, 10, 1), std::invalid_argument);
  EXPECT_THROW(euc3d_enumerate(64, -1, 10, 1), std::invalid_argument);
  EXPECT_THROW(euc3d_enumerate(64, 10, 10, 0), std::invalid_argument);
}

TEST(Euc3dEnumerate, CoincidingPlanesGiveNoTiles) {
  // Plane stride 16*4 = 64 == cache size: planes 0 and 1 map identically.
  EXPECT_TRUE(euc3d_enumerate(64, 16, 4, 2).empty());
}

// Every enumerated tile must verify conflict-free by brute force, and must
// be maximal: growing TI, TJ, or TK by one must create a conflict.
class Euc3dConflictFree
    : public ::testing::TestWithParam<std::tuple<long, long, long, int>> {};

TEST_P(Euc3dConflictFree, TilesAreConflictFreeAndTight) {
  const auto [cs, di, dj, tk] = GetParam();
  const auto tiles = euc3d_enumerate(cs, di, dj, tk);
  for (const auto& t : tiles) {
    EXPECT_TRUE(is_conflict_free(cs, di, dj, t.ti, t.tj, t.tk))
        << "cs=" << cs << " di=" << di << " tile=(" << t.ti << "," << t.tj
        << "," << t.tk << ")";
    // Taller tile of same width must conflict (height = exact min gap).
    EXPECT_FALSE(is_conflict_free(cs, di, dj, t.ti + 1, t.tj + 1, t.tk))
        << "record not maximal: cs=" << cs << " di=" << di << " tile=("
        << t.ti << "," << t.tj << "," << t.tk << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Euc3dConflictFree,
    ::testing::Combine(::testing::Values(512L, 2048L),
                       ::testing::Values(130L, 200L, 341L, 256L, 257L),
                       ::testing::Values(130L, 200L, 300L),
                       ::testing::Values(1, 2, 3, 4)));

// Widening a record's width by one at the same height must also conflict
// (width maximality) — checked on the paper's array shape.
TEST(Euc3dEnumerate, WidthMaximality) {
  for (int tk = 1; tk <= 4; ++tk) {
    for (const auto& t : euc3d_enumerate(2048, 200, 200, tk)) {
      EXPECT_TRUE(is_conflict_free(2048, 200, 200, t.ti, t.tj, t.tk));
      if (t.ti * (t.tj + 1) * t.tk <= 2048) {
        EXPECT_FALSE(is_conflict_free(2048, 200, 200, t.ti, t.tj + 1, t.tk))
            << "tk=" << tk << " ti=" << t.ti << " tj=" << t.tj;
      }
    }
  }
}

}  // namespace
}  // namespace rt::core
