// Tests for the 3C miss-classification shadow simulation.

#include <gtest/gtest.h>

#include "rt/cachesim/classify.hpp"

namespace rt::cachesim {
namespace {

CacheConfig tiny() {
  return CacheConfig{128, 32, 1, true, true};  // 4 lines, direct-mapped
}

TEST(Classify, FirstTouchesAreCompulsory) {
  ClassifyingCache c(tiny());
  for (int i = 0; i < 4; ++i) c.access(static_cast<std::uint64_t>(i) * 32, false);
  EXPECT_EQ(c.classes().compulsory, 4u);
  EXPECT_EQ(c.classes().capacity, 0u);
  EXPECT_EQ(c.classes().conflict, 0u);
}

TEST(Classify, RepeatAccessesAreHits) {
  ClassifyingCache c(tiny());
  c.access(0, false);
  c.access(0, false);
  c.access(8, false);  // same line
  EXPECT_EQ(c.classes().hits, 2u);
  EXPECT_EQ(c.classes().compulsory, 1u);
}

TEST(Classify, PingPongIsConflict) {
  // Lines 0 and 128 collide in the 4-line direct-mapped cache but both fit
  // in the fully associative shadow.
  ClassifyingCache c(tiny());
  c.access(0, false);
  c.access(128, false);
  for (int r = 0; r < 3; ++r) {
    c.access(0, false);
    c.access(128, false);
  }
  EXPECT_EQ(c.classes().compulsory, 2u);
  EXPECT_EQ(c.classes().conflict, 6u);
  EXPECT_EQ(c.classes().capacity, 0u);
}

TEST(Classify, StreamingBeyondCapacityIsCapacity) {
  // Touch 8 distinct lines round-robin: neither a 4-line direct-mapped
  // cache nor its fully associative twin can hold them.
  ClassifyingCache c(tiny());
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < 8; ++i) {
      c.access(static_cast<std::uint64_t>(i) * 32, false);
    }
  }
  EXPECT_EQ(c.classes().compulsory, 8u);
  EXPECT_EQ(c.classes().conflict, 0u);
  EXPECT_EQ(c.classes().capacity, 16u);
}

TEST(Classify, ClassesSumToMisses) {
  ClassifyingCache c(tiny());
  for (int i = 0; i < 100; ++i) {
    c.access(static_cast<std::uint64_t>(i * 13 % 40) * 32, i % 3 == 0);
  }
  const auto& m = c.classes();
  EXPECT_EQ(m.accesses, 100u);
  EXPECT_EQ(m.hits + m.total_misses(), m.accesses);
}

TEST(Classify, PctHelper) {
  ClassifyingCache c(tiny());
  for (int i = 0; i < 4; ++i) c.access(static_cast<std::uint64_t>(i) * 32, false);
  EXPECT_DOUBLE_EQ(c.classes().pct(c.classes().compulsory), 100.0);
  EXPECT_DOUBLE_EQ(MissClasses{}.pct(0), 0.0);
}

}  // namespace
}  // namespace rt::cachesim
