// rt::resil tests: RetryPolicy validation and deterministic backoff in
// isolation, then RetryingClient end-to-end against a real rt::serve
// Server — transport faults injected at the frame layer (sockdrop /
// partialwrite), typed overloaded retries paced by the server's
// retry_after_ms hint, fail-fast on deterministic rejections, and typed
// attempt/budget exhaustion against a dead port.
//
// The resilience claim under test is *bit-identity through failure*: a
// call that survived torn frames and reconnects must return exactly the
// checksum a clean call returns.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "rt/guard/fault_injector.hpp"
#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/resil/retry.hpp"
#include "rt/serve/client.hpp"
#include "rt/serve/server.hpp"

namespace rt::resil {
namespace {

using rt::guard::FaultInjector;
using rt::guard::FaultKind;
using rt::guard::Status;
using rt::obs::JsonValue;

class ResilFixture : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm_all(); }

  static rt::serve::ServerOptions base_options() {
    rt::serve::ServerOptions o;
    o.cs_elems = 2048;  // fixed planning cache size for determinism
    return o;
  }

  static JsonValue solve_req(long long id, long n, int tsteps = 1) {
    JsonValue r = JsonValue::object();
    r.set("id", id);
    r.set("op", "solve");
    r.set("kernel", "JACOBI");
    r.set("n", n);
    r.set("tsteps", tsteps);
    r.set("transform", "gcdpad");
    return r;
  }

  static std::string field(const JsonValue& doc, const std::string& key) {
    const JsonValue* v = doc.find(key);
    return v ? v->as_string() : std::string();
  }

  /// The clean-path checksum for @p req: a plain client, no faults.
  static std::string clean_checksum(rt::serve::Server& server,
                                    const JsonValue& req) {
    rt::guard::Expected<rt::serve::Client> c =
        rt::serve::Client::connect(server.port());
    EXPECT_TRUE(c.ok()) << c.detail();
    rt::guard::Expected<JsonValue> r = c.value().call(req);
    EXPECT_TRUE(r.ok()) << r.detail();
    EXPECT_EQ(field(r.value(), "status"), "ok");
    return field(r.value(), "checksum");
  }
};

TEST_F(ResilFixture, PolicyValidationCatchesEveryBadField) {
  std::string why;
  EXPECT_EQ(RetryPolicy{}.validate(&why), Status::kOk) << why;

  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);
  EXPECT_NE(why.find("max_attempts"), std::string::npos);

  p = RetryPolicy{};
  p.base_backoff_ms = -1;
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);
  EXPECT_NE(why.find("base_backoff_ms"), std::string::npos);

  p = RetryPolicy{};
  p.base_backoff_ms = 100;
  p.max_backoff_ms = 50;  // bounds out of order
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);
  EXPECT_NE(why.find("max_backoff_ms"), std::string::npos);

  p = RetryPolicy{};
  p.jitter = 1.5;
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);
  p.jitter = -0.1;
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);

  p = RetryPolicy{};
  p.budget_ms = -1;
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);

  p = RetryPolicy{};
  p.recv_timeout_ms = -5;
  EXPECT_EQ(p.validate(&why), Status::kInvalidArgument);

  // Zero budget is *unlimited* at the policy level, not a contradiction
  // (the bench flag layer is the strict one).
  p = RetryPolicy{};
  p.budget_ms = 0;
  EXPECT_EQ(p.validate(&why), Status::kOk) << why;
}

TEST_F(ResilFixture, BackoffIsDeterministicBoundedAndClamped) {
  RetryPolicy p;
  p.base_backoff_ms = 10;
  p.max_backoff_ms = 200;
  p.jitter = 0.5;

  for (int ordinal = 1; ordinal <= 12; ++ordinal) {
    for (std::uint64_t stream = 0; stream < 4; ++stream) {
      const int a = p.backoff_ms(ordinal, stream);
      const int b = p.backoff_ms(ordinal, stream);
      EXPECT_EQ(a, b) << "non-deterministic at ordinal " << ordinal;
      // Bounded by the un-jittered exponential curve from below and above.
      long long exp = static_cast<long long>(p.base_backoff_ms)
                      << std::min(ordinal - 1, 30);
      exp = std::min<long long>(exp, p.max_backoff_ms);
      EXPECT_LE(a, exp);
      EXPECT_GE(a, static_cast<int>(static_cast<double>(exp) *
                                    (1.0 - p.jitter)) -
                       1);
    }
  }
  // Deep ordinals clamp at max_backoff_ms, jitter still applies.
  const int deep = p.backoff_ms(1000, 7);
  EXPECT_LE(deep, 200);
  EXPECT_GE(deep, 99);

  // Jitter off: the schedule is exactly the clamped exponential.
  p.jitter = 0.0;
  EXPECT_EQ(p.backoff_ms(1, 0), 10);
  EXPECT_EQ(p.backoff_ms(2, 0), 20);
  EXPECT_EQ(p.backoff_ms(3, 0), 40);
  EXPECT_EQ(p.backoff_ms(9, 0), 200);  // 10 * 2^8 = 2560 -> clamp

  // Distinct seeds give distinct schedules (the chaos soak's on/off arms
  // must not accidentally share one).
  RetryPolicy q = p;
  q.jitter = 0.9;
  RetryPolicy r = q;
  r.seed = 0x1234;
  bool any_diff = false;
  for (int k = 1; k <= 8 && !any_diff; ++k) {
    any_diff = q.backoff_ms(k, 0) != r.backoff_ms(k, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ResilFixture, InvalidPolicyIsReplacedByDefaultAndReported) {
  RetryPolicy bad;
  bad.max_attempts = -3;
  RetryingClient rc(1, bad);
  EXPECT_EQ(rc.policy_status(), Status::kInvalidArgument);
  EXPECT_NE(rc.policy_detail().find("max_attempts"), std::string::npos);
  EXPECT_EQ(rc.policy().max_attempts, RetryPolicy{}.max_attempts);
}

TEST_F(ResilFixture, CleanCallNeedsNoRetryAndMatchesPlainClient) {
  rt::serve::Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  const JsonValue req = solve_req(7, 20, 2);
  const std::string want = clean_checksum(server, req);
  ASSERT_FALSE(want.empty());

  RetryingClient rc(server.port());
  rt::guard::Expected<JsonValue> r = rc.call(req);
  ASSERT_TRUE(r.ok()) << r.detail();
  EXPECT_EQ(field(r.value(), "status"), "ok");
  EXPECT_EQ(field(r.value(), "checksum"), want);
  EXPECT_EQ(rc.stats().calls, 1u);
  EXPECT_EQ(rc.stats().attempts, 1u);
  EXPECT_EQ(rc.stats().retries, 0u);
  EXPECT_EQ(rc.stats().reconnects, 0u);
  server.stop();
}

TEST_F(ResilFixture, SockDropOnResponseRetriesOnFreshConnectionBitIdentical) {
  rt::serve::Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  const JsonValue req = solve_req(8, 20, 2);
  const std::string want = clean_checksum(server, req);

  RetryPolicy p;
  p.base_backoff_ms = 1;
  p.max_backoff_ms = 5;
  RetryingClient rc(server.port(), p);
  // Triggers on write_frame: the client's send is trigger 0, the server's
  // response is trigger 1 — tear the response mid-frame.
  FaultInjector::instance().arm(FaultKind::kSockDrop, 1, 1);
  rt::guard::Expected<JsonValue> r = rc.call(req);
  ASSERT_TRUE(r.ok()) << r.detail();
  EXPECT_EQ(field(r.value(), "status"), "ok");
  EXPECT_EQ(field(r.value(), "checksum"), want);
  EXPECT_GE(rc.stats().transport_retries, 1u);
  EXPECT_GE(rc.stats().reconnects, 1u);
  EXPECT_EQ(rc.stats().calls, 1u);
  server.stop();
}

TEST_F(ResilFixture, SockDropOnOwnSendRetriesBitIdentical) {
  rt::serve::Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  const JsonValue req = solve_req(9, 16, 1);
  const std::string want = clean_checksum(server, req);

  RetryPolicy p;
  p.base_backoff_ms = 1;
  p.max_backoff_ms = 5;
  RetryingClient rc(server.port(), p);
  // Trigger 0 is the retrying client's own send: the frame is torn before
  // it ever reaches the server.
  FaultInjector::instance().arm(FaultKind::kSockDrop, 0, 1);
  rt::guard::Expected<JsonValue> r = rc.call(req);
  ASSERT_TRUE(r.ok()) << r.detail();
  EXPECT_EQ(field(r.value(), "checksum"), want);
  EXPECT_GE(rc.stats().transport_retries, 1u);
  server.stop();
}

TEST_F(ResilFixture, PartialWriteOnResponseRetriesBitIdentical) {
  rt::serve::Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  const JsonValue req = solve_req(10, 20, 2);
  const std::string want = clean_checksum(server, req);

  RetryPolicy p;
  p.base_backoff_ms = 1;
  p.max_backoff_ms = 5;
  RetryingClient rc(server.port(), p);
  FaultInjector::instance().arm(FaultKind::kPartialWrite, 1, 1);
  rt::guard::Expected<JsonValue> r = rc.call(req);
  ASSERT_TRUE(r.ok()) << r.detail();
  EXPECT_EQ(field(r.value(), "checksum"), want);
  EXPECT_GE(rc.stats().transport_retries, 1u);
  server.stop();
}

TEST_F(ResilFixture, OverloadedResponseRetriedAndPacedByServerHint) {
  rt::serve::ServerOptions opts = base_options();
  opts.executors = 1;
  opts.batching = false;
  opts.queue_depth = 1;
  opts.retry_after_ms = 40;
  rt::serve::Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);

  // Wedge the only executor and fill the 1-deep queue, so the retrying
  // client's first attempt is rejected "overloaded" with the 40 ms hint.
  rt::guard::Expected<rt::serve::Client> filler =
      rt::serve::Client::connect(server.port());
  ASSERT_TRUE(filler.ok());
  FaultInjector::instance().arm(FaultKind::kHang, 0, 1);
  ASSERT_EQ(filler.value().send(solve_req(1, 12, 1)), Status::kOk);
  bool wedged = false;
  for (int i = 0; i < 500 && !wedged; ++i) {
    wedged = FaultInjector::instance().fired(FaultKind::kHang) >= 1;
    if (!wedged) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(wedged);
  ASSERT_EQ(filler.value().send(solve_req(2, 12, 1)), Status::kOk);

  // Release the wedge shortly after the retrying client's first rejection:
  // the queue drains and a later attempt succeeds.
  std::thread releaser([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    FaultInjector::instance().cancel_hangs();
  });

  RetryPolicy p;
  p.max_attempts = 20;
  p.base_backoff_ms = 5;
  p.max_backoff_ms = 20;
  p.budget_ms = 10'000;
  RetryingClient rc(server.port(), p);
  const JsonValue req = solve_req(30, 16, 1);
  rt::guard::Expected<JsonValue> r = rc.call(req);
  releaser.join();
  ASSERT_TRUE(r.ok()) << r.detail();
  ASSERT_EQ(field(r.value(), "status"), "ok") << field(r.value(), "detail");
  EXPECT_GE(rc.stats().overloaded_retries, 1u);
  // The 40 ms hint beats the 5..20 ms backoff curve at least once.
  EXPECT_GE(rc.stats().retry_after_waits, 1u);
  EXPECT_EQ(field(r.value(), "checksum"), clean_checksum(server, req));

  // The filler's two queued solves complete too (watchdogless wedge is
  // cooperative: cancel_hangs let them finish).
  for (int i = 0; i < 2; ++i) {
    JsonValue resp;
    std::string why;
    ASSERT_EQ(filler.value().recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "ok");
  }
  server.stop();
}

TEST_F(ResilFixture, DeterministicRejectionIsReturnedNotRetried) {
  rt::serve::Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  RetryingClient rc(server.port());

  JsonValue req = JsonValue::object();
  req.set("id", 11);
  req.set("op", "solve");
  req.set("kernel", "NO_SUCH_KERNEL");
  req.set("n", 12);
  req.set("tsteps", 1);
  rt::guard::Expected<JsonValue> r = rc.call(req);
  ASSERT_TRUE(r.ok()) << r.detail();  // transported fine; rejected typed
  EXPECT_EQ(field(r.value(), "status"), "invalid_argument");
  EXPECT_EQ(rc.stats().attempts, 1u);  // fail fast: no retry spent on it
  EXPECT_EQ(rc.stats().retries, 0u);
  server.stop();
}

TEST_F(ResilFixture, AttemptsExhaustionAgainstDeadPortIsTyped) {
  // Grab an ephemeral port with a real server, then stop it: connects are
  // refused immediately (loopback), so every attempt fails fast.
  int port = 0;
  {
    rt::serve::Server server(base_options());
    ASSERT_EQ(server.start(), Status::kOk);
    port = server.port();
    server.stop();
  }

  RetryPolicy p;
  p.max_attempts = 3;
  p.base_backoff_ms = 1;
  p.max_backoff_ms = 2;
  p.budget_ms = 10'000;
  RetryingClient rc(port, p);
  rt::guard::Expected<JsonValue> r = rc.call(solve_req(12, 12, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.detail().find("3 attempts exhausted"), std::string::npos)
      << r.detail();
  EXPECT_EQ(rc.stats().gave_up, 1u);
  EXPECT_EQ(rc.stats().attempts, 3u);
  EXPECT_EQ(rc.stats().retries, 2u);
}

TEST_F(ResilFixture, BudgetExhaustionAgainstDeadPortIsTyped) {
  int port = 0;
  {
    rt::serve::Server server(base_options());
    ASSERT_EQ(server.start(), Status::kOk);
    port = server.port();
    server.stop();
  }

  RetryPolicy p;
  p.max_attempts = 1000;
  p.base_backoff_ms = 30;
  p.max_backoff_ms = 30;
  p.jitter = 0.0;  // exact 30 ms steps: the budget dies long before 1000
  p.budget_ms = 70;
  RetryingClient rc(port, p);
  rt::guard::Expected<JsonValue> r = rc.call(solve_req(13, 12, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.detail().find("retry budget"), std::string::npos) << r.detail();
  EXPECT_EQ(rc.stats().budget_exhausted, 1u);
  EXPECT_LT(rc.stats().attempts, 10u);  // nowhere near max_attempts
}

}  // namespace
}  // namespace rt::resil
