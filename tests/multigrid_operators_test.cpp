// Deeper multigrid operator properties: linearity, the adjoint relation
// between restriction and prolongation, periodic invariances, and traced
// execution equivalence for every operator.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/multigrid/operators.hpp"

namespace rt::multigrid {
namespace {

using rt::array::Array3D;

Array3D<double> rand_grid(long n, std::uint64_t seed) {
  Array3D<double> a(n, n, n);
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (long k = 0; k < n; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        a(i, j, k) = static_cast<double>(s % 2000) / 1000.0 - 1.0;
      }
  return a;
}

double inner(const Array3D<double>& a, const Array3D<double>& b) {
  double s = 0;
  for (long k = 1; k < a.n3() - 1; ++k)
    for (long j = 1; j < a.n2() - 1; ++j)
      for (long i = 1; i < a.n1() - 1; ++i) s += a(i, j, k) * b(i, j, k);
  return s;
}

TEST(Operators, RestrictionIsHalfAdjointOfProlongation) {
  // P^T = 2 R for the NAS full-weighting/trilinear pair, so
  // <f, P g>_fine == 2 <R f, g>_coarse when supports avoid the ghosts.
  const long nf = 18, nc = 10;
  Array3D<double> f(nf, nf, nf), g(nc, nc, nc);
  // Interior-supported data (zero near boundaries).
  for (long k = 3; k < nf - 3; ++k)
    for (long j = 3; j < nf - 3; ++j)
      for (long i = 3; i < nf - 3; ++i)
        f(i, j, k) = std::sin(0.3 * i + 0.5 * j + 0.7 * k);
  for (long k = 2; k < nc - 2; ++k)
    for (long j = 2; j < nc - 2; ++j)
      for (long i = 2; i < nc - 2; ++i)
        g(i, j, k) = std::cos(0.4 * i + 0.2 * j + 0.9 * k);

  Array3D<double> rf(nc, nc, nc);
  rprj3(rf, f);
  Array3D<double> pg(nf, nf, nf);
  interp_add(pg, g);

  const double lhs = inner(f, pg);
  const double rhs = 2.0 * inner(rf, g);
  EXPECT_NEAR(lhs, rhs, 1e-10 * (1.0 + std::abs(lhs)));
}

TEST(Operators, Rprj3IsLinear) {
  const long nf = 14, nc = 8;
  Array3D<double> f1 = rand_grid(nf, 1), f2 = rand_grid(nf, 2);
  Array3D<double> sum(nf, nf, nf);
  for (long k = 0; k < nf; ++k)
    for (long j = 0; j < nf; ++j)
      for (long i = 0; i < nf; ++i)
        sum(i, j, k) = 2.0 * f1(i, j, k) - 3.0 * f2(i, j, k);
  Array3D<double> r1(nc, nc, nc), r2(nc, nc, nc), rs(nc, nc, nc);
  rprj3(r1, f1);
  rprj3(r2, f2);
  rprj3(rs, sum);
  for (long k = 1; k < nc - 1; ++k)
    for (long j = 1; j < nc - 1; ++j)
      for (long i = 1; i < nc - 1; ++i)
        EXPECT_NEAR(rs(i, j, k), 2.0 * r1(i, j, k) - 3.0 * r2(i, j, k),
                    1e-12);
}

TEST(Operators, PsinvIsAffineInResidual) {
  // u' = u + S r: applying with r and with 2r from the same u must differ
  // by exactly S r.
  const long n = 12;
  Array3D<double> u0 = rand_grid(n, 3);
  Array3D<double> r = rand_grid(n, 4);
  Array3D<double> r2(n, n, n);
  for (long k = 0; k < n; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) r2(i, j, k) = 2.0 * r(i, j, k);
  Array3D<double> u1 = u0, u2 = u0;
  psinv(u1, r, nas_mg_c());
  psinv(u2, r2, nas_mg_c());
  for (long k = 1; k < n - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i) {
        const double sr = u1(i, j, k) - u0(i, j, k);
        EXPECT_NEAR(u2(i, j, k) - u0(i, j, k), 2.0 * sr,
                    1e-12 * (1.0 + std::abs(sr)));
      }
}

TEST(Operators, Comm3IsIdempotent) {
  Array3D<double> a = rand_grid(10, 5);
  comm3(a);
  Array3D<double> once = a;
  comm3(a);
  for (long k = 0; k < 10; ++k)
    for (long j = 0; j < 10; ++j)
      for (long i = 0; i < 10; ++i) EXPECT_EQ(a(i, j, k), once(i, j, k));
}

TEST(Operators, Comm3PreservesInterior) {
  Array3D<double> a = rand_grid(10, 6);
  Array3D<double> before = a;
  comm3(a);
  for (long k = 1; k < 9; ++k)
    for (long j = 1; j < 9; ++j)
      for (long i = 1; i < 9; ++i)
        EXPECT_EQ(a(i, j, k), before(i, j, k));
}

TEST(Operators, NormScalesQuadratically) {
  Array3D<double> a = rand_grid(8, 7);
  const Norms n1 = norm2u3(a);
  for (long k = 0; k < 8; ++k)
    for (long j = 0; j < 8; ++j)
      for (long i = 0; i < 8; ++i) a(i, j, k) *= -3.0;
  const Norms n3 = norm2u3(a);
  EXPECT_NEAR(n3.l2, 3.0 * n1.l2, 1e-12 * (1 + n1.l2));
  EXPECT_NEAR(n3.linf, 3.0 * n1.linf, 1e-12 * (1 + n1.linf));
}

TEST(Operators, TracedOperatorsMatchNative) {
  const long nf = 10, nc = 6;
  Array3D<double> f = rand_grid(nf, 8);
  Array3D<double> f2 = f;
  Array3D<double> c1(nc, nc, nc), c2(nc, nc, nc);
  rprj3(c1, f);
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::TracedArray3D<double> tf(f2, 0, h), tc(c2, 1 << 22, h);
  rprj3(tc, tf);
  for (long k = 1; k < nc - 1; ++k)
    for (long j = 1; j < nc - 1; ++j)
      for (long i = 1; i < nc - 1; ++i)
        EXPECT_EQ(c1(i, j, k), c2(i, j, k));
  // rprj3 reads 27 fine points and writes 1 coarse point per coarse pt.
  const std::uint64_t pts = (nc - 2) * (nc - 2) * (nc - 2);
  EXPECT_EQ(h.stats().l1.accesses, 28u * pts);
}

TEST(Operators, InterpConservesSumOnUniformField)  {
  // Prolongation of a constant adds the same constant at every fine
  // interior point: already covered; here check mixed fields keep the
  // interpolation bounded by coarse extremes (convexity per axis).
  const long nf = 18, nc = 10;
  Array3D<double> g = rand_grid(nc, 9);
  comm3(g);
  Array3D<double> u(nf, nf, nf);
  interp_add(u, g);
  double gmin = 1e30, gmax = -1e30;
  for (long k = 0; k < nc; ++k)
    for (long j = 0; j < nc; ++j)
      for (long i = 0; i < nc; ++i) {
        gmin = std::min(gmin, g(i, j, k));
        gmax = std::max(gmax, g(i, j, k));
      }
  for (long k = 1; k < nf - 1; ++k)
    for (long j = 1; j < nf - 1; ++j)
      for (long i = 1; i < nf - 1; ++i) {
        EXPECT_GE(u(i, j, k), gmin - 1e-12);
        EXPECT_LE(u(i, j, k), gmax + 1e-12);
      }
}

}  // namespace
}  // namespace rt::multigrid
