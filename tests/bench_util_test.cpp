// Tests for bench_util: CLI option parsing, sweep construction, and table
// formatting helpers.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "rt/bench/options.hpp"
#include "rt/bench/table.hpp"
#include "rt/tune/plan_store.hpp"

namespace rt::bench {
namespace {

BenchOptions parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parse_options(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
}

TEST(Options, Defaults) {
  const BenchOptions o = parse({});
  EXPECT_FALSE(o.full);
  EXPECT_FALSE(o.host);
  EXPECT_TRUE(o.simulate);
  EXPECT_EQ(o.steps, 2);
}

TEST(Options, Flags) {
  const BenchOptions o =
      parse({"--full", "--host", "--no-sim", "--steps=5", "--nmin=100",
             "--nmax=300", "--nstep=10"});
  EXPECT_TRUE(o.full);
  EXPECT_TRUE(o.host);
  EXPECT_FALSE(o.simulate);
  EXPECT_EQ(o.steps, 5);
  EXPECT_EQ(o.nmin, 100);
  EXPECT_EQ(o.nmax, 300);
  EXPECT_EQ(o.nstep, 10);
}

TEST(Options, SweepDefaults) {
  const BenchOptions o = parse({});
  const auto xs = o.sweep(200, 400, 25, 4);
  EXPECT_EQ(xs.front(), 200);
  EXPECT_EQ(xs.back(), 400);
  EXPECT_EQ(xs[1] - xs[0], 25);
}

TEST(Options, SweepFullUsesFineStep) {
  const BenchOptions o = parse({"--full"});
  const auto xs = o.sweep(200, 400, 25, 4);
  EXPECT_EQ(xs[1] - xs[0], 4);
}

TEST(Options, SweepOverrides) {
  const BenchOptions o = parse({"--nmin=100", "--nmax=120", "--nstep=7"});
  const auto xs = o.sweep(200, 400, 25, 4);
  EXPECT_EQ(xs.front(), 100);
  EXPECT_EQ(xs.back(), 120);  // endpoint always included
  EXPECT_EQ(xs[1], 107);
}

TEST(Options, SweepAlwaysIncludesEndpoint) {
  const BenchOptions o = parse({"--nstep=300"});
  const auto xs = o.sweep(200, 400, 25, 4);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], 200);
  EXPECT_EQ(xs[1], 400);
}

TEST(Options, CountersAndJsonFlags) {
  const BenchOptions d = parse({});
  EXPECT_EQ(d.counters, rt::obs::CounterMode::kAuto);
  EXPECT_TRUE(d.json.empty());
  const BenchOptions o = parse({"--counters=on", "--json=/tmp/out.json"});
  EXPECT_EQ(o.counters, rt::obs::CounterMode::kOn);
  EXPECT_EQ(o.json, "/tmp/out.json");
  const BenchOptions off = parse({"--counters=off"});
  EXPECT_EQ(off.counters, rt::obs::CounterMode::kOff);
}

// Numeric flags are validated in full: garbage must exit(2) with a
// message instead of silently parsing as 0 and selecting a default.
TEST(OptionsDeathTest, RejectsGarbageNumbers) {
  EXPECT_EXIT(parse({"--nmin=abc"}), testing::ExitedWithCode(2),
              "bad numeric value");
  EXPECT_EXIT(parse({"--threads="}), testing::ExitedWithCode(2),
              "bad numeric value");
  EXPECT_EXIT(parse({"--nmax=12x"}), testing::ExitedWithCode(2),
              "bad numeric value");
  EXPECT_EXIT(parse({"--steps=999999999999999999999"}),
              testing::ExitedWithCode(2), "bad numeric value");
}

TEST(OptionsDeathTest, RejectsBadEnumValues) {
  EXPECT_EXIT(parse({"--counters=maybe"}), testing::ExitedWithCode(2),
              "bad --counters value");
  EXPECT_EXIT(parse({"--json="}), testing::ExitedWithCode(2),
              "empty --json");
}

TEST(Options, NegativeThreadsClampsToOne) {
  const BenchOptions o = parse({"--threads=-3"});
  EXPECT_EQ(o.threads, 1);
}

TEST(Options, TuneFlagsParseAndDefaultOff) {
  const BenchOptions d = parse({});
  EXPECT_EQ(d.tune, rt::tune::TuneMode::kOff);
  EXPECT_TRUE(d.plan_store.empty());
  EXPECT_EQ(d.tsteps, 0);
  EXPECT_FALSE(d.tsteps_given);

  const BenchOptions o =
      parse({"--tune=on", "--plan-store=/tmp/p.json", "--tsteps=6"});
  EXPECT_EQ(o.tune, rt::tune::TuneMode::kOn);
  EXPECT_EQ(o.plan_store, "/tmp/p.json");
  EXPECT_EQ(o.tsteps, 6);
  EXPECT_TRUE(o.tsteps_given);
  // Explicit --plan-store wins over every environment default.
  EXPECT_EQ(o.resolved_plan_store(), "/tmp/p.json");
}

TEST(Options, ResolvedPlanStoreFallsBackToTheDurableDefault) {
  const char* old = std::getenv("RT_TUNE_STORE");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("RT_TUNE_STORE", "/tmp/env-plans.json", 1);
  EXPECT_EQ(parse({}).resolved_plan_store(), "/tmp/env-plans.json");
  if (old != nullptr) {
    ::setenv("RT_TUNE_STORE", saved.c_str(), 1);
  } else {
    ::unsetenv("RT_TUNE_STORE");
  }
}

// Contradictory flag combinations must die with exit(2) at the parse
// boundary — a bench that silently reconciled them would print a table for
// a configuration nobody asked for.
TEST(OptionsDeathTest, RejectsBadTuneValuesAndContradictions) {
  EXPECT_EXIT(parse({"--tune=maybe"}), testing::ExitedWithCode(2),
              "bad --tune value");
  EXPECT_EXIT(parse({"--plan-store="}), testing::ExitedWithCode(2),
              "empty --plan-store");
  EXPECT_EXIT(parse({"--tsteps=-1"}), testing::ExitedWithCode(2),
              "--tsteps");
  // Temporal blocking with zero steps to fuse: nothing to skew.
  EXPECT_EXIT(parse({"--temporal=skew", "--tsteps=0"}),
              testing::ExitedWithCode(2), "contradictory");
  // load-only mode against a store that does not exist.
  EXPECT_EXIT(
      parse({"--tune=load", "--plan-store=/nonexistent/rt-tune/p.json"}),
      testing::ExitedWithCode(2), "--tune=load");
}

TEST(Options, RetryFlagsParseAndDefaultToRetryingOn) {
  const BenchOptions d = parse({});
  EXPECT_EQ(d.retries, 3);
  EXPECT_FALSE(d.retries_given);
  EXPECT_EQ(d.retry_budget_ms, 2000);
  EXPECT_EQ(d.backoff_ms, 5);

  const BenchOptions o =
      parse({"--retries=7", "--retry-budget-ms=500", "--backoff-ms=2"});
  EXPECT_EQ(o.retries, 7);
  EXPECT_TRUE(o.retries_given);
  EXPECT_EQ(o.retry_budget_ms, 500);
  EXPECT_TRUE(o.retry_budget_given);
  EXPECT_EQ(o.backoff_ms, 2);
  EXPECT_TRUE(o.backoff_given);

  // An explicit --retries=0 (retrying off) is fine on its own, and a zero
  // budget is fine when retrying is off with it.
  const BenchOptions off = parse({"--retries=0", "--retry-budget-ms=0"});
  EXPECT_EQ(off.retries, 0);
  EXPECT_EQ(off.retry_budget_ms, 0);
}

TEST(OptionsDeathTest, RejectsBadAndContradictoryRetryFlags) {
  EXPECT_EXIT(parse({"--retries=-1"}), testing::ExitedWithCode(2),
              "bad --retries value");
  EXPECT_EXIT(parse({"--retry-budget-ms=-5"}), testing::ExitedWithCode(2),
              "bad --retry-budget-ms value");
  EXPECT_EXIT(parse({"--backoff-ms=abc"}), testing::ExitedWithCode(2),
              "bad numeric value");
  // Retrying enabled (default --retries=3) with zero time to retry in.
  EXPECT_EXIT(parse({"--retry-budget-ms=0"}), testing::ExitedWithCode(2),
              "contradictory");
  EXPECT_EXIT(parse({"--retries=2", "--retry-budget-ms=0"}),
              testing::ExitedWithCode(2), "contradictory");
  // A backoff curve no retry will ever walk.
  EXPECT_EXIT(parse({"--backoff-ms=9", "--retries=0"}),
              testing::ExitedWithCode(2), "contradictory");
}

TEST(Options, TuneLoadAcceptsAnExistingStoreFile) {
  const std::string path = "/tmp/rt_bench_tune_load_test.json";
  std::ofstream(path) << "{}\n";  // existence is all parse checks here
  const std::string flag = "--plan-store=" + path;
  const BenchOptions o = parse({"--tune=load", flag.c_str()});
  EXPECT_EQ(o.tune, rt::tune::TuneMode::kLoad);
  std::remove(path.c_str());
}

TEST(Options, BackendFlagParsesAndDefaultsToModel) {
  const BenchOptions d = parse({});
  EXPECT_EQ(d.backend, rt::core::Backend::kModel);
  EXPECT_FALSE(d.backend_given);
  EXPECT_FALSE(d.backend_auto);

  EXPECT_EQ(parse({"--backend=model"}).backend, rt::core::Backend::kModel);
  const BenchOptions lat = parse({"--backend=lattice"});
  EXPECT_EQ(lat.backend, rt::core::Backend::kLattice);
  EXPECT_TRUE(lat.backend_given);
  EXPECT_FALSE(lat.backend_auto);
  EXPECT_EQ(parse({"--backend=oblivious"}).backend,
            rt::core::Backend::kOblivious);

  // --backend=auto defers: resolution happens against the geometry the
  // bench actually plans with (probed -> lattice, unprobed -> oblivious).
  const BenchOptions au = parse({"--backend=auto"});
  EXPECT_TRUE(au.backend_auto);
  EXPECT_TRUE(au.backend_given);
  rt::core::CacheGeom g;
  g.probed = true;
  EXPECT_EQ(au.resolved_backend(g), rt::core::Backend::kLattice);
  g.probed = false;
  EXPECT_EQ(au.resolved_backend(g), rt::core::Backend::kOblivious);
  // A named backend resolves to itself regardless of the geometry.
  EXPECT_EQ(lat.resolved_backend(g), rt::core::Backend::kLattice);
}

TEST(OptionsDeathTest, RejectsBadBackendAndPreBackendStore) {
  EXPECT_EXIT(parse({"--backend=euclid"}), testing::ExitedWithCode(2),
              "bad --backend value");

  // A pre-backend (v1) plan store carries winners with no backend id:
  // serving them under an explicit --backend= is a contradiction.
  const std::string path = "/tmp/rt_bench_backend_v1_store_test.json";
  std::ofstream(path) << "{\n  \"version\": 1,\n  \"fingerprint\": \"x\",\n"
                         "  \"entries\": []\n}\n";
  const std::string flag = "--plan-store=" + path;
  EXPECT_EXIT(parse({"--backend=lattice", "--tune=load", flag.c_str()}),
              testing::ExitedWithCode(2), "pre-backend plan store");
  EXPECT_EXIT(parse({"--backend=auto", "--tune=load", flag.c_str()}),
              testing::ExitedWithCode(2), "pre-backend plan store");

  // Without an explicit backend the same store parses: rt::tune rejects it
  // as kStale at load time and the bench keeps running on model plans.
  EXPECT_EQ(parse({"--tune=load", flag.c_str()}).tune,
            rt::tune::TuneMode::kLoad);
  std::remove(path.c_str());

  // A current-version store satisfies the explicit-backend combination.
  const std::string path2 = "/tmp/rt_bench_backend_v2_store_test.json";
  std::ofstream(path2) << "{\n  \"version\": "
                       << rt::tune::kPlanStoreVersion
                       << ",\n  \"fingerprint\": \"x\",\n  \"entries\": []\n"
                          "}\n";
  const std::string flag2 = "--plan-store=" + path2;
  const BenchOptions ok = parse({"--backend=lattice", "--tune=load",
                                 flag2.c_str()});
  EXPECT_EQ(ok.backend, rt::core::Backend::kLattice);
  std::remove(path2.c_str());
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Table, PrintTableDoesNotThrow) {
  testing::internal::CaptureStdout();
  print_table({"a", "bb"}, {{"1", "2"}, {"333", "4"}});
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(Table, PrintSeriesAlignsColumns) {
  testing::internal::CaptureStdout();
  print_series("t", "N", {100, 200}, {"s1", "s2"},
               {{1.5, 2.5}, {3.25, 4.126}}, 2);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("== t =="), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
  EXPECT_NE(out.find("4.13"), std::string::npos);  // rounded to 2 digits
}

}  // namespace
}  // namespace rt::bench

// --- CSV sink ---
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rt::bench {
namespace {

TEST(Csv, TablesAndSeriesAppendToSink) {
  const std::string path = "/tmp/rt_bench_csv_test.csv";
  std::remove(path.c_str());
  set_csv_sink(path);
  testing::internal::CaptureStdout();
  print_table({"a", "b"}, {{"1", "x,y"}, {"2", "z\"q"}});
  print_series("series one", "N", {10, 20}, {"s"}, {{1.25, 2.5}}, 2);
  testing::internal::GetCapturedStdout();
  close_csv_sink();

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string got = ss.str();
  EXPECT_NE(got.find("a,b"), std::string::npos);
  EXPECT_NE(got.find("\"x,y\""), std::string::npos) << got;
  EXPECT_NE(got.find("\"z\"\"q\""), std::string::npos) << got;
  EXPECT_NE(got.find("# series one"), std::string::npos);
  EXPECT_NE(got.find("10,1.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, NoSinkNoOutput) {
  close_csv_sink();  // ensure off
  testing::internal::CaptureStdout();
  print_table({"h"}, {{"v"}});
  testing::internal::GetCapturedStdout();  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace rt::bench
