// Multigrid substrate tests: operator correctness, periodic consistency,
// V-cycle convergence, and exact equivalence of the tiled-RESID solver.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/core/plan.hpp"
#include "rt/multigrid/mg_solver.hpp"
#include "rt/multigrid/operators.hpp"

namespace rt::multigrid {
namespace {

using rt::array::Array3D;

Array3D<double> rand_grid(long n, std::uint64_t seed) {
  Array3D<double> a(n, n, n);
  std::uint64_t s = seed * 2654435761u + 1;
  for (long k = 0; k < n; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        a(i, j, k) = static_cast<double>(s % 1000) / 1000.0 - 0.5;
      }
  return a;
}

TEST(Comm3, PeriodicGhostsMatchOppositeFaces) {
  Array3D<double> a = rand_grid(10, 1);
  comm3(a);
  for (long k = 1; k < 9; ++k) {
    for (long j = 1; j < 9; ++j) {
      EXPECT_EQ(a(0, j, k), a(8, j, k));
      EXPECT_EQ(a(9, j, k), a(1, j, k));
      EXPECT_EQ(a(j, 0, k), a(j, 8, k));
      EXPECT_EQ(a(j, 9, k), a(j, 1, k));
      EXPECT_EQ(a(j, k, 0), a(j, k, 8));
      EXPECT_EQ(a(j, k, 9), a(j, k, 1));
    }
  }
}

TEST(Comm3, CornersConsistent) {
  Array3D<double> a = rand_grid(6, 2);
  comm3(a);
  EXPECT_EQ(a(0, 0, 0), a(4, 4, 4));
  EXPECT_EQ(a(5, 5, 5), a(1, 1, 1));
  EXPECT_EQ(a(0, 5, 0), a(4, 1, 4));
}

TEST(Zero3, ClearsEverything) {
  Array3D<double> a = rand_grid(8, 3);
  zero3(a);
  for (long k = 0; k < 8; ++k)
    for (long j = 0; j < 8; ++j)
      for (long i = 0; i < 8; ++i) EXPECT_EQ(a(i, j, k), 0.0);
}

TEST(Norm2u3, KnownValues) {
  Array3D<double> a(6, 6, 6);
  a(1, 1, 1) = 4.0;
  a(2, 3, 4) = -3.0;
  const Norms n = norm2u3(a);
  EXPECT_DOUBLE_EQ(n.linf, 4.0);
  EXPECT_DOUBLE_EQ(n.l2, std::sqrt(25.0 / 64.0));
}

TEST(Psinv, ConstantResidualBalancedCoeffs) {
  // Smoother coefficient sum: -3/8 + 6/32 - 12/64 + 0 = -3/8 + 3/16 - 3/16
  // = -3/8, so constant r adds c_sum * r to u.
  Array3D<double> u(8, 8, 8, 1.0), r(8, 8, 8, 2.0);
  psinv(u, r, nas_mg_c());
  EXPECT_NEAR(u(3, 3, 3), 1.0 + 2.0 * (-3.0 / 8.0), 1e-12);
}

TEST(Psinv, TiledMatchesOrig) {
  Array3D<double> r = rand_grid(12, 4);
  Array3D<double> u1 = rand_grid(12, 5), u2 = u1;
  psinv(u1, r, nas_mg_c());
  psinv_tiled(u2, r, nas_mg_c(), rt::core::IterTile{4, 3});
  for (long k = 1; k < 11; ++k)
    for (long j = 1; j < 11; ++j)
      for (long i = 1; i < 11; ++i) EXPECT_EQ(u1(i, j, k), u2(i, j, k));
}

TEST(Rprj3, ConstantFieldRestrictsToSameConstant) {
  // Weights sum to 1/2 + 6/4 + 12/8 + 8/16 = 4; full weighting of a
  // constant c gives 4c (NAS convention; the factor folds into the
  // inter-grid scaling of the operator).
  Array3D<double> fine(10, 10, 10, 1.0);
  Array3D<double> coarse(6, 6, 6);
  rprj3(coarse, fine);
  for (long k = 1; k < 5; ++k)
    for (long j = 1; j < 5; ++j)
      for (long i = 1; i < 5; ++i) EXPECT_NEAR(coarse(i, j, k), 4.0, 1e-12);
}

TEST(Rprj3, CentreMapsToFineCentre) {
  Array3D<double> fine(10, 10, 10);
  fine(5, 5, 5) = 16.0;  // fine centre of coarse (3,3,3): i = 2*3 - 1 = 5
  Array3D<double> coarse(6, 6, 6);
  rprj3(coarse, fine);
  // A coarse-coincident fine point lies only in its own coarse stencil
  // (neighbouring coarse centres are 2 fine cells away).
  EXPECT_DOUBLE_EQ(coarse(3, 3, 3), 8.0);  // 0.5 * 16
  EXPECT_DOUBLE_EQ(coarse(2, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(coarse(4, 3, 3), 0.0);
}

TEST(Rprj3, MidpointSplitsAcrossCoarseNeighbours) {
  // Face midpoint: seen by the two coarse centres one fine cell away.
  Array3D<double> fine(10, 10, 10);
  fine(4, 5, 5) = 16.0;  // between coarse (2,3,3) and (3,3,3)
  Array3D<double> coarse(6, 6, 6);
  rprj3(coarse, fine);
  EXPECT_DOUBLE_EQ(coarse(2, 3, 3), 4.0);  // face weight 0.25
  EXPECT_DOUBLE_EQ(coarse(3, 3, 3), 4.0);
  EXPECT_DOUBLE_EQ(coarse(2, 2, 3), 0.0);  // two fine cells away in J
}

TEST(Rprj3, EdgeAndCornerMidpointWeights) {
  Array3D<double> fine(10, 10, 10);
  fine(4, 4, 5) = 16.0;  // edge midpoint: 4 coarse neighbours at 0.125
  Array3D<double> coarse(6, 6, 6);
  rprj3(coarse, fine);
  for (long a : {2L, 3L})
    for (long b : {2L, 3L}) EXPECT_DOUBLE_EQ(coarse(a, b, 3), 2.0);

  Array3D<double> fine2(10, 10, 10);
  fine2(4, 4, 4) = 16.0;  // corner midpoint: 8 coarse neighbours at 0.0625
  Array3D<double> coarse2(6, 6, 6);
  rprj3(coarse2, fine2);
  for (long a : {2L, 3L})
    for (long b : {2L, 3L})
      for (long c : {2L, 3L}) EXPECT_DOUBLE_EQ(coarse2(a, b, c), 1.0);
}

TEST(Interp, ConstantCoarseGivesConstantFine) {
  Array3D<double> coarse(6, 6, 6, 2.0);
  Array3D<double> fine(10, 10, 10);
  interp_add(fine, coarse);
  for (long k = 1; k < 9; ++k)
    for (long j = 1; j < 9; ++j)
      for (long i = 1; i < 9; ++i)
        EXPECT_NEAR(fine(i, j, k), 2.0, 1e-12) << i << "," << j << "," << k;
}

TEST(Interp, CoincidentPointCopies) {
  Array3D<double> coarse(6, 6, 6);
  coarse(2, 2, 2) = 8.0;
  Array3D<double> fine(10, 10, 10);
  interp_add(fine, coarse);
  EXPECT_DOUBLE_EQ(fine(3, 3, 3), 8.0);  // fine 2*2-1 = 3, odd: weight 1
  EXPECT_DOUBLE_EQ(fine(4, 3, 3), 4.0);  // midpoint: weight 1/2
  EXPECT_DOUBLE_EQ(fine(4, 4, 3), 2.0);
  EXPECT_DOUBLE_EQ(fine(4, 4, 4), 1.0);
}

TEST(MgSolver, ResidualDecreasesOverIterations) {
  MgOptions o;
  o.lt = 5;  // 34^3 finest grid
  MgSolver s(o);
  s.setup();
  const double initial = s.iterate();
  EXPECT_GT(initial, 0.0);
  double prev = initial;
  for (int it = 0; it < 5; ++it) {
    const double cur = s.iterate();
    EXPECT_LT(cur, prev * 0.9) << "V-cycle must keep reducing the residual";
    prev = cur;
  }
  EXPECT_LT(prev, initial / 50.0) << "cumulative reduction too weak";
}

TEST(MgSolver, TiledSolverBitwiseEqualsOriginal) {
  MgOptions o1, o2;
  o1.lt = o2.lt = 4;
  const long n = (1 << 4) + 2;
  o2.resid_plan =
      rt::core::plan_for(rt::core::Transform::kEuc3d, 2048, n, n,
                         rt::core::StencilSpec::resid27());
  ASSERT_TRUE(o2.resid_plan.tiled);
  MgSolver s1(o1), s2(o2);
  s1.setup();
  s2.setup();
  for (int it = 0; it < 3; ++it) {
    const double r1 = s1.iterate();
    const double r2 = s2.iterate();
    EXPECT_EQ(r1, r2) << "iteration " << it;
  }
  for (long k = 0; k < n; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i)
        ASSERT_EQ(s1.u()(i, j, k), s2.u()(i, j, k));
}

TEST(MgSolver, PaddedTiledSolverMatchesUnpadded) {
  MgOptions o1, o2;
  o1.lt = o2.lt = 4;
  const long n = (1 << 4) + 2;
  o2.resid_plan =
      rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n,
                         rt::core::StencilSpec::resid27());
  ASSERT_GT(o2.resid_plan.dip, n);
  o2.tile_psinv = true;
  MgSolver s1(o1), s2(o2);
  s1.setup();
  s2.setup();
  for (int it = 0; it < 2; ++it) {
    EXPECT_EQ(s1.iterate(), s2.iterate());
  }
}

TEST(MgSolver, TracedRunMatchesNativeAndCountsAccesses) {
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  MgOptions o;
  o.lt = 3;
  MgSolver nat(o), sim(o, &h);
  nat.setup();
  sim.setup();
  EXPECT_EQ(nat.iterate(), sim.iterate());
  EXPECT_GT(h.stats().l1.accesses, 0u);
  EXPECT_GT(sim.flops(), 0u);
}

TEST(MgSolver, RejectsBadLevels) {
  MgOptions o;
  o.lt = 1;
  EXPECT_THROW(MgSolver s(o), std::invalid_argument);
  o.lt = 4;
  o.lb = 4;
  EXPECT_THROW(MgSolver s(o), std::invalid_argument);
}

}  // namespace
}  // namespace rt::multigrid
