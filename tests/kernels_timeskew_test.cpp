// Time-skewed Jacobi must be bitwise equal to the plain ping-pong sweeps
// for any block size and step count.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/kernels/timeskew.hpp"

namespace rt::kernels {
namespace {

using rt::array::Array3D;

Array3D<double> make_grid(long n, long kd, double seed) {
  Array3D<double> a(n, n, kd);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i)
        a(i, j, k) = std::cos(seed + 0.05 * i + 0.11 * j + 0.23 * k);
  return a;
}

struct Cfg {
  long n, kd, bk;
  int tsteps;
};

class TimeSkew : public ::testing::TestWithParam<Cfg> {};

TEST_P(TimeSkew, BitwiseEqualToPingPong) {
  const auto [n, kd, bk, tsteps] = GetParam();
  Array3D<double> b1 = make_grid(n, kd, 0.7), b2 = b1;
  Array3D<double> a1(n, n, kd), a2(n, n, kd);
  jacobi3d_pingpong(a1, b1, 1.0 / 6.0, tsteps);
  jacobi3d_timeskew(a2, b2, 1.0 / 6.0, tsteps, bk);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) {
        ASSERT_EQ(a1(i, j, k), a2(i, j, k)) << i << "," << j << "," << k;
        ASSERT_EQ(b1(i, j, k), b2(i, j, k)) << i << "," << j << "," << k;
      }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TimeSkew,
    ::testing::Values(Cfg{10, 10, 1, 1}, Cfg{10, 10, 1, 4}, Cfg{10, 10, 2, 3},
                      Cfg{10, 10, 3, 5}, Cfg{10, 10, 8, 2}, Cfg{10, 10, 100, 6},
                      Cfg{12, 9, 2, 7}, Cfg{8, 16, 4, 4}, Cfg{8, 16, 5, 3},
                      Cfg{16, 8, 3, 8}, Cfg{9, 33, 6, 5}));

/// Fully non-cubic grids (n1 != n2 != n3) and the minimum 3^3 grid: the
/// skewed K-block bounds and the plane sweeps must use the right extent
/// for each dimension independently.
struct Shape {
  long n1, n2, n3, bk;
  int tsteps;
};

class TimeSkewShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(TimeSkewShapes, BitwiseEqualToPingPong) {
  const auto [n1, n2, n3, bk, tsteps] = GetParam();
  Array3D<double> b1(n1, n2, n3), a1(n1, n2, n3), a2(n1, n2, n3);
  for (long k = 0; k < n3; ++k)
    for (long j = 0; j < n2; ++j)
      for (long i = 0; i < n1; ++i)
        b1(i, j, k) = std::cos(0.7 + 0.05 * i + 0.11 * j + 0.23 * k);
  Array3D<double> b2 = b1;
  jacobi3d_pingpong(a1, b1, 1.0 / 6.0, tsteps);
  jacobi3d_timeskew(a2, b2, 1.0 / 6.0, tsteps, bk);
  for (long k = 0; k < n3; ++k)
    for (long j = 0; j < n2; ++j)
      for (long i = 0; i < n1; ++i) {
        ASSERT_EQ(a1(i, j, k), a2(i, j, k)) << i << "," << j << "," << k;
        ASSERT_EQ(b1(i, j, k), b2(i, j, k)) << i << "," << j << "," << k;
      }
}

INSTANTIATE_TEST_SUITE_P(
    NonCubicAndMinimum, TimeSkewShapes,
    ::testing::Values(Shape{3, 3, 3, 1, 1},   // single interior point
                      Shape{3, 3, 3, 2, 5},   // multi-step on minimum grid
                      Shape{3, 3, 3, 100, 3},
                      Shape{3, 9, 6, 2, 4}, Shape{9, 3, 6, 2, 4},
                      Shape{6, 9, 3, 2, 6},   // one interior plane
                      Shape{7, 12, 20, 3, 5}, Shape{20, 7, 12, 4, 3},
                      Shape{11, 5, 31, 6, 7}));

/// Exhaustive boundary-clamping sweep (regression for the bk/tsteps audit):
/// every small cube n = 3..10 against block sizes that tickle each clamp —
/// bk = 1 (minimum), bk = n-2 (exactly the interior), bk = n+7 (exceeds the
/// interior, and never divides n-2) — across tsteps = 1..bk+2 so the skew
/// both under- and over-runs the block count.
TEST(TimeSkew, ExhaustiveSmallShapesAndBlockClamps) {
  for (long n = 3; n <= 10; ++n) {
    for (long bk : {1L, n - 2, n + 7}) {
      for (int tsteps = 1; tsteps <= static_cast<int>(bk) + 2; ++tsteps) {
        Array3D<double> b1 = make_grid(n, n, 0.2 * static_cast<double>(n)),
                        b2 = b1;
        Array3D<double> a1(n, n, n), a2(n, n, n);
        jacobi3d_pingpong(a1, b1, 1.0 / 6.0, tsteps);
        jacobi3d_timeskew(a2, b2, 1.0 / 6.0, tsteps, bk);
        for (long k = 0; k < n; ++k)
          for (long j = 0; j < n; ++j)
            for (long i = 0; i < n; ++i) {
              ASSERT_EQ(a1(i, j, k), a2(i, j, k))
                  << "n=" << n << " bk=" << bk << " tsteps=" << tsteps << " @ "
                  << i << "," << j << "," << k;
              ASSERT_EQ(b1(i, j, k), b2(i, j, k))
                  << "n=" << n << " bk=" << bk << " tsteps=" << tsteps << " @ "
                  << i << "," << j << "," << k;
            }
      }
    }
  }
}

/// bk <= 0 used to hang: the block loop advanced by bk and never
/// terminated.  It is now clamped to 1, so the result must still match the
/// reference (and the test must return at all).
TEST(TimeSkew, NonPositiveBlockIsClampedNotHung) {
  for (long bk : {0L, -1L, -100L}) {
    Array3D<double> b1 = make_grid(8, 8, 0.9), b2 = b1;
    Array3D<double> a1(8, 8, 8), a2(8, 8, 8);
    jacobi3d_pingpong(a1, b1, 1.0 / 6.0, 3);
    jacobi3d_timeskew(a2, b2, 1.0 / 6.0, 3, bk);
    for (long k = 0; k < 8; ++k)
      for (long j = 0; j < 8; ++j)
        for (long i = 0; i < 8; ++i) {
          ASSERT_EQ(a1(i, j, k), a2(i, j, k)) << "bk=" << bk;
          ASSERT_EQ(b1(i, j, k), b2(i, j, k)) << "bk=" << bk;
        }
  }
}

/// tsteps <= 0 is a no-op: no array may change (previously the skewed loop
/// could still enter stages for tsteps = 0 block offsets).
TEST(TimeSkew, NonPositiveStepsIsNoOp) {
  for (int tsteps : {0, -1, -5}) {
    Array3D<double> b1 = make_grid(7, 7, 0.4), b2 = b1;
    Array3D<double> a1(7, 7, 7), a2 = a1;
    jacobi3d_timeskew(a2, b2, 1.0 / 6.0, tsteps, 2);
    for (long k = 0; k < 7; ++k)
      for (long j = 0; j < 7; ++j)
        for (long i = 0; i < 7; ++i) {
          ASSERT_EQ(a1(i, j, k), a2(i, j, k)) << "tsteps=" << tsteps;
          ASSERT_EQ(b1(i, j, k), b2(i, j, k)) << "tsteps=" << tsteps;
        }
  }
}

TEST(TimeSkew, SingleStepEqualsOneSweep) {
  Array3D<double> b1 = make_grid(12, 12, 0.3), b2 = b1;
  Array3D<double> a1(12, 12, 12), a2(12, 12, 12);
  jacobi3d_pingpong(a1, b1, 0.25, 1);
  jacobi3d_timeskew(a2, b2, 0.25, 1, 3);
  for (long k = 1; k < 11; ++k)
    for (long j = 1; j < 11; ++j)
      for (long i = 1; i < 11; ++i) ASSERT_EQ(a1(i, j, k), a2(i, j, k));
}

}  // namespace
}  // namespace rt::kernels
