// Randomized stress: many (dims, tile, kernel) combinations drawn from a
// seeded PRNG — tiled execution must always match the reference bitwise
// and planner outputs must always verify, whatever the shape.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/core/conflict.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/kernels/timeskew.hpp"

namespace rt {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::IterTile;

struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  long in(long lo, long hi) {  // inclusive
    return lo + static_cast<long>(next() % static_cast<std::uint64_t>(
                                               hi - lo + 1));
  }
};

Array3D<double> rand_grid(Rng& rng, const Dims3& d) {
  Array3D<double> a(d);
  for (long k = 0; k < d.n3; ++k)
    for (long j = 0; j < d.n2; ++j)
      for (long i = 0; i < d.n1; ++i)
        a(i, j, k) = static_cast<double>(rng.next() % 1000) / 500.0 - 1.0;
  return a;
}

bool interiors_equal(const Array3D<double>& a, const Array3D<double>& b) {
  for (long k = 0; k < a.n3(); ++k)
    for (long j = 0; j < a.n2(); ++j)
      for (long i = 0; i < a.n1(); ++i)
        if (a(i, j, k) != b(i, j, k)) return false;
  return true;
}

class RandomStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStress, JacobiTiledPaddedEquals) {
  Rng rng{GetParam() * 1234567 + 17};
  for (int round = 0; round < 6; ++round) {
    const long n1 = rng.in(4, 24), n2 = rng.in(4, 24), n3 = rng.in(4, 16);
    const Dims3 d = Dims3::padded(n1, n2, n3, n1 + rng.in(0, 9),
                                  n2 + rng.in(0, 9));
    const IterTile t{rng.in(1, 30), rng.in(1, 30)};
    Array3D<double> b = rand_grid(rng, d);
    Array3D<double> x(d), y(d);
    kernels::jacobi3d(x, b, 1.0 / 6.0);
    kernels::jacobi3d_tiled(y, b, 1.0 / 6.0, t);
    ASSERT_TRUE(interiors_equal(x, y))
        << "dims " << n1 << "x" << n2 << "x" << n3 << " tile (" << t.ti
        << "," << t.tj << ")";
  }
}

TEST_P(RandomStress, RedBlackTiledEquals) {
  Rng rng{GetParam() * 7654321 + 3};
  for (int round = 0; round < 5; ++round) {
    const long n1 = rng.in(4, 20), n2 = rng.in(4, 20), n3 = rng.in(4, 14);
    const IterTile t{rng.in(1, 24), rng.in(1, 24)};
    const Dims3 d = Dims3::unpadded(n1, n2, n3);
    Array3D<double> a = rand_grid(rng, d);
    Array3D<double> b = a;
    kernels::redblack_naive(a, 0.4, 0.1);
    kernels::redblack_tiled(b, 0.4, 0.1, t);
    ASSERT_TRUE(interiors_equal(a, b))
        << "dims " << n1 << "x" << n2 << "x" << n3 << " tile (" << t.ti
        << "," << t.tj << ")";
  }
}

TEST_P(RandomStress, ResidTiledEquals) {
  Rng rng{GetParam() * 24680 + 5};
  for (int round = 0; round < 5; ++round) {
    const long n1 = rng.in(4, 20), n2 = rng.in(4, 20), n3 = rng.in(4, 12);
    const IterTile t{rng.in(1, 24), rng.in(1, 24)};
    const Dims3 d = Dims3::padded(n1, n2, n3, n1 + rng.in(0, 5),
                                  n2 + rng.in(0, 5));
    Array3D<double> v = rand_grid(rng, d), u = rand_grid(rng, d);
    Array3D<double> r1(d), r2(d);
    kernels::resid(r1, v, u, kernels::nas_mg_a());
    kernels::resid_tiled(r2, v, u, kernels::nas_mg_a(), t);
    ASSERT_TRUE(interiors_equal(r1, r2));
  }
}

TEST_P(RandomStress, TimeSkewEquals) {
  Rng rng{GetParam() * 1357 + 11};
  for (int round = 0; round < 4; ++round) {
    const long n = rng.in(5, 16), kd = rng.in(5, 20);
    const long bk = rng.in(1, 12);
    const int ts = static_cast<int>(rng.in(1, 6));
    const Dims3 d = Dims3::unpadded(n, n, kd);
    Array3D<double> b1 = rand_grid(rng, d), b2 = b1;
    Array3D<double> a1(d), a2(d);
    kernels::jacobi3d_pingpong(a1, b1, 0.2, ts);
    kernels::jacobi3d_timeskew(a2, b2, 0.2, ts, bk);
    ASSERT_TRUE(interiors_equal(a1, a2) && interiors_equal(b1, b2))
        << "n=" << n << " kd=" << kd << " bk=" << bk << " ts=" << ts;
  }
}

TEST_P(RandomStress, PlannerAlwaysConflictFree) {
  Rng rng{GetParam() * 9999 + 1};
  const auto spec = core::StencilSpec::jacobi3d();
  for (int round = 0; round < 10; ++round) {
    const long di = rng.in(16, 900), dj = rng.in(16, 900);
    for (core::Transform tr :
         {core::Transform::kEuc3d, core::Transform::kGcdPad,
          core::Transform::kPad}) {
      const auto p = core::plan_for(tr, 2048, di, dj, spec);
      if (!p.tiled) continue;  // legitimate fallback (e.g. aliasing planes)
      ASSERT_TRUE(core::is_conflict_free(2048, p.dip, p.djp,
                                         p.tile.ti + spec.trim_i,
                                         p.tile.tj + spec.trim_j, spec.atd))
          << core::transform_name(tr) << " di=" << di << " dj=" << dj;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStress,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace rt
