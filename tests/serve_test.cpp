// End-to-end tests of the rt::serve solve server: protocol correctness
// (including hostile inputs), bit-identity of served results against
// direct kernel/solver computation, batching semantics, admission-queue
// overload rejection, per-request deadlines with watchdog abandonment,
// arena recycling, rt::tune plan-store pinning, and graceful drain.
//
// Every test runs a real Server on an ephemeral loopback port and talks
// to it over actual sockets — the same path production clients take.
// The TSan gate builds and runs this whole binary, which is what makes
// the server's locking story a tested claim rather than a comment.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rt/core/cache_topology.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/guard/status.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/mg_solver.hpp"
#include "rt/multigrid/sor_solver.hpp"
#include "rt/serve/client.hpp"
#include "rt/serve/protocol.hpp"
#include "rt/serve/server.hpp"
#include "rt/tune/plan_store.hpp"

namespace rt::serve {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::guard::Status;
using rt::obs::JsonValue;

constexpr long kCs = 2048;  ///< fixed planning cache size for determinism

ServerOptions base_options() {
  ServerOptions o;
  o.cs_elems = kCs;
  return o;
}

JsonValue solve_req(long long id, const std::string& kernel, long n,
                    int tsteps = 2, const std::string& transform = "gcdpad") {
  JsonValue r = JsonValue::object();
  r.set("id", id);
  r.set("op", "solve");
  r.set("kernel", kernel);
  r.set("n", n);
  r.set("tsteps", tsteps);
  r.set("transform", transform);
  return r;
}

std::string field(const JsonValue& doc, const std::string& key) {
  const JsonValue* v = doc.find(key);
  return v ? v->as_string() : std::string();
}

/// The runner's deterministic init, replicated so the test computes its
/// reference grids exactly the way the batch binaries (and the server) do.
void init_grid(Array3D<double>& a, double scale) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        a(i, j, k) = scale * (0.001 * static_cast<double>(i) +
                              0.002 * static_cast<double>(j) +
                              0.003 * static_cast<double>(k));
      }
    }
  }
}

/// Direct (no server) reference checksum for a kernel request — the
/// batch-binary computation: plan, padded arrays, runner init, tsteps
/// steps, checksum of the result grid's logical region.
std::string reference_kernel_checksum(ServeKernel kernel, long n, int tsteps,
                                      rt::core::Transform tr) {
  const rt::kernels::KernelId id = kernel == ServeKernel::kJacobi
                                       ? rt::kernels::KernelId::kJacobi
                                   : kernel == ServeKernel::kRedBlack
                                       ? rt::kernels::KernelId::kRedBlack
                                       : rt::kernels::KernelId::kResid;
  const rt::core::StencilSpec& spec = rt::kernels::kernel_info(id).spec;
  const rt::core::PlanReport rep =
      rt::core::plan_for_checked(tr, kCs, n, n, spec, n);
  const Dims3 dims = Dims3::padded(n, n, n, rep.plan.dip, rep.plan.djp);
  std::vector<Array3D<double>> arrays;
  for (int i = 0; i < rt::kernels::kernel_info(id).num_arrays; ++i) {
    arrays.emplace_back(dims);
    init_grid(arrays.back(), 1.0 / (1.0 + i));
  }
  for (int t = 0; t < tsteps; ++t) {
    switch (kernel) {
      case ServeKernel::kJacobi:
        if (rep.plan.tiled) {
          rt::kernels::jacobi3d_tiled(arrays[0], arrays[1], 1.0 / 6.0,
                                      rep.plan.tile);
        } else {
          rt::kernels::jacobi3d(arrays[0], arrays[1], 1.0 / 6.0);
        }
        rt::kernels::copy_interior(arrays[1], arrays[0]);
        break;
      case ServeKernel::kRedBlack:
        if (rep.plan.tiled) {
          rt::kernels::redblack_tiled(arrays[0], 0.4, 0.1, rep.plan.tile);
        } else {
          rt::kernels::redblack_naive(arrays[0], 0.4, 0.1);
        }
        break;
      default:
        if (rep.plan.tiled) {
          rt::kernels::resid_tiled(arrays[0], arrays[1], arrays[2],
                                   rt::kernels::nas_mg_a(), rep.plan.tile);
        } else {
          rt::kernels::resid(arrays[0], arrays[1], arrays[2],
                             rt::kernels::nas_mg_a());
        }
        break;
    }
  }
  return checksum_hex(checksum_region(arrays[0]));
}

class ServeFixture : public ::testing::Test {
 protected:
  void TearDown() override {
    rt::guard::FaultInjector::instance().disarm_all();
  }

  Client connect_to(const Server& s) {
    rt::guard::Expected<Client> c = Client::connect(s.port());
    EXPECT_TRUE(c.ok()) << c.detail();
    return std::move(c.value());
  }
};

TEST_F(ServeFixture, StartPingStatsStopAndIdempotentStop) {
  Server server(base_options());
  std::string why;
  ASSERT_EQ(server.start(&why), Status::kOk) << why;
  ASSERT_GT(server.port(), 0);

  Client c = connect_to(server);
  JsonValue ping = JsonValue::object();
  ping.set("id", 7);
  ping.set("op", "ping");
  rt::guard::Expected<JsonValue> resp = c.call(ping);
  ASSERT_TRUE(resp.ok()) << resp.detail();
  EXPECT_EQ(field(resp.value(), "status"), "ok");
  EXPECT_EQ(resp.value().find("id")->as_int(), 7);

  JsonValue stats = JsonValue::object();
  stats.set("op", "stats");
  resp = c.call(stats);
  ASSERT_TRUE(resp.ok()) << resp.detail();
  const JsonValue* st = resp.value().find("stats");
  ASSERT_NE(st, nullptr);
  EXPECT_GE(st->find("connections")->as_int(), 1);

  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  // A stopped server refuses new connections.
  EXPECT_FALSE(Client::connect(server.port()).ok());
}

TEST_F(ServeFixture, ServedKernelChecksumsMatchDirectComputation) {
  Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);
  long long id = 0;
  for (const char* tr : {"gcdpad", "orig", "tile"}) {
    rt::core::Transform tre{};
    ASSERT_TRUE(parse_transform_token(tr, &tre));
    for (const auto& [name, kernel] :
         std::map<std::string, ServeKernel>{
             {"JACOBI", ServeKernel::kJacobi},
             {"REDBLACK", ServeKernel::kRedBlack},
             {"RESID", ServeKernel::kResid}}) {
      JsonValue req = solve_req(++id, name, 20, 2, tr);
      req.set("k", 20);
      rt::guard::Expected<JsonValue> resp = c.call(req);
      ASSERT_TRUE(resp.ok()) << resp.detail();
      ASSERT_EQ(field(resp.value(), "status"), "ok")
          << name << "/" << tr << ": " << field(resp.value(), "detail");
      EXPECT_EQ(field(resp.value(), "checksum"),
                reference_kernel_checksum(kernel, 20, 2, tre))
          << name << "/" << tr;
    }
  }
  server.stop();
}

TEST_F(ServeFixture, ServedAppsMatchDirectSolvers) {
  Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);

  // MGRID: n = 18 = 2^4 + 2; reference is MgSolver with the same options
  // the server builds (plan from the same planner inputs, same seed).
  {
    rt::guard::Expected<JsonValue> resp =
        c.call(solve_req(1, "MGRID", 18, 2));
    ASSERT_TRUE(resp.ok()) << resp.detail();
    ASSERT_EQ(field(resp.value(), "status"), "ok")
        << field(resp.value(), "detail");

    const rt::core::StencilSpec& spec =
        rt::kernels::kernel_info(rt::kernels::KernelId::kResid).spec;
    rt::multigrid::MgOptions mo;
    mo.lt = 4;
    mo.resid_plan =
        rt::core::plan_for_checked(rt::core::Transform::kGcdPad, kCs, 18, 18,
                                   spec, 18)
            .plan;
    mo.seed = 42;  // protocol default
    rt::multigrid::MgSolver ref(mo);
    ref.setup();
    ref.iterate();
    ref.iterate();
    EXPECT_EQ(field(resp.value(), "checksum"),
              checksum_hex(checksum_region(ref.u())));
    EXPECT_EQ(resp.value().find("iters")->as_int(), 2);
  }

  // SOR: plan comes from the red-black spec.
  {
    rt::guard::Expected<JsonValue> resp = c.call(solve_req(2, "SOR", 20, 5));
    ASSERT_TRUE(resp.ok()) << resp.detail();
    ASSERT_EQ(field(resp.value(), "status"), "ok")
        << field(resp.value(), "detail");

    const rt::core::StencilSpec& spec =
        rt::kernels::kernel_info(rt::kernels::KernelId::kRedBlack).spec;
    rt::multigrid::SorOptions so;
    so.n = 20;
    so.plan = rt::core::plan_for_checked(rt::core::Transform::kGcdPad, kCs,
                                         20, 20, spec, 20)
                  .plan;
    rt::multigrid::SorSolver ref(so);
    ref.setup(42);
    const int sweeps = ref.solve(0.0, 5);
    EXPECT_EQ(field(resp.value(), "checksum"),
              checksum_hex(checksum_region(ref.u())));
    EXPECT_EQ(resp.value().find("iters")->as_int(), sweeps);
  }
  server.stop();
}

TEST_F(ServeFixture, SolverThreadsProduceBitIdenticalResults) {
  ServerOptions multi = base_options();
  multi.solver_threads = 4;
  Server s1(base_options()), s4(multi);
  ASSERT_EQ(s1.start(), Status::kOk);
  ASSERT_EQ(s4.start(), Status::kOk);
  Client c1 = connect_to(s1), c4 = connect_to(s4);
  for (const char* kernel : {"JACOBI", "REDBLACK", "RESID", "MGRID", "SOR"}) {
    const long n = std::string(kernel) == "MGRID" ? 18 : 24;
    rt::guard::Expected<JsonValue> r1 = c1.call(solve_req(1, kernel, n));
    rt::guard::Expected<JsonValue> r4 = c4.call(solve_req(1, kernel, n));
    ASSERT_TRUE(r1.ok() && r4.ok());
    ASSERT_EQ(field(r1.value(), "status"), "ok") << kernel;
    ASSERT_EQ(field(r4.value(), "status"), "ok") << kernel;
    EXPECT_EQ(field(r1.value(), "checksum"), field(r4.value(), "checksum"))
        << kernel << ": parallel solve must be bit-identical to serial";
  }
  s1.stop();
  s4.stop();
}

TEST_F(ServeFixture, BatchedResultsBitIdenticalToSingleRequest) {
  ServerOptions opts = base_options();
  opts.executors = 1;  // one consumer => queued requests coalesce
  opts.batch_max = 8;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);

  // Wedge the executor deterministically: the priming request hits a
  // one-shot injected hang, so everything sent after it is guaranteed to
  // be sitting in the admission queue when the executor is released.
  rt::guard::FaultInjector::instance().arm(rt::guard::FaultKind::kHang, 0, 1);
  ASSERT_EQ(c.send(solve_req(100, "JACOBI", 12, 1)), Status::kOk);
  // Six same-shape JACOBIs: four identical (dedup candidates) and two with
  // different tsteps (same BatchKey, different group).
  for (long long id = 1; id <= 4; ++id) {
    ASSERT_EQ(c.send(solve_req(id, "JACOBI", 20, 2)), Status::kOk);
  }
  ASSERT_EQ(c.send(solve_req(5, "JACOBI", 20, 3)), Status::kOk);
  ASSERT_EQ(c.send(solve_req(6, "JACOBI", 20, 3)), Status::kOk);

  // Wait until all seven are admitted, then release the wedged executor.
  bool admitted = false;
  for (int i = 0; i < 500 && !admitted; ++i) {
    admitted = server.stats_json().find("admitted")->as_int() == 7;
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(admitted) << server.stats_json().dump(2);
  rt::guard::FaultInjector::instance().cancel_hangs();

  std::map<long long, JsonValue> by_id;
  for (int i = 0; i < 7; ++i) {
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    by_id[resp.find("id")->as_int()] = resp;
  }
  const std::string ref2 = reference_kernel_checksum(
      ServeKernel::kJacobi, 20, 2, rt::core::Transform::kGcdPad);
  const std::string ref3 = reference_kernel_checksum(
      ServeKernel::kJacobi, 20, 3, rt::core::Transform::kGcdPad);
  for (long long id = 1; id <= 4; ++id) {
    ASSERT_EQ(field(by_id[id], "status"), "ok") << id;
    EXPECT_EQ(field(by_id[id], "checksum"), ref2) << id;
  }
  for (long long id = 5; id <= 6; ++id) {
    ASSERT_EQ(field(by_id[id], "status"), "ok") << id;
    EXPECT_EQ(field(by_id[id], "checksum"), ref3) << id;
  }
  ASSERT_EQ(field(by_id[100], "status"), "ok");

  // All six JACOBIs were queued when the executor was released, so they
  // ran as ONE batch of 6 with two dedup groups (4 + 2 shared members).
  const JsonValue stats = server.stats_json();
  const JsonValue* batching = stats.find("batching");
  ASSERT_NE(batching, nullptr);
  EXPECT_EQ(batching->find("max_batch")->as_int(), 6) << stats.dump(2);
  EXPECT_EQ(batching->find("dedup_shared")->as_int(), 4) << stats.dump(2);
  server.stop();
}

TEST_F(ServeFixture, OverloadRejectionIsTypedAndImmediate) {
  ServerOptions opts = base_options();
  opts.executors = 1;
  opts.queue_depth = 1;
  opts.batching = false;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);

  // Wedge the executor on the first request (one-shot injected hang); with
  // queue_depth 1, exactly one follower is admitted and the other four are
  // rejected "overloaded" immediately — the rejections arrive while the
  // executor is still stuck, which is the whole point of bounded admission.
  rt::guard::FaultInjector::instance().arm(rt::guard::FaultKind::kHang, 0, 1);
  ASSERT_EQ(c.send(solve_req(1, "JACOBI", 12, 1)), Status::kOk);
  // Wait until the executor has popped the head and is wedged inside it —
  // only then is the queue guaranteed empty for the followers.
  bool wedged = false;
  for (int i = 0; i < 500 && !wedged; ++i) {
    wedged =
        rt::guard::FaultInjector::instance().fired(rt::guard::FaultKind::kHang) >= 1;
    if (!wedged) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(wedged);
  for (long long id = 2; id <= 6; ++id) {
    ASSERT_EQ(c.send(solve_req(id, "JACOBI", 12, 1)), Status::kOk);
  }
  int overloaded = 0;
  for (int i = 0; i < 4; ++i) {  // the four rejections arrive first
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "overloaded");
    EXPECT_NE(field(resp, "detail").find("full"), std::string::npos);
    ++overloaded;
  }
  rt::guard::FaultInjector::instance().cancel_hangs();
  int ok = 0;
  for (int i = 0; i < 2; ++i) {  // wedged head + the one queued follower
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "ok");
    ++ok;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(overloaded, 4);
  const JsonValue stats = server.stats_json();
  EXPECT_EQ(stats.find("rejected_overloaded")->as_int(), 4);
  server.stop();
}

TEST_F(ServeFixture, HostileInputsGetTypedErrorsNeverCrashes) {
  Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);

  {  // Bad JSON in a well-formed frame: typed error, connection survives.
    Client c = connect_to(server);
    const std::string junk = "{this is not json";
    ASSERT_EQ(write_frame(c.fd(), junk), Status::kOk);
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "invalid_argument");
    EXPECT_NE(field(resp, "detail").find("bad JSON"), std::string::npos);
    // Framing was intact, so the same connection still serves requests.
    JsonValue ping = JsonValue::object();
    ping.set("op", "ping");
    rt::guard::Expected<JsonValue> pong = c.call(ping);
    ASSERT_TRUE(pong.ok()) << pong.detail();
    EXPECT_EQ(field(pong.value(), "status"), "ok");
  }

  {  // Unknown kernel.
    Client c = connect_to(server);
    rt::guard::Expected<JsonValue> resp = c.call(solve_req(1, "FFT", 20));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(field(resp.value(), "status"), "invalid_argument");
    EXPECT_NE(field(resp.value(), "detail").find("kernel"),
              std::string::npos);
  }

  {  // n*n*k overflow: typed kOverflow before any allocation.
    Client c = connect_to(server);
    rt::guard::Expected<JsonValue> resp =
        c.call(solve_req(2, "JACOBI", 3'000'000));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(field(resp.value(), "status"), "overflow");
  }

  {  // Missing n, undersized n, policy-capped n.
    Client c = connect_to(server);
    JsonValue req = JsonValue::object();
    req.set("op", "solve");
    req.set("kernel", "JACOBI");
    rt::guard::Expected<JsonValue> resp = c.call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(field(resp.value(), "status"), "invalid_argument");
    resp = c.call(solve_req(3, "JACOBI", 2));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(field(resp.value(), "status"), "invalid_argument");
    resp = c.call(solve_req(4, "JACOBI", 4096));  // > max_n policy
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(field(resp.value(), "status"), "invalid_argument");
    EXPECT_NE(field(resp.value(), "detail").find("limit"),
              std::string::npos);
  }

  {  // Oversized length prefix: typed rejection, then the server hangs up
     // (the unread payload makes the stream unrecoverable).
    Client c = connect_to(server);
    const unsigned char prefix[4] = {0x7f, 0xff, 0xff, 0xff};
    ASSERT_EQ(c.send_raw(prefix, 4), Status::kOk);
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "invalid_argument");
    EXPECT_NE(field(resp, "detail").find("exceeds"), std::string::npos);
    EXPECT_NE(c.recv(&resp, &why), Status::kOk);  // closed
  }

  const std::uint64_t errors_before =
      static_cast<std::uint64_t>(server.stats_json()
                                     .find("protocol_errors")
                                     ->as_int());
  {  // Truncated length prefix: half a prefix, then EOF.
    Client c = connect_to(server);
    const unsigned char half[2] = {0x00, 0x00};
    ASSERT_EQ(c.send_raw(half, 2), Status::kOk);
    c.close();
  }
  // The handler notices asynchronously; poll the counter briefly.
  bool counted = false;
  for (int i = 0; i < 100 && !counted; ++i) {
    counted = static_cast<std::uint64_t>(server.stats_json()
                                             .find("protocol_errors")
                                             ->as_int()) > errors_before;
    if (!counted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(counted) << "truncated prefix was not counted";
  server.stop();
}

TEST_F(ServeFixture, DeadlineTimeoutAbandonsAndServerStaysHealthy) {
  ServerOptions opts = base_options();
  opts.executors = 1;
  opts.watchdog_grace_ms = 0;  // force abandonment on timeout
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);

  // Wedge the solve with an injected hang; the per-request deadline fires,
  // the watchdog cancels the hang and abandons the worker (zero grace).
  // The grid is sized so the woken worker has milliseconds of sweeps left —
  // it cannot beat the watchdog's immediate post-cancel done-check, so the
  // outcome is deterministically "abandoned", not "finished in the grace".
  rt::guard::FaultInjector::instance().arm(rt::guard::FaultKind::kHang);
  JsonValue req = solve_req(1, "JACOBI", 128, 4);
  req.set("deadline_ms", 150);
  rt::guard::Expected<JsonValue> resp = c.call(req);
  ASSERT_TRUE(resp.ok()) << resp.detail();
  EXPECT_EQ(field(resp.value(), "status"), "timeout");

  // The abandoned worker finished after cancel_hangs; its context must
  // drain (weak_ptr expires) and the loss must be visible in stats.
  bool drained = false;
  for (int i = 0; i < 200 && !drained; ++i) {
    const JsonValue stats = server.stats_json();
    const JsonValue* ab = stats.find("abandonment");
    ASSERT_NE(ab, nullptr);
    EXPECT_GE(ab->find("abandoned_threads")->as_int(), 1);
    EXPECT_GE(ab->find("abandoned_batches")->as_int(), 1);
    drained = ab->find("abandoned_in_flight")->as_int() == 0;
    if (!drained) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(drained) << "abandoned context never expired";

  // Regression core: the server keeps serving correct results afterwards
  // (the watchdog disarmed the injected hang when it cancelled it).
  resp = c.call(solve_req(2, "JACOBI", 20, 2));
  ASSERT_TRUE(resp.ok()) << resp.detail();
  ASSERT_EQ(field(resp.value(), "status"), "ok")
      << field(resp.value(), "detail");
  EXPECT_EQ(field(resp.value(), "checksum"),
            reference_kernel_checksum(ServeKernel::kJacobi, 20, 2,
                                      rt::core::Transform::kGcdPad));
  server.stop();
}

TEST_F(ServeFixture, ArenaRecyclesBuffersAcrossRequests) {
  Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);
  // Buffers go back to the arena after the response is written, so wait
  // for the return between requests — otherwise the next acquire can race
  // the previous release and read as a miss.
  auto arena_quiesced = [&server] {
    for (int i = 0; i < 200; ++i) {
      const JsonValue s = server.stats_json();
      const JsonValue* a = s.find("arena");
      if (a->find("returns")->as_int() ==
          a->find("hits")->as_int() + a->find("misses")->as_int()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };
  for (long long id = 1; id <= 3; ++id) {
    rt::guard::Expected<JsonValue> resp = c.call(solve_req(id, "JACOBI", 20));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(field(resp.value(), "status"), "ok");
    ASSERT_TRUE(arena_quiesced()) << "arena never returned the buffers";
  }
  const JsonValue stats = server.stats_json();
  const JsonValue* arena = stats.find("arena");
  ASSERT_NE(arena, nullptr);
  // Request 1 misses (2 fresh buffers), requests 2 and 3 recycle them.
  EXPECT_GE(arena->find("hits")->as_int(), 4);
  EXPECT_EQ(arena->find("returns")->as_int(),
            arena->find("hits")->as_int() + arena->find("misses")->as_int());
  const JsonValue* pc = stats.find("plan_cache");
  ASSERT_NE(pc, nullptr);
  EXPECT_GE(pc->find("hits")->as_int(), 2);  // one plan lookup per request
  server.stop();
}

TEST_F(ServeFixture, PlanStorePinnedWinnersServeBatches) {
  // Persist a tuned winner for exactly the (transform, cs, n, n, spec, k)
  // key the server will look up, then check the lookup was served pinned.
  const std::string path =
      ::testing::TempDir() + "rt_serve_store_test.json";
  const rt::core::StencilSpec& spec =
      rt::kernels::kernel_info(rt::kernels::KernelId::kJacobi).spec;
  rt::tune::PlanStore store;
  store.fingerprint = rt::core::host_cache_topology().fingerprint();
  rt::tune::StoreEntry e;
  e.key.kernel = "JACOBI";
  e.key.n = 20;
  e.key.n3 = 20;
  e.key.transform = rt::core::Transform::kGcdPad;
  e.plan_key = rt::core::PlanCache::make_key(rt::core::Transform::kGcdPad,
                                             kCs, 20, 20, spec, 20);
  e.plan = rt::core::plan_for_checked(rt::core::Transform::kGcdPad, kCs, 20,
                                      20, spec, 20)
               .plan;
  e.origin = "tuned";
  store.put(e);
  ASSERT_EQ(rt::tune::save_store(store, path), Status::kOk);

  ServerOptions opts = base_options();
  opts.plan_store = path;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  EXPECT_EQ(server.plan_store_status(), Status::kOk);
  Client c = connect_to(server);
  rt::guard::Expected<JsonValue> resp = c.call(solve_req(1, "JACOBI", 20));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(field(resp.value(), "status"), "ok");
  const JsonValue stats = server.stats_json();
  EXPECT_GE(stats.find("plan_cache")->find("pinned_hits")->as_int(), 1);
  server.stop();
  std::remove(path.c_str());
}

TEST_F(ServeFixture, GracefulDrainAnswersEverythingThenRefuses) {
  ServerOptions opts = base_options();
  opts.executors = 2;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);
  constexpr int kN = 8;
  for (long long id = 1; id <= kN; ++id) {
    ASSERT_EQ(c.send(solve_req(id, "JACOBI", 16, 1)), Status::kOk);
  }
  int answered = 0;
  for (int i = 0; i < kN; ++i) {
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    const std::string st = field(resp, "status");
    EXPECT_TRUE(st == "ok" || st == "overloaded") << st;
    ++answered;
  }
  EXPECT_EQ(answered, kN);
  server.stop();
  // Post-drain: connection is gone and new connections are refused.
  JsonValue resp;
  std::string why;
  EXPECT_NE(c.recv(&resp, &why), Status::kOk);
  EXPECT_FALSE(Client::connect(server.port()).ok());
}

// ---------------------------------------------------------------------------
// Resilience layer (PR 9): client timeouts, health op, watermark hints,
// supervisor respawn + circuit breaker, chaos injection at the frame layer.
// ---------------------------------------------------------------------------

TEST_F(ServeFixture, HealthOpReportsHealthyAndReady) {
  ServerOptions opts = base_options();
  opts.executors = 2;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);

  JsonValue req = JsonValue::object();
  req.set("id", 3);
  req.set("op", "health");
  rt::guard::Expected<JsonValue> resp = c.call(req);
  ASSERT_TRUE(resp.ok()) << resp.detail();
  EXPECT_EQ(field(resp.value(), "status"), "ok");
  EXPECT_EQ(resp.value().find("id")->as_int(), 3);
  const JsonValue* h = resp.value().find("health");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("state")->as_string(), "healthy");
  EXPECT_TRUE(h->find("ready")->as_bool());
  EXPECT_EQ(h->find("executors_live")->as_int(), 2);
  EXPECT_EQ(h->find("executors_retired")->as_int(), 0);
  const JsonValue* br = h->find("breaker");
  ASSERT_NE(br, nullptr);
  EXPECT_FALSE(br->find("open")->as_bool());
  server.stop();
}

TEST_F(ServeFixture, ClientRecvTimesOutOnSilentPeerWithTypedStatus) {
  Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);
  // A connect deadline against a live listener succeeds promptly.
  rt::guard::Expected<Client> c = Client::connect(server.port(), 1000);
  ASSERT_TRUE(c.ok()) << c.detail();
  ASSERT_EQ(c.value().set_timeouts(500, 150), Status::kOk);

  // Nothing was sent, so the server never answers: recv must come back
  // kTimeout in bounded time instead of blocking forever (the pre-PR-9
  // behaviour this satellite fixes).
  const auto t0 = std::chrono::steady_clock::now();
  JsonValue resp;
  std::string why;
  EXPECT_EQ(c.value().recv(&resp, &why), Status::kTimeout) << why;
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.1);
  EXPECT_LT(waited, 5.0);

  // After a timeout the stream is unsynced by contract: reconnect and the
  // server is still perfectly serviceable.
  Client fresh = connect_to(server);
  JsonValue ping = JsonValue::object();
  ping.set("op", "ping");
  EXPECT_TRUE(fresh.call(ping).ok());
  server.stop();
  // Connect with a deadline against a dead port fails typed, not forever.
  rt::guard::Expected<Client> dead = Client::connect(server.port(), 200);
  EXPECT_FALSE(dead.ok());
}

TEST_F(ServeFixture, WatermarkRejectionCarriesRetryAfterHint) {
  ServerOptions opts = base_options();
  opts.executors = 1;
  opts.queue_depth = 4;
  opts.queue_watermark = 0.5;  // shed at 2 queued, not 4
  opts.retry_after_ms = 70;
  opts.batching = false;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client c = connect_to(server);

  rt::guard::FaultInjector::instance().arm(rt::guard::FaultKind::kHang, 0, 1);
  ASSERT_EQ(c.send(solve_req(1, "JACOBI", 12, 1)), Status::kOk);
  bool wedged = false;
  for (int i = 0; i < 500 && !wedged; ++i) {
    wedged = rt::guard::FaultInjector::instance().fired(
                 rt::guard::FaultKind::kHang) >= 1;
    if (!wedged) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(wedged);
  // Head is wedged; the watermark admits 2 of these 4, rejects 2 — and
  // every queue-pressure rejection must carry the configured hint.
  for (long long id = 2; id <= 5; ++id) {
    ASSERT_EQ(c.send(solve_req(id, "JACOBI", 12, 1)), Status::kOk);
  }
  int hinted = 0;
  for (int i = 0; i < 2; ++i) {
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    ASSERT_EQ(field(resp, "status"), "overloaded");
    const JsonValue* hint = resp.find("retry_after_ms");
    ASSERT_NE(hint, nullptr);
    EXPECT_EQ(hint->as_int(), 70);
    ++hinted;
  }
  EXPECT_EQ(hinted, 2);
  rt::guard::FaultInjector::instance().cancel_hangs();
  for (int i = 0; i < 3; ++i) {  // wedged head + 2 admitted
    JsonValue resp;
    std::string why;
    ASSERT_EQ(c.recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "ok");
  }
  const JsonValue stats = server.stats_json();
  EXPECT_EQ(stats.find("resilience")->find("retry_hints")->as_int(), 2);
  server.stop();
}

TEST_F(ServeFixture, SupervisorRespawnsWedgedExecutorAndBreakerTripsResets) {
  ServerOptions opts = base_options();
  opts.executors = 1;
  opts.batching = false;
  opts.supervise_interval_ms = 10;
  opts.executor_wedge_ms = 100;
  opts.max_respawns = 2;
  opts.breaker_threshold = 1;
  opts.breaker_window_ms = 500;
  opts.breaker_retry_after_ms = 123;
  Server server(opts);
  ASSERT_EQ(server.start(), Status::kOk);
  Client victim = connect_to(server);
  Client probe = connect_to(server);

  // Wedge the only executor inline (no deadline → run_batch runs the work
  // on the executor thread itself).
  rt::guard::FaultInjector::instance().arm(rt::guard::FaultKind::kHang, 0, 1);
  ASSERT_EQ(victim.send(solve_req(1, "JACOBI", 16, 1)), Status::kOk);

  // The supervisor must retire the wedged executor and spawn a fresh one.
  bool respawned = false;
  for (int i = 0; i < 800 && !respawned; ++i) {
    const JsonValue stats = server.stats_json();
    const JsonValue* rz = stats.find("resilience");
    ASSERT_NE(rz, nullptr);
    respawned = rz->find("executors_wedged")->as_int() >= 1 &&
                rz->find("executors_respawned")->as_int() >= 1;
    if (!respawned) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(respawned) << server.stats_json().dump();

  // One wedge event >= threshold 1: the breaker trips into degraded mode;
  // solves are rejected with the breaker's retry hint, health says so.
  bool degraded = false;
  for (int i = 0; i < 400 && !degraded; ++i) {
    degraded = server.degraded();
    if (!degraded) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(degraded);
  {
    rt::guard::Expected<JsonValue> r = probe.call(solve_req(50, "JACOBI", 16, 1));
    ASSERT_TRUE(r.ok()) << r.detail();
    EXPECT_EQ(field(r.value(), "status"), "overloaded");
    EXPECT_NE(field(r.value(), "detail").find("degraded"), std::string::npos);
    ASSERT_NE(r.value().find("retry_after_ms"), nullptr);
    EXPECT_EQ(r.value().find("retry_after_ms")->as_int(), 123);
  }
  {
    JsonValue hreq = JsonValue::object();
    hreq.set("op", "health");
    rt::guard::Expected<JsonValue> r = probe.call(hreq);
    ASSERT_TRUE(r.ok()) << r.detail();
    EXPECT_EQ(r.value().find("health")->find("state")->as_string(),
              "degraded");
    EXPECT_FALSE(r.value().find("health")->find("ready")->as_bool());
  }

  // Release the wedge: the retired executor finishes its batch, answers
  // the victim, and exits; the replacement owns the queue.
  rt::guard::FaultInjector::instance().cancel_hangs();
  {
    JsonValue resp;
    std::string why;
    ASSERT_EQ(victim.recv(&resp, &why), Status::kOk) << why;
    EXPECT_EQ(field(resp, "status"), "ok");
    EXPECT_EQ(field(resp, "checksum"),
              reference_kernel_checksum(ServeKernel::kJacobi, 16, 1,
                                        rt::core::Transform::kGcdPad));
  }

  // Once the event ages out of the window the breaker resets on its own
  // and the server serves correct results again — self-healed, verified.
  bool healthy = false;
  for (int i = 0; i < 800 && !healthy; ++i) {
    healthy = !server.degraded();
    if (!healthy) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(healthy) << server.stats_json().dump();
  {
    rt::guard::Expected<JsonValue> r = probe.call(solve_req(60, "JACOBI", 20, 2));
    ASSERT_TRUE(r.ok()) << r.detail();
    ASSERT_EQ(field(r.value(), "status"), "ok") << field(r.value(), "detail");
    EXPECT_EQ(field(r.value(), "checksum"),
              reference_kernel_checksum(ServeKernel::kJacobi, 20, 2,
                                        rt::core::Transform::kGcdPad));
  }
  const JsonValue stats = server.stats_json();
  const JsonValue* rz = stats.find("resilience");
  EXPECT_GE(rz->find("breaker_trips")->as_int(), 1);
  EXPECT_GE(rz->find("breaker_resets")->as_int(), 1);
  EXPECT_GE(rz->find("degraded_rejections")->as_int(), 1);
  server.stop();
}

TEST_F(ServeFixture, FrameFaultInjectionsAreTypedAndServerSurvives) {
  Server server(base_options());
  ASSERT_EQ(server.start(), Status::kOk);

  {  // kSockDrop on the CLIENT's own send (trigger 0): typed kIoError.
    Client c = connect_to(server);
    rt::guard::FaultInjector::instance().arm(
        rt::guard::FaultKind::kSockDrop, 0, 1);
    JsonValue ping = JsonValue::object();
    ping.set("op", "ping");
    std::string why;
    EXPECT_EQ(c.send(ping, &why), Status::kIoError);
    EXPECT_NE(why.find("sockdrop"), std::string::npos);
    rt::guard::FaultInjector::instance().disarm_all();
  }
  {  // kSockDrop on the SERVER's response (skip the client's send, fire on
     // the next write_frame = the response): the client sees a torn frame.
    Client c = connect_to(server);
    rt::guard::FaultInjector::instance().arm(
        rt::guard::FaultKind::kSockDrop, 1, 1);
    JsonValue ping = JsonValue::object();
    ping.set("op", "ping");
    ASSERT_EQ(c.send(ping), Status::kOk);
    JsonValue resp;
    std::string why;
    const Status st = c.recv(&resp, &why);
    EXPECT_TRUE(st == Status::kCorrupt || st == Status::kIoError) << why;
    rt::guard::FaultInjector::instance().disarm_all();
  }
  {  // kPartialWrite on the server's response: short frame then hangup →
     // kTruncated at the client, mapped to kCorrupt.
    Client c = connect_to(server);
    rt::guard::FaultInjector::instance().arm(
        rt::guard::FaultKind::kPartialWrite, 1, 1);
    rt::guard::Expected<JsonValue> r = c.call(solve_req(9, "JACOBI", 12, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status() == Status::kCorrupt ||
                r.status() == Status::kIoError)
        << r.detail();
    rt::guard::FaultInjector::instance().disarm_all();
  }

  // The server survived all three storms and still serves bit-identical
  // results on a fresh connection.
  Client c = connect_to(server);
  rt::guard::Expected<JsonValue> r = c.call(solve_req(10, "JACOBI", 20, 2));
  ASSERT_TRUE(r.ok()) << r.detail();
  ASSERT_EQ(field(r.value(), "status"), "ok") << field(r.value(), "detail");
  EXPECT_EQ(field(r.value(), "checksum"),
            reference_kernel_checksum(ServeKernel::kJacobi, 20, 2,
                                      rt::core::Transform::kGcdPad));
  const JsonValue stats = server.stats_json();
  EXPECT_GE(stats.find("io_errors")->as_int(), 1);
  server.stop();
}

TEST_F(ServeFixture, BufferArenaHoldsIdleBytesCapUnderConcurrentChurn) {
  // Satellite coverage: the idle-bytes cap is a *concurrent* invariant —
  // eight threads hammering acquire/release must never leave the arena
  // caching more than max_cached_bytes when the dust settles, and every
  // release must either cache or drop (no leaks, no double-counting).
  const Dims3 small = Dims3::padded(12, 12, 12, 13, 14);
  const Dims3 big = Dims3::padded(24, 24, 24, 26, 25);
  const std::size_t big_bytes = static_cast<std::size_t>(
      *big.checked_alloc_elems() * static_cast<long>(sizeof(double)));
  // Room for ~3 big buffers: far fewer than 8 threads churn through.
  BufferArena arena(3 * big_bytes);

  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&arena, &small, &big, t] {
      for (int i = 0; i < 100; ++i) {
        // Hold a batch of four before releasing any: a returning batch of
        // big buffers always overflows the 3-buffer idle cap, so drops
        // happen even when the scheduler serializes the threads.
        std::vector<Array3D<double>> held;
        for (int b = 0; b < 4; ++b) {
          const Dims3& d = ((i + t + b) % 3 == 0) ? small : big;
          held.push_back(arena.acquire(d));
          held.back()(1, 1, 1) = static_cast<double>(i);  // really ours
        }
        for (Array3D<double>& a : held) arena.release(std::move(a));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const BufferArena::Stats s = arena.stats();
  EXPECT_LE(s.cached_bytes, 3 * big_bytes);
  EXPECT_EQ(s.hits + s.misses, 8u * 100u * 4u);
  EXPECT_EQ(s.returns, 8u * 100u * 4u);  // every buffer came home
  EXPECT_LE(s.dropped, s.returns);
  // The cap was genuinely exercised: with 8 threads and room for 3 big
  // buffers, some releases must have been dropped.
  EXPECT_GT(s.dropped, 0u);
}

}  // namespace
}  // namespace rt::serve
