// rt::tune — the measurement-driven autotuner.  The calibration engine is
// driven entirely through synthetic CandidateRunner/TemporalRunner
// callbacks here (no kernels): objective and tie-breaking, skip recording,
// the watchdog deadline with an injected hang, the durable plan store's
// round-trip / kStale / kCorrupt contract, PlanCache installation, and the
// background re-tune worker.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/core/temporal.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/guard/status.hpp"
#include "rt/tune/autotuner.hpp"
#include "rt/tune/candidates.hpp"
#include "rt/tune/plan_store.hpp"
#include "rt/tune/tune.hpp"

namespace fs = std::filesystem;
using rt::core::StencilSpec;
using rt::core::TilingPlan;
using rt::core::Transform;
using rt::guard::Status;
using namespace rt::tune;

// ---------------------------------------------------------------------------
// Tokens and keys

TEST(TuneTokens, TuneModeRoundTrips) {
  for (TuneMode m : {TuneMode::kOff, TuneMode::kLoad, TuneMode::kOn}) {
    TuneMode back{};
    ASSERT_TRUE(parse_tune_mode(tune_mode_name(m), &back));
    EXPECT_EQ(back, m);
  }
  TuneMode out{};
  EXPECT_FALSE(parse_tune_mode("auto", &out));
  EXPECT_FALSE(parse_tune_mode("", &out));
}

TEST(TuneTokens, TransformRoundTrips) {
  for (Transform t : rt::core::all_transforms()) {
    Transform back{};
    ASSERT_TRUE(
        parse_transform(std::string(rt::core::transform_name(t)), &back));
    EXPECT_EQ(back, t);
  }
  Transform out{};
  EXPECT_FALSE(parse_transform("gcdpad", &out));  // tokens are case-exact
  EXPECT_FALSE(parse_transform("", &out));
}

TEST(TuneKeyTest, StrIsTheDocumentedStableIdentity) {
  TuneKey k;
  k.kernel = "JACOBI";
  k.n = 400;
  k.n3 = 30;
  k.transform = Transform::kGcdPad;
  k.threads = 4;
  k.simd = "avx2";
  k.temporal = rt::core::TemporalMode::kOff;
  k.tsteps = 0;
  EXPECT_EQ(k.str(),
            "JACOBI/n400x30/GcdPad/model/t4/simd=avx2/temporal=off/ts0");

  TuneKey k2 = k;
  EXPECT_EQ(k, k2);
  k2.simd = "off";
  EXPECT_FALSE(k == k2);  // every field is identity

  // The planner backend is part of the identity: a lattice winner is a
  // different tuning problem (and str() shows which planner it answers).
  TuneKey k3 = k;
  k3.backend = rt::core::Backend::kLattice;
  EXPECT_FALSE(k == k3);
  EXPECT_EQ(k3.str(),
            "JACOBI/n400x30/GcdPad/lattice/t4/simd=avx2/temporal=off/ts0");
}

// ---------------------------------------------------------------------------
// Candidate generation

namespace {

TilingPlan tiled_model() {
  TilingPlan p;
  p.transform = Transform::kGcdPad;
  p.tiled = true;
  p.tile = rt::core::IterTile{16, 16};
  p.dip = 408;  // padded leading dimension (model found a GCD pad)
  p.djp = 400;
  return p;
}

bool has_origin(const std::vector<Candidate>& cands, const std::string& o) {
  for (const Candidate& c : cands) {
    if (c.origin == o) return true;
  }
  return false;
}

}  // namespace

TEST(SpatialCandidates, ModelIsAlwaysFirstAndSetIsDeduplicated) {
  const auto cands = spatial_candidates(tiled_model(), 400, 400, 1);
  ASSERT_GE(cands.size(), 8u);
  EXPECT_EQ(cands[0].origin, "model");
  EXPECT_TRUE(cands[0].plan.tiled);
  EXPECT_EQ(cands[0].plan.tile.ti, 16);

  // Shape-level dedup: no two candidates share (tiled, tile, dip, djp).
  for (std::size_t a = 0; a < cands.size(); ++a) {
    for (std::size_t b = a + 1; b < cands.size(); ++b) {
      EXPECT_FALSE(cands[a].plan.tiled == cands[b].plan.tiled &&
                   cands[a].plan.tile == cands[b].plan.tile &&
                   cands[a].plan.dip == cands[b].plan.dip &&
                   cands[a].plan.djp == cands[b].plan.djp)
          << cands[a].origin << " duplicates " << cands[b].origin;
    }
  }
}

TEST(SpatialCandidates, NeighbourhoodCoversTheHostEffectsTheModelMisses) {
  const auto cands = spatial_candidates(tiled_model(), 400, 400, 1);
  // Tuning must be able to UNDO tiling (prefetchers love long rows)...
  EXPECT_TRUE(has_origin(cands, "untiled"));
  // ...keep the model's padding while untiling...
  EXPECT_TRUE(has_origin(cands, "untiled+pad"));
  // ...grow tiles past the direct-mapped model's conflict bound...
  EXPECT_TRUE(has_origin(cands, "tile*2"));
  EXPECT_TRUE(has_origin(cands, "tile*4"));
  // ...and perturb the padding (dip=408 is even, so pad:odd applies).
  EXPECT_TRUE(has_origin(cands, "pad+8"));
  EXPECT_TRUE(has_origin(cands, "pad:odd"));

  for (const Candidate& c : cands) {
    EXPECT_GE(c.plan.dip, 400) << c.origin;
    EXPECT_GE(c.plan.djp, 400) << c.origin;
    if (c.plan.tiled) {
      EXPECT_GE(c.plan.tile.ti, 1) << c.origin;
      EXPECT_LE(c.plan.tile.ti, 398) << c.origin;  // di - 2*halo
      EXPECT_LE(c.plan.tile.tj, 398) << c.origin;
    }
  }
}

TEST(SpatialCandidates, OversizedTilesClampAndFullInteriorTilesGoUntiled) {
  TilingPlan model = tiled_model();
  model.tile = rt::core::IterTile{100000, 100000};
  model.dip = 100;
  model.djp = 100;
  const auto cands = spatial_candidates(model, 100, 100, 1);
  ASSERT_FALSE(cands.empty());
  // ti clamps to di-2*halo = 98 = the whole interior, which IS the untiled
  // loop — the generator canonicalizes it so dedup can see that.
  EXPECT_EQ(cands[0].origin, "model");
  EXPECT_FALSE(cands[0].plan.tiled);
}

TEST(SpatialCandidates, UntiledModelStillProbesSquareTiles) {
  TilingPlan model;
  model.transform = Transform::kOrig;
  model.dip = 200;
  model.djp = 200;
  const auto cands = spatial_candidates(model, 200, 200, 1);
  EXPECT_TRUE(has_origin(cands, "square16"));
  EXPECT_TRUE(has_origin(cands, "square32"));
  EXPECT_TRUE(has_origin(cands, "square64"));
}

TEST(SpatialCandidates, CapAndDegenerateInputs) {
  EXPECT_EQ(spatial_candidates(tiled_model(), 400, 400, 1, 3).size(), 3u);
  EXPECT_TRUE(spatial_candidates(tiled_model(), 0, 400, 1).empty());
  EXPECT_TRUE(spatial_candidates(tiled_model(), 400, 400, 1, 0).empty());
}

TEST(TemporalCandidates, ModelFirstDistinctDepthsOffIsEmpty) {
  EXPECT_TRUE(temporal_candidates(rt::core::TemporalMode::kOff, 1 << 20, 200,
                                  200, 200, 4, 2, 1)
                  .empty());

  const auto cands = temporal_candidates(rt::core::TemporalMode::kSkew,
                                         1 << 20, 200, 200, 200, 4, 2, 1);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].origin, "model");
  EXPECT_GT(cands[0].report.plan.bk, 0);
  for (std::size_t a = 0; a < cands.size(); ++a) {
    // Every candidate is a *validated* re-plan, never an unchecked mutation.
    EXPECT_NE(cands[a].report.status, Status::kInvalidArgument)
        << cands[a].origin;
    for (std::size_t b = a + 1; b < cands.size(); ++b) {
      EXPECT_FALSE(cands[a].report.plan.bk == cands[b].report.plan.bk &&
                   cands[a].report.plan.tb == cands[b].report.plan.tb)
          << cands[a].origin << " duplicates " << cands[b].origin;
    }
  }
}

// ---------------------------------------------------------------------------
// Calibration sweep: objective, ties, skips, guardrails

namespace {

/// Hand-built candidate whose measured time is encoded in plan.dip
/// (seconds = dip / 1000), so a synthetic runner can rank them.
Candidate fake(const std::string& origin, long dip_ms) {
  Candidate c;
  c.origin = origin;
  c.plan.dip = dip_ms;
  c.plan.djp = 100;
  return c;
}

Measurement timed(double seconds) {
  Measurement m;
  m.seconds = seconds;
  m.mflops = seconds > 0 ? 1.0 / seconds : 0;
  return m;
}

CandidateRunner dip_runner() {
  return [](const TilingPlan& p) {
    return timed(static_cast<double>(p.dip) / 1000.0);
  };
}

TuneKey any_key() {
  TuneKey k;
  k.kernel = "FAKE";
  k.n = 100;
  k.n3 = 30;
  return k;
}

}  // namespace

TEST(Autotuner, FastestCandidateWinsAndExtremaAreRecorded) {
  Autotuner t({.repeats = 1});
  const std::vector<Candidate> cands = {fake("model", 300), fake("fast", 100),
                                        fake("mid", 200)};
  const TuneResult res = t.tune_spatial(any_key(), cands, dip_runner());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 1);
  EXPECT_EQ(res.model, 0);
  EXPECT_EQ(res.worst, 0);
  EXPECT_EQ(res.candidates[1].origin, "fast");
  EXPECT_DOUBLE_EQ(res.candidates[1].m.seconds, 0.1);
  EXPECT_GT(res.mflops_at(res.winner), res.mflops_at(res.model));
  EXPECT_DOUBLE_EQ(res.mflops_at(-1), 0.0);
}

TEST(Autotuner, WithinToleranceTheEarlierCandidateKeepsTheWin) {
  // "fast" is 1% quicker — inside the 2% tie band — and no counters exist
  // to break the tie, so the model (earlier, preference order) keeps the
  // win.  Tuning only moves off the model plan on real evidence.
  Autotuner t({.repeats = 1, .tie_tolerance = 0.02});
  const std::vector<Candidate> cands = {fake("model", 1000), fake("fast", 990)};
  const TuneResult res = t.tune_spatial(any_key(), cands, dip_runner());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 0);
}

TEST(Autotuner, CountersBreakTiesLlcThenDtlbThenIpc) {
  Autotuner t({.repeats = 1, .tie_tolerance = 0.02});
  const std::vector<Candidate> cands = {fake("model", 100), fake("cool", 100),
                                        fake("warm", 100)};
  // All three candidates measure the same time; the runner counts calls so
  // it can hand a better counter profile to one specific candidate.
  int call = 0;
  CandidateRunner counted = [&call](const TilingPlan&) {
    Measurement m = timed(0.1);
    m.llc_misses = (call == 1) ? 10 : 100;  // candidate 1 is the cool one
    ++call;
    return m;
  };
  const TuneResult res = t.tune_spatial(any_key(), cands, counted);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 1);

  // dTLB tie-break when LLC slots are absent on one side (no discriminator).
  call = 0;
  CandidateRunner tlb = [&call](const TilingPlan&) {
    Measurement m = timed(0.1);
    m.dtlb_misses = (call == 2) ? 1 : 50;
    ++call;
    return m;
  };
  const TuneResult res2 = t.tune_spatial(any_key(), cands, tlb);
  EXPECT_EQ(res2.winner, 2);

  // Higher IPC wins the last slot.
  call = 0;
  CandidateRunner ipc = [&call](const TilingPlan&) {
    Measurement m = timed(0.1);
    m.ipc = (call == 1) ? 3.0 : 1.0;
    ++call;
    return m;
  };
  const TuneResult res3 = t.tune_spatial(any_key(), cands, ipc);
  EXPECT_EQ(res3.winner, 1);
}

TEST(Autotuner, MedianOverRepeatsTrimsOutliers) {
  Autotuner t({.repeats = 3});
  int call = 0;
  const double times[] = {0.9, 0.1, 0.2};  // one bad warmup-ish outlier
  CandidateRunner runner = [&](const TilingPlan&) {
    return timed(times[call++ % 3]);
  };
  const TuneResult res =
      t.tune_spatial(any_key(), {fake("model", 100)}, runner);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(call, 3);
  EXPECT_DOUBLE_EQ(res.candidates[0].m.seconds, 0.2);  // median, not mean
}

TEST(Autotuner, SkippedCandidatesAreRecordedAndNeverWin) {
  Autotuner t({.repeats = 1});
  CandidateRunner runner = [](const TilingPlan& p) {
    if (p.dip == 100) {  // the would-be fastest candidate fails
      Measurement m;
      m.status = Status::kAllocFailed;
      m.detail = "synthetic OOM";
      return m;
    }
    return timed(static_cast<double>(p.dip) / 1000.0);
  };
  const TuneResult res = t.tune_spatial(
      any_key(), {fake("model", 300), fake("oom", 100), fake("ok", 200)},
      runner);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 2);  // fastest *completed* candidate
  EXPECT_EQ(res.candidates[1].m.status, Status::kAllocFailed);
  EXPECT_EQ(res.candidates[1].m.detail, "synthetic OOM");
  EXPECT_NE(res.worst, 1);  // skips compete for nothing, not even "worst"
}

TEST(Autotuner, ThrowingRunnersBecomeTypedSkips) {
  Autotuner t({.repeats = 1});
  CandidateRunner runner = [](const TilingPlan& p) -> Measurement {
    if (p.dip == 100) throw std::bad_alloc();
    if (p.dip == 200) throw std::runtime_error("kernel exploded");
    return timed(0.3);
  };
  const TuneResult res = t.tune_spatial(
      any_key(), {fake("model", 300), fake("oom", 100), fake("boom", 200)},
      runner);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 0);
  EXPECT_EQ(res.candidates[1].m.status, Status::kAllocFailed);
  EXPECT_EQ(res.candidates[2].m.status, Status::kInvalidArgument);
  EXPECT_NE(res.candidates[2].m.detail.find("kernel exploded"),
            std::string::npos);
}

TEST(Autotuner, AllCandidatesSkippedIsInfeasibleNotACrash) {
  Autotuner t({.repeats = 1});
  CandidateRunner runner = [](const TilingPlan&) {
    Measurement m;
    m.status = Status::kTimeout;
    return m;
  };
  const TuneResult res =
      t.tune_spatial(any_key(), {fake("model", 1), fake("b", 2)}, runner);
  EXPECT_EQ(res.status, Status::kInfeasible);
  EXPECT_EQ(res.winner, -1);
  EXPECT_EQ(res.detail, "no candidate completed calibration");
  EXPECT_FALSE(res.ok());
}

TEST(Autotuner, EmptyCandidateSetIsInvalidArgument) {
  Autotuner t;
  const TuneResult res = t.tune_spatial(any_key(), {}, dip_runner());
  EXPECT_EQ(res.status, Status::kInvalidArgument);
  EXPECT_EQ(res.detail, "empty candidate set");
}

TEST(Autotuner, CandidateSetCapIsAppliedAndRecorded) {
  Autotuner t({.repeats = 1, .max_candidates = 2});
  const TuneResult res = t.tune_spatial(
      any_key(), {fake("model", 300), fake("a", 100), fake("dropped", 50)},
      dip_runner());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.candidates.size(), 2u);
  EXPECT_EQ(res.winner, 1);  // the dropped 50ms candidate never ran
  EXPECT_NE(res.detail.find("capped at 2"), std::string::npos);
}

TEST(Autotuner, InjectedHangLandsAsRecordedTimeoutSkip) {
  // The RT_GUARD_FAULTS story: a candidate wedges mid-calibration, the
  // per-run watchdog fires, cancels the injected hang, and the sweep
  // records a kTimeout skip and keeps going.
  auto& fi = rt::guard::FaultInjector::instance();
  fi.disarm_all();
  fi.arm(rt::guard::FaultKind::kHang);

  Autotuner t({.repeats = 1, .candidate_deadline_s = 0.1});
  CandidateRunner runner = [](const TilingPlan& p) {
    if (p.dip == 100) rt::guard::FaultInjector::instance().hang_point();
    return timed(static_cast<double>(p.dip) / 1000.0);
  };
  const TuneResult res = t.tune_spatial(
      any_key(), {fake("model", 1), fake("hung", 100)}, runner);
  fi.disarm_all();

  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 0);
  EXPECT_EQ(res.candidates[1].m.status, Status::kTimeout);
  EXPECT_NE(res.candidates[1].m.detail.find("deadline"), std::string::npos);
  EXPECT_GE(fi.fired(rt::guard::FaultKind::kHang), 1);
}

TEST(Autotuner, TemporalSweepUsesTheSameProtocol) {
  Autotuner t({.repeats = 1});
  std::vector<TemporalCandidate> cands(2);
  cands[0].origin = "model";
  cands[0].report.plan.bk = 8;
  cands[1].origin = "bk*2";
  cands[1].report.plan.bk = 16;
  TemporalRunner runner = [](const rt::core::TemporalPlan& p) {
    return timed(p.bk == 16 ? 0.1 : 0.4);
  };
  const TuneResult res = t.tune_temporal(any_key(), cands, runner);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.winner, 1);
  EXPECT_EQ(res.model, 0);
  EXPECT_EQ(res.candidates[1].temporal_plan.bk, 16);
}

// ---------------------------------------------------------------------------
// Staleness + background re-tune worker

TEST(Autotuner, StalenessIsAgeAgainstMaxAgeMs) {
  StoreEntry e;
  e.tuned_at_ms = 1000;
  Autotuner never({.max_age_ms = 0});
  EXPECT_FALSE(never.is_stale(e, 1'000'000'000));  // 0 = never stale by age
  Autotuner hourly({.max_age_ms = 3'600'000});
  EXPECT_FALSE(hourly.is_stale(e, 1000 + 3'600'000));
  EXPECT_TRUE(hourly.is_stale(e, 1000 + 3'600'001));
}

TEST(Autotuner, BackgroundRetuneRunsJobsInOrderAndSurvivesThrows) {
  Autotuner t;
  std::mutex m;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    t.retune_async([&m, &order, i] {
      std::lock_guard<std::mutex> lk(m);
      order.push_back(i);
    });
    if (i == 1) {
      t.retune_async([] { throw std::runtime_error("re-tune failed"); });
    }
  }
  t.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.jobs_run(), 5u);  // the throwing job still counts as run
}

TEST(Autotuner, DestructorDrainsQueuedJobs) {
  auto count = std::make_shared<std::atomic<int>>(0);
  {
    Autotuner t;
    for (int i = 0; i < 8; ++i) {
      t.retune_async([count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count->fetch_add(1);
      });
    }
    // No wait_idle(): the destructor must drain, not drop.
  }
  EXPECT_EQ(count->load(), 8);
}

// ---------------------------------------------------------------------------
// Plan store: round-trip, staleness, corruption, installation

namespace {

constexpr const char* kFp = "L1D:32768/8w/64B+L2U:1048576/16w/64B";

StoreEntry spatial_entry() {
  StoreEntry e;
  e.key.kernel = "JACOBI";
  e.key.n = 400;
  e.key.n3 = 30;
  e.key.transform = Transform::kGcdPad;
  e.key.threads = 4;
  e.key.simd = "avx2";
  e.plan_key = rt::core::PlanCache::make_key(Transform::kGcdPad, 2048, 400,
                                             400, StencilSpec::jacobi3d(), 30);
  e.plan.transform = Transform::kGcdPad;
  e.plan.tiled = true;
  e.plan.tile = rt::core::IterTile{64, 64};
  e.plan.dip = 408;
  e.plan.djp = 400;
  e.origin = "tile*4";
  e.mflops = 4120.5;
  e.model_mflops = 3857.25;
  e.tuned_at_ms = 1723180800000;
  return e;
}

StoreEntry temporal_entry() {
  StoreEntry e;
  e.key.kernel = "JACOBI-TS";
  e.key.n = 200;
  e.key.n3 = 200;
  e.key.temporal = rt::core::TemporalMode::kSkew;
  e.key.tsteps = 4;
  e.temporal = true;
  e.temporal_key = rt::core::PlanCache::make_temporal_key(
      rt::core::TemporalMode::kSkew, 1 << 20, 200, 200, 200, 4, 0, 2, 1);
  e.temporal_plan.mode = rt::core::TemporalMode::kSkew;
  e.temporal_plan.tsteps = 4;
  e.temporal_plan.bk = 32;
  e.temporal_plan.threads = 2;
  e.temporal_plan.stages = 28;
  e.temporal_plan.occupancy = 0.83;
  e.origin = "bk*2";
  e.mflops = 2100;
  e.model_mflops = 1900;
  e.tuned_at_ms = 1723180800001;
  return e;
}

PlanStore sample_store() {
  PlanStore s;
  s.fingerprint = kFp;
  s.entries = {spatial_entry(), temporal_entry()};
  return s;
}

}  // namespace

TEST(PlanStoreTest, FindMatchesFullKeyAndPutReplaces) {
  PlanStore s = sample_store();
  const StoreEntry* hit = s.find(spatial_entry().key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->origin, "tile*4");

  TuneKey other = spatial_entry().key;
  other.threads = 8;  // any field off → different tuning problem
  EXPECT_EQ(s.find(other), nullptr);

  StoreEntry replacement = spatial_entry();
  replacement.origin = "untiled";
  s.put(replacement);
  EXPECT_EQ(s.entries.size(), 2u);  // replaced in place, not appended
  EXPECT_EQ(s.find(replacement.key)->origin, "untiled");
}

TEST(PlanStoreTest, JsonRoundTripPreservesEveryField) {
  const PlanStore s = sample_store();
  const std::string text = store_to_json(s);
  EXPECT_EQ(text.back(), '\n');  // diffable: trailing newline

  const auto parsed = parse_store(text, kFp);
  ASSERT_TRUE(parsed.ok()) << parsed.detail();
  const PlanStore& p = parsed.value();
  EXPECT_EQ(p.version, kPlanStoreVersion);
  EXPECT_EQ(p.fingerprint, kFp);
  ASSERT_EQ(p.entries.size(), 2u);

  const StoreEntry& sp = p.entries[0];
  EXPECT_EQ(sp.key, spatial_entry().key);
  EXPECT_FALSE(sp.temporal);
  EXPECT_EQ(sp.plan_key, spatial_entry().plan_key);
  EXPECT_TRUE(sp.plan.tiled);
  EXPECT_EQ(sp.plan.tile, (rt::core::IterTile{64, 64}));
  EXPECT_EQ(sp.plan.dip, 408);
  EXPECT_EQ(sp.origin, "tile*4");
  EXPECT_DOUBLE_EQ(sp.mflops, 4120.5);
  EXPECT_DOUBLE_EQ(sp.model_mflops, 3857.25);
  EXPECT_EQ(sp.tuned_at_ms, 1723180800000);

  const StoreEntry& tp = p.entries[1];
  EXPECT_TRUE(tp.temporal);
  EXPECT_EQ(tp.key, temporal_entry().key);
  EXPECT_EQ(tp.temporal_key, temporal_entry().temporal_key);
  EXPECT_EQ(tp.temporal_plan.bk, 32);
  EXPECT_DOUBLE_EQ(tp.temporal_plan.occupancy, 0.83);

  // Serialization is deterministic: a second dump is byte-identical.
  EXPECT_EQ(store_to_json(p), text);
}

TEST(PlanStoreTest, VersionMismatchIsStaleNotReinterpreted) {
  PlanStore s = sample_store();
  s.version = kPlanStoreVersion + 1;
  const auto parsed = parse_store(store_to_json(s), kFp);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status(), Status::kStale);
  EXPECT_NE(parsed.detail().find("version"), std::string::npos);
}

TEST(PlanStoreTest, PreBackendV1StoreIsStaleNotMisapplied) {
  // A store written before plans carried backend ids (schema v1) must load
  // as kStale — its winners would otherwise be served for whichever
  // backend asks, which is exactly the collision the version bump closes.
  PlanStore s = sample_store();
  s.version = 1;
  const auto parsed = parse_store(store_to_json(s), kFp);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status(), Status::kStale);
  EXPECT_NE(parsed.detail().find("version"), std::string::npos);
}

TEST(PlanStoreTest, BackendAndScheduleRoundTripInStoreJson) {
  PlanStore s = sample_store();
  StoreEntry e = spatial_entry();
  e.key.kernel = "RESID";
  e.key.backend = rt::core::Backend::kLattice;
  rt::core::CacheGeom g;
  g.cs_elems = 2048;
  g.line_elems = 4;
  g.assoc = 2;
  e.plan_key = rt::core::PlanCache::make_backend_key(
      rt::core::Backend::kLattice, Transform::kTile, g, 400, 400,
      StencilSpec::jacobi3d(), 30);
  e.plan.transform = Transform::kTile;
  e.plan.backend = rt::core::Backend::kLattice;
  e.plan.schedule = rt::core::LoopSchedule::kTiled;
  e.plan.dip = 400;
  e.origin = "backend:lattice";
  s.put(e);

  const std::string text = store_to_json(s);
  EXPECT_NE(text.find("\"backend\": \"lattice\""), std::string::npos);
  const auto parsed = parse_store(text, kFp);
  ASSERT_TRUE(parsed.ok()) << parsed.detail();
  const StoreEntry* back = parsed.value().find(e.key);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->key.backend, rt::core::Backend::kLattice);
  EXPECT_EQ(back->plan.backend, rt::core::Backend::kLattice);
  EXPECT_EQ(back->plan.schedule, rt::core::LoopSchedule::kTiled);
  EXPECT_EQ(back->plan_key, e.plan_key);  // line_elems/assoc survived

  // An unknown backend token is corruption, not a silent default.
  std::string bad = text;
  const auto pos = bad.find("\"backend\": \"lattice\"");
  bad.replace(pos, std::string("\"backend\": \"lattice\"").size(),
              "\"backend\": \"quantum\"");
  const auto rejected = parse_store(bad, kFp);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status(), Status::kCorrupt);
}

TEST(SpatialCandidates, BackendCandidatesJoinTheRace) {
  rt::core::CacheGeom g;
  g.cs_elems = 2048;
  g.line_elems = 4;
  g.assoc = 2;
  const auto cands = spatial_candidates(tiled_model(), 400, 400, 1, g,
                                        StencilSpec::jacobi3d());
  EXPECT_EQ(cands[0].origin, "model");
  EXPECT_TRUE(has_origin(cands, "backend:lattice"));
  EXPECT_TRUE(has_origin(cands, "backend:oblivious"));
  for (const Candidate& c : cands) {
    if (c.origin == "backend:oblivious") {
      EXPECT_EQ(c.plan.schedule, rt::core::LoopSchedule::kRecursive);
    }
    if (c.origin == "backend:lattice") {
      EXPECT_TRUE(c.plan.tiled);
      EXPECT_EQ(c.plan.dip, 400);  // the lattice backend never pads
    }
  }
  // The overload still respects the cap.
  EXPECT_LE(spatial_candidates(tiled_model(), 400, 400, 1, g,
                               StencilSpec::jacobi3d(), 4)
                .size(),
            4u);
}

TEST(PlanStoreTest, FingerprintMismatchIsStaleWithBothValuesNamed) {
  const auto parsed =
      parse_store(store_to_json(sample_store()), "L1D:16384/4w/32B");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status(), Status::kStale);
  EXPECT_NE(parsed.detail().find(kFp), std::string::npos);
  EXPECT_NE(parsed.detail().find("L1D:16384/4w/32B"), std::string::npos);
}

TEST(PlanStoreTest, CorruptInputsAreTypedNeverFatal) {
  const std::string good = store_to_json(sample_store());

  // Truncation (the classic crash-mid-write artifact).
  auto r = parse_store(good.substr(0, good.size() / 2), kFp);
  EXPECT_EQ(r.status(), Status::kCorrupt);
  EXPECT_NE(r.detail().find("plan store JSON"), std::string::npos);

  // Not JSON at all / wrong root kind.
  EXPECT_EQ(parse_store("not json{", kFp).status(), Status::kCorrupt);
  EXPECT_EQ(parse_store("[1,2,3]\n", kFp).status(), Status::kCorrupt);

  // Structurally valid JSON with schema violations: strict all-or-nothing.
  EXPECT_EQ(parse_store("{\"fingerprint\":\"x\",\"entries\":[]}", kFp)
                .status(),
            Status::kCorrupt);  // version missing
  const std::string base = "{\"version\":" +
                           std::to_string(kPlanStoreVersion) +
                           ",\"fingerprint\":\"" + std::string(kFp) + "\",";
  EXPECT_EQ(parse_store(base + "\"entries\":{}}", kFp).status(),
            Status::kCorrupt);  // entries not an array
  auto bad_entry = parse_store(base + "\"entries\":[{}]}", kFp);
  EXPECT_EQ(bad_entry.status(), Status::kCorrupt);
  EXPECT_NE(bad_entry.detail().find("entry 0"), std::string::npos);

  // One mangled entry rejects the WHOLE store (a half-trusted store could
  // serve a plan for the wrong shape).
  std::string mangled = good;
  const auto pos = mangled.find("\"tiled\": true");
  ASSERT_NE(pos, std::string::npos);
  mangled.replace(pos, 13, "\"tiled\": 1234");
  auto m = parse_store(mangled, kFp);
  EXPECT_EQ(m.status(), Status::kCorrupt);
  EXPECT_NE(m.detail().find("tiled"), std::string::npos);
}

TEST(PlanStoreTest, SaveLoadRoundTripAndMissingFileIsInvalidArgument) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "rt_tune_store_test" / "nested";
  const std::string path = (dir / "plans.json").string();
  std::error_code ec;
  fs::remove_all(fs::path(::testing::TempDir()) / "rt_tune_store_test", ec);

  // Missing file: kInvalidArgument (nothing persisted ≠ corrupted state).
  EXPECT_EQ(load_store(path, kFp).status(), Status::kInvalidArgument);

  // save_store creates the parent directories.
  ASSERT_EQ(save_store(sample_store(), path), Status::kOk);
  const auto loaded = load_store(path, kFp);
  ASSERT_TRUE(loaded.ok()) << loaded.detail();
  EXPECT_EQ(loaded.value().entries.size(), 2u);
  EXPECT_EQ(store_to_json(loaded.value()), store_to_json(sample_store()));

  EXPECT_EQ(save_store(sample_store(), "/proc/definitely/not/writable.json"),
            Status::kInvalidArgument);
  fs::remove_all(fs::path(::testing::TempDir()) / "rt_tune_store_test", ec);
}

// ---------------------------------------------------------------------------
// Crash-safe persistence (PR 9): torn-file sweep, .bak fallback, fsync
// failure containment, and a real kill-9 storm over save_store.

namespace {

/// Fresh scratch dir for one crash-safety test; removed on destruction.
struct StoreScratch {
  fs::path dir;
  std::string path;
  explicit StoreScratch(const char* name) {
    dir = fs::path(::testing::TempDir()) / name;
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    path = (dir / "plans.json").string();
  }
  ~StoreScratch() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

/// A sample store whose single distinguishing mark is @p origin — the
/// kill-9 test uses it to tell which generation a recovered store is.
PlanStore marked_store(const std::string& origin) {
  PlanStore s = sample_store();
  for (StoreEntry& e : s.entries) e.origin = origin;
  return s;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f << bytes;
}

}  // namespace

TEST(PlanStoreCrashSafety, TornFileSweepIsTypedAtEveryByteOffset) {
  StoreScratch sc("rt_tune_torn_sweep");
  const std::string good = store_to_json(sample_store());
  ASSERT_GT(good.size(), 2u);

  // A file torn at ANY offset (the classic crash-mid-write artifact that
  // the atomic-rename save makes impossible, but which a pre-PR-9 store —
  // or a hostile edit — can still present) must come back typed, never
  // crash, and never yield a half-trusted store.  There is no .bak here,
  // so no fallback can mask the rejection.  The single valid prefix is
  // good.size()-1: everything but the trailing newline is complete JSON.
  for (std::size_t cut = 0; cut + 1 < good.size(); ++cut) {
    write_file(sc.path, good.substr(0, cut));
    const auto r = load_store(sc.path, kFp);
    ASSERT_FALSE(r.ok()) << "cut at " << cut << " parsed";
    ASSERT_TRUE(r.status() == Status::kCorrupt ||
                r.status() == Status::kStale)
        << "cut at " << cut << ": "
        << rt::guard::status_name(r.status());
  }
  write_file(sc.path, good);
  EXPECT_TRUE(load_store(sc.path, kFp).ok());
}

TEST(PlanStoreCrashSafety, SaveKeepsBakAndFallbackRecoversTornPrimary) {
  StoreScratch sc("rt_tune_bak_recover");
  ASSERT_EQ(save_store(marked_store("gen1"), sc.path), Status::kOk);
  ASSERT_EQ(save_store(marked_store("gen2"), sc.path), Status::kOk);

  // The second save demoted the first to .bak.
  const std::string bak = store_bak_path(sc.path);
  ASSERT_TRUE(fs::exists(bak));
  const auto bak_loaded = load_store(bak, kFp);
  ASSERT_TRUE(bak_loaded.ok()) << bak_loaded.detail();
  EXPECT_EQ(bak_loaded.value().entries[0].origin, "gen1");

  // Tear the primary: load_store falls back to the last-good generation
  // and says so in LoadInfo.
  const std::string gen2 = store_to_json(marked_store("gen2"));
  write_file(sc.path, gen2.substr(0, gen2.size() / 2));
  LoadInfo info;
  const auto recovered = load_store(sc.path, kFp, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.detail();
  EXPECT_TRUE(info.recovered_from_bak);
  EXPECT_EQ(info.primary_status, Status::kCorrupt);
  EXPECT_FALSE(info.primary_detail.empty());
  EXPECT_EQ(recovered.value().entries[0].origin, "gen1");
}

TEST(PlanStoreCrashSafety, FallbackCoversTheCrashWindowBetweenRenames) {
  StoreScratch sc("rt_tune_rename_window");
  ASSERT_EQ(save_store(marked_store("gen1"), sc.path), Status::kOk);
  // Simulate a crash after "demote primary to .bak" but before "rename
  // temp into place": the primary name is vacant, the .bak holds gen1.
  fs::rename(sc.path, store_bak_path(sc.path));
  LoadInfo info;
  const auto r = load_store(sc.path, kFp, &info);
  ASSERT_TRUE(r.ok()) << r.detail();
  EXPECT_TRUE(info.recovered_from_bak);
  EXPECT_EQ(info.primary_status, Status::kInvalidArgument);
  EXPECT_EQ(r.value().entries[0].origin, "gen1");

  // But a store that never existed at all is a plain kInvalidArgument:
  // no .bak, no fallback, no false "recovered" claim.
  const std::string missing = (sc.dir / "never_saved.json").string();
  LoadInfo none;
  EXPECT_EQ(load_store(missing, kFp, &none).status(),
            Status::kInvalidArgument);
  EXPECT_FALSE(none.recovered_from_bak);
}

TEST(PlanStoreCrashSafety, StaleNeverFallsBackToBak) {
  StoreScratch sc("rt_tune_stale_no_bak");
  ASSERT_EQ(save_store(marked_store("gen1"), sc.path), Status::kOk);
  ASSERT_EQ(save_store(marked_store("gen2"), sc.path), Status::kOk);
  // A version-bumped primary is kStale — a *newer* writer owns the file.
  // Serving the older .bak would resurrect plans that writer retired.
  PlanStore future = marked_store("gen3");
  future.version = kPlanStoreVersion + 1;
  write_file(sc.path, store_to_json(future));
  LoadInfo info;
  const auto r = load_store(sc.path, kFp, &info);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kStale);
  EXPECT_FALSE(info.recovered_from_bak);
}

TEST(PlanStoreCrashSafety, InjectedFsyncFailureLeavesBothGenerationsIntact) {
  StoreScratch sc("rt_tune_fsync_fail");
  ASSERT_EQ(save_store(marked_store("gen1"), sc.path), Status::kOk);
  ASSERT_EQ(save_store(marked_store("gen2"), sc.path), Status::kOk);

  rt::guard::FaultInjector::instance().arm(
      rt::guard::FaultKind::kFsyncFail, 0, 1);
  std::string why;
  EXPECT_EQ(save_store(marked_store("gen3"), sc.path, &why),
            Status::kIoError);
  EXPECT_NE(why.find("fsyncfail"), std::string::npos) << why;
  rt::guard::FaultInjector::instance().disarm_all();

  // The failed save changed NOTHING: primary still gen2, .bak still gen1,
  // and the half-written temp was unlinked.
  const auto primary = load_store(sc.path, kFp);
  ASSERT_TRUE(primary.ok()) << primary.detail();
  EXPECT_EQ(primary.value().entries[0].origin, "gen2");
  const auto bak = load_store(store_bak_path(sc.path), kFp);
  ASSERT_TRUE(bak.ok()) << bak.detail();
  EXPECT_EQ(bak.value().entries[0].origin, "gen1");
  for (const fs::directory_entry& e : fs::directory_iterator(sc.dir)) {
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
        << "leaked temp file: " << e.path();
  }
}

TEST(PlanStoreCrashSafety, Kill9DuringSaveStormNeverLosesLastGoodStore) {
  StoreScratch sc("rt_tune_kill9");
  // Seed a last-good generation so there is always something to lose.
  ASSERT_EQ(save_store(marked_store("seed"), sc.path), Status::kOk);

  // Five rounds: fork a child that rewrites the store as fast as it can,
  // SIGKILL it at a different point in its write loop each round, and
  // require that the survivors on disk still load — directly or via the
  // .bak fallback.  This is the acceptance test for the durability order:
  // data-fsync before rename, demote before promote.
  for (int round = 0; round < 5; ++round) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: alternate two generations forever; killed mid-flight.
      for (unsigned long long i = 0;; ++i) {
        (void)save_store(marked_store(i % 2 == 0 ? "even" : "odd"), sc.path);
      }
      _exit(0);  // unreachable
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20 + 7 * round));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));

    LoadInfo info;
    const auto r = load_store(sc.path, kFp, &info);
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.detail()
                        << " (primary: " << info.primary_detail << ")";
    const std::string& origin = r.value().entries[0].origin;
    EXPECT_TRUE(origin == "seed" || origin == "even" || origin == "odd")
        << origin;
    // Leftover .tmp.<child-pid> files are expected debris of the kill —
    // prove they never shadow the store, then clear them for round+1.
    std::error_code ec;
    for (const fs::directory_entry& e : fs::directory_iterator(sc.dir)) {
      if (e.path().string().find(".tmp.") != std::string::npos) {
        fs::remove(e.path(), ec);
      }
    }
  }
}

TEST(PlanStoreTest, DefaultStorePathHonoursTheEnvOverride) {
  const char* old = std::getenv("RT_TUNE_STORE");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("RT_TUNE_STORE", "/tmp/custom-plans.json", 1);
  EXPECT_EQ(default_store_path(), "/tmp/custom-plans.json");
  ::unsetenv("RT_TUNE_STORE");
  EXPECT_NE(default_store_path().find("plans.json"), std::string::npos);
  if (old != nullptr) ::setenv("RT_TUNE_STORE", saved.c_str(), 1);
}

TEST(PlanStoreTest, InstallPinsWinnersAheadOfTheModelSearch) {
  rt::core::PlanCache cache;  // private cache: no cross-test state
  const StencilSpec spec = StencilSpec::jacobi3d();

  // Without the store, the model search answers.
  const rt::core::PlanReport model =
      cache.plan(Transform::kGcdPad, 2048, 400, 400, spec, 30);
  EXPECT_EQ(model.detail.find("autotuned"), std::string::npos);
  ASSERT_NE(model.plan.tile, (rt::core::IterTile{64, 64}))
      << "model search must differ from the tuned winner for this test";
  cache.clear();

  EXPECT_EQ(install(sample_store(), cache), 2u);
  EXPECT_EQ(cache.pinned_size(), 2u);

  // The exact lookup the solvers make now serves the measured winner.
  const rt::core::PlanReport tuned =
      cache.plan(Transform::kGcdPad, 2048, 400, 400, spec, 30);
  EXPECT_EQ(tuned.status, Status::kOk);
  EXPECT_EQ(tuned.detail, "autotuned(tile*4)");
  EXPECT_EQ(tuned.plan.tile, (rt::core::IterTile{64, 64}));
  EXPECT_EQ(tuned.plan.dip, 408);
  EXPECT_EQ(cache.stats().pinned_hits, 1u);

  const rt::core::TemporalReport ttuned = cache.temporal(
      rt::core::TemporalMode::kSkew, 1 << 20, 200, 200, 200, 4, 0, 2, 1);
  EXPECT_EQ(ttuned.detail, "autotuned(bk*2)");
  EXPECT_EQ(ttuned.plan.bk, 32);
  EXPECT_EQ(cache.stats().pinned_hits, 2u);

  // A different shape still falls through to the model search.
  const rt::core::PlanReport other =
      cache.plan(Transform::kGcdPad, 2048, 200, 200, spec, 30);
  EXPECT_EQ(other.detail.find("autotuned"), std::string::npos);
}
