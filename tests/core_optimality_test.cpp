// Global-optimality properties: Euc3D's cost-based selection (which only
// examines Pareto records) must match an exhaustive search over *all*
// conflict-free tiles, and related dominance facts.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rt/core/conflict.hpp"
#include "rt/core/cost.hpp"
#include "rt/core/euc3d.hpp"

namespace rt::core {
namespace {

/// Exhaustive minimum trimmed cost over all conflict-free array tiles of
/// depth spec.atd (O(cs^2) — small caches only).
double exhaustive_best_cost(long cs, long di, long dj,
                            const StencilSpec& spec) {
  double best = std::numeric_limits<double>::infinity();
  for (long ti = 1; ti <= cs; ++ti) {
    for (long tj = 1; ti * tj * spec.atd <= cs; ++tj) {
      if (!is_conflict_free(cs, di, dj, ti, tj, spec.atd)) continue;
      best = std::min(best, cost(ti - spec.trim_i, tj - spec.trim_j, spec));
    }
  }
  return best;
}

class Euc3dOptimality
    : public ::testing::TestWithParam<std::tuple<long, long, long>> {};

TEST_P(Euc3dOptimality, SelectionIsGloballyOptimal) {
  const auto [cs, di, dj] = GetParam();
  const StencilSpec spec = StencilSpec::jacobi3d();
  const Euc3dResult sel = euc3d(cs, di, dj, spec);
  const double best = exhaustive_best_cost(cs, di, dj, spec);
  if (std::isinf(best)) {
    EXPECT_TRUE(std::isinf(sel.tile_cost));
  } else {
    EXPECT_NEAR(sel.tile_cost, best, 1e-12)
        << "cs=" << cs << " di=" << di << " dj=" << dj;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallCaches, Euc3dOptimality,
    ::testing::Values(std::tuple<long, long, long>{256, 37, 41},
                      std::tuple<long, long, long>{256, 48, 48},
                      std::tuple<long, long, long>{256, 100, 100},
                      std::tuple<long, long, long>{256, 341, 200},
                      std::tuple<long, long, long>{512, 130, 130},
                      std::tuple<long, long, long>{512, 200, 200},
                      std::tuple<long, long, long>{512, 255, 257},
                      std::tuple<long, long, long>{512, 64, 96},
                      std::tuple<long, long, long>{1024, 341, 341},
                      std::tuple<long, long, long>{1024, 123, 321}));

TEST(Euc3dOptimality, PaperCaseMatchesExhaustive) {
  // The 2048/200x200 paper anchor, against the full exhaustive search.
  const StencilSpec spec = StencilSpec::jacobi3d();
  const double best = exhaustive_best_cost(2048, 200, 200, spec);
  EXPECT_NEAR(euc3d(2048, 200, 200, spec).tile_cost, best, 1e-12);
  EXPECT_NEAR(best, 360.0 / 286.0, 1e-12);
}

TEST(Euc3dOptimality, DeeperTilesNeverBeatAtdTiles) {
  // Dominance: the best cost at depth atd+1 can't beat depth atd (any
  // deeper conflict-free tile is also conflict-free at the shallower
  // depth).
  for (long di : {130L, 200L, 341L}) {
    StencilSpec s3 = StencilSpec::jacobi3d();
    StencilSpec s4 = s3;
    s4.atd = 4;
    EXPECT_LE(euc3d(2048, di, di, s3).tile_cost,
              euc3d(2048, di, di, s4).tile_cost + 1e-12)
        << di;
  }
}

TEST(Euc3dOptimality, SelectionDeterministic) {
  const StencilSpec spec = StencilSpec::resid27();
  const Euc3dResult a = euc3d(2048, 341, 341, spec);
  const Euc3dResult b = euc3d(2048, 341, 341, spec);
  EXPECT_EQ(a.tile, b.tile);
  EXPECT_EQ(a.array_tile, b.array_tile);
}

}  // namespace
}  // namespace rt::core
