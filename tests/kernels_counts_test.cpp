// Access accounting for the *tiled* kernels: tiling reorders iterations
// but must not change how many accesses each interior point makes — the
// cost difference is purely in cache behaviour, never in work.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/operators.hpp"

namespace rt::kernels {
namespace {

using rt::array::Array3D;
using rt::cachesim::CacheHierarchy;
using rt::cachesim::TracedArray3D;
using rt::core::IterTile;

Array3D<double> grid(long n, long kd, double s) {
  Array3D<double> a(n, n, kd);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) a(i, j, k) = std::sin(s + i + 2 * j + 3 * k);
  return a;
}

class TiledCounts : public ::testing::TestWithParam<IterTile> {};

TEST_P(TiledCounts, JacobiTiledSameAccessCount) {
  const IterTile t = GetParam();
  const long n = 18, kd = 10;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  Array3D<double> a(n, n, kd), b = grid(n, kd, 0.1);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> ta(a, 0, h), tb(b, 1 << 22, h);
  jacobi3d_tiled(ta, tb, 1.0 / 6.0, t);
  EXPECT_EQ(h.stats().l1.accesses, 7u * pts);
}

TEST_P(TiledCounts, ResidTiledSameAccessCount) {
  const IterTile t = GetParam();
  const long n = 14, kd = 9;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  Array3D<double> r(n, n, kd), v = grid(n, kd, 0.2), u = grid(n, kd, 0.3);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> tr(r, 0, h), tv(v, 1 << 22, h), tu(u, 2 << 22, h);
  resid_tiled(tr, tv, tu, nas_mg_a(), t);
  EXPECT_EQ(h.stats().l1.accesses, 29u * pts);
}

TEST_P(TiledCounts, RedBlackTiledSameAccessCount) {
  const IterTile t = GetParam();
  const long n = 16, kd = 12;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  Array3D<double> a = grid(n, kd, 0.4);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> ta(a, 0, h);
  redblack_tiled(ta, 0.4, 0.1, t);
  EXPECT_EQ(h.stats().l1.accesses, 8u * pts);
}

TEST_P(TiledCounts, PsinvTiledSameAccessCount) {
  const IterTile t = GetParam();
  const long n = 14, kd = 9;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  Array3D<double> u = grid(n, kd, 0.5), r = grid(n, kd, 0.6);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> tu(u, 0, h), tr_(r, 1 << 22, h);
  rt::multigrid::psinv_tiled(tu, tr_, rt::multigrid::nas_mg_c(), t);
  EXPECT_EQ(h.stats().l1.accesses, 29u * pts);
}

INSTANTIATE_TEST_SUITE_P(Tiles, TiledCounts,
                         ::testing::Values(IterTile{1, 1}, IterTile{3, 4},
                                           IterTile{5, 5}, IterTile{16, 2},
                                           IterTile{2, 16}, IterTile{30, 30},
                                           IterTile{7, 11}));

TEST(Counts, ReadsVsWritesSplit) {
  const long n = 10, kd = 8;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  Array3D<double> a(n, n, kd), b = grid(n, kd, 0.7);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> ta(a, 0, h), tb(b, 1 << 22, h);
  jacobi3d(ta, tb, 1.0 / 6.0);
  EXPECT_EQ(h.stats().l1.read_accesses, 6u * pts);
  EXPECT_EQ(h.stats().l1.write_accesses, 1u * pts);
}

TEST(Counts, CopyInteriorAccounting) {
  const long n = 10, kd = 8;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  Array3D<double> a = grid(n, kd, 0.8), b(n, n, kd);
  CacheHierarchy h = CacheHierarchy::ultrasparc2();
  TracedArray3D<double> ta(a, 0, h), tb(b, 1 << 22, h);
  copy_interior(tb, ta);
  EXPECT_EQ(h.stats().l1.accesses, 2u * pts);
  EXPECT_EQ(h.stats().l1.write_accesses, pts);
}

}  // namespace
}  // namespace rt::kernels
