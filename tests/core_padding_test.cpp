// GcdPad and Pad tests: the paper's worked examples (Section 3.4.1), the
// gcd conditions, conflict-freedom of the resulting tiles for the padded
// dimensions, and Pad's cost/overhead guarantees vs GcdPad (Section 3.4.2).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "rt/core/conflict.hpp"
#include "rt/core/cost.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad2d.hpp"
#include "rt/core/pad.hpp"

namespace rt::core {
namespace {

const StencilSpec kJac = StencilSpec::jacobi3d();

TEST(GcdPad, PaperTileExample) {
  // Cs = 2048: the paper derives (TI, TJ, TK) = (32, 16, 4), iteration tile
  // (30, 14).
  const PadPlan p = gcd_pad(2048, 200, 200, kJac);
  EXPECT_EQ(p.array_tile, (ArrayTile{32, 16, 4}));
  EXPECT_EQ(p.tile, (IterTile{30, 14}));
}

TEST(GcdPad, PaperPadIntervals) {
  // Paper: "when 224 < DI <= 288, DIp is set to 288 ... in the next
  // 64-interval, DIp is set to 352."
  EXPECT_EQ(gcd_pad(2048, 225, 200, kJac).dip, 288);
  EXPECT_EQ(gcd_pad(2048, 288, 200, kJac).dip, 288);
  EXPECT_EQ(gcd_pad(2048, 289, 200, kJac).dip, 352);
  EXPECT_EQ(gcd_pad(2048, 352, 200, kJac).dip, 352);
  // 200 pads to the nearest odd multiple of 32 >= 200 = 224.
  EXPECT_EQ(gcd_pad(2048, 200, 200, kJac).dip, 224);
}

TEST(GcdPad, MaxPadBounds) {
  // Paper: padding DI by at most 2*TI - 1 = 63, DJ by at most 2*TJ - 1 = 31.
  for (long di = 8; di <= 600; ++di) {
    const PadPlan p = gcd_pad(2048, di, di, kJac);
    EXPECT_GE(p.dip, di);
    EXPECT_LE(p.dip - di, 2 * 32 - 1) << "di=" << di;
    EXPECT_GE(p.djp, di);
    EXPECT_LE(p.djp - di, 2 * 16 - 1) << "dj=" << di;
  }
}

TEST(GcdPad, GcdConditionsHold) {
  // gcd(DIp, Cs) = TI and gcd(DJp, Cs) = TJ (Section 3.4.1).
  for (long di : {100L, 130L, 200L, 255L, 256L, 341L, 400L, 700L}) {
    const PadPlan p = gcd_pad(2048, di, di, kJac);
    EXPECT_EQ(std::gcd(p.dip, 2048L), p.array_tile.ti) << "di=" << di;
    EXPECT_EQ(std::gcd(p.djp, 2048L), p.array_tile.tj) << "di=" << di;
  }
}

TEST(GcdPad, TileVolumeEqualsCache) {
  for (long cs : {512L, 1024L, 2048L, 4096L, 8192L}) {
    const PadPlan p = gcd_pad(cs, 200, 200, kJac);
    EXPECT_EQ(p.array_tile.ti * p.array_tile.tj * p.array_tile.tk, cs);
    // TI is the smallest power of two >= sqrt(cs/tk).
    EXPECT_GE(static_cast<double>(p.array_tile.ti) * p.array_tile.ti,
              static_cast<double>(cs) / p.array_tile.tk - 1e-9);
  }
}

TEST(GcdPad, DeepStencilGetsDeeperTk) {
  StencilSpec deep{"deep", 4, 4, 6};
  EXPECT_EQ(gcd_pad_tk(deep), 8);
  const PadPlan p = gcd_pad(2048, 200, 200, deep);
  EXPECT_EQ(p.array_tile.tk, 8);
}

TEST(GcdPad, TinyCacheTileIsClampedNotDegenerate) {
  // Regression: with a tiny cache the power-of-two array tile can be
  // smaller than the stencil trims (cs = 16, tk = 4 -> TI = 2, TJ = 2;
  // jacobi trims 2/2 would leave a 0 x 0 iteration tile whose tiled loops
  // never advance).  The trimmed tile must be clamped to >= 1 each way.
  const PadPlan p = gcd_pad(16, 10, 10, kJac);
  EXPECT_EQ(p.array_tile, (ArrayTile{2, 2, 4}));
  EXPECT_GE(p.tile.ti, 1);
  EXPECT_GE(p.tile.tj, 1);
}

TEST(GcdPad, ClampedTileStillCostsFinite) {
  // A clamped tile must be usable by the cost model (degenerate tiles cost
  // +inf, which would make Pad's threshold accept anything).
  StencilSpec wide{"wide", 6, 6, 3};
  const PadPlan p = gcd_pad(64, 20, 20, wide);
  EXPECT_GE(p.tile.ti, 1);
  EXPECT_GE(p.tile.tj, 1);
  EXPECT_TRUE(std::isfinite(cost(p.tile, wide)));
}

TEST(GcdPad, RejectsBadArgs) {
  EXPECT_THROW(gcd_pad(2000, 200, 200, kJac), std::invalid_argument);
  EXPECT_THROW(gcd_pad(2048, 0, 200, kJac), std::invalid_argument);
  EXPECT_THROW(gcd_pad(2, 8, 8, kJac), std::invalid_argument);
}

class GcdPadConflictFree : public ::testing::TestWithParam<long> {};

TEST_P(GcdPadConflictFree, ArrayTileConflictFreeAtPaddedDims) {
  const long di = GetParam();
  const PadPlan p = gcd_pad(2048, di, di + 7, kJac);
  EXPECT_TRUE(is_conflict_free(2048, p.dip, p.djp, p.array_tile.ti,
                               p.array_tile.tj, p.array_tile.tk))
      << "di=" << di << " dip=" << p.dip << " djp=" << p.djp;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcdPadConflictFree,
                         ::testing::Values(33L, 100L, 130L, 200L, 224L, 225L,
                                           288L, 289L, 341L, 362L, 400L, 512L,
                                           555L, 700L, 1023L));

TEST(Pad, CostNeverWorseThanGcdPad) {
  for (long di : {130L, 200L, 255L, 341L, 362L, 400L, 700L}) {
    const PadPlan g = gcd_pad(2048, di, di, kJac);
    const PadPlan p = pad(2048, di, di, kJac);
    EXPECT_LE(cost(p.tile, kJac), cost(g.tile, kJac) + 1e-12) << "di=" << di;
  }
}

TEST(Pad, OverheadNeverWorseThanGcdPad) {
  for (long di : {130L, 200L, 255L, 341L, 362L, 400L, 700L}) {
    const PadPlan g = gcd_pad(2048, di, di, kJac);
    const PadPlan p = pad(2048, di, di, kJac);
    EXPECT_LE(p.dip, g.dip) << "di=" << di;
    EXPECT_LE(p.djp, g.djp) << "di=" << di;
    EXPECT_GE(p.dip, di);
    EXPECT_GE(p.djp, di);
  }
}

TEST(Pad, TileConflictFreeAtChosenDims) {
  for (long di : {130L, 200L, 341L, 400L}) {
    const PadPlan p = pad(2048, di, di, kJac);
    // Reconstruct the untrimmed array tile and verify.
    EXPECT_TRUE(is_conflict_free(2048, p.dip, p.djp, p.array_tile.ti,
                                 p.array_tile.tj, p.array_tile.tk))
        << "di=" << di;
    EXPECT_EQ(p.tile.ti, p.array_tile.ti - kJac.trim_i);
    EXPECT_EQ(p.tile.tj, p.array_tile.tj - kJac.trim_j);
  }
}

TEST(Pad, NoPadNeededWhenGoodTileExists) {
  // When the given dims already admit a tile meeting GcdPad's cost
  // threshold, Pad must not pad at all.  (224, 240) are exactly GcdPad's
  // own dims: dip odd multiple of 32, djp odd multiple of 16.
  const PadPlan p = pad(2048, 224, 240, kJac);
  EXPECT_EQ(p.dip, 224);
  EXPECT_EQ(p.djp, 240);
}

TEST(Pad, CoincidingPlanesForcePadding) {
  // 224 x 224: the plane stride 224^2 = 50176 is 0 mod 2048 at distance 2,
  // so *no* 3-deep tile exists unpadded — Pad must move off that size.
  const PadPlan p = pad(2048, 224, 224, kJac);
  EXPECT_EQ(p.dip, 224);  // I dimension is already fine
  EXPECT_GT(p.djp, 224);
  EXPECT_LE(p.djp, 240);
}

TEST(Pad, PathologicalCase341GetsPadded) {
  // 341x341's best unpadded tile is ~(110, 4); Pad must find a better one.
  const PadPlan p = pad(2048, 341, 341, kJac);
  const double unpadded_cost =
      cost(euc3d(2048, 341, 341, kJac).tile, kJac);
  EXPECT_LT(cost(p.tile, kJac), unpadded_cost);
  EXPECT_GT(p.dip + p.djp, 341 + 341);  // some padding was required
}

// --- 2D intra-array padding (Section 2.1 / pad2d) ---

TEST(Pad2d, PathologicalDimsGetSmallPads) {
  // N = 1024 in a 2048-element cache: columns j-1 and j+1 alias exactly.
  EXPECT_FALSE(columns_well_spaced(2048, 1024, 3, 32));
  const long p = pad2d(2048, 1024, 3, 32);
  EXPECT_GT(p, 1024);
  EXPECT_LE(p - 1024, 40);  // a handful of elements
  EXPECT_TRUE(columns_well_spaced(2048, p, 3, 32));
}

TEST(Pad2d, GoodDimsUnchanged) {
  EXPECT_EQ(pad2d(2048, 200, 3, 32), 200);
  EXPECT_EQ(pad2d(2048, 300, 3, 32), 300);
}

TEST(Pad2d, ExactDivisorAliasing) {
  EXPECT_FALSE(columns_well_spaced(2048, 2048, 2, 1));
  EXPECT_FALSE(columns_well_spaced(2048, 512, 5, 600));
  EXPECT_TRUE(columns_well_spaced(2048, 512, 4, 500));
}

TEST(Pad2d, ResultAlwaysSatisfiesCriterion) {
  for (long di = 100; di <= 2100; di += 37) {
    const long p = pad2d(2048, di, 3, 16);
    EXPECT_GE(p, di);
    EXPECT_TRUE(columns_well_spaced(2048, p, 3, 16)) << di;
  }
}

TEST(Pad2d, RejectsBadArgs) {
  EXPECT_THROW(pad2d(0, 10, 3, 4), std::invalid_argument);
  EXPECT_THROW(pad2d(2048, 10, 3, 2000), std::invalid_argument);
}

}  // namespace
}  // namespace rt::core
