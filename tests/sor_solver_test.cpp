// Red-black SOR Poisson solver: convergence, tiled/untiled bitwise
// equivalence, rhs-kernel consistency, and traced execution.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/core/plan.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/multigrid/sor_solver.hpp"

namespace rt::multigrid {
namespace {

using rt::array::Array3D;

TEST(RedBlackRhs, ZeroRhsMatchesPlainKernels) {
  Array3D<double> a1(12, 12, 10), a2(12, 12, 10), zero(12, 12, 10);
  for (long k = 0; k < 10; ++k)
    for (long j = 0; j < 12; ++j)
      for (long i = 0; i < 12; ++i)
        a1(i, j, k) = a2(i, j, k) = std::sin(0.3 * i + 0.5 * j + 0.7 * k);
  rt::kernels::redblack_naive(a1, 0.4, 0.1);
  rt::kernels::redblack_naive_rhs(a2, zero, 0.4, 0.1);
  for (long k = 0; k < 10; ++k)
    for (long j = 0; j < 12; ++j)
      for (long i = 0; i < 12; ++i) ASSERT_EQ(a1(i, j, k), a2(i, j, k));
}

TEST(RedBlackRhs, TiledMatchesNaive) {
  Array3D<double> a1(14, 13, 9), a2(14, 13, 9), r(14, 13, 9);
  for (long k = 0; k < 9; ++k)
    for (long j = 0; j < 13; ++j)
      for (long i = 0; i < 14; ++i) {
        a1(i, j, k) = a2(i, j, k) = std::cos(0.2 * i + 0.4 * j + 0.6 * k);
        r(i, j, k) = 0.01 * (i - j + k);
      }
  rt::kernels::redblack_naive_rhs(a1, r, 0.3, 0.11);
  rt::kernels::redblack_tiled_rhs(a2, r, 0.3, 0.11, rt::core::IterTile{4, 3});
  for (long k = 0; k < 9; ++k)
    for (long j = 0; j < 13; ++j)
      for (long i = 0; i < 14; ++i) ASSERT_EQ(a1(i, j, k), a2(i, j, k));
}

TEST(SorSolver, ConvergesOnPoisson) {
  SorOptions o;
  o.n = 34;
  SorSolver s(o);
  s.setup();
  const double r0 = (s.sweep(), s.residual_linf());
  const int sweeps = s.solve(r0 / 100.0, 400);
  EXPECT_LT(sweeps, 400) << "SOR failed to reduce the residual 100x";
  EXPECT_LT(s.residual_linf(), r0 / 100.0);
}

TEST(SorSolver, ResidualDecreasesMonotonically) {
  SorOptions o;
  o.n = 26;
  o.omega = 1.2;
  SorSolver s(o);
  s.setup();
  s.sweep();
  double prev = s.residual_linf();
  for (int i = 0; i < 10; ++i) {
    s.sweep();
    const double cur = s.residual_linf();
    EXPECT_LE(cur, prev * 1.001) << "sweep " << i;
    prev = cur;
  }
}

TEST(SorSolver, TiledSolverBitwiseEqualsNaive) {
  SorOptions o1, o2;
  o1.n = o2.n = 34;
  o2.plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, 34, 34,
                               rt::core::StencilSpec::redblack3d());
  ASSERT_TRUE(o2.plan.tiled);
  SorSolver s1(o1), s2(o2);
  s1.setup();
  s2.setup();
  for (int i = 0; i < 5; ++i) {
    s1.sweep();
    s2.sweep();
  }
  EXPECT_EQ(s1.residual_linf(), s2.residual_linf());
  for (long k = 0; k < 34; ++k)
    for (long j = 0; j < 34; ++j)
      for (long i = 0; i < 34; ++i)
        ASSERT_EQ(s1.u()(i, j, k), s2.u()(i, j, k));
}

TEST(SorSolver, TracedRunMatchesNative) {
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  SorOptions o;
  o.n = 20;
  SorSolver nat(o), sim(o, &h);
  nat.setup();
  sim.setup();
  nat.sweep();
  sim.sweep();
  EXPECT_EQ(nat.residual_linf(), sim.residual_linf());
  // 9 accesses per interior point per sweep (8 stencil + 1 rhs).
  EXPECT_EQ(h.stats().l1.accesses, 9u * 18 * 18 * 18);
}

TEST(SorSolver, RejectsBadParameters) {
  SorOptions o;
  o.n = 2;
  EXPECT_THROW(SorSolver s(o), std::invalid_argument);
  o.n = 20;
  o.omega = 2.5;
  EXPECT_THROW(SorSolver s(o), std::invalid_argument);
}

TEST(SorSolver, OverRelaxationBeatsGaussSeidel) {
  // omega ~ 1.5 should need fewer sweeps than omega = 1.0 for the same
  // tolerance (that is the point of SOR).
  SorOptions gs, sor;
  gs.n = sor.n = 34;
  gs.omega = 1.0;
  sor.omega = 1.6;
  SorSolver a(gs), b(sor);
  a.setup();
  b.setup();
  a.sweep();
  const double tol = a.residual_linf() / 30.0;
  SorSolver a2(gs), b2(sor);
  a2.setup();
  b2.setup();
  const int na = a2.solve(tol, 500);
  const int nb = b2.solve(tol, 500);
  EXPECT_LT(nb, na);
}

}  // namespace
}  // namespace rt::multigrid
