// Bit-identity of the multigrid-operator row kernels (PSINV, RPRJ3,
// INTERP, red-black-with-RHS) against the accessor operators, across the
// same exhaustive shape sweep as simd_kernels_test.cpp: cubic and
// non-cubic grids, the minimum coarse size n = 3, padded leading
// dimensions (odd pads so rows never share an alignment phase), and tile
// sizes that leave ragged edges or exceed the interior.  The parallel
// compositions (rt/simd/par_rows.hpp and the accessor
// rt/multigrid/par_operators.hpp) must hold the same identity under a
// multi-thread pool — these are the exact code paths the MgSolver and
// SorSolver fast paths dispatch to.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/multigrid/operators.hpp"
#include "rt/multigrid/par_operators.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"
#include "rt/simd/simd.hpp"

namespace rt::simd {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::IterTile;
using rt::par::ThreadPool;

Array3D<double> make_grid(long n1, long n2, long n3, double seed,
                          long p1 = 0, long p2 = 0) {
  Dims3 d = (p1 > 0) ? Dims3::padded(n1, n2, n3, p1, p2)
                     : Dims3::unpadded(n1, n2, n3);
  Array3D<double> a(d);
  for (long k = 0; k < n3; ++k) {
    for (long j = 0; j < n2; ++j) {
      for (long i = 0; i < n1; ++i) {
        a(i, j, k) = std::sin(seed + 0.1 * i + 0.2 * j + 0.3 * k);
      }
    }
  }
  return a;
}

bool interiors_equal(const Array3D<double>& a, const Array3D<double>& b) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (a(i, j, k) != b(i, j, k)) return false;  // bitwise
      }
    }
  }
  return true;
}

std::vector<SimdLevel> levels_under_test() {
  return {SimdLevel::kRows, SimdLevel::kAvx2};
}

struct Shape {
  long n1, n2, n3, ti, tj, p1, p2;
};

class SimdMgEquivalence : public ::testing::TestWithParam<Shape> {
 protected:
  ThreadPool pool_{4};
};

TEST_P(SimdMgEquivalence, PsinvRowsMatchAccessor) {
  const auto [n1, n2, n3, ti, tj, p1, p2] = GetParam();
  const IterTile t{ti, tj};
  // Both the NAS coefficient set (zero corner term) and a fully dense one:
  // the row kernels must reproduce the accessor's term order for every
  // coefficient class, including the corner contributions NAS zeroes out.
  const std::vector<rt::multigrid::SmootherCoeffs> coeff_sets = {
      rt::multigrid::nas_mg_c(),
      rt::multigrid::SmootherCoeffs{-0.4, 0.03, -0.015, 0.007}};
  for (const auto& c : coeff_sets) {
    const PsinvCoeffs cs{c[0], c[1], c[2], c[3]};
    for (SimdLevel lvl : levels_under_test()) {
      const Array3D<double> r = make_grid(n1, n2, n3, 0.7, p1, p2);
      Array3D<double> u1 = make_grid(n1, n2, n3, 0.1, p1, p2);
      Array3D<double> u2 = u1, u3 = u1, u4 = u1, u5 = u1, u6 = u1, u7 = u1;
      rt::multigrid::psinv(u1, r, c);
      psinv_rows(u2, r, cs, lvl);
      EXPECT_TRUE(interiors_equal(u1, u2)) << "rows lvl=" << int(lvl);
      psinv_rows_par(pool_, u3, r, cs, lvl);
      EXPECT_TRUE(interiors_equal(u1, u3)) << "par rows lvl=" << int(lvl);
      rt::multigrid::psinv_par(pool_, u4, r, c);
      EXPECT_TRUE(interiors_equal(u1, u4)) << "accessor par";
      rt::multigrid::psinv_tiled(u5, r, c, t);
      psinv_tiled_rows(u6, r, cs, t, lvl);
      EXPECT_TRUE(interiors_equal(u5, u6)) << "tiled rows lvl=" << int(lvl);
      psinv_tiled_rows_par(pool_, u7, r, cs, t, lvl);
      EXPECT_TRUE(interiors_equal(u5, u7)) << "par tiled lvl=" << int(lvl);
    }
  }
}

TEST_P(SimdMgEquivalence, PsinvTiledParAccessorMatchesSerialTiled) {
  const auto [n1, n2, n3, ti, tj, p1, p2] = GetParam();
  const auto c = rt::multigrid::nas_mg_c();
  const Array3D<double> r = make_grid(n1, n2, n3, 0.5, p1, p2);
  Array3D<double> u1 = make_grid(n1, n2, n3, 0.2, p1, p2);
  Array3D<double> u2 = u1;
  rt::multigrid::psinv_tiled(u1, r, c, IterTile{ti, tj});
  rt::multigrid::psinv_tiled_par(pool_, u2, r, c, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(u1, u2));
}

TEST_P(SimdMgEquivalence, RedBlackRhsRowsMatchAllSerialSchedules) {
  const auto [n1, n2, n3, ti, tj, p1, p2] = GetParam();
  const IterTile t{ti, tj};
  for (SimdLevel lvl : levels_under_test()) {
    const Array3D<double> r = make_grid(n1, n2, n3, 0.9, p1, p2);
    Array3D<double> ref = make_grid(n1, n2, n3, 0.3, p1, p2);
    Array3D<double> a1 = ref, a2 = ref, a3 = ref, a4 = ref, a5 = ref;
    rt::kernels::redblack_naive_rhs(ref, r, 0.4, 0.1);
    redblack_rhs_rows(a1, r, 0.4, 0.1, lvl);
    EXPECT_TRUE(interiors_equal(ref, a1)) << "rows lvl=" << int(lvl);
    redblack_tiled_rhs_rows(a2, r, 0.4, 0.1, t, lvl);
    EXPECT_TRUE(interiors_equal(ref, a2)) << "tiled rows lvl=" << int(lvl);
    redblack_rhs_rows_par(pool_, a3, r, 0.4, 0.1, lvl);
    EXPECT_TRUE(interiors_equal(ref, a3)) << "par rows lvl=" << int(lvl);
    redblack_tiled_rhs_rows_par(pool_, a4, r, 0.4, 0.1, t, lvl);
    EXPECT_TRUE(interiors_equal(ref, a4)) << "par tiled lvl=" << int(lvl);
    // Transitively: the serial fused tiled schedule agrees too.
    rt::kernels::redblack_tiled_rhs(a5, r, 0.4, 0.1, t);
    EXPECT_TRUE(interiors_equal(ref, a5)) << "fused tiled";
  }
}

/// RPRJ3/INTERP pair coarse m with fine 2m - 2 (the MgSolver level
/// relationship); the fine grid optionally carries its own distinct pad.
class SimdMgTransfer : public ::testing::TestWithParam<Shape> {
 protected:
  ThreadPool pool_{4};
};

TEST_P(SimdMgTransfer, Rprj3RowsMatchAccessor) {
  const auto [m1, m2, m3, ti, tj, p1, p2] = GetParam();
  (void)ti;
  (void)tj;
  const long f1 = 2 * m1 - 2, f2 = 2 * m2 - 2, f3 = 2 * m3 - 2;
  for (SimdLevel lvl : levels_under_test()) {
    // Fine grid padded differently from the coarse one on purpose.
    const Array3D<double> r =
        make_grid(f1, f2, f3, 0.4, p1 > 0 ? 2 * p1 + 1 : 0,
                  p2 > 0 ? 2 * p2 - 1 : 0);
    Array3D<double> s1 = make_grid(m1, m2, m3, 0.2, p1, p2);
    Array3D<double> s2 = s1, s3 = s1;
    rt::multigrid::rprj3(s1, r);
    rprj3_rows(s2, r, lvl);
    EXPECT_TRUE(interiors_equal(s1, s2)) << "rows lvl=" << int(lvl);
    rprj3_rows_par(pool_, s3, r, lvl);
    EXPECT_TRUE(interiors_equal(s1, s3)) << "par rows lvl=" << int(lvl);
    Array3D<double> s4 = make_grid(m1, m2, m3, 0.2, p1, p2);
    rt::multigrid::rprj3_par(pool_, s4, r);
    EXPECT_TRUE(interiors_equal(s1, s4)) << "accessor par";
  }
}

TEST_P(SimdMgTransfer, InterpAddRowsMatchAccessor) {
  const auto [m1, m2, m3, ti, tj, p1, p2] = GetParam();
  (void)ti;
  (void)tj;
  const long f1 = 2 * m1 - 2, f2 = 2 * m2 - 2, f3 = 2 * m3 - 2;
  for (SimdLevel lvl : levels_under_test()) {
    const Array3D<double> z = make_grid(m1, m2, m3, 0.6, p1, p2);
    Array3D<double> u1 = make_grid(f1, f2, f3, 0.1,
                                   p1 > 0 ? 2 * p1 + 1 : 0,
                                   p2 > 0 ? 2 * p2 - 1 : 0);
    Array3D<double> u2 = u1, u3 = u1, u4 = u1;
    rt::multigrid::interp_add(u1, z);
    interp_add_rows(u2, z, lvl);
    EXPECT_TRUE(interiors_equal(u1, u2)) << "rows lvl=" << int(lvl);
    interp_add_rows_par(pool_, u3, z, lvl);
    EXPECT_TRUE(interiors_equal(u1, u3)) << "par rows lvl=" << int(lvl);
    rt::multigrid::interp_add_par(pool_, u4, z);
    EXPECT_TRUE(interiors_equal(u1, u4)) << "accessor par";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdMgEquivalence,
    ::testing::Values(
        // Cubic, tile divides / does not divide the interior.
        Shape{8, 8, 8, 3, 3, 0, 0}, Shape{16, 16, 16, 7, 5, 0, 0},
        // Minimum stencil-admitting grid: one interior point per row.
        Shape{3, 3, 3, 1, 1, 0, 0}, Shape{3, 5, 4, 2, 2, 0, 0},
        // Non-cubic, ragged edge tiles.
        Shape{9, 7, 11, 2, 5, 0, 0}, Shape{23, 41, 11, 7, 3, 0, 0},
        Shape{40, 12, 30, 13, 22, 0, 0}, Shape{41, 6, 9, 41, 1, 0, 0},
        // Tile exceeding the interior entirely.
        Shape{12, 30, 5, 100, 100, 0, 0},
        // Padded: odd leading dim (rows never share alignment phase),
        // vector-aligned leading dim, and pad in both dimensions.
        Shape{12, 18, 8, 5, 4, 17, 23}, Shape{12, 18, 8, 5, 4, 16, 18},
        Shape{30, 10, 7, 9, 9, 40, 12},
        // Interior wider than one vector with a scalar remainder.
        Shape{21, 9, 6, 6, 4, 0, 0}, Shape{64, 10, 13, 22, 13, 0, 0}));

INSTANTIATE_TEST_SUITE_P(
    CoarseShapes, SimdMgTransfer,
    ::testing::Values(
        // Minimum coarse grid (n = 3, the MgSolver bottom level) and the
        // first few real level sizes (fine = 2m - 2: 4, 8, 16, ...).
        Shape{3, 3, 3, 0, 0, 0, 0}, Shape{5, 5, 5, 0, 0, 0, 0},
        Shape{9, 9, 9, 0, 0, 0, 0}, Shape{18, 18, 18, 0, 0, 0, 0},
        // Non-cubic coarse grids (exercises per-axis extents).
        Shape{3, 5, 7, 0, 0, 0, 0}, Shape{12, 5, 9, 0, 0, 0, 0},
        // Padded coarse grids; the fine grid derives a different odd pad.
        Shape{9, 9, 9, 0, 0, 13, 11}, Shape{10, 6, 8, 0, 0, 16, 9}));

TEST(SimdMgKernels, PsinvMultiStepStaysBitIdentical) {
  // Smoother applied repeatedly (as the V-cycle does at every level):
  // any divergence compounds; four applications catch it.
  ThreadPool pool(4);
  const auto c = rt::multigrid::nas_mg_c();
  const PsinvCoeffs cs{c[0], c[1], c[2], c[3]};
  for (SimdLevel lvl : levels_under_test()) {
    const Array3D<double> r = make_grid(20, 14, 12, 0.8);
    Array3D<double> u1 = make_grid(20, 14, 12, 0.2);
    Array3D<double> u2 = u1, u3 = u1;
    for (int it = 0; it < 4; ++it) {
      rt::multigrid::psinv(u1, r, c);
      psinv_rows(u2, r, cs, lvl);
      psinv_rows_par(pool, u3, r, cs, lvl);
    }
    EXPECT_TRUE(interiors_equal(u1, u2)) << "serial lvl=" << int(lvl);
    EXPECT_TRUE(interiors_equal(u1, u3)) << "par lvl=" << int(lvl);
  }
}

}  // namespace
}  // namespace rt::simd
