// ThreadPool unit tests: exact index coverage under contention, reuse
// across many jobs, the sequential 1-thread fast path, and edge counts.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "rt/par/thread_pool.hpp"

namespace rt::par {
namespace {

TEST(ThreadPool, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
  ThreadPool p;
  EXPECT_GE(p.num_threads(), 1);
}

TEST(ThreadPool, RequestedWidth) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1);
  EXPECT_EQ(ThreadPool(4).num_threads(), 4);
  EXPECT_EQ(ThreadPool(7).num_threads(), 7);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const long count = 10000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, [&](long i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (long i = 0; i < count; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPool, CountSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for(3, [&](long i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(ThreadPool, ZeroAndNegativeCountAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](long) { calls.fetch_add(1); });
  pool.parallel_for(-5, [&](long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(17, [&](long) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 17);
}

TEST(ThreadPool, SingleThreadRunsSequentiallyInOrder) {
  // The 1-thread pool must behave exactly like a plain loop: same thread,
  // ascending index order (this is what keeps traced runs deterministic).
  ThreadPool pool(1);
  std::vector<long> order;
  pool.parallel_for(50, [&](long i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (long i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ParallelForIsABarrier) {
  // All writes from the job must be visible after parallel_for returns,
  // without any extra synchronisation in the caller.
  ThreadPool pool(4);
  std::vector<long> out(1000, 0);
  pool.parallel_for(1000, [&](long i) { out[static_cast<std::size_t>(i)] = i * i; });
  for (long i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

}  // namespace
}  // namespace rt::par
