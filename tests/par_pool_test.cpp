// ThreadPool unit tests: exact index coverage under contention, reuse
// across many jobs, the sequential 1-thread fast path, and edge counts.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rt/par/thread_pool.hpp"

namespace rt::par {
namespace {

TEST(ThreadPool, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
  ThreadPool p;
  EXPECT_GE(p.num_threads(), 1);
}

TEST(ThreadPool, RequestedWidth) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1);
  EXPECT_EQ(ThreadPool(4).num_threads(), 4);
  EXPECT_EQ(ThreadPool(7).num_threads(), 7);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const long count = 10000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, [&](long i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (long i = 0; i < count; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPool, CountSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for(3, [&](long i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(ThreadPool, ZeroAndNegativeCountAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](long) { calls.fetch_add(1); });
  pool.parallel_for(-5, [&](long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(17, [&](long) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 17);
}

TEST(ThreadPool, SingleThreadRunsSequentiallyInOrder) {
  // The 1-thread pool must behave exactly like a plain loop: same thread,
  // ascending index order (this is what keeps traced runs deterministic).
  ThreadPool pool(1);
  std::vector<long> order;
  pool.parallel_for(50, [&](long i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (long i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ParallelForIsABarrier) {
  // All writes from the job must be visible after parallel_for returns,
  // without any extra synchronisation in the caller.
  ThreadPool pool(4);
  std::vector<long> out(1000, 0);
  pool.parallel_for(1000, [&](long i) { out[static_cast<std::size_t>(i)] = i * i; });
  for (long i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, ConcurrentExternalCallersEachCoverExactlyOnce) {
  // Regression: two threads entering parallel_for on the SAME pool used to
  // race on the job state (body_/count_/generation_) — indices were lost or
  // run twice, silently.  Entry is now serialized on an internal job mutex:
  // both jobs must still see exact once-each coverage.  The TSan gate runs
  // this test; pre-fix it reports the data race even when counts happen to
  // come out right.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr long kCount = 4000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kCount);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      for (int round = 0; round < 5; ++round) {
        pool.parallel_for(kCount, [&hits, c](long i) {
          hits[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]
              .fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (long i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)]
                    .load(),
                5)
          << "caller=" << c << " i=" << i;
    }
  }
}

TEST(ThreadPool, ReentrantParallelForRunsInlineWithoutDeadlock) {
  // A worker body calling parallel_for on its own pool must not block on
  // the job mutex its outer job holds — the nested call degrades to an
  // inline sequential loop on the calling thread.
  ThreadPool pool(4);
  const long outer = 8, inner = 16;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.parallel_for(outer, [&](long o) {
    pool.parallel_for(inner, [&](long i) {
      hits[static_cast<std::size_t>(o * inner + i)].fetch_add(
          1, std::memory_order_relaxed);
    });
  });
  for (long x = 0; x < outer * inner; ++x) {
    EXPECT_EQ(hits[static_cast<std::size_t>(x)].load(), 1) << "x=" << x;
  }
}

}  // namespace
}  // namespace rt::par
