// Copy-optimised tiled Jacobi (Section 3.1 baseline): must compute the
// same values as the plain kernel, and its traced access count must show
// the copy overhead the paper predicts.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/copyopt.hpp"
#include "rt/kernels/jacobi3d.hpp"

namespace rt::kernels {
namespace {

using rt::array::Array3D;
using rt::core::IterTile;

Array3D<double> make_grid(long n1, long n2, long n3, double seed) {
  Array3D<double> a(n1, n2, n3);
  for (long k = 0; k < n3; ++k)
    for (long j = 0; j < n2; ++j)
      for (long i = 0; i < n1; ++i)
        a(i, j, k) = std::sin(seed + 0.1 * i + 0.2 * j + 0.3 * k);
  return a;
}

class CopyOpt : public ::testing::TestWithParam<IterTile> {};

TEST_P(CopyOpt, MatchesPlainKernelBitwise) {
  const IterTile t = GetParam();
  const long n = 20, kd = 11;
  Array3D<double> b = make_grid(n, n, kd, 0.4);
  Array3D<double> a1(n, n, kd), a2(n, n, kd);
  Array3D<double> buf(t.ti + 2, t.tj + 2, 3);
  jacobi3d(a1, b, 1.0 / 6.0);
  jacobi3d_tiled_copy(a2, b, buf, 1.0 / 6.0, t);
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i)
        ASSERT_EQ(a1(i, j, k), a2(i, j, k)) << i << "," << j << "," << k;
}

INSTANTIATE_TEST_SUITE_P(Tiles, CopyOpt,
                         ::testing::Values(IterTile{4, 4}, IterTile{5, 3},
                                           IterTile{18, 18}, IterTile{1, 1},
                                           IterTile{7, 18}, IterTile{18, 7}));

/// Non-cubic and minimum-size grids: the tile walk, the rolling-plane
/// window, and the halo copies must all respect n1 != n2 != n3 — a
/// transposed extent bug would survive the cubic suite above.
struct Shape {
  long n1, n2, n3, ti, tj;
};

class CopyOptShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(CopyOptShapes, MatchesPlainKernelBitwise) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  const IterTile t{ti, tj};
  Array3D<double> b = make_grid(n1, n2, n3, 0.4);
  Array3D<double> a1(n1, n2, n3), a2(n1, n2, n3);
  Array3D<double> buf(t.ti + 2, t.tj + 2, 3);
  jacobi3d(a1, b, 1.0 / 6.0);
  jacobi3d_tiled_copy(a2, b, buf, 1.0 / 6.0, t);
  for (long k = 1; k < n3 - 1; ++k)
    for (long j = 1; j < n2 - 1; ++j)
      for (long i = 1; i < n1 - 1; ++i)
        ASSERT_EQ(a1(i, j, k), a2(i, j, k)) << i << "," << j << "," << k;
}

INSTANTIATE_TEST_SUITE_P(
    NonCubicAndMinimum, CopyOptShapes,
    ::testing::Values(Shape{3, 3, 3, 1, 1},    // single interior point
                      Shape{3, 3, 3, 4, 4},    // tile exceeds interior
                      Shape{3, 9, 5, 2, 3}, Shape{9, 3, 5, 3, 2},
                      Shape{5, 7, 3, 2, 2},    // one interior plane
                      Shape{17, 9, 30, 4, 4}, Shape{23, 41, 11, 7, 3},
                      Shape{40, 12, 6, 13, 22}, Shape{12, 30, 5, 5, 9}));

TEST(CopyOptTrace, CopyOverheadIsVisible) {
  const long n = 32, kd = 12;
  const IterTile t{10, 10};
  Array3D<double> b = make_grid(n, n, kd, 0.2);
  Array3D<double> a(n, n, kd);
  Array3D<double> buf(t.ti + 2, t.tj + 2, 3);
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::TracedArray3D<double> ta(a, 0, h), tb(b, 1 << 22, h),
      tbuf(buf, 2 << 22, h);
  jacobi3d_tiled_copy(ta, tb, tbuf, 1.0 / 6.0, t);
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  // Plain tiled Jacobi makes 7 accesses/pt; the copy variant adds at least
  // 2 more (copy load+store per buffered element).
  EXPECT_GT(h.stats().l1.accesses, 9 * pts);
}

}  // namespace
}  // namespace rt::kernels
