// rt::temporal — validated planner semantics, PlanCache temporal keying,
// and the tentpole contract: the skew and diamond wavefront executors are
// bitwise identical to the serial ping-pong reference for every thread
// count x SimdLevel x tsteps combination, including degraded thread
// spawns (RT_GUARD_FAULTS-style injection).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/temporal.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/guard/status.hpp"
#include "rt/kernels/timeskew.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/simd.hpp"
#include "rt/temporal/wavefront.hpp"

namespace rt::temporal {
namespace {

using rt::array::Array3D;
using rt::core::TemporalMode;
using rt::core::TemporalPlan;
using rt::core::TemporalReport;
using rt::core::temporal_plan_checked;
using rt::guard::Status;
using rt::simd::SimdLevel;

Array3D<double> make_grid(long n1, long n2, long n3, double seed) {
  Array3D<double> a(n1, n2, n3);
  for (long k = 0; k < n3; ++k)
    for (long j = 0; j < n2; ++j)
      for (long i = 0; i < n1; ++i)
        a(i, j, k) = std::cos(seed + 0.05 * i + 0.11 * j + 0.23 * k);
  return a;
}

void expect_bitwise(const Array3D<double>& x, const Array3D<double>& y,
                    const char* what) {
  ASSERT_EQ(x.n1(), y.n1());
  ASSERT_EQ(x.n2(), y.n2());
  ASSERT_EQ(x.n3(), y.n3());
  for (long k = 0; k < x.n3(); ++k)
    for (long j = 0; j < x.n2(); ++j)
      for (long i = 0; i < x.n1(); ++i)
        ASSERT_EQ(x(i, j, k), y(i, j, k))
            << what << " @ " << i << "," << j << "," << k;
}

// ---------------------------------------------------------------------------
// Planner validation matrix
// ---------------------------------------------------------------------------

TEST(TemporalPlanner, ModeNamesRoundTrip) {
  for (TemporalMode m :
       {TemporalMode::kOff, TemporalMode::kSkew, TemporalMode::kDiamond}) {
    TemporalMode back;
    ASSERT_TRUE(rt::core::parse_temporal_mode(
        rt::core::temporal_mode_name(m), &back));
    EXPECT_EQ(back, m);
  }
  TemporalMode m;
  EXPECT_FALSE(rt::core::parse_temporal_mode("wavefront", &m));
  EXPECT_FALSE(rt::core::parse_temporal_mode("", &m));
}

TEST(TemporalPlanner, OffModeIsInvalidArgument) {
  const auto r =
      temporal_plan_checked(TemporalMode::kOff, 1 << 20, 32, 32, 32, 4, 0, 1);
  EXPECT_EQ(r.status, Status::kInvalidArgument);
  EXPECT_EQ(r.plan.mode, TemporalMode::kOff);
}

TEST(TemporalPlanner, RejectsDegenerateInputs) {
  using M = TemporalMode;
  // No interior.
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 1 << 20, 2, 32, 32, 4, 0, 1)
                .status,
            Status::kInvalidArgument);
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 1 << 20, 32, 32, 2, 4, 0, 1)
                .status,
            Status::kInvalidArgument);
  // Non-positive cache target.
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 0, 32, 32, 32, 4, 0, 1).status,
            Status::kInvalidArgument);
  // Negative knobs.
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 1 << 20, 32, 32, 32, -1, 0, 1)
                .status,
            Status::kInvalidArgument);
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 1 << 20, 32, 32, 32, 4, -2, 1)
                .status,
            Status::kInvalidArgument);
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 1 << 20, 32, 32, 32, 4, 0, 0)
                .status,
            Status::kInvalidArgument);
  // Negative halo.
  EXPECT_EQ(temporal_plan_checked(M::kSkew, 1 << 20, 32, 32, 32, 4, 0, 1, -1)
                .status,
            Status::kInvalidArgument);
}

TEST(TemporalPlanner, SkewWindowTooLargeIsInfeasibleNotClamped) {
  // cs of 100 elements cannot hold a (bk + tsteps + 2)-plane ping-pong
  // window of 32x32 planes; the request is kept, not clamped.
  const auto r =
      temporal_plan_checked(TemporalMode::kSkew, 100, 32, 32, 32, 4, 8, 1);
  EXPECT_EQ(r.status, Status::kInfeasible);
  EXPECT_EQ(r.plan.bk, 8) << "explicit bk must never be silently clamped";
  EXPECT_FALSE(r.detail.empty());
}

TEST(TemporalPlanner, DiamondWidthBelowMinimum) {
  const auto r =
      temporal_plan_checked(TemporalMode::kDiamond, 1 << 20, 32, 32, 32, 4, 1,
                            2);
  EXPECT_EQ(r.status, Status::kInvalidArgument);
  EXPECT_GE(r.plan.bk, 2) << "the fallback plan must still be runnable";
}

TEST(TemporalPlanner, AutoPlansAreWellFormed) {
  for (TemporalMode m : {TemporalMode::kSkew, TemporalMode::kDiamond}) {
    const auto r = temporal_plan_checked(m, 1 << 22, 64, 64, 64, 4, 0, 4);
    ASSERT_TRUE(r.ok()) << r.detail;
    EXPECT_EQ(r.plan.mode, m);
    EXPECT_EQ(r.plan.tsteps, 4);
    EXPECT_GE(r.plan.bk, m == TemporalMode::kDiamond ? 2 : 1);
    EXPECT_GE(r.plan.threads, 1);
    EXPECT_GT(r.plan.stages, 0);
    EXPECT_GT(r.plan.occupancy, 0.0);
    EXPECT_LE(r.plan.occupancy, 1.0);
    if (m == TemporalMode::kDiamond) {
      EXPECT_GE(r.plan.tb, 1);
      EXPECT_LE(r.plan.tb, r.plan.bk / 2);
      EXPECT_GE(r.plan.team, 1);
      EXPECT_LE(r.plan.team, r.plan.threads);
    }
  }
}

// ---------------------------------------------------------------------------
// PlanCache temporal keying
// ---------------------------------------------------------------------------

TEST(TemporalPlanCache, EveryTemporalKeyFieldSeparatesEntries) {
  rt::core::PlanCache c;
  const auto base = [&] {
    return c.temporal(TemporalMode::kSkew, 1 << 20, 64, 64, 64, 4, 8, 2, 1);
  };
  base();
  EXPECT_EQ(c.size(), 1u);
  base();
  EXPECT_EQ(c.size(), 1u) << "identical request must hit";
  EXPECT_EQ(c.stats().hits, 1u);

  c.temporal(TemporalMode::kDiamond, 1 << 20, 64, 64, 64, 4, 8, 2, 1);
  EXPECT_EQ(c.size(), 2u) << "mode must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 21, 64, 64, 64, 4, 8, 2, 1);
  EXPECT_EQ(c.size(), 3u) << "cs must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 65, 64, 64, 4, 8, 2, 1);
  EXPECT_EQ(c.size(), 4u) << "n1 must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 64, 65, 64, 4, 8, 2, 1);
  EXPECT_EQ(c.size(), 5u) << "n2 must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 64, 64, 65, 4, 8, 2, 1);
  EXPECT_EQ(c.size(), 6u) << "n3 must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 64, 64, 64, 5, 8, 2, 1);
  EXPECT_EQ(c.size(), 7u) << "tsteps must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 64, 64, 64, 4, 9, 2, 1);
  EXPECT_EQ(c.size(), 8u) << "bk must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 64, 64, 64, 4, 8, 3, 1);
  EXPECT_EQ(c.size(), 9u) << "threads must be part of the key";
  c.temporal(TemporalMode::kSkew, 1 << 20, 64, 64, 64, 4, 8, 2, 2);
  EXPECT_EQ(c.size(), 10u) << "halo must be part of the key";

  c.clear();
  EXPECT_EQ(c.size(), 0u);
}

TEST(TemporalPlanCache, CachedReportMatchesDirectPlanning) {
  rt::core::PlanCache c;
  const auto direct =
      temporal_plan_checked(TemporalMode::kDiamond, 1 << 22, 48, 48, 48, 4, 0,
                            3);
  const auto cached =
      c.temporal(TemporalMode::kDiamond, 1 << 22, 48, 48, 48, 4, 0, 3);
  EXPECT_EQ(cached.status, direct.status);
  EXPECT_EQ(cached.plan.bk, direct.plan.bk);
  EXPECT_EQ(cached.plan.tb, direct.plan.tb);
  EXPECT_EQ(cached.plan.team, direct.plan.team);
  EXPECT_EQ(cached.plan.stages, direct.plan.stages);
}

// ---------------------------------------------------------------------------
// Bitwise identity: executors vs. serial ping-pong reference
// ---------------------------------------------------------------------------

struct RunCfg {
  long n1, n2, n3;
  int tsteps;
  long bk;  // 0 = auto
};

class TemporalIdentity : public ::testing::TestWithParam<RunCfg> {};

std::vector<SimdLevel> levels_under_test() {
  std::vector<SimdLevel> lv = {SimdLevel::kScalar};
  if (rt::simd::resolve(rt::simd::SimdMode::kAuto) != SimdLevel::kScalar) {
    lv.push_back(rt::simd::resolve(rt::simd::SimdMode::kAuto));
  }
  return lv;
}

TEST_P(TemporalIdentity, SkewMatchesPingPong) {
  const auto [n1, n2, n3, tsteps, bk] = GetParam();
  Array3D<double> rb = make_grid(n1, n2, n3, 0.7), ra(n1, n2, n3);
  rt::kernels::jacobi3d_pingpong(ra, rb, 1.0 / 6.0, tsteps);
  for (SimdLevel lvl : levels_under_test()) {
    for (int threads : {1, 2, 3, 4}) {
      const auto rep = temporal_plan_checked(TemporalMode::kSkew, 1 << 22, n1,
                                             n2, n3, tsteps, bk, threads);
      Array3D<double> b = make_grid(n1, n2, n3, 0.7), a(n1, n2, n3);
      rt::par::ThreadPool pool(threads);
      const auto run = jacobi3d_skew_rows(threads > 1 ? &pool : nullptr, a, b,
                                          1.0 / 6.0, rep.plan, lvl);
      EXPECT_GE(run.threads, 1);
      expect_bitwise(ra, a, "skew a");
      expect_bitwise(rb, b, "skew b");
    }
  }
}

TEST_P(TemporalIdentity, DiamondMatchesPingPong) {
  const auto [n1, n2, n3, tsteps, bk] = GetParam();
  Array3D<double> rb = make_grid(n1, n2, n3, 0.7), ra(n1, n2, n3);
  rt::kernels::jacobi3d_pingpong(ra, rb, 1.0 / 6.0, tsteps);
  for (SimdLevel lvl : levels_under_test()) {
    for (int threads : {1, 2, 3, 4}) {
      auto rep = temporal_plan_checked(TemporalMode::kDiamond, 1 << 22, n1, n2,
                                       n3, tsteps, bk, threads);
      Array3D<double> b = make_grid(n1, n2, n3, 0.7), a(n1, n2, n3);
      const auto run = jacobi3d_diamond_rows(a, b, 1.0 / 6.0, rep.plan, lvl);
      // tsteps <= 0 early-returns without spawning (threads = 1 is correct).
      if (tsteps > 0) EXPECT_EQ(run.threads, rep.plan.threads);
      expect_bitwise(ra, a, "diamond a");
      expect_bitwise(rb, b, "diamond b");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TemporalIdentity,
    ::testing::Values(RunCfg{3, 3, 3, 1, 0},    // single interior point
                      RunCfg{3, 3, 3, 5, 2},    // multi-step minimum grid
                      RunCfg{8, 8, 8, 4, 0},    // auto block
                      RunCfg{8, 8, 8, 7, 3},    // tsteps > bk
                      RunCfg{10, 10, 10, 2, 100},  // bk exceeds interior
                      RunCfg{6, 9, 17, 4, 4},   // non-cubic, K largest
                      RunCfg{17, 9, 6, 4, 2},   // non-cubic, one skew block
                      RunCfg{12, 5, 23, 6, 5},
                      RunCfg{9, 9, 9, 0, 2}));  // tsteps = 0: no-op

TEST(TemporalIdentity, ZeroStepsLeavesArraysUntouched) {
  Array3D<double> b = make_grid(8, 8, 8, 0.3), b0 = b;
  Array3D<double> a(8, 8, 8), a0 = a;
  TemporalPlan plan;
  plan.mode = TemporalMode::kSkew;
  plan.tsteps = 0;
  plan.bk = 4;
  jacobi3d_skew_rows(nullptr, a, b, 1.0 / 6.0, plan, SimdLevel::kScalar);
  expect_bitwise(a0, a, "skew zero-step a");
  expect_bitwise(b0, b, "skew zero-step b");
  plan.mode = TemporalMode::kDiamond;
  plan.tb = 1;
  jacobi3d_diamond_rows(a, b, 1.0 / 6.0, plan, SimdLevel::kScalar);
  expect_bitwise(a0, a, "diamond zero-step a");
  expect_bitwise(b0, b, "diamond zero-step b");
}

// ---------------------------------------------------------------------------
// Degraded thread spawn (fault injection) and first-touch init
// ---------------------------------------------------------------------------

TEST(TemporalDegraded, InjectedSpawnFailureShrinksTheRunNotTheResult) {
  auto& inj = rt::guard::FaultInjector::instance();
  inj.disarm_all();
  // Fail every spawn: the diamond must fall back to the calling thread.
  inj.arm(rt::guard::FaultKind::kThreadSpawn, 0, -1);
  const auto rep = temporal_plan_checked(TemporalMode::kDiamond, 1 << 22, 10,
                                         10, 10, 3, 4, 4);
  Array3D<double> rb = make_grid(10, 10, 10, 0.7), ra(10, 10, 10);
  rt::kernels::jacobi3d_pingpong(ra, rb, 1.0 / 6.0, 3);
  Array3D<double> b = make_grid(10, 10, 10, 0.7), a(10, 10, 10);
  const auto run =
      jacobi3d_diamond_rows(a, b, 1.0 / 6.0, rep.plan, SimdLevel::kScalar);
  inj.disarm_all();
  EXPECT_LT(run.threads, rep.plan.threads)
      << "injected spawn failure must be visible in TemporalRun";
  expect_bitwise(ra, a, "degraded diamond a");
  expect_bitwise(rb, b, "degraded diamond b");
}

TEST(TemporalFirstTouch, ZeroesEveryElementSerialAndParallel) {
  for (int threads : {1, 3}) {
    Array3D<double> g = make_grid(9, 7, 11, 0.5);
    rt::par::ThreadPool pool(threads);
    first_touch_zero(threads > 1 ? &pool : nullptr, g);
    for (long k = 0; k < g.n3(); ++k)
      for (long j = 0; j < g.n2(); ++j)
        for (long i = 0; i < g.n1(); ++i) ASSERT_EQ(g(i, j, k), 0.0);
  }
}

}  // namespace
}  // namespace rt::temporal
