// rt::core::PlanCache: the memoized plan_for_checked must return reports
// identical to the direct search (plan fields, status, detail), count hits
// and misses exactly, key on every input that changes the answer (and only
// those), and stay consistent under concurrent lookups.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core {
namespace {

bool same_plan(const TilingPlan& a, const TilingPlan& b) {
  return a.transform == b.transform && a.tiled == b.tiled &&
         a.tile.ti == b.tile.ti && a.tile.tj == b.tile.tj && a.dip == b.dip &&
         a.djp == b.djp;
}

TEST(PlanCache, MissThenHitReturnsIdenticalReport) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, 2048, 200, 200, spec);
  const PlanReport r1 = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  const PlanReport r2 = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  EXPECT_TRUE(same_plan(direct.plan, r1.plan));
  EXPECT_TRUE(same_plan(r1.plan, r2.plan));
  EXPECT_EQ(r1.status, direct.status);
  EXPECT_EQ(r2.status, r1.status);
  EXPECT_EQ(r2.detail, r1.detail);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(PlanCache, EveryKeyComponentSeparatesEntries) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  (void)c.plan(Transform::kPad, 2048, 200, 200, spec);      // transform
  (void)c.plan(Transform::kGcdPad, 4096, 200, 200, spec);   // cs
  (void)c.plan(Transform::kGcdPad, 2048, 300, 200, spec);   // di
  (void)c.plan(Transform::kGcdPad, 2048, 200, 300, spec);   // dj
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200,
               StencilSpec::redblack3d());                  // stencil (atd)
  StencilSpec wide = spec;
  wide.halo = 2;
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, wide);   // stencil (halo)
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, spec, 200);  // n3
  EXPECT_EQ(c.stats().misses, 8u);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.size(), 8u);
}

// Counter width is part of the JSON contract (plan_cache.{hits,misses} are
// emitted as 64-bit integers): a narrowing refactor must fail to compile.
static_assert(std::is_same_v<decltype(PlanCacheStats::hits), std::uint64_t>);
static_assert(std::is_same_v<decltype(PlanCacheStats::misses), std::uint64_t>);

TEST(PlanCache, SpecNameDoesNotAffectTheKey) {
  // Only the numeric fields (trim_i/trim_j/atd) enter the key: a renamed
  // spec with equal parameters is the same plan.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const StencilSpec renamed{"renamed", spec.trim_i, spec.trim_j, spec.atd};
  (void)c.plan(Transform::kGcdPad, 2048, 150, 150, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 150, 150, renamed);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(PlanCache, DegradedReportsAreCachedToo) {
  // A failing search (cs <= 0 -> kInvalidArgument) is memoized with its
  // status and detail: repeat queries must not re-run the search or lose
  // the typed outcome.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, -1, 100, 100, spec);
  ASSERT_EQ(direct.status, rt::guard::Status::kInvalidArgument);
  const PlanReport r1 = c.plan(Transform::kGcdPad, -1, 100, 100, spec);
  const PlanReport r2 = c.plan(Transform::kGcdPad, -1, 100, 100, spec);
  EXPECT_EQ(r1.status, direct.status);
  EXPECT_EQ(r2.status, direct.status);
  EXPECT_EQ(r2.detail, direct.detail);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(PlanCache, ClearResetsEntriesAndCounters) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(PlanCache, HitRate) {
  PlanCacheStats s;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);  // no queries yet: defined as 0
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

TEST(PlanCache, InstanceIsProcessWideAndShared) {
  PlanCache& a = PlanCache::instance();
  PlanCache& b = PlanCache::instance();
  EXPECT_EQ(&a, &b);
}

TEST(PlanCache, ConcurrentLookupsAgreeAndCountEveryQuery) {
  PlanCache c;
  const auto spec = StencilSpec::resid27();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, 2048, 130, 130, spec);
  constexpr int kThreads = 8;
  constexpr int kQueries = 25;
  std::vector<std::thread> ts;
  std::vector<int> bad(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int q = 0; q < kQueries; ++q) {
        const PlanReport r =
            c.plan(Transform::kGcdPad, 2048, 130, 130, spec);
        if (!same_plan(r.plan, direct.plan) || r.status != direct.status) {
          ++bad[t];
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[t], 0) << "thread " << t;
  const auto s = c.stats();
  // Racing first queries may each run the (pure) search, so more than one
  // miss is possible — but every query is counted exactly once and the
  // cache converges to a single entry.
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kQueries);
  EXPECT_GE(s.misses, 1u);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace rt::core
