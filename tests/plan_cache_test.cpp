// rt::core::PlanCache: the memoized plan_for_checked must return reports
// identical to the direct search (plan fields, status, detail), count hits
// and misses exactly, key on every input that changes the answer (and only
// those), and stay consistent under concurrent lookups.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/guard/status.hpp"

namespace rt::core {
namespace {

bool same_plan(const TilingPlan& a, const TilingPlan& b) {
  return a.transform == b.transform && a.tiled == b.tiled &&
         a.tile.ti == b.tile.ti && a.tile.tj == b.tile.tj && a.dip == b.dip &&
         a.djp == b.djp;
}

TEST(PlanCache, MissThenHitReturnsIdenticalReport) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, 2048, 200, 200, spec);
  const PlanReport r1 = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  const PlanReport r2 = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  EXPECT_TRUE(same_plan(direct.plan, r1.plan));
  EXPECT_TRUE(same_plan(r1.plan, r2.plan));
  EXPECT_EQ(r1.status, direct.status);
  EXPECT_EQ(r2.status, r1.status);
  EXPECT_EQ(r2.detail, r1.detail);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(PlanCache, EveryKeyComponentSeparatesEntries) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  (void)c.plan(Transform::kPad, 2048, 200, 200, spec);      // transform
  (void)c.plan(Transform::kGcdPad, 4096, 200, 200, spec);   // cs
  (void)c.plan(Transform::kGcdPad, 2048, 300, 200, spec);   // di
  (void)c.plan(Transform::kGcdPad, 2048, 200, 300, spec);   // dj
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200,
               StencilSpec::redblack3d());                  // stencil (atd)
  StencilSpec wide = spec;
  wide.halo = 2;
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, wide);   // stencil (halo)
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, spec, 200);  // n3
  EXPECT_EQ(c.stats().misses, 8u);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.size(), 8u);
}

TEST(PlanCache, BackendSeparatesEntries) {
  // Identical problems planned through different backends are different
  // keys: a lattice winner must never be served for a model lookup (and
  // vice versa), or a foreign backend's plan would masquerade as the
  // model's.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  CacheGeom g;
  g.cs_elems = 2048;
  g.line_elems = 4;
  g.assoc = 2;
  (void)c.plan_backend(Backend::kModel, Transform::kTile, g, 200, 200, spec);
  (void)c.plan_backend(Backend::kLattice, Transform::kTile, g, 200, 200,
                       spec);
  (void)c.plan_backend(Backend::kOblivious, Transform::kTile, g, 200, 200,
                       spec);
  EXPECT_EQ(c.stats().misses, 3u);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.size(), 3u);
  // And the keys themselves are distinct under the hash/equality pair.
  const PlanKey km =
      PlanCache::make_backend_key(Backend::kModel, Transform::kTile, g, 200,
                                  200, spec);
  const PlanKey kl =
      PlanCache::make_backend_key(Backend::kLattice, Transform::kTile, g,
                                  200, 200, spec);
  const PlanKey ko =
      PlanCache::make_backend_key(Backend::kOblivious, Transform::kTile, g,
                                  200, 200, spec);
  EXPECT_FALSE(km == kl);
  EXPECT_FALSE(km == ko);
  EXPECT_FALSE(kl == ko);
}

TEST(PlanCache, LatticeKeysCarryTheGeometryModelKeysStayCanonical) {
  // The lattice backend's answer depends on line size and ways, so its key
  // carries them; the model backend reads only the capacity, so its key is
  // canonicalized to the historical shape — pre-backend pinned entries
  // (rt::tune stores) keep hitting after the upgrade.
  const auto spec = StencilSpec::jacobi3d();
  CacheGeom a;
  a.cs_elems = 2048;
  a.line_elems = 4;
  a.assoc = 2;
  CacheGeom b = a;
  b.line_elems = 8;
  b.assoc = 4;
  const PlanKey la =
      PlanCache::make_backend_key(Backend::kLattice, Transform::kTile, a,
                                  200, 200, spec);
  const PlanKey lb =
      PlanCache::make_backend_key(Backend::kLattice, Transform::kTile, b,
                                  200, 200, spec);
  EXPECT_FALSE(la == lb);  // different geometry, different lattice answer

  const PlanKey ma =
      PlanCache::make_backend_key(Backend::kModel, Transform::kTile, a, 200,
                                  200, spec);
  const PlanKey mb =
      PlanCache::make_backend_key(Backend::kModel, Transform::kTile, b, 200,
                                  200, spec);
  EXPECT_TRUE(ma == mb);  // model ignores line size/ways: same key
  // ... and it equals the pre-backend key exactly (backend defaults to
  // kModel, geometry fields to the canonical zeros).
  const PlanKey old =
      PlanCache::make_key(Transform::kTile, a.cs_elems, 200, 200, spec);
  EXPECT_TRUE(ma == old);
}

TEST(PlanCache, PlanBackendModelPathMatchesPlan) {
  // plan() delegates to plan_backend(kModel): both entry points must share
  // one cache entry and return identical reports.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  CacheGeom g;
  g.cs_elems = 2048;
  const PlanReport a = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  const PlanReport b =
      c.plan_backend(Backend::kModel, Transform::kGcdPad, g, 200, 200, spec);
  EXPECT_TRUE(same_plan(a.plan, b.plan));
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
}

// Counter width is part of the JSON contract (plan_cache.{hits,misses} are
// emitted as 64-bit integers): a narrowing refactor must fail to compile.
static_assert(std::is_same_v<decltype(PlanCacheStats::hits), std::uint64_t>);
static_assert(std::is_same_v<decltype(PlanCacheStats::misses), std::uint64_t>);

TEST(PlanCache, SpecNameDoesNotAffectTheKey) {
  // Only the numeric fields (trim_i/trim_j/atd) enter the key: a renamed
  // spec with equal parameters is the same plan.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const StencilSpec renamed{"renamed", spec.trim_i, spec.trim_j, spec.atd};
  (void)c.plan(Transform::kGcdPad, 2048, 150, 150, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 150, 150, renamed);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(PlanCache, DegradedReportsAreCachedToo) {
  // A failing search (cs <= 0 -> kInvalidArgument) is memoized with its
  // status and detail: repeat queries must not re-run the search or lose
  // the typed outcome.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, -1, 100, 100, spec);
  ASSERT_EQ(direct.status, rt::guard::Status::kInvalidArgument);
  const PlanReport r1 = c.plan(Transform::kGcdPad, -1, 100, 100, spec);
  const PlanReport r2 = c.plan(Transform::kGcdPad, -1, 100, 100, spec);
  EXPECT_EQ(r1.status, direct.status);
  EXPECT_EQ(r2.status, direct.status);
  EXPECT_EQ(r2.detail, direct.detail);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(PlanCache, ClearResetsEntriesAndCounters) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(PlanCache, HitRate) {
  PlanCacheStats s;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);  // no queries yet: defined as 0
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

TEST(PlanCache, InstanceIsProcessWideAndShared) {
  PlanCache& a = PlanCache::instance();
  PlanCache& b = PlanCache::instance();
  EXPECT_EQ(&a, &b);
}

TEST(PlanCache, PinnedEntriesServeAheadOfTheModelSearch) {
  // rt::tune installs measured winners by pinning: the pinned report must
  // answer the exact plan() lookup solvers make, beat an already-memoized
  // model entry, count as a pinned hit, and be replaceable by a repeat pin.
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  const PlanReport model = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);

  PlanReport tuned;
  tuned.plan.transform = Transform::kGcdPad;
  tuned.plan.tiled = true;
  tuned.plan.tile = IterTile{64, 64};
  tuned.plan.dip = 208;
  tuned.plan.djp = 200;
  tuned.detail = "autotuned(tile*4)";
  c.pin(PlanCache::make_key(Transform::kGcdPad, 2048, 200, 200, spec), tuned);
  EXPECT_EQ(c.pinned_size(), 1u);

  const PlanReport served = c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  EXPECT_FALSE(same_plan(served.plan, model.plan));
  EXPECT_TRUE(same_plan(served.plan, tuned.plan));
  EXPECT_EQ(served.detail, "autotuned(tile*4)");
  EXPECT_EQ(c.stats().pinned_hits, 1u);
  EXPECT_EQ(c.stats().hits, 1u);  // pinned hits are hits too

  tuned.plan.tile = IterTile{32, 32};
  c.pin(PlanCache::make_key(Transform::kGcdPad, 2048, 200, 200, spec), tuned);
  EXPECT_EQ(c.pinned_size(), 1u);  // replaced, not duplicated
  EXPECT_EQ(c.plan(Transform::kGcdPad, 2048, 200, 200, spec).plan.tile.ti, 32);
}

TEST(PlanCache, PinnedTemporalEntriesServeTemporalLookups) {
  PlanCache c;
  TemporalReport tuned;
  tuned.plan.mode = TemporalMode::kSkew;
  tuned.plan.tsteps = 4;
  tuned.plan.bk = 48;
  tuned.plan.threads = 2;
  tuned.detail = "autotuned(bk*2)";
  c.pin_temporal(PlanCache::make_temporal_key(TemporalMode::kSkew, 1 << 20,
                                              200, 200, 200, 4, 0, 2, 1),
                 tuned);
  const TemporalReport served =
      c.temporal(TemporalMode::kSkew, 1 << 20, 200, 200, 200, 4, 0, 2, 1);
  EXPECT_EQ(served.plan.bk, 48);
  EXPECT_EQ(served.detail, "autotuned(bk*2)");
  EXPECT_EQ(c.stats().pinned_hits, 1u);
  // A different tsteps misses the pin and runs the real planner.
  const TemporalReport other =
      c.temporal(TemporalMode::kSkew, 1 << 20, 200, 200, 200, 2, 0, 2, 1);
  EXPECT_EQ(other.detail.find("autotuned"), std::string::npos);
  EXPECT_EQ(c.stats().pinned_hits, 1u);
}

TEST(PlanCache, CapacityCapEvictsOldestMemoizedEntriesFifo) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  c.set_capacity(2);
  EXPECT_EQ(c.capacity(), 2u);
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 110, 110, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 120, 120, spec);  // evicts 100
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.stats().evictions, 1u);

  // The evicted key re-runs the search (a miss), the survivors hit.
  (void)c.plan(Transform::kGcdPad, 2048, 120, 120, spec);
  EXPECT_EQ(c.stats().hits, 1u);
  (void)c.plan(Transform::kGcdPad, 2048, 100, 100, spec);  // miss again
  EXPECT_EQ(c.stats().misses, 4u);
  EXPECT_EQ(c.stats().evictions, 2u);  // its re-insert evicted 110

  // Shrinking below the current size evicts immediately.
  c.set_capacity(1);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.stats().evictions, 3u);
}

TEST(PlanCache, PinnedEntriesAreExemptFromTheCapacityCap) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  c.set_capacity(1);
  PlanReport tuned;
  tuned.plan.dip = 123;
  tuned.detail = "autotuned(untiled)";
  c.pin(PlanCache::make_key(Transform::kGcdPad, 2048, 100, 100, spec), tuned);
  (void)c.plan(Transform::kGcdPad, 2048, 200, 200, spec);
  (void)c.plan(Transform::kGcdPad, 2048, 300, 300, spec);  // churns memoized
  EXPECT_EQ(c.pinned_size(), 1u);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.plan(Transform::kGcdPad, 2048, 100, 100, spec).plan.dip, 123);
}

TEST(PlanCache, UnlimitedCapacityNeverEvicts) {
  PlanCache c;
  const auto spec = StencilSpec::jacobi3d();
  for (long di = 100; di < 140; ++di) {
    (void)c.plan(Transform::kGcdPad, 2048, di, di, spec);
  }
  EXPECT_EQ(c.size(), 40u);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(PlanCache, ConcurrentClearVsLookupIsSafeAndConverges) {
  // clear() is documented safe against racing queries: they re-run the
  // pure search and repopulate.  Hammer both paths (plus a pinner) and
  // check nothing tears — every served report matches the direct search.
  PlanCache c;
  const auto spec = StencilSpec::resid27();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, 2048, 130, 130, spec);
  constexpr int kReaders = 4;
  constexpr int kQueries = 200;
  std::vector<std::thread> ts;
  std::vector<int> bad(kReaders, 0);
  for (int t = 0; t < kReaders; ++t) {
    ts.emplace_back([&, t] {
      for (int q = 0; q < kQueries; ++q) {
        const PlanReport r =
            c.plan(Transform::kGcdPad, 2048, 130 + (q % 3), 130, spec);
        if (q % 3 == 0 &&
            (!same_plan(r.plan, direct.plan) || r.status != direct.status)) {
          ++bad[t];
        }
      }
    });
  }
  ts.emplace_back([&] {
    for (int q = 0; q < 50; ++q) {
      c.clear();
      std::this_thread::yield();
    }
  });
  ts.emplace_back([&] {
    PlanReport tuned;
    tuned.detail = "autotuned(untiled)";
    const PlanKey k =
        PlanCache::make_key(Transform::kGcdPad, 2048, 999, 999, spec);
    for (int q = 0; q < 50; ++q) {
      c.pin(k, tuned);
      (void)c.pinned_size();
      std::this_thread::yield();
    }
  });
  for (auto& th : ts) th.join();
  for (int t = 0; t < kReaders; ++t) EXPECT_EQ(bad[t], 0) << "thread " << t;
  // After the dust settles the cache still answers correctly.
  EXPECT_TRUE(same_plan(
      c.plan(Transform::kGcdPad, 2048, 130, 130, spec).plan, direct.plan));
}

TEST(PlanCache, ConcurrentLookupsAgreeAndCountEveryQuery) {
  PlanCache c;
  const auto spec = StencilSpec::resid27();
  const PlanReport direct =
      plan_for_checked(Transform::kGcdPad, 2048, 130, 130, spec);
  constexpr int kThreads = 8;
  constexpr int kQueries = 25;
  std::vector<std::thread> ts;
  std::vector<int> bad(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int q = 0; q < kQueries; ++q) {
        const PlanReport r =
            c.plan(Transform::kGcdPad, 2048, 130, 130, spec);
        if (!same_plan(r.plan, direct.plan) || r.status != direct.status) {
          ++bad[t];
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[t], 0) << "thread " << t;
  const auto s = c.stats();
  // Racing first queries may each run the (pure) search, so more than one
  // miss is possible — but every query is counted exactly once and the
  // cache converges to a single entry.
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kQueries);
  EXPECT_GE(s.misses, 1u);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace rt::core
