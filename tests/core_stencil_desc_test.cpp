// Stencil descriptor tests: spec derivation matches the paper's per-kernel
// parameters, and the generic engine reproduces the hand-written kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/stencil_desc.hpp"
#include "rt/kernels/generic.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/resid.hpp"

namespace rt::core {
namespace {

using rt::array::Array3D;

Array3D<double> make_grid(long n, long kd, double seed) {
  Array3D<double> a(n, n, kd);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i)
        a(i, j, k) = std::sin(seed + 0.07 * i + 0.13 * j + 0.19 * k);
  return a;
}

TEST(StencilDesc, Jacobi6DerivesPaperSpec) {
  const StencilSpec s = StencilDesc::jacobi6().derive_spec();
  EXPECT_EQ(s.trim_i, 2);
  EXPECT_EQ(s.trim_j, 2);
  EXPECT_EQ(s.atd, 3);
}

TEST(StencilDesc, Full27DerivesPaperSpec) {
  const StencilSpec s =
      StencilDesc::full27(-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
          .derive_spec();
  EXPECT_EQ(s.trim_i, 2);
  EXPECT_EQ(s.trim_j, 2);
  EXPECT_EQ(s.atd, 3);
}

TEST(StencilDesc, AsymmetricWindow) {
  // Fused red-black reads planes k-1..k+2: a descriptor with that window
  // must derive ATD 4 (the paper's red-black tile depth).
  StencilDesc d;
  d.points = {{0, 0, -1, 1.0}, {0, 0, 2, 1.0}, {-1, 0, 0, 1.0},
              {3, 0, 0, 1.0}, {0, -2, 0, 1.0}, {0, 1, 0, 1.0}};
  const StencilSpec s = d.derive_spec();
  EXPECT_EQ(s.atd, 4);
  EXPECT_EQ(s.trim_i, 4);  // -1..3
  EXPECT_EQ(s.trim_j, 3);  // -2..1
}

TEST(StencilDesc, EmptyThrows) {
  EXPECT_THROW(StencilDesc{}.derive_spec(), std::invalid_argument);
}

TEST(StencilDesc, Full27Has27Points) {
  const StencilDesc d = StencilDesc::full27(1, 2, 3, 4);
  EXPECT_EQ(d.arity(), 27u);
  double sum = 0;
  for (const auto& p : d.points) sum += p.w;
  EXPECT_DOUBLE_EQ(sum, 1 + 6 * 2 + 12 * 3 + 8 * 4);
}

TEST(GenericEngine, MatchesHandWrittenJacobi) {
  const long n = 14, kd = 10;
  Array3D<double> b = make_grid(n, kd, 0.5);
  Array3D<double> a1(n, n, kd), a2(n, n, kd);
  rt::kernels::jacobi3d(a1, b, 1.0 / 6.0);
  rt::kernels::apply_stencil(a2, b, StencilDesc::jacobi6(1.0 / 6.0));
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i)
        ASSERT_NEAR(a1(i, j, k), a2(i, j, k), 1e-15);
}

TEST(GenericEngine, MatchesResidOperator) {
  // resid computes r = v - A u; the generic engine computing A u must give
  // v - r.
  const long n = 12, kd = 9;
  Array3D<double> u = make_grid(n, kd, 0.2), v = make_grid(n, kd, 0.9);
  Array3D<double> r(n, n, kd), au(n, n, kd);
  const auto a = rt::kernels::nas_mg_a();
  rt::kernels::resid(r, v, u, a);
  rt::kernels::apply_stencil(au, u,
                             StencilDesc::full27(a[0], a[1], a[2], a[3]));
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i)
        ASSERT_NEAR(r(i, j, k), v(i, j, k) - au(i, j, k), 1e-12);
}

class GenericTiled : public ::testing::TestWithParam<IterTile> {};

TEST_P(GenericTiled, TiledMatchesUntiled) {
  const IterTile t = GetParam();
  const long n = 16, kd = 9;
  Array3D<double> b = make_grid(n, kd, 0.4);
  Array3D<double> a1(n, n, kd), a2(n, n, kd);
  const StencilDesc d = StencilDesc::full27(0.5, -0.1, 0.02, 0.003);
  rt::kernels::apply_stencil(a1, b, d);
  rt::kernels::apply_stencil_tiled(a2, b, d, t);
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i)
        ASSERT_EQ(a1(i, j, k), a2(i, j, k));
}

INSTANTIATE_TEST_SUITE_P(Tiles, GenericTiled,
                         ::testing::Values(IterTile{1, 1}, IterTile{3, 5},
                                           IterTile{14, 2}, IterTile{4, 14},
                                           IterTile{30, 30}, IterTile{7, 7}));

TEST(GenericEngine, PlannerWorksWithDerivedSpec) {
  // End-to-end: derive the spec, plan, and confirm the plan matches what
  // the registry's hand-maintained spec yields.
  const StencilSpec derived = StencilDesc::jacobi6().derive_spec();
  const auto p1 = plan_for(Transform::kPad, 2048, 341, 341, derived);
  const auto p2 =
      plan_for(Transform::kPad, 2048, 341, 341, StencilSpec::jacobi3d());
  EXPECT_EQ(p1.tile, p2.tile);
  EXPECT_EQ(p1.dip, p2.dip);
  EXPECT_EQ(p1.djp, p2.djp);
}

}  // namespace
}  // namespace rt::core
