// Paper-shape regression tests: the qualitative facts of Figures 14-19
// pinned as assertions, so refactoring cannot silently lose the
// reproduction.  (Absolute values are checked loosely; shapes strictly.)

#include <gtest/gtest.h>

#include "rt/bench/runner.hpp"

namespace rt::bench {
namespace {

using rt::core::Transform;
using rt::kernels::KernelId;

RunOptions opts() {
  RunOptions o;
  o.time_steps = 2;
  return o;
}

double l1(KernelId k, Transform t, long n) {
  return run_kernel(k, t, n, opts()).l1_miss_pct;
}

TEST(PaperShape, OrigSpikesAtPathologicalSizes) {
  // Fig. 14 top: Orig's miss rate is flat except conflict spikes; N=320
  // (column stride aliasing: 2*320 divides 2048*... ) is catastrophic.
  const double base = l1(KernelId::kJacobi, Transform::kOrig, 220);
  EXPECT_GT(l1(KernelId::kJacobi, Transform::kOrig, 320), base + 15.0);
  EXPECT_GT(l1(KernelId::kJacobi, Transform::kOrig, 300), base + 3.0);
}

TEST(PaperShape, GcdPadFlatAcrossSizes) {
  // Fig. 14 middle: GcdPad's curve is low and stable, including at the
  // sizes where Orig spikes.
  double lo = 1e9, hi = -1e9;
  for (long n : {220L, 260L, 300L, 320L, 400L}) {
    const double v = l1(KernelId::kJacobi, Transform::kGcdPad, n);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi - lo, 2.0) << "GcdPad should be stable (paper Fig. 14)";
  EXPECT_LT(hi, 31.0);
}

TEST(PaperShape, PadFlatAcrossSizes) {
  double hi = -1e9;
  for (long n : {260L, 320L, 400L}) {
    hi = std::max(hi, l1(KernelId::kJacobi, Transform::kPad, n));
  }
  EXPECT_LT(hi, 31.5);
}

TEST(PaperShape, Euc3dFailsWhenPlanesAlias) {
  // N=320: plane stride 320^2 ≡ 0 (mod 2048) — no conflict-free depth-3
  // tile exists, Euc3D falls back to untiled and inherits Orig's spike.
  // This is the paper's motivation for padding (Section 3.4).
  const double euc = l1(KernelId::kJacobi, Transform::kEuc3d, 320);
  const double orig = l1(KernelId::kJacobi, Transform::kOrig, 320);
  const double gcd = l1(KernelId::kJacobi, Transform::kGcdPad, 320);
  EXPECT_NEAR(euc, orig, 1.0);
  EXPECT_LT(gcd, euc - 15.0);
}

TEST(PaperShape, PaddingAloneRemovesSpikesKeepsCapacityLoss) {
  // Fig. 14 bottom: GcdPadNT flattens Orig's spikes but stays above
  // GcdPad (it cannot recover the K-loop group reuse).
  const double nt320 = l1(KernelId::kJacobi, Transform::kGcdPadNT, 320);
  const double nt220 = l1(KernelId::kJacobi, Transform::kGcdPadNT, 220);
  EXPECT_NEAR(nt320, nt220, 1.5) << "padding alone must remove the spike";
  EXPECT_GT(nt320, l1(KernelId::kJacobi, Transform::kGcdPad, 320) + 2.0);
}

TEST(PaperShape, RedBlackGainsExceedJacobi) {
  // Table 3: REDBLACK's tiling gains dwarf JACOBI's (spatial + temporal
  // reuse both recovered).
  const auto o = opts();
  const auto j_orig = run_kernel(KernelId::kJacobi, Transform::kOrig, 300, o);
  const auto j_gcd = run_kernel(KernelId::kJacobi, Transform::kGcdPad, 300, o);
  const auto r_orig =
      run_kernel(KernelId::kRedBlack, Transform::kOrig, 300, o);
  const auto r_gcd =
      run_kernel(KernelId::kRedBlack, Transform::kGcdPad, 300, o);
  const double j_gain = j_gcd.sim_mflops / j_orig.sim_mflops;
  const double r_gain = r_gcd.sim_mflops / r_orig.sim_mflops;
  EXPECT_GT(r_gain, j_gain + 0.3);
  EXPECT_GT(r_gain, 1.5);
}

TEST(PaperShape, OrigL1RatesNearPaper) {
  // Paper Table 3 column 2: JACOBI 32.7, REDBLACK 22.3, RESID 10.1 — our
  // simulated values must land in the same neighbourhood at a typical
  // (non-spike) size.
  EXPECT_NEAR(l1(KernelId::kJacobi, Transform::kOrig, 280), 32.7, 8.0);
  EXPECT_NEAR(l1(KernelId::kRedBlack, Transform::kOrig, 280), 22.3, 6.0);
  EXPECT_NEAR(l1(KernelId::kResid, Transform::kOrig, 280), 10.1, 4.0);
}

}  // namespace
}  // namespace rt::bench
