// Unit tests for the rt::guard robustness layer: typed statuses, the
// deterministic fault injector, overflow-checked allocation sizes, the
// NaN/Inf verify sweeps and the per-run watchdog.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <limits>
#include <stdexcept>

#include "rt/array/array3d.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/guard/status.hpp"
#include "rt/guard/verify.hpp"
#include "rt/guard/watchdog.hpp"
#include "rt/par/thread_pool.hpp"

namespace rt::guard {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;

/// Every test that arms faults must leave the process-wide injector clean,
/// including on assertion failure.
class GuardFixture : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

TEST(Status, NamesAreStableTokensAndRoundTrip) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(status_name(Status::kInfeasible), "infeasible");
  EXPECT_STREQ(status_name(Status::kFellBackUntiled), "fell_back_untiled");
  EXPECT_STREQ(status_name(Status::kOverflow), "overflow");
  EXPECT_STREQ(status_name(Status::kAllocFailed), "alloc_failed");
  EXPECT_STREQ(status_name(Status::kNonFinite), "nonfinite");
  EXPECT_STREQ(status_name(Status::kTimeout), "timeout");
  EXPECT_STREQ(status_name(Status::kCorrupt), "corrupt");
  EXPECT_STREQ(status_name(Status::kStale), "stale");
  EXPECT_STREQ(status_name(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(status_name(Status::kIoError), "io_error");
  for (int i = 0; i <= static_cast<int>(Status::kIoError); ++i) {
    const auto s = static_cast<Status>(i);
    Status back;
    ASSERT_TRUE(parse_status(status_name(s), &back)) << status_name(s);
    EXPECT_EQ(back, s);
  }
  Status out;
  EXPECT_FALSE(parse_status("bogus", &out));
  EXPECT_FALSE(parse_status("", &out));
}

TEST(Expected, HoldsValueOrStatusWithDetail) {
  const Expected<long> v(42L);
  EXPECT_TRUE(v.ok());
  EXPECT_TRUE(static_cast<bool>(v));
  EXPECT_EQ(v.status(), Status::kOk);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);

  const Expected<long> e(Status::kInfeasible, "cache too small");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status(), Status::kInfeasible);
  EXPECT_EQ(e.detail(), "cache too small");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(FaultKinds, NamesRoundTrip) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const auto k = static_cast<FaultKind>(i);
    FaultKind back;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(k), &back));
    EXPECT_EQ(back, k);
  }
  FaultKind out;
  EXPECT_FALSE(parse_fault_kind("nope", &out));
}

TEST_F(GuardFixture, DisarmedInjectorNeverFires) {
  auto& fi = FaultInjector::instance();
  EXPECT_FALSE(FaultInjector::armed(FaultKind::kAlloc));
  EXPECT_FALSE(fi.should_fail(FaultKind::kAlloc));
}

TEST_F(GuardFixture, ArmAfterCountFiresDeterministically) {
  auto& fi = FaultInjector::instance();
  // Skip the first 2 triggers, then fire exactly 3 times.
  fi.arm(FaultKind::kCounterOpen, /*after=*/2, /*count=*/3);
  EXPECT_TRUE(FaultInjector::armed(FaultKind::kCounterOpen));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fi.should_fail(FaultKind::kCounterOpen)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.triggers(FaultKind::kCounterOpen), 10);
  EXPECT_EQ(fi.fired(FaultKind::kCounterOpen), 3);
  fi.disarm(FaultKind::kCounterOpen);
  EXPECT_FALSE(FaultInjector::armed(FaultKind::kCounterOpen));
  EXPECT_FALSE(fi.should_fail(FaultKind::kCounterOpen));
}

TEST_F(GuardFixture, UnlimitedCountFiresUntilDisarmed) {
  auto& fi = FaultInjector::instance();
  fi.arm(FaultKind::kNanInput);  // after = 0, count = -1
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fi.should_fail(FaultKind::kNanInput));
  fi.disarm(FaultKind::kNanInput);
  EXPECT_FALSE(fi.should_fail(FaultKind::kNanInput));
}

TEST_F(GuardFixture, ParseSpecArmsClauses) {
  auto& fi = FaultInjector::instance();
  std::string err;
  ASSERT_TRUE(fi.parse_spec("alloc:1:2,counter", &err)) << err;
  EXPECT_TRUE(FaultInjector::armed(FaultKind::kAlloc));
  EXPECT_TRUE(FaultInjector::armed(FaultKind::kCounterOpen));
  EXPECT_FALSE(FaultInjector::armed(FaultKind::kThreadSpawn));
  // alloc skips one trigger, then fires twice.
  EXPECT_FALSE(fi.should_fail(FaultKind::kAlloc));
  EXPECT_TRUE(fi.should_fail(FaultKind::kAlloc));
  EXPECT_TRUE(fi.should_fail(FaultKind::kAlloc));
  EXPECT_FALSE(fi.should_fail(FaultKind::kAlloc));
}

TEST_F(GuardFixture, ParseSpecRejectsMalformedClauses) {
  auto& fi = FaultInjector::instance();
  std::string err;
  EXPECT_FALSE(fi.parse_spec("alloc:abc", &err));
  EXPECT_EQ(err, "alloc:abc");
  EXPECT_FALSE(fi.parse_spec("unknownkind", &err));
  EXPECT_EQ(err, "unknownkind");
  EXPECT_FALSE(fi.parse_spec("alloc:", &err));
  // Empty clauses (stray commas) are tolerated.
  EXPECT_TRUE(fi.parse_spec(",,hang,", &err));
  EXPECT_TRUE(FaultInjector::armed(FaultKind::kHang));
}

TEST_F(GuardFixture, InjectedAllocFailureThrowsBadAlloc) {
  FaultInjector::instance().arm(FaultKind::kAlloc);
  EXPECT_THROW(Array3D<double>(Dims3::unpadded(8, 8, 8)), std::bad_alloc);
  FaultInjector::instance().disarm(FaultKind::kAlloc);
  // The same allocation succeeds once disarmed: the failure was injected,
  // not real.
  const Array3D<double> a(Dims3::unpadded(8, 8, 8));
  EXPECT_EQ(a.size(), 8u * 8u * 8u);
}

TEST(CheckedAllocElems, MatchesUncheckedWhenRepresentable) {
  const Dims3 d = Dims3::padded(100, 100, 30, 104, 102);
  const auto n = d.checked_alloc_elems();
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, d.alloc_elems());
  EXPECT_EQ(*n, 104L * 102L * 30L);

  const auto d2 = rt::array::Dims2::padded(100, 100, 104);
  ASSERT_TRUE(d2.checked_alloc_elems().has_value());
  EXPECT_EQ(*d2.checked_alloc_elems(), 104L * 100L);
}

TEST(CheckedAllocElems, OverflowIsNulloptNotWraparound) {
  const long big = 4'000'000'000L;  // big * big overflows long
  EXPECT_FALSE(Dims3::padded(4, 4, 2, big, big).checked_alloc_elems());
  // Plane fits, total does not.
  const long half = 3'000'000'000L;
  EXPECT_FALSE(Dims3::padded(4, 4, 30, half, half).checked_alloc_elems());
  EXPECT_FALSE(
      rt::array::Dims2::padded(4, big, big).checked_alloc_elems());
}

TEST(CheckedAllocElems, ArrayCtorThrowsLengthErrorOnOverflow) {
  const long big = 4'000'000'000L;
  EXPECT_THROW(Array3D<double>(Dims3::padded(4, 4, 2, big, big)),
               std::length_error);
  EXPECT_THROW(rt::array::Array2D<double>(rt::array::Dims2::padded(4, big, big)),
               std::length_error);
}

TEST(VerifyMode, NamesRoundTrip) {
  EXPECT_STREQ(verify_mode_name(VerifyMode::kOff), "off");
  EXPECT_STREQ(verify_mode_name(VerifyMode::kPost), "post");
  EXPECT_STREQ(verify_mode_name(VerifyMode::kPara), "para");
  VerifyMode m;
  ASSERT_TRUE(parse_verify_mode("para", &m));
  EXPECT_EQ(m, VerifyMode::kPara);
  EXPECT_FALSE(parse_verify_mode("maybe", &m));
}

TEST(VerifyFinite, CountsNanAndInfInLogicalRegionOnly) {
  Array3D<double> a(Dims3::padded(10, 10, 5, 16, 12), 1.0);
  EXPECT_EQ(count_nonfinite(a), 0);
  a(3, 4, 2) = std::numeric_limits<double>::quiet_NaN();
  a(0, 0, 0) = std::numeric_limits<double>::infinity();
  a(9, 9, 4) = -std::numeric_limits<double>::infinity();
  // Padding slack is storage, not data: a poisoned pad element (i >= n1)
  // must not count.
  a(12, 4, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(count_nonfinite(a), 3);
}

TEST(VerifyFinite, ParallelSweepMatchesSerial) {
  Array3D<double> a(Dims3::unpadded(20, 20, 16), 0.5);
  a(1, 2, 3) = std::numeric_limits<double>::quiet_NaN();
  a(19, 19, 15) = std::numeric_limits<double>::infinity();
  a(0, 7, 9) = std::numeric_limits<double>::quiet_NaN();
  rt::par::ThreadPool pool(4);
  EXPECT_EQ(count_nonfinite_par(pool, a), count_nonfinite(a));
  EXPECT_EQ(count_nonfinite_par(pool, a), 3);
}

TEST(Watchdog, CompletedTaskReturnsBeforeDeadline) {
  int ran = 0;
  const WatchdogResult w = run_with_deadline(
      [&ran] { ++ran; }, std::chrono::milliseconds(5000));
  EXPECT_TRUE(w.completed);
  EXPECT_FALSE(w.abandoned);
  EXPECT_EQ(ran, 1);
}

TEST(Watchdog, CompletedTaskExceptionIsRethrown) {
  EXPECT_THROW(
      run_with_deadline([] { throw std::runtime_error("boom"); },
                        std::chrono::milliseconds(5000)),
      std::runtime_error);
}

TEST_F(GuardFixture, WatchdogCancelsInjectedHangWithinGrace) {
  FaultInjector::instance().arm(FaultKind::kHang);
  const WatchdogResult w = run_with_deadline(
      [] { FaultInjector::instance().hang_point(); },
      /*timeout=*/std::chrono::milliseconds(50),
      /*grace=*/std::chrono::milliseconds(5000));
  // The deadline expired (the task was hung), but cancelling the injected
  // hang let the worker finish inside the grace period — joined, not leaked.
  EXPECT_FALSE(w.completed);
  EXPECT_FALSE(w.abandoned);
  // cancel_hangs() disarms the hang so later runs proceed normally.
  EXPECT_FALSE(FaultInjector::armed(FaultKind::kHang));
}

TEST_F(GuardFixture, HangPointIsNoOpWhenDisarmed) {
  FaultInjector::instance().hang_point();  // must return immediately
  SUCCEED();
}

TEST(Watchdog, AbandonedThreadCountIsMonotonicAndReported) {
  const long before = abandoned_thread_count();
  // A completed run must not bump the counter, and must report the current
  // process-wide total so long-lived callers can snapshot it.
  WatchdogResult w =
      run_with_deadline([] {}, std::chrono::milliseconds(5000));
  EXPECT_TRUE(w.completed);
  EXPECT_EQ(w.abandoned_total, before);
  EXPECT_EQ(abandoned_thread_count(), before);
}

TEST_F(GuardFixture, AbandonedRunBumpsProcessWideCounter) {
  const long before = abandoned_thread_count();
  FaultInjector::instance().arm(FaultKind::kHang);
  // Zero grace: the injected hang is cancelled at the deadline, but the
  // watchdog does not wait for the worker — it detaches immediately.  The
  // worker then finishes harmlessly on its own (hang_point returns after
  // cancel_hangs), which is exactly the leak-but-observable contract.
  const WatchdogResult w = run_with_deadline(
      [] {
        FaultInjector::instance().hang_point();
        // Outlive the zero grace deterministically, then exit on our own.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      },
      /*timeout=*/std::chrono::milliseconds(50),
      /*grace=*/std::chrono::milliseconds(0));
  EXPECT_FALSE(w.completed);
  EXPECT_TRUE(w.abandoned);
  EXPECT_EQ(w.abandoned_total, before + 1);
  EXPECT_EQ(abandoned_thread_count(), before + 1);
}

}  // namespace
}  // namespace rt::guard
