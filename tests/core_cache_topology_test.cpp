// rt::core::cache_topology — the shared sysfs cache probe.  Exercised
// against fake sysfs trees (the real tree differs per host, so only the
// probed/fallback invariants are checked there): full-level parsing with
// K/M suffixes, malformed-entry skipping, dense-enumeration cutoff, the
// unprobed fallback values, and the fingerprint rt::tune keys its durable
// plan store on.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "rt/core/cache_topology.hpp"

namespace fs = std::filesystem;
using rt::core::CacheTopology;
using rt::core::probe_cache_topology;

namespace {

class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = fs::path(::testing::TempDir()) /
            ("cache_topo_" + std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string root() const { return root_.string(); }

  void add_index(int idx, const std::string& type, const std::string& level,
                 const std::string& size, const std::string& ways = "",
                 const std::string& line = "",
                 const std::string& shared = "") {
    const fs::path dir = root_ / ("index" + std::to_string(idx));
    fs::create_directories(dir);
    write(dir / "type", type);
    if (!level.empty()) write(dir / "level", level);
    if (!size.empty()) write(dir / "size", size);
    if (!ways.empty()) write(dir / "ways_of_associativity", ways);
    if (!line.empty()) write(dir / "coherency_line_size", line);
    if (!shared.empty()) write(dir / "shared_cpu_map", shared);
  }

 private:
  static void write(const fs::path& p, const std::string& v) {
    std::ofstream f(p);
    f << v << "\n";
  }
  fs::path root_;
  static int counter_;
};

int FakeSysfs::counter_ = 0;

/// The canonical 3-level tree most x86 hosts expose: split L1, unified
/// L2/L3, instruction cache interleaved at index1.
FakeSysfs make_typical() {
  FakeSysfs t;
  t.add_index(0, "Data", "1", "32K", "8", "64", "00000001");
  t.add_index(1, "Instruction", "1", "32K", "8", "64", "00000001");
  t.add_index(2, "Unified", "2", "1024K", "16", "64", "00000001");
  t.add_index(3, "Unified", "3", "36M", "11", "64", "000000ff");
  return t;
}

}  // namespace

TEST(CacheTopology, ParsesAllLevelsOfATypicalTree) {
  const FakeSysfs t = make_typical();
  const CacheTopology topo = probe_cache_topology(t.root());
  ASSERT_TRUE(topo.probed);
  ASSERT_EQ(topo.levels.size(), 4u);

  EXPECT_EQ(topo.levels[0].type, 'D');
  EXPECT_EQ(topo.levels[0].level, 1);
  EXPECT_EQ(topo.levels[0].size_bytes, 32L * 1024);
  EXPECT_EQ(topo.levels[0].ways, 8);
  EXPECT_EQ(topo.levels[0].line_bytes, 64);
  EXPECT_EQ(topo.levels[0].shared_cpus, "00000001");

  EXPECT_EQ(topo.levels[1].type, 'I');
  EXPECT_EQ(topo.levels[2].type, 'U');
  EXPECT_EQ(topo.levels[2].size_bytes, 1024L * 1024);
  EXPECT_EQ(topo.levels[3].size_bytes, 36L * 1024 * 1024);
  EXPECT_EQ(topo.levels[3].ways, 11);
}

TEST(CacheTopology, OuterDataBytesIsLargestNonInstructionLevel) {
  const FakeSysfs t = make_typical();
  const CacheTopology topo = probe_cache_topology(t.root());
  EXPECT_EQ(topo.outer_data_bytes(), 36L * 1024 * 1024);
  EXPECT_EQ(topo.outer_data_elems(), 36L * 1024 * 1024 / 8);
  EXPECT_EQ(topo.line_bytes(), 64);
}

TEST(CacheTopology, FingerprintIsStableAndSkipsInstructionCaches) {
  const FakeSysfs t = make_typical();
  const CacheTopology topo = probe_cache_topology(t.root());
  EXPECT_EQ(topo.fingerprint(),
            "L1D:32768/8w/64B+L2U:1048576/16w/64B+L3U:37748736/11w/64B");
}

TEST(CacheTopology, FingerprintMarksUnknownFieldsWithQuestionMarks) {
  FakeSysfs t;
  t.add_index(0, "Data", "1", "16K");  // no ways / line size exposed
  const CacheTopology topo = probe_cache_topology(t.root());
  ASSERT_TRUE(topo.probed);
  EXPECT_EQ(topo.fingerprint(), "L1D:16384/?w/?B");
  EXPECT_EQ(topo.levels[0].ways, 0);
  EXPECT_EQ(topo.line_bytes(), 64);  // fallback
}

TEST(CacheTopology, MissingTreeFallsBackCleanly) {
  const CacheTopology topo =
      probe_cache_topology("/nonexistent/cache/tree/for/rt");
  EXPECT_FALSE(topo.probed);
  EXPECT_TRUE(topo.levels.empty());
  EXPECT_EQ(topo.outer_data_bytes(), 32L * 1024 * 1024);  // conservative
  EXPECT_EQ(topo.line_bytes(), 64);
  EXPECT_EQ(topo.fingerprint(), "unknown");
}

TEST(CacheTopology, MalformedEntriesAreSkippedNotFatal) {
  FakeSysfs t;
  t.add_index(0, "Data", "1", "32K", "8", "64");
  t.add_index(1, "Unified", "not-a-number", "1024K");  // bad level
  t.add_index(2, "Unified", "2", "12Q");               // bad size suffix
  t.add_index(3, "Unified", "3", "4M", "16", "64");
  const CacheTopology topo = probe_cache_topology(t.root());
  ASSERT_TRUE(topo.probed);
  ASSERT_EQ(topo.levels.size(), 2u);  // the two well-formed entries
  EXPECT_EQ(topo.levels[0].size_bytes, 32L * 1024);
  EXPECT_EQ(topo.levels[1].size_bytes, 4L * 1024 * 1024);
}

TEST(CacheTopology, EnumerationStopsAtFirstMissingIndex) {
  FakeSysfs t;
  t.add_index(0, "Data", "1", "32K");
  // index1 absent; index2 present but must not be reached (sysfs trees are
  // dense, so a gap means the enumeration is done).
  t.add_index(2, "Unified", "2", "1024K");
  const CacheTopology topo = probe_cache_topology(t.root());
  ASSERT_EQ(topo.levels.size(), 1u);
  EXPECT_EQ(topo.levels[0].size_bytes, 32L * 1024);
}

TEST(CacheTopology, HostProbeIsConsistentWhateverTheHost) {
  // The real host either has a parseable tree (probed, nonempty levels,
  // non-"unknown" fingerprint) or it does not (clean fallback) — both are
  // valid; what must hold is internal consistency and a positive capacity.
  const CacheTopology& topo = rt::core::host_cache_topology();
  EXPECT_GT(topo.outer_data_bytes(), 0);
  EXPECT_GT(topo.line_bytes(), 0);
  if (topo.probed) {
    EXPECT_FALSE(topo.levels.empty());
    EXPECT_NE(topo.fingerprint(), "unknown");
  } else {
    EXPECT_EQ(topo.fingerprint(), "unknown");
  }
  // Cached probe: repeated calls return the same object.
  EXPECT_EQ(&topo, &rt::core::host_cache_topology());
}
