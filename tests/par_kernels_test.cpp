// Parallel-kernel correctness: the rt::par kernels must be bit-identical
// to their serial counterparts on non-cubic grids and tile sizes that do
// not divide the interior, for any thread count; and the red-black color
// barrier must hold under >= 4 threads (black updates may only ever read
// post-red values).

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/kernels/timeskew.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"

namespace rt::par {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::IterTile;

Array3D<double> make_grid(long n1, long n2, long n3, double seed,
                          long p1 = 0, long p2 = 0) {
  Dims3 d = (p1 > 0) ? Dims3::padded(n1, n2, n3, p1, p2)
                     : Dims3::unpadded(n1, n2, n3);
  Array3D<double> a(d);
  for (long k = 0; k < n3; ++k) {
    for (long j = 0; j < n2; ++j) {
      for (long i = 0; i < n1; ++i) {
        a(i, j, k) = std::sin(seed + 0.1 * i + 0.2 * j + 0.3 * k);
      }
    }
  }
  return a;
}

bool interiors_equal(const Array3D<double>& a, const Array3D<double>& b) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (a(i, j, k) != b(i, j, k)) return false;  // bitwise
      }
    }
  }
  return true;
}

/// Non-cubic shapes; several tiles do not divide the interior extent, and
/// some exceed it entirely.
struct Shape {
  long n1, n2, n3, ti, tj;
};

class ParEquivalence : public ::testing::TestWithParam<Shape> {
 protected:
  ThreadPool pool_{4};
};

TEST_P(ParEquivalence, JacobiTiledParMatchesSerialTiled) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  Array3D<double> b = make_grid(n1, n2, n3, 0.5);
  Array3D<double> a1(n1, n2, n3), a2(n1, n2, n3);
  rt::kernels::jacobi3d_tiled(a1, b, 1.0 / 6.0, IterTile{ti, tj});
  jacobi3d_tiled_par(pool_, a2, b, 1.0 / 6.0, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST_P(ParEquivalence, JacobiUntiledParMatchesSerial) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  (void)ti;
  (void)tj;
  Array3D<double> b = make_grid(n1, n2, n3, 0.5);
  Array3D<double> a1(n1, n2, n3), a2(n1, n2, n3);
  rt::kernels::jacobi3d(a1, b, 1.0 / 6.0);
  jacobi3d_par(pool_, a2, b, 1.0 / 6.0);
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST_P(ParEquivalence, ResidTiledParMatchesSerialTiled) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  Array3D<double> u = make_grid(n1, n2, n3, 0.1);
  Array3D<double> v = make_grid(n1, n2, n3, 0.7);
  Array3D<double> r1(n1, n2, n3), r2(n1, n2, n3);
  const auto a = rt::kernels::nas_mg_a();
  rt::kernels::resid_tiled(r1, v, u, a, IterTile{ti, tj});
  resid_tiled_par(pool_, r2, v, u, a, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(r1, r2));
  Array3D<double> r3(n1, n2, n3);
  resid_par(pool_, r3, v, u, a);
  EXPECT_TRUE(interiors_equal(r1, r3));
}

TEST_P(ParEquivalence, RedBlackParMatchesSerialSchedules) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  Array3D<double> a1 = make_grid(n1, n2, n3, 0.3);
  Array3D<double> a2 = a1, a3 = a1, a4 = a1;
  rt::kernels::redblack_naive(a1, 0.4, 0.1);
  redblack_tiled_par(pool_, a2, 0.4, 0.1, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(a1, a2));
  redblack_par(pool_, a3, 0.4, 0.1);
  EXPECT_TRUE(interiors_equal(a1, a3));
  // And transitively vs the serial fused tiled schedule.
  rt::kernels::redblack_tiled(a4, 0.4, 0.1, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(a1, a4));
}

TEST_P(ParEquivalence, CopyInteriorParMatchesSerial) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  (void)ti;
  (void)tj;
  Array3D<double> src = make_grid(n1, n2, n3, 0.9);
  Array3D<double> d1(n1, n2, n3, 7.0), d2(n1, n2, n3, 7.0);
  rt::kernels::copy_interior(d1, src);
  copy_interior_par(pool_, d2, src);
  // Whole allocation must match: boundaries untouched, interior copied.
  for (long k = 0; k < n3; ++k)
    for (long j = 0; j < n2; ++j)
      for (long i = 0; i < n1; ++i) EXPECT_EQ(d1(i, j, k), d2(i, j, k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParEquivalence,
    ::testing::Values(Shape{8, 8, 8, 3, 3}, Shape{9, 7, 11, 2, 5},
                      Shape{16, 10, 6, 5, 4}, Shape{17, 9, 30, 4, 4},
                      Shape{23, 41, 11, 7, 3}, Shape{40, 12, 30, 13, 22},
                      Shape{41, 6, 9, 41, 1}, Shape{12, 30, 5, 100, 100},
                      Shape{64, 10, 13, 22, 13}, Shape{31, 33, 29, 1, 1}));

TEST(ParKernels, MultiStepJacobiStaysBitIdentical) {
  // Several sweep + copy-back time steps with a 4-thread pool: any
  // divergence (e.g. a missing barrier before the copy-back) compounds.
  ThreadPool pool(4);
  Array3D<double> b1 = make_grid(20, 14, 12, 0.9), b2 = b1;
  Array3D<double> a1(20, 14, 12), a2(20, 14, 12);
  for (int t = 0; t < 4; ++t) {
    rt::kernels::jacobi3d_tiled(a1, b1, 1.0 / 6.0, IterTile{5, 3});
    rt::kernels::copy_interior(b1, a1);
    jacobi3d_tiled_par(pool, a2, b2, 1.0 / 6.0, IterTile{5, 3});
    copy_interior_par(pool, b2, a2);
  }
  EXPECT_TRUE(interiors_equal(a1, a2));
  EXPECT_TRUE(interiors_equal(b1, b2));
}

TEST(ParKernels, PaddedArraysComputeSameValues) {
  ThreadPool pool(4);
  Array3D<double> b1 = make_grid(12, 18, 8, 0.2);
  Array3D<double> b2 = make_grid(12, 18, 8, 0.2, 17, 23);
  Array3D<double> a1(12, 18, 8);
  Array3D<double> a2(Dims3::padded(12, 18, 8, 17, 23));
  rt::kernels::jacobi3d_tiled(a1, b1, 1.0 / 6.0, IterTile{5, 4});
  jacobi3d_tiled_par(pool, a2, b2, 1.0 / 6.0, IterTile{5, 4});
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST(ParKernels, RedBlackColorBarrierHoldsUnderManyThreads) {
  // With c1 = 0, c2 = 1 and a single red hot point, a correct schedule
  // zeroes the whole interior: the red sweep replaces every red point by
  // the sum of its (all-zero) black neighbours — including the hot point —
  // and the black sweep then reads only post-red (zero) values.  If any
  // black update ran before the barrier it could read the stale 1.0 and
  // leave a nonzero black point behind.  Tiny tiles maximise the number of
  // concurrently executing work items; repeat to shake out interleavings.
  ThreadPool pool(5);
  for (int rep = 0; rep < 50; ++rep) {
    Array3D<double> a(17, 13, 9);
    a(4, 4, 4) = 1.0;  // (4+4+4) even -> red
    redblack_tiled_par(pool, a, 0.0, 1.0, IterTile{2, 2});
    for (long k = 1; k < 8; ++k) {
      for (long j = 1; j < 12; ++j) {
        for (long i = 1; i < 16; ++i) {
          ASSERT_EQ(a(i, j, k), 0.0)
              << "rep=" << rep << " at (" << i << "," << j << "," << k << ")";
        }
      }
    }
  }
}

TEST(ParKernels, RedBlackRepeatedRunsAreDeterministic) {
  // Scheduling nondeterminism must never leak into values: 20 runs under
  // 4 threads all equal the serial result bit-for-bit.
  ThreadPool pool(4);
  Array3D<double> ref = make_grid(19, 23, 10, 0.6);
  rt::kernels::redblack_naive(ref, 0.4, 0.1);
  for (int rep = 0; rep < 20; ++rep) {
    Array3D<double> a = make_grid(19, 23, 10, 0.6);
    redblack_tiled_par(pool, a, 0.4, 0.1, IterTile{3, 2});
    ASSERT_TRUE(interiors_equal(ref, a)) << "rep=" << rep;
  }
}

TEST(ParKernels, OneThreadPoolMatchesSerialExactly) {
  // The documented serial/deterministic degeneration: a 1-thread pool.
  ThreadPool pool(1);
  Array3D<double> b = make_grid(15, 11, 9, 0.4);
  Array3D<double> a1(15, 11, 9), a2(15, 11, 9);
  rt::kernels::jacobi3d_tiled(a1, b, 1.0 / 6.0, IterTile{4, 3});
  jacobi3d_tiled_par(pool, a2, b, 1.0 / 6.0, IterTile{4, 3});
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST(ParKernels, DegenerateTileOrEmptyInteriorIsSafe) {
  ThreadPool pool(4);
  Array3D<double> b = make_grid(4, 4, 4, 0.1);
  Array3D<double> a(4, 4, 4);
  // Tile {1,1} (the gcd_pad clamp floor) and an interior of 2x2x2.
  jacobi3d_tiled_par(pool, a, b, 1.0 / 6.0, IterTile{1, 1});
  Array3D<double> ref(4, 4, 4);
  rt::kernels::jacobi3d(ref, b, 1.0 / 6.0);
  EXPECT_TRUE(interiors_equal(ref, a));
  // Non-positive tile extents: parallel_for_tiles declines to iterate
  // rather than looping forever.
  jacobi3d_tiled_par(pool, a, b, 1.0 / 6.0, IterTile{0, 5});
}

TEST_P(ParEquivalence, RedBlackRhsParMatchesSerialSchedules) {
  const auto [n1, n2, n3, ti, tj] = GetParam();
  Array3D<double> ref = make_grid(n1, n2, n3, 0.3);
  const Array3D<double> r = make_grid(n1, n2, n3, 0.8);
  Array3D<double> a1 = ref, a2 = ref, a3 = ref;
  rt::kernels::redblack_naive_rhs(ref, r, 0.4, 0.1);
  redblack_rhs_par(pool_, a1, r, 0.4, 0.1);
  EXPECT_TRUE(interiors_equal(ref, a1));
  redblack_tiled_rhs_par(pool_, a2, r, 0.4, 0.1, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(ref, a2));
  // Transitively: the serial fused tiled schedule agrees too.
  rt::kernels::redblack_tiled_rhs(a3, r, 0.4, 0.1, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(ref, a3));
}

TEST(ParKernels, TimeskewWavefrontParMatchesSerial) {
  // Within one (K-block, t) wavefront step, source and destination arrays
  // differ, so planes are independent: the parallel schedule must be
  // bit-identical to the serial one for any block size, including blocks
  // smaller than, equal to, and larger than the skew depth.
  ThreadPool pool(4);
  for (const long bk : {1L, 3L, 8L, 100L}) {
    for (const int tsteps : {1, 3, 4}) {
      Array3D<double> a1(18, 13, 16), a2(18, 13, 16);
      Array3D<double> b1 = make_grid(18, 13, 16, 0.6), b2 = b1;
      rt::kernels::jacobi3d_timeskew(a1, b1, 1.0 / 6.0, tsteps, bk);
      jacobi3d_timeskew_par(pool, a2, b2, 1.0 / 6.0, tsteps, bk);
      EXPECT_TRUE(interiors_equal(a1, a2)) << "bk=" << bk << " t=" << tsteps;
      EXPECT_TRUE(interiors_equal(b1, b2)) << "bk=" << bk << " t=" << tsteps;
    }
  }
}

TEST(ParKernels, TimeskewParOneThreadPoolIsSerial) {
  ThreadPool pool(1);
  Array3D<double> a1(12, 12, 10), a2(12, 12, 10);
  Array3D<double> b1 = make_grid(12, 12, 10, 0.2), b2 = b1;
  rt::kernels::jacobi3d_timeskew(a1, b1, 1.0 / 6.0, 3, 4);
  jacobi3d_timeskew_par(pool, a2, b2, 1.0 / 6.0, 3, 4);
  EXPECT_TRUE(interiors_equal(a1, a2));
  EXPECT_TRUE(interiors_equal(b1, b2));
}

}  // namespace
}  // namespace rt::par
