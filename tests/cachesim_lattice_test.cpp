// Cross-validation of the associativity-lattice backend against the cache
// simulator's arbitrary-associativity mode (rt::cachesim::Cache): the
// occupancy predicate lattice_worst_occupancy is the backend's entire
// admission rule, so these tests pin it against (a) a brute-force per-set
// count over every tile start and (b) actual LRU eviction behaviour when
// the predicted footprint is replayed through a simulated cache —
// including the adversarial power-of-two leading dimensions where the
// paper's capacity-only tile thrashes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rt/cachesim/cache.hpp"
#include "rt/cachesim/config.hpp"
#include "rt/core/backend.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/stencil_spec.hpp"

namespace {

using rt::cachesim::Cache;
using rt::cachesim::CacheConfig;
using rt::core::Backend;
using rt::core::CacheGeom;
using rt::core::PlanReport;
using rt::core::StencilSpec;
using rt::core::Transform;

const StencilSpec kJac = StencilSpec::jacobi3d();

CacheGeom geom_of(long cs_elems, long line_elems, long assoc) {
  CacheGeom g;
  g.cs_elems = cs_elems;
  g.line_elems = line_elems;
  g.assoc = assoc;
  return g;
}

CacheConfig config_of(const CacheGeom& g) {
  CacheConfig c;
  c.size_bytes = static_cast<std::uint64_t>(g.cs_elems) * 8;
  c.line_bytes = static_cast<std::uint32_t>(g.line_elems * 8);
  c.assoc = static_cast<std::uint32_t>(g.assoc);
  c.write_allocate = false;
  c.write_back = false;
  return c;
}

/// Brute-force worst per-set line count of an (ati x atj x atd) tile of
/// doubles in a dip x djp array, maximized over every element start offset
/// within one full set period — the ground truth the backend's phase-folded
/// computation must reproduce.
long brute_force_occupancy(const CacheGeom& g, long dip, long djp, long ati,
                           long atj, int atd) {
  const long le = std::max<long>(1, g.line_elems);
  const long lines = std::max<long>(1, g.cs_elems / le);
  const long ways = g.assoc == 0 ? lines : std::min(g.assoc, lines);
  const long sets = std::max<long>(1, lines / ways);
  long worst = 0;
  std::vector<long> counts(static_cast<std::size_t>(sets));
  for (long base = 0; base < le * sets; ++base) {
    std::fill(counts.begin(), counts.end(), 0L);
    for (int k = 0; k < atd; ++k) {
      for (long j = 0; j < atj; ++j) {
        const long off = base + j * dip + k * dip * djp;
        const long l0 = off / le;
        const long l1 = (off + ati - 1) / le;
        for (long l = l0; l <= l1; ++l) {
          worst = std::max(worst, ++counts[static_cast<std::size_t>(
                                      l % sets)]);
        }
      }
    }
  }
  return worst;
}

/// Touch every element of the tile once (reads), returning the number of
/// misses this sweep took.
std::uint64_t replay_tile(Cache& c, long dip, long djp, long ati, long atj,
                          int atd) {
  const std::uint64_t before = c.stats().misses;
  for (int k = 0; k < atd; ++k) {
    for (long j = 0; j < atj; ++j) {
      for (long i = 0; i < ati; ++i) {
        const std::uint64_t elem = static_cast<std::uint64_t>(i) +
                                   static_cast<std::uint64_t>(j * dip) +
                                   static_cast<std::uint64_t>(k) *
                                       static_cast<std::uint64_t>(dip) *
                                       static_cast<std::uint64_t>(djp);
        c.access(elem * 8, /*is_write=*/false);
      }
    }
  }
  return c.stats().misses - before;
}

TEST(LatticeVsBruteForce, PhaseFoldMatchesFullScan) {
  // Small geometries so the full-period scan is cheap; adversarial dips
  // (pow2 aliasing, odd, line-straddling) and a mix of ways.
  const struct {
    long cs, le, assoc;
  } geoms[] = {{256, 4, 1}, {256, 4, 2}, {512, 8, 4}, {128, 2, 0}};
  const struct {
    long dip, djp, ati, atj;
    int atd;
  } tiles[] = {{64, 64, 8, 4, 3},   {64, 64, 26, 26, 3}, {60, 60, 7, 5, 3},
               {65, 64, 9, 3, 4},   {256, 32, 6, 6, 3},  {33, 33, 1, 1, 1}};
  for (const auto& gg : geoms) {
    const CacheGeom g = geom_of(gg.cs, gg.le, gg.assoc);
    for (const auto& t : tiles) {
      EXPECT_EQ(rt::core::lattice_worst_occupancy(g, t.dip, t.djp, t.ati,
                                                  t.atj, t.atd),
                brute_force_occupancy(g, t.dip, t.djp, t.ati, t.atj, t.atd))
          << "cs=" << gg.cs << " le=" << gg.le << " assoc=" << gg.assoc
          << " dip=" << t.dip << " tile=" << t.ati << "x" << t.atj << "x"
          << t.atd;
    }
  }
}

TEST(LatticeVsSimulator, AcceptedTileHasNoConflictEvictions) {
  // Every tile the lattice backend accepts must be fully resident after one
  // warming pass: the second pass through the simulated cache (the same
  // geometry the backend planned against) takes zero misses.
  for (long assoc : {1L, 2L, 4L}) {
    for (long n : {200L, 260L, 330L}) {
      const CacheGeom g = geom_of(2048, 4, assoc);
      const PlanReport rep = rt::core::plan_with_backend(
          Backend::kLattice, Transform::kTile, g, n, n, kJac);
      if (!rep.plan.tiled) continue;  // infeasible cells degrade untiled
      const long ati = rep.plan.tile.ti + kJac.trim_i;
      const long atj = rep.plan.tile.tj + kJac.trim_j;
      Cache c(config_of(g));
      replay_tile(c, rep.plan.dip, rep.plan.djp, ati, atj, kJac.atd);
      const std::uint64_t second =
          replay_tile(c, rep.plan.dip, rep.plan.djp, ati, atj, kJac.atd);
      EXPECT_EQ(second, 0u) << "assoc=" << assoc << " n=" << n << " tile "
                            << ati << "x" << atj;
    }
  }
}

TEST(LatticeVsSimulator, Pow2PerSetOccupancyPredictsThrashing) {
  // N=256 with the paper's 2048-element cache: the plane stride 256*256
  // is a multiple of the cache size, so the three K planes of ANY tile
  // land on identical sets.  The occupancy predicate must say so, and the
  // simulator must agree: the model backend's capacity tile, which ignores
  // set mapping, keeps missing on its second pass.
  const CacheGeom g = geom_of(2048, 4, 1);
  const PlanReport model = rt::core::plan_with_backend(
      Backend::kModel, Transform::kTile, g, 256, 256, kJac);
  ASSERT_TRUE(model.plan.tiled);  // the capacity tile is conflict-blind
  const long ati = model.plan.tile.ti + kJac.trim_i;
  const long atj = model.plan.tile.tj + kJac.trim_j;
  EXPECT_GT(rt::core::lattice_worst_occupancy(g, model.plan.dip,
                                              model.plan.djp, ati, atj,
                                              kJac.atd),
            g.assoc);
  Cache c(config_of(g));
  replay_tile(c, model.plan.dip, model.plan.djp, ati, atj, kJac.atd);
  const std::uint64_t second =
      replay_tile(c, model.plan.dip, model.plan.djp, ati, atj, kJac.atd);
  EXPECT_GT(second, 0u);

  // The lattice backend refuses exactly this trap: at pow2 N on the DM
  // geometry it has no feasible tile and degrades to untiled (typed).
  const PlanReport lat = rt::core::plan_with_backend(
      Backend::kLattice, Transform::kTile, g, 256, 256, kJac);
  EXPECT_EQ(lat.status, rt::guard::Status::kFellBackUntiled);
  EXPECT_FALSE(lat.plan.tiled);
}

TEST(LatticeVsSimulator, OverCommittedSetThrashesExactlyAsPredicted) {
  // Hand-built adversarial tile on a tiny 2-way cache: rows exactly one
  // cache-size apart stack in a single set.  occupancy <= ways must imply
  // zero second-pass misses; occupancy > ways must imply thrashing.
  const CacheGeom g = geom_of(64, 4, 2);  // 16 lines, 8 sets, 2 ways
  const long dip = 64, djp = 8;           // row stride == cache size
  for (long rows : {1L, 2L, 3L, 4L}) {
    const long occ =
        rt::core::lattice_worst_occupancy(g, dip, djp, 4, rows, 1);
    EXPECT_EQ(occ, rows);  // every row lands on the same set
    Cache c(config_of(g));
    replay_tile(c, dip, djp, 4, rows, 1);
    const std::uint64_t second = replay_tile(c, dip, djp, 4, rows, 1);
    if (occ <= g.assoc) {
      EXPECT_EQ(second, 0u) << "rows=" << rows;
    } else {
      EXPECT_GT(second, 0u) << "rows=" << rows;
    }
  }
}

}  // namespace
