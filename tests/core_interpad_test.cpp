// Tests for inter-variable padding (Section 3.5): partition sizing, offset
// assignment, and the disjointness property — shifted copies of a
// partition-conflict-free footprint never collide in the full cache.

#include <gtest/gtest.h>

#include <set>

#include "rt/core/conflict.hpp"
#include "rt/core/interpad.hpp"

namespace rt::core {
namespace {

const StencilSpec kResid = StencilSpec::resid27();

TEST(InterPad, PartitionSizing) {
  const auto p2 = inter_pad(2048, 200, 200, kResid, 2);
  EXPECT_EQ(p2.partitions, 2);
  EXPECT_EQ(p2.partition_elems, 1024);
  const auto p3 = inter_pad(2048, 200, 200, kResid, 3);
  EXPECT_EQ(p3.partitions, 4);
  EXPECT_EQ(p3.partition_elems, 512);
  EXPECT_EQ(p3.base_offsets, (std::vector<long>{0, 512, 1024}));
}

TEST(InterPad, TileConflictFreeWithinPartition) {
  for (int arrays : {2, 3, 4}) {
    const auto p = inter_pad(2048, 300, 300, kResid, arrays);
    EXPECT_TRUE(is_conflict_free(p.partition_elems, p.intra.dip, p.intra.djp,
                                 p.intra.array_tile.ti, p.intra.array_tile.tj,
                                 p.intra.array_tile.tk))
        << arrays;
  }
}

TEST(InterPad, FootprintsDisjointAcrossArrays) {
  // Enumerate each array's tile offsets in the *full* cache given its base
  // offset; no two arrays may share a slot.
  const long cs = 2048;
  const auto p = inter_pad(cs, 300, 300, kResid, 3);
  std::set<long> seen;
  const long plane = p.intra.dip * p.intra.djp;
  for (std::size_t q = 0; q < p.base_offsets.size(); ++q) {
    for (int k = 0; k < p.intra.array_tile.tk; ++k) {
      for (long j = 0; j < p.intra.array_tile.tj; ++j) {
        for (long i = 0; i < p.intra.array_tile.ti; ++i) {
          const long off =
              (p.base_offsets[q] + k * plane + j * p.intra.dip + i) % cs;
          EXPECT_TRUE(seen.insert(off).second)
              << "array " << q << " collides at cache slot " << off;
        }
      }
    }
  }
}

TEST(InterPad, RejectsBadArgs) {
  EXPECT_THROW(inter_pad(2048, 200, 200, kResid, 0), std::invalid_argument);
  EXPECT_THROW(inter_pad(64, 200, 200, kResid, 32), std::invalid_argument);
}

}  // namespace
}  // namespace rt::core
