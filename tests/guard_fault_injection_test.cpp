// End-to-end fault-injection tests: arm rt::guard faults and check that the
// bench runner degrades exactly as designed — a typed skipped-and-recorded
// row, never a crash, a silent zero, or a wedged sweep.

#include <gtest/gtest.h>

#include <string>

#include "rt/bench/runner.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace rt::bench {
namespace {

using rt::guard::FaultInjector;
using rt::guard::FaultKind;
using rt::guard::Status;
using rt::core::Transform;
using rt::kernels::KernelId;

/// Arms nothing itself but guarantees teardown: an assertion failure in one
/// test must not leave faults armed for the next.
class FaultInjectionFixture : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm_all(); }

  /// Minimal fast RunOptions: no simulation, no host timing unless a test
  /// turns one on.
  static RunOptions fast_opts() {
    RunOptions o;
    o.simulate = false;
    o.time_host = false;
    o.min_host_seconds = 0.001;
    o.time_steps = 1;
    return o;
  }
};

TEST_F(FaultInjectionFixture, AllocFailureBecomesRecordedRow) {
  FaultInjector::instance().arm(FaultKind::kAlloc);
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, fast_opts());
  EXPECT_EQ(r.status, Status::kAllocFailed);
  EXPECT_NE(r.status_detail.find("allocation failed"), std::string::npos);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.host_mflops, 0);

  rt::obs::MetricsWriter w;
  append_json_record(w, "JACOBI", 32, r);
  const std::string json = w.dump();
  EXPECT_NE(json.find("\"status\": \"alloc_failed\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);

  // Disarmed, the identical configuration runs clean.
  FaultInjector::instance().disarm(FaultKind::kAlloc);
  const RunResult ok =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, fast_opts());
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_FALSE(ok.degraded());
}

TEST_F(FaultInjectionFixture, CounterOpenFailureDegradesToUnavailable) {
  FaultInjector::instance().arm(FaultKind::kCounterOpen);
  RunOptions o = fast_opts();
  o.time_host = true;
  o.counters = rt::obs::CounterMode::kOn;
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  // The run itself succeeds; only the counter block reports unavailable —
  // the same row a host without perf-event access produces.
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(r.hw.requested);
  EXPECT_FALSE(r.hw.available);
  EXPECT_GT(r.host_mflops, 0);
}

TEST_F(FaultInjectionFixture, ThreadSpawnFailureDegradesPoolWidth) {
  FaultInjector::instance().arm(FaultKind::kThreadSpawn);
  RunOptions o = fast_opts();
  o.time_host = true;
  o.threads = 4;
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kGcdPad, 64, o);
  // Every spawn was injected to fail: the pool degrades to the calling
  // thread alone, the run completes, and the row is flagged degraded.
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.threads, 1);
  EXPECT_EQ(r.threads_requested, 4);
  EXPECT_TRUE(r.degraded());
  EXPECT_GT(r.host_mflops, 0);
}

TEST_F(FaultInjectionFixture, NanInputIsCaughtByVerifySweep) {
  FaultInjector::instance().arm(FaultKind::kNanInput);
  RunOptions o = fast_opts();
  o.verify = rt::guard::VerifyMode::kPost;
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(r.status, Status::kNonFinite);
  EXPECT_GE(r.nonfinite, 1);
  EXPECT_EQ(r.verify_mode, rt::guard::VerifyMode::kPost);
  EXPECT_TRUE(r.degraded());

  rt::obs::MetricsWriter w;
  append_json_record(w, "JACOBI", 32, r);
  const std::string json = w.dump();
  EXPECT_NE(json.find("\"status\": \"nonfinite\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode\": \"post\""), std::string::npos) << json;
}

TEST_F(FaultInjectionFixture, VerifyPassesOnCleanRun) {
  RunOptions o = fast_opts();
  o.time_host = true;
  o.verify = rt::guard::VerifyMode::kPost;
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kGcdPad, 32, o);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.nonfinite, 0);
  EXPECT_EQ(r.verify_mode, rt::guard::VerifyMode::kPost);
}

TEST_F(FaultInjectionFixture, ParallelVerifyMatchesSerialThroughRunner) {
  FaultInjector::instance().arm(FaultKind::kNanInput);
  RunOptions o = fast_opts();
  o.threads = 4;
  o.verify = rt::guard::VerifyMode::kPara;
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(r.status, Status::kNonFinite);
  // Without running the kernel the single seeded NaN is the only bad value.
  EXPECT_EQ(r.nonfinite, 1);
}

TEST_F(FaultInjectionFixture, InjectedHangBecomesTimeoutRow) {
  FaultInjector::instance().arm(FaultKind::kHang);
  RunOptions o = fast_opts();
  o.time_host = true;
  o.timeout_seconds = 0.2;
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_NE(r.status_detail.find("watchdog"), std::string::npos);
  EXPECT_TRUE(r.degraded());
  // The watchdog cancelled the injected hang: nothing stays armed, and the
  // hung worker was joined inside the grace period, not leaked.
  EXPECT_FALSE(FaultInjector::armed(FaultKind::kHang));

  rt::obs::MetricsWriter w;
  append_json_record(w, "JACOBI", 32, r);
  EXPECT_NE(w.dump().find("\"status\": \"timeout\""), std::string::npos);

  // And with the hang gone, the same deadline passes.
  const RunResult ok = run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(ok.status, Status::kOk);
}

TEST_F(FaultInjectionFixture, WatchdogOffRunsInline) {
  RunOptions o = fast_opts();
  o.time_host = true;
  o.timeout_seconds = 0;  // watchdog disabled: the direct code path
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_GT(r.host_mflops, 0);
}

TEST_F(FaultInjectionFixture, PlannerFallbackIsObservableInRunResult) {
  // A 128-byte L1 holds cs = 16 doubles; at N = 8 the plane stride 64 is
  // 0 mod 16, so Euc3D finds no conflict-free depth-3 tile and the run
  // proceeds untiled with the typed reason attached.
  RunOptions o = fast_opts();
  o.l1.size_bytes = 128;
  const RunResult r = run_kernel(KernelId::kJacobi, Transform::kEuc3d, 8, o);
  EXPECT_EQ(r.status, Status::kOk);  // the run itself is fine
  EXPECT_EQ(r.plan_status, Status::kFellBackUntiled);
  EXPECT_FALSE(r.plan.tiled);
  EXPECT_FALSE(r.plan_detail.empty());
  EXPECT_TRUE(r.degraded());

  rt::obs::MetricsWriter w;
  append_json_record(w, "JACOBI", 8, r);
  const std::string json = w.dump();
  EXPECT_NE(json.find("\"plan_status\": \"fell_back_untiled\""),
            std::string::npos)
      << json;
}

TEST_F(FaultInjectionFixture, CleanRunRecordsOkStatuses) {
  const RunResult r =
      run_kernel(KernelId::kJacobi, Transform::kGcdPad, 64, fast_opts());
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.plan_status, Status::kOk);
  EXPECT_FALSE(r.degraded());

  rt::obs::MetricsWriter w;
  append_json_record(w, "JACOBI", 64, r);
  const std::string json = w.dump();
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"verify\": null"), std::string::npos);
}

}  // namespace
}  // namespace rt::bench
