// Host fast paths of the two whole applications (MgSolver V-cycle,
// SorSolver red-black SOR): any combination of thread pool and SIMD row
// kernels must be *bit-identical* to the serial accessor path — same
// residual norms, same solution arrays — because every parallel
// decomposition preserves the per-element operation order and the colour
// barrier.  Also covers the first-touch initialization contract, the
// traced-run opt-out, and the SorSolver plan-validation statuses
// (kFellBackUntiled / kOverflow) that replace the historical silent clamp.

#include <gtest/gtest.h>

#include <vector>

#include "rt/cachesim/hierarchy.hpp"
#include "rt/core/plan.hpp"
#include "rt/guard/status.hpp"
#include "rt/multigrid/mg_solver.hpp"
#include "rt/multigrid/sor_solver.hpp"
#include "rt/simd/simd.hpp"

namespace rt::multigrid {
namespace {

using rt::guard::Status;
using rt::simd::SimdLevel;
using rt::simd::SimdMode;

MgOptions mg_base_opts() {
  MgOptions o;
  o.lt = 4;  // n = 18: several levels, fast
  const long n = (1L << o.lt) + 2;
  o.resid_plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n,
                                    rt::core::StencilSpec::resid27());
  o.tile_psinv = true;
  return o;
}

struct MgOutcome {
  std::vector<double> norms;
  std::uint64_t flops = 0;
};

MgOutcome run_mg(const MgOptions& o, int iters = 3) {
  MgSolver s(o);
  s.setup();
  MgOutcome out;
  for (int i = 0; i < iters; ++i) out.norms.push_back(s.iterate());
  out.norms.push_back(s.residual_norm());
  out.flops = s.flops();
  return out;
}

TEST(MgFastPath, ThreadsAndSimdAreBitIdenticalToSerial) {
  const MgOutcome serial = run_mg(mg_base_opts());
  struct Variant {
    int threads;
    SimdMode simd;
  };
  const std::vector<Variant> variants = {{3, SimdMode::kOff},
                                         {1, SimdMode::kAuto},
                                         {3, SimdMode::kAuto},
                                         {2, SimdMode::kAvx2}};
  for (const Variant& v : variants) {
    MgOptions o = mg_base_opts();
    o.threads = v.threads;
    o.simd = v.simd;
    const MgOutcome fast = run_mg(o);
    EXPECT_EQ(fast.norms, serial.norms)
        << "threads=" << v.threads << " simd=" << int(v.simd);
    EXPECT_EQ(fast.flops, serial.flops);
  }
}

TEST(MgFastPath, UntiledOperatorsAreBitIdenticalToo) {
  MgOptions o;
  o.lt = 4;  // no resid plan: every level runs the untiled operators
  const MgOutcome serial = run_mg(o);
  o.threads = 3;
  o.simd = SimdMode::kAuto;
  const MgOutcome fast = run_mg(o);
  EXPECT_EQ(fast.norms, serial.norms);
}

TEST(MgFastPath, ReportsWidthLevelAndPhases) {
  MgOptions o = mg_base_opts();
  o.threads = 3;
  o.simd = SimdMode::kAuto;
  MgSolver s(o);
  EXPECT_EQ(s.threads(), 3);
  EXPECT_EQ(s.simd_level(), rt::simd::resolve(SimdMode::kAuto));
  s.setup();
  (void)s.iterate();
  const MgSolver::Phases& p = s.phases();
  EXPECT_GT(p.resid.count, 0);
  EXPECT_GT(p.psinv.count, 0);
  EXPECT_GT(p.rprj3.count, 0);
  EXPECT_GT(p.interp.count, 0);
  EXPECT_GT(p.comm3.count, 0);
  EXPECT_GT(p.norm.count, 0);
  EXPECT_GT(p.resid.total_s, 0.0);
}

TEST(MgFastPath, FirstTouchGridsStartZeroed) {
  // With a pool the per-level arrays are allocated uninitialized and
  // zeroed plane-parallel (first-touch NUMA placement): the observable
  // contract is that construction still yields all-zero grids, exactly
  // like the serial default construction.
  MgOptions o = mg_base_opts();
  o.threads = 3;
  MgSolver s(o);
  const auto& u = s.u();
  for (long k = 0; k < u.n3(); ++k)
    for (long j = 0; j < u.n2(); ++j)
      for (long i = 0; i < u.n1(); ++i) ASSERT_EQ(u(i, j, k), 0.0);
  const auto& v = s.v();
  for (long k = 0; k < v.n3(); ++k)
    for (long j = 0; j < v.n2(); ++j)
      for (long i = 0; i < v.n1(); ++i) ASSERT_EQ(v(i, j, k), 0.0);
}

TEST(MgFastPath, TracedRunsIgnoreThreadsAndSimd) {
  // TracedArray3D mutates the shared hierarchy on every access, so the
  // traced operators must stay serial scalar whatever the options say.
  MgOptions o = mg_base_opts();
  o.threads = 4;
  o.simd = SimdMode::kAuto;
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  MgSolver s(o, &h);
  EXPECT_EQ(s.threads(), 1);
  EXPECT_EQ(s.simd_level(), SimdLevel::kScalar);
  // And the traced numerics match the native serial ones exactly.
  s.setup();
  const double traced = s.iterate();
  MgOptions os = mg_base_opts();
  MgSolver ss(os);
  ss.setup();
  EXPECT_EQ(ss.iterate(), traced);
}

SorOptions sor_base_opts(long n = 34) {
  SorOptions o;
  o.n = n;
  o.plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n,
                              rt::core::StencilSpec::redblack3d());
  return o;
}

double run_sor(const SorOptions& o, int sweeps = 4) {
  SorSolver s(o);
  EXPECT_EQ(s.status(), Status::kOk);
  s.setup();
  for (int i = 0; i < sweeps; ++i) s.sweep();
  return s.residual_linf();
}

TEST(SorFastPath, ThreadsAndSimdAreBitIdenticalToSerial) {
  const double serial = run_sor(sor_base_opts());
  for (const int threads : {1, 3}) {
    for (const SimdMode simd : {SimdMode::kOff, SimdMode::kAuto}) {
      SorOptions o = sor_base_opts();
      o.threads = threads;
      o.simd = simd;
      EXPECT_EQ(run_sor(o), serial)
          << "threads=" << threads << " simd=" << int(simd);
    }
  }
}

TEST(SorFastPath, UntiledPlanFastPathIsBitIdenticalToo) {
  SorOptions o;  // no plan: naive two-pass schedule
  o.n = 30;
  const double serial = run_sor(o);
  o.threads = 3;
  o.simd = SimdMode::kAuto;
  EXPECT_EQ(run_sor(o), serial);
}

TEST(SorFastPath, FirstTouchArraysStartZeroed) {
  SorOptions o = sor_base_opts();
  o.threads = 3;
  SorSolver s(o);
  const auto& u = s.u();
  for (long k = 0; k < u.n3(); ++k)
    for (long j = 0; j < u.n2(); ++j)
      for (long i = 0; i < u.n1(); ++i) ASSERT_EQ(u(i, j, k), 0.0);
}

TEST(SorFastPath, PhasesAccumulatePerCall) {
  SorOptions o = sor_base_opts();
  SorSolver s(o);
  s.setup();
  s.sweep();
  s.sweep();
  (void)s.residual_linf();
  EXPECT_EQ(s.phases().sweep.count, 2);
  EXPECT_EQ(s.phases().residual.count, 1);
}

TEST(SorStatus, PadSmallerThanNIsRecordedNotSilentlyClamped) {
  // Historical behaviour silently ran unpadded when the plan's pad did not
  // cover n; now the degradation is a typed status with the run proceeding
  // on unpadded dims — and the numerics equal the explicitly-unpadded run.
  SorOptions good;
  good.n = 34;
  const double ref = run_sor(good);

  SorOptions bad = good;
  bad.plan.tiled = true;
  bad.plan.tile = {8, 8};
  bad.plan.dip = 20;  // < n: cannot hold the logical extent
  bad.plan.djp = 40;
  SorSolver s(bad);
  EXPECT_EQ(s.status(), Status::kFellBackUntiled);
  EXPECT_FALSE(s.status_detail().empty());
  EXPECT_EQ(s.u().dims().p1, 34);  // ran unpadded
  s.setup();
  for (int i = 0; i < 4; ++i) s.sweep();
  // Tiling does not change numerics, so the fallback matches the plain
  // unpadded run bit-for-bit.
  EXPECT_EQ(s.residual_linf(), ref);
}

TEST(SorStatus, PaddedAllocationOverflowIsRecorded) {
  SorOptions o;
  o.n = 34;
  o.plan.tiled = true;
  o.plan.tile = {8, 8};
  o.plan.dip = 3L << 30;  // dip * djp * n overflows long
  o.plan.djp = 3L << 30;
  SorSolver s(o);
  EXPECT_EQ(s.status(), Status::kOverflow);
  EXPECT_FALSE(s.status_detail().empty());
  EXPECT_EQ(s.u().dims().p1, 34);  // fell back to unpadded dims
}

TEST(SorStatus, ValidPlanIsOkWithEmptyDetail) {
  SorSolver s(sor_base_opts());
  EXPECT_EQ(s.status(), Status::kOk);
  EXPECT_TRUE(s.status_detail().empty());
  EXPECT_GT(s.u().dims().p1, 34);  // pad applied
}

TEST(SorFastPath, TracedRunsIgnoreThreadsAndSimd) {
  SorOptions o = sor_base_opts();
  o.threads = 4;
  o.simd = SimdMode::kAuto;
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  SorSolver s(o, &h);
  EXPECT_EQ(s.threads(), 1);
  EXPECT_EQ(s.simd_level(), SimdLevel::kScalar);
}

}  // namespace
}  // namespace rt::multigrid
