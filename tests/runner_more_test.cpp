// Additional runner integration tests: the PSINV kernel, explicit plans,
// perf-model parameter propagation, k_dim handling, and qualitative
// paper-shape checks for REDBLACK and RESID.

#include <gtest/gtest.h>

#include "rt/bench/runner.hpp"
#include "rt/core/tiling2d.hpp"

namespace rt::bench {
namespace {

using rt::core::Transform;
using rt::kernels::KernelId;

RunOptions fast_opts() {
  RunOptions o;
  o.time_steps = 1;
  o.k_dim = 12;
  return o;
}

TEST(RunnerMore, PsinvRunsAndCountsAccesses) {
  const RunResult r =
      run_kernel(KernelId::kPsinv, Transform::kOrig, 64, fast_opts());
  EXPECT_EQ(r.sim_accesses, 29u * 62 * 62 * 10);
  EXPECT_GT(r.sim_mflops, 0.0);
}

TEST(RunnerMore, PsinvTiledReducesMissesAtLargeN) {
  RunOptions o = fast_opts();
  o.k_dim = 30;
  const auto orig = run_kernel(KernelId::kPsinv, Transform::kOrig, 300, o);
  const auto pad = run_kernel(KernelId::kPsinv, Transform::kPad, 300, o);
  EXPECT_LT(pad.l1_miss_pct, orig.l1_miss_pct);
}

TEST(RunnerMore, RedBlackTiledHelpsAtLargeN) {
  RunOptions o = fast_opts();
  o.k_dim = 30;
  const auto orig = run_kernel(KernelId::kRedBlack, Transform::kOrig, 300, o);
  const auto gcd = run_kernel(KernelId::kRedBlack, Transform::kGcdPad, 300, o);
  EXPECT_LT(gcd.l1_miss_pct, orig.l1_miss_pct);
  EXPECT_GT(gcd.sim_mflops, orig.sim_mflops * 1.2)
      << "REDBLACK should show the largest tiling gains (paper Table 3)";
}

TEST(RunnerMore, ResidTiledHelpsAtLargeN) {
  RunOptions o = fast_opts();
  o.k_dim = 30;
  const auto orig = run_kernel(KernelId::kResid, Transform::kOrig, 362, o);
  const auto gcd = run_kernel(KernelId::kResid, Transform::kGcdPad, 362, o);
  EXPECT_LT(gcd.l1_miss_pct, orig.l1_miss_pct);
}

TEST(RunnerMore, ExplicitPlanIsHonoured) {
  rt::core::TilingPlan plan;
  plan.tiled = true;
  plan.tile = {10, 10};
  plan.dip = 70;
  plan.djp = 68;
  const RunResult r =
      run_kernel_with_plan(KernelId::kJacobi, plan, 64, fast_opts());
  EXPECT_EQ(r.plan.tile, (rt::core::IterTile{10, 10}));
  EXPECT_DOUBLE_EQ(r.mem_elems, 2.0 * 70 * 68 * 12);
}

TEST(RunnerMore, ClockScalesSimMflops) {
  RunOptions o360 = fast_opts();
  RunOptions o450 = fast_opts();
  o450.perf = rt::cachesim::PerfModelParams::ultrasparc2_450();
  const auto a = run_kernel(KernelId::kJacobi, Transform::kOrig, 64, o360);
  const auto b = run_kernel(KernelId::kJacobi, Transform::kOrig, 64, o450);
  EXPECT_NEAR(b.sim_mflops / a.sim_mflops, 450.0 / 360.0, 1e-9);
}

TEST(RunnerMore, KDimChangesWork) {
  RunOptions o = fast_opts();
  o.k_dim = 8;
  const auto r = run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(r.sim_accesses, 9u * 30 * 30 * 6);
}

TEST(RunnerMore, MoreTimeStepsMoreAccesses) {
  RunOptions o1 = fast_opts(), o3 = fast_opts();
  o3.time_steps = 3;
  const auto a = run_kernel(KernelId::kResid, Transform::kOrig, 48, o1);
  const auto b = run_kernel(KernelId::kResid, Transform::kOrig, 48, o3);
  EXPECT_EQ(b.sim_accesses, 3 * a.sim_accesses);
}

TEST(RunnerMore, EcsPlanViaExplicitPath) {
  rt::core::TilingPlan ecs;
  ecs.tiled = true;
  ecs.tile = rt::core::ecs_tile(2048, 0.10, rt::core::StencilSpec::jacobi3d());
  ecs.dip = ecs.djp = 200;
  const auto r = run_kernel_with_plan(KernelId::kJacobi, ecs, 200, fast_opts());
  EXPECT_GT(r.sim_accesses, 0u);
}

TEST(RunnerMore, PsinvRunsThreadedAndSimdLikeOtherKernels) {
  RunOptions o = fast_opts();
  o.simulate = false;
  o.time_host = true;
  o.min_host_seconds = 0.001;
  o.threads = 4;
  o.simd = rt::simd::SimdMode::kAuto;
  // PSINV gained row and parallel variants: it honours the thread and SIMD
  // request exactly like the other kernels instead of degrading to serial
  // scalar.
  const auto r = run_kernel(KernelId::kPsinv, Transform::kOrig, 32, o);
  EXPECT_EQ(r.threads, 4);
  EXPECT_EQ(r.simd, rt::simd::resolve(rt::simd::SimdMode::kAuto));
  EXPECT_EQ(r.threads_requested, 4);
  EXPECT_EQ(r.simd_requested, rt::simd::SimdMode::kAuto);
  EXPECT_FALSE(r.degraded());

  const auto j = run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  EXPECT_EQ(j.threads, 4);
  EXPECT_FALSE(j.degraded());
}

TEST(RunnerMore, HostRunReportsPhasesAndUnavailableCounters) {
  rt::obs::PerfCounters::force_unavailable(true);
  RunOptions o = fast_opts();
  o.simulate = false;
  o.time_host = true;
  o.min_host_seconds = 0.001;
  o.counters = rt::obs::CounterMode::kOn;
  const auto r = run_kernel(KernelId::kJacobi, Transform::kOrig, 32, o);
  rt::obs::PerfCounters::force_unavailable(false);
  EXPECT_GT(r.host_mflops, 0.0);
  EXPECT_EQ(r.warmup.count, 1);
  EXPECT_GE(r.measure.count, 1);
  EXPECT_EQ(r.measure.count, r.hw.iters);
  // Counters were requested but the host (forced) denied them: the run
  // still succeeds and reports the block as unavailable.
  EXPECT_TRUE(r.hw.requested);
  EXPECT_FALSE(r.hw.available);
  EXPECT_FALSE(r.hw.readings.any_valid());

  rt::obs::MetricsWriter w;
  append_json_record(w, "JACOBI", 32, r);
  const std::string doc = w.dump();
  EXPECT_NE(doc.find("\"available\": false"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cycles\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"sim\": null"), std::string::npos) << doc;
}

TEST(RunnerMore, CountersOffOmitsHwBlock) {
  RunOptions o = fast_opts();
  o.simulate = false;
  o.time_host = true;
  o.min_host_seconds = 0.001;
  ASSERT_EQ(o.counters, rt::obs::CounterMode::kOff);  // RunOptions default
  const auto r = run_kernel(KernelId::kResid, Transform::kOrig, 32, o);
  EXPECT_FALSE(r.hw.requested);
  rt::obs::MetricsWriter w;
  append_json_record(w, "RESID", 32, r);
  EXPECT_NE(w.dump().find("\"hw\": null"), std::string::npos);
}

}  // namespace
}  // namespace rt::bench
