// Tests for the 2D tile-selection family (LRW, Esseghir, Euc2D) and the
// effective-cache-size method.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/core/conflict.hpp"
#include "rt/core/tiling2d.hpp"

namespace rt::core {
namespace {

TEST(Lrw, SquareAndConflictFree) {
  for (long n : {130L, 200L, 256L, 300L, 341L, 400L, 700L}) {
    const IterTile t = lrw_tile(2048, n);
    EXPECT_EQ(t.ti, t.tj) << n;
    EXPECT_GE(t.ti, 1) << n;
    // Square tile of `side` consecutive columns must be conflict-free.
    EXPECT_TRUE(is_conflict_free(2048, n, n, t.ti, t.tj, 1)) << n;
    // Maximality: side+1 square must conflict (or exceed capacity).
    const long s = t.ti + 1;
    EXPECT_FALSE(s * s <= 2048 && is_conflict_free(2048, n, n, s, s, 1))
        << n;
  }
}

TEST(Lrw, NeverExceedsSqrtCapacity) {
  for (long n = 100; n <= 500; n += 7) {
    const IterTile t = lrw_tile(2048, n);
    EXPECT_LE(t.ti * t.tj, 2048);
    EXPECT_LE(t.ti, static_cast<long>(std::sqrt(2048.0)));
  }
}

TEST(Esseghir, WholeColumns) {
  EXPECT_EQ(esseghir_tile(2048, 200), (IterTile{200, 10}));
  EXPECT_EQ(esseghir_tile(2048, 400), (IterTile{400, 5}));
  EXPECT_EQ(esseghir_tile(2048, 2048), (IterTile{2048, 1}));
  // Column longer than the cache: still one column (degenerate).
  EXPECT_EQ(esseghir_tile(2048, 4096), (IterTile{4096, 1}));
}

TEST(Esseghir, ColumnTilesAreConflictFree) {
  for (long n : {150L, 200L, 333L, 512L}) {
    const IterTile t = esseghir_tile(2048, n);
    if (t.ti * t.tj <= 2048) {
      EXPECT_TRUE(is_conflict_free(2048, n, n, t.ti, t.tj, 1)) << n;
    }
  }
}

TEST(Cost2d, FavoursLargeSquares) {
  EXPECT_LT(cost2d(IterTile{40, 40}), cost2d(IterTile{20, 20}));
  EXPECT_LT(cost2d(IterTile{40, 40}), cost2d(IterTile{200, 8}));
  EXPECT_TRUE(std::isinf(cost2d(IterTile{0, 5})));
}

TEST(Euc2d, PicksBalancedRecordFor200) {
  // Records for (2048, 200): (1,2048),(10,200),(41,48),(256,8); the
  // balanced (41 cols, 48 high) record wins under cost2d.
  const Euc2dResult r = euc2d(2048, 200);
  EXPECT_EQ(r.tile, (IterTile{48, 41}));
  EXPECT_NEAR(r.tile_cost, 1.0 / 48 + 1.0 / 41, 1e-12);
}

TEST(Euc2d, AlwaysConflictFreeAndAtLeastLrw) {
  for (long n = 100; n <= 700; n += 13) {
    const Euc2dResult r = euc2d(2048, n);
    EXPECT_TRUE(is_conflict_free(2048, n, n, r.tile.ti, r.tile.tj, 1)) << n;
    // Euc2D searches a superset of LRW's squares, so it can't be worse.
    EXPECT_LE(r.tile_cost, cost2d(lrw_tile(2048, n)) + 1e-12) << n;
  }
}

TEST(EcsTile, TargetsFraction) {
  const auto spec = StencilSpec::jacobi3d();
  const IterTile t = ecs_tile(2048, 0.10, spec);
  // ~204 elements over 3 planes: side 8.
  EXPECT_EQ(t.ti, t.tj);
  EXPECT_LE((t.ti + 2) * (t.tj + 2) * 3, 2048 / 5);
  EXPECT_THROW(ecs_tile(2048, 0.0, spec), std::invalid_argument);
  EXPECT_THROW(ecs_tile(2048, 1.5, spec), std::invalid_argument);
}

TEST(Tiling2d, RejectsBadArgs) {
  EXPECT_THROW(lrw_tile(0, 10), std::invalid_argument);
  EXPECT_THROW(esseghir_tile(10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rt::core
