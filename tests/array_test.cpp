// Array3D/Array2D layout and AddressSpace placement tests.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <type_traits>

#include "rt/array/address_space.hpp"
#include "rt/array/array3d.hpp"

namespace rt::array {
namespace {

TEST(Dims3, UnpaddedStrides) {
  const Dims3 d = Dims3::unpadded(5, 7, 9);
  EXPECT_EQ(d.column_stride(), 5);
  EXPECT_EQ(d.plane_stride(), 35);
  EXPECT_EQ(d.alloc_elems(), 5 * 7 * 9);
  EXPECT_TRUE(d.valid());
}

TEST(Dims3, PaddedStrides) {
  const Dims3 d = Dims3::padded(5, 7, 9, 8, 10);
  EXPECT_EQ(d.column_stride(), 8);
  EXPECT_EQ(d.plane_stride(), 80);
  EXPECT_EQ(d.alloc_elems(), 8 * 10 * 9);
}

TEST(Dims3, InvalidWhenPadSmallerThanLogical) {
  EXPECT_FALSE(Dims3::padded(5, 7, 9, 4, 10).valid());
  EXPECT_FALSE(Dims3::padded(0, 7, 9, 4, 10).valid());
}

TEST(Array3D, ColumnMajorAdjacency) {
  Array3D<double> a(4, 5, 6);
  // I is the fastest-varying (contiguous) dimension.
  EXPECT_EQ(a.index(1, 0, 0) - a.index(0, 0, 0), 1);
  EXPECT_EQ(a.index(0, 1, 0) - a.index(0, 0, 0), 4);
  EXPECT_EQ(a.index(0, 0, 1) - a.index(0, 0, 0), 20);
}

TEST(Array3D, PaddedIndexUsesLeadingDims) {
  Array3D<double> a(Dims3::padded(4, 5, 6, 7, 9));
  EXPECT_EQ(a.index(0, 1, 0) - a.index(0, 0, 0), 7);
  EXPECT_EQ(a.index(0, 0, 1) - a.index(0, 0, 0), 63);
  EXPECT_EQ(a.size(), 7u * 9u * 6u);
}

TEST(Array3D, LoadStoreRoundTrip) {
  Array3D<double> a(3, 3, 3);
  a.store(1, 2, 0, 42.5);
  EXPECT_EQ(a.load(1, 2, 0), 42.5);
  EXPECT_EQ(a(1, 2, 0), 42.5);
}

TEST(Array3D, FillSetsEverything) {
  Array3D<double> a(Dims3::padded(3, 3, 3, 5, 5), 1.0);
  a.fill(2.0);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], 2.0);
}

TEST(Array3D, DistinctElementsDistinctStorage) {
  Array3D<int> a(3, 4, 5);
  int v = 0;
  for (long k = 0; k < 5; ++k)
    for (long j = 0; j < 4; ++j)
      for (long i = 0; i < 3; ++i) a(i, j, k) = v++;
  v = 0;
  for (long k = 0; k < 5; ++k)
    for (long j = 0; j < 4; ++j)
      for (long i = 0; i < 3; ++i) EXPECT_EQ(a(i, j, k), v++);
}

TEST(Array2D, LayoutAndPadding) {
  Array2D<double> a(4, 6, 10);
  EXPECT_EQ(a.index(0, 1) - a.index(0, 0), 10);
  EXPECT_EQ(a.size(), 60u);
  a.store(3, 5, 7.0);
  EXPECT_EQ(a.load(3, 5), 7.0);
}

TEST(Dims2, PaddedAndUnpadded) {
  const Dims2 u = Dims2::unpadded(5, 7);
  EXPECT_EQ(u.p1, 5);
  EXPECT_EQ(u.alloc_elems(), 35);
  EXPECT_TRUE(u.valid());
  const Dims2 p = Dims2::padded(5, 7, 9);
  EXPECT_EQ(p.alloc_elems(), 63);
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(Dims2::padded(5, 7, 4).valid());
  EXPECT_EQ(p, (Dims2{5, 7, 9}));
}

TEST(Array2D, Dims2ConstructorMatchesLegacyAndInitializes) {
  Array2D<double> a(Dims2::padded(4, 6, 10), 3.5);
  Array2D<double> b(4, 6, 10);
  EXPECT_EQ(a.n1(), b.n1());
  EXPECT_EQ(a.p1(), b.p1());
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], 3.5);
}

TEST(Array2D, FillSetsWholeAllocationIncludingPad) {
  Array2D<double> a(Dims2::padded(3, 4, 7), 1.0);
  a.fill(2.0);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], 2.0);
}

TEST(AlignedStorage, ArraysStartOnCacheLineBoundary) {
  // The rt::simd row kernels rely on element (0, j, k) alignment phase
  // being a pure function of p1; the base pointer itself is 64-byte
  // aligned by AlignedAllocator.
  Array3D<double> a3(Dims3::padded(5, 7, 9, 11, 13));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a3.data()) % 64, 0u);
  Array2D<double> a2(Dims2::padded(5, 7, 11));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a2.data()) % 64, 0u);
  AlignedVector<double> v(3);  // small sizes must stay aligned too
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

TEST(AlignedAllocator, EqualityAndRebind) {
  using AllocD = AlignedAllocator<double, 64>;
  using AllocF = AlignedAllocator<float, 64>;
  AllocD a;
  EXPECT_TRUE(a == AllocD{});
  EXPECT_FALSE(a != AllocD{});
  using Rebound = std::allocator_traits<AllocD>::rebind_alloc<float>;
  static_assert(std::is_same_v<Rebound, AllocF>);
}

TEST(AddressSpace, PlacesBackToBackAligned) {
  AddressSpace s(0, 64);
  const auto b0 = s.place("a", 100, 8);  // 800 bytes
  const auto b1 = s.place("b", 10, 8);
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(b1, 832u);  // 800 rounded up to 64
  EXPECT_EQ(s.placements().size(), 2u);
  EXPECT_EQ(s.placements()[1].name, "b");
}

TEST(AddressSpace, NonZeroBase) {
  AddressSpace s(1000, 8);
  EXPECT_EQ(s.place("a", 4, 8), 1000u);
  EXPECT_EQ(s.place("b", 1, 8), 1032u);
}

}  // namespace
}  // namespace rt::array
