// The analytical miss-rate predictor must agree with the cache simulator
// in every regime — this is the paper's Section 1 arithmetic, checked
// against the machine model it describes.

#include <gtest/gtest.h>

#include "rt/bench/runner.hpp"
#include "rt/core/analysis.hpp"

namespace rt::core {
namespace {

using rt::bench::RunOptions;
using rt::bench::run_kernel;
using rt::core::Transform;
using rt::kernels::KernelId;

RunOptions opts(long kd = 30) {
  RunOptions o;
  o.time_steps = 2;
  o.k_dim = kd;
  return o;
}

TEST(Analysis, PlaneReuseRegimeNumbers) {
  // 16K L1 (2048 doubles), 32B lines (4 doubles).
  const auto small = predict_jacobi3d_orig(2048, 4, 24);  // 2*24^2 < 2048
  EXPECT_NEAR(small.b_misses_per_point, 0.25, 1e-12);
  const auto large = predict_jacobi3d_orig(2048, 4, 300);
  EXPECT_NEAR(large.b_misses_per_point, 0.75, 1e-12);
  EXPECT_NEAR(large.l1_miss_pct, 100.0 * (0.75 + 2.25) / 9.0, 1e-9);
}

TEST(Analysis, OrigPredictionMatchesSimulatorTypicalSizes) {
  for (long n : {220L, 280L, 360L, 380L}) {  // non-spike sizes
    const auto pred = predict_jacobi3d_orig(2048, 4, n);
    const auto sim = run_kernel(KernelId::kJacobi, Transform::kOrig, n,
                                opts());
    EXPECT_NEAR(pred.l1_miss_pct, sim.l1_miss_pct, 1.5) << "n=" << n;
  }
}

TEST(Analysis, TiledPredictionMatchesSimulator) {
  const auto spec = StencilSpec::jacobi3d();
  for (long n : {260L, 300L, 320L, 400L}) {
    const auto sim = run_kernel(KernelId::kJacobi, Transform::kGcdPad, n,
                                opts());
    const auto pred =
        predict_jacobi3d_tiled(4, sim.plan.tile, spec);
    EXPECT_NEAR(pred.l1_miss_pct, sim.l1_miss_pct, 1.5) << "n=" << n;
  }
}

TEST(Analysis, SmallProblemMatchesSimulator) {
  // 2 planes fit: prediction and simulation should both sit near the
  // leading-plane-only plateau.
  const auto pred = predict_jacobi3d_orig(2048, 4, 30);
  const auto sim =
      run_kernel(KernelId::kJacobi, Transform::kOrig, 30, opts(16));
  EXPECT_NEAR(pred.l1_miss_pct, sim.l1_miss_pct, 3.0);
}

TEST(Analysis, TiledBeatsUntiledInModel) {
  const auto spec = StencilSpec::jacobi3d();
  const auto orig = predict_jacobi3d_orig(2048, 4, 300);
  const auto tiled = predict_jacobi3d_tiled(4, IterTile{30, 14}, spec);
  EXPECT_LT(tiled.l1_miss_pct, orig.l1_miss_pct);
  // The model's predicted gain is the paper's ~4-5 percentage points.
  EXPECT_NEAR(orig.l1_miss_pct - tiled.l1_miss_pct, 5.0, 2.0);
}

}  // namespace
}  // namespace rt::core
