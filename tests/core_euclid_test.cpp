// Tests for the 2D Euclidean non-conflicting tile enumeration (euc_pareto),
// including exhaustive validation against the brute-force minimal-gap
// computation across many (cache size, stride) pairs.

#include <gtest/gtest.h>

#include "rt/core/euclid.hpp"

namespace rt::core {
namespace {

TEST(EucPareto, PaperExample200x2048) {
  // Paper Table 1, TK=1 row: non-conflicting (TJ, TI) records for a
  // 200-column array in a 2048-element cache.
  const auto p = euc_pareto(2048, 200);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], (WidthHeight{1, 2048}));
  EXPECT_EQ(p[1], (WidthHeight{10, 200}));
  EXPECT_EQ(p[2], (WidthHeight{41, 48}));
  EXPECT_EQ(p[3], (WidthHeight{256, 8}));
}

TEST(EucPareto, StrideDividesCache) {
  // Columns all map to distinct multiples: stride 256 in 2048 -> 8 columns
  // of height 256 tile the cache exactly.
  const auto p = euc_pareto(2048, 256);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (WidthHeight{1, 2048}));
  EXPECT_EQ(p[1], (WidthHeight{8, 256}));
}

TEST(EucPareto, StrideMultipleOfCache) {
  // Every column maps to the same cache offset: only one column fits.
  const auto p = euc_pareto(2048, 4096);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], (WidthHeight{1, 2048}));
}

TEST(EucPareto, StrideLargerThanCacheUsesResidue) {
  EXPECT_EQ(euc_pareto(2048, 2048 + 200), euc_pareto(2048, 200));
}

TEST(EucPareto, RejectsNonPositiveArgs) {
  EXPECT_THROW(euc_pareto(0, 10), std::invalid_argument);
  EXPECT_THROW(euc_pareto(128, 0), std::invalid_argument);
  EXPECT_THROW(euc_pareto(-4, 3), std::invalid_argument);
}

TEST(BruteForce, SingleColumnGetsWholeCache) {
  EXPECT_EQ(max_height_bruteforce(2048, 200, 1), 2048);
}

TEST(BruteForce, KnownGaps) {
  // Offsets {0, 200, ..., 1800}: min gap is the wrap gap 2048-1800 = 248?
  // No: gaps between consecutive are 200, wrap gap 248 -> min 200.
  EXPECT_EQ(max_height_bruteforce(2048, 200, 10), 200);
  EXPECT_EQ(max_height_bruteforce(2048, 200, 11), 48);
  EXPECT_EQ(max_height_bruteforce(2048, 200, 41), 48);
  EXPECT_EQ(max_height_bruteforce(2048, 200, 42), 8);
}

// Property: every euc_pareto record (w, h) satisfies
//   h == brute-force max height at width w   (record is tight), and
//   brute-force max height at width w+1 < h  (record is maximal in width).
class EucParetoProperty
    : public ::testing::TestWithParam<std::pair<long, long>> {};

TEST_P(EucParetoProperty, RecordsMatchBruteForce) {
  const auto [cs, stride] = GetParam();
  const auto recs = euc_pareto(cs, stride);
  ASSERT_FALSE(recs.empty());
  for (const auto& r : recs) {
    EXPECT_EQ(r.height, max_height_bruteforce(cs, stride, r.width))
        << "cs=" << cs << " stride=" << stride << " w=" << r.width;
    EXPECT_LT(max_height_bruteforce(cs, stride, r.width + 1), r.height)
        << "cs=" << cs << " stride=" << stride << " w=" << r.width;
  }
  // Widths strictly increase, heights strictly decrease.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].width, recs[i].width);
    EXPECT_GT(recs[i - 1].height, recs[i].height);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ManyStrides, EucParetoProperty,
    ::testing::Values(
        std::pair<long, long>{2048, 200}, std::pair<long, long>{2048, 341},
        std::pair<long, long>{2048, 101}, std::pair<long, long>{2048, 127},
        std::pair<long, long>{2048, 1023}, std::pair<long, long>{2048, 1024},
        std::pair<long, long>{2048, 1025}, std::pair<long, long>{2048, 3},
        std::pair<long, long>{2048, 2047}, std::pair<long, long>{1024, 333},
        std::pair<long, long>{1024, 999}, std::pair<long, long>{512, 81},
        std::pair<long, long>{4096, 130}, std::pair<long, long>{4096, 362},
        std::pair<long, long>{8192, 700}, std::pair<long, long>{8192, 555},
        std::pair<long, long>{256, 17}, std::pair<long, long>{256, 255},
        std::pair<long, long>{128, 96}, std::pair<long, long>{2048, 400}));

// Exhaustive small-modulus sweep: all strides for a few cache sizes.
TEST(EucParetoExhaustive, AllStridesSmallCaches) {
  for (long cs : {16L, 32L, 64L, 128L, 256L}) {
    for (long stride = 1; stride < 2 * cs; ++stride) {
      const auto recs = euc_pareto(cs, stride);
      for (const auto& r : recs) {
        ASSERT_EQ(r.height, max_height_bruteforce(cs, stride, r.width))
            << "cs=" << cs << " stride=" << stride << " w=" << r.width;
      }
      // The frontier must cover every achievable height: walking widths,
      // the gap at width w must equal the height of the covering record.
      if (stride % cs == 0) continue;
      std::size_t ri = 0;
      for (long w = 1; w <= recs.back().width; ++w) {
        while (recs[ri].width < w) ++ri;
        ASSERT_EQ(max_height_bruteforce(cs, stride, w), recs[ri].height)
            << "cs=" << cs << " stride=" << stride << " w=" << w;
      }
    }
  }
}

}  // namespace
}  // namespace rt::core
