// Cross-validation between the analytical conflict model used by the
// tiling algorithms (element-granularity, address mod Cs) and the actual
// cache simulator, plus a set-based reference implementation of the Euc3D
// enumeration that double-checks the incremental difference-based one.

#include <gtest/gtest.h>

#include <set>

#include "rt/cachesim/cache.hpp"
#include "rt/core/conflict.hpp"
#include "rt/core/euc3d.hpp"

namespace rt::core {
namespace {

/// Reference Euc3D enumeration: maintain the sorted set of column-start
/// offsets and the true minimal circular gap, one column at a time.
std::vector<ArrayTile> euc3d_enumerate_reference(long cs, long di, long dj,
                                                 int tk) {
  const long p = (di * dj) % cs;
  std::set<long> pts;
  long min_gap = cs;
  const auto insert = [&](long x) -> bool {
    auto [it, ok] = pts.insert(x);
    if (!ok) return false;
    if (pts.size() == 1) return true;
    auto nxt = std::next(it);
    const long hi = (nxt == pts.end()) ? *pts.begin() + cs : *nxt;
    auto prv = (it == pts.begin()) ? std::prev(pts.end()) : std::prev(it);
    const long lo = (it == pts.begin()) ? *prv - cs : *prv;
    min_gap = std::min({min_gap, *it - lo, hi - *it});
    return true;
  };
  for (int k = 0; k < tk; ++k) {
    if (!insert((k * p) % cs)) return {};
  }
  std::vector<ArrayTile> out;
  long g = min_gap;
  for (long tj = 2;; ++tj) {
    bool dup = false;
    for (int k = 0; k < tk && !dup; ++k) {
      dup = !insert(((k * p) % cs + ((tj - 1) * di) % cs) % cs);
    }
    if (dup) {
      out.push_back(ArrayTile{g, tj - 1, tk});
      break;
    }
    if (min_gap < g) {
      out.push_back(ArrayTile{g, tj - 1, tk});
      g = min_gap;
      if (g == 0) break;
    }
    if (tj > cs + 2) break;  // safety net
  }
  return out;
}

class Euc3dReference
    : public ::testing::TestWithParam<std::tuple<long, long, long, int>> {};

TEST_P(Euc3dReference, IncrementalMatchesSetBased) {
  const auto [cs, di, dj, tk] = GetParam();
  EXPECT_EQ(euc3d_enumerate(cs, di, dj, tk),
            euc3d_enumerate_reference(cs, di, dj, tk));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Euc3dReference,
    ::testing::Combine(::testing::Values(256L, 512L, 2048L),
                       ::testing::Values(37L, 130L, 200L, 224L, 341L, 511L,
                                         512L, 513L),
                       ::testing::Values(100L, 200L, 341L),
                       ::testing::Values(1, 2, 3, 4, 5)));

// The analytical conflict checker must agree with an element-granularity
// direct-mapped cache: touching every element of a conflict-free tile once
// then touching them all again must produce zero second-round misses.
TEST(ConflictVsSimulator, ConflictFreeTileFullyCacheable) {
  const long cs = 2048, di = 224, dj = 240;  // GcdPad dims
  const long ti = 32, tj = 16;
  const int tk = 4;
  ASSERT_TRUE(is_conflict_free(cs, di, dj, ti, tj, tk));

  // 2048-element direct-mapped "cache" with 8-byte lines = element slots.
  rt::cachesim::Cache c(rt::cachesim::CacheConfig{2048 * 8, 8, 1, true, true});
  const long plane = di * dj;
  for (int round = 0; round < 2; ++round) {
    for (int k = 0; k < tk; ++k) {
      for (long j = 0; j < tj; ++j) {
        for (long i = 0; i < ti; ++i) {
          c.access(static_cast<std::uint64_t>(k * plane + j * di + i) * 8,
                   false);
        }
      }
    }
    if (round == 0) {
      EXPECT_EQ(c.stats().misses, static_cast<std::uint64_t>(ti * tj * tk));
    }
  }
  EXPECT_EQ(c.stats().misses, static_cast<std::uint64_t>(ti * tj * tk))
      << "second round must be all hits for a conflict-free tile";
}

TEST(ConflictVsSimulator, ConflictingTileThrashes) {
  const long cs = 2048, di = 256, dj = 256;  // power-of-two dims: planes and
                                             // columns alias heavily
  const long ti = 16, tj = 16;
  const int tk = 3;
  ASSERT_FALSE(is_conflict_free(cs, di, dj, ti, tj, tk));
  rt::cachesim::Cache c(rt::cachesim::CacheConfig{2048 * 8, 8, 1, true, true});
  const long plane = di * dj;
  for (int round = 0; round < 2; ++round) {
    for (int k = 0; k < tk; ++k) {
      for (long j = 0; j < tj; ++j) {
        for (long i = 0; i < ti; ++i) {
          c.access(static_cast<std::uint64_t>(k * plane + j * di + i) * 8,
                   false);
        }
      }
    }
  }
  EXPECT_GT(c.stats().misses, static_cast<std::uint64_t>(ti * tj * tk))
      << "conflicting tile must keep missing in round two";
}

// Every conflict-free verdict must agree with a mod-Cs distinctness count.
TEST(ConflictChecker, AgreesWithDirectEnumeration) {
  for (long di : {100L, 200L, 341L}) {
    for (long ti : {8L, 30L}) {
      for (long tj : {4L, 14L}) {
        std::set<long> s;
        bool distinct = true;
        const long plane = di * di;
        for (int k = 0; k < 3 && distinct; ++k) {
          for (long j = 0; j < tj && distinct; ++j) {
            for (long i = 0; i < ti && distinct; ++i) {
              distinct = s.insert((k * plane + j * di + i) % 2048).second;
            }
          }
        }
        EXPECT_EQ(is_conflict_free(2048, di, di, ti, tj, 3), distinct)
            << di << " " << ti << " " << tj;
      }
    }
  }
}

}  // namespace
}  // namespace rt::core
