// Kernel correctness: tiled variants must compute bitwise-identical results
// to the original loop nests for many problem/tile shapes, the fused
// red-black ordering must match the naive two-pass ordering, and access
// counts must match the registry.

#include <gtest/gtest.h>

#include <cmath>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/jacobi2d.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"

namespace rt::kernels {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::IterTile;

Array3D<double> make_grid(long n1, long n2, long n3, double seed,
                          long p1 = 0, long p2 = 0) {
  Dims3 d = (p1 > 0) ? Dims3::padded(n1, n2, n3, p1, p2)
                     : Dims3::unpadded(n1, n2, n3);
  Array3D<double> a(d);
  for (long k = 0; k < n3; ++k) {
    for (long j = 0; j < n2; ++j) {
      for (long i = 0; i < n1; ++i) {
        a(i, j, k) = std::sin(seed + 0.1 * i + 0.2 * j + 0.3 * k);
      }
    }
  }
  return a;
}

bool interiors_equal(const Array3D<double>& a, const Array3D<double>& b) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (a(i, j, k) != b(i, j, k)) return false;  // bitwise
      }
    }
  }
  return true;
}

struct Shape {
  long n, k, ti, tj;
};

class TiledEquivalence : public ::testing::TestWithParam<Shape> {};

TEST_P(TiledEquivalence, Jacobi3dTiledMatchesOrig) {
  const auto [n, kd, ti, tj] = GetParam();
  Array3D<double> b = make_grid(n, n, kd, 0.5);
  Array3D<double> a1(n, n, kd), a2(n, n, kd);
  jacobi3d(a1, b, 1.0 / 6.0);
  jacobi3d_tiled(a2, b, 1.0 / 6.0, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST_P(TiledEquivalence, ResidTiledMatchesOrig) {
  const auto [n, kd, ti, tj] = GetParam();
  Array3D<double> u = make_grid(n, n, kd, 0.1);
  Array3D<double> v = make_grid(n, n, kd, 0.7);
  Array3D<double> r1(n, n, kd), r2(n, n, kd);
  const ResidCoeffs a = nas_mg_a();
  resid(r1, v, u, a);
  resid_tiled(r2, v, u, a, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(r1, r2));
}

TEST_P(TiledEquivalence, RedBlackFusedMatchesNaive) {
  const auto [n, kd, ti, tj] = GetParam();
  (void)ti;
  (void)tj;
  Array3D<double> a1 = make_grid(n, n, kd, 0.3);
  Array3D<double> a2 = a1;
  redblack_naive(a1, 0.4, 0.1);
  redblack_fused(a2, 0.4, 0.1);
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST_P(TiledEquivalence, RedBlackTiledMatchesNaive) {
  const auto [n, kd, ti, tj] = GetParam();
  Array3D<double> a1 = make_grid(n, n, kd, 0.3);
  Array3D<double> a2 = a1;
  redblack_naive(a1, 0.4, 0.1);
  redblack_tiled(a2, 0.4, 0.1, IterTile{ti, tj});
  EXPECT_TRUE(interiors_equal(a1, a2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledEquivalence,
    ::testing::Values(Shape{8, 8, 3, 3}, Shape{8, 8, 1, 1}, Shape{9, 7, 2, 5},
                      Shape{16, 10, 5, 4}, Shape{17, 9, 4, 4},
                      Shape{23, 11, 7, 3}, Shape{32, 8, 30, 30},
                      Shape{33, 12, 16, 8}, Shape{40, 30, 13, 22},
                      Shape{41, 6, 41, 1}, Shape{12, 30, 100, 100},
                      Shape{25, 25, 6, 6}, Shape{64, 10, 22, 13},
                      Shape{31, 31, 29, 2}));

TEST(TiledEquivalence, MultiStepRedBlackStaysEqual) {
  // Several full sweeps: divergence anywhere would compound and be caught.
  Array3D<double> a1 = make_grid(20, 20, 12, 0.9);
  Array3D<double> a2 = a1;
  for (int t = 0; t < 4; ++t) {
    redblack_naive(a1, 0.4, 0.1);
    redblack_tiled(a2, 0.4, 0.1, IterTile{5, 3});
  }
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST(TiledEquivalence, PaddedArraysComputeSameValues) {
  // Padding changes layout, never values.
  Array3D<double> b1 = make_grid(12, 12, 8, 0.2);
  Array3D<double> b2 = make_grid(12, 12, 8, 0.2, 17, 19);
  Array3D<double> a1(12, 12, 8);
  Array3D<double> a2(Dims3::padded(12, 12, 8, 17, 19));
  jacobi3d(a1, b1, 1.0 / 6.0);
  jacobi3d_tiled(a2, b2, 1.0 / 6.0, IterTile{5, 4});
  EXPECT_TRUE(interiors_equal(a1, a2));
}

TEST(Jacobi2d, ComputesStencil) {
  rt::array::Array2D<double> b(5, 5), a(5, 5);
  for (long j = 0; j < 5; ++j)
    for (long i = 0; i < 5; ++i) b(i, j) = i + 10.0 * j;
  jacobi2d(a, b, 0.25);
  EXPECT_DOUBLE_EQ(a(2, 2), 0.25 * ((1 + 10 * 2) + (3 + 10 * 2) +
                                    (2 + 10 * 1) + (2 + 10 * 3)));
}

TEST(Jacobi3d, KnownValue) {
  Array3D<double> b(5, 5, 5), a(5, 5, 5);
  for (long k = 0; k < 5; ++k)
    for (long j = 0; j < 5; ++j)
      for (long i = 0; i < 5; ++i) b(i, j, k) = i + 10.0 * j + 100.0 * k;
  jacobi3d(a, b, 1.0);
  // Six neighbours of (2,2,2): sum = 6*222 (symmetric +/-1 per axis).
  EXPECT_DOUBLE_EQ(a(2, 2, 2), 6.0 * 222.0);
}

TEST(Resid, ZeroUMeansResidualEqualsV) {
  Array3D<double> u(6, 6, 6);  // zeros
  Array3D<double> v = make_grid(6, 6, 6, 0.4);
  Array3D<double> r(6, 6, 6);
  resid(r, v, u, nas_mg_a());
  for (long k = 1; k < 5; ++k)
    for (long j = 1; j < 5; ++j)
      for (long i = 1; i < 5; ++i) EXPECT_EQ(r(i, j, k), v(i, j, k));
}

TEST(Resid, ConstantUHasZeroResidualWithBalancedStencil) {
  // sum of coefficients: a0 + 6 a1 + 12 a2 + 8 a3 with the NAS vector:
  // -8/3 + 0 + 2 + 2/3 = 0, so A * constant = 0.
  Array3D<double> u(8, 8, 8, 3.5);
  Array3D<double> v(8, 8, 8);
  Array3D<double> r(8, 8, 8, 99.0);
  resid(r, v, u, nas_mg_a());
  for (long k = 1; k < 7; ++k)
    for (long j = 1; j < 7; ++j)
      for (long i = 1; i < 7; ++i) EXPECT_NEAR(r(i, j, k), 0.0, 1e-12);
}

TEST(RedBlack, UpdatesUseFreshNeighbours) {
  // Black points must see *updated* red values: with c1=0, c2=1 and a
  // one-hot red point, its black neighbours receive the new red value.
  Array3D<double> a(5, 5, 5);
  a(2, 2, 2) = 1.0;  // (2+2+2) even -> red
  redblack_naive(a, 0.0, 1.0);
  // Red pass: (2,2,2) gets sum of 6 black neighbours = 0.
  EXPECT_EQ(a(2, 2, 2), 0.0);
}

TEST(KernelInfo, RegistryComplete) {
  EXPECT_EQ(all_kernels().size(), 3u);
  EXPECT_EQ(kernel_info(KernelId::kJacobi).name, "JACOBI");
  EXPECT_EQ(kernel_info(KernelId::kRedBlack).spec.atd, 4);
  EXPECT_EQ(kernel_info(KernelId::kResid).accesses_per_point, 29u);
}

TEST(KernelInfo, AccessCountsMatchTrace) {
  // Run each kernel traced and check accesses == accesses_per_point *
  // interior points (stencil nests only).
  const long n = 10, kd = 8;
  const std::uint64_t pts = (n - 2) * (n - 2) * (kd - 2);
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();

  {  // JACOBI
    Array3D<double> a(n, n, kd), b = make_grid(n, n, kd, 0.1);
    rt::cachesim::TracedArray3D<double> ta(a, 0, h), tb(b, 1 << 20, h);
    jacobi3d(ta, tb, 1.0 / 6.0);
    EXPECT_EQ(h.stats().l1.accesses,
              kernel_info(KernelId::kJacobi).accesses_per_point * pts);
  }
  h.reset_stats();
  {  // REDBLACK (full sweep = both colours)
    Array3D<double> a = make_grid(n, n, kd, 0.2);
    rt::cachesim::TracedArray3D<double> ta(a, 0, h);
    redblack_naive(ta, 0.4, 0.1);
    EXPECT_EQ(h.stats().l1.accesses,
              kernel_info(KernelId::kRedBlack).accesses_per_point * pts);
  }
  h.reset_stats();
  {  // RESID
    Array3D<double> r(n, n, kd), v = make_grid(n, n, kd, 0.3),
                    u = make_grid(n, n, kd, 0.4);
    rt::cachesim::TracedArray3D<double> tr(r, 0, h), tv(v, 1 << 20, h),
        tu(u, 2 << 20, h);
    resid(tr, tv, tu, nas_mg_a());
    EXPECT_EQ(h.stats().l1.accesses,
              kernel_info(KernelId::kResid).accesses_per_point * pts);
  }
}

TEST(TracedKernels, ProduceSameValuesAsNative) {
  const long n = 12, kd = 9;
  Array3D<double> b = make_grid(n, n, kd, 0.5);
  Array3D<double> a_native(n, n, kd), a_traced(n, n, kd);
  jacobi3d(a_native, b, 1.0 / 6.0);
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::TracedArray3D<double> ta(a_traced, 0, h), tb(b, 1 << 22, h);
  jacobi3d(ta, tb, 1.0 / 6.0);
  EXPECT_TRUE(interiors_equal(a_native, a_traced));
}

}  // namespace
}  // namespace rt::kernels
