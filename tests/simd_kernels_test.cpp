// rt::simd correctness: the row-sweep kernels must be *bit-identical* to
// the accessor kernels at every SimdLevel, across an exhaustive shape
// sweep — cubic, non-cubic, minimum-size (n = 3, a single interior
// plane), padded leading dimensions (aligned and deliberately misaligned),
// and tile sizes that leave ragged edge tiles or exceed the interior.
// The parallel compositions (rt/simd/par_rows.hpp) must hold the same
// identity under a multi-thread pool.  Also covers the policy layer:
// mode parsing, mode->level resolution, and leading-dimension alignment.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"
#include "rt/simd/simd.hpp"

namespace rt::simd {
namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::IterTile;
using rt::par::ThreadPool;

Array3D<double> make_grid(long n1, long n2, long n3, double seed,
                          long p1 = 0, long p2 = 0) {
  Dims3 d = (p1 > 0) ? Dims3::padded(n1, n2, n3, p1, p2)
                     : Dims3::unpadded(n1, n2, n3);
  Array3D<double> a(d);
  for (long k = 0; k < n3; ++k) {
    for (long j = 0; j < n2; ++j) {
      for (long i = 0; i < n1; ++i) {
        a(i, j, k) = std::sin(seed + 0.1 * i + 0.2 * j + 0.3 * k);
      }
    }
  }
  return a;
}

bool interiors_equal(const Array3D<double>& a, const Array3D<double>& b) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        if (a(i, j, k) != b(i, j, k)) return false;  // bitwise
      }
    }
  }
  return true;
}

/// Every level the dispatch can take.  kAvx2 is included even on hosts
/// without AVX2: the dispatcher must fall back to the baseline stamp
/// rather than fault, and the fallback is bit-identical anyway.
std::vector<SimdLevel> levels_under_test() {
  return {SimdLevel::kRows, SimdLevel::kAvx2};
}

/// Shapes with ragged tiles (ti/tj not dividing the interior), tiles
/// larger than the interior, the minimum stencil-admitting size n = 3,
/// and optional padding (p1/p2 = 0 means unpadded).  p1 = 17 is odd on
/// purpose: rows then never share an alignment phase, which would expose
/// any alignment assumption in the sweeps.
struct Shape {
  long n1, n2, n3, ti, tj, p1, p2;
};

class SimdEquivalence : public ::testing::TestWithParam<Shape> {
 protected:
  ThreadPool pool_{4};
};

TEST_P(SimdEquivalence, JacobiRowsMatchAccessor) {
  const auto [n1, n2, n3, ti, tj, p1, p2] = GetParam();
  const IterTile t{ti, tj};
  for (SimdLevel lvl : levels_under_test()) {
    Array3D<double> b1 = make_grid(n1, n2, n3, 0.5, p1, p2);
    Array3D<double> b2 = b1, b3 = b1, b4 = b1;
    const Dims3 d = b1.dims();
    Array3D<double> a1(d), a2(d), a3(d), a4(d);
    rt::kernels::jacobi3d_tiled(a1, b1, 1.0 / 6.0, t);
    rt::kernels::copy_interior(b1, a1);
    jacobi3d_tiled_rows(a2, b2, 1.0 / 6.0, t, lvl);
    copy_interior_rows(b2, a2, lvl);
    EXPECT_TRUE(interiors_equal(a1, a2)) << "tiled lvl=" << int(lvl);
    EXPECT_TRUE(interiors_equal(b1, b2)) << "copy lvl=" << int(lvl);
    // Untiled row kernel vs untiled accessor kernel.
    Array3D<double> r1(d), r2(d);
    rt::kernels::jacobi3d(r1, b3, 1.0 / 6.0);
    jacobi3d_rows(r2, b3, 1.0 / 6.0, lvl);
    EXPECT_TRUE(interiors_equal(r1, r2)) << "untiled lvl=" << int(lvl);
    // Parallel composition.
    jacobi3d_tiled_rows_par(pool_, a3, b4, 1.0 / 6.0, t, lvl);
    copy_interior_rows_par(pool_, b4, a3, lvl);
    EXPECT_TRUE(interiors_equal(a1, a3)) << "par tiled lvl=" << int(lvl);
    EXPECT_TRUE(interiors_equal(b1, b4)) << "par copy lvl=" << int(lvl);
    Array3D<double> r3(d);
    jacobi3d_rows_par(pool_, r3, b3, 1.0 / 6.0, lvl);
    EXPECT_TRUE(interiors_equal(r1, r3)) << "par untiled lvl=" << int(lvl);
  }
}

TEST_P(SimdEquivalence, RedBlackRowsMatchAllSerialSchedules) {
  const auto [n1, n2, n3, ti, tj, p1, p2] = GetParam();
  const IterTile t{ti, tj};
  for (SimdLevel lvl : levels_under_test()) {
    Array3D<double> ref = make_grid(n1, n2, n3, 0.3, p1, p2);
    Array3D<double> a1 = ref, a2 = ref, a3 = ref, a4 = ref, a5 = ref;
    rt::kernels::redblack_naive(ref, 0.4, 0.1);
    redblack_rows(a1, 0.4, 0.1, lvl);
    EXPECT_TRUE(interiors_equal(ref, a1)) << "rows lvl=" << int(lvl);
    redblack_tiled_rows(a2, 0.4, 0.1, t, lvl);
    EXPECT_TRUE(interiors_equal(ref, a2)) << "tiled rows lvl=" << int(lvl);
    redblack_tiled_rows_par(pool_, a3, 0.4, 0.1, t, lvl);
    EXPECT_TRUE(interiors_equal(ref, a3)) << "par tiled lvl=" << int(lvl);
    redblack_rows_par(pool_, a4, 0.4, 0.1, lvl);
    EXPECT_TRUE(interiors_equal(ref, a4)) << "par rows lvl=" << int(lvl);
    // Transitively: the serial fused tiled schedule agrees too.
    rt::kernels::redblack_tiled(a5, 0.4, 0.1, t);
    EXPECT_TRUE(interiors_equal(ref, a5)) << "fused tiled lvl=" << int(lvl);
  }
}

TEST_P(SimdEquivalence, ResidRowsMatchAccessor) {
  const auto [n1, n2, n3, ti, tj, p1, p2] = GetParam();
  const IterTile t{ti, tj};
  const auto a = rt::kernels::nas_mg_a();
  for (SimdLevel lvl : levels_under_test()) {
    Array3D<double> u = make_grid(n1, n2, n3, 0.1, p1, p2);
    Array3D<double> v = make_grid(n1, n2, n3, 0.7, p1, p2);
    const Dims3 d = u.dims();
    Array3D<double> r1(d), r2(d), r3(d), r4(d), r5(d), r6(d);
    rt::kernels::resid(r1, v, u, a);
    resid_rows(r2, v, u, a, lvl);
    EXPECT_TRUE(interiors_equal(r1, r2)) << "rows lvl=" << int(lvl);
    rt::kernels::resid_tiled(r3, v, u, a, t);
    resid_tiled_rows(r4, v, u, a, t, lvl);
    EXPECT_TRUE(interiors_equal(r3, r4)) << "tiled rows lvl=" << int(lvl);
    resid_tiled_rows_par(pool_, r5, v, u, a, t, lvl);
    EXPECT_TRUE(interiors_equal(r3, r5)) << "par tiled lvl=" << int(lvl);
    resid_rows_par(pool_, r6, v, u, a, lvl);
    EXPECT_TRUE(interiors_equal(r1, r6)) << "par rows lvl=" << int(lvl);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdEquivalence,
    ::testing::Values(
        // Cubic, tile divides / does not divide the interior.
        Shape{8, 8, 8, 3, 3, 0, 0}, Shape{16, 16, 16, 7, 5, 0, 0},
        // Minimum stencil-admitting grid: one interior point per row.
        Shape{3, 3, 3, 1, 1, 0, 0}, Shape{3, 5, 4, 2, 2, 0, 0},
        // Non-cubic, ragged edge tiles.
        Shape{9, 7, 11, 2, 5, 0, 0}, Shape{23, 41, 11, 7, 3, 0, 0},
        Shape{40, 12, 30, 13, 22, 0, 0}, Shape{41, 6, 9, 41, 1, 0, 0},
        // Tile exceeding the interior entirely.
        Shape{12, 30, 5, 100, 100, 0, 0},
        // Padded: odd leading dim (rows never share alignment phase),
        // vector-aligned leading dim, and pad in both dimensions.
        Shape{12, 18, 8, 5, 4, 17, 23}, Shape{12, 18, 8, 5, 4, 16, 18},
        Shape{30, 10, 7, 9, 9, 40, 12},
        // Interior wider than one vector with a scalar remainder.
        Shape{21, 9, 6, 6, 4, 0, 0}, Shape{64, 10, 13, 22, 13, 0, 0}));

TEST(SimdKernels, MultiStepJacobiStaysBitIdentical) {
  // Divergence anywhere (e.g. an AVX2 remainder element computed in a
  // different order) compounds over time steps; four steps catch it.
  ThreadPool pool(4);
  for (SimdLevel lvl : levels_under_test()) {
    Array3D<double> b1 = make_grid(20, 14, 12, 0.9), b2 = b1, b3 = b1;
    Array3D<double> a1(20, 14, 12), a2(20, 14, 12), a3(20, 14, 12);
    for (int t = 0; t < 4; ++t) {
      rt::kernels::jacobi3d_tiled(a1, b1, 1.0 / 6.0, IterTile{5, 3});
      rt::kernels::copy_interior(b1, a1);
      jacobi3d_tiled_rows(a2, b2, 1.0 / 6.0, IterTile{5, 3}, lvl);
      copy_interior_rows(b2, a2, lvl);
      jacobi3d_tiled_rows_par(pool, a3, b3, 1.0 / 6.0, IterTile{5, 3}, lvl);
      copy_interior_rows_par(pool, b3, a3, lvl);
    }
    EXPECT_TRUE(interiors_equal(a1, a2)) << "serial lvl=" << int(lvl);
    EXPECT_TRUE(interiors_equal(a1, a3)) << "par lvl=" << int(lvl);
  }
}

TEST(SimdKernels, SweepSubBoxesComposeToFullKernel) {
  // Splitting the interior into arbitrary sub-boxes and sweeping each
  // must equal one full sweep: this is the property the rt::par
  // composition rests on.
  for (SimdLevel lvl : levels_under_test()) {
    Array3D<double> b = make_grid(14, 11, 9, 0.4);
    Array3D<double> a1(14, 11, 9), a2(14, 11, 9);
    rt::kernels::jacobi3d(a1, b, 1.0 / 6.0);
    jacobi_sweep(a2, b, 1.0 / 6.0, 1, 6, 1, 10, 1, 8, lvl);
    jacobi_sweep(a2, b, 1.0 / 6.0, 6, 13, 1, 4, 1, 8, lvl);
    jacobi_sweep(a2, b, 1.0 / 6.0, 6, 13, 4, 10, 1, 5, lvl);
    jacobi_sweep(a2, b, 1.0 / 6.0, 6, 13, 4, 10, 5, 8, lvl);
    EXPECT_TRUE(interiors_equal(a1, a2)) << "lvl=" << int(lvl);
  }
}

TEST(SimdKernels, DegenerateTileOrEmptyBoxIsSafe) {
  for (SimdLevel lvl : levels_under_test()) {
    Array3D<double> b = make_grid(4, 4, 4, 0.1);
    Array3D<double> a(4, 4, 4), ref(4, 4, 4);
    rt::kernels::jacobi3d(ref, b, 1.0 / 6.0);
    jacobi3d_tiled_rows(a, b, 1.0 / 6.0, IterTile{1, 1}, lvl);
    EXPECT_TRUE(interiors_equal(ref, a));
    // Non-positive tile extents and empty boxes decline to iterate.
    jacobi3d_tiled_rows(a, b, 1.0 / 6.0, IterTile{0, 5}, lvl);
    jacobi_sweep(a, b, 1.0 / 6.0, 2, 2, 1, 3, 1, 3, lvl);
    EXPECT_TRUE(interiors_equal(ref, a));
  }
}

TEST(SimdPolicy, ParseAndNames) {
  SimdMode m;
  EXPECT_TRUE(parse_simd_mode("off", &m));
  EXPECT_EQ(m, SimdMode::kOff);
  EXPECT_TRUE(parse_simd_mode("auto", &m));
  EXPECT_EQ(m, SimdMode::kAuto);
  EXPECT_TRUE(parse_simd_mode("avx2", &m));
  EXPECT_EQ(m, SimdMode::kAvx2);
  EXPECT_FALSE(parse_simd_mode("sse", &m));
  EXPECT_FALSE(parse_simd_mode("", &m));
  EXPECT_STREQ(simd_mode_name(SimdMode::kAuto), "auto");
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kRows), "rows");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
}

TEST(SimdPolicy, ResolveRespectsHostSupport) {
  EXPECT_EQ(resolve(SimdMode::kOff), SimdLevel::kScalar);
  const SimdLevel expect_best =
      avx2_supported() ? SimdLevel::kAvx2 : SimdLevel::kRows;
  EXPECT_EQ(resolve(SimdMode::kAuto), expect_best);
  EXPECT_EQ(resolve(SimdMode::kAvx2), expect_best);
}

TEST(SimdPolicy, AlignLeadingRoundsUpToVectorWidth) {
  EXPECT_EQ(align_leading(1), 8);
  EXPECT_EQ(align_leading(8), 8);
  EXPECT_EQ(align_leading(9), 16);
  EXPECT_EQ(align_leading(200), 200);
  EXPECT_EQ(align_leading(201), 208);
  EXPECT_EQ(align_leading(13, 4), 16);  // explicit vector width
  const Dims3 d = align_dims(Dims3::padded(5, 7, 9, 11, 13));
  EXPECT_EQ(d.p1, 16);   // 11 -> next multiple of 8
  EXPECT_EQ(d.p2, 13);   // untouched
  EXPECT_EQ(d.n1, 5);    // logical extents untouched
  EXPECT_TRUE(d.valid());
}

}  // namespace
}  // namespace rt::simd
