// Layout-level properties of the application solvers: the §3.5 base
// staggering must actually separate same-index elements of different
// arrays in the cache, and must be controllable.

#include <gtest/gtest.h>

#include <cstdlib>

#include "rt/core/plan.hpp"
#include "rt/multigrid/mg_solver.hpp"
#include "rt/multigrid/sor_solver.hpp"

namespace rt::multigrid {
namespace {

/// Distance between two byte addresses modulo a cache size.
long mod_distance(std::uint64_t a, std::uint64_t b, std::uint64_t mod) {
  const long d = static_cast<long>((a > b ? a - b : b - a) % mod);
  return std::min<long>(d, static_cast<long>(mod) - d);
}

TEST(SolverLayout, PaddedMgGridsDoNotAliasAtFinestLevel) {
  // The padded 160x144x130 allocation is ≡ 8192 (mod 16K); without
  // staggering, v would land exactly on u's sets (the original -12%
  // regression).  With staggering (the default), finest-level u, r, v
  // bases must be well separated modulo the L1.
  const int lt = 5;
  const long n = (1L << lt) + 2;
  MgOptions o;
  o.lt = lt;
  o.resid_plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n,
                                    rt::core::StencilSpec::resid27());
  rt::cachesim::CacheHierarchy h = rt::cachesim::CacheHierarchy::ultrasparc2();
  MgSolver s(o, &h);
  s.setup();
  // Probe the actual base addresses through one traced element access per
  // array: read u(1,1,1), r-ish via iterate is complex — instead verify
  // via the public effect: a full iteration must not exhibit the aliasing
  // blowup (L1 miss rate stays below the untiled baseline).
  h.reset_stats();
  s.iterate();
  const auto tiled_rate = h.stats().l1.miss_rate();

  MgOptions o2;
  o2.lt = lt;
  rt::cachesim::CacheHierarchy h2 =
      rt::cachesim::CacheHierarchy::ultrasparc2();
  MgSolver s2(o2, &h2);
  s2.setup();
  h2.reset_stats();
  s2.iterate();
  const auto orig_rate = h2.stats().l1.miss_rate();
  EXPECT_LT(tiled_rate, orig_rate * 1.05)
      << "staggered+tiled finest level must not regress vs orig";
}

TEST(SolverLayout, StaggerCanBeDisabled) {
  MgOptions o;
  o.lt = 3;
  o.stagger_mod_bytes = 0;
  MgSolver s(o);  // must construct and run fine without staggering
  s.setup();
  EXPECT_GT(s.iterate(), 0.0);
}

TEST(SolverLayout, StaggeredAndUnstaggeredSameNumerics) {
  MgOptions a, b;
  a.lt = b.lt = 4;
  b.stagger_mod_bytes = 0;
  MgSolver sa(a), sb(b);
  sa.setup();
  sb.setup();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sa.iterate(), sb.iterate()) << "layout must never change math";
  }
}

TEST(SolverLayout, ModDistanceHelper) {
  EXPECT_EQ(mod_distance(0, 8192, 16384), 8192);
  EXPECT_EQ(mod_distance(16384, 64, 16384), 64);
  EXPECT_EQ(mod_distance(100, 100, 16384), 0);
}

TEST(SolverLayout, SorTiledPaddedNeverRegresses) {
  // End-to-end guard for the SOR app: tiled+padded simulated miss rate
  // must beat naive at a size where planes do not fit L1.
  const long n = 100;
  rt::multigrid::SorOptions naive, tiled;
  naive.n = tiled.n = n;
  tiled.plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n, n,
                                  rt::core::StencilSpec::redblack3d());
  rt::cachesim::CacheHierarchy h1 = rt::cachesim::CacheHierarchy::ultrasparc2();
  rt::cachesim::CacheHierarchy h2 = rt::cachesim::CacheHierarchy::ultrasparc2();
  SorSolver s1(naive, &h1), s2(tiled, &h2);
  s1.setup();
  s2.setup();
  for (int i = 0; i < 2; ++i) {
    s1.sweep();
    s2.sweep();
  }
  EXPECT_LT(h2.stats().l1.miss_rate(), h1.stats().l1.miss_rate() * 0.85);
  EXPECT_EQ(s1.residual_linf(), s2.residual_linf());
}

}  // namespace
}  // namespace rt::multigrid
