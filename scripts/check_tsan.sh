#!/usr/bin/env bash
# ThreadSanitizer gate for the rt::par, rt::simd and rt::obs subsystems:
# configure a separate build tree with -DRT_SANITIZE=thread, build the
# parallel-/simd-kernel and observability tests, and run them under TSan
# (obs_test drives phase timers and perf counters from inside rt::par
# workers).  Any reported race fails the script (TSan exits nonzero on
# findings; halt_on_error makes the first one fatal).  Registered as a
# CTest test under the "sanitize" label:
#   ctest -L sanitize
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"

GEN_FLAG=()
if command -v ninja >/dev/null 2>&1; then
  GEN_FLAG=(-G Ninja)
fi

cmake -B "${BUILD_DIR}" -S . "${GEN_FLAG[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRT_SANITIZE=thread \
  -DRT_BUILD_BENCH=ON -DRT_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j \
  --target par_pool_test par_kernels_test simd_kernels_test \
           simd_mg_kernels_test plan_cache_test core_backend_test \
           mg_fastpath_test obs_test temporal_test tune_test serve_test \
           resil_test bench_chaos_soak

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"${BUILD_DIR}/tests/par_pool_test"
"${BUILD_DIR}/tests/par_kernels_test"
"${BUILD_DIR}/tests/simd_kernels_test"
"${BUILD_DIR}/tests/simd_mg_kernels_test"
"${BUILD_DIR}/tests/plan_cache_test"
# The backend registry is a process-wide singleton read from every planning
# thread; the driver suite exercises registration + concurrent lookup paths.
"${BUILD_DIR}/tests/core_backend_test"
"${BUILD_DIR}/tests/mg_fastpath_test"
"${BUILD_DIR}/tests/obs_test"
"${BUILD_DIR}/tests/temporal_test"
"${BUILD_DIR}/tests/tune_test"
# The serve suite runs a real multi-threaded server (acceptor + handlers +
# executors + watchdog abandonment) end to end — the strongest race check
# in the tree.
"${BUILD_DIR}/tests/serve_test"
# The resilience layer: retrying client + supervisor respawn + breaker.
"${BUILD_DIR}/tests/resil_test"
# Short deterministic chaos soak: fault storms against a live server with
# supervisor respawn and reconnecting clients — the full concurrency story
# under injected failure, with invariants checked.
"${BUILD_DIR}/bench/bench_chaos_soak"
echo "TSan clean: par_pool_test + par_kernels_test + simd_kernels_test" \
     "+ simd_mg_kernels_test + plan_cache_test + core_backend_test" \
     "+ mg_fastpath_test + obs_test + temporal_test + tune_test" \
     "+ serve_test + resil_test + bench_chaos_soak reported no races."
