#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, test, and regenerate
# every paper artifact.  Pass --full to use paper-resolution problem-size
# sweeps (slower).
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
{
  for b in build/bench/*; do
    echo "===== $(basename "$b") ====="
    "$b" ${FULL_FLAG}
    echo
  done
} 2>&1 | tee bench_output.txt
cp bench_output.txt results/bench_all.txt

# Machine-readable artifacts through the C++ emitter (rt::obs): hardware
# counters degrade to "unavailable" on hosts without perf-event access,
# the run itself always succeeds.
build/bench/bench_hw_validation ${FULL_FLAG} --json=results/BENCH_3.json

echo "Done: test_output.txt, bench_output.txt, results/BENCH_3.json"
