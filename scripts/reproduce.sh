#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, test, and regenerate
# every paper artifact.  Pass --full to use paper-resolution problem-size
# sweeps (slower).
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
{
  for b in build/bench/*; do
    echo "===== $(basename "$b") ====="
    "$b" ${FULL_FLAG}
    echo
  done
} 2>&1 | tee bench_output.txt
cp bench_output.txt results/bench_all.txt
echo "Done: test_output.txt, bench_output.txt"
