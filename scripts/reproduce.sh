#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, test, and regenerate
# every paper artifact.  Pass --full to use paper-resolution problem-size
# sweeps (slower).
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
{
  for b in build/bench/*; do
    echo "===== $(basename "$b") ====="
    "$b" ${FULL_FLAG}
    echo
  done
} 2>&1 | tee bench_output.txt
cp bench_output.txt results/bench_all.txt

# Machine-readable artifacts through the C++ emitter (rt::obs): hardware
# counters degrade to "unavailable" on hosts without perf-event access,
# the run itself always succeeds.
build/bench/bench_hw_validation ${FULL_FLAG} --json=results/BENCH_3.json

# Temporal blocking vs. best spatial par+simd (PR 6): host-only at N=448 so
# the ping-pong pair exceeds even a ~100 MB L3 (2 * 448^2 * 60 * 8B = 192 MB)
# and JACOBI is genuinely memory-bound — the regime where the wavefront
# schedules pay off.  Simulation is skipped (trace-driven caches at this
# size are impractically slow).
build/bench/bench_timeskew --no-sim --host --nmax=448 --steps=4 \
  --threads="$(nproc)" --json=results/BENCH_6.json

# Measurement-driven autotuning ablation (PR 7): calibrate JACOBI/RESID
# plans on this host, persist the winners in a repo-local plan store, and
# record autotuned vs model-only vs worst-candidate rows.  Re-running with
# --tune=load serves the stored winners without re-sweeping.
build/bench/bench_autotune_ablation ${FULL_FLAG} --tune=on \
  --plan-store=results/rt-tune-plans.json --json=results/BENCH_7.json

# Serving under load (PR 8): closed-loop and open-loop client mixes against
# the rt::serve server over loopback, batching on vs off, p50/p99 latency
# and req/s.  Every served checksum is verified against the direct
# batch-binary computation; any mismatch fails the run.
build/bench/bench_serve_load ${FULL_FLAG} --json=results/BENCH_8.json

# Chaos soak (PR 9): deterministic fault storms (torn sockets, short
# writes, wedged executors, failed fsync) against the live server, with
# the resilience layer on vs off under identical fault schedules.  The
# run itself asserts the invariants (exactly-once outcomes, bit-identical
# checksums, monotone counters, post-storm health) and fails on any
# violation or if retry+self-heal does not strictly improve goodput.
build/bench/bench_chaos_soak ${FULL_FLAG} --json=results/BENCH_9.json

# Planner-backend ablation (PR 10): model vs associativity-lattice vs
# cache-oblivious backends on JACOBI/RESID/PSINV across sizes, under a
# direct-mapped and a 2-way simulated cache.  The run itself asserts the
# acceptance criteria: every backend's result is bit-identical to the
# serial reference, the lattice backend strictly beats the model on
# simulated conflict misses for at least one set-associative geometry,
# and the oblivious backend plans a recursive schedule with no cache
# parameters at all.
build/bench/bench_backend_ablation ${FULL_FLAG} --steps=1 \
  --json=results/BENCH_10.json

echo "Done: test_output.txt, bench_output.txt, results/BENCH_3.json," \
     "results/BENCH_6.json, results/BENCH_7.json, results/BENCH_8.json," \
     "results/BENCH_9.json, results/BENCH_10.json"
