#!/usr/bin/env bash
# Export host-perf kernel throughput as machine-readable JSON: runs
# bench_kernels_hostperf (google-benchmark) and reshapes its JSON into a
# flat record list {kernel, n, transform, simd, simd_level, threads,
# mflops} — the schema tracked in results/BENCH_2.json.
#
# Legacy path: new benches emit this schema (and more) directly from C++
# via --json=FILE (rt::obs::MetricsWriter; see bench_hw_validation and
# results/BENCH_3.json).  This script stays as a thin wrapper for the
# google-benchmark binaries until they migrate.
#
# App-level records (bench_mgrid / bench_sor_app --json=FILE, tracked in
# results/BENCH_5.json) extend the schema with nested blocks this wrapper
# does not produce:
#   plan_cache: {hits, misses, hit_rate,
#                pinned_hits, evictions}           (rt::core::PlanCache)
#   phases: {<op>: {count, total_s, mean_s}, ...}  (per-operator timings)
#   tune: {mode, key, status, origin, ...}         (rt::tune calibration,
#                                                   results/BENCH_7.json)
# All are golden-pinned in tests/golden/metrics_schema.json.
#
# The benchmark names are
# "KERNEL/<n>/<transform>/<simd-mode>/<threads>/<temporal>/<tune>"; `simd`
# is the requested mode (off/auto/avx2) split from the name, `simd_level`
# is the level that actually ran (the benchmark's label, e.g. auto -> avx2
# on an AVX2 host, scalar under off), `temporal` is the wavefront schedule
# (off/skew/diamond; pre-PR6 five-component names default to "off"), and
# `tune` is the autotuning mode (off/load/on; pre-PR7 names default to
# "off").
#
# Env overrides:
#   BUILD_DIR  build tree containing bench/bench_kernels_hostperf (build)
#   OUT        output path (results/BENCH_2.json)
#   FILTER     --benchmark_filter regex (default "/200/": the N=200 rows
#              the PR 2 acceptance compares at)
# Extra arguments are forwarded to the benchmark binary (e.g. --threads=4).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-results/BENCH_2.json}"
FILTER="${FILTER:-/200/}"
BIN="${BUILD_DIR}/bench/bench_kernels_hostperf"

if [ ! -x "${BIN}" ]; then
  echo "error: ${BIN} not found; build the bench_kernels_hostperf target" >&2
  exit 1
fi
if ! command -v jq >/dev/null 2>&1; then
  echo "error: jq is required" >&2
  exit 1
fi

mkdir -p "$(dirname "${OUT}")"
raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT

"${BIN}" "$@" --benchmark_filter="${FILTER}" --benchmark_format=json \
  > "${raw}"

# Defaults: benchmarks registered without a threads field in the name
# ($p[4]), without the PR-6 temporal component ($p[5]), or without a
# SetLabel() call (.label) must not crash the reshape — assume serial
# scalar non-temporal, the registration defaults, so pre-PR6 row shapes
# still parse.
jq '[.benchmarks[]
     | (.name | split("/")) as $p
     | {kernel: $p[0],
        n: ($p[1] | tonumber),
        transform: ($p[2] // "Orig"),
        simd: ($p[3] // "off"),
        simd_level: (.label // "scalar"),
        threads: (($p[4] // "1") | tonumber),
        temporal: ($p[5] // "off"),
        tune: ($p[6] // "off"),
        mflops: (.MFlops * 1000 | round / 1000)}]' "${raw}" > "${OUT}"

echo "wrote $(jq length "${OUT}") records to ${OUT}"
