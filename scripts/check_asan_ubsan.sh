#!/usr/bin/env bash
# Address+UndefinedBehavior sanitizer gate for the rt::guard robustness
# layer: configure a separate build tree with -DRT_SANITIZE=address,undefined
# and run the tests that exercise the failure paths — injected bad_alloc
# unwinding through Array3D construction, watchdog worker-thread lifetimes,
# the overflow-checked size computations, and the planner's negative paths.
# ASan catches leaks and lifetime bugs on those paths; UBSan catches any
# signed overflow the checked size math is supposed to make impossible.
# Registered as a CTest test under the "sanitize" label:
#   ctest -L sanitize
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-asan}"

GEN_FLAG=()
if command -v ninja >/dev/null 2>&1; then
  GEN_FLAG=(-G Ninja)
fi

cmake -B "${BUILD_DIR}" -S . "${GEN_FLAG[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRT_SANITIZE=address,undefined \
  -DRT_BUILD_BENCH=ON -DRT_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j \
  --target guard_test guard_fault_injection_test array_test core_plan_test \
           core_backend_test cachesim_lattice_test plan_cache_test \
           mg_fastpath_test temporal_test tune_test serve_test resil_test \
           bench_chaos_soak

# halt_on_error turns the first finding into a hard failure.  Abandonment
# tests deliberately detach a wedged worker, but always wait for it to
# finish (guard_test sleeps past the grace; serve_test polls
# abandoned_in_flight down to zero) before the process exits, so leak
# detection stays meaningful.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
"${BUILD_DIR}/tests/guard_test"
"${BUILD_DIR}/tests/guard_fault_injection_test"
"${BUILD_DIR}/tests/array_test"
"${BUILD_DIR}/tests/core_plan_test"
# Backend driver negative paths (overflow gate, fallback restore, unknown
# backend) plus the lattice occupancy math cross-checked against the cache
# simulator — the new planner code's failure paths under ASan+UBSan.
"${BUILD_DIR}/tests/core_backend_test"
"${BUILD_DIR}/tests/cachesim_lattice_test"
"${BUILD_DIR}/tests/plan_cache_test"
"${BUILD_DIR}/tests/mg_fastpath_test"
"${BUILD_DIR}/tests/temporal_test"
"${BUILD_DIR}/tests/tune_test"
"${BUILD_DIR}/tests/serve_test"
"${BUILD_DIR}/tests/resil_test"
# Short deterministic chaos soak: torn frames, short writes, wedged
# executors and a failed fsync, with every lifetime on the failure paths
# under ASan (respawned executors, abandoned workers, reconnecting
# clients) and the invariants checked.
"${BUILD_DIR}/bench/bench_chaos_soak"
echo "ASan+UBSan clean: guard_test + guard_fault_injection_test +" \
     "array_test + core_plan_test + core_backend_test" \
     "+ cachesim_lattice_test + plan_cache_test + mg_fastpath_test" \
     "+ temporal_test + tune_test + serve_test + resil_test" \
     "+ bench_chaos_soak reported no findings."
