// multigrid_demo: solve A u = v with the NAS-MG-style V-cycle solver,
// optionally with the paper's tiled+padded RESID at the finest grid
// (Section 4.6).  Shows the residual history and, when tiling is on, that
// the numerics are bitwise unchanged while the finest-level stencil runs
// in cache-friendly tiles.
//
// Usage: multigrid_demo [lt] [iters] [--tiled]   (default lt=6 -> 66^3, 5)

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "rt/core/plan.hpp"
#include "rt/multigrid/mg_solver.hpp"

int main(int argc, char** argv) {
  int lt = 6, iters = 5;
  bool tiled = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiled") == 0) {
      tiled = true;
    } else if (++positional == 1) {
      lt = std::atoi(argv[i]);
    } else if (positional == 2) {
      iters = std::atoi(argv[i]);
    }
  }
  if (lt < 2 || lt > 8 || iters < 1) {
    std::cerr << "usage: multigrid_demo [lt 2-8] [iters] [--tiled]\n";
    return 2;
  }

  rt::multigrid::MgOptions o;
  o.lt = lt;
  const long n = (1L << lt) + 2;
  if (tiled) {
    o.resid_plan = rt::core::plan_for(rt::core::Transform::kGcdPad, 2048, n,
                                      n, rt::core::StencilSpec::resid27());
    o.tile_psinv = true;
  }

  std::cout << "multigrid_demo: " << n << "^3 finest grid, " << lt
            << " levels, " << iters << " V-cycles"
            << (tiled ? " (tiled+padded RESID/PSINV at finest level)" : "")
            << "\n";
  if (tiled) {
    std::cout << "  tile (" << o.resid_plan.tile.ti << ","
              << o.resid_plan.tile.tj << "), finest arrays padded to "
              << o.resid_plan.dip << "x" << o.resid_plan.djp << "\n";
  }

  rt::multigrid::MgSolver s(o);
  s.setup();
  double first = 0;
  double last = 0;
  for (int it = 0; it < iters; ++it) {
    last = s.iterate();
    if (it == 0) first = last;
    std::cout << "  iter " << it << ": ||r||_2 = " << last << "\n";
  }
  const double final_norm = s.residual_norm();
  std::cout << "  final   ||r||_2 = " << final_norm << "\n"
            << "Reduction over " << iters
            << " V-cycles: " << (first / final_norm) << "x\n";
  return final_norm < first ? 0 : 1;
}
