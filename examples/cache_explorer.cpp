// cache_explorer: study how array dimensions interact with a direct-mapped
// cache — the phenomenon behind the whole paper.  For each leading
// dimension DI in a range, it reports:
//   * the best conflict-free Euc3D tile and its cost (spiky vs DI!),
//   * the pad GcdPad/Pad would apply and the resulting tile,
//   * the simulated L1 miss rate of tiled Jacobi with and without padding.
//
// Try: cache_explorer 336 346   — and watch DI=341 (the paper's
// pathological example) force a (110,4) sliver of a tile.
//
// Usage: cache_explorer [dmin] [dmax]   (default 336 346)

#include <cstdlib>
#include <iostream>

#include "rt/bench/runner.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"

int main(int argc, char** argv) {
  const long dmin = argc > 1 ? std::atol(argv[1]) : 336;
  const long dmax = argc > 2 ? std::atol(argv[2]) : 346;
  const auto spec = rt::core::StencilSpec::jacobi3d();
  const long cs = 2048;

  std::cout << "Direct-mapped cache: " << cs << " doubles (16KB).  Stencil: "
            << spec.name << " (ATD " << spec.atd << ")\n\n";

  std::vector<std::string> header{"DI",       "Euc3D tile", "cost",
                                  "Pad dims", "Pad tile",   "cost",
                                  "L1% Euc3D", "L1% Pad"};
  std::vector<std::vector<std::string>> rows;
  rt::bench::RunOptions ro;
  ro.time_steps = 1;

  for (long di = dmin; di <= dmax; ++di) {
    const auto e = rt::core::euc3d(cs, di, di, spec);
    const auto p = rt::core::pad(cs, di, di, spec);
    const auto r_euc = rt::bench::run_kernel(
        rt::kernels::KernelId::kJacobi, rt::core::Transform::kEuc3d, di, ro);
    const auto r_pad = rt::bench::run_kernel(
        rt::kernels::KernelId::kJacobi, rt::core::Transform::kPad, di, ro);
    rows.push_back(
        {std::to_string(di),
         "(" + std::to_string(e.tile.ti) + "," + std::to_string(e.tile.tj) +
             ")",
         rt::bench::fmt(e.tile_cost, 3),
         std::to_string(p.dip) + "x" + std::to_string(p.djp),
         "(" + std::to_string(p.tile.ti) + "," + std::to_string(p.tile.tj) +
             ")",
         rt::bench::fmt(rt::core::cost(p.tile, spec), 3),
         rt::bench::fmt(r_euc.l1_miss_pct, 1),
         rt::bench::fmt(r_pad.l1_miss_pct, 1)});
  }
  rt::bench::print_table(header, rows);
  std::cout << "\nNote how a one-element change in DI can wreck the best "
               "unpadded tile, while the\npadded tile (and its miss rate) "
               "stays stable — the heart of Sections 3.3-3.4.\n";
  return 0;
}
