// Quickstart: plan a conflict-free tiling for your 3D stencil and run it.
//
// This walks the full public API in ~60 lines:
//   1. describe the stencil (halo extents + array tile depth),
//   2. ask the planner for a tile + padding targeting your L1,
//   3. allocate padded arrays and run the tiled kernel,
//   4. verify against the untiled kernel and compare simulated miss rates.

#include <iostream>

#include "rt/array/array3d.hpp"
#include "rt/bench/runner.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"

int main() {
  using namespace rt;

  // 1. A 6-point (+/-1) stencil needs 3 planes in cache and trims the
  //    iteration tile by 2 in I and J.
  const core::StencilSpec spec = core::StencilSpec::jacobi3d();

  // 2. Plan for a 400x400x30 problem on a 16K direct-mapped L1
  //    (2048 doubles) with the paper's "Pad" transformation.
  const long n = 400, kd = 30, cs = 2048;
  const core::TilingPlan plan =
      core::plan_for(core::Transform::kPad, cs, n, n, spec);
  std::cout << "Plan: tile (TI,TJ) = (" << plan.tile.ti << "," << plan.tile.tj
            << "), padded dims " << plan.dip << "x" << plan.djp << "x" << kd
            << " (logical " << n << "x" << n << "x" << kd << ")\n";

  // 3. Allocate padded arrays and run the tiled kernel.
  const array::Dims3 dims = array::Dims3::padded(n, n, kd, plan.dip, plan.djp);
  array::Array3D<double> a(dims), b(dims), a_ref(dims);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) b(i, j, k) = 0.001 * (i + j + k);

  kernels::jacobi3d_tiled(a, b, 1.0 / 6.0, plan.tile);

  // 4. Verify against the untiled kernel...
  kernels::jacobi3d(a_ref, b, 1.0 / 6.0);
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i)
        if (a(i, j, k) != a_ref(i, j, k)) {
          std::cerr << "MISMATCH at " << i << "," << j << "," << k << "\n";
          return 1;
        }
  std::cout << "Tiled result matches the untiled kernel bitwise.\n";

  // ...and compare simulated UltraSparc2 miss rates, original vs Pad.
  bench::RunOptions opts;
  opts.time_steps = 1;
  const auto orig =
      bench::run_kernel(kernels::KernelId::kJacobi, core::Transform::kOrig, n,
                        opts);
  const auto pad = bench::run_kernel(kernels::KernelId::kJacobi,
                                     core::Transform::kPad, n, opts);
  std::cout << "Simulated L1 miss rate: orig " << orig.l1_miss_pct
            << "%  ->  Pad " << pad.l1_miss_pct << "%\n"
            << "Simulated MFlops:       orig " << orig.sim_mflops << "  ->  "
            << "Pad " << pad.sim_mflops << "\n";
  return 0;
}
