// custom_stencil: bring your own stencil.  Define the reference window as
// a descriptor, let the library derive the tiling parameters ("compilers
// can derive such a cost function directly from the loop nest", §2.3),
// plan a conflict-free tile + pad, and run it through the generic engine.
//
// The stencil here is a 19-point anisotropic diffusion operator (faces +
// edges, no corners) — not one of the paper's kernels, to show the flow
// generalises.

#include <iostream>

#include "rt/array/array3d.hpp"
#include "rt/bench/table.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/stencil_desc.hpp"
#include "rt/kernels/generic.hpp"

int main() {
  using namespace rt;

  // 1. Describe the stencil: 19 points (centre + 6 faces + 12 edges).
  core::StencilDesc d;
  d.name = "diffuse19";
  for (int dk = -1; dk <= 1; ++dk)
    for (int dj = -1; dj <= 1; ++dj)
      for (int di = -1; di <= 1; ++di) {
        const int m = std::abs(di) + std::abs(dj) + std::abs(dk);
        if (m == 0) d.points.push_back({di, dj, dk, 0.4});
        if (m == 1) d.points.push_back({di, dj, dk, 0.06});
        if (m == 2) d.points.push_back({di, dj, dk, 0.02});
      }
  std::cout << "Stencil '" << d.name << "': " << d.arity() << " points\n";

  // 2. Derive the tiling parameters from the reference window.
  const core::StencilSpec spec = d.derive_spec();
  std::cout << "Derived spec: trim (" << spec.trim_i << "," << spec.trim_j
            << "), array tile depth " << spec.atd << "\n";

  // 3. Plan for a 341 x 341 x 40 problem (the paper's pathological DI).
  const long n = 341, kd = 40;
  const auto plan = core::plan_for(core::Transform::kPad, 2048, n, n, spec);
  std::cout << "Plan: tile (" << plan.tile.ti << "," << plan.tile.tj
            << "), padded " << plan.dip << "x" << plan.djp
            << " (cost " << rt::bench::fmt(core::cost(plan.tile, spec), 3)
            << " vs unpadded best "
            << rt::bench::fmt(
                   core::cost(core::euc3d(2048, n, n, spec).tile, spec), 3)
            << ")\n";

  // 4. Run the generic engine, tiled vs untiled, and verify equality.
  const array::Dims3 dims = array::Dims3::padded(n, n, kd, plan.dip, plan.djp);
  array::Array3D<double> in(dims), out1(dims), out2(dims);
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j)
      for (long i = 0; i < n; ++i) in(i, j, k) = 0.01 * ((i * 7 + j * 3 + k) % 17);

  kernels::apply_stencil(out1, in, d);
  kernels::apply_stencil_tiled(out2, in, d, plan.tile);
  for (long k = 1; k < kd - 1; ++k)
    for (long j = 1; j < n - 1; ++j)
      for (long i = 1; i < n - 1; ++i)
        if (out1(i, j, k) != out2(i, j, k)) {
          std::cerr << "MISMATCH\n";
          return 1;
        }
  std::cout << "Generic tiled execution matches untiled bitwise.  Your "
               "stencil is planned\nand running with conflict-free tiles.\n";
  return 0;
}
