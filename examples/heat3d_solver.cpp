// heat3d_solver: a realistic time-stepped 3D heat-equation solver — the
// paper's "realistic stencil code" pattern (Fig. 5, middle): a time-step
// loop enclosing a stencil nest plus a copy-back nest.
//
// Demonstrates using the library end to end in an application:
//   * plan tiling + padding once for the problem size (Pad transform),
//   * allocate padded arrays,
//   * run the tiled Jacobi sweep every time step,
//   * track convergence to steady state.
//
// Usage: heat3d_solver [N] [steps]   (default 200 40)

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "rt/array/array3d.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/jacobi3d.hpp"

int main(int argc, char** argv) {
  const long n = argc > 1 ? std::atol(argv[1]) : 200;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;
  const long kd = 30;

  // One planning call; the tile works for every sweep.
  const auto spec = rt::core::StencilSpec::jacobi3d();
  const auto plan =
      rt::core::plan_for(rt::core::Transform::kPad, 2048, n, n, spec);
  std::cout << "heat3d: " << n << "x" << n << "x" << kd << ", "
            << steps << " steps, tile (" << plan.tile.ti << ","
            << plan.tile.tj << "), arrays " << plan.dip << "x" << plan.djp
            << "\n";

  const auto dims = rt::array::Dims3::padded(n, n, kd, plan.dip, plan.djp);
  rt::array::Array3D<double> t_new(dims), t_old(dims);

  // Dirichlet-style boundary: hot plate at i = 0, everything else cold.
  for (long k = 0; k < kd; ++k)
    for (long j = 0; j < n; ++j) {
      t_old(0, j, k) = 100.0;
      t_new(0, j, k) = 100.0;
    }

  double prev_probe = 0.0;
  for (int s = 0; s < steps; ++s) {
    // Jacobi relaxation toward the steady-state temperature field.
    rt::kernels::jacobi3d_tiled(t_new, t_old, 1.0 / 6.0, plan.tile);
    rt::kernels::copy_interior(t_old, t_new);
    if ((s + 1) % 10 == 0) {
      // Probe a point near the hot face — heat reaches it quickly, so the
      // march toward steady state is visible even in short runs.
      const double p = t_old(3, n / 2, kd / 2);
      std::cout << "  step " << (s + 1) << ": T(3, mid, mid) = " << p
                << " (delta " << std::abs(p - prev_probe) << ")\n";
      prev_probe = p;
    }
  }

  // Sanity: heat must diffuse inward from the hot face monotonically in i.
  double prev = 1e9;
  bool monotone = true;
  for (long i = 0; i < n; i += n / 8) {
    const double t = t_old(i, n / 2, kd / 2);
    if (t > prev + 1e-9) monotone = false;
    prev = t;
  }
  std::cout << (monotone ? "Temperature profile decays away from the hot "
                           "face, as physics demands.\n"
                         : "ERROR: non-monotone temperature profile!\n");
  return monotone ? 0 : 1;
}
