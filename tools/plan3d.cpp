// plan3d: command-line tiling planner.
//
// Give it your cache and your array, get back what every transformation of
// the paper would do — tile sizes, pads, cost, conflict-freedom — without
// writing any code.
//
// Usage:
//   plan3d --di=341 --dj=341 [--cache-bytes=16384] [--elem-bytes=8]
//          [--trim-i=2] [--trim-j=2] [--atd=3]
//
// Example output is a Table-2-shaped plan listing.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "rt/bench/table.hpp"
#include "rt/core/conflict.hpp"
#include "rt/core/euc3d.hpp"
#include "rt/core/plan.hpp"

namespace {
long arg_long(int argc, char** argv, const char* name, long def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return def;
}
}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::cout << "usage: plan3d --di=N --dj=N [--cache-bytes=16384] "
                   "[--elem-bytes=8] [--trim-i=2] [--trim-j=2] [--atd=3]\n";
      return 0;
    }
  }
  const long di = arg_long(argc, argv, "di", 0);
  const long dj = arg_long(argc, argv, "dj", di);
  const long cache_bytes = arg_long(argc, argv, "cache-bytes", 16 * 1024);
  const long elem_bytes = arg_long(argc, argv, "elem-bytes", 8);
  rt::core::StencilSpec spec;
  spec.trim_i = arg_long(argc, argv, "trim-i", 2);
  spec.trim_j = arg_long(argc, argv, "trim-j", 2);
  spec.atd = static_cast<int>(arg_long(argc, argv, "atd", 3));
  if (di <= 0 || dj <= 0 || elem_bytes <= 0 || cache_bytes < elem_bytes) {
    std::cerr << "plan3d: need --di (and optionally --dj); see --help\n";
    return 2;
  }
  const long cs = cache_bytes / elem_bytes;

  std::cout << "Array " << di << " x " << dj << " x M, cache " << cache_bytes
            << " B direct-mapped (" << cs << " elements), stencil trim ("
            << spec.trim_i << "," << spec.trim_j << ") ATD " << spec.atd
            << "\n\n";

  std::vector<std::string> header{"transform", "tile (TI,TJ)", "padded dims",
                                  "pad elems/plane", "cost",
                                  "conflict-free"};
  std::vector<std::vector<std::string>> rows;
  for (rt::core::Transform tr : rt::core::all_transforms()) {
    const auto p = rt::core::plan_for(tr, cs, di, dj, spec);
    const bool cf =
        !p.tiled ||
        rt::core::is_conflict_free(cs, p.dip, p.djp, p.tile.ti + spec.trim_i,
                                   p.tile.tj + spec.trim_j, spec.atd);
    rows.push_back(
        {std::string(rt::core::transform_name(tr)),
         p.tiled ? "(" + std::to_string(p.tile.ti) + "," +
                       std::to_string(p.tile.tj) + ")"
                 : "-",
         std::to_string(p.dip) + "x" + std::to_string(p.djp),
         std::to_string(p.dip * p.djp - di * dj),
         p.tiled ? rt::bench::fmt(rt::core::cost(p.tile, spec), 4) : "-",
         p.tiled ? (cf ? "yes" : "NO") : "-"});
  }
  rt::bench::print_table(header, rows);

  const auto sel = rt::core::euc3d(cs, di, dj, spec);
  std::cout << "\nEuc3D detail: array tile (" << sel.array_tile.ti << ","
            << sel.array_tile.tj << "," << sel.array_tile.tk << ") -> "
            << "iteration tile (" << sel.tile.ti << "," << sel.tile.tj
            << ")\n";
  return 0;
}
