// PerfModel is header-only today; this TU anchors the library.
#include "rt/cachesim/perf_model.hpp"
