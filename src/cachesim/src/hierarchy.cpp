// CacheHierarchy is header-only today; this TU anchors the library and keeps
// a home for future out-of-line members (e.g. multi-level > 2 hierarchies).
#include "rt/cachesim/hierarchy.hpp"
