#include "rt/cachesim/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace rt::cachesim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
std::uint32_t log2u(std::uint64_t x) {
  std::uint32_t n = 0;
  while ((x >> n) != 1) n++;
  return n;
}
}  // namespace

bool CacheConfig::valid() const {
  if (!is_pow2(size_bytes) || !is_pow2(line_bytes)) return false;
  if (line_bytes > size_bytes) return false;
  const std::uint64_t lines = num_lines();
  const std::uint64_t ways = (assoc == 0) ? lines : assoc;
  if (ways == 0 || lines % ways != 0) return false;
  return is_pow2(lines / ways);
}

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (!cfg.valid()) {
    throw std::invalid_argument("invalid cache configuration");
  }
  line_shift_ = log2u(cfg.line_bytes);
  const std::uint64_t lines = cfg.num_lines();
  assoc_ = (cfg.assoc == 0) ? static_cast<std::uint32_t>(lines) : cfg.assoc;
  num_sets_ = lines / assoc_;
  set_mask_ = num_sets_ - 1;
  fa_mode_ = (num_sets_ == 1 && assoc_ > 16);
  if (fa_mode_) {
    fa_map_.reserve(assoc_ * 2);
  } else {
    tags_.assign(lines, kInvalid);
    dirty_.assign(lines, 0);
    lru_.assign(lines, 0);
  }
}

void Cache::flush() {
  std::fill(tags_.begin(), tags_.end(), kInvalid);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  fa_lru_.clear();
  fa_map_.clear();
}

AccessResult Cache::access_direct(std::uint64_t line, bool is_write) {
  const std::uint64_t set = line & set_mask_;
  if (tags_[set] == line) {
    if (is_write && cfg_.write_back) dirty_[set] = 1;
    return {true, false};
  }
  // Miss.
  if (is_write && !cfg_.write_allocate) {
    return {false, false};  // write-around: do not install
  }
  bool wb = false;
  if (tags_[set] != kInvalid) {
    stats_.evictions++;
    if (dirty_[set]) {
      stats_.writebacks++;
      wb = true;
    }
  }
  tags_[set] = line;
  dirty_[set] = (is_write && cfg_.write_back) ? 1 : 0;
  return {false, wb};
}

AccessResult Cache::access_assoc(std::uint64_t line, bool is_write) {
  const std::uint64_t set = line & set_mask_;
  const std::uint64_t base = set * assoc_;
  ++lru_clock_;
  std::int64_t empty_way = -1;
  std::uint64_t victim = base;
  std::uint64_t victim_lru = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t w = base; w < base + assoc_; ++w) {
    if (tags_[w] == line) {
      lru_[w] = lru_clock_;
      if (is_write && cfg_.write_back) dirty_[w] = 1;
      return {true, false};
    }
    if (tags_[w] == kInvalid) {
      if (empty_way < 0) empty_way = static_cast<std::int64_t>(w);
    } else if (lru_[w] < victim_lru) {
      victim = w;
      victim_lru = lru_[w];
    }
  }
  if (empty_way >= 0) victim = static_cast<std::uint64_t>(empty_way);
  if (is_write && !cfg_.write_allocate) {
    return {false, false};
  }
  bool wb = false;
  if (tags_[victim] != kInvalid) {
    stats_.evictions++;
    if (dirty_[victim]) {
      stats_.writebacks++;
      wb = true;
    }
  }
  tags_[victim] = line;
  dirty_[victim] = (is_write && cfg_.write_back) ? 1 : 0;
  lru_[victim] = lru_clock_;
  return {false, wb};
}

AccessResult Cache::access_fa(std::uint64_t line, bool is_write) {
  const auto it = fa_map_.find(line);
  if (it != fa_map_.end()) {
    fa_lru_.splice(fa_lru_.begin(), fa_lru_, it->second);
    if (is_write && cfg_.write_back) it->second->dirty = true;
    return {true, false};
  }
  if (is_write && !cfg_.write_allocate) {
    return {false, false};
  }
  bool wb = false;
  if (fa_lru_.size() == assoc_) {
    const FaLine victim = fa_lru_.back();
    stats_.evictions++;
    if (victim.dirty) {
      stats_.writebacks++;
      wb = true;
    }
    fa_map_.erase(victim.line);
    fa_lru_.pop_back();
  }
  fa_lru_.push_front(FaLine{line, is_write && cfg_.write_back});
  fa_map_[line] = fa_lru_.begin();
  return {false, wb};
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  if (fa_mode_) {
    return fa_map_.find(line) != fa_map_.end();
  }
  const std::uint64_t set = line & set_mask_;
  const std::uint64_t base = set * assoc_;
  for (std::uint64_t w = base; w < base + assoc_; ++w) {
    if (tags_[w] == line) return true;
  }
  return false;
}

}  // namespace rt::cachesim
