#pragma once
// Traced accessors: wrap an Array3D/Array2D plus its simulated base address
// and feed every load/store to a CacheHierarchy while still performing the
// real computation.  Stencil kernels are templates over the accessor type,
// so the same loop nest runs natively (host timing) or traced (simulation).

#include <cstdint>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"

namespace rt::cachesim {

template <class T>
class TracedArray3D {
 public:
  TracedArray3D(rt::array::Array3D<T>& a, std::uint64_t base_bytes,
                CacheHierarchy& h)
      : a_(&a), base_(base_bytes), h_(&h) {}

  long n1() const { return a_->n1(); }
  long n2() const { return a_->n2(); }
  long n3() const { return a_->n3(); }
  const rt::array::Dims3& dims() const { return a_->dims(); }

  std::uint64_t addr(long i, long j, long k) const {
    return base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * sizeof(T);
  }

  T load(long i, long j, long k) const {
    h_->read(addr(i, j, k));
    return (*a_)(i, j, k);
  }
  void store(long i, long j, long k, T v) {
    h_->write(addr(i, j, k));
    (*a_)(i, j, k) = v;
  }

  rt::array::Array3D<T>& array() { return *a_; }

 private:
  rt::array::Array3D<T>* a_;
  std::uint64_t base_;
  CacheHierarchy* h_;
};

template <class T>
class TracedArray2D {
 public:
  TracedArray2D(rt::array::Array2D<T>& a, std::uint64_t base_bytes,
                CacheHierarchy& h)
      : a_(&a), base_(base_bytes), h_(&h) {}

  long n1() const { return a_->n1(); }
  long n2() const { return a_->n2(); }

  std::uint64_t addr(long i, long j) const {
    return base_ + static_cast<std::uint64_t>(a_->index(i, j)) * sizeof(T);
  }
  T load(long i, long j) const {
    h_->read(addr(i, j));
    return (*a_)(i, j);
  }
  void store(long i, long j, T v) {
    h_->write(addr(i, j));
    (*a_)(i, j) = v;
  }

 private:
  rt::array::Array2D<T>* a_;
  std::uint64_t base_;
  CacheHierarchy* h_;
};

}  // namespace rt::cachesim
