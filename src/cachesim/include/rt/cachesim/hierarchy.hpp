#pragma once
// Two-level cache hierarchy.  L1 misses (and L1 write misses under a
// no-write-allocate L1, i.e. "write-around") are forwarded to L2; dirty L2
// evictions count as memory writebacks.  Miss rates are reported per level
// over the accesses that level actually sees, matching the paper's
// simulation methodology (Section 4.2).

#include <cstdint>

#include "rt/cachesim/cache.hpp"
#include "rt/cachesim/stats.hpp"

namespace rt::cachesim {

class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2)
      : l1_(l1), l2_(l2) {}

  /// UltraSparc2-like hierarchy used throughout the paper's evaluation.
  static CacheHierarchy ultrasparc2() {
    return CacheHierarchy(CacheConfig::ultrasparc2_l1(),
                          CacheConfig::ultrasparc2_l2());
  }

  void read(std::uint64_t addr) { access(addr, false); }
  void write(std::uint64_t addr) { access(addr, true); }

  void access(std::uint64_t addr, bool is_write) {
    const AccessResult r1 = l1_.access(addr, is_write);
    if (r1.hit) return;
    // L1 miss: demand goes to L2.  (Write-through L1 write *hits* also reach
    // L2 in hardware, but since the line is then resident in the inclusive
    // L2 they cannot change its miss behaviour; we skip them to keep L2
    // miss-rate denominators meaningful, as the paper's simulations do.)
    const AccessResult r2 = l2_.access(addr, is_write);
    if (!r2.hit) mem_lines_fetched_++;
    if (r2.evicted_dirty) mem_lines_written_++;
  }

  HierarchyStats stats() const {
    HierarchyStats s;
    s.l1 = l1_.stats();
    s.l2 = l2_.stats();
    return s;
  }
  void reset_stats() {
    l1_.reset_stats();
    l2_.reset_stats();
    mem_lines_fetched_ = 0;
    mem_lines_written_ = 0;
  }
  /// Invalidate both levels (cold caches), keeping statistics.
  void flush() {
    l1_.flush();
    l2_.flush();
  }

  Cache& l1() { return l1_; }
  Cache& l2() { return l2_; }
  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  std::uint64_t mem_lines_fetched() const { return mem_lines_fetched_; }
  std::uint64_t mem_lines_written() const { return mem_lines_written_; }

 private:
  Cache l1_;
  Cache l2_;
  std::uint64_t mem_lines_fetched_ = 0;
  std::uint64_t mem_lines_written_ = 0;
};

}  // namespace rt::cachesim
