#pragma once
// Address-trace recording and replay: run a kernel once through a
// RecordingArray3D, then replay the captured reference stream into any
// number of cache configurations — the classic trace-driven-simulation
// workflow, useful when sweeping cache parameters (associativity, line
// size, write policy) over an expensive kernel execution.
//
// Entries are packed as (addr << 1) | is_write; a double-precision stencil
// sweep of 100M references costs ~800MB, so size the problem accordingly
// or replay in windows.

#include <cstdint>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/cache.hpp"
#include "rt/cachesim/hierarchy.hpp"

namespace rt::cachesim {

class TraceBuffer {
 public:
  void append(std::uint64_t addr, bool is_write) {
    packed_.push_back((addr << 1) | (is_write ? 1u : 0u));
  }
  std::size_t size() const { return packed_.size(); }
  bool empty() const { return packed_.empty(); }
  void clear() { packed_.clear(); }
  void reserve(std::size_t n) { packed_.reserve(n); }

  std::uint64_t addr(std::size_t i) const { return packed_[i] >> 1; }
  bool is_write(std::size_t i) const { return (packed_[i] & 1) != 0; }

  /// Replay every reference into a single cache level.
  void replay_into(Cache& c) const {
    for (const std::uint64_t e : packed_) {
      c.access(e >> 1, (e & 1) != 0);
    }
  }
  /// Replay every reference into a two-level hierarchy.
  void replay_into(CacheHierarchy& h) const {
    for (const std::uint64_t e : packed_) {
      h.access(e >> 1, (e & 1) != 0);
    }
  }

 private:
  std::vector<std::uint64_t> packed_;
};

/// Accessor that records the reference stream (and performs the real
/// computation, like TracedArray3D, but into a buffer instead of a cache).
template <class T>
class RecordingArray3D {
 public:
  RecordingArray3D(rt::array::Array3D<T>& a, std::uint64_t base_bytes,
                   TraceBuffer& buf)
      : a_(&a), base_(base_bytes), buf_(&buf) {}

  long n1() const { return a_->n1(); }
  long n2() const { return a_->n2(); }
  long n3() const { return a_->n3(); }

  T load(long i, long j, long k) const {
    buf_->append(
        base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * sizeof(T),
        false);
    return (*a_)(i, j, k);
  }
  void store(long i, long j, long k, T v) {
    buf_->append(
        base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * sizeof(T),
        true);
    (*a_)(i, j, k) = v;
  }

 private:
  rt::array::Array3D<T>* a_;
  std::uint64_t base_;
  TraceBuffer* buf_;
};

}  // namespace rt::cachesim
