#pragma once
// Single cache level.  Hot path (direct-mapped tag probe) is inline; the
// set-associative LRU path handles arbitrary associativity for the
// associativity-ablation experiments.

#include <cstdint>
#include <limits>
#include <list>
#include <unordered_map>
#include <vector>

#include "rt/cachesim/config.hpp"
#include "rt/cachesim/stats.hpp"

namespace rt::cachesim {

struct AccessResult {
  bool hit = false;
  bool evicted_dirty = false;  ///< a dirty victim line was written back
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  const CacheConfig& config() const { return cfg_; }
  const LevelStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  /// Invalidate all lines (keeps statistics).
  void flush();

  /// Probe/allocate for the line containing byte address @p addr.
  /// @param is_write  true for stores
  /// Updates statistics and (on miss, subject to write-allocate policy)
  /// installs the line.
  AccessResult access(std::uint64_t addr, bool is_write) {
    const std::uint64_t line = addr >> line_shift_;
    stats_.accesses++;
    if (is_write) {
      stats_.write_accesses++;
    } else {
      stats_.read_accesses++;
    }
    AccessResult r = (assoc_ == 1)  ? access_direct(line, is_write)
                     : fa_mode_     ? access_fa(line, is_write)
                                    : access_assoc(line, is_write);
    if (!r.hit) {
      stats_.misses++;
      if (is_write) {
        stats_.write_misses++;
      } else {
        stats_.read_misses++;
      }
    }
    return r;
  }

  /// True if the line containing @p addr is currently resident (no
  /// statistics side effects) — used by tests.
  bool contains(std::uint64_t addr) const;

 private:
  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

  AccessResult access_direct(std::uint64_t line, bool is_write);
  AccessResult access_assoc(std::uint64_t line, bool is_write);
  AccessResult access_fa(std::uint64_t line, bool is_write);

  CacheConfig cfg_;
  std::uint32_t line_shift_ = 0;
  std::uint32_t assoc_ = 1;
  std::uint64_t num_sets_ = 0;
  std::uint64_t set_mask_ = 0;

  // Direct-mapped: tags_[set] = line address (kInvalid = empty).
  // Set-associative: ways laid out contiguously per set.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint64_t> lru_;  // larger = more recently used
  std::uint64_t lru_clock_ = 0;

  // Fully-associative fast path (assoc 0 with many lines): O(1) LRU via
  // hash map + intrusive recency list instead of scanning every way.
  struct FaLine {
    std::uint64_t line;
    bool dirty;
  };
  bool fa_mode_ = false;
  std::list<FaLine> fa_lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<FaLine>::iterator> fa_map_;

  LevelStats stats_;
};

}  // namespace rt::cachesim
