#pragma once
// Linear miss-penalty performance model.
//
// The paper reports MFlops measured on a 360/450MHz UltraSparc2.  Our host
// has an aggressive out-of-order core with associative caches, so host
// timing cannot reproduce direct-mapped conflict behaviour; instead we
// convert simulated cache statistics into cycles with a simple in-order
// model (documented in DESIGN.md):
//
//   cycles = accesses*l1_hit + l1_misses*l1_miss_penalty
//          + l2_misses*l2_miss_penalty
//
// and report MFlops = flops / (cycles / clock).  The absolute values are
// only indicative; the *shape* across problem sizes and transformations is
// what reproduces the paper's Figures 15/17/19/21.

#include <cstdint>

#include "rt/cachesim/stats.hpp"

namespace rt::cachesim {

struct PerfModelParams {
  double l1_hit_cycles = 1.0;
  double l1_miss_penalty = 8.0;    ///< additional cycles to reach L2
  double l2_miss_penalty = 60.0;   ///< additional cycles to reach memory
  double clock_mhz = 360.0;        ///< UltraSparc2 in the paper's Figs 15-19
  /// Charge stall cycles only for *read* misses: the UltraSparc2 L1 is
  /// write-through with a store buffer, so store misses rarely stall the
  /// pipeline.  Off by default (conservative, penalises all misses).
  bool read_stalls_only = false;

  static PerfModelParams ultrasparc2_360() { return PerfModelParams{}; }
  static PerfModelParams ultrasparc2_450() {
    PerfModelParams p;
    p.clock_mhz = 450.0;  // used for the larger problem sizes (Figs 20/21)
    return p;
  }
};

class PerfModel {
 public:
  explicit PerfModel(PerfModelParams p = PerfModelParams{}) : p_(p) {}

  double cycles(const HierarchyStats& s) const {
    const double l1m = static_cast<double>(
        p_.read_stalls_only ? s.l1.read_misses : s.l1.misses);
    const double l2m = static_cast<double>(
        p_.read_stalls_only ? s.l2.read_misses : s.l2.misses);
    return static_cast<double>(s.l1.accesses) * p_.l1_hit_cycles +
           l1m * p_.l1_miss_penalty + l2m * p_.l2_miss_penalty;
  }

  double seconds(const HierarchyStats& s) const {
    return cycles(s) / (p_.clock_mhz * 1e6);
  }

  /// Simulated MFlops for a run that executed @p s.flops flops.
  double mflops(const HierarchyStats& s) const {
    const double sec = seconds(s);
    return sec <= 0.0 ? 0.0 : static_cast<double>(s.flops) / sec / 1e6;
  }

  const PerfModelParams& params() const { return p_; }

 private:
  PerfModelParams p_;
};

}  // namespace rt::cachesim
