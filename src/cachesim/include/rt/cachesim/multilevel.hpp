#pragma once
// Arbitrary-depth cache hierarchy: a stack of Cache levels where each
// level sees the misses of the level above.  CacheHierarchy (the 2-level
// L1/L2 used throughout the paper reproduction) stays as the fast common
// case; MultiLevelCache serves studies that add a TLB or an L3.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/cachesim/cache.hpp"

namespace rt::cachesim {

class MultiLevelCache {
 public:
  explicit MultiLevelCache(const std::vector<CacheConfig>& levels) {
    if (levels.empty()) {
      throw std::invalid_argument("MultiLevelCache: need >= 1 level");
    }
    levels_.reserve(levels.size());
    for (const CacheConfig& c : levels) levels_.emplace_back(c);
  }

  void read(std::uint64_t addr) { access(addr, false); }
  void write(std::uint64_t addr) { access(addr, true); }

  void access(std::uint64_t addr, bool is_write) {
    for (Cache& level : levels_) {
      const AccessResult r = level.access(addr, is_write);
      if (r.hit) return;
    }
    mem_lines_fetched_++;
  }

  std::size_t depth() const { return levels_.size(); }
  const Cache& level(std::size_t i) const { return levels_.at(i); }
  Cache& level(std::size_t i) { return levels_.at(i); }
  std::uint64_t mem_lines_fetched() const { return mem_lines_fetched_; }

  void reset_stats() {
    for (Cache& level : levels_) level.reset_stats();
    mem_lines_fetched_ = 0;
  }
  void flush() {
    for (Cache& level : levels_) level.flush();
  }

 private:
  std::vector<Cache> levels_;
  std::uint64_t mem_lines_fetched_ = 0;
};

/// Accessor over an Array3D feeding a MultiLevelCache (mirror of
/// TracedArray3D for the N-level case).
template <class T, class Hier>
class TracedArrayML {
 public:
  TracedArrayML(rt::array::Array3D<T>& a, std::uint64_t base_bytes, Hier& h)
      : a_(&a), base_(base_bytes), h_(&h) {}
  long n1() const { return a_->n1(); }
  long n2() const { return a_->n2(); }
  long n3() const { return a_->n3(); }
  T load(long i, long j, long k) const {
    h_->read(base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * sizeof(T));
    return (*a_)(i, j, k);
  }
  void store(long i, long j, long k, T v) {
    h_->write(base_ + static_cast<std::uint64_t>(a_->index(i, j, k)) * sizeof(T));
    (*a_)(i, j, k) = v;
  }

 private:
  rt::array::Array3D<T>* a_;
  std::uint64_t base_;
  Hier* h_;
};

}  // namespace rt::cachesim
