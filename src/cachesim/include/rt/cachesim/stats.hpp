#pragma once
// Access statistics collected by a single cache level and by the hierarchy.

#include <cstdint>

namespace rt::cachesim {

struct LevelStats {
  std::uint64_t accesses = 0;      ///< demand accesses seen by this level
  std::uint64_t misses = 0;        ///< demand misses
  std::uint64_t read_accesses = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_accesses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;    ///< dirty evictions (write-back caches)

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
  void reset() { *this = LevelStats{}; }

  LevelStats& operator+=(const LevelStats& o) {
    accesses += o.accesses;
    misses += o.misses;
    read_accesses += o.read_accesses;
    read_misses += o.read_misses;
    write_accesses += o.write_accesses;
    write_misses += o.write_misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    return *this;
  }
};

struct HierarchyStats {
  LevelStats l1;
  LevelStats l2;
  /// Total flops executed by the traced kernel (set by the runner, used by
  /// the performance model to turn cycles into MFlops).
  std::uint64_t flops = 0;

  /// Global L2 miss rate: L2 misses over *all* references, not just those
  /// that reached L2.  This is the multi-level convention the paper's
  /// Table 3 uses (local L2 ratios rise as tiling removes easy L2 hits).
  double l2_global_miss_rate() const {
    return l1.accesses == 0
               ? 0.0
               : static_cast<double>(l2.misses) / static_cast<double>(l1.accesses);
  }

  void reset() {
    l1.reset();
    l2.reset();
    flops = 0;
  }
};

}  // namespace rt::cachesim
