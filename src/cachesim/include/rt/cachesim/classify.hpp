#pragma once
// Miss classification via shadow simulation (Hill's 3C model):
//
//   * compulsory — first touch of the line (misses even in an infinite
//     cache);
//   * capacity  — misses in a fully associative LRU cache of the same
//     capacity (but not compulsory);
//   * conflict  — misses in the real (limited-associativity) cache that the
//     fully associative shadow would have hit.
//
// The paper's whole argument is about the conflict component: plain tiling
// (Tile) removes capacity misses but leaves conflicts; Euc3D/GcdPad/Pad
// remove the conflicts too.  ClassifyingCache makes that decomposition
// measurable.

#include <cstdint>
#include <unordered_set>

#include "rt/cachesim/cache.hpp"

namespace rt::cachesim {

struct MissClasses {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;
  /// Real misses the fully-associative shadow *also* suffered but which are
  /// not first touches (i.e. capacity in both) are counted in `capacity`;
  /// anti-LRU anomalies (real hit, shadow miss) are counted as hits.
  std::uint64_t total_misses() const {
    return compulsory + capacity + conflict;
  }
  double pct(std::uint64_t x) const {
    return accesses == 0 ? 0.0
                         : 100.0 * static_cast<double>(x) / accesses;
  }
};

/// A cache plus its fully-associative shadow and a first-touch set.
class ClassifyingCache {
 public:
  explicit ClassifyingCache(const CacheConfig& cfg)
      : real_(cfg), shadow_(fully_assoc_of(cfg)) {}

  void access(std::uint64_t addr, bool is_write) {
    const std::uint64_t line = addr / real_.config().line_bytes;
    const bool first = seen_.insert(line).second;
    const bool real_hit = real_.access(addr, is_write).hit;
    const bool shadow_hit = shadow_.access(addr, is_write).hit;
    st_.accesses++;
    if (real_hit) {
      st_.hits++;
    } else if (first) {
      st_.compulsory++;
    } else if (shadow_hit) {
      st_.conflict++;
    } else {
      st_.capacity++;
    }
  }

  const MissClasses& classes() const { return st_; }
  const Cache& real() const { return real_; }

 private:
  /// Same capacity, line size and write policy — only the associativity
  /// differs, so any divergence between the two is pure mapping conflict.
  static CacheConfig fully_assoc_of(CacheConfig cfg) {
    cfg.assoc = 0;
    return cfg;
  }

  Cache real_;
  Cache shadow_;
  std::unordered_set<std::uint64_t> seen_;
  MissClasses st_;
};

}  // namespace rt::cachesim
