#pragma once
// Cache configuration.  Defaults model the Sun UltraSparc2 used in the
// paper: 16KB direct-mapped write-through/no-write-allocate L1 data cache
// with 32-byte lines, and a 2MB direct-mapped write-back L2 with 64-byte
// lines.  A "write-around" L1 is exactly the assumption the paper makes
// ("so A does not interfere", Section 1).

#include <cstdint>

namespace rt::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  /// Associativity: 1 = direct-mapped, 0 = fully associative (LRU).
  std::uint32_t assoc = 1;
  /// On a write miss, fetch the line into this cache?
  bool write_allocate = false;
  /// Write-back (dirty lines) vs write-through.
  bool write_back = false;

  constexpr std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  constexpr std::uint64_t elems(std::uint32_t elem_bytes = 8) const {
    return size_bytes / elem_bytes;
  }

  bool valid() const;

  /// 16KB direct-mapped, 32B lines, write-through no-allocate.
  static CacheConfig ultrasparc2_l1() {
    return CacheConfig{16 * 1024, 32, 1, false, false};
  }
  /// 2MB direct-mapped, 64B lines, write-back write-allocate.
  static CacheConfig ultrasparc2_l2() {
    return CacheConfig{2 * 1024 * 1024, 64, 1, true, true};
  }
};

}  // namespace rt::cachesim
