#include "rt/tune/autotuner.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "rt/guard/watchdog.hpp"

namespace rt::tune {

using rt::guard::Status;

// ---------------------------------------------------------------------------
// Background re-tune worker: one thread, strict queue order, drained on exit.

struct Autotuner::Worker {
  std::mutex m;
  std::condition_variable cv;
  std::deque<std::function<void()>> q;
  bool stop = false;
  bool busy = false;
  std::size_t done = 0;
  std::thread th;

  Worker() : th([this] { loop(); }) {}

  ~Worker() {
    {
      std::lock_guard<std::mutex> lk(m);
      stop = true;
    }
    cv.notify_all();
    th.join();
  }

  void loop() {
    std::unique_lock<std::mutex> lk(m);
    while (true) {
      cv.wait(lk, [&] { return stop || !q.empty(); });
      if (q.empty()) {
        if (stop) return;  // queued jobs drain before shutdown
        continue;
      }
      std::function<void()> job = std::move(q.front());
      q.pop_front();
      busy = true;
      lk.unlock();
      try {
        job();
      } catch (...) {
        // A failed re-tune keeps the old entry; the worker must survive.
      }
      lk.lock();
      busy = false;
      ++done;
      cv.notify_all();
    }
  }
};

Autotuner::Autotuner(TuneConfig cfg) : cfg_(cfg), worker_(new Worker) {}

Autotuner::~Autotuner() { delete worker_; }

void Autotuner::retune_async(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(worker_->m);
    worker_->q.push_back(std::move(job));
  }
  worker_->cv.notify_all();
}

void Autotuner::wait_idle() {
  std::unique_lock<std::mutex> lk(worker_->m);
  worker_->cv.wait(lk, [&] { return worker_->q.empty() && !worker_->busy; });
}

std::size_t Autotuner::jobs_run() const {
  std::lock_guard<std::mutex> lk(worker_->m);
  return worker_->done;
}

bool Autotuner::is_stale(const StoreEntry& e, std::int64_t now_ms) const {
  return cfg_.max_age_ms > 0 && now_ms - e.tuned_at_ms > cfg_.max_age_ms;
}

// ---------------------------------------------------------------------------
// Calibration sweep.

Measurement Autotuner::measure_candidate(
    const std::function<Measurement()>& once) {
  std::vector<Measurement> reps;
  const int repeats = std::max(1, cfg_.repeats);
  for (int i = 0; i < repeats; ++i) {
    Measurement m;
    try {
      if (cfg_.candidate_deadline_s > 0) {
        // Watchdog contract (rt/guard/watchdog.hpp): the closure owns its
        // state.  `once` is copied in; the result lives on the shared heap
        // so an abandoned run writes into memory that outlives this frame.
        auto out = std::make_shared<Measurement>();
        const auto deadline = std::chrono::milliseconds(
            static_cast<long long>(cfg_.candidate_deadline_s * 1000.0));
        std::function<Measurement()> run = once;
        const rt::guard::WatchdogResult wd = rt::guard::run_with_deadline(
            [run, out] { *out = run(); }, deadline);
        if (!wd.completed) {
          m.status = Status::kTimeout;
          m.detail = wd.abandoned
                         ? "calibration run abandoned after deadline"
                         : "calibration run exceeded deadline";
          return m;
        }
        m = *out;
      } else {
        m = once();
      }
    } catch (const std::bad_alloc&) {
      m = Measurement{};
      m.status = Status::kAllocFailed;
      m.detail = "calibration run allocation failed";
      return m;
    } catch (const std::exception& e) {
      m = Measurement{};
      m.status = Status::kInvalidArgument;
      m.detail = std::string("calibration run threw: ") + e.what();
      return m;
    }
    if (!m.ok()) return m;  // runner-reported skip: record as-is
    reps.push_back(m);
  }
  // Median by time — the whole Measurement rides along so the winner's
  // counters are the median run's, not a mix.
  std::sort(reps.begin(), reps.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.seconds < b.seconds;
            });
  return reps[reps.size() / 2];
}

namespace {

/// Counter tie-break: fewer LLC misses, then fewer dTLB misses, then
/// higher IPC.  Slots either side lacks (negative) don't discriminate;
/// full ties keep the earlier candidate (preference order, model first).
bool counters_better(const Measurement& a, const Measurement& b) {
  if (a.llc_misses >= 0 && b.llc_misses >= 0 && a.llc_misses != b.llc_misses)
    return a.llc_misses < b.llc_misses;
  if (a.dtlb_misses >= 0 && b.dtlb_misses >= 0 &&
      a.dtlb_misses != b.dtlb_misses)
    return a.dtlb_misses < b.dtlb_misses;
  if (a.ipc >= 0 && b.ipc >= 0 && a.ipc != b.ipc) return a.ipc > b.ipc;
  return false;
}

}  // namespace

struct Autotuner::Sweep {
  std::vector<CandidateResult> rows;
  std::vector<std::function<Measurement()>> run;
};

TuneResult Autotuner::run_sweep(const TuneKey& key, Sweep& sweep) {
  TuneResult res;
  res.key = key;
  res.candidates = std::move(sweep.rows);
  for (std::size_t i = 0; i < res.candidates.size(); ++i) {
    res.candidates[i].m = measure_candidate(sweep.run[i]);
    if (res.candidates[i].origin == "model") res.model = static_cast<int>(i);
  }

  double best_s = 0;
  bool any_ok = false;
  for (std::size_t i = 0; i < res.candidates.size(); ++i) {
    const Measurement& m = res.candidates[i].m;
    if (!m.ok()) continue;
    if (!any_ok || m.seconds < best_s) best_s = m.seconds;
    any_ok = true;
    if (res.worst < 0 ||
        m.seconds >
            res.candidates[static_cast<std::size_t>(res.worst)].m.seconds) {
      res.worst = static_cast<int>(i);
    }
  }
  if (!any_ok) {
    res.status = Status::kInfeasible;
    res.detail = "no candidate completed calibration";
    return res;
  }
  // Winner = earliest candidate within tie_tolerance of the best time,
  // improved upon only by a counter-better contender.
  for (std::size_t i = 0; i < res.candidates.size(); ++i) {
    const Measurement& m = res.candidates[i].m;
    if (!m.ok()) continue;
    if (m.seconds > best_s * (1.0 + cfg_.tie_tolerance)) continue;
    if (res.winner < 0) {
      res.winner = static_cast<int>(i);
      continue;
    }
    const Measurement& w =
        res.candidates[static_cast<std::size_t>(res.winner)].m;
    if (counters_better(m, w)) res.winner = static_cast<int>(i);
  }
  return res;
}

TuneResult Autotuner::tune_spatial(const TuneKey& key,
                                   const std::vector<Candidate>& cands,
                                   const CandidateRunner& runner) {
  Sweep sweep;
  const std::size_t n = std::min(cands.size(), cfg_.max_candidates);
  for (std::size_t i = 0; i < n; ++i) {
    CandidateResult row;
    row.origin = cands[i].origin;
    row.plan = cands[i].plan;
    sweep.rows.push_back(std::move(row));
    const rt::core::TilingPlan plan = cands[i].plan;
    sweep.run.push_back([runner, plan] { return runner(plan); });
  }
  TuneResult res = run_sweep(key, sweep);
  if (res.ok() && n < cands.size()) {
    res.detail = "candidate set capped at " + std::to_string(n);
  }
  if (res.candidates.empty()) {
    res.status = Status::kInvalidArgument;
    res.detail = "empty candidate set";
  }
  return res;
}

TuneResult Autotuner::tune_temporal(const TuneKey& key,
                                    const std::vector<TemporalCandidate>& cands,
                                    const TemporalRunner& runner) {
  Sweep sweep;
  const std::size_t n = std::min(cands.size(), cfg_.max_candidates);
  for (std::size_t i = 0; i < n; ++i) {
    CandidateResult row;
    row.origin = cands[i].origin;
    row.temporal_plan = cands[i].report.plan;
    sweep.rows.push_back(std::move(row));
    const rt::core::TemporalPlan plan = cands[i].report.plan;
    sweep.run.push_back([runner, plan] { return runner(plan); });
  }
  TuneResult res = run_sweep(key, sweep);
  if (res.ok() && n < cands.size()) {
    res.detail = "candidate set capped at " + std::to_string(n);
  }
  if (res.candidates.empty()) {
    res.status = Status::kInvalidArgument;
    res.detail = "empty candidate set";
  }
  return res;
}

}  // namespace rt::tune
