#include "rt/tune/plan_store.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "rt/guard/fault_injector.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace rt::tune {

namespace fs = std::filesystem;
using rt::guard::Expected;
using rt::guard::Status;
using rt::obs::JsonValue;

const StoreEntry* PlanStore::find(const TuneKey& key) const {
  for (const StoreEntry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

void PlanStore::put(StoreEntry e) {
  for (StoreEntry& have : entries) {
    if (have.key == e.key) {
      have = std::move(e);
      return;
    }
  }
  entries.push_back(std::move(e));
}

std::string default_store_path() {
  if (const char* env = std::getenv("RT_TUNE_STORE"); env != nullptr && *env) {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg) {
    return std::string(xdg) + "/rt-tune/plans.json";
  }
  if (const char* home = std::getenv("HOME"); home != nullptr && *home) {
    return std::string(home) + "/.cache/rt-tune/plans.json";
  }
  return ".rt-tune-plans.json";
}

namespace {

JsonValue tune_key_json(const TuneKey& k) {
  JsonValue o = JsonValue::object();
  o.set("kernel", k.kernel)
      .set("n", k.n)
      .set("n3", k.n3)
      .set("transform", std::string(rt::core::transform_name(k.transform)))
      .set("backend", std::string(rt::core::backend_name(k.backend)))
      .set("threads", k.threads)
      .set("simd", k.simd)
      .set("temporal", rt::core::temporal_mode_name(k.temporal))
      .set("tsteps", k.tsteps);
  return o;
}

JsonValue plan_key_json(const rt::core::PlanKey& k) {
  JsonValue o = JsonValue::object();
  o.set("transform", std::string(rt::core::transform_name(k.transform)))
      .set("cs", k.cs)
      .set("di", k.di)
      .set("dj", k.dj)
      .set("trim_i", k.trim_i)
      .set("trim_j", k.trim_j)
      .set("atd", k.atd)
      .set("halo", k.halo)
      .set("n3", k.n3)
      .set("backend", std::string(rt::core::backend_name(k.backend)))
      .set("line_elems", k.line_elems)
      .set("assoc", k.assoc);
  return o;
}

JsonValue tiling_plan_json(const rt::core::TilingPlan& p) {
  JsonValue o = JsonValue::object();
  o.set("transform", std::string(rt::core::transform_name(p.transform)))
      .set("backend", std::string(rt::core::backend_name(p.backend)))
      .set("schedule", std::string(rt::core::schedule_name(p.schedule)))
      .set("tiled", p.tiled)
      .set("ti", p.tile.ti)
      .set("tj", p.tile.tj)
      .set("dip", p.dip)
      .set("djp", p.djp);
  return o;
}

JsonValue temporal_key_json(const rt::core::TemporalKey& k) {
  JsonValue o = JsonValue::object();
  o.set("mode", rt::core::temporal_mode_name(k.mode))
      .set("cs", k.cs)
      .set("n1", k.n1)
      .set("n2", k.n2)
      .set("n3", k.n3)
      .set("tsteps", k.tsteps)
      .set("bk", k.bk)
      .set("threads", k.threads)
      .set("halo", k.halo);
  return o;
}

JsonValue temporal_plan_json(const rt::core::TemporalPlan& p) {
  JsonValue o = JsonValue::object();
  o.set("mode", rt::core::temporal_mode_name(p.mode))
      .set("tsteps", p.tsteps)
      .set("bk", p.bk)
      .set("tb", p.tb)
      .set("threads", p.threads)
      .set("team", p.team)
      .set("stages", p.stages)
      .set("occupancy", p.occupancy);
  return o;
}

/// Field-by-field reader with a first-failure reason (the kCorrupt detail).
/// Every getter fails on a missing key or a kind mismatch — durable state
/// is read strictly, never defaulted.
class Reader {
 public:
  bool failed() const { return !why_.empty(); }
  const std::string& why() const { return why_; }

  const JsonValue* obj(const JsonValue& v, const char* key) {
    if (failed()) return nullptr;
    const JsonValue* f = v.find(key);
    if (f == nullptr || !f->is_object()) {
      fail(key, "object");
      return nullptr;
    }
    return f;
  }

  long num(const JsonValue& v, const char* key) {
    const JsonValue* f = field(v, key);
    if (f == nullptr) return 0;
    if (!f->is_number()) {
      fail(key, "number");
      return 0;
    }
    return static_cast<long>(f->as_int());
  }

  double dbl(const JsonValue& v, const char* key) {
    const JsonValue* f = field(v, key);
    if (f == nullptr) return 0;
    if (!f->is_number()) {
      fail(key, "number");
      return 0;
    }
    return f->as_double();
  }

  bool flag(const JsonValue& v, const char* key) {
    const JsonValue* f = field(v, key);
    if (f == nullptr) return false;
    if (!f->is_bool()) {
      fail(key, "bool");
      return false;
    }
    return f->as_bool();
  }

  std::string str(const JsonValue& v, const char* key) {
    const JsonValue* f = field(v, key);
    if (f == nullptr) return {};
    if (!f->is_string()) {
      fail(key, "string");
      return {};
    }
    return f->as_string();
  }

  rt::core::Transform transform(const JsonValue& v, const char* key) {
    const std::string tok = str(v, key);
    rt::core::Transform t = rt::core::Transform::kOrig;
    if (!failed() && !parse_transform(tok, &t)) {
      why_ = "unknown transform token \"" + tok + "\"";
    }
    return t;
  }

  rt::core::TemporalMode temporal(const JsonValue& v, const char* key) {
    const std::string tok = str(v, key);
    rt::core::TemporalMode m = rt::core::TemporalMode::kOff;
    if (!failed() && !rt::core::parse_temporal_mode(tok, &m)) {
      why_ = "unknown temporal token \"" + tok + "\"";
    }
    return m;
  }

  rt::core::Backend backend(const JsonValue& v, const char* key) {
    const std::string tok = str(v, key);
    rt::core::Backend b = rt::core::Backend::kModel;
    if (!failed() && !rt::core::parse_backend(tok, &b)) {
      why_ = "unknown backend token \"" + tok + "\"";
    }
    return b;
  }

  rt::core::LoopSchedule schedule(const JsonValue& v, const char* key) {
    const std::string tok = str(v, key);
    rt::core::LoopSchedule s = rt::core::LoopSchedule::kFlat;
    if (!failed() && !rt::core::parse_schedule(tok, &s)) {
      why_ = "unknown schedule token \"" + tok + "\"";
    }
    return s;
  }

 private:
  const JsonValue* field(const JsonValue& v, const char* key) {
    if (failed()) return nullptr;
    const JsonValue* f = v.find(key);
    if (f == nullptr) fail(key, "present");
    return f;
  }
  void fail(const char* key, const char* want) {
    why_ = std::string("field \"") + key + "\" missing or not " + want;
  }

  std::string why_;
};

}  // namespace

std::string store_to_json(const PlanStore& s) {
  JsonValue root = JsonValue::object();
  root.set("version", s.version).set("fingerprint", s.fingerprint);
  JsonValue entries = JsonValue::array();
  for (const StoreEntry& e : s.entries) {
    JsonValue o = JsonValue::object();
    o.set("key", tune_key_json(e.key)).set("temporal_entry", e.temporal);
    if (e.temporal) {
      o.set("temporal_key", temporal_key_json(e.temporal_key))
          .set("temporal_plan", temporal_plan_json(e.temporal_plan));
    } else {
      o.set("plan_key", plan_key_json(e.plan_key))
          .set("plan", tiling_plan_json(e.plan));
    }
    o.set("origin", e.origin)
        .set("mflops", e.mflops)
        .set("model_mflops", e.model_mflops)
        .set("tuned_at_ms", static_cast<long long>(e.tuned_at_ms));
    entries.push_back(std::move(o));
  }
  root.set("entries", std::move(entries));
  return root.dump(2) + "\n";
}

Expected<PlanStore> parse_store(const std::string& text,
                                const std::string& host_fingerprint) {
  JsonValue root;
  std::string err;
  if (!rt::obs::json_parse(text, &root, &err)) {
    return {Status::kCorrupt, "plan store JSON: " + err};
  }
  if (!root.is_object()) {
    return {Status::kCorrupt, "plan store root is not an object"};
  }

  Reader r;
  PlanStore s;
  s.version = static_cast<int>(r.num(root, "version"));
  s.fingerprint = r.str(root, "fingerprint");
  if (r.failed()) return {Status::kCorrupt, r.why()};

  if (s.version != kPlanStoreVersion) {
    return {Status::kStale, "store version " + std::to_string(s.version) +
                                " != supported " +
                                std::to_string(kPlanStoreVersion)};
  }
  if (s.fingerprint != host_fingerprint) {
    return {Status::kStale, "store fingerprint \"" + s.fingerprint +
                                "\" != host \"" + host_fingerprint + "\""};
  }

  const JsonValue* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return {Status::kCorrupt, "field \"entries\" missing or not array"};
  }
  for (std::size_t i = 0; i < entries->size(); ++i) {
    const JsonValue& o = *entries->at(i);
    if (!o.is_object()) {
      return {Status::kCorrupt,
              "entry " + std::to_string(i) + " is not an object"};
    }
    StoreEntry e;
    const JsonValue* key = r.obj(o, "key");
    if (key != nullptr) {
      e.key.kernel = r.str(*key, "kernel");
      e.key.n = r.num(*key, "n");
      e.key.n3 = r.num(*key, "n3");
      e.key.transform = r.transform(*key, "transform");
      e.key.backend = r.backend(*key, "backend");
      e.key.threads = static_cast<int>(r.num(*key, "threads"));
      e.key.simd = r.str(*key, "simd");
      e.key.temporal = r.temporal(*key, "temporal");
      e.key.tsteps = static_cast<int>(r.num(*key, "tsteps"));
    }
    e.temporal = r.flag(o, "temporal_entry");
    if (!r.failed() && e.temporal) {
      if (const JsonValue* tk = r.obj(o, "temporal_key"); tk != nullptr) {
        e.temporal_key.mode = r.temporal(*tk, "mode");
        e.temporal_key.cs = r.num(*tk, "cs");
        e.temporal_key.n1 = r.num(*tk, "n1");
        e.temporal_key.n2 = r.num(*tk, "n2");
        e.temporal_key.n3 = r.num(*tk, "n3");
        e.temporal_key.tsteps = static_cast<int>(r.num(*tk, "tsteps"));
        e.temporal_key.bk = r.num(*tk, "bk");
        e.temporal_key.threads = static_cast<int>(r.num(*tk, "threads"));
        e.temporal_key.halo = r.num(*tk, "halo");
      }
      if (const JsonValue* tp = r.obj(o, "temporal_plan"); tp != nullptr) {
        e.temporal_plan.mode = r.temporal(*tp, "mode");
        e.temporal_plan.tsteps = static_cast<int>(r.num(*tp, "tsteps"));
        e.temporal_plan.bk = r.num(*tp, "bk");
        e.temporal_plan.tb = static_cast<int>(r.num(*tp, "tb"));
        e.temporal_plan.threads = static_cast<int>(r.num(*tp, "threads"));
        e.temporal_plan.team = static_cast<int>(r.num(*tp, "team"));
        e.temporal_plan.stages = r.num(*tp, "stages");
        e.temporal_plan.occupancy = r.dbl(*tp, "occupancy");
      }
    } else if (!r.failed()) {
      if (const JsonValue* pk = r.obj(o, "plan_key"); pk != nullptr) {
        e.plan_key.transform = r.transform(*pk, "transform");
        e.plan_key.cs = r.num(*pk, "cs");
        e.plan_key.di = r.num(*pk, "di");
        e.plan_key.dj = r.num(*pk, "dj");
        e.plan_key.trim_i = r.num(*pk, "trim_i");
        e.plan_key.trim_j = r.num(*pk, "trim_j");
        e.plan_key.atd = static_cast<int>(r.num(*pk, "atd"));
        e.plan_key.halo = r.num(*pk, "halo");
        e.plan_key.n3 = r.num(*pk, "n3");
        e.plan_key.backend = r.backend(*pk, "backend");
        e.plan_key.line_elems = r.num(*pk, "line_elems");
        e.plan_key.assoc = r.num(*pk, "assoc");
      }
      if (const JsonValue* p = r.obj(o, "plan"); p != nullptr) {
        e.plan.transform = r.transform(*p, "transform");
        e.plan.backend = r.backend(*p, "backend");
        e.plan.schedule = r.schedule(*p, "schedule");
        e.plan.tiled = r.flag(*p, "tiled");
        e.plan.tile.ti = r.num(*p, "ti");
        e.plan.tile.tj = r.num(*p, "tj");
        e.plan.dip = r.num(*p, "dip");
        e.plan.djp = r.num(*p, "djp");
      }
    }
    e.origin = r.str(o, "origin");
    e.mflops = r.dbl(o, "mflops");
    e.model_mflops = r.dbl(o, "model_mflops");
    e.tuned_at_ms = r.num(o, "tuned_at_ms");
    if (r.failed()) {
      return {Status::kCorrupt,
              "entry " + std::to_string(i) + ": " + r.why()};
    }
    s.entries.push_back(std::move(e));
  }
  return s;
}

std::string store_bak_path(const std::string& path) { return path + ".bak"; }

namespace {

Expected<PlanStore> load_store_one(const std::string& path,
                                   const std::string& host_fingerprint) {
  std::ifstream f(path);
  if (!f) {
    return {Status::kInvalidArgument, "plan store not readable: " + path};
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_store(ss.str(), host_fingerprint);
}

}  // namespace

Expected<PlanStore> load_store(const std::string& path,
                               const std::string& host_fingerprint,
                               LoadInfo* info) {
  if (info) *info = LoadInfo{};
  Expected<PlanStore> primary = load_store_one(path, host_fingerprint);
  if (info) {
    info->primary_status = primary.status();
    info->primary_detail = primary.detail();
  }
  if (primary.ok()) return primary;

  // Fallback policy (see header): a torn primary is kCorrupt; a primary
  // missing while the .bak exists means a crash landed between
  // save_store's two renames.  Both are recoverable from the last-good
  // copy.  kStale is not: the .bak cannot be newer than the primary.
  const std::string bak = store_bak_path(path);
  const bool try_bak =
      primary.status() == Status::kCorrupt ||
      (primary.status() == Status::kInvalidArgument && fs::exists(bak));
  if (!try_bak) return primary;

  Expected<PlanStore> fallback = load_store_one(bak, host_fingerprint);
  if (!fallback.ok()) return primary;  // the original rejection is the story
  if (info) info->recovered_from_bak = true;
  return fallback;
}

Status save_store(const PlanStore& s, const std::string& path,
                  std::string* detail) {
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);  // best-effort; open decides
  }

  // Durability order: (1) all bytes into a private temp file, (2) fsync the
  // temp so the *data* is on disk before any name points at it, (3) demote
  // the current store to .bak, (4) atomically rename the temp over the
  // primary.  A crash — even kill -9 — at any instant leaves either the
  // old bytes (steps 1–3) or the new bytes (after 4) reachable via
  // path-or-.bak; never a torn file under the primary name.  The temp name
  // embeds the pid so concurrent savers from forked processes cannot
  // clobber each other's half-written temp.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (detail) {
      *detail = "open " + tmp + ": " + std::strerror(errno);
    }
    return Status::kInvalidArgument;
  }
  std::string why;
  if (rt::obs::write_all_fd(fd, store_to_json(s), &why) != Status::kOk) {
    ::close(fd);
    ::unlink(tmp.c_str());
    if (detail) *detail = "write " + tmp + ": " + why;
    return Status::kIoError;
  }
  const bool fsync_injected =
      rt::guard::FaultInjector::armed(rt::guard::FaultKind::kFsyncFail) &&
      rt::guard::FaultInjector::instance().should_fail(
          rt::guard::FaultKind::kFsyncFail);
  if (fsync_injected || ::fsync(fd) < 0) {
    // The bytes may still be only in the page cache: renaming now could
    // persist a name pointing at vanished data.  Abort with the previous
    // store (and its .bak) untouched.
    ::close(fd);
    ::unlink(tmp.c_str());
    if (detail) {
      *detail = fsync_injected
                    ? "injected fsyncfail: durability barrier failed"
                    : "fsync " + tmp + ": " + std::strerror(errno);
    }
    return Status::kIoError;
  }
  if (::close(fd) < 0) {
    ::unlink(tmp.c_str());
    if (detail) *detail = "close " + tmp + ": " + std::strerror(errno);
    return Status::kIoError;
  }

  if (fs::exists(p)) {
    fs::rename(p, fs::path(store_bak_path(path)), ec);
    if (ec) {
      ::unlink(tmp.c_str());
      if (detail) *detail = "rename to .bak: " + ec.message();
      return Status::kIoError;
    }
  }
  fs::rename(fs::path(tmp), p, ec);
  if (ec) {
    // The primary name may now be vacant (demoted to .bak above) — that is
    // exactly the crash window load_store's .bak fallback recovers from.
    ::unlink(tmp.c_str());
    if (detail) *detail = "rename into place: " + ec.message();
    return Status::kIoError;
  }

  // Make the renames themselves durable (directory entry).  Best-effort:
  // the data is already safe under *a* recoverable name either way.
  if (p.has_parent_path()) {
    const int dfd = ::open(p.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      (void)!::fsync(dfd);
      ::close(dfd);
    }
  }
  return Status::kOk;
}

std::size_t install(const PlanStore& s, rt::core::PlanCache& cache) {
  std::size_t installed = 0;
  for (const StoreEntry& e : s.entries) {
    const std::string detail = "autotuned(" + e.origin + ")";
    if (e.temporal) {
      rt::core::TemporalReport rep;
      rep.plan = e.temporal_plan;
      rep.status = rt::guard::Status::kOk;
      rep.detail = detail;
      cache.pin_temporal(e.temporal_key, rep);
    } else {
      rt::core::PlanReport rep;
      rep.plan = e.plan;
      rep.status = rt::guard::Status::kOk;
      rep.detail = detail;
      cache.pin(e.plan_key, rep);
    }
    ++installed;
  }
  return installed;
}

}  // namespace rt::tune
