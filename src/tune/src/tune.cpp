#include "rt/tune/tune.hpp"

namespace rt::tune {

const char* tune_mode_name(TuneMode m) {
  switch (m) {
    case TuneMode::kOff: return "off";
    case TuneMode::kLoad: return "load";
    case TuneMode::kOn: return "on";
  }
  return "?";
}

bool parse_tune_mode(const std::string& s, TuneMode* out) {
  for (TuneMode m : {TuneMode::kOff, TuneMode::kLoad, TuneMode::kOn}) {
    if (s == tune_mode_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool parse_transform(const std::string& s, rt::core::Transform* out) {
  for (rt::core::Transform t : rt::core::all_transforms()) {
    if (s == rt::core::transform_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

std::string TuneKey::str() const {
  std::string out = kernel;
  out += "/n" + std::to_string(n) + "x" + std::to_string(n3);
  out += "/";
  out += rt::core::transform_name(transform);
  out += "/";
  out += rt::core::backend_name(backend);
  out += "/t" + std::to_string(threads);
  out += "/simd=" + simd;
  out += "/temporal=";
  out += rt::core::temporal_mode_name(temporal);
  out += "/ts" + std::to_string(tsteps);
  return out;
}

}  // namespace rt::tune
