#include "rt/tune/candidates.hpp"

#include <algorithm>

namespace rt::tune {

namespace {

long clamp_tile(long t, long lo, long hi) {
  return std::max(lo, std::min(t, hi));
}

}  // namespace

std::vector<Candidate> spatial_candidates(const rt::core::TilingPlan& model,
                                          long di, long dj, long halo,
                                          std::size_t max_candidates) {
  std::vector<Candidate> out;
  if (di <= 0 || dj <= 0 || max_candidates == 0) return out;

  const long max_ti = std::max<long>(1, di - 2 * halo);
  const long max_tj = std::max<long>(1, dj - 2 * halo);

  const auto add = [&](rt::core::TilingPlan p, const std::string& origin) {
    if (out.size() >= max_candidates) return;
    // Clamp to a valid executable plan.
    p.dip = std::max(p.dip, di);
    p.djp = std::max(p.djp, dj);
    if (p.tiled) {
      p.tile.ti = clamp_tile(p.tile.ti, 1, max_ti);
      p.tile.tj = clamp_tile(p.tile.tj, 1, max_tj);
      // A tile covering the whole interior is just the untiled loop.
      if (p.tile.ti == max_ti && p.tile.tj == max_tj) {
        p.tiled = false;
        p.tile = {};
      }
    } else {
      p.tile = {};
    }
    for (const Candidate& c : out) {
      if (c.plan.tiled == p.tiled && c.plan.tile == p.tile &&
          c.plan.dip == p.dip && c.plan.djp == p.djp) {
        return;  // duplicate shape: first origin wins
      }
    }
    out.push_back(Candidate{p, origin});
  };

  // The model plan is always candidate 0: the sweep measures it under the
  // identical protocol, so "autotuned >= model" holds by construction.
  add(model, "model");

  // Untiled baselines: tuning must be able to *undo* tiling when the model
  // overfits the direct-mapped assumption (prefetchers love long rows).
  rt::core::TilingPlan untiled = model;
  untiled.tiled = false;
  untiled.tile = {};
  untiled.dip = di;
  untiled.djp = dj;
  add(untiled, "untiled");
  if (model.dip != di || model.djp != dj) {
    rt::core::TilingPlan up = untiled;
    up.dip = model.dip;
    up.djp = model.djp;
    add(up, "untiled+pad");
  }

  // Tile-shape neighbourhood.  Associative caches hold conflict misses off
  // far larger tiles than the direct-mapped model admits, so the scaled-up
  // shapes are the likely winners on modern hosts.
  const long ti = model.tiled ? model.tile.ti : 0;
  const long tj = model.tiled ? model.tile.tj : 0;
  if (model.tiled) {
    const auto tile_variant = [&](long vti, long vtj, const char* origin) {
      rt::core::TilingPlan p = model;
      p.tile = rt::core::IterTile{vti, vtj};
      add(p, origin);
    };
    tile_variant(ti * 2, tj * 2, "tile*2");
    tile_variant(ti * 4, tj * 4, "tile*4");
    tile_variant(std::max<long>(1, ti / 2), std::max<long>(1, tj / 2),
                 "tile/2");
    tile_variant(ti * 2, tj, "ti*2");
    tile_variant(ti, tj * 2, "tj*2");
    tile_variant(ti, max_tj, "tj=max");  // full rows: unit-stride streaming
    tile_variant(max_ti, tj, "ti=max");
  } else {
    // Model says untiled: still probe a few square tiles so tuning can
    // *introduce* blocking where the model found nothing feasible.
    for (long t : {16L, 32L, 64L}) {
      rt::core::TilingPlan p = model;
      p.tiled = true;
      p.tile = rt::core::IterTile{t, t};
      add(p, "square" + std::to_string(t));
    }
  }

  // Padding neighbourhood: one cache line (8 doubles) more, and the classic
  // odd leading dimension (kills power-of-two set aliasing outright).
  {
    rt::core::TilingPlan p = model;
    p.dip = model.dip + 8;
    add(p, "pad+8");
  }
  {
    rt::core::TilingPlan p = model;
    p.djp = model.djp + 8;
    add(p, "padj+8");
  }
  if (model.dip % 2 == 0) {
    rt::core::TilingPlan p = model;
    p.dip = model.dip + 1;
    add(p, "pad:odd");
  }

  return out;
}

std::vector<Candidate> spatial_candidates(const rt::core::TilingPlan& model,
                                          long di, long dj, long halo,
                                          const rt::core::CacheGeom& geom,
                                          const rt::core::StencilSpec& spec,
                                          std::size_t max_candidates) {
  // Leave room for the two backend candidates: they are the point of this
  // overload, so the perturbation neighbourhood yields the last slots.
  const std::size_t base_max =
      max_candidates > 2 ? max_candidates - 2 : max_candidates;
  std::vector<Candidate> out =
      spatial_candidates(model, di, dj, halo, base_max);

  // The lattice/oblivious backends answer every tiling transform the same
  // way; ride the model's transform when it tiles, kTile otherwise.
  rt::core::Transform tr = model.transform;
  if (tr == rt::core::Transform::kOrig ||
      tr == rt::core::Transform::kGcdPadNT) {
    tr = rt::core::Transform::kTile;
  }
  const auto add_backend = [&](rt::core::Backend b, const char* origin) {
    if (out.size() >= max_candidates) return;
    const rt::core::PlanReport rep =
        rt::core::plan_with_backend(b, tr, geom, di, dj, spec, 0);
    if (!rep.ok()) return;  // degraded backend plans add nothing to race
    for (const Candidate& c : out) {
      // Schedule participates here: an oblivious plan with the same base
      // tile as a flat candidate still executes differently.
      if (c.plan.tiled == rep.plan.tiled && c.plan.tile == rep.plan.tile &&
          c.plan.dip == rep.plan.dip && c.plan.djp == rep.plan.djp &&
          c.plan.schedule == rep.plan.schedule) {
        return;
      }
    }
    out.push_back(Candidate{rep.plan, origin});
  };
  add_backend(rt::core::Backend::kLattice, "backend:lattice");
  add_backend(rt::core::Backend::kOblivious, "backend:oblivious");
  return out;
}

std::vector<TemporalCandidate> temporal_candidates(
    rt::core::TemporalMode mode, long cs, long n1, long n2, long n3,
    int tsteps, int threads, long halo, std::size_t max_candidates) {
  std::vector<TemporalCandidate> out;
  if (mode == rt::core::TemporalMode::kOff || max_candidates == 0) return out;

  const auto add = [&](long bk, const std::string& origin) {
    if (out.size() >= max_candidates) return;
    rt::core::TemporalReport rep = rt::core::temporal_plan_checked(
        mode, cs, n1, n2, n3, tsteps, bk, threads, halo);
    if (rep.status == rt::guard::Status::kInvalidArgument) return;
    for (const TemporalCandidate& c : out) {
      if (c.report.plan.bk == rep.plan.bk && c.report.plan.tb == rep.plan.tb) {
        return;
      }
    }
    out.push_back(TemporalCandidate{std::move(rep), origin});
  };

  // Auto-sized model plan first (the bk the planner would pick itself).
  add(0, "model");
  const long model_bk = out.empty() ? 0 : out.front().report.plan.bk;
  if (model_bk > 0) {
    add(std::max<long>(1, model_bk / 2), "bk/2");
    add(model_bk * 2, "bk*2");
    add(model_bk + 2 * halo, "bk+2h");
    add(std::max<long>(1, model_bk - 2 * halo), "bk-2h");
    add(model_bk * 4, "bk*4");
  }
  return out;
}

}  // namespace rt::tune
