#pragma once
// The calibration engine: measure every candidate under one protocol,
// pick the winner, and never let a bad candidate take the sweep down.
//
//  * Objective: median measured seconds over `repeats` runs (the median is
//    the outlier trim at these repeat counts).  Candidates within
//    `tie_tolerance` of the best time tie, and ties break on hardware
//    counters — fewer LLC misses, then fewer dTLB misses, then higher IPC
//    (rt::obs::PerfCounters; skipped when the host exposes none) — and
//    finally on candidate order, which is preference order with the model
//    plan first.  "Autotuned >= model" therefore holds by construction:
//    the model plan is always in the candidate set, measured identically.
//  * Guardrails: each calibration run can be supervised by an rt::guard
//    watchdog deadline; a hung or failed candidate becomes a recorded
//    skip row (kTimeout / kAllocFailed / ...) and the sweep continues.
//  * Staleness + background re-tune: store entries older than max_age_ms
//    are re-tuned on a background worker (retune_async / wait_idle) so the
//    serving path never blocks on a calibration sweep.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rt/guard/status.hpp"
#include "rt/tune/candidates.hpp"
#include "rt/tune/plan_store.hpp"
#include "rt/tune/tune.hpp"

namespace rt::tune {

struct TuneConfig {
  int repeats = 3;  ///< calibration runs per candidate (median taken)
  /// Times within this fraction of the best tie; counters break ties.
  double tie_tolerance = 0.02;
  /// Watchdog deadline per calibration run (seconds); a run that exceeds
  /// it marks the candidate kTimeout-skipped.  0 = unsupervised.
  double candidate_deadline_s = 0;
  /// Store entries older than this re-tune in the background (0 = never
  /// stale by age; version/fingerprint staleness is handled by the store).
  std::int64_t max_age_ms = 0;
  std::size_t max_candidates = 24;  ///< candidate-set cap
};

/// One measured (or skipped) candidate in the result table.
struct CandidateResult {
  std::string origin;
  rt::core::TilingPlan plan{};            ///< spatial sweeps
  rt::core::TemporalPlan temporal_plan{}; ///< temporal sweeps
  Measurement m;
};

/// Outcome of one calibration sweep.
struct TuneResult {
  TuneKey key;
  /// kOk when a winner was measured; kInfeasible when every candidate was
  /// skipped (the caller falls back to the model plan, recorded).
  rt::guard::Status status = rt::guard::Status::kOk;
  std::string detail;
  std::vector<CandidateResult> candidates;
  int winner = -1;  ///< index into candidates (-1 when status != kOk)
  int model = -1;   ///< index of the "model" candidate (-1 if absent)
  int worst = -1;   ///< slowest successfully measured candidate
  bool ok() const { return status == rt::guard::Status::kOk; }
  double mflops_at(int i) const {
    return i >= 0 && i < static_cast<int>(candidates.size())
               ? candidates[static_cast<std::size_t>(i)].m.mflops
               : 0;
  }
};

class Autotuner {
 public:
  explicit Autotuner(TuneConfig cfg = {});
  /// Joins the background worker (drains queued re-tunes first).
  ~Autotuner();
  Autotuner(const Autotuner&) = delete;
  Autotuner& operator=(const Autotuner&) = delete;

  const TuneConfig& config() const { return cfg_; }

  /// Measure @p cands (in order) through @p runner and select the winner.
  /// Candidates past config().max_candidates are dropped (recorded in the
  /// result detail).  Never throws; a throwing runner marks its candidate
  /// skipped.
  TuneResult tune_spatial(const TuneKey& key,
                          const std::vector<Candidate>& cands,
                          const CandidateRunner& runner);

  /// Same sweep over temporal candidates.
  TuneResult tune_temporal(const TuneKey& key,
                           const std::vector<TemporalCandidate>& cands,
                           const TemporalRunner& runner);

  /// Is @p e older than config().max_age_ms at wall-clock @p now_ms?
  bool is_stale(const StoreEntry& e, std::int64_t now_ms) const;

  /// Queue @p job on the background re-tune worker (started lazily).
  /// Jobs run strictly in queue order, one at a time.
  void retune_async(std::function<void()> job);
  /// Block until every queued job has finished.
  void wait_idle();
  /// Jobs completed so far (observability for tests).
  std::size_t jobs_run() const;

 private:
  struct Sweep;
  TuneResult run_sweep(const TuneKey& key, Sweep& sweep);
  Measurement measure_candidate(const std::function<Measurement()>& once);

  TuneConfig cfg_;
  struct Worker;
  Worker* worker_;  // lazily started; owned (deleted in dtor)
};

}  // namespace rt::tune
