#pragma once
// Candidate-plan generation: the search neighbourhood the calibration sweep
// measures.  Seeded by the model plan (the analytic search's answer) and
// expanded with the perturbations that matter on real hosts — tile-shape
// scalings (associative caches tolerate far larger tiles than the
// direct-mapped model admits), padding variants (prefetcher/TLB effects),
// and the untiled baseline (so tuning can *undo* tiling when the model
// overfits).  Every candidate is bounds-clamped and the set is de-duplicated
// so the sweep never measures the same plan twice.

#include <cstddef>
#include <string>
#include <vector>

#include "rt/core/backend.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/stencil_spec.hpp"
#include "rt/core/temporal.hpp"

namespace rt::tune {

/// One spatial candidate: a concrete executable plan plus where it came
/// from ("model", "tile*2", "pad+8", "untiled", ...) for the result table.
struct Candidate {
  rt::core::TilingPlan plan;
  std::string origin;
};

/// Build the spatial candidate set around @p model for DI x DJ arrays of a
/// stencil with radius @p halo.  The model plan is always candidates[0];
/// the rest are clamped to valid iteration tiles (1 <= ti <= DI-2*halo,
/// same for J) and paddings (dip >= DI, djp >= DJ), de-duplicated, and
/// capped at @p max_candidates (generation order is preference order).
std::vector<Candidate> spatial_candidates(const rt::core::TilingPlan& model,
                                          long di, long dj, long halo,
                                          std::size_t max_candidates = 24);

/// Backend-aware candidate set: everything the overload above generates,
/// plus the alternative planner backends' answers for the same problem —
/// the lattice backend's conflict-aware tile ("backend:lattice") and the
/// oblivious backend's recursive plan ("backend:oblivious"), both planned
/// against @p geom for @p spec — so calibration sweeps race backends
/// against each other and the perturbation neighbourhood alike.  Backend
/// plans that fail, degrade, or duplicate an existing shape are skipped.
std::vector<Candidate> spatial_candidates(const rt::core::TilingPlan& model,
                                          long di, long dj, long halo,
                                          const rt::core::CacheGeom& geom,
                                          const rt::core::StencilSpec& spec,
                                          std::size_t max_candidates = 24);

/// One temporal candidate: a full validated report (the temporal planner
/// re-runs for each bk variant, so stages/occupancy stay consistent).
struct TemporalCandidate {
  rt::core::TemporalReport report;
  std::string origin;
};

/// Build the temporal candidate set: the auto-sized model plan (bk = 0,
/// always candidates[0]) plus halved / doubled / stepped block-depth
/// variants, each re-planned through temporal_plan_checked.  Candidates
/// whose report degrades to kInvalidArgument are dropped (kInfeasible ones
/// are kept — they run correctly, just without the residency guarantee).
std::vector<TemporalCandidate> temporal_candidates(
    rt::core::TemporalMode mode, long cs, long n1, long n2, long n3,
    int tsteps, int threads, long halo, std::size_t max_candidates = 12);

}  // namespace rt::tune
