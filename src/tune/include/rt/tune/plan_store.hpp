#pragma once
// Durable plan store: measured winners persisted as versioned JSON, keyed
// by the host's cache-topology fingerprint (rt::core::cache_topology).  A
// store is only *served* on the hierarchy it was measured on — loading one
// written by a different schema version or a different host degrades to the
// model plan with a typed reason (kStale), and a truncated or hand-mangled
// file degrades the same way with kCorrupt.  Neither ever crashes a bench.
//
// Durability contract: parsing is strict (rt::obs::json_parse) and
// all-or-nothing — one malformed entry rejects the whole store, because a
// half-trusted store could silently serve a plan for the wrong shape.

#include <cstdint>
#include <string>
#include <vector>

#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/core/temporal.hpp"
#include "rt/guard/status.hpp"
#include "rt/tune/tune.hpp"

namespace rt::tune {

/// Bumped whenever the serialized schema changes shape; a mismatch is
/// kStale (regenerate by re-tuning), never reinterpreted.  v2: keys and
/// plans carry the planner backend id (plus the geometry fields the
/// backend reads, and the plan's loop schedule) — pre-backend v1 stores
/// load as kStale, so a foreign backend's plan is never misapplied.
inline constexpr int kPlanStoreVersion = 2;

/// One persisted winner: the human-readable TuneKey it answers, the exact
/// PlanCache key to pin it under, the winning plan, and the calibration
/// evidence (winner vs model throughput, when it was measured).
struct StoreEntry {
  TuneKey key;
  bool temporal = false;  ///< which (key, plan) pair below is meaningful

  rt::core::PlanKey plan_key{};       ///< spatial entries
  rt::core::TilingPlan plan{};
  rt::core::TemporalKey temporal_key{};  ///< temporal entries
  rt::core::TemporalPlan temporal_plan{};

  std::string origin;       ///< candidate label that won ("tile*2", ...)
  double mflops = 0;        ///< winner's measured throughput
  double model_mflops = 0;  ///< model plan's throughput in the same sweep
  std::int64_t tuned_at_ms = 0;  ///< wall-clock ms since epoch at tuning
};

struct PlanStore {
  int version = kPlanStoreVersion;
  std::string fingerprint;  ///< rt::core::CacheTopology::fingerprint()
  std::vector<StoreEntry> entries;

  const StoreEntry* find(const TuneKey& key) const;
  /// Insert or replace the entry for e.key (one winner per key).
  void put(StoreEntry e);
};

/// Resolved default location: $RT_TUNE_STORE if set, else
/// $XDG_CACHE_HOME/rt-tune/plans.json, else ~/.cache/rt-tune/plans.json
/// (cwd-relative ".rt-tune-plans.json" when HOME is unset).
std::string default_store_path();

/// Serialize (pretty-printed JSON, trailing newline — diffable).
std::string store_to_json(const PlanStore& s);

/// Parse + validate @p text against @p host_fingerprint.
///   kCorrupt          JSON parse failure, or a missing/mistyped field
///   kStale            parsed fine, but version != kPlanStoreVersion or
///                     fingerprint != host_fingerprint
/// The detail line carries the parser reason / the mismatching values.
rt::guard::Expected<PlanStore> parse_store(const std::string& text,
                                           const std::string& host_fingerprint);

/// `path + ".bak"`: where save_store keeps the previous last-good store.
std::string store_bak_path(const std::string& path);

/// How a load_store call actually obtained its result — the success path
/// of Expected<PlanStore> has no detail channel, and "we served the .bak"
/// is a fact operators need to see.
struct LoadInfo {
  bool recovered_from_bak = false;  ///< primary bad, .bak served instead
  rt::guard::Status primary_status = rt::guard::Status::kOk;
  std::string primary_detail;  ///< why the primary was rejected
};

/// Read @p path and parse_store it.  A missing/unreadable file is
/// kInvalidArgument (distinct from kCorrupt: nothing was persisted there).
/// Crash recovery: when the primary is kCorrupt (torn write) — or missing
/// while `path.bak` exists (a crash between save_store's two renames) —
/// the `.bak` written by save_store is parsed instead; success then sets
/// @p info->recovered_from_bak with the primary's typed rejection.  kStale
/// never falls back: the .bak is the same host/version or older.
rt::guard::Expected<PlanStore> load_store(const std::string& path,
                                          const std::string& host_fingerprint,
                                          LoadInfo* info = nullptr);

/// Write store_to_json(s) to @p path, creating parent directories.
/// Crash-safe: the bytes land in a private temp file first, are fsync'd,
/// and only then atomically renamed over @p path — a crash (even kill -9)
/// at any instant leaves either the old store or the new one, never a torn
/// file.  The previous store is kept as `path.bak` (last-good fallback for
/// load_store).  Returns kOk, kInvalidArgument (unwritable path), or
/// kIoError (write/fsync/rename failed — @p detail says which; the
/// previous store, if any, is untouched).
rt::guard::Status save_store(const PlanStore& s, const std::string& path,
                             std::string* detail = nullptr);

/// Pin every entry into @p cache (PlanCache serves pinned entries ahead of
/// the model search).  Returns the number of entries installed.  The pinned
/// report carries status kOk and a detail line naming the tuned origin.
std::size_t install(const PlanStore& s, rt::core::PlanCache& cache);

}  // namespace rt::tune
