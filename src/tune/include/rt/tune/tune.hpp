#pragma once
// rt::tune — measurement-driven online autotuner (shared vocabulary).
//
// The paper's planners (Euc3D/GcdPad/Pad) model a direct-mapped cache; real
// hosts have associative caches, hardware prefetchers and TLBs, so the
// analytically best tile is not always the measured best ("Model-Driven
// Automatic Tiling with Cache Associativity Lattices").  rt::tune closes
// that gap: it seeds a candidate set from the model plan, runs short guarded
// calibration sweeps through a caller-supplied runner, selects a measured
// winner, and persists it in a versioned, topology-fingerprinted plan store
// so later runs skip the sweep entirely (--tune=load).
//
// Layering: rt_tune depends on rt_core/rt_guard/rt_obs only.  Executing a
// candidate needs kernels and the bench runner, which live above this
// library — so measurement is injected as a CandidateRunner callback and
// unit tests drive the tuner with synthetic runners.

#include <functional>
#include <string>

#include "rt/core/plan.hpp"
#include "rt/core/temporal.hpp"
#include "rt/guard/status.hpp"

namespace rt::tune {

/// The --tune= flag: kOff = model plans only; kLoad = serve persisted
/// winners, never calibrate; kOn = serve persisted winners and calibrate
/// (then persist) the keys the store is missing.
enum class TuneMode {
  kOff,
  kLoad,
  kOn,
};

/// Stable token ("off", "load", "on").
const char* tune_mode_name(TuneMode m);
bool parse_tune_mode(const std::string& s, TuneMode* out);

/// Parse a transform_name() token back into a Transform (the writer-side
/// tokens are the paper's names: "Orig", "Tile", "Euc3D", "GcdPad", "Pad",
/// "GcdPadNT").  Anything else returns false.
bool parse_transform(const std::string& s, rt::core::Transform* out);

/// Identity of one tuning problem: what the winner was measured *for*.
/// Everything that changes the measured ranking is in the key — kernel,
/// shape, transform family, execution width, SIMD level and the temporal
/// schedule — so a store entry is only served for the exact configuration
/// it was calibrated on.
struct TuneKey {
  std::string kernel;  ///< kernel table name (e.g. "JACOBI", "RESID")
  long n = 0;          ///< problem size (N x N x n3 arrays)
  long n3 = 0;         ///< third dimension (the paper fixes it at 30)
  rt::core::Transform transform = rt::core::Transform::kOrig;
  /// Planner backend the winner was calibrated against: a lattice-planned
  /// winner must never be served for a model-planned configuration (plan
  /// identity; see rt/core/backend.hpp).
  rt::core::Backend backend = rt::core::Backend::kModel;
  int threads = 1;
  std::string simd = "off";  ///< SIMD mode token ("off" / "auto" / "avx2")
  rt::core::TemporalMode temporal = rt::core::TemporalMode::kOff;
  int tsteps = 0;  ///< fused time steps (temporal keys; 0 for spatial)

  friend bool operator==(const TuneKey&, const TuneKey&) = default;

  /// Stable one-line identity, e.g.
  ///   "JACOBI/n400x30/GcdPad/model/t4/simd=avx2/temporal=off/ts0"
  /// — used as the table label and the store's de-duplication key.
  std::string str() const;
};

/// One calibration measurement of one candidate plan.  `seconds` is the
/// primary objective (median measured step time); the counter-derived
/// fields break ties and are negative when the host exposes no counters.
struct Measurement {
  double seconds = 0;  ///< median wall-clock seconds per measured step
  double mflops = 0;   ///< throughput at that time (reporting only)
  double llc_misses = -1;   ///< LLC load misses per step (-1 = unavailable)
  double dtlb_misses = -1;  ///< dTLB load misses per step (-1 = unavailable)
  double ipc = -1;          ///< instructions per cycle (-1 = unavailable)
  /// Non-kOk marks the candidate skipped-and-recorded (kTimeout when the
  /// per-candidate watchdog fired, kAllocFailed, ...): it stays in the
  /// result table but never competes for the win.
  rt::guard::Status status = rt::guard::Status::kOk;
  std::string detail;
  bool ok() const { return status == rt::guard::Status::kOk; }
};

/// Measurement callback for spatial candidates: execute @p plan for the
/// keyed configuration and report one Measurement.  The autotuner may run
/// it from a watchdog-supervised worker thread, so the callable must own
/// everything it touches (by-value captures; see rt/guard/watchdog.hpp).
using CandidateRunner =
    std::function<Measurement(const rt::core::TilingPlan& plan)>;

/// Same for temporal candidates.
using TemporalRunner =
    std::function<Measurement(const rt::core::TemporalPlan& plan)>;

}  // namespace rt::tune
