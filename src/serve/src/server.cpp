#include "rt/serve/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <new>

#include "rt/core/cache_topology.hpp"
#include "rt/guard/watchdog.hpp"
#include "rt/tune/plan_store.hpp"

namespace rt::serve {

namespace {

using Clock = std::chrono::steady_clock;
using rt::guard::Status;
using rt::obs::JsonValue;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

long long steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

JsonValue plan_json(const rt::core::PlanReport& rep) {
  JsonValue p = JsonValue::object();
  p.set("transform", std::string(rt::core::transform_name(rep.plan.transform)));
  p.set("tiled", rep.plan.tiled);
  p.set("ti", rep.plan.tile.ti);
  p.set("tj", rep.plan.tile.tj);
  p.set("dip", rep.plan.dip);
  p.set("djp", rep.plan.djp);
  return p;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

constexpr std::size_t kMaxLatencySamples = 1u << 20;

}  // namespace

/// One client connection.  The fd is owned here (closed on destruction);
/// writers serialize on write_m so pipelined responses never interleave.
struct Server::Conn {
  explicit Conn(int fd) : fd(fd) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
  std::mutex write_m;
  std::atomic<bool> open{true};
};

struct Server::Pending {
  Request req;
  std::shared_ptr<Conn> conn;
  Clock::time_point received;  ///< frame fully read off the wire
  Clock::time_point enqueued;  ///< admitted to the queue
};

/// Everything a batch's worker touches, heap-held so an abandoned worker
/// can outlive the batch (the run_with_deadline ownership contract).  The
/// worker only ever writes `outcomes`/`done` under `m`; the executor reads
/// them under the same mutex, so a straggler writing group 2 cannot tear
/// the group-1 outcome being copied out.
struct Server::BatchCtx {
  std::mutex m;
  std::vector<SolveParams> groups;
  std::vector<SolveOutcome> outcomes;
  std::vector<char> done;  // vector<bool> has no per-element addresses
  rt::core::TilingPlan plan;
  std::vector<rt::array::Array3D<double>> arrays;
  std::unique_ptr<rt::par::ThreadPool> own_pool;
  rt::par::ThreadPool* pool = nullptr;
  int app_threads = 1;
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), arena_(opts_.arena_max_bytes) {
  if (opts_.executors < 1) opts_.executors = 1;
  if (opts_.batch_max < 1) opts_.batch_max = 1;
  if (opts_.queue_depth < 1) opts_.queue_depth = 1;
  if (opts_.solver_threads < 1) opts_.solver_threads = 1;
  if (opts_.retry_after_ms < 0) opts_.retry_after_ms = 0;
  if (opts_.queue_watermark <= 0 || opts_.queue_watermark > 1.0) {
    opts_.queue_watermark = 1.0;
  }
  if (opts_.supervise_interval_ms < 1) opts_.supervise_interval_ms = 1;
  if (opts_.max_respawns < 0) opts_.max_respawns = 0;
  if (opts_.breaker_window_ms < 1) opts_.breaker_window_ms = 1;
  if (opts_.breaker_retry_after_ms < 0) opts_.breaker_retry_after_ms = 0;
}

Server::~Server() { stop(); }

rt::guard::Status Server::start(std::string* detail) {
  if (running_.load(std::memory_order_acquire)) return Status::kOk;

  // A peer that disappears mid-response must cost us one EPIPE, not the
  // process: every write error in this file is a typed, counted outcome.
  std::signal(SIGPIPE, SIG_IGN);

  if (opts_.cs_elems <= 0) opts_.cs_elems = serve_cs_elems();

  store_status_ = Status::kOk;
  store_detail_.clear();
  if (!opts_.plan_store.empty()) {
    rt::guard::Expected<rt::tune::PlanStore> store = rt::tune::load_store(
        opts_.plan_store, rt::core::host_cache_topology().fingerprint());
    if (store.ok()) {
      rt::tune::install(store.value(), cache_);
    } else {
      // Degraded, not fatal: the server plans from the model instead.
      store_status_ = store.status();
      store_detail_ = store.detail();
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (detail) *detail = std::string("socket: ") + std::strerror(errno);
    return Status::kIoError;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    if (detail) *detail = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::kIoError;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (opts_.solver_threads > 1) {
    pool_ = std::make_unique<rt::par::ThreadPool>(opts_.solver_threads);
  }
  abandoned_baseline_ = rt::guard::abandoned_thread_count();

  draining_.store(false, std::memory_order_release);
  degraded_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(q_m_);
    stop_executors_ = false;
  }
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    breaker_events_ms_.clear();
  }
  {
    std::lock_guard<std::mutex> lk(sup_m_);
    sup_stop_ = false;
  }
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  {
    std::lock_guard<std::mutex> lk(exec_m_);
    for (int i = 0; i < opts_.executors; ++i) spawn_executor();
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
  return Status::kOk;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 0. Retire the supervisor first: nothing may respawn executors while
  //    the lists below are being drained and joined.
  {
    std::lock_guard<std::mutex> lk(sup_m_);
    sup_stop_ = true;
  }
  sup_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();

  // 1. Stop intake: no new connections, new solve requests rejected as
  //    overloaded ("draining").
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Drain: executors finish every admitted request, then exit.  This
  //    joins retired (wedged) executors too — their wedges must have
  //    cleared by now (cooperative contract, see server.hpp).
  {
    std::lock_guard<std::mutex> lk(q_m_);
    stop_executors_ = true;
  }
  q_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(exec_m_);
    for (ExecSlot& s : executors_) {
      if (s.th.joinable()) s.th.join();
    }
    executors_.clear();
    for (std::thread& t : retired_executors_) {
      if (t.joinable()) t.join();
    }
    retired_executors_.clear();
  }

  // 3. Hang up: wake blocked readers, join handlers, release connections.
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (const std::shared_ptr<Conn>& c : conns_) {
      c->open.store(false, std::memory_order_release);
      ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pool_.reset();
}

void Server::acceptor_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatal — either way, done
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto conn = std::make_shared<Conn>(fd);
    std::lock_guard<std::mutex> lk(conns_m_);
    {
      std::lock_guard<std::mutex> slk(stats_m_);
      ++counters_.connections;
    }
    conns_.push_back(conn);
    handlers_.emplace_back([this, conn] { handler_loop(conn); });
  }
}

void Server::handler_loop(std::shared_ptr<Conn> conn) {
  for (;;) {
    std::string payload, why;
    const FrameResult fr = read_frame(conn->fd, &payload, &why);
    if (fr == FrameResult::kEof) break;
    if (fr == FrameResult::kTruncated || fr == FrameResult::kError ||
        fr == FrameResult::kTimeout) {
      // kTimeout can only fire if someone arms SO_RCVTIMEO on an accepted
      // fd; the stream is unsynced either way, so hang up like kError.
      std::lock_guard<std::mutex> lk(stats_m_);
      fr == FrameResult::kTruncated ? ++counters_.protocol_errors
                                    : ++counters_.io_errors;
      break;
    }
    if (fr == FrameResult::kOversized) {
      // The payload was never read, so the stream cannot be re-synced:
      // answer with the typed reason, then hang up.
      {
        std::lock_guard<std::mutex> lk(stats_m_);
        ++counters_.protocol_errors;
      }
      respond_error(conn, -1, Status::kInvalidArgument, why);
      break;
    }
    handle_payload(conn, payload);
    if (!conn->open.load(std::memory_order_acquire)) break;
  }
  conn->open.store(false, std::memory_order_release);
  ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::handle_payload(const std::shared_ptr<Conn>& conn,
                            const std::string& payload) {
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    ++counters_.requests;
  }
  Request req;
  std::string why;
  const Status st = parse_request_text(payload, &req, &why);
  if (st != Status::kOk) {
    // Malformed content in a well-framed payload: typed response, and the
    // connection stays usable — framing is intact.
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++counters_.protocol_errors;
    }
    respond_error(conn, req.id, st, why);
    return;
  }
  switch (req.op) {
    case Op::kPing: {
      JsonValue doc = JsonValue::object();
      doc.set("id", static_cast<long long>(req.id));
      doc.set("op", "ping");
      doc.set("status", std::string(rt::guard::status_name(Status::kOk)));
      respond(conn, doc);
      return;
    }
    case Op::kStats: {
      JsonValue doc = JsonValue::object();
      doc.set("id", static_cast<long long>(req.id));
      doc.set("op", "stats");
      doc.set("status", std::string(rt::guard::status_name(Status::kOk)));
      doc.set("stats", stats_json());
      respond(conn, doc);
      return;
    }
    case Op::kHealth: {
      JsonValue doc = JsonValue::object();
      doc.set("id", static_cast<long long>(req.id));
      doc.set("op", "health");
      doc.set("status", std::string(rt::guard::status_name(Status::kOk)));
      doc.set("health", health_json());
      respond(conn, doc);
      return;
    }
    case Op::kSolve:
      break;
  }
  if (req.params.n > opts_.max_n ||
      (req.params.k > 0 && req.params.k > opts_.max_n)) {
    respond_error(conn, req.id, Status::kInvalidArgument,
                  "n/k exceeds this server's limit (" +
                      std::to_string(opts_.max_n) + ")");
    return;
  }
  admit(conn, req);
}

void Server::admit(const std::shared_ptr<Conn>& conn, const Request& req) {
  auto p = std::make_unique<Pending>();
  p->req = req;
  if (p->req.deadline_ms <= 0) p->req.deadline_ms = opts_.default_deadline_ms;
  p->conn = conn;
  p->received = Clock::now();
  bool draining = false;
  bool rejected = false;
  const bool degraded = degraded_.load(std::memory_order_acquire);
  // Watermark: < 1.0 sheds load before the queue is hard-full, so the
  // retry_after hint goes out while the server still has headroom.
  const std::size_t limit =
      opts_.queue_watermark >= 1.0
          ? opts_.queue_depth
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       opts_.queue_watermark *
                       static_cast<double>(opts_.queue_depth)));
  {
    std::lock_guard<std::mutex> lk(q_m_);
    draining = draining_.load(std::memory_order_acquire);
    if (draining || degraded || queue_.size() >= limit) {
      rejected = true;
    } else {
      p->enqueued = Clock::now();
      queue_.push_back(std::move(p));
    }
  }
  if (rejected) {
    // Respond outside q_m_: a slow client's socket must never stall the
    // executors' access to the queue.  Draining carries no retry hint
    // (this server is going away); queue pressure and breaker rejections
    // do — that hint is what rt::resil::RetryingClient paces itself by.
    const int hint = draining ? 0
                     : degraded ? opts_.breaker_retry_after_ms
                                : opts_.retry_after_ms;
    {
      std::lock_guard<std::mutex> slk(stats_m_);
      ++counters_.rejected_overloaded;
      if (degraded && !draining) ++counters_.degraded_rejections;
      if (hint > 0) ++counters_.retry_hints;
    }
    respond_error(conn, req.id, Status::kOverloaded,
                  draining   ? "server is draining"
                  : degraded ? "server is degraded (circuit breaker open)"
                             : "admission queue is full",
                  hint);
    return;
  }
  {
    std::lock_guard<std::mutex> slk(stats_m_);
    ++counters_.admitted;
  }
  q_cv_.notify_one();
}

void Server::executor_loop(std::shared_ptr<ExecState> state) {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lk(q_m_);
      q_cv_.wait(lk, [this, &state] {
        return stop_executors_ || !queue_.empty() ||
               state->retired.load(std::memory_order_acquire);
      });
      // A retired executor exits even with work queued: its replacement
      // (or a surviving sibling) owns the queue now.
      if (state->retired.load(std::memory_order_acquire)) return;
      if (queue_.empty()) {
        if (stop_executors_) return;  // drained
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (opts_.batching) {
        const BatchKey key = batch_key_of(batch[0]->req.params);
        for (auto it = queue_.begin();
             it != queue_.end() &&
             batch.size() < static_cast<std::size_t>(opts_.batch_max);) {
          if (batch_key_of((*it)->req.params) == key) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    // Heartbeat for the supervisor: busy from here until run_batch
    // returns.  A no-deadline wedge freezes this thread inside run_batch
    // with busy_since stuck in the past — exactly what wedge detection
    // keys on.
    state->busy_since_ms.store(steady_ms(), std::memory_order_release);
    run_batch(std::move(batch));
    state->busy_since_ms.store(-1, std::memory_order_release);
    if (state->retired.load(std::memory_order_acquire)) return;
  }
}

void Server::spawn_executor() {
  ExecSlot slot;
  slot.state = std::make_shared<ExecState>();
  std::shared_ptr<ExecState> st = slot.state;
  slot.th = std::thread([this, st] { executor_loop(st); });
  executors_.push_back(std::move(slot));
}

void Server::supervisor_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(sup_m_);
      sup_cv_.wait_for(lk,
                       std::chrono::milliseconds(opts_.supervise_interval_ms),
                       [this] { return sup_stop_; });
      if (sup_stop_) return;
    }
    const long long now = steady_ms();

    // Wedge detection: an executor busy past the threshold is retired
    // (its thread exits once the wedge clears) and replaced, up to the
    // respawn cap.  Lock order: exec_m_ before stats_m_ (see server.hpp).
    int newly_wedged = 0;
    if (opts_.executor_wedge_ms > 0) {
      std::lock_guard<std::mutex> lk(exec_m_);
      std::uint64_t respawned;
      {
        std::lock_guard<std::mutex> slk(stats_m_);
        respawned = counters_.executors_respawned;
      }
      for (std::size_t i = 0; i < executors_.size();) {
        const long long busy =
            executors_[i].state->busy_since_ms.load(std::memory_order_acquire);
        if (busy >= 0 && now - busy >= opts_.executor_wedge_ms) {
          executors_[i].state->retired.store(true, std::memory_order_release);
          q_cv_.notify_all();  // in case it is parked, not wedged
          retired_executors_.push_back(std::move(executors_[i].th));
          executors_.erase(executors_.begin() +
                           static_cast<std::ptrdiff_t>(i));
          ++newly_wedged;
          if (respawned < static_cast<std::uint64_t>(opts_.max_respawns)) {
            spawn_executor();
            ++respawned;
          }
          continue;
        }
        ++i;
      }
      if (newly_wedged > 0) {
        std::lock_guard<std::mutex> slk(stats_m_);
        counters_.executors_wedged += static_cast<std::uint64_t>(newly_wedged);
        counters_.executors_respawned = respawned;
        for (int i = 0; i < newly_wedged; ++i) {
          breaker_events_ms_.push_back(now);
        }
      }
    }

    // Circuit breaker: trip when the abandonment/wedge rate crosses the
    // threshold, reset only when the window has fully cleared.
    if (opts_.breaker_threshold > 0) {
      std::size_t in_window = 0;
      {
        std::lock_guard<std::mutex> slk(stats_m_);
        while (!breaker_events_ms_.empty() &&
               breaker_events_ms_.front() < now - opts_.breaker_window_ms) {
          breaker_events_ms_.pop_front();
        }
        in_window = breaker_events_ms_.size();
        if (!degraded_.load(std::memory_order_acquire) &&
            in_window >= static_cast<std::size_t>(opts_.breaker_threshold)) {
          degraded_.store(true, std::memory_order_release);
          ++counters_.breaker_trips;
        } else if (degraded_.load(std::memory_order_acquire) &&
                   in_window == 0) {
          degraded_.store(false, std::memory_order_release);
          ++counters_.breaker_resets;
        }
      }
    }
  }
}

void Server::run_batch(std::vector<std::unique_ptr<Pending>> batch) {
  const Clock::time_point t_start = Clock::now();
  const std::size_t members_pulled = batch.size();

  // Deadlines are wall time from frame receipt: a request that waited out
  // its whole budget in the queue times out without running at all.
  long min_remaining_ms = 0;
  bool has_deadline = false;
  {
    std::vector<std::unique_ptr<Pending>> live;
    live.reserve(batch.size());
    for (std::unique_ptr<Pending>& p : batch) {
      if (p->req.deadline_ms > 0) {
        const double elapsed_ms =
            seconds_between(p->received, t_start) * 1e3;
        const long remaining =
            p->req.deadline_ms - static_cast<long>(elapsed_ms);
        if (remaining <= 0) {
          {
            std::lock_guard<std::mutex> lk(stats_m_);
            ++counters_.timeouts;
          }
          respond_error(p->conn, p->req.id, Status::kTimeout,
                        "deadline expired while queued");
          continue;
        }
        min_remaining_ms = has_deadline
                               ? std::min(min_remaining_ms, remaining)
                               : remaining;
        has_deadline = true;
      }
      live.push_back(std::move(p));
    }
    batch = std::move(live);
  }
  if (batch.empty()) return;

  // One plan lookup for the whole batch (pinned rt::tune winners included).
  const BatchKey key = batch_key_of(batch[0]->req.params);
  const rt::core::PlanReport rep =
      plan_for_batch(key, opts_.cs_elems, &cache_);
  if (rep.status == Status::kOverflow) {
    for (const std::unique_ptr<Pending>& p : batch) {
      respond_error(p->conn, p->req.id, rep.status, rep.detail);
    }
    return;
  }

  // Dedup: members with fully equal SolveParams share one computed group.
  auto ctx = std::make_shared<BatchCtx>();
  ctx->plan = rep.plan;
  std::vector<std::size_t> group_of(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::size_t g = ctx->groups.size();
    for (std::size_t j = 0; j < ctx->groups.size(); ++j) {
      if (ctx->groups[j] == batch[i]->req.params) {
        g = j;
        break;
      }
    }
    if (g == ctx->groups.size()) ctx->groups.push_back(batch[i]->req.params);
    group_of[i] = g;
  }
  ctx->outcomes.resize(ctx->groups.size());
  ctx->done.assign(ctx->groups.size(), 0);
  ctx->app_threads = opts_.solver_threads;

  // The scheduling decision is fully made here — record it before any
  // response is written, so a client that reads stats right after its
  // response sees the batch that produced it.
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    ++counters_.batches;
    if (members_pulled > 1) counters_.batched_requests += members_pulled;
    counters_.max_batch =
        std::max<std::uint64_t>(counters_.max_batch, members_pulled);
    counters_.dedup_shared += batch.size() - ctx->groups.size();
  }

  // One padded allocation set shared by every group (kernel paths).
  const int narrays = num_arrays_for(key.kernel);
  if (narrays > 0) {
    const rt::array::Dims3 dims = batch_dims(key, rep.plan);
    try {
      for (int i = 0; i < narrays; ++i) {
        ctx->arrays.push_back(arena_.acquire(dims));
      }
    } catch (const std::bad_alloc&) {
      for (rt::array::Array3D<double>& a : ctx->arrays) {
        arena_.release(std::move(a));
      }
      for (const std::unique_ptr<Pending>& p : batch) {
        respond_error(p->conn, p->req.id, Status::kAllocFailed,
                      "grid allocation failed");
      }
      return;
    }
  }

  // A deadline batch gets its own pool: if the watchdog abandons the
  // worker, that thread must not touch the server's shared pool after the
  // server is gone.  Deadline-free batches share pool_ (no abandonment
  // possible — the work runs on this executor thread).
  if (opts_.solver_threads > 1) {
    if (has_deadline) {
      ctx->own_pool =
          std::make_unique<rt::par::ThreadPool>(opts_.solver_threads);
      ctx->pool = ctx->own_pool.get();
    } else {
      ctx->pool = pool_.get();
    }
  }

  auto work = [ctx] {
    for (std::size_t g = 0; g < ctx->groups.size(); ++g) {
      SolveOutcome out = run_solve(
          ctx->groups[g], ctx->plan,
          ctx->arrays.empty() ? nullptr : &ctx->arrays, ctx->pool,
          ctx->app_threads);
      std::lock_guard<std::mutex> lk(ctx->m);
      ctx->outcomes[g] = std::move(out);
      ctx->done[g] = 1;
    }
  };

  bool abandoned = false;
  if (!has_deadline) {
    work();
  } else {
    const rt::guard::WatchdogResult w = rt::guard::run_with_deadline(
        work, std::chrono::milliseconds(min_remaining_ms),
        std::chrono::milliseconds(opts_.watchdog_grace_ms));
    abandoned = w.abandoned;
  }
  const Clock::time_point t_done = Clock::now();
  if (abandoned) {
    // Record the loss before any timeout response goes out: a client that
    // asks for stats right after its "timeout" must see the abandonment.
    // The event also feeds the circuit breaker's sliding window.
    std::lock_guard<std::mutex> lk(stats_m_);
    ++counters_.abandoned_batches;
    abandoned_ctxs_.push_back(std::weak_ptr<void>(ctx));
    breaker_events_ms_.push_back(steady_ms());
  }

  // Copy outcomes under the ctx mutex (an abandoned straggler may still be
  // writing other slots), then respond without holding it.
  std::vector<SolveOutcome> outcomes;
  std::vector<char> done;
  {
    std::lock_guard<std::mutex> lk(ctx->m);
    outcomes = ctx->outcomes;
    done = ctx->done;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = *batch[i];
    const std::size_t g = group_of[i];
    if (!done[g]) {
      {
        std::lock_guard<std::mutex> lk(stats_m_);
        ++counters_.timeouts;
      }
      respond_error(p.conn, p.req.id, Status::kTimeout,
                    "deadline expired during solve");
      continue;
    }
    const SolveOutcome& out = outcomes[g];
    if (out.status != Status::kOk) {
      respond_error(p.conn, p.req.id, out.status, out.detail);
      continue;
    }
    JsonValue doc = JsonValue::object();
    doc.set("id", static_cast<long long>(p.req.id));
    doc.set("op", "solve");
    doc.set("status", std::string(rt::guard::status_name(Status::kOk)));
    doc.set("detail", "");
    doc.set("kernel", serve_kernel_name(p.req.params.kernel));
    doc.set("n", key.n);
    doc.set("k", key.k);
    doc.set("tsteps", p.req.params.tsteps);
    doc.set("plan", plan_json(rep));
    doc.set("plan_status",
            std::string(rt::guard::status_name(rep.status)));
    doc.set("checksum", checksum_hex(out.checksum));
    doc.set("iters", out.iters);
    doc.set("residual", out.residual);
    doc.set("batch_size", static_cast<long long>(batch.size()));
    doc.set("shared", std::count(group_of.begin(), group_of.end(), g) > 1);
    const double queue_s = seconds_between(p.enqueued, t_start);
    const double solve_s = seconds_between(t_start, t_done);
    const double total_s = seconds_between(p.received, Clock::now());
    doc.set("queue_ms", queue_s * 1e3);
    doc.set("solve_ms", solve_s * 1e3);
    doc.set("total_ms", total_s * 1e3);
    respond(p.conn, doc);
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++counters_.responses_ok;
    }
    record_latency(queue_s, solve_s, total_s);
  }

  // Arena return — unless the batch was abandoned, in which case the
  // straggler owns the buffers until its thread dies (counted, never
  // reused: handing them back now could give the next request a buffer a
  // zombie thread is still writing).
  if (!abandoned) {
    for (rt::array::Array3D<double>& a : ctx->arrays) {
      arena_.release(std::move(a));
    }
    ctx->arrays.clear();
  }

}

void Server::respond(const std::shared_ptr<Conn>& conn,
                     const JsonValue& doc) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  std::string why;
  std::lock_guard<std::mutex> lk(conn->write_m);
  if (write_frame(conn->fd, doc.dump(), &why) != Status::kOk) {
    conn->open.store(false, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
    std::lock_guard<std::mutex> slk(stats_m_);
    ++counters_.io_errors;
  }
}

void Server::respond_error(const std::shared_ptr<Conn>& conn, std::int64_t id,
                           rt::guard::Status st, const std::string& detail,
                           int retry_after_ms) {
  JsonValue doc = JsonValue::object();
  doc.set("id", static_cast<long long>(id));
  doc.set("op", "solve");
  doc.set("status", std::string(rt::guard::status_name(st)));
  doc.set("detail", detail);
  if (retry_after_ms > 0) doc.set("retry_after_ms", retry_after_ms);
  respond(conn, doc);
  std::lock_guard<std::mutex> lk(stats_m_);
  ++counters_.responses_error;
}

void Server::record_latency(double queue_s, double solve_s, double total_s) {
  std::lock_guard<std::mutex> lk(stats_m_);
  queue_phase_.add(queue_s);
  solve_phase_.add(solve_s);
  if (latencies_s_.size() < kMaxLatencySamples) {
    latencies_s_.push_back(total_s);
  }
}

rt::obs::JsonValue Server::health_json() const {
  const bool draining = draining_.load(std::memory_order_acquire);
  const bool degraded = degraded_.load(std::memory_order_acquire);
  std::size_t queued = 0;
  {
    std::lock_guard<std::mutex> lk(q_m_);
    queued = queue_.size();
  }
  std::size_t live = 0;
  std::size_t retired = 0;
  {
    std::lock_guard<std::mutex> lk(exec_m_);
    live = executors_.size();
    retired = retired_executors_.size();
  }
  const std::size_t limit =
      opts_.queue_watermark >= 1.0
          ? opts_.queue_depth
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       opts_.queue_watermark *
                       static_cast<double>(opts_.queue_depth)));

  JsonValue h = JsonValue::object();
  h.set("state", std::string(draining   ? "draining"
                             : degraded ? "degraded"
                                        : "healthy"));
  // Ready = would this server admit a solve arriving right now.
  h.set("ready", !draining && !degraded && queued < limit && live > 0);
  h.set("queue", static_cast<long long>(queued));
  h.set("queue_limit", static_cast<long long>(limit));
  h.set("queue_depth", static_cast<long long>(opts_.queue_depth));
  h.set("executors_live", static_cast<long long>(live));
  h.set("executors_retired", static_cast<long long>(retired));
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    const long long now = steady_ms();
    std::size_t in_window = 0;
    for (const long long t : breaker_events_ms_) {
      if (t >= now - opts_.breaker_window_ms) ++in_window;
    }
    JsonValue br = JsonValue::object();
    br.set("enabled", opts_.breaker_threshold > 0);
    br.set("open", degraded);
    br.set("events_in_window", static_cast<long long>(in_window));
    br.set("threshold", opts_.breaker_threshold);
    br.set("window_ms", opts_.breaker_window_ms);
    h.set("breaker", std::move(br));
  }
  if (degraded) h.set("retry_after_ms", opts_.breaker_retry_after_ms);
  return h;
}

rt::obs::JsonValue Server::stats_json() const {
  std::lock_guard<std::mutex> lk(stats_m_);
  JsonValue s = JsonValue::object();
  s.set("connections", counters_.connections);
  s.set("requests", counters_.requests);
  s.set("admitted", counters_.admitted);
  s.set("rejected_overloaded", counters_.rejected_overloaded);
  s.set("protocol_errors", counters_.protocol_errors);
  s.set("io_errors", counters_.io_errors);
  s.set("responses_ok", counters_.responses_ok);
  s.set("responses_error", counters_.responses_error);
  s.set("timeouts", counters_.timeouts);

  JsonValue b = JsonValue::object();
  b.set("enabled", opts_.batching);
  b.set("batches", counters_.batches);
  b.set("batched_requests", counters_.batched_requests);
  b.set("max_batch", counters_.max_batch);
  b.set("dedup_shared", counters_.dedup_shared);
  s.set("batching", std::move(b));

  JsonValue rz = JsonValue::object();
  rz.set("state",
         std::string(draining_.load(std::memory_order_acquire) ? "draining"
                     : degraded_.load(std::memory_order_acquire)
                         ? "degraded"
                         : "healthy"));
  rz.set("retry_hints", counters_.retry_hints);
  rz.set("degraded_rejections", counters_.degraded_rejections);
  rz.set("executors_wedged", counters_.executors_wedged);
  rz.set("executors_respawned", counters_.executors_respawned);
  rz.set("breaker_trips", counters_.breaker_trips);
  rz.set("breaker_resets", counters_.breaker_resets);
  {
    const long long now = steady_ms();
    std::size_t in_window = 0;
    for (const long long t : breaker_events_ms_) {
      if (t >= now - opts_.breaker_window_ms) ++in_window;
    }
    rz.set("breaker_events_in_window", static_cast<long long>(in_window));
  }
  s.set("resilience", std::move(rz));

  JsonValue ab = JsonValue::object();
  ab.set("abandoned_batches", counters_.abandoned_batches);
  ab.set("abandoned_threads",
         rt::guard::abandoned_thread_count() - abandoned_baseline_);
  std::size_t in_flight = 0;
  // const_cast-free pruning is not worth a mutable vector: just count.
  for (const std::weak_ptr<void>& w : abandoned_ctxs_) {
    if (!w.expired()) ++in_flight;
  }
  ab.set("abandoned_in_flight", static_cast<long long>(in_flight));
  s.set("abandonment", std::move(ab));

  JsonValue lat = JsonValue::object();
  lat.set("count", queue_phase_.count);
  lat.set("queue_mean_ms", queue_phase_.mean_s() * 1e3);
  lat.set("solve_mean_ms", solve_phase_.mean_s() * 1e3);
  lat.set("p50_ms", percentile(latencies_s_, 0.50) * 1e3);
  lat.set("p99_ms", percentile(latencies_s_, 0.99) * 1e3);
  lat.set("max_ms",
          (latencies_s_.empty()
               ? 0.0
               : *std::max_element(latencies_s_.begin(), latencies_s_.end())) *
              1e3);
  s.set("latency", std::move(lat));

  const BufferArena::Stats as = arena_.stats();
  JsonValue ar = JsonValue::object();
  ar.set("hits", as.hits);
  ar.set("misses", as.misses);
  ar.set("returns", as.returns);
  ar.set("dropped", as.dropped);
  ar.set("cached_buffers", static_cast<long long>(as.cached_buffers));
  ar.set("cached_bytes", static_cast<long long>(as.cached_bytes));
  s.set("arena", std::move(ar));

  const rt::core::PlanCacheStats cs = cache_.stats();
  JsonValue pc = JsonValue::object();
  pc.set("hits", cs.hits);
  pc.set("misses", cs.misses);
  pc.set("pinned_hits", cs.pinned_hits);
  s.set("plan_cache", std::move(pc));

  s.set("plan_store_status",
        std::string(rt::guard::status_name(store_status_)));
  if (!store_detail_.empty()) s.set("plan_store_detail", store_detail_);
  return s;
}

}  // namespace rt::serve
