#include "rt/serve/arena.hpp"

#include <utility>

namespace rt::serve {

rt::array::Array3D<double> BufferArena::acquire(const rt::array::Dims3& d) {
  const std::optional<long> elems = d.checked_alloc_elems();
  if (elems) {
    std::lock_guard<std::mutex> lk(m_);
    auto it = buckets_.find(*elems);
    if (it != buckets_.end() && !it->second.empty()) {
      rt::array::AlignedVector<double> storage = std::move(it->second.back());
      it->second.pop_back();
      if (it->second.empty()) buckets_.erase(it);
      cached_bytes_ -= storage.size() * sizeof(double);
      ++stats_.hits;
      return rt::array::Array3D<double>(d, std::move(storage));
    }
    ++stats_.misses;
  }
  // Fresh path: allocate outside the lock (the allocation may be large and
  // invalid dims must still throw through Array3D's checked_count).
  return rt::array::Array3D<double>(d, rt::array::uninit);
}

void BufferArena::release(rt::array::Array3D<double>&& a) {
  rt::array::AlignedVector<double> storage = a.release();
  if (storage.empty()) return;
  const std::size_t bytes = storage.size() * sizeof(double);
  const long key = static_cast<long>(storage.size());
  std::lock_guard<std::mutex> lk(m_);
  ++stats_.returns;
  if (max_cached_bytes_ != 0 && cached_bytes_ + bytes > max_cached_bytes_) {
    ++stats_.dropped;
    return;  // storage frees on scope exit
  }
  cached_bytes_ += bytes;
  buckets_[key].push_back(std::move(storage));
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  Stats s = stats_;
  s.cached_bytes = cached_bytes_;
  s.cached_buffers = 0;
  for (const auto& [key, bucket] : buckets_) {
    (void)key;
    s.cached_buffers += bucket.size();
  }
  return s;
}

void BufferArena::clear() {
  std::lock_guard<std::mutex> lk(m_);
  buckets_.clear();
  cached_bytes_ = 0;
}

}  // namespace rt::serve
