#include "rt/serve/protocol.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <limits>

#include "rt/guard/fault_injector.hpp"

namespace rt::serve {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Read exactly @p n bytes; short count means EOF (or error with errno
/// set).  @p timed_out distinguishes an SO_RCVTIMEO expiry (EAGAIN /
/// EWOULDBLOCK) from a real transport error.
ssize_t read_full(int fd, char* buf, std::size_t n, bool* io_error,
                  bool* timed_out) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) break;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *timed_out = true;
    } else {
      *io_error = true;
    }
    break;
  }
  return static_cast<ssize_t>(got);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Fetch an integral field: absent → keep default; present but not an
/// integer-valued number or out of [lo, hi] → error.
bool take_int(const rt::obs::JsonValue& doc, const char* key, long long lo,
              long long hi, long long* out, std::string* detail) {
  const rt::obs::JsonValue* v = doc.find(key);
  if (!v) return true;
  if (!v->is_number()) {
    *detail = std::string("field '") + key + "' must be a number";
    return false;
  }
  const double d = v->as_double();
  // Range-check on the double first: casting an out-of-int64-range (or NaN)
  // double in as_int() would be UB.  9.0e18 < 2^63 so the cast below is safe.
  if (!(d >= -9.0e18 && d <= 9.0e18)) {
    *detail = std::string("field '") + key + "' out of range";
    return false;
  }
  const long long i = v->as_int();
  if (static_cast<double>(i) != d) {
    *detail = std::string("field '") + key + "' must be an integer";
    return false;
  }
  if (i < lo || i > hi) {
    *detail = std::string("field '") + key + "' out of range";
    return false;
  }
  *out = i;
  return true;
}

}  // namespace

const char* serve_kernel_name(ServeKernel k) {
  switch (k) {
    case ServeKernel::kJacobi:
      return "JACOBI";
    case ServeKernel::kRedBlack:
      return "REDBLACK";
    case ServeKernel::kResid:
      return "RESID";
    case ServeKernel::kMgrid:
      return "MGRID";
    case ServeKernel::kSor:
      return "SOR";
  }
  return "?";
}

bool parse_serve_kernel(const std::string& s, ServeKernel* out) {
  const std::string u = lower(s);
  for (ServeKernel k :
       {ServeKernel::kJacobi, ServeKernel::kRedBlack, ServeKernel::kResid,
        ServeKernel::kMgrid, ServeKernel::kSor}) {
    if (u == lower(serve_kernel_name(k))) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool parse_transform_token(const std::string& s, rt::core::Transform* out) {
  const std::string u = lower(s);
  for (rt::core::Transform t :
       {rt::core::Transform::kOrig, rt::core::Transform::kTile,
        rt::core::Transform::kEuc3d, rt::core::Transform::kGcdPad,
        rt::core::Transform::kPad, rt::core::Transform::kGcdPadNT}) {
    if (u == lower(std::string(rt::core::transform_name(t)))) {
      *out = t;
      return true;
    }
  }
  return false;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kSolve:
      return "solve";
    case Op::kPing:
      return "ping";
    case Op::kStats:
      return "stats";
    case Op::kHealth:
      return "health";
  }
  return "?";
}

rt::guard::Status parse_request(const rt::obs::JsonValue& doc, Request* out,
                                std::string* detail) {
  using rt::guard::Status;
  std::string local;
  std::string& why = detail ? *detail : local;
  if (!doc.is_object()) {
    why = "request must be a JSON object";
    return Status::kInvalidArgument;
  }
  Request req;

  long long id = req.id;
  if (!take_int(doc, "id", std::numeric_limits<std::int64_t>::min(),
                std::numeric_limits<std::int64_t>::max(), &id, &why)) {
    return Status::kInvalidArgument;
  }
  req.id = id;
  // Record the id even when a later field is rejected: the error response
  // must echo it so a pipelining client can match the rejection to its
  // request (a -1 echo would read as stream desync).
  out->id = id;

  if (const rt::obs::JsonValue* v = doc.find("op")) {
    if (!v->is_string()) {
      why = "field 'op' must be a string";
      return Status::kInvalidArgument;
    }
    const std::string o = lower(v->as_string());
    if (o == "solve") {
      req.op = Op::kSolve;
    } else if (o == "ping") {
      req.op = Op::kPing;
    } else if (o == "stats") {
      req.op = Op::kStats;
    } else if (o == "health") {
      req.op = Op::kHealth;
    } else {
      why = "unknown op '" + v->as_string() + "'";
      return Status::kInvalidArgument;
    }
  }

  long long deadline = 0;
  if (!take_int(doc, "deadline_ms", 0, 86'400'000, &deadline, &why)) {
    return Status::kInvalidArgument;
  }
  req.deadline_ms = static_cast<int>(deadline);

  if (req.op != Op::kSolve) {
    *out = req;
    return Status::kOk;
  }

  SolveParams& p = req.params;
  if (const rt::obs::JsonValue* v = doc.find("kernel")) {
    if (!v->is_string() || !parse_serve_kernel(v->as_string(), &p.kernel)) {
      why = "unknown kernel '" + v->as_string("<non-string>") + "'";
      return Status::kInvalidArgument;
    }
  } else {
    why = "solve request missing 'kernel'";
    return Status::kInvalidArgument;
  }

  // n/k limits: the lower bounds are what the stencils need (one interior
  // point); the upper bound only rejects values that could never be a real
  // grid — the *policy* cap (ServerOptions::max_n) is applied on admission.
  long long n = 0;
  if (!take_int(doc, "n", std::numeric_limits<long long>::min(),
                std::numeric_limits<long long>::max(), &n, &why)) {
    return Status::kInvalidArgument;
  }
  if (!doc.find("n")) {
    why = "solve request missing 'n'";
    return Status::kInvalidArgument;
  }
  if (n < 3) {
    why = "'n' must be >= 3";
    return Status::kInvalidArgument;
  }
  long long k = 0;
  if (!take_int(doc, "k", 3, std::numeric_limits<long long>::max(), &k, &why)) {
    return Status::kInvalidArgument;
  }
  p.n = static_cast<long>(std::min<long long>(n, std::numeric_limits<long>::max()));
  p.k = k > 0 ? static_cast<long>(std::min<long long>(
                    k, std::numeric_limits<long>::max()))
              : p.n;

  // The one check that must be overflow-aware: an n*n*k product that wraps
  // a long is kOverflow, reported before any allocation is attempted.
  const rt::array::Dims3 d = rt::array::Dims3::unpadded(p.n, p.n, p.k);
  if (!d.checked_alloc_elems()) {
    why = "n*n*k overflows the allocation index type";
    return Status::kOverflow;
  }

  long long tsteps = p.tsteps;
  if (!take_int(doc, "tsteps", 1, 1'000'000, &tsteps, &why)) {
    return Status::kInvalidArgument;
  }
  p.tsteps = static_cast<int>(tsteps);

  if (const rt::obs::JsonValue* v = doc.find("tol")) {
    if (!v->is_number() || !std::isfinite(v->as_double()) ||
        v->as_double() < 0) {
      why = "field 'tol' must be a finite non-negative number";
      return Status::kInvalidArgument;
    }
    p.tol = v->as_double();
  }

  if (const rt::obs::JsonValue* v = doc.find("transform")) {
    if (!v->is_string() ||
        !parse_transform_token(v->as_string(), &p.transform)) {
      why = "unknown transform '" + v->as_string("<non-string>") + "'";
      return Status::kInvalidArgument;
    }
  }

  long long seed = static_cast<long long>(p.seed);
  if (!take_int(doc, "seed", 0, std::numeric_limits<long long>::max(), &seed,
                &why)) {
    return Status::kInvalidArgument;
  }
  p.seed = static_cast<std::uint64_t>(seed);

  *out = req;
  return Status::kOk;
}

rt::guard::Status parse_request_text(const std::string& text, Request* out,
                                     std::string* detail) {
  rt::obs::JsonValue doc;
  std::string err;
  if (!rt::obs::json_parse(text, &doc, &err)) {
    if (detail) *detail = "bad JSON: " + err;
    return rt::guard::Status::kInvalidArgument;
  }
  return parse_request(doc, out, detail);
}

FrameResult read_frame(int fd, std::string* payload, std::string* detail) {
  unsigned char prefix[4];
  bool io_error = false;
  bool timed_out = false;
  ssize_t got = read_full(fd, reinterpret_cast<char*>(prefix), 4, &io_error,
                          &timed_out);
  if (timed_out) {
    if (detail) *detail = "recv timed out waiting for a frame";
    return FrameResult::kTimeout;
  }
  if (io_error) {
    if (detail) *detail = errno_text("read");
    return FrameResult::kError;
  }
  if (got == 0) return FrameResult::kEof;
  if (got < 4) {
    if (detail) *detail = "stream ended mid length-prefix";
    return FrameResult::kTruncated;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFrameBytes) {
    if (detail) {
      *detail = "frame length " + std::to_string(len) + " exceeds cap " +
                std::to_string(kMaxFrameBytes);
    }
    return FrameResult::kOversized;
  }
  payload->resize(len);
  if (len == 0) return FrameResult::kOk;
  got = read_full(fd, payload->data(), len, &io_error, &timed_out);
  if (timed_out) {
    if (detail) *detail = "recv timed out mid payload";
    return FrameResult::kTimeout;
  }
  if (io_error) {
    if (detail) *detail = errno_text("read");
    return FrameResult::kError;
  }
  if (static_cast<std::uint32_t>(got) < len) {
    if (detail) *detail = "stream ended mid payload";
    return FrameResult::kTruncated;
  }
  return FrameResult::kOk;
}

rt::guard::Status write_frame(int fd, const std::string& payload,
                              std::string* detail) {
  if (payload.size() > kMaxFrameBytes) {
    if (detail) *detail = "payload exceeds frame cap";
    return rt::guard::Status::kInvalidArgument;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>(len & 0xff));
  frame += payload;

  // Chaos hooks: both fault kinds leave the wire in the torn state a real
  // crash would — a partial frame the peer can only resolve as kTruncated
  // (once the stream ends) or a timeout.  shutdown(), never close(): the
  // fd number stays owned by whoever opened it, so no double-close races.
  using rt::guard::FaultInjector;
  using rt::guard::FaultKind;
  if (FaultInjector::armed(FaultKind::kSockDrop) &&
      FaultInjector::instance().should_fail(FaultKind::kSockDrop)) {
    // Tear mid-prefix, then kill both directions immediately.
    (void)!::write(fd, frame.data(), 2);
    ::shutdown(fd, SHUT_RDWR);
    if (detail) *detail = "injected sockdrop: stream torn mid-frame";
    return rt::guard::Status::kIoError;
  }
  if (FaultInjector::armed(FaultKind::kPartialWrite) &&
      FaultInjector::instance().should_fail(FaultKind::kPartialWrite)) {
    // Write the prefix plus half the payload, then report failure without
    // closing: the short frame sits on the wire until the connection is
    // torn down, exactly like a writer that died mid-send.
    const std::size_t cut = 4 + payload.size() / 2;
    (void)!::write(fd, frame.data(), cut);
    if (detail) *detail = "injected partialwrite: short frame on the wire";
    return rt::guard::Status::kIoError;
  }

  return rt::obs::write_all_fd(fd, frame, detail);
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t checksum_region(const rt::array::Array3D<double>& a) {
  const rt::array::Dims3& d = a.dims();
  std::uint64_t h = 14695981039346656037ull;
  for (long k = 0; k < d.n3; ++k) {
    for (long j = 0; j < d.n2; ++j) {
      // One contiguous logical column (i fastest) per hash call.
      h = fnv1a64(&a(0, j, k), static_cast<std::size_t>(d.n1) * sizeof(double),
                  h);
    }
  }
  return h;
}

std::string checksum_hex(std::uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return s;
}

}  // namespace rt::serve
