#include "rt/serve/client.hpp"

#include <arpa/inet.h>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "rt/serve/protocol.hpp"

namespace rt::serve {

using rt::guard::Status;

namespace {

timeval timeval_from_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  return tv;
}

}  // namespace

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

rt::guard::Expected<Client> Client::connect(int port, int connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {Status::kIoError, std::string("socket: ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  if (connect_timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string why = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      return {Status::kIoError, why};
    }
    Client c;
    c.fd_ = fd;
    return c;
  }

  // Bounded connect: non-blocking connect, poll for writability, then read
  // SO_ERROR for the real outcome.  A peer that never answers (SYN
  // blackhole, dead listener behind a firewall) costs connect_timeout_ms,
  // not forever.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const std::string why = std::string("fcntl: ") + std::strerror(errno);
    ::close(fd);
    return {Status::kIoError, why};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      const std::string why = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      return {Status::kIoError, why};
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&pfd, 1, connect_timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      ::close(fd);
      return {Status::kTimeout, "connect timed out after " +
                                    std::to_string(connect_timeout_ms) +
                                    " ms"};
    }
    if (rc < 0) {
      const std::string why = std::string("poll: ") + std::strerror(errno);
      ::close(fd);
      return {Status::kIoError, why};
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      const std::string why =
          std::string("connect: ") + std::strerror(err != 0 ? err : errno);
      ::close(fd);
      return {Status::kIoError, why};
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    const std::string why = std::string("fcntl: ") + std::strerror(errno);
    ::close(fd);
    return {Status::kIoError, why};
  }
  Client c;
  c.fd_ = fd;
  return c;
}

rt::guard::Status Client::set_timeouts(int send_timeout_ms,
                                       int recv_timeout_ms,
                                       std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  const timeval snd = timeval_from_ms(send_timeout_ms > 0 ? send_timeout_ms : 0);
  const timeval rcv = timeval_from_ms(recv_timeout_ms > 0 ? recv_timeout_ms : 0);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd)) < 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv)) < 0) {
    if (detail) *detail = std::string("setsockopt: ") + std::strerror(errno);
    return Status::kIoError;
  }
  return Status::kOk;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

rt::guard::Status Client::send(const rt::obs::JsonValue& req,
                               std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  return write_frame(fd_, req.dump(), detail);
}

rt::guard::Status Client::recv(rt::obs::JsonValue* out, std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  std::string payload;
  switch (read_frame(fd_, &payload, detail)) {
    case FrameResult::kOk:
      break;
    case FrameResult::kEof:
      if (detail) *detail = "server closed the connection";
      return Status::kIoError;
    case FrameResult::kTruncated:
    case FrameResult::kOversized:
      return Status::kCorrupt;
    case FrameResult::kTimeout:
      // The deadline may have struck mid-frame; this connection's stream
      // position is no longer trustworthy (see client.hpp header).
      return Status::kTimeout;
    case FrameResult::kError:
      return Status::kIoError;
  }
  std::string err;
  if (!rt::obs::json_parse(payload, out, &err)) {
    if (detail) *detail = "bad response JSON: " + err;
    return Status::kCorrupt;
  }
  return Status::kOk;
}

rt::guard::Expected<rt::obs::JsonValue> Client::call(
    const rt::obs::JsonValue& req) {
  std::string why;
  Status st = send(req, &why);
  if (st != Status::kOk) return {st, why};
  rt::obs::JsonValue resp;
  st = recv(&resp, &why);
  if (st != Status::kOk) return {st, why};
  return resp;
}

rt::guard::Status Client::send_raw(const void* data, std::size_t n,
                                   std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  return rt::obs::write_all_fd(
      fd_, std::string(static_cast<const char*>(data), n), detail);
}

}  // namespace rt::serve
