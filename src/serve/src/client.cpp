#include "rt/serve/client.hpp"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "rt/serve/protocol.hpp"

namespace rt::serve {

using rt::guard::Status;

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

rt::guard::Expected<Client> Client::connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {Status::kIoError, std::string("socket: ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return {Status::kIoError, why};
  }
  Client c;
  c.fd_ = fd;
  return c;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

rt::guard::Status Client::send(const rt::obs::JsonValue& req,
                               std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  return write_frame(fd_, req.dump(), detail);
}

rt::guard::Status Client::recv(rt::obs::JsonValue* out, std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  std::string payload;
  switch (read_frame(fd_, &payload, detail)) {
    case FrameResult::kOk:
      break;
    case FrameResult::kEof:
      if (detail) *detail = "server closed the connection";
      return Status::kIoError;
    case FrameResult::kTruncated:
    case FrameResult::kOversized:
      return Status::kCorrupt;
    case FrameResult::kError:
      return Status::kIoError;
  }
  std::string err;
  if (!rt::obs::json_parse(payload, out, &err)) {
    if (detail) *detail = "bad response JSON: " + err;
    return Status::kCorrupt;
  }
  return Status::kOk;
}

rt::guard::Expected<rt::obs::JsonValue> Client::call(
    const rt::obs::JsonValue& req) {
  std::string why;
  Status st = send(req, &why);
  if (st != Status::kOk) return {st, why};
  rt::obs::JsonValue resp;
  st = recv(&resp, &why);
  if (st != Status::kOk) return {st, why};
  return resp;
}

rt::guard::Status Client::send_raw(const void* data, std::size_t n,
                                   std::string* detail) {
  if (fd_ < 0) {
    if (detail) *detail = "not connected";
    return Status::kInvalidArgument;
  }
  return rt::obs::write_all_fd(
      fd_, std::string(static_cast<const char*>(data), n), detail);
}

}  // namespace rt::serve
