#include "rt/serve/solve.hpp"

#include <cmath>
#include <new>
#include <stdexcept>

#include "rt/core/cache_topology.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/mg_solver.hpp"
#include "rt/multigrid/sor_solver.hpp"
#include "rt/par/par_kernels.hpp"

namespace rt::serve {

namespace {

using rt::array::Array3D;
using rt::array::Dims3;
using rt::core::TilingPlan;
using rt::guard::Status;

/// The runner's deterministic grid init, replicated bit-for-bit (tests
/// compare served checksums against grids initialized by this formula and
/// stepped by the same kernels).  Writes the logical region only.
void init_grid(Array3D<double>& a, double scale, rt::par::ThreadPool* pool) {
  auto init_plane = [&a, scale](long k) {
    for (long j = 0; j < a.dims().n2; ++j) {
      for (long i = 0; i < a.dims().n1; ++i) {
        a(i, j, k) = scale * (0.001 * static_cast<double>(i) +
                              0.002 * static_cast<double>(j) +
                              0.003 * static_cast<double>(k));
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for(a.dims().n3, init_plane);
  } else {
    for (long k = 0; k < a.dims().n3; ++k) init_plane(k);
  }
}

/// One relaxed load per sweep, same as the runner's measured loop: lets
/// RT_GUARD_FAULTS=hang wedge a served solve so the deadline/abandonment
/// machinery can be tested end to end.
void hang_check() {
  if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kHang)) {
    rt::guard::FaultInjector::instance().hang_point();
  }
}

rt::kernels::KernelId kernel_id_of(ServeKernel k) {
  switch (k) {
    case ServeKernel::kJacobi:
      return rt::kernels::KernelId::kJacobi;
    case ServeKernel::kRedBlack:
      return rt::kernels::KernelId::kRedBlack;
    case ServeKernel::kResid:
    case ServeKernel::kMgrid:  // MGRID plans its finest-level RESID
      return rt::kernels::KernelId::kResid;
    case ServeKernel::kSor:  // SOR plans its red-black sweep
      return rt::kernels::KernelId::kRedBlack;
  }
  return rt::kernels::KernelId::kJacobi;
}

SolveOutcome solve_kernels(const SolveParams& p, const TilingPlan& plan,
                           std::vector<Array3D<double>>& arrays,
                           rt::par::ThreadPool* pool) {
  SolveOutcome out;
  const int want = num_arrays_for(p.kernel);
  if (static_cast<int>(arrays.size()) < want) {
    out.status = Status::kInvalidArgument;
    out.detail = "internal: batch allocated too few arrays";
    return out;
  }
  for (int i = 0; i < want; ++i) {
    init_grid(arrays[static_cast<std::size_t>(i)], 1.0 / (1.0 + i), pool);
  }
  const bool par = pool != nullptr && pool->num_threads() > 1;

  switch (p.kernel) {
    case ServeKernel::kJacobi: {
      const double c = 1.0 / 6.0;
      Array3D<double>& a = arrays[0];
      Array3D<double>& b = arrays[1];
      for (int t = 0; t < p.tsteps; ++t) {
        hang_check();
        if (par) {
          if (plan.tiled) {
            rt::par::jacobi3d_tiled_par(*pool, a, b, c, plan.tile);
          } else {
            rt::par::jacobi3d_par(*pool, a, b, c);
          }
          rt::par::copy_interior_par(*pool, b, a);
        } else {
          if (plan.tiled) {
            rt::kernels::jacobi3d_tiled(a, b, c, plan.tile);
          } else {
            rt::kernels::jacobi3d(a, b, c);
          }
          rt::kernels::copy_interior(b, a);
        }
      }
      break;
    }
    case ServeKernel::kRedBlack: {
      const double c1 = 0.4, c2 = 0.1;
      Array3D<double>& a = arrays[0];
      for (int t = 0; t < p.tsteps; ++t) {
        hang_check();
        if (par) {
          if (plan.tiled) {
            rt::par::redblack_tiled_par(*pool, a, c1, c2, plan.tile);
          } else {
            rt::par::redblack_par(*pool, a, c1, c2);
          }
        } else {
          if (plan.tiled) {
            rt::kernels::redblack_tiled(a, c1, c2, plan.tile);
          } else {
            rt::kernels::redblack_naive(a, c1, c2);
          }
        }
      }
      break;
    }
    case ServeKernel::kResid: {
      const rt::kernels::ResidCoeffs a = rt::kernels::nas_mg_a();
      Array3D<double>& r = arrays[0];
      Array3D<double>& v = arrays[1];
      Array3D<double>& u = arrays[2];
      for (int t = 0; t < p.tsteps; ++t) {
        hang_check();
        if (par) {
          if (plan.tiled) {
            rt::par::resid_tiled_par(*pool, r, v, u, a, plan.tile);
          } else {
            rt::par::resid_par(*pool, r, v, u, a);
          }
        } else {
          if (plan.tiled) {
            rt::kernels::resid_tiled(r, v, u, a, plan.tile);
          } else {
            rt::kernels::resid(r, v, u, a);
          }
        }
      }
      break;
    }
    default:
      out.status = Status::kInvalidArgument;
      out.detail = "internal: app kernel routed to solve_kernels";
      return out;
  }
  out.iters = p.tsteps;
  out.checksum = checksum_region(arrays[0]);
  return out;
}

SolveOutcome solve_mgrid(const SolveParams& p, const TilingPlan& plan,
                         int app_threads) {
  SolveOutcome out;
  // n = 2^lt + 2 (the NAS-MG shape the V-cycle hierarchy needs).
  const long side = p.n - 2;
  int lt = 0;
  while ((1L << (lt + 1)) <= side) ++lt;
  if (side < 4 || (1L << lt) != side) {
    out.status = Status::kInvalidArgument;
    out.detail = "MGRID needs n = 2^lt + 2 with n >= 6";
    return out;
  }
  if (p.k != 0 && p.k != p.n) {
    out.status = Status::kInvalidArgument;
    out.detail = "MGRID grids are cubic: omit 'k' or set it to n";
    return out;
  }
  rt::multigrid::MgOptions mo;
  mo.lt = lt;
  mo.resid_plan = plan;
  mo.seed = p.seed;
  mo.threads = app_threads;
  hang_check();
  rt::multigrid::MgSolver solver(mo);
  solver.setup();
  double rnorm = 0;
  int iters = 0;
  for (int t = 0; t < p.tsteps; ++t) {
    hang_check();
    solver.iterate();
    ++iters;
    if (p.tol > 0) {
      rnorm = solver.residual_norm();
      if (rnorm < p.tol) break;
    }
  }
  if (p.tol <= 0) rnorm = solver.residual_norm();
  out.iters = iters;
  out.residual = rnorm;
  out.checksum = checksum_region(solver.u());
  return out;
}

SolveOutcome solve_sor(const SolveParams& p, const TilingPlan& plan,
                       int app_threads) {
  SolveOutcome out;
  if (p.k != 0 && p.k != p.n) {
    out.status = Status::kInvalidArgument;
    out.detail = "SOR grids are cubic: omit 'k' or set it to n";
    return out;
  }
  rt::multigrid::SorOptions so;
  so.n = p.n;
  so.plan = plan;
  so.threads = app_threads;
  hang_check();
  rt::multigrid::SorSolver solver(so);
  solver.setup(p.seed);
  // tol == 0 disables convergence exit: residual_linf() is never negative,
  // so solve(0, tsteps) runs the full sweep budget like the batch bench.
  out.iters = solver.solve(p.tol, p.tsteps);
  out.residual = solver.residual_linf();
  out.checksum = checksum_region(solver.u());
  return out;
}

}  // namespace

BatchKey batch_key_of(const SolveParams& p) {
  BatchKey key;
  key.kernel = p.kernel;
  key.n = p.n;
  key.k = p.k > 0 ? p.k : p.n;
  key.transform = p.transform;
  return key;
}

int num_arrays_for(ServeKernel k) {
  switch (k) {
    case ServeKernel::kJacobi:
    case ServeKernel::kRedBlack:
    case ServeKernel::kResid:
      return rt::kernels::kernel_info(kernel_id_of(k)).num_arrays;
    case ServeKernel::kMgrid:
    case ServeKernel::kSor:
      return 0;
  }
  return 0;
}

long serve_cs_elems() {
  const rt::core::CacheTopology& topo = rt::core::host_cache_topology();
  long best = 0;
  for (const rt::core::CacheLevelInfo& l : topo.levels) {
    if (l.level == 1 && (l.type == 'D' || l.type == 'U')) {
      best = l.size_bytes / 8;
    }
  }
  return best > 0 ? best : 32768 / 8;
}

rt::core::PlanReport plan_for_batch(const BatchKey& key, long cs,
                                    rt::core::PlanCache* cache) {
  const rt::core::StencilSpec& spec =
      rt::kernels::kernel_info(kernel_id_of(key.kernel)).spec;
  // Apps plan their sweep at the full grid side; kernel paths at (n, n)
  // with k as the overflow-checked third extent — the same call the batch
  // binaries make, so a rt::tune-pinned winner hits here too.
  const long di = key.n, dj = key.n;
  const long n3 = key.kernel == ServeKernel::kMgrid ||
                          key.kernel == ServeKernel::kSor
                      ? key.n
                      : key.k;
  return cache != nullptr
             ? cache->plan(key.transform, cs, di, dj, spec, n3)
             : rt::core::plan_for_checked(key.transform, cs, di, dj, spec, n3);
}

rt::array::Dims3 batch_dims(const BatchKey& key, const TilingPlan& plan) {
  if (num_arrays_for(key.kernel) == 0) {
    return Dims3::unpadded(key.n, key.n, key.n);
  }
  return Dims3::padded(key.n, key.n, key.k, plan.dip, plan.djp);
}

SolveOutcome run_solve(const SolveParams& p, const TilingPlan& plan,
                       std::vector<Array3D<double>>* arrays,
                       rt::par::ThreadPool* pool, int app_threads) {
  try {
    switch (p.kernel) {
      case ServeKernel::kMgrid:
        return solve_mgrid(p, plan, app_threads);
      case ServeKernel::kSor:
        return solve_sor(p, plan, app_threads);
      default: {
        SolveOutcome out;
        if (arrays == nullptr) {
          out.status = Status::kInvalidArgument;
          out.detail = "internal: kernel path needs batch arrays";
          return out;
        }
        return solve_kernels(p, plan, *arrays, pool);
      }
    }
  } catch (const std::bad_alloc&) {
    SolveOutcome out;
    out.status = Status::kAllocFailed;
    out.detail = "allocation failed during solve";
    return out;
  } catch (const std::exception& e) {
    SolveOutcome out;
    out.status = Status::kInvalidArgument;
    out.detail = std::string("solve failed: ") + e.what();
    return out;
  }
}

}  // namespace rt::serve
