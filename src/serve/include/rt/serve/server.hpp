#pragma once
// rt::serve::Server — a long-lived, multi-tenant solve server over the
// length-prefixed JSON protocol (protocol.hpp).
//
// Threading model:
//   * one acceptor thread (listen socket, 127.0.0.1 only),
//   * one handler thread per connection (reads frames, parses, admits),
//   * `executors` executor threads draining a bounded admission queue.
// Responses are written by whichever thread finishes the work, under a
// per-connection write mutex — so a connection can pipeline requests and
// receive responses out of order (matched by `id`).
//
// Admission: the queue holds at most `queue_depth` requests.  A request
// arriving at a full queue — or after drain began — is rejected
// immediately with status "overloaded"; nothing about an overloaded server
// is slow, which is the point of bounding the queue.
//
// Batching: an executor pops the head request, then pulls every queued
// request with the same BatchKey (kernel, n, k, transform), up to
// `batch_max`.  The batch shares ONE PlanCache/plan-store lookup and ONE
// padded allocation set from the buffer arena; members whose full
// SolveParams are equal additionally share the computed result (dedup).
// Batching changes scheduling, never results: served checksums are
// bit-identical with batching on or off.
//
// Deadlines and abandonment: a batch containing any deadline runs under
// rt::guard::run_with_deadline with the minimum remaining member deadline.
// Everything the watchdog closure touches is owned by a heap-held batch
// context (arrays, a batch-private thread pool, outcome slots behind a
// mutex) — never server members — so an abandoned thread can outlive the
// batch, the connection, even stop(), without touching freed state.  The
// price of abandonment is paid in resources, visibly: the context's
// buffers never return to the arena, and stats report both the process-wide
// abandoned-thread count and how many abandoned contexts are still alive.
//
// Shutdown: stop() closes the listener, flips to draining (new requests
// rejected as overloaded), lets executors finish every admitted request,
// then shuts down connections and joins every thread it owns.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/core/plan_cache.hpp"
#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/obs/phase_timer.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/serve/arena.hpp"
#include "rt/serve/protocol.hpp"
#include "rt/serve/solve.hpp"

namespace rt::serve {

struct ServerOptions {
  int port = 0;           ///< 0 = ephemeral (read back via Server::port())
  int executors = 2;      ///< executor threads draining the queue
  std::size_t queue_depth = 64;  ///< admission bound; beyond = kOverloaded
  bool batching = true;   ///< coalesce same-BatchKey requests
  int batch_max = 8;      ///< max requests fused into one batch
  int solver_threads = 1; ///< threads per solve (kernel sweeps + app pools)
  int default_deadline_ms = 0;   ///< applied when a request sends none
  int watchdog_grace_ms = 500;   ///< grace before a timed-out batch is abandoned
  long max_n = 1024;      ///< policy cap on n (and k): larger = rejected
  std::size_t arena_max_bytes = 1u << 30;  ///< idle buffer-pool cap
  long cs_elems = 0;      ///< planning cache size (0 = serve_cs_elems())
  std::string plan_store; ///< optional rt::tune store to pin at startup
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn acceptor + executors.  kOk or the typed reason
  /// (kIoError: socket/bind/listen failed).  Ignores SIGPIPE process-wide:
  /// a peer closing mid-response must surface as EPIPE on the write, not
  /// kill the server.
  rt::guard::Status start(std::string* detail = nullptr);

  /// Graceful drain (see file header).  Idempotent.
  void stop();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Point-in-time server statistics as a JSON object — the same document
  /// the "stats" op returns on the wire.
  rt::obs::JsonValue stats_json() const;

  /// Outcome of the optional plan-store load at start() (kOk also when no
  /// store was configured; kStale/kCorrupt/... mirror rt::tune).
  rt::guard::Status plan_store_status() const { return store_status_; }

 private:
  struct Conn;
  struct Pending;
  struct BatchCtx;

  void acceptor_loop();
  void handler_loop(std::shared_ptr<Conn> conn);
  void executor_loop();
  void handle_payload(const std::shared_ptr<Conn>& conn,
                      const std::string& payload);
  void admit(const std::shared_ptr<Conn>& conn, const Request& req);
  void run_batch(std::vector<std::unique_ptr<Pending>> batch);
  void respond(const std::shared_ptr<Conn>& conn,
               const rt::obs::JsonValue& doc);
  void respond_error(const std::shared_ptr<Conn>& conn, std::int64_t id,
                     rt::guard::Status st, const std::string& detail);
  void record_latency(double queue_s, double solve_s, double total_s);

  ServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  rt::guard::Status store_status_ = rt::guard::Status::kOk;
  std::string store_detail_;

  rt::core::PlanCache cache_;
  BufferArena arena_;
  /// Shared solver pool for batches WITHOUT a deadline (deadline batches
  /// build their own pool inside the owned context — see file header).
  std::unique_ptr<rt::par::ThreadPool> pool_;

  std::thread acceptor_;
  std::vector<std::thread> executors_;

  std::mutex conns_m_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> handlers_;

  std::mutex q_m_;
  std::condition_variable q_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool stop_executors_ = false;

  mutable std::mutex stats_m_;
  struct Counters {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t io_errors = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_error = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;  ///< members of size->1 batches
    std::uint64_t max_batch = 0;
    std::uint64_t dedup_shared = 0;  ///< members served from a group-mate
    std::uint64_t abandoned_batches = 0;
  } counters_;
  rt::obs::PhaseStats queue_phase_;
  rt::obs::PhaseStats solve_phase_;
  std::vector<double> latencies_s_;  ///< per-request total, capped
  long abandoned_baseline_ = 0;  ///< guard counter at start()
  /// Contexts abandoned to their detached threads; expired entries mean
  /// the thread finished and the context died with it.
  std::vector<std::weak_ptr<void>> abandoned_ctxs_;
};

}  // namespace rt::serve
