#pragma once
// rt::serve::Server — a long-lived, multi-tenant solve server over the
// length-prefixed JSON protocol (protocol.hpp).
//
// Threading model:
//   * one acceptor thread (listen socket, 127.0.0.1 only),
//   * one handler thread per connection (reads frames, parses, admits),
//   * `executors` executor threads draining a bounded admission queue.
// Responses are written by whichever thread finishes the work, under a
// per-connection write mutex — so a connection can pipeline requests and
// receive responses out of order (matched by `id`).
//
// Admission: the queue holds at most `queue_depth` requests.  A request
// arriving at a full queue — or after drain began — is rejected
// immediately with status "overloaded"; nothing about an overloaded server
// is slow, which is the point of bounding the queue.
//
// Batching: an executor pops the head request, then pulls every queued
// request with the same BatchKey (kernel, n, k, transform), up to
// `batch_max`.  The batch shares ONE PlanCache/plan-store lookup and ONE
// padded allocation set from the buffer arena; members whose full
// SolveParams are equal additionally share the computed result (dedup).
// Batching changes scheduling, never results: served checksums are
// bit-identical with batching on or off.
//
// Deadlines and abandonment: a batch containing any deadline runs under
// rt::guard::run_with_deadline with the minimum remaining member deadline.
// Everything the watchdog closure touches is owned by a heap-held batch
// context (arrays, a batch-private thread pool, outcome slots behind a
// mutex) — never server members — so an abandoned thread can outlive the
// batch, the connection, even stop(), without touching freed state.  The
// price of abandonment is paid in resources, visibly: the context's
// buffers never return to the arena, and stats report both the process-wide
// abandoned-thread count and how many abandoned contexts are still alive.
//
// Self-healing (rt::resil, PR 9): a supervisor thread watches the
// executors.  A no-deadline batch runs its work inline on the executor
// thread, so a wedge there (injected hang, pathological solve) eats the
// executor itself; when one stays busy past `executor_wedge_ms` the
// supervisor retires it (the thread exits on its own once the wedge
// clears — wedges here are cooperative, same contract as the watchdog)
// and respawns a replacement, up to `max_respawns`.  Every wedge and
// every watchdog abandonment is an event in a sliding window; when
// `breaker_threshold` events accumulate inside `breaker_window_ms` the
// circuit breaker trips into explicit *degraded* mode — solves rejected
// as overloaded with a `retry_after_ms` hint, ping/stats/health still
// answered — and resets once the window clears.  The "health" op reports
// healthy/degraded/draining plus readiness for clients and supervisors.
//
// Backpressure: every kOverloaded rejection caused by queue pressure
// carries a server-supplied `retry_after_ms` hint (breaker rejections a
// larger one); `queue_watermark` < 1.0 sheds load before the queue is
// hard-full.  rt::resil::RetryingClient honors the hint.
//
// Shutdown: stop() closes the listener, flips to draining (new requests
// rejected as overloaded), lets executors finish every admitted request,
// then shuts down connections and joins every thread it owns — including
// retired executors, whose wedges must have cleared (cancel_hangs() in
// tests) by then.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/core/plan_cache.hpp"
#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/obs/phase_timer.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/serve/arena.hpp"
#include "rt/serve/protocol.hpp"
#include "rt/serve/solve.hpp"

namespace rt::serve {

struct ServerOptions {
  int port = 0;           ///< 0 = ephemeral (read back via Server::port())
  int executors = 2;      ///< executor threads draining the queue
  std::size_t queue_depth = 64;  ///< admission bound; beyond = kOverloaded
  bool batching = true;   ///< coalesce same-BatchKey requests
  int batch_max = 8;      ///< max requests fused into one batch
  int solver_threads = 1; ///< threads per solve (kernel sweeps + app pools)
  int default_deadline_ms = 0;   ///< applied when a request sends none
  int watchdog_grace_ms = 500;   ///< grace before a timed-out batch is abandoned
  long max_n = 1024;      ///< policy cap on n (and k): larger = rejected
  std::size_t arena_max_bytes = 1u << 30;  ///< idle buffer-pool cap
  long cs_elems = 0;      ///< planning cache size (0 = serve_cs_elems())
  std::string plan_store; ///< optional rt::tune store to pin at startup

  // Self-healing knobs (see file header).
  int retry_after_ms = 50;   ///< backpressure hint on queue rejections
  double queue_watermark = 1.0;  ///< shed load at this fraction of depth
  int supervise_interval_ms = 20;  ///< supervisor poll period
  int executor_wedge_ms = 0; ///< busy longer than this = wedged (0 = off)
  int max_respawns = 4;      ///< lifetime cap on replacement executors
  int breaker_threshold = 0; ///< events in window that trip (0 = off)
  int breaker_window_ms = 2000;    ///< abandonment/wedge sliding window
  int breaker_retry_after_ms = 250;  ///< hint while degraded
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn acceptor + executors.  kOk or the typed reason
  /// (kIoError: socket/bind/listen failed).  Ignores SIGPIPE process-wide:
  /// a peer closing mid-response must surface as EPIPE on the write, not
  /// kill the server.
  rt::guard::Status start(std::string* detail = nullptr);

  /// Graceful drain (see file header).  Idempotent.
  void stop();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Point-in-time server statistics as a JSON object — the same document
  /// the "stats" op returns on the wire.
  rt::obs::JsonValue stats_json() const;

  /// The "health" op's document: state ("healthy"/"degraded"/"draining"),
  /// readiness, queue occupancy, executor liveness, breaker state.
  rt::obs::JsonValue health_json() const;

  /// True while the circuit breaker holds the server in degraded mode.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// Outcome of the optional plan-store load at start() (kOk also when no
  /// store was configured; kStale/kCorrupt/... mirror rt::tune).
  rt::guard::Status plan_store_status() const { return store_status_; }

 private:
  struct Conn;
  struct Pending;
  struct BatchCtx;

  /// Heartbeat the supervisor reads: busy_since_ms >= 0 while the thread
  /// is inside run_batch; retired tells the thread to exit at the next
  /// loop turn (a wedged thread observes it once its wedge clears).
  struct ExecState {
    std::atomic<bool> retired{false};
    std::atomic<long long> busy_since_ms{-1};
  };
  struct ExecSlot {
    std::thread th;
    std::shared_ptr<ExecState> state;
  };

  void acceptor_loop();
  void handler_loop(std::shared_ptr<Conn> conn);
  void executor_loop(std::shared_ptr<ExecState> state);
  void supervisor_loop();
  void spawn_executor();  ///< callers hold exec_m_
  void handle_payload(const std::shared_ptr<Conn>& conn,
                      const std::string& payload);
  void admit(const std::shared_ptr<Conn>& conn, const Request& req);
  void run_batch(std::vector<std::unique_ptr<Pending>> batch);
  void respond(const std::shared_ptr<Conn>& conn,
               const rt::obs::JsonValue& doc);
  void respond_error(const std::shared_ptr<Conn>& conn, std::int64_t id,
                     rt::guard::Status st, const std::string& detail,
                     int retry_after_ms = 0);
  void record_latency(double queue_s, double solve_s, double total_s);

  ServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  rt::guard::Status store_status_ = rt::guard::Status::kOk;
  std::string store_detail_;

  rt::core::PlanCache cache_;
  BufferArena arena_;
  /// Shared solver pool for batches WITHOUT a deadline (deadline batches
  /// build their own pool inside the owned context — see file header).
  std::unique_ptr<rt::par::ThreadPool> pool_;

  std::thread acceptor_;

  mutable std::mutex exec_m_;  ///< executors_ / retired_executors_ (never nested
                       ///< inside stats_m_; take it first when both)
  std::vector<ExecSlot> executors_;
  /// Handles of retired (wedged) executors, joined at stop() once their
  /// wedges clear.  Never detached: a wedged executor touches server
  /// members, so its thread must not outlive the Server.
  std::vector<std::thread> retired_executors_;

  std::thread supervisor_;
  std::mutex sup_m_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;
  std::atomic<bool> degraded_{false};

  std::mutex conns_m_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> handlers_;

  mutable std::mutex q_m_;
  std::condition_variable q_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool stop_executors_ = false;

  mutable std::mutex stats_m_;
  struct Counters {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t io_errors = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_error = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;  ///< members of size->1 batches
    std::uint64_t max_batch = 0;
    std::uint64_t dedup_shared = 0;  ///< members served from a group-mate
    std::uint64_t abandoned_batches = 0;
    std::uint64_t retry_hints = 0;   ///< rejections carrying retry_after_ms
    std::uint64_t degraded_rejections = 0;  ///< rejected by the breaker
    std::uint64_t executors_wedged = 0;
    std::uint64_t executors_respawned = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_resets = 0;
  } counters_;
  /// Abandonment/wedge event timestamps (steady ms) for the breaker's
  /// sliding window; guarded by stats_m_.
  std::deque<long long> breaker_events_ms_;
  rt::obs::PhaseStats queue_phase_;
  rt::obs::PhaseStats solve_phase_;
  std::vector<double> latencies_s_;  ///< per-request total, capped
  long abandoned_baseline_ = 0;  ///< guard counter at start()
  /// Contexts abandoned to their detached threads; expired entries mean
  /// the thread finished and the context died with it.
  std::vector<std::weak_ptr<void>> abandoned_ctxs_;
};

}  // namespace rt::serve
