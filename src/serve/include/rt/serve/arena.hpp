#pragma once
// Buffer arena for the solve server: recycles padded Array3D<double>
// allocations across requests so a long-lived server's steady state does
// no large allocations at all.
//
// Buckets are keyed by *allocation element count* (p1*p2*n3), not by
// logical shape: two different (n, transform) pairs whose plans pad to the
// same footprint share buffers, and the Array3D adopt constructor's resize
// is guaranteed to be a no-op on a bucket hit.  Returned storage is stale
// (previous request's values) — every solve path initializes the logical
// region before reading, the same contract as the uninit_t constructor.
//
// Lifetime rule under abandonment (see rt::serve::Server): buffers lent to
// a batch that gets *abandoned* by the deadline watchdog are never
// returned — the abandoned thread owns them until it exits, and handing
// them back while it might still write would hand a torn buffer to the
// next request.  The arena just sees the buffers never come home; the
// server counts the loss in its stats.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "rt/array/array3d.hpp"

namespace rt::serve {

class BufferArena {
 public:
  /// @p max_cached_bytes caps the *idle* pool (buffers held in buckets, not
  /// lent out).  A release that would exceed the cap drops the buffer
  /// instead.  0 = unlimited.
  explicit BufferArena(std::size_t max_cached_bytes = 0)
      : max_cached_bytes_(max_cached_bytes) {}

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// A buffer shaped @p d: recycled when a bucket matches, freshly
  /// allocated (uninitialized, first-touch pending) otherwise.  Throws
  /// std::bad_alloc/std::length_error like Array3D itself; callers turn
  /// that into kAllocFailed.
  rt::array::Array3D<double> acquire(const rt::array::Dims3& d);

  /// Return a buffer to its bucket (or drop it if the idle pool is full).
  void release(rt::array::Array3D<double>&& a);

  struct Stats {
    std::uint64_t hits = 0;        ///< acquires served from a bucket
    std::uint64_t misses = 0;      ///< acquires that allocated fresh
    std::uint64_t returns = 0;     ///< buffers released back
    std::uint64_t dropped = 0;     ///< releases discarded by the byte cap
    std::size_t cached_buffers = 0;
    std::size_t cached_bytes = 0;
  };
  Stats stats() const;

  /// Drop every idle buffer (keeps counters).
  void clear();

 private:
  const std::size_t max_cached_bytes_;
  mutable std::mutex m_;
  std::map<long, std::vector<rt::array::AlignedVector<double>>> buckets_;
  std::size_t cached_bytes_ = 0;
  Stats stats_;
};

}  // namespace rt::serve
