#pragma once
// Wire protocol of the rt::serve solve server: length-prefixed JSON frames
// over a byte stream.  A frame is a 4-byte big-endian payload length
// followed by exactly that many bytes of JSON, parsed with the strict
// rt::obs::json_parse (the same reader the rt::tune plan store trusts for
// durable state — truncated or trailing-garbage documents are rejected,
// never half-parsed).
//
// Hostile-input contract (tested in tests/serve_test.cpp): every malformed
// input — truncated length prefix, oversized length, bad JSON, unknown
// kernel, overflowing N — produces a *typed* error response (or a clean
// close when no response channel is left), never a crash, a hang, or a
// leaked connection.
//
// Request document (op "solve"):
//   {"id": 7, "op": "solve", "kernel": "JACOBI", "n": 48, "k": 48,
//    "tsteps": 2, "tol": 0.0, "transform": "gcdpad", "deadline_ms": 250,
//    "seed": 42}
// `id` is echoed in the response (default -1), `op` defaults to "solve"
// (also: "ping", "stats", "health"), `k` defaults to n (cubic), `tol` > 0
// turns the
// MGRID/SOR apps into convergence-driven solves, `deadline_ms` > 0 runs
// the solve under rt::guard::run_with_deadline.
//
// Response document:
//   {"id": 7, "op": "solve", "status": "ok", "detail": "", "kernel": ...,
//    "plan": {...}, "plan_status": "ok", "checksum": "9f86d081...",
//    "iters": 2, "residual": 0.0, "batch_size": 3, "shared": false,
//    "queue_ms": 0.1, "solve_ms": 2.4, "total_ms": 2.7}
// `status` is a stable rt::guard token ("ok", "invalid_argument",
// "overloaded", "timeout", ...); `checksum` is the FNV-1a hash of the
// result grid's logical region, the bit-identity witness the tests and the
// load bench compare against the batch-binary solve paths.

#include <cstddef>
#include <cstdint>
#include <string>

#include "rt/array/array3d.hpp"
#include "rt/core/plan.hpp"
#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace rt::serve {

/// Hard cap on one frame's payload: a hostile 4 GB length prefix must be
/// rejected before any allocation happens.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// The workloads the server can run: the three paper kernels plus the two
/// whole applications built on them.
enum class ServeKernel { kJacobi, kRedBlack, kResid, kMgrid, kSor };

/// Stable request token ("JACOBI", "REDBLACK", "RESID", "MGRID", "SOR").
const char* serve_kernel_name(ServeKernel k);
bool parse_serve_kernel(const std::string& s, ServeKernel* out);

/// Lower-case transform token ("orig", "tile", "euc3d", "gcdpad", "pad",
/// "gcdpadnt") to rt::core::Transform; also accepts the display names
/// rt::core::transform_name emits.
bool parse_transform_token(const std::string& s, rt::core::Transform* out);

enum class Op { kSolve, kPing, kStats, kHealth };
const char* op_name(Op op);

/// Everything that determines a solve's *result bits*.  Two requests with
/// equal SolveParams produce bit-identical grids, which is what lets the
/// batcher compute a deduplicated group once and share the outcome.
struct SolveParams {
  ServeKernel kernel = ServeKernel::kJacobi;
  long n = 0;       ///< grid points per side (MGRID: must be 2^l + 2)
  long k = 0;       ///< third dimension (kernel paths; 0 = n, cubic)
  int tsteps = 2;   ///< sweeps / iterations (apps: iteration cap)
  double tol = 0;   ///< > 0: convergence target for MGRID/SOR residual
  rt::core::Transform transform = rt::core::Transform::kGcdPad;
  std::uint64_t seed = 42;  ///< charge-placement seed (MGRID/SOR)
  friend bool operator==(const SolveParams&, const SolveParams&) = default;
};

struct Request {
  std::int64_t id = -1;
  Op op = Op::kSolve;
  SolveParams params;
  int deadline_ms = 0;  ///< 0 = no per-request deadline
};

/// Parse + validate one request document.  kOk fills @p out; otherwise the
/// typed reason (kInvalidArgument for unknown kernels / mistyped fields /
/// out-of-range values, kOverflow when n*n*k cannot be represented) with a
/// one-line @p detail.  On failure @p out->id still carries the request's
/// id when it parsed before the rejection, so error responses can echo it
/// (pipelining clients match responses to requests by id).  Limits that
/// are *server policy* (max n, queue depth) are enforced by the server,
/// not here.
rt::guard::Status parse_request(const rt::obs::JsonValue& doc, Request* out,
                                std::string* detail);

/// json_parse + parse_request over raw payload text.
rt::guard::Status parse_request_text(const std::string& text, Request* out,
                                     std::string* detail);

/// Read one frame from @p fd into @p payload.
enum class FrameResult {
  kOk,
  kEof,        ///< clean close before any prefix byte
  kTruncated,  ///< stream ended mid-prefix or mid-payload
  kOversized,  ///< prefix length exceeds kMaxFrameBytes (payload unread)
  kError,      ///< recv failed (errno text in detail)
  kTimeout,    ///< an SO_RCVTIMEO deadline expired mid-read; after a
               ///< timeout the stream position is unknown — the caller
               ///< must treat the connection as unsynced and hang up
};
FrameResult read_frame(int fd, std::string* payload,
                       std::string* detail = nullptr);

/// Write one frame (prefix + payload).  kOk, kTimeout (an SO_SNDTIMEO
/// send deadline expired mid-frame — connection unsynced), or kIoError
/// (short write, closed peer — with SIGPIPE ignored this is EPIPE, not
/// process death).  This is the chaos-injection choke point for both
/// directions of the wire: rt::guard kSockDrop tears the stream after a
/// torn prefix, kPartialWrite leaves a short frame behind (the reader
/// sees kTruncated once the writer hangs up).
rt::guard::Status write_frame(int fd, const std::string& payload,
                              std::string* detail = nullptr);

/// FNV-1a 64-bit over raw bytes.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t h = 14695981039346656037ull);

/// Bit-exact witness of a solve result: FNV-1a over the byte patterns of
/// every element of the *logical* region (padding excluded — two plans
/// with different pads must hash equal when the answers are equal), in
/// storage order (i fastest).
std::uint64_t checksum_region(const rt::array::Array3D<double>& a);

/// 16-hex-digit form used on the wire (JSON integers are signed 64-bit;
/// a hash is not).
std::string checksum_hex(std::uint64_t h);

}  // namespace rt::serve
