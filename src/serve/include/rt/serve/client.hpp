#pragma once
// Minimal blocking client for the rt::serve protocol: what the tests, the
// load bench, and any in-process tooling use to talk to a Server.  One
// connection, synchronous call() for the common case, split send/recv for
// pipelining (responses are matched to requests by `id`, not order), and
// send_raw() so the hostile-input tests can put arbitrary bytes on the
// wire.

#include <cstddef>
#include <cstdint>
#include <string>

#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace rt::serve {

class Client {
 public:
  Client() = default;  ///< disconnected; use connect()
  ~Client() { close(); }
  Client(Client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a server on 127.0.0.1:@p port.
  static rt::guard::Expected<Client> connect(int port);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// One framed request document; does not wait for the response.
  rt::guard::Status send(const rt::obs::JsonValue& req,
                         std::string* detail = nullptr);
  /// Read the next framed response document (blocking).
  rt::guard::Status recv(rt::obs::JsonValue* out,
                         std::string* detail = nullptr);
  /// send() + recv(): the synchronous request/response round trip.
  rt::guard::Expected<rt::obs::JsonValue> call(const rt::obs::JsonValue& req);

  /// Arbitrary bytes, no framing — hostile-input tests only.
  rt::guard::Status send_raw(const void* data, std::size_t n,
                             std::string* detail = nullptr);

 private:
  int fd_ = -1;
};

}  // namespace rt::serve
