#pragma once
// Minimal blocking client for the rt::serve protocol: what the tests, the
// load bench, and any in-process tooling use to talk to a Server.  One
// connection, synchronous call() for the common case, split send/recv for
// pipelining (responses are matched to requests by `id`, not order), and
// send_raw() so the hostile-input tests can put arbitrary bytes on the
// wire.
//
// Timeouts: a dead peer must never hang a client forever.  connect() takes
// an optional connect deadline (non-blocking connect + poll), and
// set_timeouts() arms per-call send/recv deadlines via SO_SNDTIMEO /
// SO_RCVTIMEO.  An expired deadline surfaces as a typed kTimeout — and
// because a timeout can strike mid-frame, the stream position is then
// unknown: the caller must treat the connection as unsynced and reconnect
// (rt::resil::RetryingClient automates exactly that).

#include <cstddef>
#include <cstdint>
#include <string>

#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"

namespace rt::serve {

class Client {
 public:
  Client() = default;  ///< disconnected; use connect()
  ~Client() { close(); }
  Client(Client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a server on 127.0.0.1:@p port.  @p connect_timeout_ms > 0
  /// bounds the connect itself (kTimeout when the peer never answers);
  /// 0 keeps the historical fully-blocking connect.
  static rt::guard::Expected<Client> connect(int port,
                                             int connect_timeout_ms = 0);

  /// Arm per-call socket deadlines (0 = blocking forever, the default).
  /// An expired deadline surfaces as kTimeout from send()/recv().
  rt::guard::Status set_timeouts(int send_timeout_ms, int recv_timeout_ms,
                                 std::string* detail = nullptr);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// One framed request document; does not wait for the response.
  rt::guard::Status send(const rt::obs::JsonValue& req,
                         std::string* detail = nullptr);
  /// Read the next framed response document (blocking, or until the
  /// SO_RCVTIMEO armed by set_timeouts() expires → kTimeout).
  rt::guard::Status recv(rt::obs::JsonValue* out,
                         std::string* detail = nullptr);
  /// send() + recv(): the synchronous request/response round trip.
  rt::guard::Expected<rt::obs::JsonValue> call(const rt::obs::JsonValue& req);

  /// Arbitrary bytes, no framing — hostile-input tests only.
  rt::guard::Status send_raw(const void* data, std::size_t n,
                             std::string* detail = nullptr);

 private:
  int fd_ = -1;
};

}  // namespace rt::serve
