#pragma once
// Request execution for the solve server: the bridge between a parsed
// SolveParams and the repo's kernel/app machinery.
//
// Bit-identity contract (the acceptance bar for serving at all): a served
// JACOBI/REDBLACK/RESID result is bit-identical to the batch-binary path —
// same deterministic grid init as rt::bench's runner, same step structure
// (jacobi3d(+copy_interior) / redblack / resid, tiled when the plan says
// so), checksummed over the logical region only so the plan's padding
// cannot leak into the witness.  MGRID/SOR go through MgSolver/SorSolver
// with the same options the app benches use.
//
// Batching model: requests with equal BatchKey (kernel, n, k, transform)
// share one plan lookup and one padded allocation set; requests with fully
// equal SolveParams additionally share the computed result (dedup).  The
// server owns that grouping; this layer just exposes the key, the plan
// lookup, the allocation shape, and a run function whose only inputs are
// values and caller-owned buffers — nothing in here touches server state,
// which is what makes it safe to run under the abandoning deadline
// watchdog.

#include <vector>

#include "rt/array/array3d.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/guard/status.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/serve/protocol.hpp"

namespace rt::serve {

/// The batching equivalence class: requests that can share a plan lookup
/// and a padded allocation.
struct BatchKey {
  ServeKernel kernel = ServeKernel::kJacobi;
  long n = 0;
  long k = 0;
  rt::core::Transform transform = rt::core::Transform::kOrig;
  friend bool operator==(const BatchKey&, const BatchKey&) = default;
};

BatchKey batch_key_of(const SolveParams& p);

/// Grid arrays the kernel paths allocate (JACOBI 2, REDBLACK 1, RESID 3);
/// 0 for the apps, which allocate inside their solvers.
int num_arrays_for(ServeKernel k);

/// Planning cache-size heuristic for the serving host: the innermost data
/// cache's capacity in doubles (falls back to 32 KB when sysfs is silent).
/// The paper plans against a known cache; a server plans against the
/// machine it landed on.
long serve_cs_elems();

/// One plan lookup per batch through the shared cache (or plan_for_checked
/// when @p cache is null).  Kernel paths plan their own stencil; MGRID
/// plans RESID at the finest level; SOR plans the red-black sweep.
rt::core::PlanReport plan_for_batch(const BatchKey& key, long cs,
                                    rt::core::PlanCache* cache);

/// Allocation shape of one kernel-path grid under @p plan (logical n x n x
/// k padded to dip x djp).  Apps have no shared allocation; returns the
/// unpadded dims for them.
rt::array::Dims3 batch_dims(const BatchKey& key,
                            const rt::core::TilingPlan& plan);

struct SolveOutcome {
  rt::guard::Status status = rt::guard::Status::kOk;
  std::string detail;
  std::uint64_t checksum = 0;  ///< FNV-1a of the result's logical region
  int iters = 0;               ///< sweeps / V-cycles executed
  double residual = 0;         ///< final residual (apps; 0 for kernels)
};

/// Execute one solve.  Kernel paths run on @p arrays — at least
/// num_arrays_for(kernel) buffers shaped batch_dims(), contents stale
/// (this function initializes every logical element before reading).  Apps
/// ignore @p arrays.  @p pool (optional) runs kernel sweeps and init
/// plane-parallel — results stay bit-identical to serial, every grid point
/// is computed independently with the same FP order.  @p app_threads sizes
/// the MGRID/SOR solvers' internal pools.
///
/// Deadline safety: reads/writes only its arguments; checks the rt::guard
/// hang-injection point each sweep so tests can wedge a solve under a
/// deadline.  Never throws — allocation failure inside the apps comes back
/// as kAllocFailed.
SolveOutcome run_solve(const SolveParams& p, const rt::core::TilingPlan& plan,
                       std::vector<rt::array::Array3D<double>>* arrays,
                       rt::par::ThreadPool* pool, int app_threads = 1);

}  // namespace rt::serve
