#pragma once
// rt::resil — the client half of the serve path's resilience layer: a
// retry policy (bounded exponential backoff, deterministic seeded jitter,
// a total retry budget) and a RetryingClient that drives rt::serve::Client
// through transient failure until an answer arrives or the budget is gone.
//
// Why retrying is *safe* here: solves are pure functions of SolveParams
// and every response carries a checksum, so replaying a request can never
// double-apply anything — the worst cost of a retry is wasted work.  That
// purity is what lets the client treat "the stream died mid-frame" and
// "the server said come back later" the same way: reconnect/wait, ask
// again.
//
// What retries and what doesn't:
//   * transport failures (kIoError, kTimeout, kCorrupt frames) — retry on
//     a FRESH connection: after a timeout or torn frame the old stream's
//     position is unknown, and reconnecting guarantees a stale in-flight
//     response can never be matched to a new request;
//   * typed server responses "overloaded" / "timeout" / "alloc_failed" —
//     transient server states; retry on the same connection, pacing by
//     the server's `retry_after_ms` hint when present;
//   * everything else ("invalid_argument", "overflow", "corrupt", ...) —
//     deterministic rejections; retrying cannot change them, fail fast.
//
// Determinism: jitter comes from splitmix64 over (seed, retry ordinal),
// never from wall clock or a global RNG — two runs with the same policy
// see the same backoff schedule, which is what lets the chaos soak
// compare retry-on vs retry-off under identical fault schedules.

#include <cstdint>
#include <string>

#include "rt/guard/status.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/serve/client.hpp"

namespace rt::resil {

struct RetryPolicy {
  int max_attempts = 4;     ///< total tries per call (1 = no retry)
  int base_backoff_ms = 10; ///< backoff before retry k is base * 2^(k-1)
  int max_backoff_ms = 1000;  ///< exponential growth is clamped here
  double jitter = 0.5;      ///< fraction of each backoff randomized [0,1]
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter stream seed
  int budget_ms = 10'000;   ///< total wall budget incl. backoff (0 = none)
  int connect_timeout_ms = 1000;   ///< per-attempt connect deadline
  int send_timeout_ms = 1000;      ///< per-attempt SO_SNDTIMEO
  int recv_timeout_ms = 5000;      ///< per-attempt SO_RCVTIMEO
  bool honor_retry_after = true;   ///< pace by the server's hint

  /// kOk, or kInvalidArgument with a one-line reason (max_attempts < 1,
  /// negative backoff/budget/timeouts, jitter outside [0,1], backoff
  /// bounds out of order).  budget_ms = 0 means unlimited here; the bench
  /// flag layer is stricter and rejects an explicit zero budget.
  rt::guard::Status validate(std::string* detail = nullptr) const;

  /// The jittered backoff before retry @p retry_ordinal (1-based; drives
  /// the exponent).  @p jitter_stream selects an independent deterministic
  /// jitter sequence (RetryingClient passes its call ordinal, so two calls
  /// don't share one schedule).  Pure in (policy, ordinal, stream):
  /// schedules are reproducible run to run.
  int backoff_ms(int retry_ordinal, std::uint64_t jitter_stream = 0) const;
};

/// What one call() actually cost — cumulative across the client's life.
struct RetryStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;       ///< attempts beyond each call's first
  std::uint64_t reconnects = 0;    ///< fresh connections after transport loss
  std::uint64_t transport_retries = 0;  ///< kIoError/kTimeout/kCorrupt
  std::uint64_t overloaded_retries = 0;
  std::uint64_t timeout_retries = 0;    ///< typed "timeout" responses
  std::uint64_t retry_after_waits = 0;  ///< paced by the server's hint
  std::uint64_t budget_exhausted = 0;   ///< calls that died on the budget
  std::uint64_t gave_up = 0;            ///< calls that died on attempts
  std::uint64_t total_backoff_ms = 0;
};

/// rt::serve::Client wrapped in RetryPolicy.  Not thread-safe (one
/// in-flight call per instance, like the raw client).
class RetryingClient {
 public:
  /// Lazily connects on first call().  @p policy is validated: an invalid
  /// one is replaced by a default-constructed policy and the validation
  /// failure is reported by policy_status().
  RetryingClient(int port, RetryPolicy policy = {});

  rt::guard::Status policy_status() const { return policy_status_; }
  const std::string& policy_detail() const { return policy_detail_; }
  const RetryPolicy& policy() const { return policy_; }
  const RetryStats& stats() const { return stats_; }
  bool connected() const { return client_.connected(); }

  /// One request/response round trip under the policy.  Success returns
  /// the response document (its "status" field may still be a non-ok
  /// deterministic rejection — those are returned, not retried, see file
  /// header).  Failure is the *last* attempt's typed status with a detail
  /// line recording how many attempts were spent.
  rt::guard::Expected<rt::obs::JsonValue> call(const rt::obs::JsonValue& req);

  /// Drop the connection (next call reconnects).  Exposed for tests.
  void disconnect();

 private:
  rt::guard::Status ensure_connected(std::string* why);

  int port_;
  RetryPolicy policy_;
  rt::guard::Status policy_status_ = rt::guard::Status::kOk;
  std::string policy_detail_;
  rt::serve::Client client_;
  RetryStats stats_;
  bool ever_connected_ = false;
};

}  // namespace rt::resil
