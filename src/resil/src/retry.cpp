#include "rt/resil/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rt::resil {

using Clock = std::chrono::steady_clock;
using rt::guard::Status;
using rt::obs::JsonValue;

namespace {

/// splitmix64: the standard 64-bit finalizer — cheap, stateless, and good
/// enough to decorrelate jitter streams.  No global RNG, no wall clock.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Typed server statuses that name a *transient* condition.  Everything
/// else a server says is deterministic — retrying cannot change it.
bool retryable_response_status(const std::string& token) {
  return token == "overloaded" || token == "timeout" ||
         token == "alloc_failed";
}

Status status_for_token(const std::string& token) {
  if (token == "overloaded") return Status::kOverloaded;
  if (token == "timeout") return Status::kTimeout;
  if (token == "alloc_failed") return Status::kAllocFailed;
  return Status::kIoError;
}

}  // namespace

rt::guard::Status RetryPolicy::validate(std::string* detail) const {
  const auto fail = [detail](const char* why) {
    if (detail) *detail = why;
    return Status::kInvalidArgument;
  };
  if (max_attempts < 1) return fail("max_attempts must be >= 1");
  if (base_backoff_ms < 0) return fail("base_backoff_ms must be >= 0");
  if (max_backoff_ms < base_backoff_ms) {
    return fail("max_backoff_ms must be >= base_backoff_ms");
  }
  if (!(jitter >= 0.0 && jitter <= 1.0)) {
    return fail("jitter must be in [0, 1]");
  }
  if (budget_ms < 0) return fail("budget_ms must be >= 0 (0 = unlimited)");
  if (connect_timeout_ms < 0 || send_timeout_ms < 0 || recv_timeout_ms < 0) {
    return fail("timeouts must be >= 0 (0 = blocking)");
  }
  return Status::kOk;
}

int RetryPolicy::backoff_ms(int retry_ordinal, std::uint64_t stream) const {
  if (retry_ordinal < 1 || base_backoff_ms <= 0) return 0;
  // base * 2^(ordinal-1), saturating into [base, max].
  const int shift = std::min(retry_ordinal - 1, 30);
  long long exp = static_cast<long long>(base_backoff_ms) << shift;
  exp = std::min<long long>(exp, max_backoff_ms);
  // Deterministic jitter shaves up to `jitter * exp` off: full backoff at
  // u = 0, (1 - jitter) of it at u -> 1.  Never larger than exp, never
  // negative — the schedule stays bounded by the un-jittered curve.
  const std::uint64_t r =
      splitmix64(seed ^ (stream * 0x100000001b3ull +
                         static_cast<std::uint64_t>(retry_ordinal)));
  const double u =
      static_cast<double>(r >> 11) / static_cast<double>(1ull << 53);
  return static_cast<int>(static_cast<double>(exp) * (1.0 - jitter * u));
}

RetryingClient::RetryingClient(int port, RetryPolicy policy)
    : port_(port), policy_(policy) {
  policy_status_ = policy_.validate(&policy_detail_);
  if (policy_status_ != Status::kOk) policy_ = RetryPolicy{};
}

void RetryingClient::disconnect() { client_.close(); }

rt::guard::Status RetryingClient::ensure_connected(std::string* why) {
  if (client_.connected()) return Status::kOk;
  rt::guard::Expected<rt::serve::Client> c =
      rt::serve::Client::connect(port_, policy_.connect_timeout_ms);
  if (!c.ok()) {
    if (why) *why = c.detail();
    return c.status();
  }
  client_ = std::move(c.value());
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  std::string detail;
  const Status st = client_.set_timeouts(policy_.send_timeout_ms,
                                         policy_.recv_timeout_ms, &detail);
  if (st != Status::kOk) {
    if (why) *why = "set_timeouts: " + detail;
    client_.close();
    return st;
  }
  return Status::kOk;
}

rt::guard::Expected<rt::obs::JsonValue> RetryingClient::call(
    const JsonValue& req) {
  const std::uint64_t call_ordinal = stats_.calls++;
  const Clock::time_point t0 = Clock::now();
  const bool budgeted = policy_.budget_ms > 0;
  const Clock::time_point deadline =
      t0 + std::chrono::milliseconds(budgeted ? policy_.budget_ms : 0);

  long long req_id = -1;
  if (const JsonValue* v = req.find("id"); v && v->is_number()) {
    req_id = v->as_int();
  }

  Status last_st = Status::kIoError;
  std::string last_why = "no attempt made";
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    ++stats_.attempts;
    if (attempt > 1) ++stats_.retries;
    if (budgeted && Clock::now() >= deadline) {
      ++stats_.budget_exhausted;
      return {last_st, "retry budget (" + std::to_string(policy_.budget_ms) +
                           " ms) exhausted after " +
                           std::to_string(attempt - 1) +
                           " attempts; last: " + last_why};
    }

    std::string why;
    Status st = ensure_connected(&why);
    JsonValue resp;
    if (st == Status::kOk) st = client_.send(req, &why);
    if (st == Status::kOk) st = client_.recv(&resp, &why);
    if (st == Status::kOk) {
      // A response from a connection we just (re)opened and on which we
      // have exactly one request in flight must echo our id; anything
      // else is stream desync — treat like a torn frame.
      long long resp_id = -1;
      if (const JsonValue* v = resp.find("id"); v && v->is_number()) {
        resp_id = v->as_int();
      }
      if (resp_id != req_id) {
        st = Status::kCorrupt;
        why = "response id " + std::to_string(resp_id) +
              " does not match request id " + std::to_string(req_id);
      }
    }

    int hint_ms = 0;
    bool typed_retry = false;
    if (st != Status::kOk) {
      // Transport-level loss: the stream position is unknown.  Drop the
      // connection so the retry starts clean — a stale in-flight response
      // can never be matched against a fresh socket.
      client_.close();
      ++stats_.transport_retries;
      last_st = st;
      last_why = why;
    } else {
      std::string token = "?";
      if (const JsonValue* v = resp.find("status"); v && v->is_string()) {
        token = v->as_string();
      }
      if (token == "ok" || !retryable_response_status(token)) {
        // Success, or a deterministic rejection the caller must see.
        return resp;
      }
      typed_retry = true;
      if (token == "overloaded") ++stats_.overloaded_retries;
      if (token == "timeout") ++stats_.timeout_retries;
      last_st = status_for_token(token);
      if (const JsonValue* v = resp.find("detail"); v && v->is_string()) {
        last_why = v->as_string();
      } else {
        last_why = "server said " + token;
      }
      if (policy_.honor_retry_after) {
        if (const JsonValue* v = resp.find("retry_after_ms");
            v && v->is_number()) {
          hint_ms = static_cast<int>(v->as_int());
        }
      }
    }

    if (attempt == policy_.max_attempts) break;

    // Pace the next attempt: the jittered exponential curve, or the
    // server's own hint when it gave a larger one.
    int wait_ms = policy_.backoff_ms(attempt, call_ordinal);
    if (typed_retry && hint_ms > wait_ms) {
      wait_ms = hint_ms;
      ++stats_.retry_after_waits;
    }
    if (budgeted &&
        Clock::now() + std::chrono::milliseconds(wait_ms) >= deadline) {
      ++stats_.budget_exhausted;
      return {last_st, "retry budget (" + std::to_string(policy_.budget_ms) +
                           " ms) exhausted after " + std::to_string(attempt) +
                           " attempts; last: " + last_why};
    }
    if (wait_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      stats_.total_backoff_ms += static_cast<std::uint64_t>(wait_ms);
    }
  }

  ++stats_.gave_up;
  return {last_st, std::to_string(policy_.max_attempts) +
                       " attempts exhausted; last: " + last_why};
}

}  // namespace rt::resil
