#include "rt/simd/simd.hpp"

namespace rt::simd {

bool avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdLevel resolve(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff:
      return SimdLevel::kScalar;
    case SimdMode::kAuto:
    case SimdMode::kAvx2:
      return avx2_supported() ? SimdLevel::kAvx2 : SimdLevel::kRows;
  }
  return SimdLevel::kScalar;
}

const char* simd_mode_name(SimdMode m) {
  switch (m) {
    case SimdMode::kOff:
      return "off";
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "?";
}

const char* simd_level_name(SimdLevel l) {
  switch (l) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kRows:
      return "rows";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool parse_simd_mode(const std::string& s, SimdMode* out) {
  if (s == "off") {
    *out = SimdMode::kOff;
  } else if (s == "auto") {
    *out = SimdMode::kAuto;
  } else if (s == "avx2") {
    *out = SimdMode::kAvx2;
  } else {
    return false;
  }
  return true;
}

long align_leading(long p1, long vec) {
  if (vec <= 1) return p1;
  return ((p1 + vec - 1) / vec) * vec;
}

rt::array::Dims3 align_dims(rt::array::Dims3 d, long vec) {
  d.p1 = align_leading(d.p1, vec);
  return d;
}

}  // namespace rt::simd
