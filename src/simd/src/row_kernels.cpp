#include "rt/simd/row_kernels.hpp"

#include <cassert>

#if defined(__x86_64__) || defined(__i386__)
#define RT_SIMD_X86 1
#else
#define RT_SIMD_X86 0
#endif

#if RT_SIMD_X86 && defined(RT_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace rt::simd {
namespace {

#define RT_SIMD_RESTRICT __restrict__
#define RT_SIMD_CAT2(a, b) a##_##b
#define RT_SIMD_CAT(a, b) RT_SIMD_CAT2(a, b)

// Baseline-ISA stamp (whatever the build targets; x86-64 baseline = SSE2).
#define RT_SIMD_FN(name) RT_SIMD_CAT(name, base)
#define RT_SIMD_ATTR
#include "row_sweeps.inl"
#undef RT_SIMD_FN
#undef RT_SIMD_ATTR

#if RT_SIMD_X86
// AVX2 stamp: same loop bodies re-vectorized 4-wide.  target("avx2") does
// not enable FMA, so no contraction can change the add/mul sequence — the
// clone stays bit-identical to the baseline stamp.
#define RT_SIMD_FN(name) RT_SIMD_CAT(name, avx2)
#define RT_SIMD_ATTR __attribute__((target("avx2")))
#include "row_sweeps.inl"
#undef RT_SIMD_FN
#undef RT_SIMD_ATTR

#ifdef RT_SIMD_AVX2
// Hand-written intrinsics for the Jacobi row (the optional RT_SIMD_AVX2
// path): explicit left-associated add chain, exactly the accessor order
// c * (b[i-1] + b[i+1] + bjm + bjp + bkm + bkp), mul and add kept separate
// (no FMA) so each lane reproduces the scalar bit pattern.
__attribute__((target("avx2"))) void jacobi_sweep_intrin(
    double* RT_SIMD_RESTRICT a, const double* RT_SIMD_RESTRICT b, long s1,
    long s2, double c, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  const __m256d vc = _mm256_set1_pd(c);
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT ar = a + off;
      const double* RT_SIMD_RESTRICT bc = b + off;
      long i = ilo;
      for (; i + 4 <= ihi; i += 4) {
        __m256d s = _mm256_add_pd(_mm256_loadu_pd(bc + i - 1),
                                  _mm256_loadu_pd(bc + i + 1));
        s = _mm256_add_pd(s, _mm256_loadu_pd(bc + i - s1));
        s = _mm256_add_pd(s, _mm256_loadu_pd(bc + i + s1));
        s = _mm256_add_pd(s, _mm256_loadu_pd(bc + i - s2));
        s = _mm256_add_pd(s, _mm256_loadu_pd(bc + i + s2));
        _mm256_storeu_pd(ar + i, _mm256_mul_pd(vc, s));
      }
      for (; i < ihi; ++i) {
        ar[i] = c * (bc[i - 1] + bc[i + 1] + bc[i - s1] + bc[i + s1] +
                     bc[i - s2] + bc[i + s2]);
      }
    }
  }
}
#endif  // RT_SIMD_AVX2
#endif  // RT_SIMD_X86

/// True when the AVX2 stamp should run: requested *and* executable here.
bool run_avx2(SimdLevel lvl) {
#if RT_SIMD_X86
  return lvl == SimdLevel::kAvx2 && avx2_supported();
#else
  (void)lvl;
  return false;
#endif
}

}  // namespace

void jacobi_sweep(Array3D<double>& a, const Array3D<double>& b, double c,
                  long ilo, long ihi, long jlo, long jhi, long klo, long khi,
                  SimdLevel lvl) {
  assert(a.dims() == b.dims());
  const long s1 = a.dims().column_stride(), s2 = a.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
#ifdef RT_SIMD_AVX2
    jacobi_sweep_intrin(a.data(), b.data(), s1, s2, c, ilo, ihi, jlo, jhi,
                        klo, khi);
#else
    jacobi_sweep_avx2(a.data(), b.data(), s1, s2, c, ilo, ihi, jlo, jhi, klo,
                      khi);
#endif
    return;
  }
#endif
  (void)lvl;
  jacobi_sweep_base(a.data(), b.data(), s1, s2, c, ilo, ihi, jlo, jhi, klo,
                    khi);
}

void copy_sweep(Array3D<double>& dst, const Array3D<double>& src, long ilo,
                long ihi, long jlo, long jhi, long klo, long khi,
                SimdLevel lvl) {
  assert(dst.dims() == src.dims());
  const long s1 = dst.dims().column_stride(), s2 = dst.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    copy_sweep_avx2(dst.data(), src.data(), s1, s2, ilo, ihi, jlo, jhi, klo,
                    khi);
    return;
  }
#endif
  (void)lvl;
  copy_sweep_base(dst.data(), src.data(), s1, s2, ilo, ihi, jlo, jhi, klo,
                  khi);
}

void redblack_sweep(Array3D<double>& a, double c1, double c2, long parity,
                    long ilo, long ihi, long jlo, long jhi, long klo,
                    long khi, SimdLevel lvl) {
  const long s1 = a.dims().column_stride(), s2 = a.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    redblack_sweep_avx2(a.data(), s1, s2, c1, c2, parity, ilo, ihi, jlo, jhi,
                        klo, khi);
    return;
  }
#endif
  (void)lvl;
  redblack_sweep_base(a.data(), s1, s2, c1, c2, parity, ilo, ihi, jlo, jhi,
                      klo, khi);
}

void resid_sweep(Array3D<double>& r, const Array3D<double>& v,
                 const Array3D<double>& u, const rt::kernels::ResidCoeffs& a,
                 long ilo, long ihi, long jlo, long jhi, long klo, long khi,
                 SimdLevel lvl) {
  assert(r.dims() == v.dims() && r.dims() == u.dims());
  const long s1 = r.dims().column_stride(), s2 = r.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    resid_sweep_avx2(r.data(), v.data(), u.data(), s1, s2, a[0], a[1], a[2],
                     a[3], ilo, ihi, jlo, jhi, klo, khi);
    return;
  }
#endif
  (void)lvl;
  resid_sweep_base(r.data(), v.data(), u.data(), s1, s2, a[0], a[1], a[2],
                   a[3], ilo, ihi, jlo, jhi, klo, khi);
}

void redblack_rhs_sweep(Array3D<double>& a, const Array3D<double>& r,
                        double c1, double c2, long parity, long ilo, long ihi,
                        long jlo, long jhi, long klo, long khi,
                        SimdLevel lvl) {
  assert(a.dims() == r.dims());
  const long s1 = a.dims().column_stride(), s2 = a.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    redblack_rhs_sweep_avx2(a.data(), r.data(), s1, s2, c1, c2, parity, ilo,
                            ihi, jlo, jhi, klo, khi);
    return;
  }
#endif
  (void)lvl;
  redblack_rhs_sweep_base(a.data(), r.data(), s1, s2, c1, c2, parity, ilo,
                          ihi, jlo, jhi, klo, khi);
}

void psinv_sweep(Array3D<double>& u, const Array3D<double>& r,
                 const PsinvCoeffs& c, long ilo, long ihi, long jlo, long jhi,
                 long klo, long khi, SimdLevel lvl) {
  assert(u.dims() == r.dims());
  const long s1 = u.dims().column_stride(), s2 = u.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    psinv_sweep_avx2(u.data(), r.data(), s1, s2, c[0], c[1], c[2], c[3], ilo,
                     ihi, jlo, jhi, klo, khi);
    return;
  }
#endif
  (void)lvl;
  psinv_sweep_base(u.data(), r.data(), s1, s2, c[0], c[1], c[2], c[3], ilo,
                   ihi, jlo, jhi, klo, khi);
}

void rprj3_sweep(Array3D<double>& s, const Array3D<double>& r, long j1lo,
                 long j1hi, long j2lo, long j2hi, long j3lo, long j3hi,
                 SimdLevel lvl) {
  const long cs1 = s.dims().column_stride(), cs2 = s.dims().plane_stride();
  const long fs1 = r.dims().column_stride(), fs2 = r.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    rprj3_sweep_avx2(s.data(), r.data(), cs1, cs2, fs1, fs2, j1lo, j1hi,
                     j2lo, j2hi, j3lo, j3hi);
    return;
  }
#endif
  (void)lvl;
  rprj3_sweep_base(s.data(), r.data(), cs1, cs2, fs1, fs2, j1lo, j1hi, j2lo,
                   j2hi, j3lo, j3hi);
}

void interp_sweep(Array3D<double>& u, const Array3D<double>& z, long ilo,
                  long ihi, long jlo, long jhi, long klo, long khi,
                  SimdLevel lvl) {
  const long us1 = u.dims().column_stride(), us2 = u.dims().plane_stride();
  const long zs1 = z.dims().column_stride(), zs2 = z.dims().plane_stride();
#if RT_SIMD_X86
  if (run_avx2(lvl)) {
    interp_sweep_avx2(u.data(), z.data(), us1, us2, zs1, zs2, ilo, ihi, jlo,
                      jhi, klo, khi);
    return;
  }
#endif
  (void)lvl;
  interp_sweep_base(u.data(), z.data(), us1, us2, zs1, zs2, ilo, ihi, jlo,
                    jhi, klo, khi);
}

void jacobi3d_rows(Array3D<double>& a, const Array3D<double>& b, double c,
                   SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  jacobi_sweep(a, b, c, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1, lvl);
}

void jacobi3d_tiled_rows(Array3D<double>& a, const Array3D<double>& b,
                         double c, IterTile t, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  if (t.ti <= 0 || t.tj <= 0) return;
  for (long jj = 1; jj < n2 - 1; jj += t.tj) {
    const long jhi = std::min(jj + t.tj, n2 - 1);
    for (long ii = 1; ii < n1 - 1; ii += t.ti) {
      const long ihi = std::min(ii + t.ti, n1 - 1);
      jacobi_sweep(a, b, c, ii, ihi, jj, jhi, 1, n3 - 1, lvl);
    }
  }
}

void copy_interior_rows(Array3D<double>& dst, const Array3D<double>& src,
                        SimdLevel lvl) {
  const long n1 = dst.n1(), n2 = dst.n2(), n3 = dst.n3();
  copy_sweep(dst, src, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1, lvl);
}

void redblack_rows(Array3D<double>& a, double c1, double c2, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    redblack_sweep(a, c1, c2, parity, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1, lvl);
  }
}

void redblack_tiled_rows(Array3D<double>& a, double c1, double c2, IterTile t,
                         SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  if (t.ti <= 0 || t.tj <= 0) return;
  for (long parity = 0; parity < 2; ++parity) {
    for (long jj = 1; jj < n2 - 1; jj += t.tj) {
      const long jhi = std::min(jj + t.tj, n2 - 1);
      for (long ii = 1; ii < n1 - 1; ii += t.ti) {
        const long ihi = std::min(ii + t.ti, n1 - 1);
        redblack_sweep(a, c1, c2, parity, ii, ihi, jj, jhi, 1, n3 - 1, lvl);
      }
    }
  }
}

void resid_rows(Array3D<double>& r, const Array3D<double>& v,
                const Array3D<double>& u, const rt::kernels::ResidCoeffs& a,
                SimdLevel lvl) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  resid_sweep(r, v, u, a, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1, lvl);
}

void resid_tiled_rows(Array3D<double>& r, const Array3D<double>& v,
                      const Array3D<double>& u,
                      const rt::kernels::ResidCoeffs& a, IterTile t,
                      SimdLevel lvl) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  if (t.ti <= 0 || t.tj <= 0) return;
  for (long jj = 1; jj < n2 - 1; jj += t.tj) {
    const long jhi = std::min(jj + t.tj, n2 - 1);
    for (long ii = 1; ii < n1 - 1; ii += t.ti) {
      const long ihi = std::min(ii + t.ti, n1 - 1);
      resid_sweep(r, v, u, a, ii, ihi, jj, jhi, 1, n3 - 1, lvl);
    }
  }
}

void redblack_rhs_rows(Array3D<double>& a, const Array3D<double>& r,
                       double c1, double c2, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    redblack_rhs_sweep(a, r, c1, c2, parity, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1,
                       lvl);
  }
}

void redblack_tiled_rhs_rows(Array3D<double>& a, const Array3D<double>& r,
                             double c1, double c2, IterTile t, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  if (t.ti <= 0 || t.tj <= 0) return;
  for (long parity = 0; parity < 2; ++parity) {
    for (long jj = 1; jj < n2 - 1; jj += t.tj) {
      const long jhi = std::min(jj + t.tj, n2 - 1);
      for (long ii = 1; ii < n1 - 1; ii += t.ti) {
        const long ihi = std::min(ii + t.ti, n1 - 1);
        redblack_rhs_sweep(a, r, c1, c2, parity, ii, ihi, jj, jhi, 1, n3 - 1,
                           lvl);
      }
    }
  }
}

void psinv_rows(Array3D<double>& u, const Array3D<double>& r,
                const PsinvCoeffs& c, SimdLevel lvl) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  psinv_sweep(u, r, c, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1, lvl);
}

void psinv_tiled_rows(Array3D<double>& u, const Array3D<double>& r,
                      const PsinvCoeffs& c, IterTile t, SimdLevel lvl) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  if (t.ti <= 0 || t.tj <= 0) return;
  for (long jj = 1; jj < n2 - 1; jj += t.tj) {
    const long jhi = std::min(jj + t.tj, n2 - 1);
    for (long ii = 1; ii < n1 - 1; ii += t.ti) {
      const long ihi = std::min(ii + t.ti, n1 - 1);
      psinv_sweep(u, r, c, ii, ihi, jj, jhi, 1, n3 - 1, lvl);
    }
  }
}

void rprj3_rows(Array3D<double>& s, const Array3D<double>& r, SimdLevel lvl) {
  const long m1 = s.n1(), m2 = s.n2(), m3 = s.n3();
  rprj3_sweep(s, r, 1, m1 - 1, 1, m2 - 1, 1, m3 - 1, lvl);
}

void interp_add_rows(Array3D<double>& u, const Array3D<double>& z,
                     SimdLevel lvl) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  interp_sweep(u, z, 1, n1 - 1, 1, n2 - 1, 1, n3 - 1, lvl);
}

}  // namespace rt::simd
