// Row-sweep loop bodies, textually stamped once per instruction set by
// row_kernels.cpp: the including TU defines RT_SIMD_FN(name) (appends the
// ISA suffix) and RT_SIMD_ATTR (empty, or a target("...") attribute under
// which GCC/Clang re-vectorize these exact loops for the wider ISA).
// Keeping one source of truth for the loop bodies is what guarantees the
// ISA variants stay bit-identical to each other: the floating-point
// expressions below are *the* definition, and every stamp executes them
// with the same per-element operation order (vectorization across the
// contiguous I dimension never reassociates within an element).
//
// The expressions must mirror the accessor kernels term for term —
// jacobi3d's sum order differs from rb_update's, and resid_point's s1/s2/
// s3 groups have a fixed neighbour sequence; do not "tidy" them.

RT_SIMD_ATTR void RT_SIMD_FN(jacobi_sweep)(
    double* RT_SIMD_RESTRICT a, const double* RT_SIMD_RESTRICT b, long s1,
    long s2, double c, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT ar = a + off;
      const double* RT_SIMD_RESTRICT bc = b + off;
      const double* RT_SIMD_RESTRICT bjm = bc - s1;
      const double* RT_SIMD_RESTRICT bjp = bc + s1;
      const double* RT_SIMD_RESTRICT bkm = bc - s2;
      const double* RT_SIMD_RESTRICT bkp = bc + s2;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) {
        ar[i] = c * (bc[i - 1] + bc[i + 1] + bjm[i] + bjp[i] + bkm[i] +
                     bkp[i]);
      }
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(copy_sweep)(
    double* RT_SIMD_RESTRICT dst, const double* RT_SIMD_RESTRICT src,
    long s1, long s2, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT d = dst + off;
      const double* RT_SIMD_RESTRICT s = src + off;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) d[i] = s[i];
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(redblack_sweep)(
    double* RT_SIMD_RESTRICT a, long s1, long s2, double c1, double c2,
    long parity, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      double* RT_SIMD_RESTRICT ar = a + s1 * j + s2 * k;
      const double* RT_SIMD_RESTRICT ajm = ar - s1;
      const double* RT_SIMD_RESTRICT ajp = ar + s1;
      const double* RT_SIMD_RESTRICT akm = ar - s2;
      const double* RT_SIMD_RESTRICT akp = ar + s2;
      // First i >= ilo with (i + j + k) % 2 == parity, then stride 2:
      // within one colour the row never reads what it writes (all six
      // neighbours are the opposite colour).
      for (long i = ilo + (((ilo + j + k) ^ parity) & 1); i < ihi; i += 2) {
        ar[i] = c1 * ar[i] + c2 * (ar[i - 1] + ajm[i] + ar[i + 1] + ajp[i] +
                                   akm[i] + akp[i]);
      }
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(redblack_rhs_sweep)(
    double* RT_SIMD_RESTRICT a, const double* RT_SIMD_RESTRICT r, long s1,
    long s2, double c1, double c2, long parity, long ilo, long ihi, long jlo,
    long jhi, long klo, long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT ar = a + off;
      const double* RT_SIMD_RESTRICT rr = r + off;
      const double* RT_SIMD_RESTRICT ajm = ar - s1;
      const double* RT_SIMD_RESTRICT ajp = ar + s1;
      const double* RT_SIMD_RESTRICT akm = ar - s2;
      const double* RT_SIMD_RESTRICT akp = ar + s2;
      // Same colour walk as redblack_sweep, plus the rb_update_rhs
      // constant term appended after the neighbour sum.
      for (long i = ilo + (((ilo + j + k) ^ parity) & 1); i < ihi; i += 2) {
        ar[i] = c1 * ar[i] + c2 * (ar[i - 1] + ajm[i] + ar[i + 1] + ajp[i] +
                                   akm[i] + akp[i]) +
                rr[i];
      }
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(resid_sweep)(
    double* RT_SIMD_RESTRICT r, const double* RT_SIMD_RESTRICT v,
    const double* RT_SIMD_RESTRICT u, long s1, long s2, double a0, double a1,
    double a2, double a3, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT rr = r + off;
      const double* RT_SIMD_RESTRICT vv = v + off;
      const double* RT_SIMD_RESTRICT u00 = u + off;
      const double* RT_SIMD_RESTRICT ujm = u00 - s1;
      const double* RT_SIMD_RESTRICT ujp = u00 + s1;
      const double* RT_SIMD_RESTRICT ukm = u00 - s2;
      const double* RT_SIMD_RESTRICT ukp = u00 + s2;
      const double* RT_SIMD_RESTRICT umm = u00 - s1 - s2;
      const double* RT_SIMD_RESTRICT upm = u00 + s1 - s2;
      const double* RT_SIMD_RESTRICT ump = u00 - s1 + s2;
      const double* RT_SIMD_RESTRICT upp = u00 + s1 + s2;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) {
        const double t1 = u00[i - 1] + u00[i + 1] + ujm[i] + ujp[i] +
                          ukm[i] + ukp[i];
        const double t2 = ujm[i - 1] + ujm[i + 1] + ujp[i - 1] + ujp[i + 1] +
                          umm[i] + upm[i] + ump[i] + upp[i] + ukm[i - 1] +
                          ukp[i - 1] + ukm[i + 1] + ukp[i + 1];
        const double t3 = umm[i - 1] + umm[i + 1] + upm[i - 1] + upm[i + 1] +
                          ump[i - 1] + ump[i + 1] + upp[i - 1] + upp[i + 1];
        rr[i] = vv[i] - a0 * u00[i] - a1 * t1 - a2 * t2 - a3 * t3;
      }
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(psinv_sweep)(
    double* RT_SIMD_RESTRICT u, const double* RT_SIMD_RESTRICT r, long s1,
    long s2, double c0, double c1, double c2, double c3, long ilo, long ihi,
    long jlo, long jhi, long klo, long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT ur = u + off;
      const double* RT_SIMD_RESTRICT rc = r + off;
      const double* RT_SIMD_RESTRICT rjm = rc - s1;
      const double* RT_SIMD_RESTRICT rjp = rc + s1;
      const double* RT_SIMD_RESTRICT rkm = rc - s2;
      const double* RT_SIMD_RESTRICT rkp = rc + s2;
      const double* RT_SIMD_RESTRICT rmm = rc - s1 - s2;
      const double* RT_SIMD_RESTRICT rpm = rc + s1 - s2;
      const double* RT_SIMD_RESTRICT rmp = rc - s1 + s2;
      const double* RT_SIMD_RESTRICT rpp = rc + s1 + s2;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) {
        const double t1 = rc[i - 1] + rc[i + 1] + rjm[i] + rjp[i] + rkm[i] +
                          rkp[i];
        const double t2 = rjm[i - 1] + rjm[i + 1] + rjp[i - 1] + rjp[i + 1] +
                          rmm[i] + rpm[i] + rmp[i] + rpp[i] + rkm[i - 1] +
                          rkp[i - 1] + rkm[i + 1] + rkp[i + 1];
        const double t3 = rmm[i - 1] + rmm[i + 1] + rpm[i - 1] + rpm[i + 1] +
                          rmp[i - 1] + rmp[i + 1] + rpp[i - 1] + rpp[i + 1];
        ur[i] = ur[i] + c0 * rc[i] + c1 * t1 + c2 * t2 + c3 * t3;
      }
    }
  }
}

// Full-weighting restriction over a coarse sub-box.  Strides come in two
// flavours (cs* coarse output, fs* fine input); coarse j maps to fine
// centre i = 2j - 1.  The faces/edges/corners accumulators are filled in
// rt::multigrid::rprj3's exact d3/d2/d1 traversal order — the interleaved
// += sequence below *is* that walk, with same-group additions preserved.
RT_SIMD_ATTR void RT_SIMD_FN(rprj3_sweep)(
    double* RT_SIMD_RESTRICT s, const double* RT_SIMD_RESTRICT r, long cs1,
    long cs2, long fs1, long fs2, long j1lo, long j1hi, long j2lo, long j2hi,
    long j3lo, long j3hi) {
  for (long j3 = j3lo; j3 < j3hi; ++j3) {
    const long i3 = 2 * j3 - 1;
    for (long j2 = j2lo; j2 < j2hi; ++j2) {
      const long i2 = 2 * j2 - 1;
      double* RT_SIMD_RESTRICT sr = s + cs1 * j2 + cs2 * j3;
      const double* RT_SIMD_RESTRICT rc = r + fs1 * i2 + fs2 * i3;
      const double* RT_SIMD_RESTRICT rjm = rc - fs1;
      const double* RT_SIMD_RESTRICT rjp = rc + fs1;
      const double* RT_SIMD_RESTRICT rkm = rc - fs2;
      const double* RT_SIMD_RESTRICT rkp = rc + fs2;
      const double* RT_SIMD_RESTRICT rmm = rc - fs1 - fs2;
      const double* RT_SIMD_RESTRICT rpm = rc + fs1 - fs2;
      const double* RT_SIMD_RESTRICT rmp = rc - fs1 + fs2;
      const double* RT_SIMD_RESTRICT rpp = rc + fs1 + fs2;
#pragma omp simd
      for (long j1 = j1lo; j1 < j1hi; ++j1) {
        const long i1 = 2 * j1 - 1;
        double faces = 0, edges = 0, corners = 0;
        corners += rmm[i1 - 1];
        edges += rmm[i1];
        corners += rmm[i1 + 1];
        edges += rkm[i1 - 1];
        faces += rkm[i1];
        edges += rkm[i1 + 1];
        corners += rpm[i1 - 1];
        edges += rpm[i1];
        corners += rpm[i1 + 1];
        edges += rjm[i1 - 1];
        faces += rjm[i1];
        edges += rjm[i1 + 1];
        faces += rc[i1 - 1];
        faces += rc[i1 + 1];
        edges += rjp[i1 - 1];
        faces += rjp[i1];
        edges += rjp[i1 + 1];
        corners += rmp[i1 - 1];
        edges += rmp[i1];
        corners += rmp[i1 + 1];
        edges += rkp[i1 - 1];
        faces += rkp[i1];
        edges += rkp[i1 + 1];
        corners += rpp[i1 - 1];
        edges += rpp[i1];
        corners += rpp[i1 + 1];
        sr[j1] = 0.5 * rc[i1] + 0.25 * faces + 0.125 * edges +
                 0.0625 * corners;
      }
    }
  }
}

// Trilinear prolongation over a fine sub-box: u_fine += P z_coarse.  The
// j/k axis decompositions (odd index -> one coarse weight 1, even -> two
// weights 0.5) are hoisted per row into up to four coarse row pointers;
// the per-element i-axis branch and the kk/jj/ii accumulation order are
// rt::multigrid::interp_add's, verbatim.
RT_SIMD_ATTR void RT_SIMD_FN(interp_sweep)(
    double* RT_SIMD_RESTRICT u, const double* RT_SIMD_RESTRICT z, long us1,
    long us2, long zs1, long zs2, long ilo, long ihi, long jlo, long jhi,
    long klo, long khi) {
  for (long i3 = klo; i3 < khi; ++i3) {
    long k_idx[2];
    double k_w[2];
    int kn;
    if (i3 & 1) {
      k_idx[0] = k_idx[1] = (i3 + 1) / 2;
      k_w[0] = 1.0;
      k_w[1] = 0.0;
      kn = 1;
    } else {
      k_idx[0] = i3 / 2;
      k_idx[1] = i3 / 2 + 1;
      k_w[0] = k_w[1] = 0.5;
      kn = 2;
    }
    for (long i2 = jlo; i2 < jhi; ++i2) {
      long j_idx[2];
      double j_w[2];
      int jn;
      if (i2 & 1) {
        j_idx[0] = j_idx[1] = (i2 + 1) / 2;
        j_w[0] = 1.0;
        j_w[1] = 0.0;
        jn = 1;
      } else {
        j_idx[0] = i2 / 2;
        j_idx[1] = i2 / 2 + 1;
        j_w[0] = j_w[1] = 0.5;
        jn = 2;
      }
      double* RT_SIMD_RESTRICT ur = u + us1 * i2 + us2 * i3;
      const double* zr[2][2];
      for (int kk = 0; kk < kn; ++kk) {
        for (int jj = 0; jj < jn; ++jj) {
          zr[kk][jj] = z + zs1 * j_idx[jj] + zs2 * k_idx[kk];
        }
      }
      for (long i1 = ilo; i1 < ihi; ++i1) {
        long i_idx[2];
        double i_w[2];
        int in_;
        if (i1 & 1) {
          i_idx[0] = i_idx[1] = (i1 + 1) / 2;
          i_w[0] = 1.0;
          i_w[1] = 0.0;
          in_ = 1;
        } else {
          i_idx[0] = i1 / 2;
          i_idx[1] = i1 / 2 + 1;
          i_w[0] = i_w[1] = 0.5;
          in_ = 2;
        }
        double acc = 0;
        for (int kk = 0; kk < kn; ++kk) {
          for (int jj = 0; jj < jn; ++jj) {
            for (int ii = 0; ii < in_; ++ii) {
              acc += k_w[kk] * j_w[jj] * i_w[ii] * zr[kk][jj][i_idx[ii]];
            }
          }
        }
        ur[i1] = ur[i1] + acc;
      }
    }
  }
}
