// Row-sweep loop bodies, textually stamped once per instruction set by
// row_kernels.cpp: the including TU defines RT_SIMD_FN(name) (appends the
// ISA suffix) and RT_SIMD_ATTR (empty, or a target("...") attribute under
// which GCC/Clang re-vectorize these exact loops for the wider ISA).
// Keeping one source of truth for the loop bodies is what guarantees the
// ISA variants stay bit-identical to each other: the floating-point
// expressions below are *the* definition, and every stamp executes them
// with the same per-element operation order (vectorization across the
// contiguous I dimension never reassociates within an element).
//
// The expressions must mirror the accessor kernels term for term —
// jacobi3d's sum order differs from rb_update's, and resid_point's s1/s2/
// s3 groups have a fixed neighbour sequence; do not "tidy" them.

RT_SIMD_ATTR void RT_SIMD_FN(jacobi_sweep)(
    double* RT_SIMD_RESTRICT a, const double* RT_SIMD_RESTRICT b, long s1,
    long s2, double c, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT ar = a + off;
      const double* RT_SIMD_RESTRICT bc = b + off;
      const double* RT_SIMD_RESTRICT bjm = bc - s1;
      const double* RT_SIMD_RESTRICT bjp = bc + s1;
      const double* RT_SIMD_RESTRICT bkm = bc - s2;
      const double* RT_SIMD_RESTRICT bkp = bc + s2;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) {
        ar[i] = c * (bc[i - 1] + bc[i + 1] + bjm[i] + bjp[i] + bkm[i] +
                     bkp[i]);
      }
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(copy_sweep)(
    double* RT_SIMD_RESTRICT dst, const double* RT_SIMD_RESTRICT src,
    long s1, long s2, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT d = dst + off;
      const double* RT_SIMD_RESTRICT s = src + off;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) d[i] = s[i];
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(redblack_sweep)(
    double* RT_SIMD_RESTRICT a, long s1, long s2, double c1, double c2,
    long parity, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      double* RT_SIMD_RESTRICT ar = a + s1 * j + s2 * k;
      const double* RT_SIMD_RESTRICT ajm = ar - s1;
      const double* RT_SIMD_RESTRICT ajp = ar + s1;
      const double* RT_SIMD_RESTRICT akm = ar - s2;
      const double* RT_SIMD_RESTRICT akp = ar + s2;
      // First i >= ilo with (i + j + k) % 2 == parity, then stride 2:
      // within one colour the row never reads what it writes (all six
      // neighbours are the opposite colour).
      for (long i = ilo + (((ilo + j + k) ^ parity) & 1); i < ihi; i += 2) {
        ar[i] = c1 * ar[i] + c2 * (ar[i - 1] + ajm[i] + ar[i + 1] + ajp[i] +
                                   akm[i] + akp[i]);
      }
    }
  }
}

RT_SIMD_ATTR void RT_SIMD_FN(resid_sweep)(
    double* RT_SIMD_RESTRICT r, const double* RT_SIMD_RESTRICT v,
    const double* RT_SIMD_RESTRICT u, long s1, long s2, double a0, double a1,
    double a2, double a3, long ilo, long ihi, long jlo, long jhi, long klo,
    long khi) {
  for (long k = klo; k < khi; ++k) {
    for (long j = jlo; j < jhi; ++j) {
      const long off = s1 * j + s2 * k;
      double* RT_SIMD_RESTRICT rr = r + off;
      const double* RT_SIMD_RESTRICT vv = v + off;
      const double* RT_SIMD_RESTRICT u00 = u + off;
      const double* RT_SIMD_RESTRICT ujm = u00 - s1;
      const double* RT_SIMD_RESTRICT ujp = u00 + s1;
      const double* RT_SIMD_RESTRICT ukm = u00 - s2;
      const double* RT_SIMD_RESTRICT ukp = u00 + s2;
      const double* RT_SIMD_RESTRICT umm = u00 - s1 - s2;
      const double* RT_SIMD_RESTRICT upm = u00 + s1 - s2;
      const double* RT_SIMD_RESTRICT ump = u00 - s1 + s2;
      const double* RT_SIMD_RESTRICT upp = u00 + s1 + s2;
#pragma omp simd
      for (long i = ilo; i < ihi; ++i) {
        const double t1 = u00[i - 1] + u00[i + 1] + ujm[i] + ujp[i] +
                          ukm[i] + ukp[i];
        const double t2 = ujm[i - 1] + ujm[i + 1] + ujp[i - 1] + ujp[i + 1] +
                          umm[i] + upm[i] + ump[i] + upp[i] + ukm[i - 1] +
                          ukp[i - 1] + ukm[i + 1] + ukp[i + 1];
        const double t3 = umm[i - 1] + umm[i + 1] + upm[i - 1] + upm[i + 1] +
                          ump[i - 1] + ump[i + 1] + upp[i - 1] + upp[i + 1];
        rr[i] = vv[i] - a0 * u00[i] - a1 * t1 - a2 * t2 - a3 * t3;
      }
    }
  }
}
