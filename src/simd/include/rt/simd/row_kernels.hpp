#pragma once
// Raw-pointer row-sweep variants of the paper's stencil kernels.
//
// The accessor kernels (rt/kernels/*.hpp) address every point through
// load(i, j, k), recomputing i + p1*(j + p2*k) per access.  The row
// kernels instead materialise, once per (j, k) row, one restrict-qualified
// pointer per distinct stencil row — e.g. Jacobi needs the centre row of B
// plus its four neighbour rows — and sweep the contiguous I range with a
// `#pragma omp simd` hint.  The I loop is contiguous by construction in
// the column-major Array3D, so the compiler auto-vectorizes it; because
// vectorizing across I preserves each element's own operation order, the
// results are bit-identical to the accessor kernels for every SimdLevel
// (asserted exhaustively by tests/simd_kernels_test.cpp).
//
// Two ISA instantiations of every sweep are compiled (baseline, and a
// target("avx2") clone on x86); SimdLevel picks one at run time, so no
// global -mavx2 build flag is needed.  Building with -DRT_SIMD_AVX2=ON
// additionally swaps the Jacobi/copy AVX2 sweeps for hand-written
// intrinsics (same left-associated add chain, still bit-identical).
//
// Aliasing contract: destination and source arrays must be distinct
// allocations (the accessor kernels are only ever used that way too);
// red-black updates in place, where the row decomposition itself
// guarantees the written row is disjoint from the neighbour rows read
// through other pointers.
//
// The *_sweep functions cover the interior sub-box [ilo,ihi) x [jlo,jhi)
// x [klo,khi); they are the composition point with rt::par — each
// parallel tile or plane work item calls one sweep (rt/simd/par_rows.hpp).

#include <array>

#include "rt/array/array3d.hpp"
#include "rt/core/cost.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/simd/simd.hpp"

namespace rt::simd {

using rt::array::Array3D;
using rt::core::IterTile;

/// Smoother coefficients in rt::multigrid::SmootherCoeffs layout (centre,
/// faces, edges, corners) — duplicated as a plain array type so rt::simd
/// stays below rt::multigrid in the layering.
using PsinvCoeffs = std::array<double, 4>;

// --- Mid-level sweeps over an interior sub-box (par composition unit) ---

/// a(i,j,k) = c * (six face neighbours of b); a and b share dims.
void jacobi_sweep(Array3D<double>& a, const Array3D<double>& b, double c,
                  long ilo, long ihi, long jlo, long jhi, long klo, long khi,
                  SimdLevel lvl);

/// dst = src over the box.
void copy_sweep(Array3D<double>& dst, const Array3D<double>& src, long ilo,
                long ihi, long jlo, long jhi, long klo, long khi,
                SimdLevel lvl);

/// One colour of red-black SOR over the box ((i+j+k) % 2 == parity).
void redblack_sweep(Array3D<double>& a, double c1, double c2, long parity,
                    long ilo, long ihi, long jlo, long jhi, long klo,
                    long khi, SimdLevel lvl);

/// r = v - A u (27-point RESID) over the box; r, v, u share dims.
void resid_sweep(Array3D<double>& r, const Array3D<double>& v,
                 const Array3D<double>& u, const rt::kernels::ResidCoeffs& a,
                 long ilo, long ihi, long jlo, long jhi, long klo, long khi,
                 SimdLevel lvl);

/// One colour of red-black SOR with a constant term (rb_update_rhs):
/// a <- c1 a + c2 (6 neighbours) + r.  a and r share dims.
void redblack_rhs_sweep(Array3D<double>& a, const Array3D<double>& r,
                        double c1, double c2, long parity, long ilo, long ihi,
                        long jlo, long jhi, long klo, long khi, SimdLevel lvl);

/// u += S r (27-point NAS MG smoother) over the box; u and r share dims.
void psinv_sweep(Array3D<double>& u, const Array3D<double>& r,
                 const PsinvCoeffs& c, long ilo, long ihi, long jlo, long jhi,
                 long klo, long khi, SimdLevel lvl);

/// Full-weighting restriction over the *coarse* sub-box [j1lo,j1hi) x
/// [j2lo,j2hi) x [j3lo,j3hi): s(j1,j2,j3) from fine r around i = 2j - 1.
void rprj3_sweep(Array3D<double>& s, const Array3D<double>& r, long j1lo,
                 long j1hi, long j2lo, long j2hi, long j3lo, long j3hi,
                 SimdLevel lvl);

/// Trilinear prolongation u += P z over the *fine* sub-box.
void interp_sweep(Array3D<double>& u, const Array3D<double>& z, long ilo,
                  long ihi, long jlo, long jhi, long klo, long khi,
                  SimdLevel lvl);

// --- Full kernels, bit-identical to their rt::kernels counterparts ---

/// == rt::kernels::jacobi3d.
void jacobi3d_rows(Array3D<double>& a, const Array3D<double>& b, double c,
                   SimdLevel lvl);

/// == rt::kernels::jacobi3d_tiled (same jj-outer / ii-inner tile walk).
void jacobi3d_tiled_rows(Array3D<double>& a, const Array3D<double>& b,
                         double c, IterTile t, SimdLevel lvl);

/// == rt::kernels::copy_interior.
void copy_interior_rows(Array3D<double>& dst, const Array3D<double>& src,
                        SimdLevel lvl);

/// == rt::kernels::redblack_naive (two-pass colour schedule).
void redblack_rows(Array3D<double>& a, double c1, double c2, SimdLevel lvl);

/// Tiled two-pass red-black over the JI tile grid.  Uses the same
/// colour-barrier schedule as rt::par::redblack_tiled_par, which is
/// bit-identical to redblack_naive *and* to the serial fused
/// redblack_tiled (within one colour no update reads same-colour values).
void redblack_tiled_rows(Array3D<double>& a, double c1, double c2, IterTile t,
                         SimdLevel lvl);

/// == rt::kernels::resid.
void resid_rows(Array3D<double>& r, const Array3D<double>& v,
                const Array3D<double>& u, const rt::kernels::ResidCoeffs& a,
                SimdLevel lvl);

/// == rt::kernels::resid_tiled.
void resid_tiled_rows(Array3D<double>& r, const Array3D<double>& v,
                      const Array3D<double>& u,
                      const rt::kernels::ResidCoeffs& a, IterTile t,
                      SimdLevel lvl);

/// == rt::kernels::redblack_naive_rhs (two-pass colour schedule).
void redblack_rhs_rows(Array3D<double>& a, const Array3D<double>& r,
                       double c1, double c2, SimdLevel lvl);

/// Tiled two-pass red-black with constant term over the JI tile grid
/// (colour barrier between passes; bit-identical to redblack_naive_rhs
/// and to the serial fused redblack_tiled_rhs).
void redblack_tiled_rhs_rows(Array3D<double>& a, const Array3D<double>& r,
                             double c1, double c2, IterTile t, SimdLevel lvl);

/// == rt::multigrid::psinv.
void psinv_rows(Array3D<double>& u, const Array3D<double>& r,
                const PsinvCoeffs& c, SimdLevel lvl);

/// == rt::multigrid::psinv_tiled (same jj-outer / ii-inner tile walk).
void psinv_tiled_rows(Array3D<double>& u, const Array3D<double>& r,
                      const PsinvCoeffs& c, IterTile t, SimdLevel lvl);

/// == rt::multigrid::rprj3 (s coarse, r fine; dims may differ in padding).
void rprj3_rows(Array3D<double>& s, const Array3D<double>& r, SimdLevel lvl);

/// == rt::multigrid::interp_add (u fine, z coarse).
void interp_add_rows(Array3D<double>& u, const Array3D<double>& z,
                     SimdLevel lvl);

}  // namespace rt::simd
