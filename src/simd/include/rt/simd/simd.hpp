#pragma once
// SIMD fast-path policy layer: which instruction set the row-sweep kernels
// (rt/simd/row_kernels.hpp) run with, and the opt-in leading-dimension
// alignment that makes every (j, k) row start on a vector boundary.
//
// The layer exists because the accessor kernels execute every stencil
// point through scalar-looking load()/store() calls whose index math the
// compiler must rediscover per access; the row kernels hoist the
// i + p1*(j + p2*k) base out of the inner loop and hand the compiler
// contiguous restrict-qualified rows it can vectorize.  Vectorizing
// across I keeps each element's floating-point operation order unchanged,
// so every level below computes *bit-identical* results to the accessor
// kernels (tests/simd_kernels_test.cpp asserts it across a shape sweep).
//
// Mode (requested, a CLI-level knob) vs Level (resolved, what actually
// runs):
//   --simd=off   -> kScalar : accessor kernels, the historical path
//   --simd=auto  -> kAvx2 when the host supports AVX2, else kRows
//   --simd=avx2  -> kAvx2, falling back to kRows off-x86 / pre-AVX2
// kRows is portable C++ (restrict rows + `#pragma omp simd` hint, baseline
// ISA); kAvx2 compiles the same loops in a target("avx2") clone picked at
// run time, plus hand-written intrinsics when built with -DRT_SIMD_AVX2=ON.

#include <string>

#include "rt/array/array3d.hpp"

namespace rt::simd {

/// Requested SIMD behaviour (the --simd= flag).
enum class SimdMode {
  kOff,   ///< accessor kernels only
  kAuto,  ///< best level this host supports
  kAvx2,  ///< force the AVX2 path (falls back to kRows if unsupported)
};

/// Resolved execution level of the row kernels.
enum class SimdLevel {
  kScalar,  ///< not using row kernels at all
  kRows,    ///< row sweeps, baseline ISA auto-vectorization
  kAvx2,    ///< row sweeps compiled for AVX2, runtime-dispatched
};

/// Doubles per 64-byte vector register line (AVX-512 width; also the
/// cache-line quantum, so it is the natural alignment unit either way).
inline constexpr long kVecDoubles = 8;

/// True when this CPU executes AVX2 (always false off x86).
bool avx2_supported();

/// Map a requested mode to the level that will actually run on this host.
SimdLevel resolve(SimdMode mode);

const char* simd_mode_name(SimdMode m);
const char* simd_level_name(SimdLevel l);

/// Parse "off" / "auto" / "avx2" (anything else returns false).
bool parse_simd_mode(const std::string& s, SimdMode* out);

/// Round a leading dimension up to a multiple of the vector width so that
/// consecutive rows keep the same alignment phase (row j+1 starts exactly
/// p1 elements after row j; p1 % kVecDoubles == 0 makes that phase 0).
/// Applied *after* the padding search so it never changes which pad the
/// planner picked, only rounds the allocation up.
long align_leading(long p1, long vec = kVecDoubles);

/// Dims with p1 rounded up via align_leading (p2/n3 untouched).
rt::array::Dims3 align_dims(rt::array::Dims3 d, long vec = kVecDoubles);

}  // namespace rt::simd
