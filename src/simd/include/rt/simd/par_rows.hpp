#pragma once
// rt::par x rt::simd composition: the parallel work decomposition of
// rt/par/par_kernels.hpp (JI tile grid for tiled kernels, K planes for
// untiled ones) with each work item executing a row sweep instead of
// accessor loops.  Same bit-identity argument as rt::par — work items
// write disjoint (i, j) ranges or disjoint planes, every read is of data
// no concurrent item writes, and parallel_for's barrier sequences the
// red/black colours — composed with the row kernels' own identity to the
// accessor kernels.  Net: for any thread count and any SimdLevel these
// produce the exact bits of the serial accessor kernels.

#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/row_kernels.hpp"

namespace rt::simd {

using rt::par::ThreadPool;

/// Parallel tiled Jacobi, row sweeps: each tile runs its full-K column
/// sweep through jacobi_sweep.  == rt::kernels::jacobi3d_tiled bitwise.
inline void jacobi3d_tiled_rows_par(ThreadPool& pool, Array3D<double>& a,
                                    const Array3D<double>& b, double c,
                                    IterTile t, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  rt::par::parallel_for_tiles(pool, 1, n1 - 1, 1, n2 - 1, t,
                              [&](long ii, long ihi, long jj, long jhi) {
                                jacobi_sweep(a, b, c, ii, ihi, jj, jhi, 1,
                                             n3 - 1, lvl);
                              });
}

/// Parallel untiled Jacobi, one K plane of rows per work item.
inline void jacobi3d_rows_par(ThreadPool& pool, Array3D<double>& a,
                              const Array3D<double>& b, double c,
                              SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    jacobi_sweep(a, b, c, 1, n1 - 1, 1, n2 - 1, kk + 1, kk + 2, lvl);
  });
}

/// Parallel interior copy-back, one K plane of rows per work item.
inline void copy_interior_rows_par(ThreadPool& pool, Array3D<double>& dst,
                                   const Array3D<double>& src,
                                   SimdLevel lvl) {
  const long n1 = dst.n1(), n2 = dst.n2(), n3 = dst.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    copy_sweep(dst, src, 1, n1 - 1, 1, n2 - 1, kk + 1, kk + 2, lvl);
  });
}

/// Parallel tiled red-black, row sweeps, colour barrier between passes.
inline void redblack_tiled_rows_par(ThreadPool& pool, Array3D<double>& a,
                                    double c1, double c2, IterTile t,
                                    SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    rt::par::parallel_for_tiles(
        pool, 1, n1 - 1, 1, n2 - 1, t,
        [&](long ii, long ihi, long jj, long jhi) {
          redblack_sweep(a, c1, c2, parity, ii, ihi, jj, jhi, 1, n3 - 1,
                         lvl);
        });  // barrier: all red before any black
  }
}

/// Parallel untiled red-black, K planes per colour (same-colour
/// neighbours are two planes apart, so planes of one colour pass are
/// write-disjoint from everything they read).
inline void redblack_rows_par(ThreadPool& pool, Array3D<double>& a,
                              double c1, double c2, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    pool.parallel_for(n3 - 2, [&](long kk) {
      redblack_sweep(a, c1, c2, parity, 1, n1 - 1, 1, n2 - 1, kk + 1,
                     kk + 2, lvl);
    });
  }
}

/// Parallel tiled RESID, row sweeps.
inline void resid_tiled_rows_par(ThreadPool& pool, Array3D<double>& r,
                                 const Array3D<double>& v,
                                 const Array3D<double>& u,
                                 const rt::kernels::ResidCoeffs& a,
                                 IterTile t, SimdLevel lvl) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  rt::par::parallel_for_tiles(pool, 1, n1 - 1, 1, n2 - 1, t,
                              [&](long ii, long ihi, long jj, long jhi) {
                                resid_sweep(r, v, u, a, ii, ihi, jj, jhi, 1,
                                            n3 - 1, lvl);
                              });
}

/// Parallel untiled RESID, K planes of rows.
inline void resid_rows_par(ThreadPool& pool, Array3D<double>& r,
                           const Array3D<double>& v, const Array3D<double>& u,
                           const rt::kernels::ResidCoeffs& a, SimdLevel lvl) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    resid_sweep(r, v, u, a, 1, n1 - 1, 1, n2 - 1, kk + 1, kk + 2, lvl);
  });
}

/// Parallel untiled red-black SOR with constant term, K planes per colour.
inline void redblack_rhs_rows_par(ThreadPool& pool, Array3D<double>& a,
                                  const Array3D<double>& r, double c1,
                                  double c2, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    pool.parallel_for(n3 - 2, [&](long kk) {
      redblack_rhs_sweep(a, r, c1, c2, parity, 1, n1 - 1, 1, n2 - 1, kk + 1,
                         kk + 2, lvl);
    });
  }
}

/// Parallel tiled red-black SOR with constant term, colour barrier.
inline void redblack_tiled_rhs_rows_par(ThreadPool& pool, Array3D<double>& a,
                                        const Array3D<double>& r, double c1,
                                        double c2, IterTile t, SimdLevel lvl) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    rt::par::parallel_for_tiles(
        pool, 1, n1 - 1, 1, n2 - 1, t,
        [&](long ii, long ihi, long jj, long jhi) {
          redblack_rhs_sweep(a, r, c1, c2, parity, ii, ihi, jj, jhi, 1,
                             n3 - 1, lvl);
        });  // barrier: all red before any black
  }
}

/// Parallel untiled PSINV, one K plane of rows per work item (u += S r
/// writes only plane k; every read is of r, which no item writes).
inline void psinv_rows_par(ThreadPool& pool, Array3D<double>& u,
                           const Array3D<double>& r, const PsinvCoeffs& c,
                           SimdLevel lvl) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    psinv_sweep(u, r, c, 1, n1 - 1, 1, n2 - 1, kk + 1, kk + 2, lvl);
  });
}

/// Parallel tiled PSINV over the JI tile grid.
inline void psinv_tiled_rows_par(ThreadPool& pool, Array3D<double>& u,
                                 const Array3D<double>& r,
                                 const PsinvCoeffs& c, IterTile t,
                                 SimdLevel lvl) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  rt::par::parallel_for_tiles(pool, 1, n1 - 1, 1, n2 - 1, t,
                              [&](long ii, long ihi, long jj, long jhi) {
                                psinv_sweep(u, r, c, ii, ihi, jj, jhi, 1,
                                            n3 - 1, lvl);
                              });
}

/// Parallel restriction, one *coarse* K plane per work item: coarse plane
/// j3 writes only itself and reads fine planes 2 j3 - 2 .. 2 j3, which no
/// item writes.
inline void rprj3_rows_par(ThreadPool& pool, Array3D<double>& s,
                           const Array3D<double>& r, SimdLevel lvl) {
  const long m1 = s.n1(), m2 = s.n2(), m3 = s.n3();
  pool.parallel_for(m3 - 2, [&](long kk) {
    rprj3_sweep(s, r, 1, m1 - 1, 1, m2 - 1, kk + 1, kk + 2, lvl);
  });
}

/// Parallel prolongation, one *fine* K plane per work item: fine plane i3
/// writes only itself and reads the coarse grid, which no item writes.
inline void interp_add_rows_par(ThreadPool& pool, Array3D<double>& u,
                                const Array3D<double>& z, SimdLevel lvl) {
  const long n1 = u.n1(), n2 = u.n2(), n3 = u.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    interp_sweep(u, z, 1, n1 - 1, 1, n2 - 1, kk + 1, kk + 2, lvl);
  });
}

}  // namespace rt::simd
