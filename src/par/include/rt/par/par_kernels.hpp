#pragma once
// Parallel variants of the paper's kernels, executing the (jj, ii) tile
// grid of the JI-tiling on a rt::par::ThreadPool.
//
// Why the tile grid is the unit of parallel work: the paper's 3D tiling
// deliberately keeps K untiled, so each (TI, TJ) iteration tile owns an
// independent full-depth column sweep — tiles write disjoint (i, j) ranges
// and Jacobi/RESID read only arrays that the sweep never writes.  The
// parallel kernels are therefore *bit-identical* to the serial tiled
// kernels for any thread count and any schedule.  Red-black runs the red
// sweep fully before the black sweep (parallel_for is a barrier), which is
// again bit-identical to redblack_naive — within one color no updated
// point reads another point of the same color.
//
// Thread-safety contract for accessors: concurrent load() anywhere plus
// concurrent store() to *distinct* elements must be safe.  rt::array's
// Array3D (plain memory) satisfies it; rt::cachesim::TracedArray3D does
// NOT (every access mutates the shared cache hierarchy), so trace-driven
// simulation must keep using the serial kernels — which is also what keeps
// simulated miss rates deterministic.

#include <algorithm>

#include "rt/core/cost.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/par/thread_pool.hpp"

namespace rt::par {

using rt::core::IterTile;

/// Run fn(ii, ihi, jj, jhi) once per tile of the [ilo, ihi0) x [jlo, jhi0)
/// iteration space strip-mined by t, distributed over the pool.  Tiles are
/// flattened jj-outer / ii-inner, matching the serial tiled loop order so a
/// 1-thread pool visits tiles in exactly the serial sequence.
template <class Fn>
void parallel_for_tiles(ThreadPool& pool, long ilo, long ihi0, long jlo,
                        long jhi0, IterTile t, Fn&& fn) {
  if (ihi0 <= ilo || jhi0 <= jlo || t.ti <= 0 || t.tj <= 0) return;
  const long nti = (ihi0 - ilo + t.ti - 1) / t.ti;
  const long ntj = (jhi0 - jlo + t.tj - 1) / t.tj;
  pool.parallel_for(nti * ntj, [&](long idx) {
    const long jj = jlo + (idx / nti) * t.tj;
    const long ii = ilo + (idx % nti) * t.ti;
    fn(ii, std::min(ii + t.ti, ihi0), jj, std::min(jj + t.tj, jhi0));
  });
}

/// Parallel tiled 3D Jacobi: each tile runs the full K sweep of its
/// (TI, TJ) block.  Bit-identical to rt::kernels::jacobi3d_tiled.
template <class Dst, class Src>
void jacobi3d_tiled_par(ThreadPool& pool, Dst& a, Src& b, double c,
                        IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  parallel_for_tiles(
      pool, 1, n1 - 1, 1, n2 - 1, t,
      [&](long ii, long ihi, long jj, long jhi) {
        for (long k = 1; k < n3 - 1; ++k) {
          for (long j = jj; j < jhi; ++j) {
            for (long i = ii; i < ihi; ++i) {
              a.store(i, j, k,
                      c * (b.load(i - 1, j, k) + b.load(i + 1, j, k) +
                           b.load(i, j - 1, k) + b.load(i, j + 1, k) +
                           b.load(i, j, k - 1) + b.load(i, j, k + 1)));
            }
          }
        }
      });
}

/// Parallel untiled 3D Jacobi (the Orig baseline under threads): K planes
/// are independent, so the K loop is the parallel dimension.
template <class Dst, class Src>
void jacobi3d_par(ThreadPool& pool, Dst& a, Src& b, double c) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    const long k = kk + 1;
    for (long j = 1; j < n2 - 1; ++j) {
      for (long i = 1; i < n1 - 1; ++i) {
        a.store(i, j, k,
                c * (b.load(i - 1, j, k) + b.load(i + 1, j, k) +
                     b.load(i, j - 1, k) + b.load(i, j + 1, k) +
                     b.load(i, j, k - 1) + b.load(i, j, k + 1)));
      }
    }
  });
}

/// Parallel interior copy-back dst = src, one K plane per work item.
/// The caller sequences this after the stencil sweep; parallel_for's
/// barrier guarantees the sweep is complete.
template <class Dst, class Src>
void copy_interior_par(ThreadPool& pool, Dst& dst, Src& src) {
  const long n1 = dst.n1(), n2 = dst.n2(), n3 = dst.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    const long k = kk + 1;
    for (long j = 1; j < n2 - 1; ++j) {
      for (long i = 1; i < n1 - 1; ++i) {
        dst.store(i, j, k, src.load(i, j, k));
      }
    }
  });
}

/// Parallel tiled red-black: a full parallel red sweep, a barrier, then a
/// full parallel black sweep.  Within one color every update reads only
/// opposite-color neighbours (plus its own old centre value), so the
/// result is independent of schedule and bit-identical to redblack_naive —
/// and redblack_naive is bit-identical to redblack_tiled (kernels_test).
/// Note this two-pass schedule intentionally differs from the serial fused
/// tiled schedule (ATD 4 skewed windows): fusion trades cache depth for an
/// intra-tile red->black dependency that does not parallelise over tiles.
template <class Acc>
void redblack_tiled_par(ThreadPool& pool, Acc& a, double c1, double c2,
                        IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    parallel_for_tiles(
        pool, 1, n1 - 1, 1, n2 - 1, t,
        [&](long ii, long ihi, long jj, long jhi) {
          for (long k = 1; k < n3 - 1; ++k) {
            for (long j = jj; j < jhi; ++j) {
              for (long i = rt::kernels::detail::first_with_parity(ii, j, k,
                                                                   parity);
                   i < ihi; i += 2) {
                rt::kernels::rb_update(a, i, j, k, c1, c2);
              }
            }
          }
        });  // barrier: all red done before any black starts
  }
}

/// Parallel untiled red-black: same color barrier, K planes parallel
/// within each color (a point's same-color neighbours are two planes away).
template <class Acc>
void redblack_par(ThreadPool& pool, Acc& a, double c1, double c2) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    pool.parallel_for(n3 - 2, [&](long kk) {
      const long k = kk + 1;
      for (long j = 1; j < n2 - 1; ++j) {
        for (long i = rt::kernels::detail::first_with_parity(1, j, k, parity);
             i < n1 - 1; i += 2) {
          rt::kernels::rb_update(a, i, j, k, c1, c2);
        }
      }
    });
  }
}

/// Parallel tiled red-black with a constant term (rb_update_rhs): same
/// colour-barrier schedule as redblack_tiled_par, bit-identical to
/// redblack_naive_rhs and to the serial fused redblack_tiled_rhs.
template <class Acc, class Rhs>
void redblack_tiled_rhs_par(ThreadPool& pool, Acc& a, Rhs& r, double c1,
                            double c2, IterTile t) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    parallel_for_tiles(
        pool, 1, n1 - 1, 1, n2 - 1, t,
        [&](long ii, long ihi, long jj, long jhi) {
          for (long k = 1; k < n3 - 1; ++k) {
            for (long j = jj; j < jhi; ++j) {
              for (long i = rt::kernels::detail::first_with_parity(ii, j, k,
                                                                   parity);
                   i < ihi; i += 2) {
                rt::kernels::rb_update_rhs(a, r, i, j, k, c1, c2);
              }
            }
          }
        });  // barrier: all red done before any black starts
  }
}

/// Parallel untiled red-black with a constant term, K planes per colour.
template <class Acc, class Rhs>
void redblack_rhs_par(ThreadPool& pool, Acc& a, Rhs& r, double c1,
                      double c2) {
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long parity = 0; parity < 2; ++parity) {
    pool.parallel_for(n3 - 2, [&](long kk) {
      const long k = kk + 1;
      for (long j = 1; j < n2 - 1; ++j) {
        for (long i = rt::kernels::detail::first_with_parity(1, j, k, parity);
             i < n1 - 1; i += 2) {
          rt::kernels::rb_update_rhs(a, r, i, j, k, c1, c2);
        }
      }
    });
  }
}

/// Parallel tiled RESID.  Bit-identical to rt::kernels::resid_tiled.
template <class R, class V, class U>
void resid_tiled_par(ThreadPool& pool, R& r, V& v, U& u,
                     const rt::kernels::ResidCoeffs& a, IterTile t) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  parallel_for_tiles(pool, 1, n1 - 1, 1, n2 - 1, t,
                     [&](long ii, long ihi, long jj, long jhi) {
                       for (long i3 = 1; i3 < n3 - 1; ++i3) {
                         for (long i2 = jj; i2 < jhi; ++i2) {
                           for (long i1 = ii; i1 < ihi; ++i1) {
                             rt::kernels::resid_point(r, v, u, a, i1, i2, i3);
                           }
                         }
                       }
                     });
}

/// Parallel untiled RESID, K planes parallel.
template <class R, class V, class U>
void resid_par(ThreadPool& pool, R& r, V& v, U& u,
               const rt::kernels::ResidCoeffs& a) {
  const long n1 = r.n1(), n2 = r.n2(), n3 = r.n3();
  pool.parallel_for(n3 - 2, [&](long kk) {
    const long i3 = kk + 1;
    for (long i2 = 1; i2 < n2 - 1; ++i2) {
      for (long i1 = 1; i1 < n1 - 1; ++i1) {
        rt::kernels::resid_point(r, v, u, a, i1, i2, i3);
      }
    }
  });
}

/// Parallel time-skewed Jacobi (wavefront schedule): the outer kb-block
/// and time-step loops of rt::kernels::jacobi3d_timeskew run serially, but
/// within one (kb, t) stage every plane of the skew window [lo, hi] writes
/// only `dst` and reads only `src` (the opposite-parity array, which no
/// plane of this stage writes — src's next overwrite is step t + 1 and
/// happens after parallel_for's barrier).  Planes are therefore
/// independent work items, and the result is bit-identical to the serial
/// time skew for any thread count.
template <class Arr>
void jacobi3d_timeskew_par(ThreadPool& pool, Arr& a, Arr& b, double c,
                           int tsteps, long bk) {
  if (tsteps <= 0) return;
  bk = std::max(bk, 1L);  // bk <= 0 would never advance the block loop
  const long n1 = a.n1(), n2 = a.n2(), n3 = a.n3();
  for (long kb = 1; kb < (n3 - 2) + tsteps; kb += bk) {
    for (int t = 0; t < tsteps; ++t) {
      const long lo = std::max(1L, kb - t);
      const long hi = std::min(n3 - 2, kb + bk - 1 - t);
      if (hi < lo) continue;
      Arr& dst = (t % 2 == 0) ? a : b;
      Arr& src = (t % 2 == 0) ? b : a;
      pool.parallel_for(hi - lo + 1, [&](long kk) {
        const long k = lo + kk;
        for (long j = 1; j < n2 - 1; ++j) {
          for (long i = 1; i < n1 - 1; ++i) {
            dst.store(i, j, k,
                      c * (src.load(i - 1, j, k) + src.load(i + 1, j, k) +
                           src.load(i, j - 1, k) + src.load(i, j + 1, k) +
                           src.load(i, j, k - 1) + src.load(i, j, k + 1)));
          }
        }
      });  // barrier: stage (kb, t) completes before stage (kb, t + 1)
    }
  }
}

}  // namespace rt::par
