#pragma once
// Small reusable thread pool with a fork-join `parallel_for`, the executor
// underneath the parallel tiled kernels (rt/par/par_kernels.hpp).
//
// Design constraints, in order:
//  * deterministic results — work items must write disjoint data, so any
//    index-to-thread assignment is valid; indices are handed out with an
//    atomic counter (dynamic self-scheduling, good load balance for tile
//    grids whose edge tiles are smaller);
//  * a pool of 1 thread degenerates to a plain sequential loop in index
//    order on the calling thread (no worker threads are ever spawned), so
//    single-threaded execution is bit-for-bit and trace-for-trace identical
//    to the serial kernels;
//  * `parallel_for` is a barrier: it returns only after every index has
//    completed, which is what gives the parallel kernels their inter-sweep
//    ordering guarantees (e.g. red before black);
//  * concurrent entry is safe: a multi-tenant caller (rt::serve request
//    threads sharing one pool) may call `parallel_for` from many threads at
//    once.  Jobs are serialized on an internal job mutex — one job runs at
//    a time, the rest queue on the lock — instead of racing on the shared
//    body_/count_/generation_ dispatch state (the historical behaviour was
//    a documented-but-unchecked data race).  Entry from *inside* a running
//    body on the same pool (reentrancy) cannot wait for the pool — that
//    would deadlock the barrier — so it degrades to the sequential
//    index-order loop on the calling thread, which is always correct.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rt::par {

class ThreadPool {
 public:
  /// @p threads total workers including the calling thread; <= 0 picks
  /// default_threads().  A pool of 1 spawns no threads at all.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width: worker threads + the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run body(i) for every i in [0, count) exactly once, distributed over
  /// the pool; the calling thread participates.  Blocks until all indices
  /// complete (full barrier).  Safe to call concurrently from multiple
  /// threads: concurrent jobs are serialized (one at a time) on an internal
  /// mutex.  Calling it from inside a body running on the same pool runs
  /// the nested loop sequentially on the calling thread instead (a nested
  /// job cannot wait for the pool it is executing on).
  void parallel_for(long count, const std::function<void(long)>& body);

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static int default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  /// Serializes whole parallel_for jobs from concurrent external callers;
  /// held for the full fork-join span of one job.  m_ below only guards the
  /// dispatch handshake inside a job.
  std::mutex job_m_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Current job; body_/count_/running_/generation_ are guarded by m_,
  // next_ is the lock-free index dispenser.
  const std::function<void(long)>* body_ = nullptr;
  long count_ = 0;
  std::atomic<long> next_{0};
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
};

}  // namespace rt::par
