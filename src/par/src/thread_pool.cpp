#include "rt/par/thread_pool.hpp"

#include <system_error>

#include "rt/guard/fault_injector.hpp"

namespace rt::par {

namespace {
// The pool whose body the current thread is executing right now (nullptr
// outside any body).  Lets parallel_for detect reentrant entry — from the
// job's calling thread or from a pool worker — where waiting on job_m_
// would deadlock the barrier.
thread_local const ThreadPool* tl_running_pool = nullptr;

struct RunningPoolScope {
  const ThreadPool* prev;
  explicit RunningPoolScope(const ThreadPool* p) : prev(tl_running_pool) {
    tl_running_pool = p;
  }
  ~RunningPoolScope() { tl_running_pool = prev; }
};
}  // namespace

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    // Spawn failure (resource exhaustion, or an injected fault) degrades
    // the pool to the width reached so far instead of crashing: any width
    // >= 1 is correct (parallel_for's dynamic scheduling covers all
    // indices), and num_threads() reports the real width so callers can
    // record requested-vs-ran (RunResult::degraded()).
    if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kThreadSpawn) &&
        rt::guard::FaultInjector::instance().should_fail(
            rt::guard::FaultKind::kThreadSpawn)) {
      break;
    }
    try {
      workers_.emplace_back([this] { worker_loop(); });
    } catch (const std::system_error&) {
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(long)>* body = nullptr;
    long count = 0;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      count = count_;
    }
    {
      RunningPoolScope scope(this);
      for (long i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next_.fetch_add(1, std::memory_order_relaxed)) {
        (*body)(i);
      }
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(long count,
                              const std::function<void(long)>& body) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1 || tl_running_pool == this) {
    // Sequential fast path, index order: what the serial kernels do.  Also
    // the reentrant path — a body running on this pool calling back in
    // cannot wait for the pool's own barrier, so the nested job runs
    // inline (still exactly-once, still deterministic index order).
    for (long i = 0; i < count; ++i) body(i);
    return;
  }
  // One job at a time: concurrent external callers queue here instead of
  // racing on body_/count_/generation_.  Each caller's job still runs at
  // full pool width once admitted.
  std::lock_guard<std::mutex> job_lk(job_m_);
  {
    std::lock_guard<std::mutex> lk(m_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  // The calling thread works too; workers and caller share the dispenser.
  {
    RunningPoolScope scope(this);
    for (long i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  }
  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [&] { return running_ == 0; });
  body_ = nullptr;
}

}  // namespace rt::par
