#include "rt/bench/options.hpp"

#include "rt/bench/table.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/tune/plan_store.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace rt::bench {

std::vector<long> BenchOptions::sweep(long def_min, long def_max,
                                      long def_step, long full_step) const {
  const long lo = nmin > 0 ? nmin : def_min;
  const long hi = nmax > 0 ? nmax : def_max;
  long st = nstep > 0 ? nstep : (full ? full_step : def_step);
  if (st <= 0) st = 1;
  std::vector<long> xs;
  for (long n = lo; n <= hi; n += st) xs.push_back(n);
  if (xs.empty() || xs.back() != hi) xs.push_back(hi);
  return xs;
}

std::string BenchOptions::resolved_plan_store() const {
  return plan_store.empty() ? rt::tune::default_store_path() : plan_store;
}

rt::core::Backend BenchOptions::resolved_backend(
    const rt::core::CacheGeom& geom) const {
  return backend_auto ? rt::core::auto_backend(geom) : backend;
}

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    // Full-string numeric validation: atol would silently turn "--nmin=abc"
    // or an empty "--threads=" into 0, which then falls back to a default.
    const auto num = [&](const char* prefix) -> long {
      const char* s = a.c_str() + std::strlen(prefix);
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(s, &end, 10);
      if (end == s || *end != '\0' || errno == ERANGE) {
        std::cerr << "bad numeric value for " << prefix << " flag: " << a
                  << "\n";
        std::exit(2);
      }
      return v;
    };
    if (a == "--full") {
      o.full = true;
    } else if (a == "--host") {
      o.host = true;
    } else if (a == "--no-sim") {
      o.simulate = false;
    } else if (a.rfind("--nmin=", 0) == 0) {
      o.nmin = num("--nmin=");
    } else if (a.rfind("--nmax=", 0) == 0) {
      o.nmax = num("--nmax=");
    } else if (a.rfind("--nstep=", 0) == 0) {
      o.nstep = num("--nstep=");
    } else if (a.rfind("--steps=", 0) == 0) {
      o.steps = static_cast<int>(num("--steps="));
    } else if (a.rfind("--threads=", 0) == 0) {
      o.threads = static_cast<int>(num("--threads="));
      if (o.threads < 1) o.threads = 1;
    } else if (a.rfind("--simd=", 0) == 0) {
      if (!rt::simd::parse_simd_mode(a.substr(7), &o.simd)) {
        std::cerr << "bad --simd value (want off|auto|avx2): " << a << "\n";
        std::exit(2);
      }
      o.simd_given = true;
    } else if (a == "--simd-align") {
      o.simd_align = true;
    } else if (a.rfind("--temporal=", 0) == 0) {
      if (!rt::core::parse_temporal_mode(a.substr(11), &o.temporal)) {
        std::cerr << "bad --temporal value (want off|skew|diamond): " << a
                  << "\n";
        std::exit(2);
      }
      o.temporal_given = true;
    } else if (a.rfind("--bk=", 0) == 0) {
      o.bk = num("--bk=");
      if (o.bk < 0) {
        std::cerr << "bad --bk value (want >= 0; 0 = auto): " << a << "\n";
        std::exit(2);
      }
    } else if (a.rfind("--csv=", 0) == 0) {
      o.csv = a.substr(6);
      set_csv_sink(o.csv);
    } else if (a.rfind("--counters=", 0) == 0) {
      if (!rt::obs::parse_counter_mode(a.substr(11), &o.counters)) {
        std::cerr << "bad --counters value (want off|auto|on): " << a << "\n";
        std::exit(2);
      }
    } else if (a.rfind("--json=", 0) == 0) {
      o.json = a.substr(7);
      if (o.json.empty()) {
        std::cerr << "empty --json= path\n";
        std::exit(2);
      }
    } else if (a.rfind("--verify=", 0) == 0) {
      if (!rt::guard::parse_verify_mode(a.substr(9), &o.verify)) {
        std::cerr << "bad --verify value (want off|post|para): " << a << "\n";
        std::exit(2);
      }
    } else if (a.rfind("--timeout=", 0) == 0) {
      const char* s = a.c_str() + 10;
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || errno == ERANGE || !(v > 0)) {
        std::cerr << "bad --timeout value (want seconds > 0): " << a << "\n";
        std::exit(2);
      }
      o.timeout_seconds = v;
    } else if (a.rfind("--backend=", 0) == 0) {
      const std::string v = a.substr(10);
      if (v == "auto") {
        o.backend = rt::core::Backend::kModel;  // resolved against geometry
        o.backend_auto = true;
      } else if (!rt::core::parse_backend(v, &o.backend)) {
        std::cerr << "bad --backend value (want model|lattice|oblivious|"
                     "auto): "
                  << a << "\n";
        std::exit(2);
      }
      o.backend_given = true;
    } else if (a.rfind("--tune=", 0) == 0) {
      if (!rt::tune::parse_tune_mode(a.substr(7), &o.tune)) {
        std::cerr << "bad --tune value (want off|load|on): " << a << "\n";
        std::exit(2);
      }
    } else if (a.rfind("--plan-store=", 0) == 0) {
      o.plan_store = a.substr(13);
      if (o.plan_store.empty()) {
        std::cerr << "empty --plan-store= path\n";
        std::exit(2);
      }
    } else if (a.rfind("--tsteps=", 0) == 0) {
      o.tsteps = static_cast<int>(num("--tsteps="));
      if (o.tsteps < 0) {
        std::cerr << "bad --tsteps value (want >= 0; 0 = derive): " << a
                  << "\n";
        std::exit(2);
      }
      o.tsteps_given = true;
    } else if (a.rfind("--retries=", 0) == 0) {
      o.retries = static_cast<int>(num("--retries="));
      if (o.retries < 0) {
        std::cerr << "bad --retries value (want >= 0; 0 = off): " << a
                  << "\n";
        std::exit(2);
      }
      o.retries_given = true;
    } else if (a.rfind("--retry-budget-ms=", 0) == 0) {
      o.retry_budget_ms = static_cast<int>(num("--retry-budget-ms="));
      if (o.retry_budget_ms < 0) {
        std::cerr << "bad --retry-budget-ms value (want >= 0): " << a << "\n";
        std::exit(2);
      }
      o.retry_budget_given = true;
    } else if (a.rfind("--backoff-ms=", 0) == 0) {
      o.backoff_ms = static_cast<int>(num("--backoff-ms="));
      if (o.backoff_ms < 0) {
        std::cerr << "bad --backoff-ms value (want >= 0): " << a << "\n";
        std::exit(2);
      }
      o.backoff_given = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "flags: --full --host --no-sim --nmin= --nmax= --nstep= "
                   "--steps= --threads=N --simd=off|auto|avx2 --simd-align "
                   "--temporal=off|skew|diamond --bk=N --tsteps=N "
                   "--csv=FILE --counters=off|auto|on --json=FILE "
                   "--verify=off|post|para --timeout=SECS "
                   "--backend=model|lattice|oblivious|auto "
                   "--tune=off|load|on --plan-store=FILE "
                   "--retries=N --retry-budget-ms=N --backoff-ms=N\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      std::exit(2);
    }
  }
  // Cross-flag contradictions are configuration errors, not data points:
  // reject them the way a malformed value is rejected.
  if (o.temporal != rt::core::TemporalMode::kOff && o.tsteps_given &&
      o.tsteps == 0) {
    std::cerr << "contradictory flags: --temporal="
              << rt::core::temporal_mode_name(o.temporal)
              << " fuses time steps, but --tsteps=0 leaves none to fuse\n";
    std::exit(2);
  }
  if (o.retry_budget_given && o.retry_budget_ms == 0 && o.retries > 0) {
    std::cerr << "contradictory flags: --retries=" << o.retries
              << " enables retrying, but --retry-budget-ms=0 leaves no "
                 "time to retry in (pass --retries=0 to disable retrying)\n";
    std::exit(2);
  }
  if (o.backoff_given && o.retries_given && o.retries == 0) {
    std::cerr << "contradictory flags: --backoff-ms=" << o.backoff_ms
              << " shapes the retry backoff, but --retries=0 disables "
                 "retrying\n";
    std::exit(2);
  }
  if (o.tune == rt::tune::TuneMode::kLoad) {
    const std::string store = o.resolved_plan_store();
    std::error_code ec;
    if (!std::filesystem::exists(store, ec)) {
      std::cerr << "--tune=load needs an existing plan store, but " << store
                << " does not exist (run --tune=on first, or pass "
                   "--plan-store=FILE)\n";
      std::exit(2);
    }
    // A named backend served from a pre-backend store is a contradiction:
    // v1 winners carry no backend id, so "--backend=lattice --tune=load"
    // would silently answer with plans another planner produced.  Peek the
    // store's schema version here (full validation stays in rt::tune).
    if (o.backend_given) {
      std::ifstream in(store);
      std::ostringstream text;
      text << in.rdbuf();
      rt::obs::JsonValue doc;
      if (in && rt::obs::json_parse(text.str(), &doc) && doc.is_object()) {
        const rt::obs::JsonValue* ver = doc.find("version");
        if (ver != nullptr && ver->is_number() &&
            ver->as_int() < rt::tune::kPlanStoreVersion) {
          std::cerr << "contradictory flags: --backend="
                    << rt::core::backend_name(o.backend)
                    << (o.backend_auto ? " (auto)" : "")
                    << " names a planner backend, but " << store
                    << " is a pre-backend plan store (version "
                    << ver->as_int() << " < " << rt::tune::kPlanStoreVersion
                    << ") whose winners carry no backend id; re-tune with "
                       "--tune=on to regenerate it\n";
          std::exit(2);
        }
      }
      // Unreadable/corrupt stores fall through: rt::tune degrades those
      // to the model plan with a typed kCorrupt reason at load time.
    }
  }
  return o;
}

}  // namespace rt::bench
