#include "rt/bench/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

namespace rt::bench {

namespace {
std::ofstream& csv_stream() {
  static std::ofstream s;
  return s;
}

std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void csv_row(const std::vector<std::string>& cells) {
  auto& s = csv_stream();
  if (!s.is_open()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) s << ',';
    s << csv_escape(cells[i]);
  }
  s << '\n';
}
}  // namespace

void set_csv_sink(const std::string& path) {
  close_csv_sink();
  csv_stream().open(path, std::ios::app);
}

void close_csv_sink() {
  if (csv_stream().is_open()) csv_stream().close();
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return std::string(buf);
}

void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
      w[c] = std::max(w[c], r[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::cout << "  ";
      std::cout.width(static_cast<std::streamsize>(w[c]));
      std::cout << r[c];
    }
    std::cout << "\n";
  };
  print_row(header);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + 2;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& r : rows) print_row(r);

  csv_row(header);
  for (const auto& r : rows) csv_row(r);
  if (csv_stream().is_open()) csv_stream() << '\n';
}

void print_series(const std::string& title, const std::string& xlabel,
                  const std::vector<long>& xs,
                  const std::vector<std::string>& names,
                  const std::vector<std::vector<double>>& ys, int prec) {
  std::cout << "\n== " << title << " ==\n";
  if (csv_stream().is_open()) csv_stream() << "# " << title << '\n';
  std::vector<std::string> header{xlabel};
  header.insert(header.end(), names.begin(), names.end());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{std::to_string(xs[i])};
    for (const auto& series : ys) {
      row.push_back(i < series.size() ? fmt(series[i], prec) : "-");
    }
    rows.push_back(std::move(row));
  }
  print_table(header, rows);
}

}  // namespace rt::bench
