#include "rt/bench/runner.hpp"

#include "rt/bench/options.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "rt/array/address_space.hpp"
#include "rt/core/cache_topology.hpp"
#include "rt/guard/fault_injector.hpp"
#include "rt/guard/watchdog.hpp"
#include "rt/array/array3d.hpp"
#include "rt/cachesim/hierarchy.hpp"
#include "rt/cachesim/traced_array.hpp"
#include "rt/kernels/jacobi2d.hpp"
#include "rt/kernels/jacobi3d.hpp"
#include "rt/kernels/oblivious.hpp"
#include "rt/kernels/redblack.hpp"
#include "rt/kernels/resid.hpp"
#include "rt/multigrid/operators.hpp"
#include "rt/multigrid/par_operators.hpp"
#include "rt/par/par_kernels.hpp"
#include "rt/par/thread_pool.hpp"
#include "rt/simd/par_rows.hpp"
#include "rt/simd/row_kernels.hpp"

namespace rt::bench {

namespace {

using rt::array::Array2D;
using rt::array::Array3D;
using rt::array::Dims3;
using rt::cachesim::CacheHierarchy;
using rt::cachesim::TracedArray2D;
using rt::cachesim::TracedArray3D;
using rt::core::TilingPlan;
using rt::core::Transform;
using rt::kernels::KernelId;

/// Deterministic smooth-ish initialisation (values are irrelevant to the
/// cache trace; they only need to stay finite across sweeps).
void init_grid(Array3D<double>& a, double scale) {
  for (long k = 0; k < a.n3(); ++k) {
    for (long j = 0; j < a.n2(); ++j) {
      for (long i = 0; i < a.n1(); ++i) {
        a(i, j, k) = scale * (0.001 * static_cast<double>(i) +
                              0.002 * static_cast<double>(j) +
                              0.003 * static_cast<double>(k));
      }
    }
  }
}

/// Interior points of an n1 x n2 x n3 grid (one boundary layer in every
/// dimension).  All three extents matter: the old two-scalar form silently
/// squared n1 and miscounted non-cubic grids.
std::uint64_t interior(long n1, long n2, long n3) {
  return static_cast<std::uint64_t>(n1 - 2) *
         static_cast<std::uint64_t>(n2 - 2) *
         static_cast<std::uint64_t>(n3 - 2);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One full measured time step of a kernel, templated over accessors.
/// Plans with LoopSchedule::kRecursive (the oblivious backend) run the
/// cache-oblivious recursive forms with plan.tile as the base case; tiled
/// flat plans run the paper's strip-mined nests.
struct JacobiStep {
  double c = 1.0 / 6.0;
  TilingPlan plan;
  template <class A, class B>
  void operator()(A& a, B& b) const {
    if (plan.schedule == rt::core::LoopSchedule::kRecursive) {
      rt::kernels::jacobi3d_oblivious(a, b, c, plan.tile);
      rt::kernels::copy_interior_oblivious(b, a, plan.tile);
      return;
    }
    if (plan.tiled) {
      rt::kernels::jacobi3d_tiled(a, b, c, plan.tile);
    } else {
      rt::kernels::jacobi3d(a, b, c);
    }
    rt::kernels::copy_interior(b, a);
  }
};

struct RedBlackStep {
  double c1 = 0.4, c2 = 0.1;
  TilingPlan plan;
  template <class A>
  void operator()(A& a) const {
    if (plan.schedule == rt::core::LoopSchedule::kRecursive) {
      rt::kernels::redblack_oblivious(a, c1, c2, plan.tile);
    } else if (plan.tiled) {
      rt::kernels::redblack_tiled(a, c1, c2, plan.tile);
    } else {
      rt::kernels::redblack_naive(a, c1, c2);
    }
  }
};

struct ResidStep {
  rt::kernels::ResidCoeffs a = rt::kernels::nas_mg_a();
  TilingPlan plan;
  template <class R, class V, class U>
  void operator()(R& r, V& v, U& u) const {
    if (plan.schedule == rt::core::LoopSchedule::kRecursive) {
      rt::kernels::resid_oblivious(r, v, u, a, plan.tile);
    } else if (plan.tiled) {
      rt::kernels::resid_tiled(r, v, u, a, plan.tile);
    } else {
      rt::kernels::resid(r, v, u, a);
    }
  }
};

struct PsinvStep {
  rt::multigrid::SmootherCoeffs c = rt::multigrid::nas_mg_c();
  TilingPlan plan;
  template <class U, class R>
  void operator()(U& u, R& r) const {
    if (plan.schedule == rt::core::LoopSchedule::kRecursive) {
      rt::multigrid::psinv_oblivious(u, r, c, plan.tile);
    } else if (plan.tiled) {
      rt::multigrid::psinv_tiled(u, r, c, plan.tile);
    } else {
      rt::multigrid::psinv(u, r, c);
    }
  }
};

/// Flops per time step (stencil nest(s); the Jacobi copy-back adds none).
std::uint64_t flops_per_step(KernelId id, long n1, long n2, long n3) {
  return rt::kernels::kernel_info(id).flops_per_point * interior(n1, n2, n3);
}

/// Host timing loop: run `step` until the time budget is met.  Fills in
/// res.host_mflops, the warm-up/measure phase stats, and — when
/// opts.counters resolves to enabled — the hardware-counter block over the
/// measured iterations (warm-up excluded).
template <class StepFn>
void time_host(StepFn&& step, std::uint64_t flops_per_iter,
               const RunOptions& opts, RunResult& res) {
  {
    // Warm-up iteration (page faults, cache warm-up).
    rt::obs::ScopedTimer t(res.warmup);
    step();
  }
  // requested records the *intent* (any mode but off), so a host without
  // perf-event access still reports an explicit hw block with
  // available == false instead of silently omitting it.
  res.hw.requested = opts.counters != rt::obs::CounterMode::kOff;
  std::optional<rt::obs::PerfCounters> pc;
  if (rt::obs::counters_enabled(opts.counters)) {
    pc.emplace();
    res.hw.available = pc->available();
  }
  int iters = 0;
  if (pc) pc->start();
  const double t0 = now_seconds();
  double t1 = t0;
  do {
    // Injected-hang site (rt::guard kHang): a wedged measured step, the
    // case the run watchdog exists for.  armed() is one relaxed load.
    if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kHang)) {
      rt::guard::FaultInjector::instance().hang_point();
    }
    rt::obs::ScopedTimer t(res.measure);
    step();
    ++iters;
    t1 = now_seconds();
  } while (t1 - t0 < opts.min_host_seconds);
  if (pc) {
    pc->stop();
    res.hw.readings = pc->read();
  }
  res.hw.iters = iters;
  res.host_mflops =
      static_cast<double>(flops_per_iter) * iters / (t1 - t0) / 1e6;
}

/// The body of run_kernel_with_plan, minus planning and watchdog concerns.
RunResult run_with_plan_impl(KernelId id, const rt::core::TilingPlan& plan,
                             long n, const RunOptions& opts) {
  if (n < 4) throw std::invalid_argument("run_kernel: n too small");
  const rt::kernels::KernelInfo& info = rt::kernels::kernel_info(id);
  RunResult res;
  res.plan = plan;
  if (opts.simd_align) {
    // Opt-in vector alignment: round the allocation's leading dimension up
    // after the padding search (never changes which pad the planner chose).
    res.plan.dip = rt::simd::align_leading(res.plan.dip);
  }

  const long kd = opts.k_dim;
  const Dims3 dims = Dims3::padded(n, n, kd, res.plan.dip, res.plan.djp);
  if (!dims.checked_alloc_elems()) {
    // External plans (run_kernel_with_plan callers) reach here without
    // going through plan_for_checked's overflow gate.
    res.status = rt::guard::Status::kOverflow;
    res.status_detail = "allocation size overflows long for padded dims " +
                        std::to_string(res.plan.dip) + "x" +
                        std::to_string(res.plan.djp) + "x" +
                        std::to_string(kd);
    return res;
  }

  // Allocate the kernel's arrays and place them back to back (Fortran
  // COMMON style) in the simulated address space.  Allocation failure —
  // real exhaustion at production problem sizes, or an injected fault —
  // becomes a skipped-and-recorded row, never a crash mid-sweep.
  std::vector<Array3D<double>> arrays;
  try {
    for (int i = 0; i < info.num_arrays; ++i) {
      arrays.emplace_back(dims);
      init_grid(arrays.back(), 1.0 / (1.0 + i));
    }
  } catch (const std::bad_alloc&) {
    res.status = rt::guard::Status::kAllocFailed;
    res.status_detail = "allocation failed for " +
                        std::to_string(info.num_arrays) + " arrays of " +
                        std::to_string(dims.alloc_elems()) + " doubles";
    return res;
  }
  // Injected input corruption (rt::guard kNanInput): one poisoned interior
  // element, which the stencil spreads and the --verify sweep must catch.
  // The *last* array is always a kernel input (JACOBI b, RESID u, PSINV r,
  // REDBLACK in-place); arrays[0] is the output for most kernels and the
  // first sweep would silently overwrite the poison.
  if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kNanInput) &&
      rt::guard::FaultInjector::instance().should_fail(
          rt::guard::FaultKind::kNanInput)) {
    arrays.back()(n / 2, n / 2, kd / 2) =
        std::numeric_limits<double>::quiet_NaN();
  }
  rt::array::AddressSpace space(0, 64);
  std::vector<std::uint64_t> bases;
  for (int i = 0; i < info.num_arrays; ++i) {
    bases.push_back(space.place("arr" + std::to_string(i),
                                static_cast<std::uint64_t>(dims.alloc_elems())));
  }
  res.mem_elems = static_cast<double>(dims.alloc_elems()) * info.num_arrays;

  const std::uint64_t fl_step = flops_per_step(id, n, n, kd);

  if (opts.simulate) {
    CacheHierarchy hier(opts.l1, opts.l2);
    auto run_traced = [&](auto&& stepfn, auto&&... accs) {
      for (int t = 0; t < opts.time_steps; ++t) {
        if (rt::guard::FaultInjector::armed(rt::guard::FaultKind::kHang)) {
          rt::guard::FaultInjector::instance().hang_point();
        }
        stepfn(accs...);
      }
    };
    switch (id) {
      case KernelId::kJacobi: {
        TracedArray3D<double> a(arrays[0], bases[0], hier);
        TracedArray3D<double> b(arrays[1], bases[1], hier);
        run_traced(JacobiStep{1.0 / 6.0, res.plan}, a, b);
        break;
      }
      case KernelId::kRedBlack: {
        TracedArray3D<double> a(arrays[0], bases[0], hier);
        run_traced(RedBlackStep{0.4, 0.1, res.plan}, a);
        break;
      }
      case KernelId::kResid: {
        TracedArray3D<double> r(arrays[0], bases[0], hier);
        TracedArray3D<double> v(arrays[1], bases[1], hier);
        TracedArray3D<double> u(arrays[2], bases[2], hier);
        run_traced(ResidStep{rt::kernels::nas_mg_a(), res.plan}, r, v, u);
        break;
      }
      case KernelId::kPsinv: {
        TracedArray3D<double> u(arrays[0], bases[0], hier);
        TracedArray3D<double> r(arrays[1], bases[1], hier);
        run_traced(PsinvStep{rt::multigrid::nas_mg_c(), res.plan}, u, r);
        break;
      }
    }
    rt::cachesim::HierarchyStats st = hier.stats();
    st.flops = fl_step * static_cast<std::uint64_t>(opts.time_steps);
    res.l1_miss_pct = 100.0 * st.l1.miss_rate();
    res.l2_miss_pct = 100.0 * st.l2_global_miss_rate();
    res.sim_accesses = st.l1.accesses;
    res.sim_flops = st.flops;
    res.sim_mflops = rt::cachesim::PerfModel(opts.perf).mflops(st);
  }

  if (opts.time_host) {
    // threads > 1 dispatches the native arrays to the rt::par kernels over
    // the JI tile grid (or over K planes for untiled plans); --simd=auto/
    // avx2 swaps the accessor loops for the rt::simd row sweeps in both
    // the serial and the parallel case (bit-identical either way).
    // Recursive (oblivious) plans carry tiled = true with the base tile,
    // so the SIMD/pool fast paths run them as flat tiles of the base case
    // — the same block set the recursion bottoms out at, still
    // bit-identical; only the serial-scalar path (and simulation) walks
    // the true recursion.
    using rt::simd::SimdLevel;
    res.threads_requested = opts.threads > 1 ? opts.threads : 1;
    res.simd_requested = opts.simd;
    std::unique_ptr<rt::par::ThreadPool> pool;
    if (opts.threads > 1) {
      pool = std::make_unique<rt::par::ThreadPool>(opts.threads);
      res.threads = pool->num_threads();
    }
    const SimdLevel lvl = rt::simd::resolve(opts.simd);
    res.simd = lvl;
    const bool tiled = res.plan.tiled;
    const rt::core::IterTile tile = res.plan.tile;
    std::function<void()> step;
    switch (id) {
      case KernelId::kJacobi: {
        const double c = 1.0 / 6.0;
        if (lvl != SimdLevel::kScalar && pool) {
          step = [&, c, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::jacobi3d_tiled_rows_par(*pool, arrays[0], arrays[1],
                                                c, tile, lvl);
            } else {
              rt::simd::jacobi3d_rows_par(*pool, arrays[0], arrays[1], c,
                                          lvl);
            }
            rt::simd::copy_interior_rows_par(*pool, arrays[1], arrays[0],
                                             lvl);
          };
        } else if (lvl != SimdLevel::kScalar) {
          step = [&, c, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::jacobi3d_tiled_rows(arrays[0], arrays[1], c, tile,
                                            lvl);
            } else {
              rt::simd::jacobi3d_rows(arrays[0], arrays[1], c, lvl);
            }
            rt::simd::copy_interior_rows(arrays[1], arrays[0], lvl);
          };
        } else if (pool) {
          step = [&, c, tiled, tile] {
            if (tiled) {
              rt::par::jacobi3d_tiled_par(*pool, arrays[0], arrays[1], c,
                                          tile);
            } else {
              rt::par::jacobi3d_par(*pool, arrays[0], arrays[1], c);
            }
            rt::par::copy_interior_par(*pool, arrays[1], arrays[0]);
          };
        } else {
          step = [&] { JacobiStep{1.0 / 6.0, res.plan}(arrays[0], arrays[1]); };
        }
        break;
      }
      case KernelId::kRedBlack: {
        const double c1 = 0.4, c2 = 0.1;
        if (lvl != SimdLevel::kScalar && pool) {
          step = [&, c1, c2, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::redblack_tiled_rows_par(*pool, arrays[0], c1, c2,
                                                tile, lvl);
            } else {
              rt::simd::redblack_rows_par(*pool, arrays[0], c1, c2, lvl);
            }
          };
        } else if (lvl != SimdLevel::kScalar) {
          step = [&, c1, c2, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::redblack_tiled_rows(arrays[0], c1, c2, tile, lvl);
            } else {
              rt::simd::redblack_rows(arrays[0], c1, c2, lvl);
            }
          };
        } else if (pool) {
          step = [&, c1, c2, tiled, tile] {
            if (tiled) {
              rt::par::redblack_tiled_par(*pool, arrays[0], c1, c2, tile);
            } else {
              rt::par::redblack_par(*pool, arrays[0], c1, c2);
            }
          };
        } else {
          step = [&] { RedBlackStep{0.4, 0.1, res.plan}(arrays[0]); };
        }
        break;
      }
      case KernelId::kResid: {
        const auto a = rt::kernels::nas_mg_a();
        if (lvl != SimdLevel::kScalar && pool) {
          step = [&, a, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::resid_tiled_rows_par(*pool, arrays[0], arrays[1],
                                             arrays[2], a, tile, lvl);
            } else {
              rt::simd::resid_rows_par(*pool, arrays[0], arrays[1],
                                       arrays[2], a, lvl);
            }
          };
        } else if (lvl != SimdLevel::kScalar) {
          step = [&, a, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::resid_tiled_rows(arrays[0], arrays[1], arrays[2], a,
                                         tile, lvl);
            } else {
              rt::simd::resid_rows(arrays[0], arrays[1], arrays[2], a, lvl);
            }
          };
        } else if (pool) {
          step = [&, a, tiled, tile] {
            if (tiled) {
              rt::par::resid_tiled_par(*pool, arrays[0], arrays[1],
                                       arrays[2], a, tile);
            } else {
              rt::par::resid_par(*pool, arrays[0], arrays[1], arrays[2], a);
            }
          };
        } else {
          step = [&] {
            ResidStep{rt::kernels::nas_mg_a(), res.plan}(arrays[0], arrays[1],
                                                         arrays[2]);
          };
        }
        break;
      }
      case KernelId::kPsinv: {
        const auto c = rt::multigrid::nas_mg_c();
        if (lvl != SimdLevel::kScalar && pool) {
          step = [&, c, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::psinv_tiled_rows_par(*pool, arrays[0], arrays[1], c,
                                             tile, lvl);
            } else {
              rt::simd::psinv_rows_par(*pool, arrays[0], arrays[1], c, lvl);
            }
          };
        } else if (lvl != SimdLevel::kScalar) {
          step = [&, c, tiled, tile, lvl] {
            if (tiled) {
              rt::simd::psinv_tiled_rows(arrays[0], arrays[1], c, tile, lvl);
            } else {
              rt::simd::psinv_rows(arrays[0], arrays[1], c, lvl);
            }
          };
        } else if (pool) {
          step = [&, c, tiled, tile] {
            if (tiled) {
              rt::multigrid::psinv_tiled_par(*pool, arrays[0], arrays[1], c,
                                             tile);
            } else {
              rt::multigrid::psinv_par(*pool, arrays[0], arrays[1], c);
            }
          };
        } else {
          step = [&] {
            PsinvStep{rt::multigrid::nas_mg_c(), res.plan}(arrays[0],
                                                           arrays[1]);
          };
        }
        break;
      }
    }
    time_host(step, fl_step, opts, res);
  }

  if (opts.verify != rt::guard::VerifyMode::kOff) {
    // Post-run guardrail: NaN/Inf anywhere in any array's logical region
    // (simulation mutates the same native arrays through the traced
    // accessors, so one sweep covers both execution paths).
    res.verify_mode = opts.verify;
    long bad = 0;
    if (opts.verify == rt::guard::VerifyMode::kPara && opts.threads > 1) {
      rt::par::ThreadPool pool(opts.threads);
      for (const auto& a : arrays) bad += rt::guard::count_nonfinite_par(pool, a);
    } else {
      for (const auto& a : arrays) bad += rt::guard::count_nonfinite(a);
    }
    res.nonfinite = bad;
    if (bad > 0 && res.status == rt::guard::Status::kOk) {
      res.status = rt::guard::Status::kNonFinite;
      res.status_detail = std::to_string(bad) +
                          " non-finite elements after the measured run";
    }
  }
  return res;
}

}  // namespace

RunResult run_kernel(KernelId id, Transform tr, long n, const RunOptions& opts) {
  // Through the PlanCache when the caller provides one (pinned autotuned
  // winners are served ahead of the model search); direct otherwise.
  // Either way planning routes through opts.backend — kModel against the
  // same geometry keys and plans exactly as the historical direct path.
  const rt::core::StencilSpec& spec = rt::kernels::kernel_info(id).spec;
  const rt::core::CacheGeom geom = opts.geom();
  const rt::core::PlanReport rep =
      opts.plan_cache != nullptr
          ? opts.plan_cache->plan_backend(opts.backend, tr, geom, n, n, spec,
                                          opts.k_dim)
          : rt::core::plan_with_backend(opts.backend, tr, geom, n, n, spec,
                                        opts.k_dim);
  if (rep.status == rt::guard::Status::kOverflow) {
    // The planned allocation cannot be represented: skip-and-record, the
    // fallback plan would overflow just the same.
    RunResult res;
    res.plan = rep.plan;
    res.status = rep.status;
    res.status_detail = rep.detail;
    res.plan_status = rep.status;
    res.plan_detail = rep.detail;
    return res;
  }
  RunResult res = run_kernel_with_plan(id, rep.plan, n, opts);
  res.plan_status = rep.status;
  res.plan_detail = rep.detail;
  return res;
}

RunResult run_kernel_with_plan(KernelId id, const rt::core::TilingPlan& plan,
                               long n, const RunOptions& opts) {
  if (opts.timeout_seconds <= 0) return run_with_plan_impl(id, plan, n, opts);

  // Watchdog-supervised run: the worker closure owns every piece of state
  // it touches (the whole run context is built inside run_with_plan_impl on
  // the worker's stack; the result lands in shared heap state), so an
  // abandoned worker can never scribble on this frame — the contract
  // rt::guard::run_with_deadline requires.
  struct Shared {
    std::mutex m;
    RunResult res;
  };
  auto shared = std::make_shared<Shared>();
  const auto deadline = std::chrono::milliseconds(
      static_cast<long>(opts.timeout_seconds * 1000.0));
  const rt::guard::WatchdogResult w = rt::guard::run_with_deadline(
      [shared, id, plan, n, opts] {
        RunResult r = run_with_plan_impl(id, plan, n, opts);
        std::lock_guard<std::mutex> lk(shared->m);
        shared->res = std::move(r);
      },
      deadline);
  if (w.completed) {
    std::lock_guard<std::mutex> lk(shared->m);
    return std::move(shared->res);
  }
  RunResult res;
  res.plan = plan;
  res.status = rt::guard::Status::kTimeout;
  res.status_detail =
      "watchdog: run exceeded " + std::to_string(opts.timeout_seconds) +
      "s deadline" + (w.abandoned ? " (worker abandoned)" : "");
  return res;
}

MissRates run_jacobi2d_missrates(long n, const RunOptions& opts, long p1) {
  if (p1 <= 0) p1 = n;
  const rt::array::Dims2 d2 = rt::array::Dims2::padded(n, n, p1);
  Array2D<double> a(d2), b(d2);
  for (long j = 0; j < n; ++j) {
    for (long i = 0; i < n; ++i) {
      b(i, j) = 0.001 * static_cast<double>(i + j);
    }
  }
  rt::array::AddressSpace space(0, 64);
  // Use the allocator's own element count: a hand-computed p1 * n would
  // silently overlap the two ranges if Dims2 ever grew alignment slack.
  const std::uint64_t ba =
      space.place("a", static_cast<std::uint64_t>(d2.alloc_elems()));
  const std::uint64_t bb =
      space.place("b", static_cast<std::uint64_t>(d2.alloc_elems()));
  CacheHierarchy hier(opts.l1, opts.l2);
  TracedArray2D<double> ta(a, ba, hier), tb(b, bb, hier);
  // Stencil nest only (no copy-back): with the write-around L1 the store
  // stream cannot interfere, so the measurement isolates the intra-array
  // column reuse that Sections 1 and 2.1 reason about.
  for (int t = 0; t < opts.time_steps; ++t) {
    rt::kernels::jacobi2d(ta, tb, 0.25);
  }
  const auto st = hier.stats();
  return MissRates{100.0 * st.l1.miss_rate(), 100.0 * st.l2_global_miss_rate()};
}

MissRates run_jacobi3d_missrates(long n, long k, const RunOptions& opts) {
  const Dims3 dims = Dims3::unpadded(n, n, k);
  Array3D<double> a(dims), b(dims);
  init_grid(b, 1.0);
  rt::array::AddressSpace space(0, 64);
  const std::uint64_t ba =
      space.place("a", static_cast<std::uint64_t>(dims.alloc_elems()));
  const std::uint64_t bb =
      space.place("b", static_cast<std::uint64_t>(dims.alloc_elems()));
  CacheHierarchy hier(opts.l1, opts.l2);
  TracedArray3D<double> ta(a, ba, hier), tb(b, bb, hier);
  for (int t = 0; t < opts.time_steps; ++t) {
    rt::kernels::jacobi3d(ta, tb, 1.0 / 6.0);
    rt::kernels::copy_interior(tb, ta);
  }
  const auto st = hier.stats();
  return MissRates{100.0 * st.l1.miss_rate(), 100.0 * st.l2_global_miss_rate()};
}

rt::obs::JsonValue& append_json_record(rt::obs::MetricsWriter& w,
                                       const std::string& kernel, long n,
                                       const RunResult& r) {
  using rt::obs::CounterKind;
  using rt::obs::JsonValue;
  JsonValue& rec = w.add_record();
  rec.set("kernel", kernel)
      .set("n", n)
      .set("transform",
           std::string(rt::core::transform_name(r.plan.transform)))
      .set("backend", std::string(rt::core::backend_name(r.plan.backend)))
      .set("tile", r.plan.tiled
                       ? JsonValue(std::to_string(r.plan.tile.ti) + "x" +
                                   std::to_string(r.plan.tile.tj))
                       : JsonValue())
      .set("simd", rt::simd::simd_mode_name(r.simd_requested))
      .set("simd_level", rt::simd::simd_level_name(r.simd))
      .set("threads", r.threads)
      .set("threads_requested", r.threads_requested)
      .set("degraded", r.degraded())
      // Typed degradation reasons (rt::guard): why this row is partial, and
      // why the planner fell back, as stable tokens — "ok" on clean rows.
      .set("status", rt::guard::status_name(r.status))
      .set("plan_status", rt::guard::status_name(r.plan_status))
      // milli-MFlops precision, the rounding the jq reshape applied
      .set("mflops", std::round(r.host_mflops * 1000.0) / 1000.0);

  if (r.verify_mode != rt::guard::VerifyMode::kOff) {
    JsonValue v = JsonValue::object();
    v.set("mode", rt::guard::verify_mode_name(r.verify_mode))
        .set("nonfinite", r.nonfinite);
    rec.set("verify", std::move(v));
  } else {
    rec.set("verify", JsonValue());
  }

  if (r.sim_accesses > 0) {
    JsonValue sim = JsonValue::object();
    sim.set("l1_miss_pct", r.l1_miss_pct)
        .set("l2_miss_pct", r.l2_miss_pct)
        .set("mflops", r.sim_mflops)
        .set("accesses", static_cast<std::int64_t>(r.sim_accesses));
    rec.set("sim", std::move(sim));
  } else {
    rec.set("sim", JsonValue());
  }

  if (r.hw.requested) {
    JsonValue hw = JsonValue::object();
    hw.set("available", r.hw.available).set("iters", r.hw.iters);
    for (int i = 0; i < rt::obs::kNumCounters; ++i) {
      const auto k = static_cast<CounterKind>(i);
      const rt::obs::CounterValue& c = r.hw.readings[k];
      hw.set(rt::obs::counter_name(k),
             c.valid ? JsonValue(static_cast<std::int64_t>(c.value))
                     : JsonValue());
    }
    rec.set("hw", std::move(hw));
  } else {
    rec.set("hw", JsonValue());
  }
  return rec;
}

rt::obs::JsonValue temporal_json(const rt::core::TemporalPlan& p) {
  rt::obs::JsonValue v = rt::obs::JsonValue::object();
  v.set("mode", std::string(rt::core::temporal_mode_name(p.mode)))
      .set("tsteps", p.tsteps)
      .set("bk", p.bk)
      .set("tb", p.tb)
      .set("threads", p.threads)
      .set("team", p.team)
      .set("stages", static_cast<std::int64_t>(p.stages))
      .set("occupancy", std::round(p.occupancy * 1000.0) / 1000.0);
  return v;
}

long outer_cache_elems() {
  // Delegates to the shared rt::core probe (one sysfs parse per process,
  // one answer for every consumer — benches, temporal planner, rt::tune).
  return rt::core::host_cache_topology().outer_data_elems();
}

rt::obs::JsonValue plan_cache_json(const rt::core::PlanCacheStats& s) {
  rt::obs::JsonValue v = rt::obs::JsonValue::object();
  v.set("hits", static_cast<std::int64_t>(s.hits))
      .set("misses", static_cast<std::int64_t>(s.misses))
      .set("hit_rate", s.hit_rate())
      .set("pinned_hits", static_cast<std::int64_t>(s.pinned_hits))
      .set("evictions", static_cast<std::int64_t>(s.evictions));
  return v;
}

rt::obs::JsonValue tune_json(rt::tune::TuneMode mode,
                             const rt::tune::TuneResult& r) {
  rt::obs::JsonValue v = rt::obs::JsonValue::object();
  int skipped = 0;
  for (const auto& c : r.candidates) {
    if (!c.m.ok()) ++skipped;
  }
  const std::string origin =
      r.winner >= 0 ? r.candidates[static_cast<std::size_t>(r.winner)].origin
                    : std::string("model");
  v.set("mode", std::string(rt::tune::tune_mode_name(mode)))
      .set("key", r.key.str())
      .set("status", std::string(rt::guard::status_name(r.status)))
      .set("origin", origin)
      .set("candidates", static_cast<std::int64_t>(r.candidates.size()))
      .set("skipped", skipped)
      .set("winner_mflops", r.mflops_at(r.winner))
      .set("model_mflops", r.mflops_at(r.model))
      .set("worst_mflops", r.mflops_at(r.worst));
  return v;
}

std::string apply_tune_options(const BenchOptions& bo,
                               rt::core::PlanCache& cache) {
  const std::string mode = rt::tune::tune_mode_name(bo.tune);
  if (bo.tune == rt::tune::TuneMode::kOff) return "tune: off (model plans)";
  const std::string path = bo.resolved_plan_store();
  const rt::guard::Expected<rt::tune::PlanStore> loaded = rt::tune::load_store(
      path, rt::core::host_cache_topology().fingerprint());
  if (!loaded.ok()) {
    return "tune: " + mode + " — store " + path + " " +
           rt::guard::status_name(loaded.status()) + " (" + loaded.detail() +
           "); serving model plans";
  }
  const std::size_t n = rt::tune::install(loaded.value(), cache);
  return "tune: " + mode + " — pinned " + std::to_string(n) +
         " tuned winners from " + path;
}

rt::obs::JsonValue phases_json(
    const std::vector<std::pair<std::string, rt::obs::PhaseStats>>& phases) {
  rt::obs::JsonValue v = rt::obs::JsonValue::object();
  for (const auto& [name, p] : phases) {
    rt::obs::JsonValue ph = rt::obs::JsonValue::object();
    ph.set("count", p.count).set("total_s", p.total_s).set("mean_s",
                                                           p.mean_s());
    v.set(name, std::move(ph));
  }
  return v;
}

}  // namespace rt::bench
