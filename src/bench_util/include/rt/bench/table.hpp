#pragma once
// Plain-text table/series printers shaped like the paper's tables and
// figures (the "figures" print as aligned numeric series suitable for
// eyeballing and for gnuplot-style post-processing).

#include <string>
#include <vector>

namespace rt::bench {

/// Format a double with fixed precision.
std::string fmt(double v, int prec = 1);

/// Print an aligned table: header row + data rows, columns padded.
void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Print a figure-like series block: one x column and several y columns.
void print_series(const std::string& title, const std::string& xlabel,
                  const std::vector<long>& xs,
                  const std::vector<std::string>& names,
                  const std::vector<std::vector<double>>& ys, int prec = 2);

/// Optional machine-readable sink: when set (via --csv=PATH or
/// set_csv_sink), every print_table/print_series call also appends CSV
/// blocks to the file, so figure data can be plotted downstream without
/// scraping the ASCII output.
void set_csv_sink(const std::string& path);
void close_csv_sink();

}  // namespace rt::bench
