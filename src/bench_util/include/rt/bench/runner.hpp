#pragma once
// Experiment runner shared by the paper-reproduction benches and the
// integration tests: builds the (transform, kernel, size) configuration,
// allocates (possibly padded) arrays, runs the kernel trace-driven through
// the simulated UltraSparc2 hierarchy and/or natively for host timing, and
// reports the paper's metrics.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rt/cachesim/config.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/core/plan.hpp"
#include "rt/core/plan_cache.hpp"
#include "rt/guard/status.hpp"
#include "rt/guard/verify.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/obs/metrics_writer.hpp"
#include "rt/obs/perf_counters.hpp"
#include "rt/obs/phase_timer.hpp"
#include "rt/simd/simd.hpp"
#include "rt/tune/autotuner.hpp"

namespace rt::bench {

struct RunOptions {
  bool simulate = true;    ///< trace-driven cache simulation
  bool time_host = false;  ///< wall-clock host timing (secondary signal)
  int time_steps = 2;      ///< time-step iterations measured in simulation
  double min_host_seconds = 0.05;
  /// Execution width for *host* timing: > 1 runs the parallel kernels
  /// (rt::par) over the JI tile grid.  Trace-driven simulation always
  /// executes serially — TracedArray3D accessors mutate the shared cache
  /// hierarchy, and serial execution is what keeps traces deterministic.
  int threads = 1;
  /// SIMD fast path for *host* timing: kOff runs the accessor kernels,
  /// kAuto/kAvx2 dispatch to the rt::simd row kernels (bit-identical; see
  /// rt/simd/row_kernels.hpp).  Trace-driven simulation always uses the
  /// accessor kernels — TracedArray3D *is* the accessor concept.
  rt::simd::SimdMode simd = rt::simd::SimdMode::kOff;
  /// Opt-in: round the planned leading dimension up to the vector width
  /// (rt::simd::align_leading) after the padding search.
  bool simd_align = false;
  /// Hardware counters (rt::obs::PerfCounters) around the measured host
  /// loop: kOff never opens them, kAuto opens them when the capability
  /// probe succeeds, kOn always tries (reporting unavailable on failure).
  /// Only meaningful with time_host; simulation has exact counts already.
  rt::obs::CounterMode counters = rt::obs::CounterMode::kOff;
  /// Post-run NaN/Inf sweep over every array's logical region (--verify=):
  /// kPost sweeps serially, kPara splits K planes over a thread pool of
  /// `threads` workers.  A non-zero count marks the run kNonFinite.
  rt::guard::VerifyMode verify = rt::guard::VerifyMode::kOff;
  /// Watchdog deadline for the whole run (--timeout=SECS): > 0 runs the
  /// configuration on a supervised worker thread, and a run that exceeds
  /// the deadline returns a recorded Status::kTimeout row instead of
  /// wedging the sweep.  0 disables the watchdog.
  double timeout_seconds = 0;
  /// When set, run_kernel plans through this cache instead of calling
  /// plan_for_checked directly — so pinned (autotuned) winners installed by
  /// rt::tune are served ahead of the model plan.  nullptr (the default)
  /// keeps the direct planner path.
  rt::core::PlanCache* plan_cache = nullptr;
  /// Planner backend (rt/core/backend.hpp) run_kernel routes planning
  /// through: kModel (the default) is the paper's searches and the
  /// historical behaviour; kLattice plans conflict-aware tiles for the
  /// set-associative geometry of `l1`; kOblivious ignores the geometry and
  /// emits the recursive schedule.
  rt::core::Backend backend = rt::core::Backend::kModel;
  /// Whether the cache geometry is real (probed / configured) rather than
  /// a fallback guess.  Only consulted by --backend=auto style selection
  /// (rt::core::auto_backend) and recorded into CacheGeom::probed.
  bool cache_probed = true;
  long k_dim = 30;  ///< third array dimension (paper fixes it at 30)
  rt::cachesim::CacheConfig l1 = rt::cachesim::CacheConfig::ultrasparc2_l1();
  rt::cachesim::CacheConfig l2 = rt::cachesim::CacheConfig::ultrasparc2_l2();
  rt::cachesim::PerfModelParams perf =
      rt::cachesim::PerfModelParams::ultrasparc2_360();

  /// Planner target: L1 capacity in doubles (2048 for the 16K L1).
  long cs_elems() const { return static_cast<long>(l1.size_bytes / 8); }

  /// Backend planning geometry, derived from `l1` (elements of double).
  rt::core::CacheGeom geom() const {
    rt::core::CacheGeom g;
    g.cs_elems = cs_elems();
    g.line_elems = static_cast<long>(l1.line_bytes / 8);
    g.assoc = static_cast<long>(l1.assoc);
    g.probed = cache_probed;
    return g;
  }
};

/// Hardware-counter measurements of the host timing loop (rt::obs).
struct HwStats {
  bool requested = false;  ///< counters were enabled for this run
  bool available = false;  ///< the counter group actually opened
  /// Counter totals over the measured loop (warm-up excluded), already
  /// multiplex-scaled; slots that failed to open read invalid.
  rt::obs::CounterReadings readings;
  int iters = 0;  ///< measured step() iterations the totals cover
};

struct RunResult {
  rt::core::TilingPlan plan;
  double l1_miss_pct = 0;   ///< simulated L1 miss rate (percent)
  /// Simulated *global* L2 miss rate: L2 misses / all references, the
  /// convention consistent with the paper's Table 3 (local L2 ratios would
  /// rise as tiling removes easy L2 hits, which is not what it reports).
  double l2_miss_pct = 0;
  double sim_mflops = 0;    ///< perf-model MFlops (simulated machine)
  double host_mflops = 0;   ///< wall-clock MFlops on this host (0 if off)
  int threads = 1;          ///< execution width used for host timing
  /// Resolved SIMD level the host timing actually ran (kScalar when the
  /// accessor kernels ran, e.g. --simd=off or a kernel with no row path).
  rt::simd::SimdLevel simd = rt::simd::SimdLevel::kScalar;
  /// What the caller asked for, before capability fallbacks (e.g. a
  /// requested SIMD level the host cannot execute resolves lower; a
  /// degraded run would otherwise print rows that look like real data
  /// points).  degraded() flags that case so benches can annotate or skip
  /// the duplicates.
  int threads_requested = 1;
  rt::simd::SimdMode simd_requested = rt::simd::SimdMode::kOff;
  bool degraded() const {
    return threads < threads_requested ||
           rt::simd::resolve(simd_requested) != simd ||
           status != rt::guard::Status::kOk ||
           plan_status != rt::guard::Status::kOk;
  }
  /// Run-level outcome: kOk for a normal run; kOverflow / kAllocFailed when
  /// the configuration was skipped-and-recorded instead of run; kNonFinite
  /// when the verify sweep found NaN/Inf; kTimeout when the watchdog fired.
  /// Metrics of a non-kOk row are partial or zero — record, don't compare.
  rt::guard::Status status = rt::guard::Status::kOk;
  std::string status_detail;  ///< human-readable reason when status != kOk
  /// Planner outcome from plan_for_checked (run_kernel only): records the
  /// typed reason when the requested transform degraded (kFellBackUntiled,
  /// kInvalidArgument, kInfeasible) while the run itself proceeded on the
  /// fallback plan.
  rt::guard::Status plan_status = rt::guard::Status::kOk;
  std::string plan_detail;
  /// Verify sweep results (all-zero when RunOptions::verify was kOff).
  rt::guard::VerifyMode verify_mode = rt::guard::VerifyMode::kOff;
  long nonfinite = 0;  ///< non-finite elements found across all arrays
  std::uint64_t sim_accesses = 0;
  std::uint64_t sim_flops = 0;
  double mem_elems = 0;  ///< total allocated elements across all arrays
  /// Host-timing phase breakdown: the single warm-up step and every
  /// measured step (count == HwStats::iters when counters ran).
  rt::obs::PhaseStats warmup;
  rt::obs::PhaseStats measure;
  HwStats hw;  ///< hardware counters (all-off unless RunOptions::counters)
};

/// Run one (kernel, transform, N) configuration on N x N x k_dim arrays.
RunResult run_kernel(rt::kernels::KernelId id, rt::core::Transform tr, long n,
                     const RunOptions& opts);

/// Same, but with an explicit externally computed tiling/padding plan
/// (used by the ablation benches to explore off-policy plans).
RunResult run_kernel_with_plan(rt::kernels::KernelId id,
                               const rt::core::TilingPlan& plan, long n,
                               const RunOptions& opts);

/// Simulated L1/L2 miss rates of the 2D Jacobi stencil nest on an n x n
/// array — used by the 2D-vs-3D motivation study (no copy-back, so the
/// intra-array column reuse is isolated).
struct MissRates {
  double l1_pct = 0;
  double l2_pct = 0;
};
/// @param p1  optional padded leading dimension (0 = unpadded)
MissRates run_jacobi2d_missrates(long n, const RunOptions& opts, long p1 = 0);

/// Same for 3D Jacobi on n x n x k arrays without tiling.
MissRates run_jacobi3d_missrates(long n, long k, const RunOptions& opts);

/// Append one flat record in the results/BENCH_*.json schema to @p w:
/// identification (kernel, n, transform, tile, simd, threads, requested
/// axes), host throughput, and nested "sim" / "hw" blocks (JSON null when
/// that signal was off).  This is the C++ replacement for the jq
/// reshaping in scripts/bench_to_json.sh.  Returns the record so callers
/// can append bench-specific blocks (e.g. "temporal") after the standard
/// fields.
rt::obs::JsonValue& append_json_record(rt::obs::MetricsWriter& w,
                                       const std::string& kernel, long n,
                                       const RunResult& r);

/// "temporal" block for temporal-blocking records: the executed
/// TemporalPlan as {mode, tsteps, bk, tb, threads, team, stages,
/// occupancy} (stable key order; golden-pinned).
rt::obs::JsonValue temporal_json(const rt::core::TemporalPlan& p);

/// Capacity in doubles of this host's outermost (largest) data cache,
/// probed from sysfs — the level a temporal plane window must stay
/// resident in.  Falls back to 32MB when the sysfs cache directory is
/// unavailable (containers, non-Linux).
long outer_cache_elems();

/// "plan_cache" block for app-level records: rt::core::PlanCache counters
/// as {hits, misses, hit_rate, pinned_hits, evictions} (stable key order;
/// golden-pinned).
rt::obs::JsonValue plan_cache_json(const rt::core::PlanCacheStats& s);

/// "tune" block for autotuned records: the calibration outcome as {mode,
/// key, status, origin, candidates, skipped, winner_mflops, model_mflops,
/// worst_mflops} (stable key order; golden-pinned).
rt::obs::JsonValue tune_json(rt::tune::TuneMode mode,
                             const rt::tune::TuneResult& r);

struct BenchOptions;  // options.hpp

/// Apply the --tune flags to @p cache: load the resolved plan store and pin
/// its winners, so subsequent cache.plan()/temporal() lookups serve the
/// measured plans ahead of the model search.  Returns a one-line summary
/// for bench headers.  A corrupt/stale/missing store installs nothing and
/// reports the typed reason — the bench keeps running on model plans.
std::string apply_tune_options(const BenchOptions& bo,
                               rt::core::PlanCache& cache);

/// "phases" block for app-level records: named per-operator wall-clock
/// phases in caller order, each as {count, total_s, mean_s}.
rt::obs::JsonValue phases_json(
    const std::vector<std::pair<std::string, rt::obs::PhaseStats>>& phases);

}  // namespace rt::bench
