#pragma once
// Experiment runner shared by the paper-reproduction benches and the
// integration tests: builds the (transform, kernel, size) configuration,
// allocates (possibly padded) arrays, runs the kernel trace-driven through
// the simulated UltraSparc2 hierarchy and/or natively for host timing, and
// reports the paper's metrics.

#include <cstdint>

#include "rt/cachesim/config.hpp"
#include "rt/cachesim/perf_model.hpp"
#include "rt/core/plan.hpp"
#include "rt/kernels/kernel_info.hpp"
#include "rt/simd/simd.hpp"

namespace rt::bench {

struct RunOptions {
  bool simulate = true;    ///< trace-driven cache simulation
  bool time_host = false;  ///< wall-clock host timing (secondary signal)
  int time_steps = 2;      ///< time-step iterations measured in simulation
  double min_host_seconds = 0.05;
  /// Execution width for *host* timing: > 1 runs the parallel kernels
  /// (rt::par) over the JI tile grid.  Trace-driven simulation always
  /// executes serially — TracedArray3D accessors mutate the shared cache
  /// hierarchy, and serial execution is what keeps traces deterministic.
  int threads = 1;
  /// SIMD fast path for *host* timing: kOff runs the accessor kernels,
  /// kAuto/kAvx2 dispatch to the rt::simd row kernels (bit-identical; see
  /// rt/simd/row_kernels.hpp).  Trace-driven simulation always uses the
  /// accessor kernels — TracedArray3D *is* the accessor concept.
  rt::simd::SimdMode simd = rt::simd::SimdMode::kOff;
  /// Opt-in: round the planned leading dimension up to the vector width
  /// (rt::simd::align_leading) after the padding search.
  bool simd_align = false;
  long k_dim = 30;  ///< third array dimension (paper fixes it at 30)
  rt::cachesim::CacheConfig l1 = rt::cachesim::CacheConfig::ultrasparc2_l1();
  rt::cachesim::CacheConfig l2 = rt::cachesim::CacheConfig::ultrasparc2_l2();
  rt::cachesim::PerfModelParams perf =
      rt::cachesim::PerfModelParams::ultrasparc2_360();

  /// Planner target: L1 capacity in doubles (2048 for the 16K L1).
  long cs_elems() const { return static_cast<long>(l1.size_bytes / 8); }
};

struct RunResult {
  rt::core::TilingPlan plan;
  double l1_miss_pct = 0;   ///< simulated L1 miss rate (percent)
  /// Simulated *global* L2 miss rate: L2 misses / all references, the
  /// convention consistent with the paper's Table 3 (local L2 ratios would
  /// rise as tiling removes easy L2 hits, which is not what it reports).
  double l2_miss_pct = 0;
  double sim_mflops = 0;    ///< perf-model MFlops (simulated machine)
  double host_mflops = 0;   ///< wall-clock MFlops on this host (0 if off)
  int threads = 1;          ///< execution width used for host timing
  /// Resolved SIMD level the host timing actually ran (kScalar when the
  /// accessor kernels ran, e.g. --simd=off or a kernel with no row path).
  rt::simd::SimdLevel simd = rt::simd::SimdLevel::kScalar;
  std::uint64_t sim_accesses = 0;
  std::uint64_t sim_flops = 0;
  double mem_elems = 0;  ///< total allocated elements across all arrays
};

/// Run one (kernel, transform, N) configuration on N x N x k_dim arrays.
RunResult run_kernel(rt::kernels::KernelId id, rt::core::Transform tr, long n,
                     const RunOptions& opts);

/// Same, but with an explicit externally computed tiling/padding plan
/// (used by the ablation benches to explore off-policy plans).
RunResult run_kernel_with_plan(rt::kernels::KernelId id,
                               const rt::core::TilingPlan& plan, long n,
                               const RunOptions& opts);

/// Simulated L1/L2 miss rates of the 2D Jacobi stencil nest on an n x n
/// array — used by the 2D-vs-3D motivation study (no copy-back, so the
/// intra-array column reuse is isolated).
struct MissRates {
  double l1_pct = 0;
  double l2_pct = 0;
};
/// @param p1  optional padded leading dimension (0 = unpadded)
MissRates run_jacobi2d_missrates(long n, const RunOptions& opts, long p1 = 0);

/// Same for 3D Jacobi on n x n x k arrays without tiling.
MissRates run_jacobi3d_missrates(long n, long k, const RunOptions& opts);

}  // namespace rt::bench
