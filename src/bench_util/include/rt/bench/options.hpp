#pragma once
// Tiny CLI option parser shared by the bench executables.
//
// Common flags:
//   --full          dense problem-size sweep (paper resolution; slower)
//   --nmin=N --nmax=N --nstep=N   override the sweep range
//   --steps=N       measured time steps per configuration
//   --host          also run host wall-clock timing
//   --no-sim        skip cache simulation
//   --threads=N     worker threads for host timing (parallel tiled kernels)
//   --simd=MODE     host-timing SIMD fast path: off | auto | avx2
//   --simd-align    round padded leading dims up to the vector width
//   --temporal=M    temporal blocking: off | skew | diamond (benches that
//                   support it restrict their temporal section to M)
//   --bk=N          temporal K-block depth / diamond width (0 = auto)
//   --counters=M    hardware counters around host timing: off | auto | on
//   --json=FILE     write records through rt::obs::MetricsWriter
//   --verify=M      post-run NaN/Inf sweep: off | post | para (rt::guard)
//   --timeout=SECS  per-run watchdog deadline; a hung run becomes a
//                   recorded "timeout" row instead of wedging the sweep
//   --backend=B     planner backend (rt/core/backend.hpp): model (the
//                   paper's searches; default) | lattice (associativity-
//                   aware tiles) | oblivious (cache-parameter-free
//                   recursive schedule) | auto (probed geometry -> lattice,
//                   unprobed -> oblivious)
//   --tune=M        measurement-driven plan autotuning (rt::tune):
//                   off | load (serve persisted winners, never calibrate) |
//                   on (serve winners, calibrate + persist missing keys)
//   --plan-store=F  tuned-plan store file (default: rt::tune's resolved
//                   default path, $RT_TUNE_STORE / ~/.cache/rt-tune)
//   --tsteps=N      fused time steps for temporal blocking (0 = derive
//                   from --steps)
//   --retries=N     serving benches: client retry attempts beyond the
//                   first (0 = retrying off)
//   --retry-budget-ms=N  total wall budget per call incl. backoff
//   --backoff-ms=N  base of the exponential retry backoff
//
// Numeric flags are validated in full: `--nmin=abc` or `--threads=` exit 2
// with a message instead of silently becoming 0 (and the default).
// Contradictory combinations are rejected the same way after parsing:
// an explicit `--tsteps=0` alongside `--temporal=skew|diamond` (a temporal
// schedule with nothing to fuse), `--tune=load` when the resolved plan
// store file does not exist (nothing to load — a silent model-plan run
// would masquerade as a tuned one), an explicit `--retry-budget-ms=0`
// while retries are enabled (retrying with zero time to retry in),
// `--backoff-ms=N` alongside an explicit `--retries=0` (a backoff curve
// no retry will ever walk), and an explicit `--backend=` combined with
// `--tune=load` against a pre-backend (version < 2) plan store — v1
// winners carry no backend id, so serving them under a named backend
// would silently answer with another planner's plans.

#include <string>
#include <vector>

#include "rt/core/backend.hpp"
#include "rt/core/temporal.hpp"
#include "rt/guard/verify.hpp"
#include "rt/obs/perf_counters.hpp"
#include "rt/simd/simd.hpp"
#include "rt/tune/tune.hpp"

namespace rt::bench {

struct BenchOptions {
  bool full = false;
  bool host = false;
  bool simulate = true;
  long nmin = 0, nmax = 0, nstep = 0;  // 0 = bench default
  int steps = 2;
  int threads = 0;  ///< --threads=N host-timing width (0 = flag not given)
  rt::simd::SimdMode simd = rt::simd::SimdMode::kOff;  ///< --simd=MODE
  bool simd_given = false;  ///< --simd= was on the command line
  bool simd_align = false;  ///< --simd-align leading-dim rounding
  /// --temporal=off|skew|diamond temporal-blocking schedule selection.
  rt::core::TemporalMode temporal = rt::core::TemporalMode::kOff;
  bool temporal_given = false;  ///< --temporal= was on the command line
  long bk = 0;  ///< --bk=N temporal block depth / diamond width (0 = auto)
  std::string csv;  ///< --csv=PATH: also append CSV blocks to this file
  /// --counters=off|auto|on hardware-counter policy for host timing.
  rt::obs::CounterMode counters = rt::obs::CounterMode::kAuto;
  std::string json;  ///< --json=PATH: write MetricsWriter records here
  /// --verify=off|post|para post-run NaN/Inf sweep (rt::guard).
  rt::guard::VerifyMode verify = rt::guard::VerifyMode::kOff;
  /// --timeout=SECS per-run watchdog deadline (0 = off).
  double timeout_seconds = 0;
  /// --backend=model|lattice|oblivious|auto planner backend selection
  /// (rt/core/backend.hpp).  "auto" keeps backend at kModel here and sets
  /// backend_auto; benches resolve it against the probed cache geometry
  /// via rt::core::auto_backend once they know it.
  rt::core::Backend backend = rt::core::Backend::kModel;
  bool backend_given = false;  ///< --backend= was on the command line
  bool backend_auto = false;   ///< --backend=auto: resolve against geometry
  /// --tune=off|load|on autotuning policy (rt::tune).
  rt::tune::TuneMode tune = rt::tune::TuneMode::kOff;
  /// --plan-store=FILE tuned-plan store ("" = rt::tune default path).
  std::string plan_store;
  /// --tsteps=N fused time steps for temporal blocking (0 = derive from
  /// steps; an *explicit* 0 with --temporal=skew|diamond exits 2).
  int tsteps = 0;
  bool tsteps_given = false;  ///< --tsteps= was on the command line
  /// --retries=N retry attempts beyond the first for serving benches
  /// (0 = retrying disabled; rt::resil policy).
  int retries = 3;
  bool retries_given = false;  ///< --retries= was on the command line
  /// --retry-budget-ms=N total wall budget per retried call (an explicit
  /// 0 with retries enabled exits 2).
  int retry_budget_ms = 2000;
  bool retry_budget_given = false;  ///< --retry-budget-ms= was given
  /// --backoff-ms=N base exponential backoff (given with an explicit
  /// --retries=0 exits 2).
  int backoff_ms = 5;
  bool backoff_given = false;  ///< --backoff-ms= was on the command line

  /// The store file --tune=load/on will use: plan_store if given, else
  /// rt::tune::default_store_path().
  std::string resolved_plan_store() const;

  /// The backend a bench should plan with: the named one, or — for
  /// --backend=auto — rt::core::auto_backend over @p geom (typically
  /// RunOptions::geom()), so probed hosts get the lattice backend and
  /// unprobed ones degrade to the cache-oblivious planner.
  rt::core::Backend resolved_backend(const rt::core::CacheGeom& geom) const;

  /// Sweep of problem sizes honouring the defaults and overrides.
  std::vector<long> sweep(long def_min, long def_max, long def_step,
                          long full_step) const;
};

BenchOptions parse_options(int argc, char** argv);

}  // namespace rt::bench
