#include "rt/core/plan.hpp"

#include <cmath>

#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {

std::string_view transform_name(Transform t) {
  switch (t) {
    case Transform::kOrig: return "Orig";
    case Transform::kTile: return "Tile";
    case Transform::kEuc3d: return "Euc3D";
    case Transform::kGcdPad: return "GcdPad";
    case Transform::kPad: return "Pad";
    case Transform::kGcdPadNT: return "GcdPadNT";
  }
  return "?";
}

const std::vector<Transform>& all_transforms() {
  static const std::vector<Transform> kAll = {
      Transform::kOrig,   Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad,  Transform::kGcdPadNT,
  };
  return kAll;
}

std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kModel: return "model";
    case Backend::kLattice: return "lattice";
    case Backend::kOblivious: return "oblivious";
  }
  return "?";
}

bool parse_backend(const std::string& s, Backend* out) {
  for (Backend b : all_backends()) {
    if (s == backend_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> kAll = {
      Backend::kModel,
      Backend::kLattice,
      Backend::kOblivious,
  };
  return kAll;
}

std::string_view schedule_name(LoopSchedule s) {
  switch (s) {
    case LoopSchedule::kFlat: return "flat";
    case LoopSchedule::kTiled: return "tiled";
    case LoopSchedule::kRecursive: return "recursive";
  }
  return "?";
}

bool parse_schedule(const std::string& s, LoopSchedule* out) {
  for (LoopSchedule l :
       {LoopSchedule::kFlat, LoopSchedule::kTiled, LoopSchedule::kRecursive}) {
    if (s == schedule_name(l)) {
      *out = l;
      return true;
    }
  }
  return false;
}

TilingPlan plan_for(Transform transform, long cs, long di, long dj,
                    const StencilSpec& spec) {
  TilingPlan p;
  p.transform = transform;
  p.dip = di;
  p.djp = dj;

  const auto set_tile = [&p](const IterTile& t) {
    if (t.ti > 0 && t.tj > 0) {
      p.tiled = true;
      p.tile = t;
      p.schedule = LoopSchedule::kTiled;
    }
  };

  switch (transform) {
    case Transform::kOrig:
      break;
    case Transform::kTile:
      set_tile(square_tile(cs, spec).tile);
      break;
    case Transform::kEuc3d:
      set_tile(euc3d(cs, di, dj, spec).tile);
      break;
    case Transform::kGcdPad: {
      const PadPlan g = gcd_pad(cs, di, dj, spec);
      p.dip = g.dip;
      p.djp = g.djp;
      set_tile(g.tile);
      break;
    }
    case Transform::kPad: {
      const PadPlan q = pad(cs, di, dj, spec);
      p.dip = q.dip;
      p.djp = q.djp;
      set_tile(q.tile);
      break;
    }
    case Transform::kGcdPadNT: {
      const PadPlan g = gcd_pad(cs, di, dj, spec);
      p.dip = g.dip;
      p.djp = g.djp;
      break;
    }
  }
  return p;
}

}  // namespace rt::core
