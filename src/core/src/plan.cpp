#include "rt/core/plan.hpp"

#include <cmath>

#include "rt/core/euc3d.hpp"
#include "rt/core/gcdpad.hpp"
#include "rt/core/pad.hpp"
#include "rt/core/square_tile.hpp"

namespace rt::core {

std::string_view transform_name(Transform t) {
  switch (t) {
    case Transform::kOrig: return "Orig";
    case Transform::kTile: return "Tile";
    case Transform::kEuc3d: return "Euc3D";
    case Transform::kGcdPad: return "GcdPad";
    case Transform::kPad: return "Pad";
    case Transform::kGcdPadNT: return "GcdPadNT";
  }
  return "?";
}

const std::vector<Transform>& all_transforms() {
  static const std::vector<Transform> kAll = {
      Transform::kOrig,   Transform::kTile, Transform::kEuc3d,
      Transform::kGcdPad, Transform::kPad,  Transform::kGcdPadNT,
  };
  return kAll;
}

TilingPlan plan_for(Transform transform, long cs, long di, long dj,
                    const StencilSpec& spec) {
  TilingPlan p;
  p.transform = transform;
  p.dip = di;
  p.djp = dj;

  const auto set_tile = [&p](const IterTile& t) {
    if (t.ti > 0 && t.tj > 0) {
      p.tiled = true;
      p.tile = t;
    }
  };

  switch (transform) {
    case Transform::kOrig:
      break;
    case Transform::kTile:
      set_tile(square_tile(cs, spec).tile);
      break;
    case Transform::kEuc3d:
      set_tile(euc3d(cs, di, dj, spec).tile);
      break;
    case Transform::kGcdPad: {
      const PadPlan g = gcd_pad(cs, di, dj, spec);
      p.dip = g.dip;
      p.djp = g.djp;
      set_tile(g.tile);
      break;
    }
    case Transform::kPad: {
      const PadPlan q = pad(cs, di, dj, spec);
      p.dip = q.dip;
      p.djp = q.djp;
      set_tile(q.tile);
      break;
    }
    case Transform::kGcdPadNT: {
      const PadPlan g = gcd_pad(cs, di, dj, spec);
      p.dip = g.dip;
      p.djp = g.djp;
      break;
    }
  }
  return p;
}

}  // namespace rt::core
