#include "rt/core/pad2d.hpp"

#include <stdexcept>

namespace rt::core {

bool columns_well_spaced(long cs, long di, long window_cols, long guard) {
  for (long j = 1; j < window_cols; ++j) {
    const long r = (j * di) % cs;
    const long dist = r < cs - r ? r : cs - r;
    if (dist < guard) return false;
  }
  return true;
}

long pad2d(long cs, long di, long window_cols, long guard) {
  if (cs <= 0 || di <= 0 || window_cols < 1 || guard < 0) {
    throw std::invalid_argument("pad2d: bad arguments");
  }
  if (2 * guard * (window_cols - 1) > cs) {
    throw std::invalid_argument("pad2d: guard too large for window");
  }
  // The criterion recurs with period cs, so a pad < cs always exists when
  // feasible; in practice pads are a handful of elements.
  for (long p = 0; p < cs; ++p) {
    if (columns_well_spaced(cs, di + p, window_cols, guard)) return di + p;
  }
  throw std::invalid_argument("pad2d: no feasible pad found");
}

}  // namespace rt::core
