#include "rt/core/analysis.hpp"

namespace rt::core {

namespace {
JacobiPrediction finish(double b_misses, double line) {
  JacobiPrediction p;
  p.b_misses_per_point = b_misses;
  // + A store (write-around: always misses) + copy-back A read (1/L,
  // sequential) + copy-back B store (its line has left the cache by the
  // time the copy loop revisits it for any array larger than the cache).
  p.misses_per_point = b_misses + 1.0 + 1.0 / line + 1.0;
  p.l1_miss_pct = 100.0 * p.misses_per_point / p.accesses_per_point;
  return p;
}
}  // namespace

JacobiPrediction predict_jacobi3d_orig(long cs_elems, long line_elems,
                                       long n) {
  const double line = static_cast<double>(line_elems);
  double b_misses;
  if (2 * n * n <= cs_elems) {
    // Two planes fit: full group reuse, only the leading plane streams in.
    b_misses = 1.0 / line;
  } else if (3 * n <= cs_elems) {
    // Planes too large, three columns fit: the three plane/column-leading
    // references each stream (Section 1's argument).
    b_misses = 3.0 / line;
  } else {
    // Even the column window is lost: every B reference pays its own way
    // except unit-stride reuse within the line.
    b_misses = 6.0 / line + 2.0;  // coarse bound; pathological regime
  }
  return finish(b_misses, line);
}

JacobiPrediction predict_jacobi3d_tiled(long line_elems, const IterTile& t,
                                        const StencilSpec& spec) {
  const double line = static_cast<double>(line_elems);
  // Section 2.3: a TIxTJx(N-2) block fetches (TI+m)(TJ+n) elements of B
  // per (TI*TJ) iteration points = Cost(T) elements/point.
  return finish(cost(t, spec) / line, line);
}

}  // namespace rt::core
