// Cache-oblivious backend (PCOT / inncabs-style recursive Jacobi): no
// cache parameters consulted at all.  The plan carries a fixed
// overhead-amortizing base tile and LoopSchedule::kRecursive; the executor
// bisects the larger of the I/J extents until blocks fit the base case, so
// every cache level is exploited without knowing any of their sizes.  This
// is the clean degradation path on hosts whose cache geometry cannot be
// probed — the plan stays tiled (recursive), never untiled.

#include <algorithm>
#include <memory>
#include <string>

#include "backend_builtin.hpp"
#include "rt/core/backend.hpp"
#include "rt/core/cost.hpp"

namespace rt::core {

namespace {

using rt::guard::Status;

/// Base-case extents the recursion stops at: a long unit-stride run in I
/// to keep the inner loop vectorizable, a few rows of J so the base block
/// still reuses loaded lines.  Deliberately cache-size-free.
constexpr long kBaseTi = 64;
constexpr long kBaseTj = 8;

class ObliviousBackend final : public TilingBackend {
 public:
  Backend id() const override { return Backend::kOblivious; }

  Status select_strategy(const PlanRequest& req,
                         std::string* detail) const override {
    const StencilSpec& spec = req.spec;
    if (spec.halo < 0) {
      *detail = "stencil halo must be >= 0 (halo = " +
                std::to_string(spec.halo) + ")";
      return Status::kInvalidArgument;
    }
    if (req.di <= spec.trim_i || req.dj <= spec.trim_j) {
      *detail = "dimensions " + std::to_string(req.di) + "x" +
                std::to_string(req.dj) + " at or below the stencil halo (" +
                std::to_string(spec.trim_i) + "," +
                std::to_string(spec.trim_j) + "): no interior to tile";
      return Status::kInvalidArgument;
    }
    if (req.transform == Transform::kGcdPadNT) {
      *detail =
          "the oblivious backend does not pad: GcdPadNT has no oblivious plan";
      return Status::kInvalidArgument;
    }
    // Note: no cache checks — this backend ignores req.geom entirely.
    return Status::kOk;
  }

  Status optimize_shape(const PlanRequest& req, TilingPlan* plan,
                        std::string*) const override {
    if (req.transform == Transform::kOrig) return Status::kOk;
    const StencilSpec& spec = req.spec;
    plan->tiled = true;
    plan->tile = IterTile{std::min(kBaseTi, req.di - spec.trim_i),
                          std::min(kBaseTj, req.dj - spec.trim_j)};
    return Status::kOk;
  }

  LoopSchedule schedule(const PlanRequest&,
                        const TilingPlan& plan) const override {
    return plan.tiled ? LoopSchedule::kRecursive : LoopSchedule::kFlat;
  }
};

}  // namespace

namespace detail {

std::unique_ptr<TilingBackend> make_oblivious_backend() {
  return std::make_unique<ObliviousBackend>();
}

}  // namespace detail

}  // namespace rt::core
