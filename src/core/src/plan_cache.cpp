#include "rt/core/plan_cache.hpp"

namespace rt::core {

namespace {
/// Standard 64-bit hash combiner (boost::hash_combine's golden-ratio form).
inline void combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}
}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.transform);
  combine(seed, static_cast<std::size_t>(k.cs));
  combine(seed, static_cast<std::size_t>(k.di));
  combine(seed, static_cast<std::size_t>(k.dj));
  combine(seed, static_cast<std::size_t>(k.trim_i));
  combine(seed, static_cast<std::size_t>(k.trim_j));
  combine(seed, static_cast<std::size_t>(k.atd));
  combine(seed, static_cast<std::size_t>(k.halo));
  combine(seed, static_cast<std::size_t>(k.n3));
  combine(seed, static_cast<std::size_t>(k.backend));
  combine(seed, static_cast<std::size_t>(k.line_elems));
  combine(seed, static_cast<std::size_t>(k.assoc));
  return seed;
}

std::size_t TemporalKeyHash::operator()(const TemporalKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.mode);
  combine(seed, static_cast<std::size_t>(k.cs));
  combine(seed, static_cast<std::size_t>(k.n1));
  combine(seed, static_cast<std::size_t>(k.n2));
  combine(seed, static_cast<std::size_t>(k.n3));
  combine(seed, static_cast<std::size_t>(k.tsteps));
  combine(seed, static_cast<std::size_t>(k.bk));
  combine(seed, static_cast<std::size_t>(k.threads));
  combine(seed, static_cast<std::size_t>(k.halo));
  return seed;
}

PlanKey PlanCache::make_key(Transform transform, long cs, long di, long dj,
                            const StencilSpec& spec, long n3) {
  // Defaults for the trailing fields are the model backend's canonical key
  // shape (backend = kModel, line_elems = 0, assoc = 1) — identical to the
  // pre-backend key, so historical pins keep hitting.
  return PlanKey{transform,   cs,          di,       dj,
                 spec.trim_i, spec.trim_j, spec.atd, spec.halo, n3};
}

PlanKey PlanCache::make_backend_key(Backend backend, Transform transform,
                                    const CacheGeom& geom, long di, long dj,
                                    const StencilSpec& spec, long n3) {
  PlanKey key = make_key(transform, geom.cs_elems, di, dj, spec, n3);
  key.backend = backend;
  if (backend == Backend::kLattice) {
    // The only backend that reads the set geometry; the model assumes
    // direct-mapped and the oblivious backend ignores geometry entirely,
    // so their keys stay canonical (line_elems = 0, assoc = 1) and equal
    // geometries never fragment into duplicate entries.
    key.line_elems = geom.line_elems;
    key.assoc = geom.assoc;
  }
  return key;
}

TemporalKey PlanCache::make_temporal_key(TemporalMode mode, long cs, long n1,
                                         long n2, long n3, int tsteps,
                                         long bk, int threads, long halo) {
  return TemporalKey{mode, cs, n1, n2, n3, tsteps, bk, threads, halo};
}

PlanReport PlanCache::plan(Transform transform, long cs, long di, long dj,
                           const StencilSpec& spec, long n3) {
  // The historical entry point is the model backend against direct-mapped
  // geometry; make_backend_key canonicalizes to the identical key shape.
  CacheGeom geom;
  geom.cs_elems = cs;
  return plan_backend(Backend::kModel, transform, geom, di, dj, spec, n3);
}

PlanReport PlanCache::plan_backend(Backend backend, Transform transform,
                                   const CacheGeom& geom, long di, long dj,
                                   const StencilSpec& spec, long n3) {
  const PlanKey key =
      make_backend_key(backend, transform, geom, di, dj, spec, n3);
  {
    std::lock_guard<std::mutex> lock(m_);
    // Pinned (autotuned) winners are served ahead of the memoized model
    // search — the PlanCache lookup-order contract rt::tune relies on.
    const auto pit = pinned_.find(key);
    if (pit != pinned_.end()) {
      ++stats_.hits;
      ++stats_.pinned_hits;
      return pit->second;
    }
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Search outside the lock: concurrent first queries of the same key may
  // both run the planner, but every backend's plan() is pure, so both
  // compute the identical report and the second insert is a no-op.
  PlanReport rep =
      plan_with_backend(backend, transform, geom, di, dj, spec, n3);
  {
    std::lock_guard<std::mutex> lock(m_);
    ++stats_.misses;
    if (map_.emplace(key, rep).second) {
      order_.push_back(Order{false, key, TemporalKey{}});
      evict_locked();
    }
  }
  return rep;
}

TemporalReport PlanCache::temporal(TemporalMode mode, long cs, long n1,
                                   long n2, long n3, int tsteps, long bk,
                                   int threads, long halo) {
  const TemporalKey key =
      make_temporal_key(mode, cs, n1, n2, n3, tsteps, bk, threads, halo);
  {
    std::lock_guard<std::mutex> lock(m_);
    const auto pit = tpinned_.find(key);
    if (pit != tpinned_.end()) {
      ++stats_.hits;
      ++stats_.pinned_hits;
      return pit->second;
    }
    const auto it = tmap_.find(key);
    if (it != tmap_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Same no-lock search as plan(): temporal_plan_checked is pure.
  TemporalReport rep =
      temporal_plan_checked(mode, cs, n1, n2, n3, tsteps, bk, threads, halo);
  {
    std::lock_guard<std::mutex> lock(m_);
    ++stats_.misses;
    if (tmap_.emplace(key, rep).second) {
      order_.push_back(Order{true, PlanKey{}, key});
      evict_locked();
    }
  }
  return rep;
}

void PlanCache::pin(const PlanKey& key, const PlanReport& rep) {
  std::lock_guard<std::mutex> lock(m_);
  pinned_[key] = rep;
}

void PlanCache::pin_temporal(const TemporalKey& key,
                             const TemporalReport& rep) {
  std::lock_guard<std::mutex> lock(m_);
  tpinned_[key] = rep;
}

std::size_t PlanCache::pinned_size() const {
  std::lock_guard<std::mutex> lock(m_);
  return pinned_.size() + tpinned_.size();
}

void PlanCache::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(m_);
  capacity_ = cap;
  evict_locked();
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(m_);
  return capacity_;
}

void PlanCache::evict_locked() {
  if (capacity_ == 0) return;
  while (map_.size() + tmap_.size() > capacity_ && !order_.empty()) {
    const Order o = order_.front();
    order_.pop_front();
    const std::size_t erased =
        o.temporal ? tmap_.erase(o.tkey) : map_.erase(o.key);
    stats_.evictions += erased;
  }
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return map_.size() + tmap_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(m_);
  map_.clear();
  tmap_.clear();
  pinned_.clear();
  tpinned_.clear();
  order_.clear();
  stats_ = PlanCacheStats{};
}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

}  // namespace rt::core
