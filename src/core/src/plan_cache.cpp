#include "rt/core/plan_cache.hpp"

namespace rt::core {

namespace {
/// Standard 64-bit hash combiner (boost::hash_combine's golden-ratio form).
inline void combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}
}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.transform);
  combine(seed, static_cast<std::size_t>(k.cs));
  combine(seed, static_cast<std::size_t>(k.di));
  combine(seed, static_cast<std::size_t>(k.dj));
  combine(seed, static_cast<std::size_t>(k.trim_i));
  combine(seed, static_cast<std::size_t>(k.trim_j));
  combine(seed, static_cast<std::size_t>(k.atd));
  combine(seed, static_cast<std::size_t>(k.halo));
  combine(seed, static_cast<std::size_t>(k.n3));
  return seed;
}

std::size_t TemporalKeyHash::operator()(const TemporalKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.mode);
  combine(seed, static_cast<std::size_t>(k.cs));
  combine(seed, static_cast<std::size_t>(k.n1));
  combine(seed, static_cast<std::size_t>(k.n2));
  combine(seed, static_cast<std::size_t>(k.n3));
  combine(seed, static_cast<std::size_t>(k.tsteps));
  combine(seed, static_cast<std::size_t>(k.bk));
  combine(seed, static_cast<std::size_t>(k.threads));
  combine(seed, static_cast<std::size_t>(k.halo));
  return seed;
}

PlanReport PlanCache::plan(Transform transform, long cs, long di, long dj,
                           const StencilSpec& spec, long n3) {
  const PlanKey key{transform,   cs,          di,       dj,
                    spec.trim_i, spec.trim_j, spec.atd, spec.halo, n3};
  {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Search outside the lock: concurrent first queries of the same key may
  // both run the planner, but plan_for_checked is pure, so both compute
  // the identical report and the second insert is a no-op.
  PlanReport rep = plan_for_checked(transform, cs, di, dj, spec, n3);
  {
    std::lock_guard<std::mutex> lock(m_);
    ++stats_.misses;
    map_.emplace(key, rep);
  }
  return rep;
}

TemporalReport PlanCache::temporal(TemporalMode mode, long cs, long n1,
                                   long n2, long n3, int tsteps, long bk,
                                   int threads, long halo) {
  const TemporalKey key{mode, cs, n1, n2, n3, tsteps, bk, threads, halo};
  {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = tmap_.find(key);
    if (it != tmap_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Same no-lock search as plan(): temporal_plan_checked is pure.
  TemporalReport rep =
      temporal_plan_checked(mode, cs, n1, n2, n3, tsteps, bk, threads, halo);
  {
    std::lock_guard<std::mutex> lock(m_);
    ++stats_.misses;
    tmap_.emplace(key, rep);
  }
  return rep;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return map_.size() + tmap_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(m_);
  map_.clear();
  tmap_.clear();
  stats_ = PlanCacheStats{};
}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

}  // namespace rt::core
