#include "rt/core/stencil_desc.hpp"

#include <algorithm>
#include <stdexcept>

namespace rt::core {

StencilSpec StencilDesc::derive_spec() const {
  if (points.empty()) {
    throw std::invalid_argument("derive_spec: empty stencil");
  }
  int lo_i = 0, hi_i = 0, lo_j = 0, hi_j = 0, lo_k = 0, hi_k = 0;
  for (const StencilPoint& p : points) {
    lo_i = std::min(lo_i, p.di);
    hi_i = std::max(hi_i, p.di);
    lo_j = std::min(lo_j, p.dj);
    hi_j = std::max(hi_j, p.dj);
    lo_k = std::min(lo_k, p.dk);
    hi_k = std::max(hi_k, p.dk);
  }
  StencilSpec s;
  s.name = "derived";
  s.trim_i = hi_i - lo_i;  // "magnitude of the largest differences between
  s.trim_j = hi_j - lo_j;  //  subscripts in each dimension" (Section 2.3)
  s.atd = hi_k - lo_k + 1; // planes simultaneously live in the array tile
  return s;
}

StencilDesc StencilDesc::jacobi6(double w) {
  StencilDesc d;
  d.name = "jacobi6";
  d.points = {{-1, 0, 0, w}, {1, 0, 0, w},  {0, -1, 0, w},
              {0, 1, 0, w},  {0, 0, -1, w}, {0, 0, 1, w}};
  return d;
}

StencilDesc StencilDesc::full27(double c0, double c1, double c2, double c3,
                                std::string name) {
  StencilDesc d;
  d.name = std::move(name);
  for (int dk = -1; dk <= 1; ++dk) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int di = -1; di <= 1; ++di) {
        const int m = std::abs(di) + std::abs(dj) + std::abs(dk);
        const double w = (m == 0) ? c0 : (m == 1) ? c1 : (m == 2) ? c2 : c3;
        d.points.push_back({di, dj, dk, w});
      }
    }
  }
  return d;
}

}  // namespace rt::core
