#include "rt/core/conflict.hpp"

#include <vector>

namespace rt::core {

bool is_conflict_free(long cs, long di, long dj, long ti, long tj, int tk) {
  if (cs <= 0 || ti <= 0 || tj <= 0 || tk <= 0) return false;
  if (ti * tj * static_cast<long>(tk) > cs) return false;  // pigeonhole
  std::vector<char> hit(static_cast<std::size_t>(cs), 0);
  const long plane = di * dj;
  for (long k = 0; k < tk; ++k) {
    for (long j = 0; j < tj; ++j) {
      const long col = (k * plane + j * di) % cs;
      for (long i = 0; i < ti; ++i) {
        const long off = (col + i) % cs;
        if (hit[static_cast<std::size_t>(off)]) return false;
        hit[static_cast<std::size_t>(off)] = 1;
      }
    }
  }
  return true;
}

}  // namespace rt::core
