#include "rt/core/temporal.hpp"

#include <algorithm>

namespace rt::core {

namespace {

using rt::guard::Status;

/// Count the scheduled sweeps of the slope-1 skew (the exact loop bounds
/// rt::kernels::jacobi3d_timeskew runs) and the mean fraction of `threads`
/// with a plane to sweep per stage.
void skew_stages(long kmax, int tsteps, long bk, int threads,
                 TemporalPlan* plan) {
  long stages = 0;
  double util = 0;
  for (long kb = 1; kb < kmax + tsteps; kb += bk) {
    for (int t = 0; t < tsteps; ++t) {
      const long lo = std::max(1L, kb - t);
      const long hi = std::min(kmax, kb + bk - 1 - t);
      if (hi < lo) continue;
      ++stages;
      util += static_cast<double>(std::min<long>(hi - lo + 1, threads)) /
              static_cast<double>(threads);
    }
  }
  plan->stages = stages;
  plan->occupancy = stages > 0 ? util / static_cast<double>(stages) : 0.0;
}

/// Same for the two-phase diamond: stages are (block, step) and
/// (boundary, step) sweeps; occupancy is the mean fraction of teams with a
/// work unit, per step of each phase.
void diamond_stages(long kmax, int tsteps, long w, int tb, int teams,
                    TemporalPlan* plan) {
  const long nblocks = (kmax + w - 1) / w;
  long stages = 0;
  double util = 0;
  long steps = 0;
  for (int t0 = 0; t0 < tsteps; t0 += tb) {
    const int tbc = std::min<int>(tb, tsteps - t0);
    for (int t = 0; t < tbc; ++t) {  // phase 1: descending triangles
      long active = 0;
      for (long d = 0; d < nblocks; ++d) {
        const long s = 1 + d * w;
        if (s + t <= std::min(kmax, s + w - 1 - t)) ++active;
      }
      stages += active;
      ++steps;
      util += static_cast<double>(std::min<long>(active, teams)) /
              static_cast<double>(teams);
    }
    for (int t = 1; t < tbc; ++t) {  // phase 2: inverted triangles
      long active = 0;
      for (long d = 0; d <= nblocks; ++d) {
        const long b = 1 + d * w;
        if (std::max(1L, b - t) <= std::min(kmax, b + t - 1)) ++active;
      }
      stages += active;
      ++steps;
      util += static_cast<double>(std::min<long>(active, teams)) /
              static_cast<double>(teams);
    }
  }
  plan->stages = stages;
  plan->occupancy = steps > 0 ? util / static_cast<double>(steps) : 0.0;
}

}  // namespace

const char* temporal_mode_name(TemporalMode m) {
  switch (m) {
    case TemporalMode::kOff:
      return "off";
    case TemporalMode::kSkew:
      return "skew";
    case TemporalMode::kDiamond:
      return "diamond";
  }
  return "off";
}

bool parse_temporal_mode(const std::string& s, TemporalMode* out) {
  if (s == "off") {
    *out = TemporalMode::kOff;
  } else if (s == "skew") {
    *out = TemporalMode::kSkew;
  } else if (s == "diamond") {
    *out = TemporalMode::kDiamond;
  } else {
    return false;
  }
  return true;
}

TemporalReport temporal_plan_checked(TemporalMode mode, long cs, long n1,
                                     long n2, long n3, int tsteps, long bk,
                                     int threads, long halo) {
  TemporalReport rep;
  TemporalPlan& plan = rep.plan;
  plan.mode = mode;
  plan.tsteps = std::max(tsteps, 0);
  plan.threads = std::max(threads, 1);

  if (mode == TemporalMode::kOff) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "temporal mode off has nothing to plan";
    return rep;
  }
  if (halo < 1) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "stencil halo must be >= 1 (halo = " + std::to_string(halo) +
                 ")";
    plan.bk = 1;
    return rep;
  }
  if (n1 <= 2 * halo || n2 <= 2 * halo || n3 <= 2 * halo) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "dimensions " + std::to_string(n1) + "x" +
                 std::to_string(n2) + "x" + std::to_string(n3) +
                 " at or below the stencil halo (" + std::to_string(halo) +
                 "): no interior to sweep";
    plan.bk = 1;
    return rep;
  }
  if (cs <= 0) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "cache size must be positive (cs = " + std::to_string(cs) +
                 ")";
    plan.bk = 1;
    return rep;
  }
  if (tsteps < 0) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "tsteps must be >= 0 (tsteps = " + std::to_string(tsteps) +
                 ")";
    plan.bk = 1;
    return rep;
  }
  if (bk < 0) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "block depth must be >= 0 (bk = " + std::to_string(bk) +
                 "; 0 auto-sizes from the cache)";
    bk = 0;  // plan as if auto-sized so the report stays usable
  }
  if (threads < 1) {
    rep.status = Status::kInvalidArgument;
    rep.detail = "threads must be >= 1 (threads = " +
                 std::to_string(threads) + ")";
  }

  // Working-set arithmetic, overflow-checked: one plane, and the two-array
  // window of `win` planes the schedule keeps live.
  long plane = 0;
  if (__builtin_mul_overflow(n1, n2, &plane)) {
    rep.status = Status::kOverflow;
    rep.detail = "plane size " + std::to_string(n1) + "x" +
                 std::to_string(n2) + " overflows long";
    plan.bk = 1;
    return rep;
  }
  const long kmax = n3 - 2 * halo;  // interior planes, indexed 1..kmax

  if (mode == TemporalMode::kSkew) {
    // The skew window keeps ~(bk + tsteps + 2) planes of BOTH arrays live.
    // Auto-sizing budgets HALF the capacity: a window that nominally fills
    // the cache thrashes in practice (streaming boundaries, other data,
    // imperfect LRU), and measurements show a half-capacity window is
    // reliably faster than a full-capacity one.
    if (bk == 0) {
      plan.bk = cs / (4 * plane) - tsteps - 2;
      if (plan.bk < 1) {
        plan.bk = 1;
        if (rep.status == Status::kOk) {
          rep.status = Status::kInfeasible;
          rep.detail = "cache of " + std::to_string(cs) +
                       " elements cannot hold the " +
                       std::to_string(tsteps + 3) +
                       "-plane skew window of two " + std::to_string(plane) +
                       "-element planes";
        }
      }
    } else {
      plan.bk = bk;
      long win = 0, elems = 0;
      if (__builtin_add_overflow(bk, tsteps + 2, &win) ||
          __builtin_mul_overflow(2 * plane, win, &elems)) {
        rep.status = Status::kOverflow;
        rep.detail = "skew window size overflows long for bk = " +
                     std::to_string(bk);
        return rep;
      }
      if (elems > cs && rep.status == Status::kOk) {
        rep.status = Status::kInfeasible;
        rep.detail = "requested skew window of " + std::to_string(win) +
                     " planes of both arrays (" + std::to_string(elems) +
                     " elements) exceeds the " + std::to_string(cs) +
                     "-element cache";
      }
    }
    skew_stages(kmax, plan.tsteps, plan.bk, plan.threads, &plan);
    return rep;
  }

  // kDiamond: the pass keeps ~W planes of both arrays live; W >= 2*tb so
  // concurrent phase-2 triangles stay plane-disjoint.  Auto-sizing budgets
  // half the capacity, same rationale as the skew window.
  long w = bk;
  if (w == 0) {
    w = cs / (4 * plane);
    if (w < 2) {
      w = 2;
      if (rep.status == Status::kOk) {
        rep.status = Status::kInfeasible;
        rep.detail = "cache of " + std::to_string(cs) +
                     " elements cannot hold the minimum 2-plane diamond "
                     "window of two " + std::to_string(plane) +
                     "-element planes";
      }
    }
  } else if (w < 2) {
    if (rep.status == Status::kOk) {
      rep.status = Status::kInvalidArgument;
      rep.detail = "diamond width must be >= 2 (bk = " + std::to_string(w) +
                   ")";
    }
    w = 2;
  }
  plan.bk = w;
  plan.tb = plan.tsteps > 0
                ? static_cast<int>(std::clamp<long>(plan.tsteps, 1, w / 2))
                : 0;
  // Team shape: one team per concurrent block when threads allow, the
  // remaining width stacked inside teams (members split the J range).
  const long nblocks = (kmax + w - 1) / w;
  const int teams = static_cast<int>(
      std::clamp<long>(nblocks, 1, plan.threads));
  plan.team = std::max(1, plan.threads / teams);
  diamond_stages(kmax, plan.tsteps, w, std::max(plan.tb, 1), teams, &plan);
  return rep;
}

}  // namespace rt::core
